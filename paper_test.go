package fuzzyxml_test

// paper_test.go walks every worked example and theorem of the paper
// through the public API, in slide order — the one-file review of the
// reproduction's fidelity. Package-internal tests cover the same ground
// in more depth; this file is the top-level index.

import (
	"math"
	"testing"

	fuzzyxml "repro"
)

// Slide 5: the data model — finite unordered trees, duplicate siblings
// allowed, no mixed content.
func TestPaperSlide5DataModel(t *testing.T) {
	doc := fuzzyxml.MustParseTree("A(B:foo, B:foo, E(C:bar), D(F:nee))")
	reordered := fuzzyxml.MustParseTree("A(D(F:nee), B:foo, E(C:bar), B:foo)")
	if fuzzyxml.FormatTree(doc) == "" {
		t.Fatal("empty format")
	}
	// Unordered equality with bag semantics.
	onceB := fuzzyxml.MustParseTree("A(B:foo, E(C:bar), D(F:nee))")
	if !treeEqual(doc, reordered) {
		t.Error("sibling order must not matter")
	}
	if treeEqual(doc, onceB) {
		t.Error("duplicate siblings must count (bag semantics)")
	}
}

func treeEqual(a, b *fuzzyxml.Tree) bool {
	s1, _ := fuzzyxml.EvalQueryOnTree(fuzzyxml.MustParseQuery("//* $x"), a, fuzzyxml.MinimalSubtree)
	_ = s1
	// Equality through the canonical form exposed by formatting of the
	// facade is not provided; compare via possible-worlds containers.
	w1 := &fuzzyxml.Worlds{}
	w1.Add(a, 1)
	w2 := &fuzzyxml.Worlds{}
	w2.Add(b, 1)
	return w1.Equal(w2, 1e-12)
}

// Slide 6: TPWJ queries — the example shape with a value join.
func TestPaperSlide6Query(t *testing.T) {
	q := fuzzyxml.MustParseQuery("A(B $x, C(//D=val $y)) where $x = $y")
	doc := fuzzyxml.MustParseTree(`A(B:val, C(E(D:val)))`)
	answers, err := fuzzyxml.EvalQueryOnTree(q, doc, fuzzyxml.MinimalSubtree)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("answers = %d", len(answers))
	}
	// The minimal subtree contains the join witnesses and their paths.
	want := fuzzyxml.MustParseTree("A(B:val, C(E(D:val)))")
	if !treeEqual(answers[0], want) {
		t.Errorf("answer = %s", fuzzyxml.FormatTree(answers[0]))
	}
}

// Slide 9: the possible-worlds example.
func TestPaperSlide9Worlds(t *testing.T) {
	doc := fuzzyxml.MustParseFuzzy("A(B[w1], C(D[w2]))",
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})
	pw, err := fuzzyxml.PossibleWorlds(doc)
	if err != nil {
		t.Fatal(err)
	}
	for text, p := range map[string]float64{
		"A(C)":       0.06,
		"A(C(D))":    0.14,
		"A(B, C)":    0.24,
		"A(B, C(D))": 0.56,
	} {
		if got := pw.ProbOf(fuzzyxml.MustParseTree(text)); math.Abs(got-p) > 1e-9 {
			t.Errorf("P(%s) = %v, want %v", text, got, p)
		}
	}
}

// Slide 12: fuzzy-tree semantics and the expressiveness theorem.
func TestPaperSlide12SemanticsAndExpressiveness(t *testing.T) {
	doc := fuzzyxml.MustParseFuzzy("A(B[w1 !w2], C(D[w2]))",
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})
	pw, err := fuzzyxml.PossibleWorlds(doc)
	if err != nil {
		t.Fatal(err)
	}
	if pw.Len() != 3 {
		t.Fatalf("worlds = %d, want 3", pw.Len())
	}
	for text, p := range map[string]float64{
		"A(C)":    0.06,
		"A(C(D))": 0.70,
		"A(B, C)": 0.24,
	} {
		if got := pw.ProbOf(fuzzyxml.MustParseTree(text)); math.Abs(got-p) > 1e-9 {
			t.Errorf("P(%s) = %v, want %v", text, got, p)
		}
	}
	// Expressiveness: encode the set back into a fuzzy tree.
	enc, err := fuzzyxml.FromWorlds(pw, "e")
	if err != nil {
		t.Fatal(err)
	}
	back, err := fuzzyxml.PossibleWorlds(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(pw, 1e-9) {
		t.Error("expressiveness round trip failed")
	}
}

// Slide 13: queries on fuzzy trees commute with the semantics.
func TestPaperSlide13QueryCommutation(t *testing.T) {
	doc := fuzzyxml.MustParseFuzzy("A(B[w1 !w2], C(D[w2]))",
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})
	q := fuzzyxml.MustParseQuery("A(B)")
	direct, err := fuzzyxml.EvalQuery(q, doc)
	if err != nil {
		t.Fatal(err)
	}
	pw, _ := fuzzyxml.PossibleWorlds(doc)
	viaWorlds, err := fuzzyxml.EvalQueryOnWorlds(q, pw, fuzzyxml.MinimalSubtree)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != viaWorlds.Len() {
		t.Fatalf("count mismatch: %d vs %d", len(direct), viaWorlds.Len())
	}
	for _, a := range direct {
		if math.Abs(a.P-viaWorlds.ProbOf(a.Tree)) > 1e-9 {
			t.Errorf("P(%s): %v vs %v", fuzzyxml.FormatTree(a.Tree), a.P, viaWorlds.ProbOf(a.Tree))
		}
	}
}

// Slides 14–15: updates commute; the conditional-replacement example is
// reproduced literally.
func TestPaperSlide15Update(t *testing.T) {
	doc := fuzzyxml.MustParseFuzzy("A(B[w1], C[w2])",
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})
	tx := fuzzyxml.NewTransaction(
		fuzzyxml.MustParseQuery("A $a(B $b, C $c)"), 0.9,
		fuzzyxml.InsertOp("a", fuzzyxml.MustParseTree("D")),
		fuzzyxml.DeleteOp("c"))
	tx.ConfEvent = "w3"

	updated, stats, err := fuzzyxml.ApplyUpdate(tx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := fuzzyxml.FormatFuzzy(updated.Root); got != "A(B[w1], C[!w1 w2], C[w1 w2 !w3], D[w1 w2 w3])" {
		t.Errorf("slide-15 output = %s", got)
	}
	if stats.Copies != 2 || stats.Inserted != 1 {
		t.Errorf("stats = %+v", stats)
	}

	// Commutation (slide 14).
	viaFuzzy, err := fuzzyxml.PossibleWorlds(updated)
	if err != nil {
		t.Fatal(err)
	}
	pw, _ := fuzzyxml.PossibleWorlds(doc)
	viaWorlds, err := fuzzyxml.ApplyUpdateToWorlds(tx, pw)
	if err != nil {
		t.Fatal(err)
	}
	if !viaFuzzy.Equal(viaWorlds, 1e-9) {
		t.Error("update commutation failed")
	}
}

// Slide 19 (perspectives): the implemented extensions in one sweep.
func TestPaperSlide19Extensions(t *testing.T) {
	doc := fuzzyxml.MustParseFuzzy("A(B[w1], C[w2])",
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})

	// Negation.
	neg, err := fuzzyxml.EvalQuery(fuzzyxml.MustParseQuery("A $x(C, !B)"), doc)
	if err != nil || len(neg) != 1 || math.Abs(neg[0].P-0.7*0.2) > 1e-12 {
		t.Errorf("negation: %v, %v", neg, err)
	}

	// Limited order.
	ord, err := fuzzyxml.EvalQuery(fuzzyxml.MustParseQuery("ordered A(B $x, C $y)"), doc)
	if err != nil || len(ord) != 1 {
		t.Errorf("ordered: %v, %v", ord, err)
	}

	// Simplification.
	noisy := fuzzyxml.MustParseFuzzy("A(B[w1 !w1])", map[fuzzyxml.EventID]float64{"w1": 0.5})
	if stats := fuzzyxml.Simplify(noisy); stats.NodesRemoved != 1 {
		t.Errorf("simplify stats = %+v", stats)
	}

	// Query optimization preserves answers.
	opt := fuzzyxml.OptimizeQuery(fuzzyxml.MustParseQuery("A(//B $b, //C $c)"), doc.Underlying())
	a1, _ := fuzzyxml.EvalQuery(fuzzyxml.MustParseQuery("A(//B $b, //C $c)"), doc)
	a2, _ := fuzzyxml.EvalQuery(opt, doc)
	if len(a1) != len(a2) {
		t.Error("optimization changed fuzzy answers")
	}
}
