// Command pxview manages materialized views of a probabilistic XML
// warehouse: named TPWJ/XPath queries whose answers and probabilities
// the warehouse keeps incrementally maintained across updates (see
// docs/ARCHITECTURE.md, "Materialized views").
//
// Usage:
//
//	pxview -dir ./wh register mydoc topbooks 'A(book $x)'
//	pxview -dir ./wh -syntax xpath register mydoc dtitles '/lib/book/title'
//	pxview -dir ./wh read mydoc topbooks
//	pxview -dir ./wh list mydoc
//	pxview -dir ./wh drop mydoc topbooks
//	pxview -dir ./wh stats
//
// Exit status is 0 on success, 1 on any warehouse or view error, and
// 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	fuzzyxml "repro"
)

func main() {
	var (
		dir      = flag.String("dir", "", "warehouse directory (required)")
		syntax   = flag.String("syntax", "", "query syntax for register: tpwj (default) | xpath")
		emitJSON = flag.Bool("json", false, "print results as JSON")
	)
	flag.Parse()
	args := flag.Args()
	if *dir == "" || len(args) == 0 {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "commands: register <doc> <view> <query> | read <doc> <view> | list <doc> | drop <doc> <view> | stats")
		os.Exit(2)
	}

	w, err := fuzzyxml.OpenWarehouse(*dir)
	if err != nil {
		fatal(err)
	}
	defer w.Close()

	switch cmd := args[0]; cmd {
	case "register":
		need(args, 4, "register <doc> <view> <query>")
		res, err := w.RegisterView(args[1], args[2], args[3], *syntax)
		if err != nil {
			fatal(err)
		}
		if !*emitJSON {
			// With -json the result object below is the whole output,
			// so it stays parseable by itself.
			fmt.Printf("registered %q on %q (%d answers)\n", res.Name, res.Doc, len(res.Answers))
		}
		printAnswers(res, *emitJSON)

	case "read":
		need(args, 3, "read <doc> <view>")
		res, err := w.ReadView(args[1], args[2])
		if err != nil {
			fatal(err)
		}
		printAnswers(res, *emitJSON)

	case "list":
		need(args, 2, "list <doc>")
		defs, err := w.ListViews(args[1])
		if err != nil {
			fatal(err)
		}
		if *emitJSON {
			printJSON(defs)
			return
		}
		for _, d := range defs {
			syn := d.Syntax
			if syn == "" {
				syn = "tpwj"
			}
			fmt.Printf("%s\t%s\t%s\n", d.Name, syn, d.Query)
		}

	case "drop":
		need(args, 3, "drop <doc> <view>")
		if err := w.DropView(args[1], args[2]); err != nil {
			fatal(err)
		}
		fmt.Printf("dropped %q from %q\n", args[2], args[1])

	case "stats":
		printJSON(w.ViewStats())

	default:
		usage(fmt.Sprintf("unknown command %q", cmd))
	}
}

// printAnswers renders a view read: one "P= tree" line per answer, or
// the whole result as JSON.
func printAnswers(res *fuzzyxml.ViewResult, asJSON bool) {
	if asJSON {
		printJSON(struct {
			Doc     string  `json:"doc"`
			Name    string  `json:"name"`
			Query   string  `json:"query"`
			Syntax  string  `json:"syntax,omitempty"`
			Stale   bool    `json:"stale"`
			Answers []jsonA `json:"answers"`
		}{res.Doc, res.Name, res.Query, res.Syntax, res.Stale, jsonAnswers(res)})
		return
	}
	for _, a := range res.Answers {
		fmt.Printf("P=%.6g  %s\n", a.P, fuzzyxml.FormatTree(a.Tree))
	}
	if res.Stale {
		fmt.Println("(stale: maintenance in flight)")
	}
}

// jsonA is one answer in -json output.
type jsonA struct {
	P         float64 `json:"p"`
	Tree      string  `json:"tree"`
	Condition string  `json:"condition,omitempty"`
}

func jsonAnswers(res *fuzzyxml.ViewResult) []jsonA {
	out := make([]jsonA, len(res.Answers))
	for i, a := range res.Answers {
		out[i] = jsonA{P: a.P, Tree: fuzzyxml.FormatTree(a.Tree)}
		switch {
		case a.Cond != nil:
			out[i].Condition = a.Cond.String()
		case a.Formula != nil:
			out[i].Condition = a.Formula.String()
		}
	}
	return out
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func need(args []string, n int, form string) {
	if len(args) < n {
		usage("usage: pxview -dir DIR " + form)
	}
}

// usage reports a usage error; these exit 2, runtime errors exit 1.
func usage(msg string) {
	fmt.Fprintln(os.Stderr, "pxview:", msg)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxview:", err)
	os.Exit(1)
}
