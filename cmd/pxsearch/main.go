// Command pxsearch runs a probabilistic keyword search on a
// probabilistic XML document: each answer is a document node with the
// probability that it is an SLCA or ELCA answer for the keywords in a
// random possible world (see docs/SEARCH.md for the semantics).
//
// Usage:
//
//	pxsearch -doc warehouse.pxml kafka castle
//	pxsearch -doc warehouse.pxml -mode elca -minprob 0.2 -topk 5 kafka
//	pxsearch -doc warehouse.pxml -mc -samples 100000 kafka castle
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	fuzzyxml "repro"
)

func main() {
	var (
		docPath  = flag.String("doc", "", "path to the .pxml document (required)")
		mode     = flag.String("mode", "slca", "answer semantics: slca | elca")
		mc       = flag.Bool("mc", false, "estimate probabilities by Monte-Carlo world sampling")
		samples  = flag.Int("samples", 100000, "Monte-Carlo samples (-mc)")
		seed     = flag.Int64("seed", 1, "Monte-Carlo random seed (-mc)")
		minProb  = flag.Float64("minprob", 0, "drop answers below this probability (prunes candidates early)")
		topK     = flag.Int("topk", 0, "keep only the K most probable answers (0: all)")
		emitJSON = flag.Bool("json", false, "print answers as JSON")
	)
	flag.Parse()
	keywords := flag.Args()
	if *docPath == "" || len(keywords) == 0 {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "pxsearch: need -doc and at least one keyword argument")
		os.Exit(2)
	}

	f, err := os.Open(*docPath)
	if err != nil {
		fatal(err)
	}
	doc, err := fuzzyxml.ReadDocXML(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	m, err := fuzzyxml.ParseSearchMode(*mode)
	if err != nil {
		fatal(err)
	}
	res, err := fuzzyxml.SearchKeywords(doc, fuzzyxml.KeywordRequest{
		Keywords: keywords,
		Mode:     m,
		MC:       *mc,
		Samples:  *samples,
		Seed:     *seed,
		MinProb:  *minProb,
		TopK:     *topK,
	})
	if err != nil {
		fatal(err)
	}

	if *emitJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	if len(res.Answers) == 0 {
		fmt.Printf("no answers (%d candidates, %d pruned)\n", res.Candidates, res.Pruned)
		return
	}
	for _, a := range res.Answers {
		line := fmt.Sprintf("P=%.6g  %s", a.P, a.Path)
		if a.Value != "" {
			line += fmt.Sprintf("  %q", a.Value)
		}
		fmt.Printf("%s  (%d witnesses)\n", line, a.Witnesses)
	}
	fmt.Printf("%d answers, %d candidates, %d pruned\n", len(res.Answers), res.Candidates, res.Pruned)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxsearch:", err)
	os.Exit(1)
}
