// Command pxsim is the traffic generator and scale-benchmark harness:
// it simulates N tenants driving a configurable query / search /
// update / view mix against a running pxserve, with Zipf-distributed
// document popularity, a seeded RNG for full reproducibility, and a
// token-bucket rate controller.
//
// pxsim is self-verifying: it maintains an expected-state model of
// every document it touches and audits the server against it at the
// end of the run — /stats and /metrics counter reconciliation, content
// hashes, view registries and answers. Any discrepancy fails the run
// with exit status 1, so a clean pxsim run is a correctness check, not
// just a load test. The audit requires pxsim to be the server's only
// client for the duration of the run.
//
// Usage:
//
//	pxserve -dir /tmp/wh -addr :8080 &
//	pxsim -endpoint http://localhost:8080 -tenants 8 -ops 5000 -seed 42
//	pxsim -endpoint http://localhost:8080 -duration 10s -rate 200 -speed 2
//	pxsim -endpoint http://localhost:8080 -json   # writes BENCH_<date>.json
//
// See docs/SIMULATION.md for the full flag reference, the mix format,
// and the oracle semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
)

func main() {
	var (
		endpoint = flag.String("endpoint", "", "pxserve base URL (required), e.g. http://127.0.0.1:8080")
		tenants  = flag.Int("tenants", 4, "number of tenants")
		docs     = flag.Int("docs", 2, "documents per tenant")
		seed     = flag.Int64("seed", 1, "RNG seed; equal seeds give byte-identical workloads")
		mixFlag  = flag.String("mix", "", "op mix as kind=weight,... (default \""+sim.DefaultMix().String()+"\")")
		zipf     = flag.Float64("zipf", 1.2, "Zipf skew of document popularity (> 1)")
		ops      = flag.Int64("ops", 0, "operation budget (default 1000 when -duration is unset)")
		duration = flag.Duration("duration", 0, "wall-clock budget (whichever of -ops/-duration hits first ends the run)")
		rate     = flag.Float64("rate", 0, "target ops/sec before -speed scaling (0 = unthrottled)")
		speed    = flag.Float64("speed", 1, "rate multiplier applied to -rate")
		burst    = flag.Int("burst", 0, "token bucket depth (default 2×workers)")
		workers  = flag.Int("workers", 4, "executor goroutines; documents are partitioned across them")
		sections = flag.Int("sections", 4, "sections per initial document")
		events   = flag.Int("events", 4, "events per initial document")
		check    = flag.Int64("check-every", 8, "spot-check every Nth op against local evaluation (0 = off)")
		logPath  = flag.String("log", "", "write the deterministic workload log to this file")
		emitJSON = flag.Bool("json", false, "write machine-readable results to BENCH_<date>.json")
		jsonOut  = flag.String("json-out", "", "override the -json output path")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "pxsim: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *endpoint == "" {
		fmt.Fprintln(os.Stderr, "pxsim: -endpoint is required")
		flag.Usage()
		os.Exit(2)
	}

	mix := sim.DefaultMix()
	if *mixFlag != "" {
		var err error
		if mix, err = sim.ParseMix(*mixFlag); err != nil {
			fmt.Fprintf(os.Stderr, "pxsim: %v\n", err)
			os.Exit(2)
		}
	}

	cfg := sim.Config{
		Endpoint:      *endpoint,
		Tenants:       *tenants,
		DocsPerTenant: *docs,
		Seed:          *seed,
		Mix:           mix,
		ZipfS:         *zipf,
		Ops:           *ops,
		Duration:      *duration,
		Rate:          *rate,
		Speed:         *speed,
		Burst:         *burst,
		Workers:       *workers,
		Sections:      *sections,
		Events:        *events,
		CheckEvery:    *check,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pxsim: "+format+"\n", args...)
		}
	}
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close() //nolint:errcheck
		cfg.LogW = f
	}

	rep, err := sim.Run(context.Background(), cfg)
	if err != nil {
		fatal(err)
	}
	render(rep)

	if *emitJSON || *jsonOut != "" {
		date := time.Now().Format("2006-01-02")
		path := *jsonOut
		if path == "" {
			path = "BENCH_" + date + ".json"
		}
		if err := writeReport(exp.SimBenchReport(date, rep), path); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	if rep.Audit.DiscrepancyCount > 0 {
		fmt.Fprintf(os.Stderr, "pxsim: AUDIT FAILED: %d discrepancies\n", rep.Audit.DiscrepancyCount)
		for _, d := range rep.Audit.Discrepancies {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		os.Exit(1)
	}
	fmt.Printf("audit clean: %d checks, 0 discrepancies\n", rep.Audit.Checks)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pxsim: %v\n", err)
	os.Exit(1)
}

// render prints the human-readable run summary: totals, then one line
// per route with client-side throughput and latency percentiles.
func render(rep *sim.Report) {
	fmt.Printf("pxsim run: %d ops in %.2fs (%.1f events/sec), %d errors, seed %d, mix %s\n",
		rep.Ops, rep.DurationSeconds, rep.EventsPerSec, rep.Errors, rep.Seed, rep.Mix)
	fmt.Printf("%-30s %8s %6s %9s %8s %8s %8s %8s\n",
		"route", "reqs", "errs", "ev/s", "p50ms", "p95ms", "p99ms", "maxms")
	for _, rr := range rep.Routes {
		fmt.Printf("%-30s %8d %6d %9.1f %8.3f %8.3f %8.3f %8.3f\n",
			rr.Route, rr.Requests, rr.Errors, rr.EventsPerSec, rr.P50MS, rr.P95MS, rr.P99MS, rr.MaxMS)
	}
	a := rep.Audit
	fmt.Printf("audit: checks=%d discrepancies=%d degraded=%v stale_view_reads=%d failed_writes=%d ambiguous(applied=%d aborted=%d)\n",
		a.Checks, a.DiscrepancyCount, a.Degraded, a.StaleViewReads, a.FailedWrites,
		a.AmbiguousApplied, a.AmbiguousAborted)
	e := rep.Engine
	fmt.Printf("engine: compiles=%d (bitset %d) memo=%d/%d components=%d expansion_nodes=%d mc_samples=%d cancellations=%d\n",
		e.Compiles, e.BitsetCompiles, e.MemoHits, e.MemoMisses, e.Components,
		e.ExpansionNodes, e.MCSamples, e.Cancellations)
}

// writeReport writes the benchmark report to path.
func writeReport(report exp.BenchReport, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	return f.Close()
}
