// Command pxbench regenerates every experiment table of the reproduction
// (E1–E10, indexed in DESIGN.md and EXPERIMENTS.md): the paper's worked
// examples as golden checks, the two commutation theorems with their
// fuzzy-vs-possible-worlds performance shape, the deletion blow-up,
// simplification, warehouse throughput, Monte-Carlo accuracy and query
// scaling.
//
// Usage:
//
//	pxbench             # run all experiments
//	pxbench -e E3,E5    # run selected experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	var (
		sel  = flag.String("e", "", "comma-separated experiment ids (default: all)")
		list = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var chosen []exp.Experiment
	if *sel == "" {
		chosen = exp.All()
	} else {
		for _, id := range strings.Split(*sel, ",") {
			id = strings.TrimSpace(id)
			e := exp.Get(strings.ToUpper(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "pxbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			chosen = append(chosen, *e)
		}
	}

	failed := 0
	for _, e := range chosen {
		t := e.Run()
		t.Render(os.Stdout)
		if !t.OK {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "pxbench: %d experiment(s) FAILED\n", failed)
		os.Exit(1)
	}
}
