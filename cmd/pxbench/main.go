// Command pxbench regenerates every experiment table of the
// reproduction (E1–E10; `pxbench -list` names them): the paper's
// worked examples as golden checks, the two commutation theorems with
// their fuzzy-vs-possible-worlds performance shape, the deletion
// blow-up, simplification, warehouse throughput, Monte-Carlo accuracy
// and query scaling.
//
// Usage:
//
//	pxbench             # run all experiments
//	pxbench -e E3,E5    # run selected experiments
//	pxbench -json       # also write BENCH_<date>.json (see README)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		sel      = flag.String("e", "", "comma-separated experiment ids (default: all)")
		list     = flag.Bool("list", false, "list experiments and exit")
		emitJSON = flag.Bool("json", false, "write machine-readable benchmark results to BENCH_<date>.json")
		jsonOut  = flag.String("json-out", "", "override the -json output path")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var chosen []exp.Experiment
	if *sel == "" {
		chosen = exp.All()
	} else {
		for _, id := range strings.Split(*sel, ",") {
			id = strings.TrimSpace(id)
			e := exp.Get(strings.ToUpper(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "pxbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			chosen = append(chosen, *e)
		}
	}

	failed := 0
	var results []exp.ExperimentResult
	for _, e := range chosen {
		t := e.Run()
		t.Render(os.Stdout)
		results = append(results, exp.ExperimentResult{ID: t.ID, OK: t.OK})
		if !t.OK {
			failed++
		}
	}

	if *emitJSON || *jsonOut != "" {
		date := time.Now().Format("2006-01-02")
		path := *jsonOut
		if path == "" {
			path = "BENCH_" + date + ".json"
		}
		report := exp.RunProbes(date)
		report.Experiments = results
		if err := writeReport(report, path); err != nil {
			fmt.Fprintf(os.Stderr, "pxbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "pxbench: %d experiment(s) FAILED\n", failed)
		os.Exit(1)
	}
}

// writeReport writes the benchmark report to path.
func writeReport(report exp.BenchReport, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
