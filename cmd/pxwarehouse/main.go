// Command pxwarehouse drives the probabilistic XML warehouse: a durable
// store of named fuzzy documents with journaled updates (slide 3 of the
// paper).
//
// Usage:
//
//	pxwarehouse -dir ./wh init
//	pxwarehouse -dir ./wh -store kv init
//	pxwarehouse -dir ./wh load mydoc doc.pxml
//	pxwarehouse -dir ./wh list
//	pxwarehouse -dir ./wh stat mydoc
//	pxwarehouse -dir ./wh query mydoc 'A(B $x)'
//	pxwarehouse -dir ./wh update mydoc tx.xml
//	pxwarehouse -dir ./wh simplify mydoc
//	pxwarehouse -dir ./wh dump mydoc
//	pxwarehouse -dir ./wh drop mydoc
//	pxwarehouse -dir ./wh verify-journal
//	pxwarehouse -dir ./wh recover
package main

import (
	"flag"
	"fmt"
	"os"

	fuzzyxml "repro"
)

func main() {
	dir := flag.String("dir", "", "warehouse directory (required)")
	storeName := flag.String("store", "auto", "storage backend: filestore, kv, or auto (detect from the directory)")
	flag.Parse()
	args := flag.Args()
	if *dir == "" || len(args) == 0 {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "commands: init | load | list | stat | query | update | simplify | dump | drop | verify-journal | recover")
		os.Exit(2)
	}

	// verify-journal is read-only diagnosis and must run before the
	// warehouse is opened: opening runs recovery, which resolves the
	// very in-flight mutations the summary is meant to show.
	if args[0] == "verify-journal" {
		verifyJournal(*dir)
		return
	}

	w, err := fuzzyxml.OpenWarehouseBackend(*dir, *storeName)
	if err != nil {
		fatal(err)
	}
	defer w.Close()

	switch cmd := args[0]; cmd {
	case "init":
		fmt.Printf("warehouse ready at %s (%s backend)\n", w.Dir(), w.Backend())

	case "recover":
		// Opening the warehouse above already ran scan-based recovery;
		// report what it did.
		s := w.JournalStats()
		fmt.Printf("recovered: %d replays, %d rollbacks, %d rollforwards\n",
			s.RecoveryReplays, s.RecoveryRollbacks, s.RecoveryRollforwards)

	case "load":
		need(args, 3, "load <name> <file.pxml>")
		f, err := os.Open(args[2])
		if err != nil {
			fatal(err)
		}
		doc, err := fuzzyxml.ReadDocXML(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if err := w.Create(args[1], doc); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %q (%d nodes, %d events)\n", args[1], doc.Size(), doc.Table.Len())

	case "list":
		names, err := w.List()
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}

	case "stat":
		need(args, 2, "stat <name>")
		info, err := w.Stat(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d nodes, %d events, %d possible worlds\n",
			info.Name, info.Nodes, info.Events, info.Worlds)

	case "query":
		need(args, 3, "query <name> <query-text>")
		q, err := fuzzyxml.ParseQuery(args[2])
		if err != nil {
			fatal(err)
		}
		answers, err := w.Query(args[1], q)
		if err != nil {
			fatal(err)
		}
		if len(answers) == 0 {
			fmt.Println("no answers")
			return
		}
		for _, a := range answers {
			fmt.Printf("P=%.6g  %s\n", a.P, fuzzyxml.FormatTree(a.Tree))
		}

	case "update":
		need(args, 3, "update <name> <tx.xml>")
		f, err := os.Open(args[2])
		if err != nil {
			fatal(err)
		}
		tx, err := fuzzyxml.ReadTransactionXML(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		stats, err := w.Update(args[1], tx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("applied: %d valuations, %d inserted, %d copies, event %q\n",
			stats.Valuations, stats.Inserted, stats.Copies, stats.Event)

	case "simplify":
		need(args, 2, "simplify <name>")
		stats, err := w.Simplify(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("simplified: -%d nodes, -%d literals, %d merges, -%d events\n",
			stats.NodesRemoved, stats.LiteralsRemoved, stats.SiblingsMerged, stats.EventsRemoved)

	case "dump":
		need(args, 2, "dump <name>")
		doc, err := w.Get(args[1])
		if err != nil {
			fatal(err)
		}
		if err := fuzzyxml.WriteDocXML(os.Stdout, doc); err != nil {
			fatal(err)
		}
		fmt.Println()

	case "drop":
		need(args, 2, "drop <name>")
		if err := w.Drop(args[1]); err != nil {
			fatal(err)
		}
		fmt.Println("dropped", args[1])

	default:
		usage(fmt.Sprintf("unknown command %q", cmd))
	}
}

// verifyJournal prints a journal health summary and exits nonzero when
// the journal has structural problems (corruption no crash can cause).
// Pending mutations and torn tails are normal crash leftovers that the
// next open resolves; they are reported but do not fail the check.
func verifyJournal(dir string) {
	sum, err := fuzzyxml.InspectJournal(dir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("journal: %d records (%d mutations: %d committed, %d aborted, %d pending), last seq %d\n",
		sum.Records, sum.Mutations, sum.Committed, sum.Aborted, len(sum.Pending), sum.LastSeq)
	if sum.TornTail {
		fmt.Println("torn tail: partial trailing record (crash mid-append; dropped on next open)")
	}
	for _, p := range sum.Pending {
		fmt.Printf("pending: seq %d %s %q (in-flight at crash; rolled back on next open)\n", p.Seq, p.Op, p.Doc)
	}
	for _, p := range sum.Problems {
		fmt.Println("problem:", p)
	}
	if len(sum.Problems) > 0 {
		os.Exit(1)
	}
}

func need(args []string, n int, form string) {
	if len(args) < n {
		usage("usage: pxwarehouse -dir DIR " + form)
	}
}

// usage reports a usage error; these exit 2, runtime errors exit 1.
func usage(msg string) {
	fmt.Fprintln(os.Stderr, "pxwarehouse:", msg)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxwarehouse:", err)
	os.Exit(1)
}
