// Command pxworlds expands a probabilistic XML document into its
// possible-worlds semantics and prints one world per line, highest
// probability first.
//
// Usage:
//
//	pxworlds -doc warehouse.pxml
//	pxworlds -doc big.pxml -sample 100000    # Monte-Carlo beyond 20 events
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	fuzzyxml "repro"
)

func main() {
	var (
		docPath = flag.String("doc", "", "path to the .pxml document (required)")
		sample  = flag.Int("sample", 0, "estimate from N sampled worlds instead of exact expansion")
		seed    = flag.Int64("seed", 1, "sampling seed")
	)
	flag.Parse()
	if *docPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*docPath)
	if err != nil {
		fatal(err)
	}
	doc, err := fuzzyxml.ReadDocXML(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var pw *fuzzyxml.Worlds
	if *sample > 0 {
		pw, err = fuzzyxml.SampleWorlds(doc, *sample, rand.New(rand.NewSource(*seed)))
	} else {
		pw, err = fuzzyxml.PossibleWorlds(doc)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d distinct worlds (document: %d nodes, %d events)\n",
		pw.Len(), doc.Size(), doc.Table.Len())
	for _, w := range pw.Worlds {
		fmt.Printf("P=%.6g  %s\n", w.P, fuzzyxml.FormatTree(w.Tree))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxworlds:", err)
	os.Exit(1)
}
