// Command pxupdate applies an XUpdate-style probabilistic transaction to
// a probabilistic XML document.
//
// Usage:
//
//	pxupdate -doc warehouse.pxml -tx replace.xml -out warehouse.pxml
//	pxupdate -doc warehouse.pxml -tx feed.xml -simplify
//
// With -out "-" (the default) the updated document goes to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	fuzzyxml "repro"
)

func main() {
	var (
		docPath  = flag.String("doc", "", "path to the .pxml document (required)")
		txPath   = flag.String("tx", "", "path to the <transaction> or <transactions> XML (required)")
		outPath  = flag.String("out", "-", "output path ('-' for stdout)")
		simplify = flag.Bool("simplify", false, "simplify the document after applying")
		verbose  = flag.Bool("v", false, "print per-transaction statistics to stderr")
	)
	flag.Parse()
	if *docPath == "" || *txPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	df, err := os.Open(*docPath)
	if err != nil {
		fatal(err)
	}
	doc, err := fuzzyxml.ReadDocXML(df)
	df.Close()
	if err != nil {
		fatal(err)
	}

	txs, err := readTransactions(*txPath)
	if err != nil {
		fatal(err)
	}

	for i, tx := range txs {
		next, stats, err := fuzzyxml.ApplyUpdate(tx, doc)
		if err != nil {
			fatal(fmt.Errorf("transaction %d: %w", i, err))
		}
		doc = next
		if *verbose {
			fmt.Fprintf(os.Stderr, "tx %d: %d valuations, %d inserted, %d copies, event %q\n",
				i, stats.Valuations, stats.Inserted, stats.Copies, stats.Event)
		}
	}

	if *simplify {
		stats := fuzzyxml.Simplify(doc)
		if *verbose {
			fmt.Fprintf(os.Stderr, "simplify: -%d nodes, -%d literals, %d merges, -%d events\n",
				stats.NodesRemoved, stats.LiteralsRemoved, stats.SiblingsMerged, stats.EventsRemoved)
		}
	}

	out := os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := fuzzyxml.WriteDocXML(out, doc); err != nil {
		fatal(err)
	}
	fmt.Fprintln(out)
}

// readTransactions accepts either a single <transaction> or a
// <transactions> list.
func readTransactions(path string) ([]*fuzzyxml.Transaction, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if txs, err := fuzzyxml.ReadTransactionsXML(f); err == nil {
		return txs, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	tx, err := fuzzyxml.ReadTransactionXML(f)
	if err != nil {
		return nil, err
	}
	return []*fuzzyxml.Transaction{tx}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxupdate:", err)
	os.Exit(1)
}
