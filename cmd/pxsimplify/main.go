// Command pxsimplify runs the semantics-preserving simplification passes
// on a probabilistic XML document ("fuzzy data simplification",
// perspectives slide of the paper).
//
// Usage:
//
//	pxsimplify -doc noisy.pxml -out clean.pxml
package main

import (
	"flag"
	"fmt"
	"os"

	fuzzyxml "repro"
)

func main() {
	var (
		docPath = flag.String("doc", "", "path to the .pxml document (required)")
		outPath = flag.String("out", "-", "output path ('-' for stdout)")
	)
	flag.Parse()
	if *docPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*docPath)
	if err != nil {
		fatal(err)
	}
	doc, err := fuzzyxml.ReadDocXML(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	before := doc.Size()
	stats := fuzzyxml.Simplify(doc)
	fmt.Fprintf(os.Stderr,
		"pxsimplify: %d -> %d nodes (-%d), -%d literals, %d sibling merges, -%d events\n",
		before, doc.Size(), stats.NodesRemoved, stats.LiteralsRemoved,
		stats.SiblingsMerged, stats.EventsRemoved)

	out := os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := fuzzyxml.WriteDocXML(out, doc); err != nil {
		fatal(err)
	}
	fmt.Fprintln(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxsimplify:", err)
	os.Exit(1)
}
