// Command pxserve serves a probabilistic XML warehouse over HTTP: the
// multi-client front end of the paper's warehouse architecture. Many
// clients can create, query and update documents concurrently;
// operations on different documents never contend, and repeated
// identical queries are answered from an LRU result cache.
//
// Usage:
//
//	pxserve -dir ./wh
//	pxserve -dir ./wh -store kv
//	pxserve -dir ./wh -addr :9090 -cache 1024 -v
//	pxserve -dir ./wh -slow-query 250ms -pprof localhost:6060
//	pxserve -dir ./wh -pprof localhost:6060 -mutexprofile 5 -blockprofile 1000000
//	pxserve -dir ./wh -request-timeout 30s -max-inflight 64
//
// On SIGINT/SIGTERM the server drains in-flight requests (up to 10s)
// and logs a final stats summary before exiting. -slow-query logs
// every request over the threshold with its span breakdown; -pprof
// serves net/http/pprof and GET /debug/traces on a separate debug
// address (keep it off public interfaces — neither is reachable
// through the main listener). See the package documentation of repro/internal/server
// for the route list, docs/OBSERVABILITY.md for the metrics and
// tracing guide, and the repository README for curl examples.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	fuzzyxml "repro"
)

func main() {
	var (
		dir         = flag.String("dir", "", "warehouse directory (required)")
		storeName   = flag.String("store", "auto", "storage backend: filestore, kv, or auto (detect from the directory)")
		addr        = flag.String("addr", ":8080", "listen address")
		cacheSize   = flag.Int("cache", 0, "query cache entries (0 = default, negative = disabled)")
		verbose     = flag.Bool("v", false, "log every request")
		slowQuery   = flag.Duration("slow-query", 0, "log requests at least this slow, with span breakdown (0 = disabled)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and /debug/traces on this debug address (empty = disabled)")
		reqTimeout  = flag.Duration("request-timeout", 0, "abort request evaluation after this long with 503 (0 = no timeout; /stats, /metrics and probes are exempt)")
		maxInFlight = flag.Int("max-inflight", 0, "cap on concurrently evaluating requests, excess shed with 429 (0 = unlimited)")
		mutexFrac   = flag.Int("mutexprofile", 0, "sample 1/n of mutex contention events for /debug/pprof/mutex (0 = off; needs -pprof)")
		blockRate   = flag.Int("blockprofile", 0, "sample blocking events of at least n ns for /debug/pprof/block (0 = off; needs -pprof)")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	wh, err := fuzzyxml.OpenWarehouseBackend(*dir, *storeName)
	if err != nil {
		log.Fatalf("pxserve: %v", err)
	}
	defer wh.Close()
	log.Printf("pxserve: %s storage backend at %s", wh.Backend(), wh.Dir())

	opts := fuzzyxml.ServerOptions{
		CacheSize:          *cacheSize,
		SlowQueryThreshold: *slowQuery,
		RequestTimeout:     *reqTimeout,
		MaxInFlight:        *maxInFlight,
	}
	if *verbose {
		opts.Logf = log.Printf
	}
	api := fuzzyxml.NewServer(wh, opts)
	srv := &http.Server{
		Addr:    *addr,
		Handler: api,
	}

	// Contention profiling is opt-in: both profiles are free when their
	// rate is zero but add bookkeeping to every mutex unlock / blocking
	// event once enabled, so the flags default to off. The profiles are
	// served by the pprof index on the debug mux below.
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}

	if *pprofAddr != "" {
		// The debug mux gets its own address so profiling endpoints and
		// recent request traces (paths, timings, span breakdowns) are
		// never reachable through the public listener.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/traces", api.TracesHandler())
		go func() {
			log.Printf("pxserve: debug listener (pprof, traces) on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("pxserve: pprof: %v", err)
			}
		}()
	}

	// Graceful shutdown: on the first SIGINT/SIGTERM stop accepting
	// connections and drain in-flight requests for up to 10 seconds.
	// ListenAndServe returns as soon as Shutdown starts, so main waits
	// on done for the drain to finish before closing the warehouse.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Printf("pxserve: shutting down, draining requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("pxserve: shutdown: %v", err)
		}
	}()

	// Listen before announcing so the printed address is the one
	// actually bound — with "-addr :0" (tests, parallel CI jobs) the
	// kernel-assigned port is what clients need to see.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("pxserve: %v", err)
	}
	fmt.Printf("pxserve: warehouse %s listening on %s\n", wh.Dir(), ln.Addr())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pxserve: %v", err)
	}
	<-done

	// Final stats summary: the full /stats payload, so a terminated
	// server leaves its counters in the log.
	if summary, err := json.Marshal(api.Snapshot()); err == nil {
		log.Printf("pxserve: final stats: %s", summary)
	}
	log.Printf("pxserve: shutdown complete")
}
