// Command pxserve serves a probabilistic XML warehouse over HTTP: the
// multi-client front end of the paper's warehouse architecture. Many
// clients can create, query and update documents concurrently;
// operations on different documents never contend, and repeated
// identical queries are answered from an LRU result cache.
//
// Usage:
//
//	pxserve -dir ./wh
//	pxserve -dir ./wh -addr :9090 -cache 1024 -v
//
// See the package documentation of repro/internal/server for the route
// list, and the repository README for curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	fuzzyxml "repro"
)

func main() {
	var (
		dir       = flag.String("dir", "", "warehouse directory (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		cacheSize = flag.Int("cache", 0, "query cache entries (0 = default, negative = disabled)")
		verbose   = flag.Bool("v", false, "log every request")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	wh, err := fuzzyxml.OpenWarehouse(*dir)
	if err != nil {
		log.Fatalf("pxserve: %v", err)
	}
	defer wh.Close()

	opts := fuzzyxml.ServerOptions{CacheSize: *cacheSize}
	if *verbose {
		opts.Logf = log.Printf
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: fuzzyxml.NewServer(wh, opts),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx) //nolint:errcheck
	}()

	fmt.Printf("pxserve: warehouse %s listening on %s\n", wh.Dir(), *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pxserve: %v", err)
	}
}
