// Command pxgen generates synthetic probabilistic XML documents and
// workloads for experiments, reproducibly from a seed.
//
// Usage:
//
//	pxgen -kind fuzzy -seed 7 -events 6 -depth 4 > doc.pxml
//	pxgen -kind tree -nodes 1000 > doc.xml
//	pxgen -kind feed -n 20 > feed-doc.pxml   (extraction-feed scenario)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	fuzzyxml "repro"
	"repro/internal/gen"
	"repro/internal/xmlio"
)

func main() {
	var (
		kind   = flag.String("kind", "fuzzy", "what to generate: fuzzy | tree | feed")
		seed   = flag.Int64("seed", 1, "random seed")
		depth  = flag.Int("depth", 4, "tree depth (fuzzy, tree)")
		fanout = flag.Int("fanout", 4, "max fanout (fuzzy, tree)")
		nodes  = flag.Int("nodes", 0, "exact node count (tree only; overrides depth)")
		events = flag.Int("events", 4, "distinct events (fuzzy)")
		n      = flag.Int("n", 10, "records in the feed scenario (feed)")
	)
	flag.Parse()
	r := rand.New(rand.NewSource(*seed))

	switch *kind {
	case "tree":
		var t *fuzzyxml.Tree
		if *nodes > 0 {
			t = gen.TreeOfSize(r, *nodes, gen.TreeConfig{})
		} else {
			t = gen.Tree(r, gen.TreeConfig{Depth: *depth, MaxFanout: *fanout})
		}
		if err := xmlio.WriteTree(os.Stdout, t); err != nil {
			fatal(err)
		}
		fmt.Println()
	case "fuzzy":
		ft := gen.Fuzzy(r, gen.FuzzyConfig{
			Tree:   gen.TreeConfig{Depth: *depth, MaxFanout: *fanout},
			Events: *events,
		})
		if err := fuzzyxml.WriteDocXML(os.Stdout, ft); err != nil {
			fatal(err)
		}
		fmt.Println()
	case "feed":
		w := gen.ExtractionFeed(r, *n)
		final, _, err := w.Apply()
		if err != nil {
			fatal(err)
		}
		if err := fuzzyxml.WriteDocXML(os.Stdout, final); err != nil {
			fatal(err)
		}
		fmt.Println()
	default:
		// A usage error, not a runtime failure: exit 2 like the other
		// tools (see docs/CLI.md).
		fmt.Fprintf(os.Stderr, "pxgen: unknown kind %q (want fuzzy | tree | feed)\n", *kind)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxgen:", err)
	os.Exit(1)
}
