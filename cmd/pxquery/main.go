// Command pxquery evaluates a TPWJ query on a probabilistic XML document
// and prints each distinct answer with its probability and condition.
//
// Usage:
//
//	pxquery -doc warehouse.pxml -query 'A(B $x, C(//D=val $y)) where $x = $y'
//	pxquery -doc warehouse.pxml -query 'A(B)' -mode mc -samples 100000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	fuzzyxml "repro"
)

func main() {
	var (
		docPath = flag.String("doc", "", "path to the .pxml document (required)")
		query   = flag.String("query", "", "TPWJ query text")
		xp      = flag.String("xpath", "", "XPath-subset query (alternative to -query)")
		mode    = flag.String("mode", "exact", "probability computation: exact | mc")
		samples = flag.Int("samples", 100000, "Monte-Carlo samples (mode mc)")
		seed    = flag.Int64("seed", 1, "Monte-Carlo random seed (mode mc)")
		conds   = flag.Bool("conds", false, "also print each answer's condition DNF")
	)
	flag.Parse()
	if *docPath == "" || (*query == "") == (*xp == "") {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "pxquery: need -doc and exactly one of -query / -xpath")
		os.Exit(2)
	}

	f, err := os.Open(*docPath)
	if err != nil {
		fatal(err)
	}
	doc, err := fuzzyxml.ReadDocXML(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	var q *fuzzyxml.Query
	if *xp != "" {
		q, err = fuzzyxml.CompileXPath(*xp)
	} else {
		q, err = fuzzyxml.ParseQuery(*query)
	}
	if err != nil {
		fatal(err)
	}

	var answers []fuzzyxml.ProbAnswer
	switch *mode {
	case "exact":
		answers, err = fuzzyxml.EvalQuery(q, doc)
	case "mc":
		answers, err = fuzzyxml.EvalQueryMC(q, doc, *samples, rand.New(rand.NewSource(*seed)))
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fatal(err)
	}

	if len(answers) == 0 {
		fmt.Println("no answers")
		return
	}
	for _, a := range answers {
		fmt.Printf("P=%.6g  %s\n", a.P, fuzzyxml.FormatTree(a.Tree))
		if *conds {
			fmt.Printf("        when %s\n", a.Cond)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxquery:", err)
	os.Exit(1)
}
