// Benchmarks, one family per experiment of the reproduction (see
// DESIGN.md §5 and EXPERIMENTS.md). The same code paths are regenerated
// as paper-style tables by cmd/pxbench; here they run under testing.B
// for statistically robust numbers:
//
//	go test -bench=. -benchmem
package fuzzyxml_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	fuzzyxml "repro"
	"repro/internal/event"
	"repro/internal/exp"
	"repro/internal/fuzzy"
	"repro/internal/gen"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
	"repro/internal/warehouse"
)

// --- E2: possible-worlds expansion blow-up --------------------------------

func BenchmarkE2Expand(b *testing.B) {
	for _, m := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("events=%d", m), func(b *testing.B) {
			ft := exp.SectionDoc(m)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ft.Expand(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3: query evaluation, fuzzy direct vs possible-worlds baseline -------

func BenchmarkE3QueryFuzzy(b *testing.B) {
	for _, m := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("events=%d", m), func(b *testing.B) {
			ft := exp.SectionDoc(m)
			q := fuzzyxml.MustParseQuery("A(//L $x)")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fuzzyxml.EvalQuery(q, ft); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE3QueryWorlds(b *testing.B) {
	for _, m := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("events=%d", m), func(b *testing.B) {
			ft := exp.SectionDoc(m)
			q := fuzzyxml.MustParseQuery("A(//L $x)")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pw, err := ft.Expand()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := fuzzyxml.EvalQueryOnWorlds(q, pw, fuzzyxml.MinimalSubtree); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE3QueryMonteCarlo(b *testing.B) {
	ft := exp.SectionDoc(12)
	q := fuzzyxml.MustParseQuery("A(//L $x)")
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fuzzyxml.EvalQueryMC(q, ft, 10000, r); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: update application, fuzzy direct vs possible-worlds baseline -----

func BenchmarkE4UpdateFuzzy(b *testing.B) {
	for _, m := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("events=%d", m), func(b *testing.B) {
			ft := exp.SectionDoc(m)
			tx := fuzzyxml.NewTransaction(fuzzyxml.MustParseQuery("A(S $x)"), 0.9,
				fuzzyxml.InsertOp("x", fuzzyxml.MustParseTree("N:new")))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := fuzzyxml.ApplyUpdate(tx, ft); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE4UpdateWorlds(b *testing.B) {
	for _, m := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("events=%d", m), func(b *testing.B) {
			ft := exp.SectionDoc(m)
			tx := fuzzyxml.NewTransaction(fuzzyxml.MustParseQuery("A(S $x)"), 0.9,
				fuzzyxml.InsertOp("x", fuzzyxml.MustParseTree("N:new")))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pw, err := ft.Expand()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := fuzzyxml.ApplyUpdateToWorlds(tx, pw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: deletion blow-up ---------------------------------------------------

func BenchmarkE5DeletionGrowthDependent(b *testing.B) {
	for _, k := range []int{2, 4, 6, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var finalSize int
			for i := 0; i < b.N; i++ {
				w := gen.DependentDeletions(k)
				final, _, err := w.Apply()
				if err != nil {
					b.Fatal(err)
				}
				finalSize = final.Size()
			}
			b.ReportMetric(float64(finalSize), "final-nodes")
		})
	}
}

func BenchmarkE5DeletionGrowthIndependent(b *testing.B) {
	for _, k := range []int{2, 4, 6, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var finalSize int
			for i := 0; i < b.N; i++ {
				w := gen.IndependentDeletions(k)
				final, _, err := w.Apply()
				if err != nil {
					b.Fatal(err)
				}
				finalSize = final.Size()
			}
			b.ReportMetric(float64(finalSize), "final-nodes")
		})
	}
}

// --- E6: the slide-15 conditional replacement ------------------------------

func BenchmarkE6ConditionalReplacement(b *testing.B) {
	doc := exp.Slide15Doc()
	tx := exp.Slide15Tx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := tx.ApplyFuzzy(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: simplification ------------------------------------------------------

func BenchmarkE7Simplify(b *testing.B) {
	base, _, err := gen.DependentDeletions(6).Apply()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		work := base.Clone()
		work.Simplify()
	}
}

// --- E8: warehouse -----------------------------------------------------------

func BenchmarkE8WarehouseUpdate(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			dir, err := os.MkdirTemp("", "bench-wh-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			w, err := warehouse.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			data := gen.TreeOfSize(rand.New(rand.NewSource(1)), n, gen.TreeConfig{})
			ft := fuzzyxml.NewFuzzyTree(fuzzy.FromData(data), event.NewTable())
			if err := w.Create("doc", ft); err != nil {
				b.Fatal(err)
			}
			tx := update.New(tpwj.MustParseQuery("A $a"), 0.9,
				update.Insert("a", tree.MustParse("N:new")))
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := w.Update("doc", tx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE8WarehouseQuery(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			dir, err := os.MkdirTemp("", "bench-wh-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			w, err := warehouse.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			data := gen.TreeOfSize(rand.New(rand.NewSource(1)), n, gen.TreeConfig{})
			ft := fuzzyxml.NewFuzzyTree(fuzzy.FromData(data), event.NewTable())
			if err := w.Create("doc", ft); err != nil {
				b.Fatal(err)
			}
			q := tpwj.MustParseQuery("//C $x")
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := w.Query("doc", q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E9: Monte-Carlo estimation ------------------------------------------------

func BenchmarkE9MonteCarlo(b *testing.B) {
	tab := event.NewTable()
	var d event.DNF
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 8; i++ {
		id, _ := tab.Fresh("e", 0.1+0.8*r.Float64())
		d = append(d, event.Cond(event.Pos(id)))
	}
	for _, samples := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("samples=%d", samples), func(b *testing.B) {
			rmc := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tab.EstimateDNF(d, samples, rmc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E10: query scaling ---------------------------------------------------------

func BenchmarkE10QueryScaling(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		doc := gen.TreeOfSize(rand.New(rand.NewSource(int64(n))), n, gen.TreeConfig{})
		ix := tree.NewIndex(doc)
		for _, p := range []struct{ name, query string }{
			{"leaf", "//C $x"},
			{"chain", "A(//C $x(//E $y))"},
			{"join", "A(//B $x, //C $y) where $x = $y"},
		} {
			b.Run(fmt.Sprintf("nodes=%d/%s", n, p.name), func(b *testing.B) {
				q := tpwj.MustParseQuery(p.query)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := tpwj.CountMatches(q, ix); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ------------------------

// BenchmarkAblationProbDNF compares the memoized Shannon expansion with
// brute-force world enumeration for the same DNFs. The workload builder
// is shared with the pxbench -json probes (exp.AblationDNF) so the two
// stay comparable.
func BenchmarkAblationProbDNF(b *testing.B) {
	for _, m := range []int{6, 10, 14} {
		tab, d := exp.AblationDNF(m)
		b.Run(fmt.Sprintf("shannon/events=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tab.ProbDNF(d); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("brute/events=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tab.ProbDNFBrute(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSimplifyBeforeQuery measures whether simplifying a
// redundant document first pays off for querying. The document carries
// dead branches (their guard event has probability 0) that raw matching
// keeps visiting and simplification removes.
func BenchmarkAblationSimplifyBeforeQuery(b *testing.B) {
	base := exp.SectionDoc(10)
	base.Table.MustSet("never", 0)
	for i := 0; i < 10; i++ {
		dead := fuzzy.NewNode("S", fuzzy.NewLeaf("L", "dead"), fuzzy.NewLeaf("M", "dead"))
		base.Root.Add(dead.WithCond(event.Cond(event.Pos("never"))))
	}
	simplified := base.Clone()
	simplified.Simplify()
	q := tpwj.MustParseQuery("A(//L $x)")
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tpwj.EvalFuzzy(q, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simplified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tpwj.EvalFuzzy(q, simplified); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOptimizer compares matching with and without
// selectivity-based reordering where reordering genuinely pays: a highly
// selective branch (a label that barely occurs) placed after a frequent
// one. The naive order re-fails the rare branch once per frequent
// binding; the optimized order fails once.
func BenchmarkAblationOptimizer(b *testing.B) {
	doc := gen.TreeOfSize(rand.New(rand.NewSource(5)), 5000,
		gen.TreeConfig{Labels: []string{"A", "B", "B", "B", "B", "C"}})
	doc.Add(tree.NewLeaf("Rare", "x")) // exactly one Rare node
	ix := tree.NewIndex(doc)
	naive := tpwj.MustParseQuery(`A(//B $b, //Rare="missing" $r)`)
	opt := tpwj.Optimize(naive, ix)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tpwj.CountMatches(naive, ix); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tpwj.CountMatches(opt, ix); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCanonicalNormalize measures possible-worlds
// normalization (canonical-form hashing), the backbone of every
// worlds-side operation.
func BenchmarkAblationCanonicalNormalize(b *testing.B) {
	ft := exp.SectionDoc(12)
	pw, err := ft.ExpandUnmerged()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pw.Normalize()
	}
}

// --- Server: HTTP query throughput ----------------------------------------

// BenchmarkServerQuery measures end-to-end HTTP query latency against
// pxserve's handler stack: sequential and parallel clients, with the
// result cache cold (disabled, every request evaluates) and warm (the
// repeated identical query is served from the LRU).
func BenchmarkServerQuery(b *testing.B) {
	newServer := func(b *testing.B, cacheSize int) *httptest.Server {
		b.Helper()
		wh, err := fuzzyxml.OpenWarehouse(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if err := wh.Create("doc", exp.SectionDoc(8)); err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(fuzzyxml.NewServer(wh, fuzzyxml.ServerOptions{CacheSize: cacheSize}))
		b.Cleanup(func() {
			ts.Close()
			wh.Close()
		})
		return ts
	}
	body := []byte(`{"query":"A(//L $x)"}`)
	post := func(ts *httptest.Server) error {
		resp, err := http.Post(ts.URL+"/docs/doc/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	for _, bc := range []struct {
		name  string
		cache int
	}{
		{"cold", -1},
		{"warm", 1024},
	} {
		b.Run("sequential/"+bc.name, func(b *testing.B) {
			ts := newServer(b, bc.cache)
			if bc.cache > 0 {
				// Prime the cache so every timed iteration is a hit.
				if err := post(ts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := post(ts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("parallel/"+bc.name, func(b *testing.B) {
			ts := newServer(b, bc.cache)
			if bc.cache > 0 {
				if err := post(ts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := post(ts); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
