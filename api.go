package fuzzyxml

import (
	"io"
	"math/rand"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/infer"
	"repro/internal/keyword"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
	"repro/internal/vfs"
	"repro/internal/view"
	"repro/internal/warehouse"
	"repro/internal/worlds"
	"repro/internal/xmlio"
	"repro/internal/xpath"
	"repro/internal/xupdate"
)

// Core model types, re-exported from the internal packages. The aliases
// are transparent: values flow freely between the facade and the
// internal APIs.
type (
	// Tree is an unordered data tree node (bag semantics for children,
	// no mixed content).
	Tree = tree.Node
	// EventID identifies a probabilistic event.
	EventID = event.ID
	// Literal is an event or its negation.
	Literal = event.Literal
	// Condition is a conjunction of event literals.
	Condition = event.Condition
	// DNF is a disjunction of conditions, as carried by query answers.
	DNF = event.DNF
	// Formula is an arbitrary Boolean formula over events, as carried by
	// answers of queries with negation.
	Formula = event.Formula
	// EventTable assigns probabilities to independent events.
	EventTable = event.Table
	// Assignment maps events to truth values (one possible world of the
	// event space).
	Assignment = event.Assignment
	// FuzzyNode is a conditioned tree node.
	FuzzyNode = fuzzy.Node
	// FuzzyTree is a fuzzy tree: conditioned nodes plus an event table.
	// This is the paper's probabilistic document representation.
	FuzzyTree = fuzzy.Tree
	// SimplifyStats reports what FuzzyTree.Simplify changed.
	SimplifyStats = fuzzy.SimplifyStats
	// Worlds is a possible-worlds set: pairs of (tree, probability).
	Worlds = worlds.Set
	// World is one possible world.
	World = worlds.World
	// Query is a tree-pattern-with-join query.
	Query = tpwj.Query
	// PatternNode is one node of a query pattern.
	PatternNode = tpwj.PNode
	// Match is a valuation of a query in a document.
	Match = tpwj.Match
	// ProbAnswer is a query answer over a fuzzy tree: answer tree,
	// condition DNF and exact probability.
	ProbAnswer = tpwj.ProbAnswer
	// ResultMode selects answer materialization (MinimalSubtree or
	// WithSubtrees).
	ResultMode = tpwj.ResultMode
	// Transaction is a probabilistic update transaction.
	Transaction = update.Transaction
	// Op is an elementary insertion or deletion.
	Op = update.Op
	// UpdateStats reports what applying a transaction to a fuzzy tree
	// did.
	UpdateStats = update.FuzzyStats
	// Warehouse is a durable store of named fuzzy documents.
	Warehouse = warehouse.Warehouse
	// WarehouseInfo summarizes a stored document.
	WarehouseInfo = warehouse.Info
	// JournalStats reports warehouse journal counters: durable
	// appends, group-commit fsync batches, recovery outcomes.
	JournalStats = warehouse.JournalStats
	// JournalSummary describes a warehouse journal file as found on
	// disk, without recovering it (see InspectJournal).
	JournalSummary = warehouse.JournalSummary
	// KeywordMode selects keyword-search answer semantics (SLCA or
	// ELCA).
	KeywordMode = keyword.Mode
	// KeywordRequest describes one keyword search: keywords, mode,
	// exact or Monte-Carlo probabilities, MinProb threshold, TopK cut.
	KeywordRequest = keyword.Request
	// KeywordAnswer is one keyword-search answer: a document node and
	// the probability that it is an SLCA/ELCA answer.
	KeywordAnswer = keyword.Answer
	// KeywordResult is the outcome of one keyword search.
	KeywordResult = keyword.Result
	// KeywordIndex is a per-document inverted index for keyword search.
	KeywordIndex = keyword.Index
	// WarehouseSearchStats reports a warehouse's keyword-search
	// counters (index builds, hits, invalidations, threshold prunes).
	WarehouseSearchStats = warehouse.SearchStats
	// ViewDefinition is the registered identity of a materialized
	// view: name, query text and syntax ("tpwj" or "xpath").
	ViewDefinition = view.Definition
	// ViewResult is one materialized-view read: the definition, the
	// incrementally maintained answers, and whether the read was
	// served stale (a maintenance pass was in flight).
	ViewResult = warehouse.ViewResult
	// WarehouseViewStats reports a warehouse's materialized-view
	// counters: registered views, maintenance tiers taken (skipped /
	// incremental / full recomputes), reused vs recomputed answer
	// probabilities, and stale reads.
	WarehouseViewStats = warehouse.ViewStats
	// StorageStats reports a warehouse's storage backend and on-disk
	// footprint (Warehouse.StorageStats, the /stats storage section).
	StorageStats = store.Stats
	// Server is an http.Handler exposing a warehouse over an HTTP/JSON
	// API with per-document concurrency and a query-result cache.
	Server = server.Server
	// ServerOptions configures NewServer (cache size, request logging,
	// slow-query threshold, trace-ring size).
	ServerOptions = server.Options
	// ServerStats is the GET /stats response: request counters with
	// latency quantiles, per-stage latencies, cache hit rate, engine
	// and journal counters, uptime and build version.
	ServerStats = server.StatsSnapshot
)

// Warehouse error categories, for mapping failures to responses; test
// with errors.Is.
var (
	// ErrDocNotFound reports an operation on a missing document.
	ErrDocNotFound = warehouse.ErrNotFound
	// ErrDocExists reports creating a document name already in use.
	ErrDocExists = warehouse.ErrExists
	// ErrInvalidDocName reports a document name outside [A-Za-z0-9_-].
	ErrInvalidDocName = warehouse.ErrInvalidName
	// ErrWarehouseClosed reports use of a warehouse after Close.
	ErrWarehouseClosed = warehouse.ErrClosed
	// ErrWarehouseDegraded reports a write rejected because the
	// warehouse is in degraded read-only mode after an unrecoverable
	// storage error; reads keep serving and Warehouse.Reopen recovers.
	// The server maps it to 503 with a Retry-After header. See
	// docs/FAULTS.md.
	ErrWarehouseDegraded = warehouse.ErrDegraded
	// ErrViewNotFound reports an operation on a missing materialized
	// view.
	ErrViewNotFound = warehouse.ErrViewNotFound
	// ErrViewExists reports registering a view name already in use on
	// its document.
	ErrViewExists = warehouse.ErrViewExists
	// ErrInvalidView reports a view definition that does not compile.
	ErrInvalidView = warehouse.ErrInvalidView
)

// NewServer builds an HTTP handler serving the warehouse: document
// CRUD, TPWJ/XPath queries (exact or Monte-Carlo), probabilistic
// updates, simplification and admin routes. See repro/internal/server
// for the route list.
func NewServer(w *Warehouse, opts ServerOptions) *Server { return server.New(w, opts) }

// Answer materialization modes.
const (
	// MinimalSubtree answers are the union of root-to-matched-node
	// paths (the paper's definition).
	MinimalSubtree = tpwj.MinimalSubtree
	// WithSubtrees answers additionally keep full subtrees below nodes
	// matched by pattern leaves.
	WithSubtrees = tpwj.WithSubtrees
)

// Keyword-search answer semantics.
const (
	// SLCA answers are smallest lowest common ancestors of the
	// keywords.
	SLCA = keyword.SLCA
	// ELCA answers are exclusive lowest common ancestors.
	ELCA = keyword.ELCA
)

// NewKeywordIndex builds the inverted keyword index of one document
// snapshot, reusable across searches until the document changes.
func NewKeywordIndex(doc *FuzzyTree) *KeywordIndex { return keyword.NewIndex(doc) }

// SearchKeywords runs one keyword search (SLCA or ELCA semantics with
// exact or Monte-Carlo probabilities) on a document, building a
// throwaway index. Use NewKeywordIndex + SearchIndexed to amortize the
// index over repeated searches, or Warehouse.Search for stored
// documents (the warehouse caches indexes per document).
func SearchKeywords(doc *FuzzyTree, req KeywordRequest) (*KeywordResult, error) {
	return keyword.Search(keyword.NewIndex(doc), req)
}

// SearchIndexed runs one keyword search against a prebuilt index.
func SearchIndexed(ix *KeywordIndex, req KeywordRequest) (*KeywordResult, error) {
	return keyword.Search(ix, req)
}

// ParseSearchMode parses "slca" or "elca" (empty defaults to SLCA).
func ParseSearchMode(s string) (KeywordMode, error) { return keyword.ParseMode(s) }

// NewEventTable returns an empty event table.
func NewEventTable() *EventTable { return event.NewTable() }

// NewFuzzyTree pairs a conditioned root with an event table.
func NewFuzzyTree(root *FuzzyNode, table *EventTable) *FuzzyTree {
	return &fuzzy.Tree{Root: root, Table: table}
}

// NewTransaction builds an update transaction over q with confidence
// conf.
func NewTransaction(q *Query, conf float64, ops ...Op) *Transaction {
	return update.New(q, conf, ops...)
}

// InsertOp builds an insertion of subtree under the node bound to
// varName.
func InsertOp(varName string, subtree *Tree) Op { return update.Insert(varName, subtree) }

// DeleteOp builds a deletion of the subtree rooted at the node bound to
// varName.
func DeleteOp(varName string) Op { return update.Delete(varName) }

// EvalQuery evaluates a TPWJ query directly on a fuzzy tree, returning
// distinct answers with exact probabilities (descending).
func EvalQuery(q *Query, doc *FuzzyTree) ([]ProbAnswer, error) {
	return tpwj.EvalFuzzy(q, doc)
}

// EvalQueryMC is EvalQuery with Monte-Carlo probability estimation.
func EvalQueryMC(q *Query, doc *FuzzyTree, samples int, r *rand.Rand) ([]ProbAnswer, error) {
	return tpwj.EvalFuzzyMonteCarlo(q, doc, samples, r)
}

// EvalQueryOnTree evaluates a query on a plain data tree.
func EvalQueryOnTree(q *Query, doc *Tree, mode ResultMode) ([]*Tree, error) {
	return tpwj.Eval(q, doc, mode)
}

// EvalQueryOnWorlds evaluates a query world by world — the paper's
// semantic definition and the exponential baseline.
func EvalQueryOnWorlds(q *Query, s *Worlds, mode ResultMode) (*Worlds, error) {
	return tpwj.EvalWorlds(q, s, mode)
}

// ApplyUpdate applies a transaction directly to a fuzzy tree, returning
// the new tree (the input is unchanged).
func ApplyUpdate(tx *Transaction, doc *FuzzyTree) (*FuzzyTree, *UpdateStats, error) {
	return tx.ApplyFuzzy(doc)
}

// ApplyUpdateToWorlds applies a transaction world by world — the paper's
// semantic definition and the exponential baseline.
func ApplyUpdateToWorlds(tx *Transaction, s *Worlds) (*Worlds, error) {
	return tx.ApplyWorlds(s)
}

// PossibleWorlds expands a fuzzy tree into its possible-worlds semantics
// (exact; refuses more than fuzzy.MaxExactEvents events — use
// SampleWorlds beyond that).
func PossibleWorlds(doc *FuzzyTree) (*Worlds, error) {
	return doc.Expand()
}

// SampleWorlds estimates the possible-worlds distribution of a fuzzy
// tree from n random worlds.
func SampleWorlds(doc *FuzzyTree, n int, r *rand.Rand) (*Worlds, error) {
	return doc.SampleSet(n, r)
}

// FromWorlds encodes a possible-worlds distribution as a fuzzy tree (the
// expressiveness theorem). All worlds must share their root label and
// value.
func FromWorlds(s *Worlds, eventPrefix string) (*FuzzyTree, error) {
	return fuzzy.FromWorlds(s, eventPrefix)
}

// Simplify runs all semantics-preserving simplification passes on the
// document, in place, and reports what changed.
func Simplify(doc *FuzzyTree) SimplifyStats { return doc.Simplify() }

// Storage backend names, accepted by OpenWarehouseBackend and the
// -store flag of pxserve and pxwarehouse. See docs/STORAGE.md for the
// on-disk formats and the contract a backend implements.
const (
	// StoreFile is the file-per-document layout: docs/<name>.pxml
	// files, a newline-delimited journal.log, and a views.json
	// snapshot.
	StoreFile = warehouse.BackendFile
	// StoreKV is the embedded single-file page store: every journal
	// record, document and view snapshot is a CRC-framed record in one
	// append-only kv.store file.
	StoreKV = warehouse.BackendKV
	// StoreAuto detects the backend from the directory layout (kv.store
	// present → StoreKV) and defaults to StoreFile for fresh
	// directories.
	StoreAuto = warehouse.BackendAuto
)

// OpenWarehouse opens (creating if necessary) a warehouse directory and
// runs scan-based crash recovery: each document is restored to its last
// committed journaled state and in-flight mutations are rolled back.
// The file-per-document backend is used; OpenWarehouseBackend selects
// others.
func OpenWarehouse(dir string) (*Warehouse, error) { return warehouse.Open(dir) }

// OpenWarehouseBackend is OpenWarehouse with an explicit storage
// backend (StoreFile, StoreKV, or StoreAuto to detect from the
// directory).
func OpenWarehouseBackend(dir, backend string) (*Warehouse, error) {
	return warehouse.OpenBackend(dir, backend, vfs.OS)
}

// InspectJournal summarizes a warehouse directory's journal — record
// and outcome counts, in-flight mutations, torn tails, structural
// problems — without opening the warehouse or running recovery (the
// pxwarehouse verify-journal subcommand). The storage backend is
// detected from the directory layout.
func InspectJournal(dir string) (JournalSummary, error) { return warehouse.InspectJournal(dir) }

// --- parsing and formatting ------------------------------------------------

// ParseTree parses the compact text format for data trees:
// "A(B:foo, C(D:bar))".
func ParseTree(s string) (*Tree, error) { return tree.Parse(s) }

// MustParseTree is ParseTree panicking on error, for constant inputs.
func MustParseTree(s string) *Tree { return tree.MustParse(s) }

// FormatTree renders a data tree in the compact text format.
func FormatTree(n *Tree) string { return tree.Format(n) }

// ParseFuzzy parses the fuzzy text format "A(B[w1 !w2]:foo, C(D[w2]))"
// together with its event probabilities, validating the result.
func ParseFuzzy(s string, probs map[EventID]float64) (*FuzzyTree, error) {
	return fuzzy.ParseTree(s, probs)
}

// MustParseFuzzy is ParseFuzzy panicking on error, for constant inputs.
func MustParseFuzzy(s string, probs map[EventID]float64) *FuzzyTree {
	return fuzzy.MustParseTree(s, probs)
}

// FormatFuzzy renders a fuzzy node hierarchy in the fuzzy text format.
func FormatFuzzy(n *FuzzyNode) string { return fuzzy.Format(n) }

// ParseQuery parses the TPWJ query syntax:
// "A(B $x, C(//D=val $y)) where $x = $y".
func ParseQuery(s string) (*Query, error) { return tpwj.ParseQuery(s) }

// MustParseQuery is ParseQuery panicking on error, for constant inputs.
func MustParseQuery(s string) *Query { return tpwj.MustParseQuery(s) }

// FormatQuery renders a query in the textual syntax.
func FormatQuery(q *Query) string { return tpwj.FormatQuery(q) }

// ParseCondition parses the condition syntax "w1 !w2".
func ParseCondition(s string) (Condition, error) { return event.ParseCondition(s) }

// CompileXPath compiles a standard XPath subset (e.g.
// "/library/book[author='Kafka']/title") into a TPWJ query whose final
// step binds the variable "result".
func CompileXPath(s string) (*Query, error) { return xpath.Compile(s) }

// OptimizeQuery returns a clone of q with sub-patterns reordered by
// selectivity against the given document (answers are unchanged; only
// matching cost improves).
func OptimizeQuery(q *Query, doc *Tree) *Query {
	return tpwj.Optimize(q, tree.NewIndex(doc))
}

// ProbSelected returns the probability that the query has at least one
// answer on the document (the paper's "document is selected by Q").
func ProbSelected(q *Query, doc *FuzzyTree) (float64, error) {
	return infer.ProbSelected(q, doc)
}

// Posterior returns, for every event of the document, its posterior
// probability given that the query matched (Bayesian conditioning on
// query evidence).
func Posterior(q *Query, doc *FuzzyTree) (map[EventID]float64, error) {
	return infer.Posterior(q, doc)
}

// Correlation quantifies the dependence of two queries on the document;
// see infer.Correlation.
func Correlation(q1, q2 *Query, doc *FuzzyTree) (both, p1, p2, lift float64, err error) {
	return infer.Correlation(q1, q2, doc)
}

// DocumentEntropy returns the Shannon entropy (bits) of the document's
// possible-worlds distribution.
func DocumentEntropy(doc *FuzzyTree) (float64, error) {
	return infer.DocumentEntropy(doc)
}

// ReadTreeXML parses a plain data tree from XML (attributes become child
// leaves, following the paper's model).
func ReadTreeXML(r io.Reader) (*Tree, error) { return xmlio.ReadTree(r) }

// WriteTreeXML serializes a plain data tree as indented XML.
func WriteTreeXML(w io.Writer, n *Tree) error { return xmlio.WriteTree(w, n) }

// ReadDocXML parses a fuzzy document from the <pxml> XML format.
func ReadDocXML(r io.Reader) (*FuzzyTree, error) { return xmlio.ReadDoc(r) }

// WriteDocXML serializes a fuzzy document in the <pxml> XML format.
func WriteDocXML(w io.Writer, doc *FuzzyTree) error { return xmlio.WriteDoc(w, doc) }

// ReadTransactionXML parses one XUpdate-style <transaction> document.
func ReadTransactionXML(r io.Reader) (*Transaction, error) {
	return xupdate.ReadTransaction(r)
}

// ReadTransactionsXML parses a <transactions> list.
func ReadTransactionsXML(r io.Reader) ([]*Transaction, error) {
	return xupdate.ReadTransactions(r)
}

// WriteTransactionXML serializes a transaction in the XUpdate-style
// syntax.
func WriteTransactionXML(w io.Writer, tx *Transaction) error {
	return xupdate.WriteTransaction(w, tx)
}
