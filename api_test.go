package fuzzyxml_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	fuzzyxml "repro"
)

func slide12doc() *fuzzyxml.FuzzyTree {
	return fuzzyxml.MustParseFuzzy("A(B[w1 !w2], C(D[w2]))",
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})
}

func TestFacadeQueryRoundTrip(t *testing.T) {
	q, err := fuzzyxml.ParseQuery("A(B $x, //C=v $y) where $x = $y")
	if err != nil {
		t.Fatal(err)
	}
	if got := fuzzyxml.FormatQuery(q); got != "A(B $x, //C=v $y) where $x = $y" {
		t.Errorf("FormatQuery = %q", got)
	}
}

func TestFacadeTreeHelpers(t *testing.T) {
	n, err := fuzzyxml.ParseTree("A(B:foo)")
	if err != nil {
		t.Fatal(err)
	}
	if fuzzyxml.FormatTree(n) != "A(B:foo)" {
		t.Errorf("FormatTree = %q", fuzzyxml.FormatTree(n))
	}
	c, err := fuzzyxml.ParseCondition("w1 !w2")
	if err != nil || c.String() != "w1 !w2" {
		t.Errorf("ParseCondition = %q, %v", c, err)
	}
}

func TestFacadeXMLRoundTrip(t *testing.T) {
	doc := slide12doc()
	var buf bytes.Buffer
	if err := fuzzyxml.WriteDocXML(&buf, doc); err != nil {
		t.Fatal(err)
	}
	back, err := fuzzyxml.ReadDocXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fuzzyxml.FormatFuzzy(back.Root) != fuzzyxml.FormatFuzzy(doc.Root) {
		t.Error("XML round trip changed document")
	}

	var tb bytes.Buffer
	tr := fuzzyxml.MustParseTree("A(B:foo)")
	if err := fuzzyxml.WriteTreeXML(&tb, tr); err != nil {
		t.Fatal(err)
	}
	back2, err := fuzzyxml.ReadTreeXML(&tb)
	if err != nil {
		t.Fatal(err)
	}
	if fuzzyxml.FormatTree(back2) != "A(B:foo)" {
		t.Errorf("tree XML round trip = %q", fuzzyxml.FormatTree(back2))
	}
}

func TestFacadeTransactionXML(t *testing.T) {
	tx := fuzzyxml.NewTransaction(fuzzyxml.MustParseQuery("A(B $x)"), 0.5,
		fuzzyxml.DeleteOp("x"))
	var buf bytes.Buffer
	if err := fuzzyxml.WriteTransactionXML(&buf, tx); err != nil {
		t.Fatal(err)
	}
	back, err := fuzzyxml.ReadTransactionXML(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Conf != 0.5 || len(back.Ops) != 1 {
		t.Errorf("transaction round trip: %+v", back)
	}
	list, err := fuzzyxml.ReadTransactionsXML(strings.NewReader(
		"<transactions>" + buf.String() + "</transactions>"))
	if err != nil || len(list) != 1 {
		t.Errorf("transactions list: %v, %v", list, err)
	}
}

func TestFacadeSampleWorlds(t *testing.T) {
	doc := slide12doc()
	s, err := fuzzyxml.SampleWorlds(doc, 50000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := fuzzyxml.PossibleWorlds(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range exact.Worlds {
		if math.Abs(s.ProbOf(w.Tree)-w.P) > 0.02 {
			t.Errorf("sampled P(%s) = %v, exact %v",
				fuzzyxml.FormatTree(w.Tree), s.ProbOf(w.Tree), w.P)
		}
	}
}

func TestFacadeEvalQueryOnTree(t *testing.T) {
	doc := fuzzyxml.MustParseTree("A(B:foo, C(D))")
	answers, err := fuzzyxml.EvalQueryOnTree(
		fuzzyxml.MustParseQuery("A(//D $x)"), doc, fuzzyxml.MinimalSubtree)
	if err != nil || len(answers) != 1 {
		t.Fatalf("answers = %v, err = %v", answers, err)
	}
}

func TestFacadeCompileXPath(t *testing.T) {
	q, err := fuzzyxml.CompileXPath("/A/B")
	if err != nil {
		t.Fatal(err)
	}
	if fuzzyxml.FormatQuery(q) != "A(B $result)" {
		t.Errorf("CompileXPath = %q", fuzzyxml.FormatQuery(q))
	}
	doc := slide12doc()
	answers, err := fuzzyxml.EvalQuery(q, doc)
	if err != nil || len(answers) != 1 || math.Abs(answers[0].P-0.24) > 1e-12 {
		t.Errorf("xpath query answers = %v, err = %v", answers, err)
	}
}

func TestFacadeOptimizeQuery(t *testing.T) {
	doc := fuzzyxml.MustParseTree("A(B, B, B, C)")
	q := fuzzyxml.MustParseQuery("A(//B $b, //C $c)")
	opt := fuzzyxml.OptimizeQuery(q, doc)
	if opt.Root.Children[0].Label != "C" {
		t.Errorf("OptimizeQuery did not reorder: %s", fuzzyxml.FormatQuery(opt))
	}
	a1, _ := fuzzyxml.EvalQueryOnTree(q, doc, fuzzyxml.MinimalSubtree)
	a2, _ := fuzzyxml.EvalQueryOnTree(opt, doc, fuzzyxml.MinimalSubtree)
	if len(a1) != len(a2) {
		t.Error("optimization changed answers")
	}
}

func TestFacadeInference(t *testing.T) {
	doc := slide12doc()
	p, err := fuzzyxml.ProbSelected(fuzzyxml.MustParseQuery("A(//D)"), doc)
	if err != nil || math.Abs(p-0.7) > 1e-12 {
		t.Errorf("ProbSelected = %v, %v", p, err)
	}
	post, err := fuzzyxml.Posterior(fuzzyxml.MustParseQuery("A(B)"), doc)
	if err != nil || math.Abs(post["w1"]-1) > 1e-12 {
		t.Errorf("Posterior = %v, %v", post, err)
	}
	_, _, _, lift, err := fuzzyxml.Correlation(
		fuzzyxml.MustParseQuery("A(B)"), fuzzyxml.MustParseQuery("A(//D)"), doc)
	if err != nil || lift != 0 {
		t.Errorf("Correlation lift = %v, %v", lift, err)
	}
	h, err := fuzzyxml.DocumentEntropy(doc)
	if err != nil || h <= 0 || h >= 2 {
		t.Errorf("DocumentEntropy = %v, %v", h, err)
	}
}

func TestFacadeNegationQuery(t *testing.T) {
	doc := slide12doc()
	answers, err := fuzzyxml.EvalQuery(fuzzyxml.MustParseQuery("A $x(!B)"), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || math.Abs(answers[0].P-0.76) > 1e-12 {
		t.Errorf("negation answers = %v", answers)
	}
}

func TestFacadeWarehouse(t *testing.T) {
	w, err := fuzzyxml.OpenWarehouse(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Create("d", slide12doc()); err != nil {
		t.Fatal(err)
	}
	info, err := w.Stat("d")
	if err != nil || info.Nodes != 4 {
		t.Errorf("Stat = %+v, %v", info, err)
	}
}
