// Data cleaning with uncertain corrections (slide 15 generalized): a
// cleaning pass replaces suspect values with corrections it is only
// partly confident about. Deletions under uncertainty expand the fuzzy
// tree (the paper's exponential-growth warning); simplification then
// shrinks it back where conditions allow.
//
// Run with: go run ./examples/data_cleaning
package main

import (
	"fmt"
	"math/rand"

	fuzzyxml "repro"
	"repro/internal/gen"
)

func main() {
	// A feed of extraction records with stale city values, each record
	// already uncertain (its own event).
	w := gen.CleaningFeed(rand.New(rand.NewSource(42)), 4)
	fmt.Println("before cleaning:")
	fmt.Println("  ", fuzzyxml.FormatFuzzy(w.Doc.Root))
	fmt.Printf("   %d nodes, %d events\n\n", w.Doc.Size(), w.Doc.Table.Len())

	// Apply the cleaning transactions (conditional replacement of each
	// record's city, with per-record confidence).
	final, stats, err := w.Apply()
	if err != nil {
		panic(err)
	}
	var copies int
	for _, s := range stats {
		copies += s.Copies
	}
	fmt.Println("after cleaning:")
	fmt.Println("  ", fuzzyxml.FormatFuzzy(final.Root))
	fmt.Printf("   %d nodes (deletion expansion created %d conditioned copies)\n\n",
		final.Size(), copies)

	// Queries see through the uncertainty: what is person000's city?
	q := fuzzyxml.MustParseQuery(`warehouse(person(name="person000", city $c))`)
	answers, err := fuzzyxml.EvalQuery(q, final)
	if err != nil {
		panic(err)
	}
	fmt.Println("person000's city:")
	for _, a := range answers {
		fmt.Printf("  P=%.3f  %s\n", a.P, fuzzyxml.FormatTree(a.Tree))
	}

	// Simplification preserves the semantics while shrinking the tree.
	before := final.Size()
	sstats := fuzzyxml.Simplify(final)
	fmt.Printf("\nsimplify: %d -> %d nodes (-%d nodes, -%d literals, %d merges, -%d events)\n",
		before, final.Size(), sstats.NodesRemoved, sstats.LiteralsRemoved,
		sstats.SiblingsMerged, sstats.EventsRemoved)

	// Answers are unchanged after simplification.
	after, err := fuzzyxml.EvalQuery(q, final)
	if err != nil {
		panic(err)
	}
	same := len(after) == len(answers)
	for i := range after {
		if same && (after[i].P-answers[i].P > 1e-9 || answers[i].P-after[i].P > 1e-9) {
			same = false
		}
	}
	fmt.Println("answers unchanged after simplification:", same)
}
