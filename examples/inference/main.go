// Inference shows what downstream modules can do with the warehouse's
// uncertainty (slide 3: modules consume query results with confidences):
// selection probabilities, Bayesian posteriors over the confidence
// events, query correlation, answer-count distributions and document
// entropy.
//
// Run with: go run ./examples/inference
package main

import (
	"fmt"
	"sort"

	fuzzyxml "repro"
	"repro/internal/infer"
	"repro/internal/tpwj"
)

func main() {
	// The extraction warehouse of the information_extraction example:
	// two contradictory facts about Alice, one about Bob, each guarded
	// by its module's confidence event.
	doc := fuzzyxml.MustParseFuzzy(
		`people(person[e1](name:Alice, city:Paris),
		        person[e2](name:Alice, city:Lyon),
		        person[e3](name:Bob, city:Paris))`,
		map[fuzzyxml.EventID]float64{"e1": 0.8, "e2": 0.6, "e3": 0.9})

	// How likely is each query to have an answer at all?
	for _, qs := range []string{
		`people(person(city="Paris" $c))`,
		`people(person(name="Alice" $n))`,
		`people(person $p(name="Alice", city="Lyon"))`,
	} {
		p, err := fuzzyxml.ProbSelected(fuzzyxml.MustParseQuery(qs), doc)
		check(err)
		fmt.Printf("P[selected] = %.3f   %s\n", p, qs)
	}

	// Bayesian conditioning: suppose we verify that somebody does live
	// in Lyon. What does that say about each extractor?
	post, err := fuzzyxml.Posterior(
		fuzzyxml.MustParseQuery(`people(person(city="Lyon" $c))`), doc)
	check(err)
	fmt.Println("\nposterior event probabilities given a Lyon resident:")
	ids := make([]string, 0, len(post))
	for e := range post {
		ids = append(ids, string(e))
	}
	sort.Strings(ids)
	for _, e := range ids {
		fmt.Printf("  P(%s | evidence) = %.3f\n", e, post[fuzzyxml.EventID(e)])
	}

	// Correlation between two queries: Paris residents and Alice facts
	// share the e1 record, so they are positively correlated.
	q1 := fuzzyxml.MustParseQuery(`people(person(city="Paris" $c))`)
	q2 := fuzzyxml.MustParseQuery(`people(person(name="Alice" $n))`)
	both, p1, p2, lift, err := fuzzyxml.Correlation(q1, q2, doc)
	check(err)
	fmt.Printf("\nP(q1)=%.3f P(q2)=%.3f P(both)=%.3f lift=%.3f\n", p1, p2, both, lift)

	// Distribution of the number of distinct Paris residents (the name
	// is part of the answer, so Alice's and Bob's records count apart).
	countQ := tpwj.MustParseQuery(`people(person(name $n, city="Paris"))`)
	dist, err := infer.CountDistribution(countQ, doc)
	check(err)
	fmt.Println("\nnumber of named Paris residents:")
	for k := 0; k <= 2; k++ {
		fmt.Printf("  P(#=%d) = %.3f\n", k, dist[k])
	}
	mean, err := infer.ExpectedAnswerCount(countQ, doc)
	check(err)
	fmt.Printf("  expectation = %.3f\n", mean)

	// How uncertain is the whole document?
	h, err := fuzzyxml.DocumentEntropy(doc)
	check(err)
	fmt.Printf("\ndocument entropy: %.3f bits (max over %d worlds would be 3)\n",
		h, doc.WorldCount())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
