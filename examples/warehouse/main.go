// Warehouse shows the durable store of the paper's architecture
// (slides 3 and 16): named documents on disk, journaled probabilistic
// updates expressed in the XUpdate-style XML syntax, recovery on reopen.
//
// Run with: go run ./examples/warehouse
package main

import (
	"fmt"
	"os"
	"strings"

	fuzzyxml "repro"
)

const updateXML = `<transaction confidence="0.9" event="w3">
  <where>A $a(B $b, C $c)</where>
  <insert into="$a"><D/></insert>
  <delete select="$c"/>
</transaction>`

func main() {
	dir, err := os.MkdirTemp("", "pxml-warehouse-*")
	check(err)
	defer os.RemoveAll(dir)

	// Open (and initialize) the warehouse.
	w, err := fuzzyxml.OpenWarehouse(dir)
	check(err)

	// Store the slide-15 document.
	doc := fuzzyxml.MustParseFuzzy("A(B[w1], C[w2])",
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})
	check(w.Create("demo", doc))
	info, err := w.Stat("demo")
	check(err)
	fmt.Printf("stored %q: %d nodes, %d events, %d worlds\n",
		info.Name, info.Nodes, info.Events, info.Worlds)

	// Apply the slide-15 replacement, written in the XUpdate-style XML.
	tx, err := fuzzyxml.ReadTransactionXML(strings.NewReader(updateXML))
	check(err)
	stats, err := w.Update("demo", tx)
	check(err)
	fmt.Printf("update applied: %d valuations, %d inserted, %d copies\n",
		stats.Valuations, stats.Inserted, stats.Copies)

	// Query with probabilities.
	answers, err := w.Query("demo", fuzzyxml.MustParseQuery("A(D $d)"))
	check(err)
	for _, a := range answers {
		fmt.Printf("P(%s) = %.3f\n", fuzzyxml.FormatTree(a.Tree), a.P)
	}

	// Durability: close, reopen (running recovery), and read back.
	check(w.Close())
	w2, err := fuzzyxml.OpenWarehouse(dir)
	check(err)
	defer w2.Close()
	back, err := w2.Get("demo")
	check(err)
	fmt.Println("after reopen:", fuzzyxml.FormatFuzzy(back.Root))

	// The journal records every mutation with its transaction.
	recs, err := w2.Journal()
	check(err)
	fmt.Printf("journal: %d records (last op %q)\n", len(recs), recs[len(recs)-1].Op)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
