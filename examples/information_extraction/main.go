// Information extraction is the paper's motivating scenario (slides 2–3):
// extraction modules produce uncertain facts with confidence scores, and
// the warehouse accumulates them as probabilistic insertions so that later
// queries can reason about the combined uncertainty.
//
// Two extractors disagree about where Alice lives; a third fact about Bob
// is independent. The example shows how per-module confidences turn into
// answer probabilities.
//
// Run with: go run ./examples/information_extraction
package main

import (
	"fmt"

	fuzzyxml "repro"
)

func main() {
	// An initially empty warehouse document.
	doc := fuzzyxml.NewFuzzyTree(&fuzzyxml.FuzzyNode{Label: "people"}, fuzzyxml.NewEventTable())

	// Module 1 (confidence 0.8): Alice lives in Paris.
	feed(&doc, 0.8, `people $w`,
		"person(name:Alice, city:Paris)")

	// Module 2 (confidence 0.6): Alice lives in Lyon — contradicting
	// module 1; both variants coexist with their own confidence events.
	feed(&doc, 0.6, `people $w`,
		"person(name:Alice, city:Lyon)")

	// Module 3 (confidence 0.9): Bob lives in Paris.
	feed(&doc, 0.9, `people $w`,
		"person(name:Bob, city:Paris)")

	fmt.Println("warehouse document:")
	fmt.Println("  ", fuzzyxml.FormatFuzzy(doc.Root))
	fmt.Println("   events:", doc.Table)

	// Who lives in Paris? Each answer carries its probability.
	q := fuzzyxml.MustParseQuery(`people(person $p(name $n, city="Paris"))`)
	answers, err := fuzzyxml.EvalQuery(q, doc)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nwho lives in Paris?")
	for _, a := range answers {
		fmt.Printf("  P=%.2f  %s\n", a.P, fuzzyxml.FormatTree(a.Tree))
	}

	// A value join: pairs of people living in the same city.
	jq := fuzzyxml.MustParseQuery(
		`people(person(name="Alice", city $c1), person(name="Bob", city $c2)) where $c1 = $c2`)
	joined, err := fuzzyxml.EvalQuery(jq, doc)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nAlice and Bob in the same city?")
	for _, a := range joined {
		fmt.Printf("  P=%.3g  %s\n", a.P, fuzzyxml.FormatTree(a.Tree))
	}

	// The exact world count stays exponential; the fuzzy tree answers
	// without expanding it.
	fmt.Printf("\n(%d possible worlds, never enumerated)\n", doc.WorldCount())
}

// feed applies one probabilistic insertion to the document.
func feed(doc **fuzzyxml.FuzzyTree, conf float64, query, record string) {
	tx := fuzzyxml.NewTransaction(
		fuzzyxml.MustParseQuery(query),
		conf,
		fuzzyxml.InsertOp("w", fuzzyxml.MustParseTree(record)),
	)
	next, _, err := fuzzyxml.ApplyUpdate(tx, *doc)
	if err != nil {
		panic(err)
	}
	*doc = next
}
