// Quickstart walks through the paper's three worked examples end to end:
// the fuzzy tree of slide 12 and its possible-worlds semantics, a
// probabilistic query (slide 13), and the conditional replacement of
// slide 15.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	fuzzyxml "repro"
)

func main() {
	// --- The slide-12 document -------------------------------------------
	// A data tree with conditions: B exists when w1 ∧ ¬w2, D when w2.
	doc := fuzzyxml.MustParseFuzzy("A(B[w1 !w2], C(D[w2]))",
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})
	fmt.Println("document:", fuzzyxml.FormatFuzzy(doc.Root))
	fmt.Println("events:  ", doc.Table)

	// Its semantics: a possible-worlds distribution (slide 12 shows
	// P = 0.06, 0.70, 0.24).
	pw, err := fuzzyxml.PossibleWorlds(doc)
	check(err)
	fmt.Println("\npossible worlds:")
	for _, w := range pw.Worlds {
		fmt.Printf("  P=%.2f  %s\n", w.P, fuzzyxml.FormatTree(w.Tree))
	}

	// --- Querying (slide 13) ---------------------------------------------
	// Does A have a D descendant? Answer probability is computed directly
	// on the fuzzy tree, without enumerating worlds.
	q := fuzzyxml.MustParseQuery("A(//D $d)")
	answers, err := fuzzyxml.EvalQuery(q, doc)
	check(err)
	fmt.Println("\nanswers to", fuzzyxml.FormatQuery(q), ":")
	for _, a := range answers {
		fmt.Printf("  P=%.2f  %s   (when %s)\n", a.P, fuzzyxml.FormatTree(a.Tree), a.Cond)
	}

	// --- Updating (slide 15) ----------------------------------------------
	// Replace C by D if B is present, with confidence 0.9.
	doc2 := fuzzyxml.MustParseFuzzy("A(B[w1], C[w2])",
		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})
	tx := fuzzyxml.NewTransaction(
		fuzzyxml.MustParseQuery("A $a(B $b, C $c)"),
		0.9,
		fuzzyxml.InsertOp("a", fuzzyxml.MustParseTree("D")),
		fuzzyxml.DeleteOp("c"),
	)
	tx.ConfEvent = "w3"
	updated, stats, err := fuzzyxml.ApplyUpdate(tx, doc2)
	check(err)
	fmt.Println("\nafter conditional replacement (conf 0.9):")
	fmt.Println("  ", fuzzyxml.FormatFuzzy(updated.Root))
	fmt.Printf("   (%d valuation, %d insert, %d conditioned copies)\n",
		stats.Valuations, stats.Inserted, stats.Copies)

	// The update commutes with the semantics: expanding the updated fuzzy
	// tree equals updating every world.
	viaFuzzy, err := fuzzyxml.PossibleWorlds(updated)
	check(err)
	pw2, err := fuzzyxml.PossibleWorlds(doc2)
	check(err)
	viaWorlds, err := fuzzyxml.ApplyUpdateToWorlds(tx, pw2)
	check(err)
	fmt.Println("\ncommutation check (fuzzy == worlds):", viaFuzzy.Equal(viaWorlds, 1e-9))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
