// Package fuzzyxml is a Go implementation of the probabilistic XML
// warehouse of Abiteboul and Senellart, "Querying and Updating
// Probabilistic Information in XML" (EDBT 2006).
//
// # The model
//
// Imprecise data — information extraction, NLP, data cleaning, schema
// matching — comes with confidence values. fuzzyxml stores such data as
// fuzzy trees: a single unordered data tree whose nodes carry conditions
// (conjunctions of probabilistic event literals w, !w) plus a table of
// independent event probabilities. The semantics of a fuzzy tree is a
// possible-worlds set: one (tree, probability) pair per truth assignment
// of the events, with a node surviving in a world exactly when its
// condition and all its ancestors' conditions hold.
//
// Fuzzy trees are as expressive as possible-worlds sets (FromWorlds /
// PossibleWorlds), and both querying and updating commute with the
// semantics: evaluating a query or applying an update directly on the
// fuzzy tree gives the same result as doing it world by world — in
// polynomial instead of exponential data complexity.
//
// # Queries
//
// Queries are tree patterns with joins (TPWJ, a standard subset of
// XQuery): label tests (with * wildcard), value-equality tests,
// child/descendant edges, and value joins between variables. The answer
// for a valuation is the minimal subtree containing all matched nodes.
// The textual syntax is
//
//	A(B $x, C(//D=val $y)) where $x = $y
//
// Over a fuzzy tree, every distinct answer additionally carries the DNF
// of the conditions of the valuations producing it and its exact
// probability (computed by memoized Shannon expansion; Monte-Carlo
// estimation is available for heavy condition structures).
//
// # Probability engine
//
// Every exact answer probability ends in one computation: P(c₁ ∨ … ∨ c_k)
// for a DNF of event conjunctions (#P-hard in general). The engine
// compiles each DNF before evaluating it: event IDs are interned
// per-table to dense integer indexes, clauses become canonically sorted
// integer-literal slices (deduplicated, contradictions dropped,
// absorbed clauses removed), and — whenever the DNF touches at most 64
// distinct events, which covers practically every query answer — each
// clause additionally carries positive/negative bitset masks so
// absorption and world checks are single word operations. Evaluation
// is memoized Shannon expansion over that form: sub-DNFs are keyed by
// structural 64-bit hash (verified against the stored key, so a
// collision can only cost a recomputation, never correctness),
// cofactors maintain canonical form incrementally instead of
// re-normalizing, and clauses that share no events are split into
// independent components whose probabilities combine as 1-∏(1-pᵢ) —
// collapsing the exponential blow-up for answers whose valuations touch
// disjoint event sets. Monte-Carlo estimation samples the same compiled
// form: on the bitset path a possible world is one uint64 and a clause
// check two word operations. The engine exposes counters (compiles,
// memo hits/misses, components) through the server's /stats route.
//
// # Keyword search
//
// Clients without schema knowledge search documents by keywords:
// SearchKeywords (and Warehouse.Search, POST /docs/{name}/search on
// the server) returns document nodes with the exact probability that
// each is an SLCA (smallest lowest common ancestor of the keywords) or
// ELCA (exclusive LCA) answer in a random possible world. Evaluation
// runs on a per-document inverted index (token → postings in document
// order with path conditions; NewKeywordIndex, cached by the warehouse
// until the document is mutated): candidates come from a stack-based
// document-order merge of the posting lists, and each candidate's
// probability is computed from the witness path conditions — the DNF of
// match-witness conjunctions, sharpened with negation for SLCA/ELCA
// semantics — by the probability engine, or estimated by Monte-Carlo
// world sampling. A MinProb threshold prunes candidates early with a
// monotone upper bound (provably without changing the answer set) and
// TopK cuts the ranking. See docs/SEARCH.md.
//
// # Materialized views
//
// A query that clients re-run after every write can be registered as
// a materialized view (Warehouse.RegisterView, PUT
// /docs/{name}/views/{view} on the server, the pxview tool): the
// warehouse keeps its answer set and per-answer probabilities
// incrementally maintained across updates instead of invalidating
// them. Each update's structural footprint (inserted labels, deletion
// target paths) is tested against the view's match witnesses: provably
// unrelated updates cost nothing; affected views re-run only the cheap
// symbolic pass and recompute probabilities only for answers whose
// condition actually changed; negation/ordered queries and tree-wide
// rewrites (simplify) fall back to full recomputation. Registrations
// are journaled and survive crash recovery. ReadView never blocks on a
// writer — during an in-flight maintenance pass it returns the
// previous complete answer set marked stale. See
// docs/ARCHITECTURE.md for the data flow and consistency model.
//
// # Updates
//
// Updates are transactions: a TPWJ query locating the operations,
// elementary insertions/deletions addressed through the query's
// variables, and a confidence c. Directly on a fuzzy tree, one fresh
// event w with P(w)=c is minted per transaction; insertions attach
// subtrees conditioned on (match condition ∧ w); deletions rewrite the
// target into conditioned copies (the construction of slide 15 of the
// paper), which can grow the tree exponentially under complex
// dependencies — Simplify shrinks it back where possible.
//
// # Warehouse
//
// OpenWarehouse provides the durable store of the paper's architecture:
// named fuzzy documents on the file system with atomic replacement, a
// write-ahead journal carrying full post-states, and scan-based crash
// recovery. Updates can also be expressed in an XUpdate-style XML syntax
// (ParseTransactionXML).
//
// # Durability and recovery
//
// The warehouse applies each probabilistic update atomically, matching
// the paper's update semantics (Section 5): a mutation either happened
// in full or not at all, and which one the caller was told is what a
// crash preserves. Concretely:
//
//   - A mutation (Create, Update, Simplify, Drop) is durable exactly
//     when the call returns nil. By then the journal holds the
//     mutation record — its own sequence number and the full
//     post-state, fsynced before the document file is touched — and a
//     fsynced commit marker naming that sequence number. Mutations on
//     different documents interleave their durable phases; concurrent
//     fsyncs are group-committed. The journal, not the document file,
//     is the durable copy of recent content: file swaps defer their
//     fsync to it, and Compact syncs the files before dropping it.
//
//   - A mutation that returned an error, or that was in flight at a
//     crash (record journaled, marker missing), never happened:
//     recovery at OpenWarehouse scans the whole journal, restores
//     every document to its last committed journaled state, and
//     resolves each in-flight mutation with an abort marker. An abort
//     in the journal always means "the caller was told this failed
//     and the document is unchanged". One narrow exception: an error
//     from journaling the outcome marker itself (a failing disk)
//     leaves the result visible to the live process, and the next
//     OpenWarehouse resolves it either way.
//
//   - Visibility precedes durability: a concurrent reader of the same
//     document may observe a mutation's result between its install
//     and the commit fsync. The returned nil — not the first read
//     that sees the data — is the durability acknowledgment.
//
// The on-disk record format, the torn-write rules and a worked
// recovery example are in docs/JOURNAL.md; pxwarehouse verify-journal
// inspects a journal without recovering it.
//
// # Storage engines
//
// Persistence is pluggable: every durable byte flows through a storage
// backend interface, and two embedded backends ship — "filestore"
// (one file per document plus a JSON-lines journal, the original
// layout) and "kv" (a single append-only page file of CRC-framed,
// sequence-tagged records). OpenWarehouse keeps its historical
// behavior; OpenWarehouseBackend selects a backend by name
// (StoreFile, StoreKV, or StoreAuto to detect from the directory, as
// the pxserve and pxwarehouse -store flags do). The durability
// guarantees above are backend-independent: both backends pass the
// same crash, fault-injection and recovery suites, and a differential
// harness holds their post-recovery states byte-identical under
// identical workloads. File formats, durability points and the
// contract for writing a third backend are in docs/STORAGE.md.
//
// # Server
//
// NewServer wraps a warehouse in an HTTP/JSON API (the cmd/pxserve
// binary): document CRUD under /docs/{name}, POST query and update
// routes accepting the TPWJ or XPath query syntaxes and the textual or
// XUpdate transaction forms, plus simplify, stat, compact and /stats
// admin routes. The warehouse locks per document — a striped table of
// reader/writer lock pairs — so requests on different documents never
// contend and queries run in parallel with the computation phase of
// updates; repeated identical queries are answered from an LRU result
// cache that document mutations invalidate.
//
// # Observability
//
// Every layer records into internal/obs, the shared metrics registry
// (lock-free counters, gauges, latency histograms) and span-tracing
// substrate. The server exposes the registry as JSON under /stats and
// as Prometheus text under /metrics; each request runs under a trace
// whose span tree (warehouse snapshot fetch, symbolic match, DNF
// compile, probability evaluation, journal writes, view maintenance)
// is retained in a bounded ring, echoed by ?trace=1, and fed into
// per-stage histograms. The ring is served at GET /debug/traces on
// pxserve's private -pprof debug address (or on the main mux when
// ServerOptions.ExposeDebugTraces is set). Requests over ServerOptions.
// SlowQueryThreshold are logged with their span breakdown. See
// docs/OBSERVABILITY.md for the metric catalog and span names.
//
// The quickest way in:
//
//	doc := fuzzyxml.MustParseFuzzy("A(B[w1 !w2], C(D[w2]))",
//		map[fuzzyxml.EventID]float64{"w1": 0.8, "w2": 0.7})
//	answers, _ := fuzzyxml.EvalQuery(fuzzyxml.MustParseQuery("A(B)"), doc)
//	// answers[0].P == 0.24
package fuzzyxml
