package fuzzyxml_test

// End-to-end integration tests of the CLI tools: each binary is built
// once into a temp dir and driven the way a user would drive it.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the cmd/ binaries once per test run.
func buildTools(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	paths := make(map[string]string, len(names))
	for _, n := range names {
		bin := filepath.Join(dir, n)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+n)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", n, err, out)
		}
		paths[n] = bin
	}
	return paths
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

const slide12XML = `<pxml>
  <events>
    <event name="w1" prob="0.8"/>
    <event name="w2" prob="0.7"/>
  </events>
  <root>
    <A>
      <B cond="w1 !w2">foo</B>
      <C><D cond="w2"/></C>
    </A>
  </root>
</pxml>`

const slide15TXXML = `<transaction confidence="0.9" event="w3">
  <where>A $a(B $b, C $c)</where>
  <insert into="$a"><D/></insert>
  <delete select="$c"/>
</transaction>`

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t, "pxquery", "pxworlds", "pxupdate", "pxsimplify", "pxgen", "pxwarehouse")
	work := t.TempDir()

	doc := filepath.Join(work, "slide12.pxml")
	if err := os.WriteFile(doc, []byte(slide12XML), 0o644); err != nil {
		t.Fatal(err)
	}

	// pxquery: the slide-13 probability.
	out := run(t, bins["pxquery"], "-doc", doc, "-query", "A(B)")
	if !strings.Contains(out, "P=0.24") {
		t.Errorf("pxquery output:\n%s", out)
	}

	// pxquery Monte-Carlo mode.
	out = run(t, bins["pxquery"], "-doc", doc, "-query", "A(B)", "-mode", "mc", "-samples", "20000")
	if !strings.Contains(out, "P=0.2") {
		t.Errorf("pxquery mc output:\n%s", out)
	}

	// pxworlds: the slide-12 distribution.
	out = run(t, bins["pxworlds"], "-doc", doc)
	for _, want := range []string{"3 distinct worlds", "P=0.7", "P=0.24", "P=0.06"} {
		if !strings.Contains(out, want) {
			t.Errorf("pxworlds output missing %q:\n%s", want, out)
		}
	}

	// pxupdate: slide-15 on its own document.
	doc15 := filepath.Join(work, "slide15.pxml")
	run15 := `<pxml><events><event name="w1" prob="0.8"/><event name="w2" prob="0.7"/></events><root><A><B cond="w1"/><C cond="w2"/></A></root></pxml>`
	if err := os.WriteFile(doc15, []byte(run15), 0o644); err != nil {
		t.Fatal(err)
	}
	tx := filepath.Join(work, "tx.xml")
	if err := os.WriteFile(tx, []byte(slide15TXXML), 0o644); err != nil {
		t.Fatal(err)
	}
	updated := filepath.Join(work, "updated.pxml")
	run(t, bins["pxupdate"], "-doc", doc15, "-tx", tx, "-out", updated)
	data, err := os.ReadFile(updated)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`cond="!w1 w2"`, `cond="w1 w2 !w3"`, `<D cond="w1 w2 w3"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("pxupdate output missing %q:\n%s", want, data)
		}
	}

	// pxsimplify on a redundant document.
	noisy := filepath.Join(work, "noisy.pxml")
	noisyXML := `<pxml><events><event name="w" prob="0.5"/></events><root><A><B cond="w !w"/><C cond="w"/></A></root></pxml>`
	if err := os.WriteFile(noisy, []byte(noisyXML), 0o644); err != nil {
		t.Fatal(err)
	}
	clean := filepath.Join(work, "clean.pxml")
	run(t, bins["pxsimplify"], "-doc", noisy, "-out", clean)
	cleanData, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(cleanData), "<B") {
		t.Errorf("unsatisfiable node survived pxsimplify:\n%s", cleanData)
	}

	// pxgen produces parseable documents, reproducibly.
	g1 := run(t, bins["pxgen"], "-kind", "fuzzy", "-seed", "7", "-events", "3")
	g2 := run(t, bins["pxgen"], "-kind", "fuzzy", "-seed", "7", "-events", "3")
	if g1 != g2 {
		t.Error("pxgen not deterministic for equal seeds")
	}
	genDoc := filepath.Join(work, "gen.pxml")
	if err := os.WriteFile(genDoc, []byte(g1), 0o644); err != nil {
		t.Fatal(err)
	}
	run(t, bins["pxworlds"], "-doc", genDoc) // must parse and expand

	// pxwarehouse: init, load, stat, query, update, simplify, dump, drop.
	wh := filepath.Join(work, "wh")
	run(t, bins["pxwarehouse"], "-dir", wh, "init")
	run(t, bins["pxwarehouse"], "-dir", wh, "load", "demo", doc15)
	out = run(t, bins["pxwarehouse"], "-dir", wh, "list")
	if !strings.Contains(out, "demo") {
		t.Errorf("pxwarehouse list:\n%s", out)
	}
	out = run(t, bins["pxwarehouse"], "-dir", wh, "stat", "demo")
	if !strings.Contains(out, "3 nodes") {
		t.Errorf("pxwarehouse stat:\n%s", out)
	}
	out = run(t, bins["pxwarehouse"], "-dir", wh, "update", "demo", tx)
	if !strings.Contains(out, "1 valuations") {
		t.Errorf("pxwarehouse update:\n%s", out)
	}
	out = run(t, bins["pxwarehouse"], "-dir", wh, "query", "demo", "A(D $d)")
	if !strings.Contains(out, "P=0.504") {
		t.Errorf("pxwarehouse query:\n%s", out)
	}
	run(t, bins["pxwarehouse"], "-dir", wh, "simplify", "demo")
	out = run(t, bins["pxwarehouse"], "-dir", wh, "dump", "demo")
	if !strings.Contains(out, "<pxml>") {
		t.Errorf("pxwarehouse dump:\n%s", out)
	}
	run(t, bins["pxwarehouse"], "-dir", wh, "drop", "demo")
	out = run(t, bins["pxwarehouse"], "-dir", wh, "list")
	if strings.Contains(out, "demo") {
		t.Errorf("document survived drop:\n%s", out)
	}

	// verify-journal inspects without recovering; recover reports the
	// recovery outcome of an open (a no-op on this healthy warehouse).
	out = run(t, bins["pxwarehouse"], "-dir", wh, "verify-journal")
	if !strings.Contains(out, "0 pending") || strings.Contains(out, "problem:") {
		t.Errorf("pxwarehouse verify-journal:\n%s", out)
	}
	out = run(t, bins["pxwarehouse"], "-dir", wh, "recover")
	if !strings.Contains(out, "0 rollbacks") {
		t.Errorf("pxwarehouse recover:\n%s", out)
	}

	// -store kv: the same flow on the embedded kv page store, with
	// later invocations auto-detecting the backend from the directory.
	kvwh := filepath.Join(work, "wh-kv")
	out = run(t, bins["pxwarehouse"], "-dir", kvwh, "-store", "kv", "init")
	if !strings.Contains(out, "kv backend") {
		t.Errorf("pxwarehouse -store kv init:\n%s", out)
	}
	run(t, bins["pxwarehouse"], "-dir", kvwh, "-store", "kv", "load", "demo", doc15)
	out = run(t, bins["pxwarehouse"], "-dir", kvwh, "list") // no -store: auto-detected
	if !strings.Contains(out, "demo") {
		t.Errorf("pxwarehouse list on kv store:\n%s", out)
	}
	out = run(t, bins["pxwarehouse"], "-dir", kvwh, "update", "demo", tx)
	if !strings.Contains(out, "1 valuations") {
		t.Errorf("pxwarehouse update on kv store:\n%s", out)
	}
	out = run(t, bins["pxwarehouse"], "-dir", kvwh, "query", "demo", "A(D $d)")
	if !strings.Contains(out, "P=0.504") {
		t.Errorf("pxwarehouse query on kv store:\n%s", out)
	}
	out = run(t, bins["pxwarehouse"], "-dir", kvwh, "verify-journal")
	if !strings.Contains(out, "0 pending") || strings.Contains(out, "problem:") {
		t.Errorf("pxwarehouse verify-journal on kv store:\n%s", out)
	}
}

func TestCLIPxbenchSelected(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t, "pxbench")
	out := run(t, bins["pxbench"], "-e", "E1,E6")
	for _, want := range []string{"E1", "E6", "PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("pxbench output missing %q:\n%s", want, out)
		}
	}
	out = run(t, bins["pxbench"], "-list")
	if !strings.Contains(out, "E10") {
		t.Errorf("pxbench -list:\n%s", out)
	}
}

// TestCLIPxbenchJSON checks the machine-readable benchmark output: the
// BENCH_<date>.json document must parse and carry ns/op and allocs/op
// for the probability-engine probes.
func TestCLIPxbenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs benchmark probes; skipped in -short mode")
	}
	bins := buildTools(t, "pxbench")
	path := filepath.Join(t.TempDir(), "bench.json")
	out := run(t, bins["pxbench"], "-e", "E1", "-json-out", path)
	if !strings.Contains(out, "wrote "+path) {
		t.Errorf("pxbench -json-out output:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Date       string `json:"date"`
		Benchmarks []struct {
			Name        string  `json:"name"`
			NsPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp int64   `json:"allocs_per_op"`
		} `json:"benchmarks"`
		Experiments []struct {
			ID string `json:"id"`
			OK bool   `json:"ok"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH json does not parse: %v\n%s", err, data)
	}
	names := map[string]bool{}
	for _, b := range report.Benchmarks {
		names[b.Name] = true
		if b.NsPerOp <= 0 {
			t.Errorf("probe %q has ns_per_op %v", b.Name, b.NsPerOp)
		}
	}
	if !names["probdnf/exact/events=14"] || !names["probdnf/brute/events=14"] {
		t.Errorf("probability-engine probes missing from report: %v", names)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].ID != "E1" || !report.Experiments[0].OK {
		t.Errorf("experiments = %+v, want E1 ok", report.Experiments)
	}
}

// TestCLIPxview drives the materialized-view CLI end to end: register,
// read, list, maintenance across a warehouse update, stats and drop.
func TestCLIPxview(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t, "pxview", "pxwarehouse")
	work := t.TempDir()
	doc := filepath.Join(work, "slide12.pxml")
	if err := os.WriteFile(doc, []byte(slide12XML), 0o644); err != nil {
		t.Fatal(err)
	}
	wh := filepath.Join(work, "wh")
	run(t, bins["pxwarehouse"], "-dir", wh, "init")
	run(t, bins["pxwarehouse"], "-dir", wh, "load", "demo", doc)

	// Register a TPWJ view and an XPath view.
	out := run(t, bins["pxview"], "-dir", wh, "register", "demo", "bview", "A(B $x)")
	if !strings.Contains(out, `registered "bview" on "demo" (1 answers)`) || !strings.Contains(out, "P=0.24") {
		t.Errorf("pxview register:\n%s", out)
	}
	out = run(t, bins["pxview"], "-dir", wh, "-syntax", "xpath", "register", "demo", "dview", "/A/C/D")
	if !strings.Contains(out, "P=0.7") {
		t.Errorf("pxview register xpath:\n%s", out)
	}
	out = run(t, bins["pxview"], "-dir", wh, "list", "demo")
	if !strings.Contains(out, "bview\ttpwj\tA(B $x)") || !strings.Contains(out, "dview\txpath\t/A/C/D") {
		t.Errorf("pxview list:\n%s", out)
	}

	// A probabilistic deletion of B must flow into the maintained
	// answers: P drops from 0.24 to 0.24 * 0.5 = 0.12.
	tx := filepath.Join(work, "delb.xml")
	txXML := `<transaction confidence="0.5"><where>A(B $b)</where><delete select="$b"/></transaction>`
	if err := os.WriteFile(tx, []byte(txXML), 0o644); err != nil {
		t.Fatal(err)
	}
	run(t, bins["pxwarehouse"], "-dir", wh, "update", "demo", tx)
	out = run(t, bins["pxview"], "-dir", wh, "read", "demo", "bview")
	if !strings.Contains(out, "P=0.12") {
		t.Errorf("pxview read after update:\n%s", out)
	}

	// JSON output parses and carries the condition.
	out = run(t, bins["pxview"], "-dir", wh, "-json", "read", "demo", "bview")
	var res struct {
		Name    string `json:"name"`
		Stale   bool   `json:"stale"`
		Answers []struct {
			P         float64 `json:"p"`
			Tree      string  `json:"tree"`
			Condition string  `json:"condition"`
		} `json:"answers"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("pxview -json does not parse: %v\n%s", err, out)
	}
	if res.Name != "bview" || res.Stale || len(res.Answers) != 1 || res.Answers[0].Condition == "" {
		t.Errorf("pxview -json read: %+v", res)
	}

	// Stats carries the registry size.
	out = run(t, bins["pxview"], "-dir", wh, "stats")
	if !strings.Contains(out, `"registered": 2`) {
		t.Errorf("pxview stats:\n%s", out)
	}

	// Drop, and reads start failing.
	run(t, bins["pxview"], "-dir", wh, "drop", "demo", "bview")
	cmd := exec.Command(bins["pxview"], "-dir", wh, "read", "demo", "bview")
	if cmdOut, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("pxview read of dropped view succeeded:\n%s", cmdOut)
	}
}

// TestCLIPxsearch drives the keyword-search CLI end to end: text and
// JSON output, ELCA mode, thresholds and Monte-Carlo estimation.
func TestCLIPxsearch(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t, "pxsearch")
	work := t.TempDir()
	doc := filepath.Join(work, "lib.pxml")
	libXML := `<pxml>
  <events>
    <event name="w1" prob="0.8"/>
    <event name="w2" prob="0.5"/>
  </events>
  <root>
    <lib>
      <book cond="w1"><title>kafka</title><author>max</author></book>
      <shelf><book cond="w2"><title>kafka</title></book></shelf>
    </lib>
  </root>
</pxml>`
	if err := os.WriteFile(doc, []byte(libXML), 0o644); err != nil {
		t.Fatal(err)
	}

	out := run(t, bins["pxsearch"], "-doc", doc, "kafka")
	for _, want := range []string{"P=0.8  /lib/book/title", "P=0.5  /lib/shelf/book/title", "2 answers"} {
		if !strings.Contains(out, want) {
			t.Errorf("pxsearch output missing %q:\n%s", want, out)
		}
	}

	// The MinProb threshold prunes and filters; TopK cuts.
	out = run(t, bins["pxsearch"], "-doc", doc, "-minprob", "0.6", "kafka")
	if strings.Contains(out, "P=0.5") || !strings.Contains(out, "P=0.8") {
		t.Errorf("pxsearch -minprob output:\n%s", out)
	}

	// ELCA with both keywords: only the first book holds kafka and max.
	out = run(t, bins["pxsearch"], "-doc", doc, "-mode", "elca", "kafka", "max")
	if !strings.Contains(out, "/lib/book ") || strings.Contains(out, "/lib/shelf") {
		t.Errorf("pxsearch elca output:\n%s", out)
	}

	// JSON output parses and Monte-Carlo estimates converge.
	out = run(t, bins["pxsearch"], "-doc", doc, "-json", "-mc", "-samples", "20000", "kafka")
	var res struct {
		Answers []struct {
			P    float64 `json:"P"`
			Path string  `json:"Path"`
		} `json:"Answers"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("pxsearch -json does not parse: %v\n%s", err, out)
	}
	if len(res.Answers) != 2 || res.Answers[0].P < 0.75 || res.Answers[0].P > 0.85 {
		t.Errorf("pxsearch -json -mc answers: %+v", res.Answers)
	}

	// Keywordless invocation fails with usage.
	cmd := exec.Command(bins["pxsearch"], "-doc", doc)
	if cmdOut, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("pxsearch without keywords succeeded:\n%s", cmdOut)
	}
}

// TestCLIPxsim drives the simulator end-to-end the way CI's sim smoke
// step does: boot pxserve on an ephemeral port, run a small seeded
// workload with the audit on, and require a clean exit with a BENCH
// json carrying zero discrepancies. Also pins the exit-code contract:
// 2 for usage errors, 1 for runtime failures.
func TestCLIPxsim(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t, "pxserve", "pxsim")
	work := t.TempDir()

	// Boot pxserve on :0 and read the actual bound address off stdout.
	srv := exec.Command(bins["pxserve"], "-dir", filepath.Join(work, "wh"), "-addr", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill() //nolint:errcheck
		srv.Wait()         //nolint:errcheck
	}()
	line := make([]byte, 256)
	n, err := stdout.Read(line)
	if err != nil {
		t.Fatalf("reading pxserve banner: %v", err)
	}
	banner := string(line[:n])
	i := strings.LastIndex(banner, "listening on ")
	if i < 0 {
		t.Fatalf("pxserve banner %q has no listen address", banner)
	}
	addr := strings.TrimSpace(banner[i+len("listening on "):])
	endpoint := "http://" + addr

	// A clean seeded run: exit 0, audit summary, BENCH json with the
	// sim section and a zero discrepancy count.
	benchPath := filepath.Join(work, "BENCH_sim.json")
	logPath := filepath.Join(work, "workload.log")
	out := run(t, bins["pxsim"],
		"-endpoint", endpoint, "-tenants", "3", "-docs", "1", "-ops", "150",
		"-seed", "42", "-workers", "3", "-check-every", "5",
		"-json-out", benchPath, "-log", logPath)
	if !strings.Contains(out, "audit clean") {
		t.Errorf("pxsim output:\n%s", out)
	}
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var bench struct {
		Sim *struct {
			Ops   int64 `json:"ops"`
			Audit struct {
				DiscrepancyCount int64 `json:"discrepancy_count"`
				Checks           int64 `json:"checks"`
			} `json:"audit"`
			Routes []struct {
				Route string `json:"route"`
			} `json:"routes"`
		} `json:"sim"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("BENCH json does not parse: %v", err)
	}
	if bench.Sim == nil {
		t.Fatal("BENCH json has no sim section")
	}
	if bench.Sim.Audit.DiscrepancyCount != 0 {
		t.Errorf("BENCH json reports %d discrepancies", bench.Sim.Audit.DiscrepancyCount)
	}
	if bench.Sim.Ops != 150 || len(bench.Sim.Routes) == 0 {
		t.Errorf("BENCH sim section: ops=%d routes=%d", bench.Sim.Ops, len(bench.Sim.Routes))
	}
	if logData, err := os.ReadFile(logPath); err != nil || len(logData) == 0 {
		t.Errorf("workload log missing or empty (err=%v)", err)
	}

	// Usage error: missing -endpoint exits 2.
	cmd := exec.Command(bins["pxsim"])
	if err := cmd.Run(); err == nil {
		t.Error("pxsim without -endpoint succeeded")
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("pxsim without -endpoint: %v, want exit 2", err)
	}

	// Bad mix exits 2.
	cmd = exec.Command(bins["pxsim"], "-endpoint", endpoint, "-mix", "bogus=1")
	if err := cmd.Run(); err == nil {
		t.Error("pxsim with bad mix succeeded")
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("pxsim with bad mix: %v, want exit 2", err)
	}

	// Runtime failure (unreachable endpoint) exits 1.
	cmd = exec.Command(bins["pxsim"], "-endpoint", "http://127.0.0.1:1", "-ops", "5")
	if err := cmd.Run(); err == nil {
		t.Error("pxsim against dead endpoint succeeded")
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Errorf("pxsim against dead endpoint: %v, want exit 1", err)
	}
}
