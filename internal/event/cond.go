package event

import (
	"fmt"
	"sort"
	"strings"
)

// Condition is a conjunction of event literals, as attached to fuzzy-tree
// nodes. The nil (or empty) condition is the always-true condition. A
// condition containing both w and !w is unsatisfiable.
//
// Canonical conditions (as produced by Normalize) are sorted by event and
// sign and contain no duplicate literals; all package operations accept
// non-canonical input.
type Condition []Literal

// Cond builds a condition from literals. It does not normalize.
func Cond(ls ...Literal) Condition { return Condition(ls) }

// Clone returns a copy of the condition.
func (c Condition) Clone() Condition {
	if c == nil {
		return nil
	}
	return append(Condition{}, c...)
}

// Normalize returns the canonical form of c: literals sorted by event then
// sign, duplicates removed. Contradictory pairs (w and !w) are preserved so
// that the result still evaluates like c; use Satisfiable to detect them.
func (c Condition) Normalize() Condition {
	if len(c) == 0 {
		return nil
	}
	out := c.Clone()
	sort.Slice(out, func(i, j int) bool { return compareLiterals(out[i], out[j]) < 0 })
	dedup := out[:1]
	for _, l := range out[1:] {
		if l != dedup[len(dedup)-1] {
			dedup = append(dedup, l)
		}
	}
	if len(dedup) == 0 {
		return nil
	}
	return dedup
}

// Satisfiable reports whether some assignment makes c true, i.e. whether c
// contains no contradictory literal pair.
func (c Condition) Satisfiable() bool {
	seen := make(map[ID]bool, len(c))
	for _, l := range c {
		if neg, ok := seen[l.Event]; ok && neg != l.Neg {
			return false
		}
		seen[l.Event] = l.Neg
	}
	return true
}

// And returns the normalized conjunction of c and d.
func (c Condition) And(d Condition) Condition {
	merged := make(Condition, 0, len(c)+len(d))
	merged = append(merged, c...)
	merged = append(merged, d...)
	return merged.Normalize()
}

// Contains reports whether c contains the literal l.
func (c Condition) Contains(l Literal) bool {
	for _, m := range c {
		if m == l {
			return true
		}
	}
	return false
}

// Entails reports whether c logically entails d, for satisfiable c: every
// literal of d appears in c. (An unsatisfiable c entails everything; the
// caller is expected to prune unsatisfiable conditions first.)
func (c Condition) Entails(d Condition) bool {
	if !c.Satisfiable() {
		return true
	}
	for _, l := range d {
		if !c.Contains(l) {
			return false
		}
	}
	return true
}

// Minus returns the residual condition: the literals of c that do not
// appear in d, in canonical form.
func (c Condition) Minus(d Condition) Condition {
	var out Condition
	for _, l := range c.Normalize() {
		if !d.Contains(l) {
			out = append(out, l)
		}
	}
	return out
}

// Eval returns the truth value of the conjunction under the assignment.
// Events absent from the assignment are treated as false.
func (c Condition) Eval(a Assignment) bool {
	for _, l := range c {
		if !l.Eval(a) {
			return false
		}
	}
	return true
}

// Events returns the sorted distinct events mentioned by c.
func (c Condition) Events() []ID {
	set := make(map[ID]struct{}, len(c))
	for _, l := range c {
		set[l.Event] = struct{}{}
	}
	out := make([]ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether c and d denote the same conjunction (compared in
// canonical form).
func (c Condition) Equal(d Condition) bool {
	cn, dn := c.Normalize(), d.Normalize()
	if len(cn) != len(dn) {
		return false
	}
	for i := range cn {
		if cn[i] != dn[i] {
			return false
		}
	}
	return true
}

// String renders the condition in the textual syntax parsed by
// ParseCondition: literals separated by single spaces, negation written
// with '!'. The always-true condition renders as the empty string.
func (c Condition) String() string {
	if len(c) == 0 {
		return ""
	}
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return strings.Join(parts, " ")
}

// ParseCondition parses the textual condition syntax: event literals
// separated by whitespace and/or commas; '!', '~' or '¬' negate the
// following event name. The empty string parses to the always-true
// condition. The result is normalized.
func ParseCondition(s string) (Condition, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == ','
	})
	var c Condition
	for _, f := range fields {
		neg := false
		for {
			if r := []rune(f); len(r) > 0 && (r[0] == '!' || r[0] == '~' || r[0] == '¬') {
				neg = !neg
				f = string(r[1:])
				continue
			}
			break
		}
		if f == "" {
			return nil, fmt.Errorf("event: empty event name in condition %q", s)
		}
		if strings.ContainsAny(f, "!~¬") {
			return nil, fmt.Errorf("event: misplaced negation in literal %q", f)
		}
		l := Literal{Event: ID(f), Neg: neg}
		c = append(c, l)
	}
	return c.Normalize(), nil
}

// MustParseCondition is like ParseCondition but panics on error; intended
// for constant inputs in tests and examples.
func MustParseCondition(s string) Condition {
	c, err := ParseCondition(s)
	if err != nil {
		panic(err)
	}
	return c
}
