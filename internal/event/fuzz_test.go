package event

import (
	"fmt"
	"math"
	"testing"
)

// decodeFuzzDNF deterministically decodes a byte stream into an event
// table (2–12 events with probabilities from the stream, including the
// 0 and 1 edge cases) and a DNF over those events. Bytes past the end
// of the stream read as zero, so every input decodes.
func decodeFuzzDNF(data []byte) (*Table, DNF) {
	cur := 0
	next := func() byte {
		if cur < len(data) {
			b := data[cur]
			cur++
			return b
		}
		cur++
		return 0
	}
	n := 2 + int(next())%11 // 2..12 events
	tab := NewTable()
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = ID(fmt.Sprintf("e%d", i))
		tab.MustSet(ids[i], float64(next())/255)
	}
	k := 1 + int(next())%8 // 1..8 clauses
	var d DNF
	for i := 0; i < k; i++ {
		m := int(next()) % 6 // 0..5 literals; 0 is the always-true clause
		var c Condition
		for j := 0; j < m; j++ {
			b := next()
			c = append(c, Literal{Event: ids[int(b&0x7f)%n], Neg: b&0x80 != 0})
		}
		d = append(d, c)
	}
	return tab, d
}

// FuzzProbDNFDifferential checks the compiled exact engine against the
// brute-force world-enumeration oracle on random tables and DNFs of up
// to 12 events, and checks normalization invariance of the result. In
// normal `go test` runs (and CI) the checked-in seed corpus under
// testdata/fuzz plus the f.Add seeds below execute as regular test
// cases; `go test -fuzz=FuzzProbDNFDifferential` explores further.
func FuzzProbDNFDifferential(f *testing.F) {
	// Adversarial shapes mirroring dnf_test.go: contradictions,
	// absorption pairs, an always-true clause, repeated literals, dense
	// overlap, and degenerate probabilities 0 and 1.
	f.Add([]byte{})                                          // minimal: all-zero stream
	f.Add([]byte{0, 255, 0, 1, 2, 0x02, 0x82})               // w and !w in one clause (contradiction)
	f.Add([]byte{0, 128, 128, 2, 1, 0x00, 2, 0x00, 0x01})    // "e0" absorbs "e0 e1"
	f.Add([]byte{1, 10, 200, 30, 2, 0, 3, 0x01, 0x81, 0x02}) // true clause disables event checks
	f.Add([]byte{3, 0, 255, 64, 192, 4, 3, 1, 1, 1, 2, 0x83, 0x04, 1, 0x82})
	f.Add([]byte{10, 9, 18, 27, 36, 45, 54, 63, 72, 81, 90, 99, 108, 7,
		2, 0x01, 0x82, 2, 0x03, 0x84, 2, 0x05, 0x86, 2, 0x07, 0x88,
		2, 0x09, 0x8a, 3, 0x01, 0x03, 0x05, 3, 0x02, 0x04, 0x06}) // disjoint pairs: component decomposition
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, d := decodeFuzzDNF(data)
		exact, err := tab.ProbDNF(d)
		if err != nil {
			t.Fatalf("ProbDNF(%v) over %v: %v", d, tab, err)
		}
		brute, err := tab.ProbDNFBrute(d)
		if err != nil {
			t.Fatalf("ProbDNFBrute(%v): %v", d, err)
		}
		if math.Abs(exact-brute) > 1e-12 {
			t.Errorf("ProbDNF = %.17g, brute = %.17g (diff %g)\n dnf: %v\n table: %v",
				exact, brute, exact-brute, d, tab)
		}
		norm, err := tab.ProbDNF(d.Normalize())
		if err != nil {
			t.Fatalf("ProbDNF(normalized %v): %v", d.Normalize(), err)
		}
		if math.Abs(exact-norm) > 1e-12 {
			t.Errorf("normalization changed the probability: %.17g vs %.17g\n dnf: %v",
				exact, norm, d)
		}
	})
}
