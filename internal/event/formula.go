package event

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Formula is an arbitrary Boolean formula over probabilistic events. It
// generalizes Condition (conjunctions) and DNF (disjunctions of
// conjunctions) and is needed by the query-negation extension
// (perspectives slide of the paper): the probability of "some valuation
// matches and no forbidden valuation does" is P(φ ∧ ¬ψ), which has no
// DNF-only form of bounded size.
//
// Formulas are immutable trees built with FTrue, FFalse, FLit, FAnd,
// FOr and FNot, and evaluated exactly by Table.ProbFormula via memoized
// Shannon expansion.
type Formula interface {
	// Eval returns the truth value under a total assignment (absent
	// events count as false).
	Eval(a Assignment) bool
	// Restrict substitutes a truth value for one event, simplifying
	// constant subformulas.
	Restrict(e ID, v bool) Formula
	// Events returns the sorted distinct events of the formula.
	Events() []ID
	// String renders the formula (also the Shannon memo key).
	String() string
}

type fConst bool

// FTrue and FFalse are the constant formulas.
var (
	FTrue  Formula = fConst(true)
	FFalse Formula = fConst(false)
)

func (c fConst) Eval(Assignment) bool      { return bool(c) }
func (c fConst) Restrict(ID, bool) Formula { return c }
func (c fConst) Events() []ID              { return nil }
func (c fConst) String() string            { return map[bool]string{true: "T", false: "F"}[bool(c)] }

type fLit Literal

// FLit lifts a literal to a formula.
func FLit(l Literal) Formula { return fLit(l) }

// FCond lifts a conjunctive condition to a formula.
func FCond(c Condition) Formula {
	fs := make([]Formula, len(c))
	for i, l := range c {
		fs[i] = FLit(l)
	}
	return FAnd(fs...)
}

// FDNF lifts a DNF to a formula.
func FDNF(d DNF) Formula {
	fs := make([]Formula, len(d))
	for i, c := range d {
		fs[i] = FCond(c)
	}
	return FOr(fs...)
}

func (l fLit) Eval(a Assignment) bool { return Literal(l).Eval(a) }

func (l fLit) Restrict(e ID, v bool) Formula {
	if l.Event != e {
		return l
	}
	if v != l.Neg {
		return FTrue
	}
	return FFalse
}

func (l fLit) Events() []ID   { return []ID{l.Event} }
func (l fLit) String() string { return Literal(l).String() }

type fAnd []Formula

// FAnd builds the conjunction of formulas, simplifying constants. The
// empty conjunction is true.
func FAnd(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch f {
		case FTrue:
			continue
		case FFalse:
			return FFalse
		}
		out = append(out, f)
	}
	switch len(out) {
	case 0:
		return FTrue
	case 1:
		return out[0]
	}
	return fAnd(out)
}

func (f fAnd) Eval(a Assignment) bool {
	for _, g := range f {
		if !g.Eval(a) {
			return false
		}
	}
	return true
}

func (f fAnd) Restrict(e ID, v bool) Formula {
	out := make([]Formula, len(f))
	for i, g := range f {
		out[i] = g.Restrict(e, v)
	}
	return FAnd(out...)
}

func (f fAnd) Events() []ID { return unionEvents([]Formula(f)) }

func (f fAnd) String() string { return joinFormulas([]Formula(f), " & ") }

type fOr []Formula

// FOr builds the disjunction of formulas, simplifying constants. The
// empty disjunction is false.
func FOr(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch f {
		case FTrue:
			return FTrue
		case FFalse:
			continue
		}
		out = append(out, f)
	}
	switch len(out) {
	case 0:
		return FFalse
	case 1:
		return out[0]
	}
	return fOr(out)
}

func (f fOr) Eval(a Assignment) bool {
	for _, g := range f {
		if g.Eval(a) {
			return true
		}
	}
	return false
}

func (f fOr) Restrict(e ID, v bool) Formula {
	out := make([]Formula, len(f))
	for i, g := range f {
		out[i] = g.Restrict(e, v)
	}
	return FOr(out...)
}

func (f fOr) Events() []ID { return unionEvents([]Formula(f)) }

func (f fOr) String() string { return joinFormulas([]Formula(f), " | ") }

type fNot struct{ f Formula }

// FNot builds the negation of a formula, simplifying constants and
// double negation.
func FNot(f Formula) Formula {
	switch g := f.(type) {
	case fConst:
		return fConst(!g)
	case fNot:
		return g.f
	}
	return fNot{f}
}

func (f fNot) Eval(a Assignment) bool { return !f.f.Eval(a) }

func (f fNot) Restrict(e ID, v bool) Formula { return FNot(f.f.Restrict(e, v)) }

func (f fNot) Events() []ID { return f.f.Events() }

func (f fNot) String() string { return "~(" + f.f.String() + ")" }

func unionEvents(fs []Formula) []ID {
	set := make(map[ID]struct{})
	for _, f := range fs {
		for _, e := range f.Events() {
			set[e] = struct{}{}
		}
	}
	out := make([]ID, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = "(" + f.String() + ")"
	}
	return strings.Join(parts, sep)
}

// ProbFormula computes the exact probability of an arbitrary Boolean
// formula by memoized Shannon expansion: condition on the formula's
// first event, recurse on both restrictions. Worst-case exponential in
// the number of events (#P-hard in general), like ProbDNF, but the
// restriction-driven simplification keeps typical query formulas small.
func (t *Table) ProbFormula(f Formula) (float64, error) {
	for _, e := range f.Events() {
		if !t.Has(e) {
			return 0, fmt.Errorf("event: unknown event %q in formula %q", e, f)
		}
	}
	cc := &cancelCheck{}
	defer cc.charge(nil)
	memo := make(map[string]float64)
	return t.probFormula(f, memo, cc), nil
}

// ProbFormulaCtx is ProbFormula honoring context cancellation: the
// Shannon expansion checks ctx every cancelCheckInterval recursion steps
// and aborts with the context's error. A context that can never be
// cancelled takes the same zero-check path as ProbFormula.
func (t *Table) ProbFormulaCtx(ctx context.Context, f Formula) (p float64, err error) {
	for _, e := range f.Events() {
		if !t.Has(e) {
			return 0, fmt.Errorf("event: unknown event %q in formula %q", e, f)
		}
	}
	// Grab the cost accumulator before deciding whether the context is
	// worth polling: an uncancellable context can still carry a cost.
	cost := obs.CostFromContext(ctx)
	cc := &cancelCheck{}
	if ctx != nil && ctx.Done() != nil {
		// Small formulas finish before the first periodic tick, so an
		// already-expired context must abort before any expansion.
		if err := ctx.Err(); err != nil {
			engineCancellations.Add(1)
			return math.NaN(), err
		}
		cc.ctx = ctx
	}
	defer cc.charge(cost)
	defer func() {
		if r := recover(); r != nil {
			ec, ok := r.(evalCanceled)
			if !ok {
				panic(r)
			}
			engineCancellations.Add(1)
			p, err = math.NaN(), ec.err
		}
	}()
	memo := make(map[string]float64)
	return t.probFormula(f, memo, cc), nil
}

// cancelCheck amortizes context polling across a hot recursion: tick
// counts every recursion step and, when a cancellable context is
// attached, consults ctx.Err once per cancelCheckInterval calls and
// unwinds via an evalCanceled panic (recovered by the Ctx entry
// points). The step count doubles as the expansion-node tally charged
// by charge on the way out, so the formula evaluator feeds the same
// px_engine_expansion_nodes_total family as the compiled DNF engine.
type cancelCheck struct {
	ctx   context.Context
	steps int64
}

func (cc *cancelCheck) tick() {
	if cc.steps++; cc.ctx != nil && cc.steps&(cancelCheckInterval-1) == 0 {
		if err := cc.ctx.Err(); err != nil {
			panic(evalCanceled{err})
		}
	}
}

// charge flushes the accumulated step count to the expansion-node
// counter (and the request cost, when present). Deferred by the entry
// points so cancelled evaluations still account for the work done.
func (cc *cancelCheck) charge(cost *obs.Cost) {
	obs.Charge(cost, obs.CostEngineExpansionNodes, engineExpansionNodes, cc.steps)
}

func (t *Table) probFormula(f Formula, memo map[string]float64, cc *cancelCheck) float64 {
	cc.tick()
	switch f {
	case FTrue:
		return 1
	case FFalse:
		return 0
	}
	key := f.String()
	if p, ok := memo[key]; ok {
		return p
	}
	events := f.Events()
	if len(events) == 0 {
		// No events but not a constant: evaluate under the empty
		// assignment (cannot happen with the public constructors).
		if f.Eval(Assignment{}) {
			return 1
		}
		return 0
	}
	e := events[0]
	pe := t.probs[e]
	p := pe*t.probFormula(f.Restrict(e, true), memo, cc) +
		(1-pe)*t.probFormula(f.Restrict(e, false), memo, cc)
	memo[key] = p
	return p
}

// EstimateFormula estimates P(f) by Monte-Carlo sampling, like
// EstimateDNF but for arbitrary formulas.
func (t *Table) EstimateFormula(f Formula, samples int, r *rand.Rand) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("event: non-positive sample count %d", samples)
	}
	events := f.Events()
	for _, e := range events {
		if !t.Has(e) {
			return 0, fmt.Errorf("event: unknown event %q in formula %q", e, f)
		}
	}
	hits := 0
	for i := 0; i < samples; i++ {
		if f.Eval(t.SampleAssignment(events, r)) {
			hits++
		}
	}
	ChargeMCSamples(nil, int64(samples))
	return float64(hits) / float64(samples), nil
}

// EstimateFormulaCtx is EstimateFormula honoring context cancellation
// between sample batches. Samples actually drawn (including before a
// cancellation) are charged to the context's cost accumulator and the
// global MC-sample counter.
func (t *Table) EstimateFormulaCtx(ctx context.Context, f Formula, samples int, r *rand.Rand) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("event: non-positive sample count %d", samples)
	}
	events := f.Events()
	for _, e := range events {
		if !t.Has(e) {
			return 0, fmt.Errorf("event: unknown event %q in formula %q", e, f)
		}
	}
	cost := obs.CostFromContext(ctx)
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			engineCancellations.Add(1)
			return math.NaN(), err
		}
	}
	hits, done := 0, 0
	defer func() { ChargeMCSamples(cost, int64(done)) }()
	for i := 0; i < samples; i++ {
		if ctx != nil && i&(cancelCheckInterval-1) == cancelCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				engineCancellations.Add(1)
				return math.NaN(), err
			}
		}
		if f.Eval(t.SampleAssignment(events, r)) {
			hits++
		}
		done++
	}
	return float64(hits) / float64(samples), nil
}

// ProbFormulaBrute computes P(f) by enumerating all assignments over the
// formula's events; the testing oracle for ProbFormula.
func (t *Table) ProbFormulaBrute(f Formula) (float64, error) {
	return t.ProbFormulaBruteCtx(context.Background(), f)
}

// ProbFormulaBruteCtx is ProbFormulaBrute honoring context cancellation:
// the assignment enumeration polls ctx every cancelCheckInterval
// assignments, the same cadence as the memoized evaluator, so the
// brute-force differential path can be stopped mid-flight too.
func (t *Table) ProbFormulaBruteCtx(ctx context.Context, f Formula) (float64, error) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	total := 0.0
	var steps int
	var cerr error
	err := t.ForEachAssignment(f.Events(), func(a Assignment, p float64) bool {
		if ctx != nil {
			if steps++; steps&(cancelCheckInterval-1) == 0 {
				if cerr = ctx.Err(); cerr != nil {
					return false
				}
			}
		}
		if f.Eval(a) {
			total += p
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if cerr != nil {
		engineCancellations.Inc()
		return math.NaN(), cerr
	}
	return total, nil
}
