package event

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/obs"
)

// This file implements the compilation front end of the exact
// probability engine: interning of event IDs to dense integers, the
// canonical integer-literal clause representation with a bitset fast
// path, and the engine counters surfaced by the pxserve /stats route.
//
// A compiled literal is slot<<1|neg where slot is the index of the
// event in the DNF-local universe (events ordered by their per-table
// interned index, so the expansion order — and hence the floating-point
// rounding — is deterministic for a given table). A compiled clause
// keeps its literals sorted ascending; when the whole DNF touches at
// most 64 distinct events every clause additionally carries pos/neg
// uint64 masks over the local slots, making contradiction, subset
// (absorption) and sample-evaluation checks single word operations.

// engine counters (package-global, lock-free: tables are read
// concurrently by query evaluation running outside warehouse locks).
// They live on the obs default registry, so /metrics and /stats read
// the same source of truth.
var (
	engineCompiles       = obs.Default().Counter("px_engine_compiles_total", "DNFs compiled by the exact probability engine")
	engineBitsetCompiles = obs.Default().Counter("px_engine_bitset_compiles_total", "compiled DNFs that qualified for the <=64-event bitset fast path")
	engineMemoHits       = obs.Default().Counter("px_engine_memo_hits_total", "Shannon-expansion structural-hash memo hits")
	engineMemoMisses     = obs.Default().Counter("px_engine_memo_misses_total", "Shannon-expansion structural-hash memo misses")
	engineComponents     = obs.Default().Counter("px_engine_components_total", "independent components produced by the decomposition")
	engineHashCollisions = obs.Default().Counter("px_engine_hash_collisions_total", "structural hash collisions (checked, recomputed)")
	engineCancellations  = obs.Default().Counter("px_engine_cancellations_total", "probability evaluations stopped mid-flight by context cancellation or deadline")
	engineExpansionNodes = obs.Default().Counter("px_engine_expansion_nodes_total", "Shannon-expansion nodes visited (DNF engine recursion steps and formula evaluator steps)")
	engineMCSamples      = obs.Default().Counter("px_engine_mc_samples_total", "Monte-Carlo world samples drawn")
)

// EngineCounters is a snapshot of the probability-engine counters:
// how many DNFs were compiled (and how many qualified for the ≤64-event
// bitset fast path), Shannon-expansion memo hits and misses, the number
// of independent components the decomposition produced, and structural
// hash collisions (checked, never trusted — a collision only costs a
// recomputation).
type EngineCounters struct {
	Compiles       int64 `json:"compiles"`
	BitsetCompiles int64 `json:"bitset_compiles"`
	MemoHits       int64 `json:"memo_hits"`
	MemoMisses     int64 `json:"memo_misses"`
	Components     int64 `json:"components"`
	HashCollisions int64 `json:"hash_collisions"`
	// Cancellations counts evaluations (exact or Monte-Carlo) stopped
	// mid-flight because their context was cancelled or timed out.
	Cancellations int64 `json:"cancellations"`
	// ExpansionNodes counts Shannon-expansion nodes visited (DNF engine
	// recursion steps plus formula-evaluator steps); MCSamples counts
	// Monte-Carlo world samples drawn.
	ExpansionNodes int64 `json:"expansion_nodes"`
	MCSamples      int64 `json:"mc_samples"`
}

// ReadEngineCounters returns the current engine counter values.
func ReadEngineCounters() EngineCounters {
	return EngineCounters{
		Compiles:       engineCompiles.Value(),
		BitsetCompiles: engineBitsetCompiles.Value(),
		MemoHits:       engineMemoHits.Value(),
		MemoMisses:     engineMemoMisses.Value(),
		Components:     engineComponents.Value(),
		HashCollisions: engineHashCollisions.Value(),
		Cancellations:  engineCancellations.Value(),
		ExpansionNodes: engineExpansionNodes.Value(),
		MCSamples:      engineMCSamples.Value(),
	}
}

// ResetEngineCounters zeroes the engine counters (tests, benchmarks).
func ResetEngineCounters() {
	engineCompiles.Reset()
	engineBitsetCompiles.Reset()
	engineMemoHits.Reset()
	engineMemoMisses.Reset()
	engineComponents.Reset()
	engineHashCollisions.Reset()
	engineCancellations.Reset()
	engineExpansionNodes.Reset()
	engineMCSamples.Reset()
}

// cclause is one compiled conjunctive clause: sorted local literals,
// plus pos/neg slot masks when the owning Compiled is small.
type cclause struct {
	lits []int32
	pos  uint64
	neg  uint64
}

// Compiled is a DNF compiled against a Table: normalized (unsatisfiable
// clauses dropped, duplicate literals and absorbed clauses removed),
// with events interned to dense local slots. It is immutable and safe
// for concurrent use; Prob and Estimate both run on it.
type Compiled struct {
	clauses []cclause
	probs   []float64 // local slot -> event probability (0 for unused slots)
	small   bool      // at most 64 local slots: clause masks are valid
	isTrue  bool      // the DNF contains an always-true clause
}

// Small reports whether the compiled DNF uses the ≤64-event bitset
// representation.
func (c *Compiled) Small() bool { return c.small }

// NumClauses returns the number of clauses after normalization.
func (c *Compiled) NumClauses() int { return len(c.clauses) }

// cmpClause orders clauses canonically: shorter first, then
// lexicographically by literal.
func cmpClause(a, b cclause) int {
	if len(a.lits) != len(b.lits) {
		return len(a.lits) - len(b.lits)
	}
	return slices.Compare(a.lits, b.lits)
}

// subsetClause reports whether every literal of a occurs in b.
func subsetClause(a, b cclause, small bool) bool {
	if small {
		return a.pos&^b.pos == 0 && a.neg&^b.neg == 0
	}
	i := 0
	for _, l := range a.lits {
		for i < len(b.lits) && b.lits[i] < l {
			i++
		}
		if i >= len(b.lits) || b.lits[i] != l {
			return false
		}
		i++
	}
	return true
}

// absorb filters a canonically sorted clause list in place, dropping
// every clause that contains all literals of an earlier kept clause
// (including exact duplicates). The input must be sorted by cmpClause
// so that weaker (shorter) clauses come first.
func absorb(cls []cclause, small bool) []cclause {
	kept := cls[:0]
	for _, c := range cls {
		absorbed := false
		for _, k := range kept {
			if subsetClause(k, c, small) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			kept = append(kept, c)
		}
	}
	return kept
}

// clauseMasks computes the pos/neg slot masks of a clause.
func clauseMasks(lits []int32) (pos, neg uint64) {
	for _, l := range lits {
		if l&1 == 1 {
			neg |= 1 << uint(l>>1)
		} else {
			pos |= 1 << uint(l>>1)
		}
	}
	return pos, neg
}

// CompileDNFCtx is CompileDNF charging the context's cost accumulator
// (when one is attached) alongside the global compile counters, so a
// request's ?explain=1 breakdown mirrors the px_engine_* families
// exactly. Compilation itself never consults the context.
func (t *Table) CompileDNFCtx(ctx context.Context, d DNF) (*Compiled, error) {
	return t.compileDNF(obs.CostFromContext(ctx), d)
}

// ChargeMCSamples charges n Monte-Carlo samples drawn outside the
// compiled engine (keyword search's world sampler, formula estimation)
// to the same px_engine_mc_samples_total family and cost category the
// engine itself uses, keeping the sample accounting unified.
func ChargeMCSamples(cost *obs.Cost, n int64) {
	obs.Charge(cost, obs.CostEngineMCSamples, engineMCSamples, n)
}

// CompileDNF compiles d against the table. Events are interned through
// the table's dense index; events unknown to the table are an error
// only if they survive normalization (an unknown event confined to an
// unsatisfiable or absorbed clause is never consulted, matching the
// possible-worlds semantics and the historical ProbDNF behavior).
func (t *Table) CompileDNF(d DNF) (*Compiled, error) {
	return t.compileDNF(nil, d)
}

// compileDNF is the shared implementation: every counter increment goes
// through obs.Charge, so the global families and the per-request cost
// stay two sums over the same stream.
func (t *Table) compileDNF(cost *obs.Cost, d DNF) (*Compiled, error) {
	obs.Charge(cost, obs.CostEngineCompiles, engineCompiles, 1)
	c := &Compiled{}
	if len(d) == 0 {
		return c, nil // constant false
	}

	// Pass 1: intern every literal to a global index (table interner,
	// with a compile-local overflow for events the table doesn't know).
	var overflow []ID
	globOf := func(id ID) int32 {
		if g, ok := t.idx[id]; ok {
			return g
		}
		for i, o := range overflow {
			if o == id {
				return int32(len(t.rev) + i)
			}
		}
		overflow = append(overflow, id)
		return int32(len(t.rev) + len(overflow) - 1)
	}
	total := 0
	for _, cl := range d {
		total += len(cl)
	}
	rawLits := make([]int32, 0, total)
	ends := make([]int, 0, len(d))
	for _, cl := range d {
		for _, l := range cl {
			g := globOf(l.Event) << 1
			if l.Neg {
				g |= 1
			}
			rawLits = append(rawLits, g)
		}
		ends = append(ends, len(rawLits))
	}

	// Distinct globals, ascending: the local slot universe. Ordering by
	// interned index keeps expansion order deterministic per table.
	globals := make([]int32, len(rawLits))
	for i, l := range rawLits {
		globals[i] = l >> 1
	}
	slices.Sort(globals)
	globals = slices.Compact(globals)
	c.small = len(globals) <= 64
	if c.small {
		obs.Charge(cost, obs.CostEngineBitsetCompiles, engineBitsetCompiles, 1)
	}

	// Pass 2: build normalized clauses over local slots.
	litArena := make([]int32, 0, total)
	clauses := make([]cclause, 0, len(d))
	start := 0
	for _, end := range ends {
		raw := rawLits[start:end]
		start = end
		if len(raw) == 0 {
			// Always-true clause: the whole DNF is true; no event of any
			// other clause is ever consulted.
			c.isTrue = true
			c.clauses = []cclause{{}}
			c.probs = make([]float64, len(globals))
			return c, nil
		}
		// Remap to local slots, sort, dedup, drop on contradiction.
		lits := litArena[len(litArena):len(litArena):cap(litArena)]
		for _, l := range raw {
			slot, _ := slices.BinarySearch(globals, l>>1)
			lits = append(lits, int32(slot)<<1|l&1)
		}
		litArena = litArena[:len(litArena)+len(lits)]
		slices.Sort(lits)
		lits = slices.Compact(lits)
		contradicted := false
		for i := 0; i+1 < len(lits); i++ {
			if lits[i]>>1 == lits[i+1]>>1 {
				contradicted = true
				break
			}
		}
		if contradicted {
			continue
		}
		cl := cclause{lits: lits}
		if c.small {
			cl.pos, cl.neg = clauseMasks(lits)
		}
		clauses = append(clauses, cl)
	}

	slices.SortFunc(clauses, cmpClause)
	clauses = absorb(clauses, c.small)
	c.clauses = clauses

	// Only events that survive normalization must be known; resolve
	// their probabilities into the dense local table.
	c.probs = make([]float64, len(globals))
	seen := make([]bool, len(globals))
	for _, cl := range clauses {
		for _, l := range cl.lits {
			slot := l >> 1
			if seen[slot] {
				continue
			}
			seen[slot] = true
			g := globals[slot]
			var id ID
			if int(g) < len(t.rev) {
				id = t.rev[g]
			} else {
				id = overflow[int(g)-len(t.rev)]
			}
			p, ok := t.probs[id]
			if !ok {
				return nil, fmt.Errorf("event: unknown event %q in DNF %q", id, d)
			}
			c.probs[slot] = p
		}
	}
	return c, nil
}
