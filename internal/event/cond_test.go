package event

import (
	"testing"
)

func TestLiteralString(t *testing.T) {
	if got := Pos("w1").String(); got != "w1" {
		t.Errorf("Pos = %q", got)
	}
	if got := Neg("w2").String(); got != "!w2" {
		t.Errorf("Neg = %q", got)
	}
	if got := Neg("w2").Negate(); got != Pos("w2") {
		t.Errorf("Negate = %v", got)
	}
}

func TestConditionNormalize(t *testing.T) {
	c := Cond(Neg("w2"), Pos("w1"), Pos("w1"))
	n := c.Normalize()
	if n.String() != "w1 !w2" {
		t.Errorf("Normalize = %q, want %q", n.String(), "w1 !w2")
	}
	if got := Condition(nil).Normalize(); got != nil {
		t.Errorf("Normalize(nil) = %v, want nil", got)
	}
	if got := Cond().Normalize(); got != nil {
		t.Errorf("Normalize(empty) = %v, want nil", got)
	}
}

func TestConditionNormalizeKeepsContradiction(t *testing.T) {
	c := Cond(Pos("w"), Neg("w"))
	n := c.Normalize()
	if len(n) != 2 {
		t.Errorf("contradictory pair should be preserved, got %v", n)
	}
	if n.Satisfiable() {
		t.Error("contradiction reported satisfiable")
	}
}

func TestSatisfiable(t *testing.T) {
	if !Cond(Pos("a"), Neg("b")).Satisfiable() {
		t.Error("a !b should be satisfiable")
	}
	if Cond(Pos("a"), Neg("a")).Satisfiable() {
		t.Error("a !a should be unsatisfiable")
	}
	if !Condition(nil).Satisfiable() {
		t.Error("true should be satisfiable")
	}
}

func TestAnd(t *testing.T) {
	c := MustParseCondition("w1")
	d := MustParseCondition("!w2 w1")
	got := c.And(d)
	if got.String() != "w1 !w2" {
		t.Errorf("And = %q", got.String())
	}
	contradiction := MustParseCondition("w1").And(MustParseCondition("!w1"))
	if contradiction.Satisfiable() {
		t.Error("w1 ∧ !w1 should be unsatisfiable")
	}
}

func TestEntails(t *testing.T) {
	c := MustParseCondition("w1 w2 !w3")
	if !c.Entails(MustParseCondition("w1 !w3")) {
		t.Error("superset should entail subset")
	}
	if c.Entails(MustParseCondition("w4")) {
		t.Error("missing literal should not be entailed")
	}
	if !c.Entails(nil) {
		t.Error("everything entails true")
	}
	unsat := MustParseCondition("w1 !w1")
	if !unsat.Entails(MustParseCondition("anything")) {
		t.Error("unsatisfiable condition entails everything")
	}
}

func TestMinus(t *testing.T) {
	c := MustParseCondition("w1 w2 w3")
	d := MustParseCondition("w2")
	if got := c.Minus(d); got.String() != "w1 w3" {
		t.Errorf("Minus = %q", got.String())
	}
	// Negated literal of same event is not removed.
	e := MustParseCondition("!w2")
	if got := c.Minus(e); got.String() != "w1 w2 w3" {
		t.Errorf("Minus with opposite sign = %q", got.String())
	}
}

func TestConditionEval(t *testing.T) {
	c := MustParseCondition("w1 !w2")
	cases := []struct {
		a    Assignment
		want bool
	}{
		{Assignment{"w1": true, "w2": false}, true},
		{Assignment{"w1": true, "w2": true}, false},
		{Assignment{"w1": false, "w2": false}, false},
		{Assignment{}, false}, // absent events default to false: w1 false
	}
	for i, tc := range cases {
		if got := c.Eval(tc.a); got != tc.want {
			t.Errorf("case %d: Eval(%v) = %t, want %t", i, tc.a, got, tc.want)
		}
	}
	if !Condition(nil).Eval(Assignment{}) {
		t.Error("true condition should hold under any assignment")
	}
}

func TestConditionEvents(t *testing.T) {
	c := MustParseCondition("w2 !w1 w2")
	ev := c.Events()
	if len(ev) != 2 || ev[0] != "w1" || ev[1] != "w2" {
		t.Errorf("Events = %v", ev)
	}
}

func TestConditionEqual(t *testing.T) {
	a := Cond(Pos("w1"), Neg("w2"))
	b := Cond(Neg("w2"), Pos("w1"), Pos("w1"))
	if !a.Equal(b) {
		t.Error("conditions equal up to order and duplicates should compare equal")
	}
	if a.Equal(Cond(Pos("w1"))) {
		t.Error("different conditions compare equal")
	}
}

func TestParseCondition(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"", "", true},
		{"  ", "", true},
		{"w1", "w1", true},
		{"w1 !w2", "w1 !w2", true},
		{"!w2, w1", "w1 !w2", true},
		{"~w2 w1", "w1 !w2", true},
		{"¬w2 w1", "w1 !w2", true},
		{"!!w1", "w1", true}, // double negation
		{"!", "", false},
		{"w!1", "", false},
	}
	for _, tc := range cases {
		got, err := ParseCondition(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseCondition(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if err == nil && got.String() != tc.want {
			t.Errorf("ParseCondition(%q) = %q, want %q", tc.in, got.String(), tc.want)
		}
	}
}

func TestParseConditionRoundTrip(t *testing.T) {
	orig := Cond(Pos("w1"), Neg("w2"), Pos("x9")).Normalize()
	back, err := ParseCondition(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(back) {
		t.Errorf("round trip: %q -> %q", orig.String(), back.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	c := Cond(Pos("w1"), Pos("w2"))
	d := c.Clone()
	d[0] = Neg("w9")
	if c[0] != Pos("w1") {
		t.Error("mutating clone affected original")
	}
	if Condition(nil).Clone() != nil {
		t.Error("clone of nil should be nil")
	}
}
