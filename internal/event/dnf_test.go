package event

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDNFNormalizeAbsorption(t *testing.T) {
	d := DNF{
		MustParseCondition("w1 w2"),
		MustParseCondition("w1"), // absorbs w1 w2
		MustParseCondition("w3 !w3"),
	}
	n := d.Normalize()
	if len(n) != 1 || n[0].String() != "w1" {
		t.Errorf("Normalize = %v", n)
	}
}

func TestDNFNormalizeTrueClause(t *testing.T) {
	d := DNF{MustParseCondition("w1"), nil}
	n := d.Normalize()
	if !n.IsTrue() {
		t.Errorf("DNF with empty clause should normalize to true, got %v", n)
	}
	if len(n) != 1 {
		t.Errorf("true clause should absorb everything, got %v", n)
	}
}

func TestDNFNormalizeAllUnsat(t *testing.T) {
	d := DNF{MustParseCondition("w1 !w1")}
	if n := d.Normalize(); n != nil {
		t.Errorf("all-unsat DNF should normalize to false, got %v", n)
	}
}

func TestDNFEval(t *testing.T) {
	d := DNF{MustParseCondition("w1"), MustParseCondition("!w1 w2")}
	if !d.Eval(Assignment{"w1": true}) {
		t.Error("first clause should satisfy")
	}
	if !d.Eval(Assignment{"w1": false, "w2": true}) {
		t.Error("second clause should satisfy")
	}
	if d.Eval(Assignment{"w1": false, "w2": false}) {
		t.Error("no clause should satisfy")
	}
	if DNF(nil).Eval(Assignment{}) {
		t.Error("empty DNF is false")
	}
}

func TestDNFString(t *testing.T) {
	if got := DNF(nil).String(); got != "false" {
		t.Errorf("false DNF = %q", got)
	}
	if got := (DNF{nil}).String(); got != "true" {
		t.Errorf("true DNF = %q", got)
	}
	d := DNF{MustParseCondition("w1"), MustParseCondition("!w2")}
	if got := d.String(); got != "w1 | !w2" {
		t.Errorf("String = %q", got)
	}
}

func TestProbDNFGolden(t *testing.T) {
	tab := slideTable() // w1=0.8 w2=0.7
	cases := []struct {
		d    DNF
		want float64
	}{
		{nil, 0},
		{DNF{nil}, 1},
		{DNF{MustParseCondition("w1")}, 0.8},
		{DNF{MustParseCondition("w1"), MustParseCondition("w2")}, 1 - 0.2*0.3}, // 0.94
		{DNF{MustParseCondition("w1 w2")}, 0.56},
		{DNF{MustParseCondition("w1"), MustParseCondition("!w1")}, 1},
		{DNF{MustParseCondition("w1 !w2"), MustParseCondition("!w1 w2")}, 0.8*0.3 + 0.2*0.7},
		{DNF{MustParseCondition("w1 !w1")}, 0},
	}
	for i, tc := range cases {
		got, err := tab.ProbDNF(tc.d)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("case %d: ProbDNF(%v) = %v, want %v", i, tc.d, got, tc.want)
		}
	}
}

func TestProbDNFUnknownEvent(t *testing.T) {
	tab := slideTable()
	if _, err := tab.ProbDNF(DNF{MustParseCondition("zz")}); err == nil {
		t.Error("unknown event accepted")
	}
}

// randomDNF builds a random DNF over a small event universe.
func randomDNF(r *rand.Rand, tab *Table, maxClauses, maxLits int) DNF {
	events := tab.Events()
	k := 1 + r.Intn(maxClauses)
	d := make(DNF, 0, k)
	for i := 0; i < k; i++ {
		m := 1 + r.Intn(maxLits)
		var c Condition
		for j := 0; j < m; j++ {
			l := Literal{Event: events[r.Intn(len(events))], Neg: r.Intn(2) == 0}
			c = append(c, l)
		}
		d = append(d, c)
	}
	return d
}

func randomEventTable(r *rand.Rand, n int) *Table {
	tab := NewTable()
	for i := 0; i < n; i++ {
		tab.MustSet(ID(string(rune('a'+i))), r.Float64())
	}
	return tab
}

func TestProbDNFMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := randomEventTable(r, 2+r.Intn(5))
		d := randomDNF(r, tab, 5, 4)
		exact, err := tab.ProbDNF(d)
		if err != nil {
			t.Log(err)
			return false
		}
		brute, err := tab.ProbDNFBrute(d)
		if err != nil {
			t.Log(err)
			return false
		}
		if math.Abs(exact-brute) > 1e-9 {
			t.Logf("seed %d: ProbDNF=%v brute=%v dnf=%v table=%v", seed, exact, brute, d, tab)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProbDNFNormalizationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := randomEventTable(r, 2+r.Intn(4))
		d := randomDNF(r, tab, 4, 3)
		p1, err1 := tab.ProbDNF(d)
		p2, err2 := tab.ProbDNF(d.Normalize())
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(p1-p2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEstimateDNFConverges(t *testing.T) {
	tab := slideTable()
	d := DNF{MustParseCondition("w1 !w2"), MustParseCondition("!w1 w2")}
	want, _ := tab.ProbDNF(d)
	r := rand.New(rand.NewSource(42))
	got, err := tab.EstimateDNF(d, 200000, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.01 {
		t.Errorf("estimate %v far from exact %v", got, want)
	}
}

func TestEstimateDNFValidation(t *testing.T) {
	tab := slideTable()
	r := rand.New(rand.NewSource(1))
	if _, err := tab.EstimateDNF(DNF{MustParseCondition("w1")}, 0, r); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := tab.EstimateDNF(DNF{MustParseCondition("zz")}, 10, r); err == nil {
		t.Error("unknown event accepted")
	}
}

func TestDNFEvents(t *testing.T) {
	d := DNF{MustParseCondition("w2 w1"), MustParseCondition("!w3")}
	ev := d.Events()
	if len(ev) != 3 || ev[0] != "w1" || ev[1] != "w2" || ev[2] != "w3" {
		t.Errorf("Events = %v", ev)
	}
}

func TestDNFCloneIndependence(t *testing.T) {
	d := DNF{MustParseCondition("w1")}
	c := d.Clone()
	c[0][0] = Neg("w9")
	if d[0][0] != Pos("w1") {
		t.Error("mutating clone affected original")
	}
	if DNF(nil).Clone() != nil {
		t.Error("clone of nil should be nil")
	}
}

func TestDNFOr(t *testing.T) {
	d := DNF(nil).Or(MustParseCondition("w1")).Or(MustParseCondition("w2"))
	if len(d) != 2 {
		t.Errorf("Or produced %d clauses", len(d))
	}
}

// TestDNFOrNoAliasing is the regression test for the append-aliasing
// hazard: two DNFs branched from the same prefix must not share a
// backing array, or the second Or silently overwrites the first
// branch's clause.
func TestDNFOrNoAliasing(t *testing.T) {
	base := make(DNF, 1, 4) // spare capacity, the dangerous case for append
	base[0] = MustParseCondition("w1")
	d1 := base.Or(MustParseCondition("w2"))
	d2 := base.Or(MustParseCondition("w3"))
	if got := d1[1].String(); got != "w2" {
		t.Errorf("first branch clause = %q, want \"w2\" (clobbered by aliasing)", got)
	}
	if got := d2[1].String(); got != "w3" {
		t.Errorf("second branch clause = %q, want \"w3\"", got)
	}
	// The receiver itself must stay untouched.
	if len(base) != 1 || base[0].String() != "w1" {
		t.Errorf("receiver mutated by Or: %v", base)
	}
}
