package event

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Table assigns probabilities to independent probabilistic events. The
// zero value is not usable; call NewTable.
type Table struct {
	probs   map[ID]float64
	counter int // monotonically increasing suffix for Fresh

	// Interner for the probability engine: every event ever Set gets a
	// dense int32 index (append-only; Delete leaves a tombstone so
	// indexes stay stable). Mutated only under Set, so the read-only
	// compile path is safe for concurrent queries.
	idx map[ID]int32
	rev []ID
}

// NewTable returns an empty event table.
func NewTable() *Table {
	return &Table{probs: make(map[ID]float64), idx: make(map[ID]int32)}
}

// Set records the probability of event e. It returns an error if p is
// outside [0, 1] or e is empty.
func (t *Table) Set(e ID, p float64) error {
	if e == "" {
		return fmt.Errorf("event: empty event name")
	}
	if p < 0 || p > 1 || p != p { // p != p rejects NaN
		return fmt.Errorf("event: probability %v of %q outside [0,1]", p, e)
	}
	t.probs[e] = p
	if _, ok := t.idx[e]; !ok {
		t.idx[e] = int32(len(t.rev))
		t.rev = append(t.rev, e)
	}
	return nil
}

// MustSet is like Set but panics on error; intended for constant inputs.
func (t *Table) MustSet(e ID, p float64) *Table {
	if err := t.Set(e, p); err != nil {
		panic(err)
	}
	return t
}

// Prob returns the probability of event e and whether it is known.
func (t *Table) Prob(e ID) (float64, bool) {
	p, ok := t.probs[e]
	return p, ok
}

// Has reports whether the table knows event e.
func (t *Table) Has(e ID) bool {
	_, ok := t.probs[e]
	return ok
}

// Delete removes event e from the table.
func (t *Table) Delete(e ID) {
	delete(t.probs, e)
}

// Len returns the number of events in the table.
func (t *Table) Len() int { return len(t.probs) }

// Events returns the sorted list of known events.
func (t *Table) Events() []ID {
	out := make([]ID, 0, len(t.probs))
	for id := range t.probs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the table. The interner is compacted to
// the live events (Delete leaves tombstones in the original so indexes
// stay stable under concurrent reads; a fresh clone has no readers, so
// reclaiming them here keeps long-lived clone chains — one per
// warehouse update — from growing without bound).
func (t *Table) Clone() *Table {
	c := NewTable()
	for id, p := range t.probs {
		c.probs[id] = p
	}
	c.rev = make([]ID, 0, len(t.probs))
	for _, id := range t.rev {
		if _, ok := t.probs[id]; ok {
			c.idx[id] = int32(len(c.rev))
			c.rev = append(c.rev, id)
		}
	}
	c.counter = t.counter
	return c
}

// Fresh allocates an event name of the form prefix+N that does not occur
// in the table, registers it with probability p, and returns it. Updates
// use it to mint one confidence event per transaction.
func (t *Table) Fresh(prefix string, p float64) (ID, error) {
	if prefix == "" {
		prefix = "u"
	}
	for {
		t.counter++
		id := ID(fmt.Sprintf("%s%d", prefix, t.counter))
		if !t.Has(id) {
			if err := t.Set(id, p); err != nil {
				return "", err
			}
			return id, nil
		}
	}
}

// ProbCond returns the probability that the conjunction c holds: 0 for
// unsatisfiable conditions, otherwise the product over the (normalized)
// literals, using independence. Unknown events are an error.
func (t *Table) ProbCond(c Condition) (float64, error) {
	n := c.Normalize()
	if !n.Satisfiable() {
		return 0, nil
	}
	p := 1.0
	for _, l := range n {
		pe, ok := t.probs[l.Event]
		if !ok {
			return 0, fmt.Errorf("event: unknown event %q in condition %q", l.Event, c)
		}
		if l.Neg {
			p *= 1 - pe
		} else {
			p *= pe
		}
	}
	return p, nil
}

// ForEachAssignment enumerates all 2^n assignments over the given events
// together with their probabilities, invoking fn for each. If fn returns
// false the enumeration stops. Events must all be known to the table.
func (t *Table) ForEachAssignment(events []ID, fn func(a Assignment, p float64) bool) error {
	for _, e := range events {
		if !t.Has(e) {
			return fmt.Errorf("event: unknown event %q", e)
		}
	}
	a := make(Assignment, len(events))
	var rec func(i int, p float64) bool
	rec = func(i int, p float64) bool {
		if i == len(events) {
			return fn(a, p)
		}
		e := events[i]
		pe := t.probs[e]
		a[e] = true
		if !rec(i+1, p*pe) {
			return false
		}
		a[e] = false
		if !rec(i+1, p*(1-pe)) {
			return false
		}
		delete(a, e)
		return true
	}
	rec(0, 1)
	return nil
}

// SampleAssignment draws one random assignment of the given events.
func (t *Table) SampleAssignment(events []ID, r *rand.Rand) Assignment {
	a := make(Assignment, len(events))
	for _, e := range events {
		a[e] = r.Float64() < t.probs[e]
	}
	return a
}

// String renders the table deterministically, e.g. "w1=0.8 w2=0.7".
func (t *Table) String() string {
	ids := t.Events()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%s=%g", id, t.probs[id])
	}
	return strings.Join(parts, " ")
}
