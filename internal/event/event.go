// Package event implements the probabilistic event machinery of the
// fuzzy-tree model of Abiteboul and Senellart (EDBT 2006).
//
// A probabilistic event w is an independent Boolean random variable with
// a probability given by an event Table. Fuzzy-tree nodes carry
// Conditions: conjunctions of event literals (w or ¬w). Query answers on
// fuzzy trees arise from one or more valuations and therefore have
// probabilities of disjunctions of conditions (DNF); the package computes
// those exactly by memoized Shannon expansion, and approximately by Monte
// Carlo sampling.
package event

import (
	"fmt"
	"sort"
	"strings"
)

// ID identifies a probabilistic event, e.g. "w1".
type ID string

// Literal is an event or its negation.
type Literal struct {
	Event ID
	Neg   bool
}

// Pos returns the positive literal for e.
func Pos(e ID) Literal { return Literal{Event: e} }

// Neg returns the negated literal for e.
func Neg(e ID) Literal { return Literal{Event: e, Neg: true} }

// Negate returns the complementary literal.
func (l Literal) Negate() Literal { return Literal{Event: l.Event, Neg: !l.Neg} }

// String renders the literal in the textual condition syntax: "w" for a
// positive literal and "!w" for a negation.
func (l Literal) String() string {
	if l.Neg {
		return "!" + string(l.Event)
	}
	return string(l.Event)
}

// Eval returns the truth value of the literal under the assignment.
// Events absent from the assignment are treated as false.
func (l Literal) Eval(a Assignment) bool {
	return a[l.Event] != l.Neg
}

// compareLiterals orders literals by event then by sign (positive first),
// defining the canonical order of conditions.
func compareLiterals(a, b Literal) int {
	switch {
	case a.Event < b.Event:
		return -1
	case a.Event > b.Event:
		return 1
	case a.Neg == b.Neg:
		return 0
	case !a.Neg:
		return -1
	default:
		return 1
	}
}

// Assignment maps events to truth values, describing one possible world
// of the event space.
type Assignment map[ID]bool

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// String renders the assignment deterministically, e.g. "w1=true w2=false".
func (a Assignment) String() string {
	ids := make([]string, 0, len(a))
	for id := range a {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%s=%t", id, a[ID(id)])
	}
	return strings.Join(parts, " ")
}
