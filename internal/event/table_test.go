package event

import (
	"math"
	"math/rand"
	"testing"
)

func slideTable() *Table {
	return NewTable().MustSet("w1", 0.8).MustSet("w2", 0.7)
}

func TestTableSetValidation(t *testing.T) {
	tab := NewTable()
	if err := tab.Set("w", -0.1); err == nil {
		t.Error("negative probability accepted")
	}
	if err := tab.Set("w", 1.1); err == nil {
		t.Error("probability > 1 accepted")
	}
	if err := tab.Set("w", math.NaN()); err == nil {
		t.Error("NaN probability accepted")
	}
	if err := tab.Set("", 0.5); err == nil {
		t.Error("empty event name accepted")
	}
	if err := tab.Set("w", 0); err != nil {
		t.Errorf("boundary 0 rejected: %v", err)
	}
	if err := tab.Set("w", 1); err != nil {
		t.Errorf("boundary 1 rejected: %v", err)
	}
}

func TestTableLookup(t *testing.T) {
	tab := slideTable()
	if p, ok := tab.Prob("w1"); !ok || p != 0.8 {
		t.Errorf("Prob(w1) = %v, %v", p, ok)
	}
	if _, ok := tab.Prob("missing"); ok {
		t.Error("missing event reported present")
	}
	if !tab.Has("w2") || tab.Has("w3") {
		t.Error("Has misreports")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d", tab.Len())
	}
	ev := tab.Events()
	if len(ev) != 2 || ev[0] != "w1" || ev[1] != "w2" {
		t.Errorf("Events = %v", ev)
	}
}

func TestTableDelete(t *testing.T) {
	tab := slideTable()
	tab.Delete("w1")
	if tab.Has("w1") || tab.Len() != 1 {
		t.Error("delete failed")
	}
}

func TestTableClone(t *testing.T) {
	tab := slideTable()
	c := tab.Clone()
	c.MustSet("w3", 0.5)
	if tab.Has("w3") {
		t.Error("clone shares storage with original")
	}
}

func TestFresh(t *testing.T) {
	tab := slideTable()
	id1, err := tab.Fresh("u", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := tab.Fresh("u", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Error("Fresh returned duplicate ids")
	}
	if !tab.Has(id1) || !tab.Has(id2) {
		t.Error("Fresh ids not registered")
	}
	if p, _ := tab.Prob(id1); p != 0.9 {
		t.Errorf("Fresh probability = %v", p)
	}
	// Fresh must skip over manually taken names.
	tab2 := NewTable().MustSet("u1", 0.1)
	id, err := tab2.Fresh("u", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if id == "u1" {
		t.Error("Fresh reused existing name")
	}
}

func TestFreshRejectsBadProbability(t *testing.T) {
	tab := NewTable()
	if _, err := tab.Fresh("u", 1.5); err == nil {
		t.Error("Fresh accepted probability > 1")
	}
}

func TestProbCond(t *testing.T) {
	tab := slideTable()
	cases := []struct {
		cond string
		want float64
	}{
		{"", 1},
		{"w1", 0.8},
		{"!w1", 0.2},
		{"w1 w2", 0.56},
		{"w1 !w2", 0.24},
		{"!w1 !w2", 0.06},
		{"w1 !w1", 0},
		{"w1 w1", 0.8}, // duplicates collapse before multiplying
	}
	for _, tc := range cases {
		got, err := tab.ProbCond(MustParseCondition(tc.cond))
		if err != nil {
			t.Errorf("ProbCond(%q): %v", tc.cond, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("ProbCond(%q) = %v, want %v", tc.cond, got, tc.want)
		}
	}
}

func TestProbCondUnknownEvent(t *testing.T) {
	tab := slideTable()
	if _, err := tab.ProbCond(MustParseCondition("nope")); err == nil {
		t.Error("unknown event accepted")
	}
}

func TestForEachAssignment(t *testing.T) {
	tab := slideTable()
	total := 0.0
	count := 0
	err := tab.ForEachAssignment([]ID{"w1", "w2"}, func(a Assignment, p float64) bool {
		total += p
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Errorf("visited %d assignments, want 4", count)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("assignment probabilities sum to %v, want 1", total)
	}
}

func TestForEachAssignmentEarlyStop(t *testing.T) {
	tab := slideTable()
	count := 0
	_ = tab.ForEachAssignment([]ID{"w1", "w2"}, func(a Assignment, p float64) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d, want 2", count)
	}
}

func TestForEachAssignmentUnknown(t *testing.T) {
	tab := slideTable()
	if err := tab.ForEachAssignment([]ID{"zz"}, func(Assignment, float64) bool { return true }); err == nil {
		t.Error("unknown event accepted")
	}
}

func TestForEachAssignmentEmpty(t *testing.T) {
	tab := slideTable()
	count := 0
	err := tab.ForEachAssignment(nil, func(a Assignment, p float64) bool {
		count++
		if p != 1 {
			t.Errorf("empty assignment probability %v", p)
		}
		return true
	})
	if err != nil || count != 1 {
		t.Errorf("empty enumeration: count=%d err=%v", count, err)
	}
}

func TestSampleAssignmentDistribution(t *testing.T) {
	tab := NewTable().MustSet("w", 0.8)
	r := rand.New(rand.NewSource(7))
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if tab.SampleAssignment([]ID{"w"}, r)["w"] {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.8) > 0.02 {
		t.Errorf("sampled frequency %v far from 0.8", freq)
	}
}

func TestTableString(t *testing.T) {
	tab := slideTable()
	if got := tab.String(); got != "w1=0.8 w2=0.7" {
		t.Errorf("String = %q", got)
	}
}

func TestAssignmentString(t *testing.T) {
	a := Assignment{"w2": false, "w1": true}
	if got := a.String(); got != "w1=true w2=false" {
		t.Errorf("String = %q", got)
	}
	b := a.Clone()
	b["w1"] = false
	if !a["w1"] {
		t.Error("clone shares storage")
	}
}
