package event

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestCompileNormalizes(t *testing.T) {
	tab := NewTable()
	tab.MustSet("w1", 0.8).MustSet("w2", 0.7).MustSet("w3", 0.5)
	d := DNF{
		MustParseCondition("w1 w2"),
		MustParseCondition("w1"),     // absorbs w1 w2
		MustParseCondition("w3 !w3"), // unsatisfiable, dropped
		MustParseCondition("w1"),     // duplicate
	}
	c, err := tab.CompileDNF(d)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClauses() != 1 {
		t.Errorf("compiled to %d clauses, want 1", c.NumClauses())
	}
	if !c.Small() {
		t.Error("3-event DNF should take the bitset fast path")
	}
	if p := c.Prob(); math.Abs(p-0.8) > 1e-12 {
		t.Errorf("Prob = %v, want 0.8", p)
	}
}

func TestCompileTrueClause(t *testing.T) {
	tab := NewTable()
	tab.MustSet("w1", 0.8)
	// The empty clause makes the DNF true; the unknown event in the
	// other clause is never consulted (matching possible-worlds
	// semantics and the historical ProbDNF behavior).
	c, err := tab.CompileDNF(DNF{MustParseCondition("zz"), nil})
	if err != nil {
		t.Fatal(err)
	}
	if p := c.Prob(); p != 1 {
		t.Errorf("Prob = %v, want 1", p)
	}
}

func TestCompileUnknownEventAbsorbed(t *testing.T) {
	tab := NewTable()
	tab.MustSet("w1", 0.8)
	// "w1 zz" is absorbed by "w1", so the unknown zz never surfaces.
	p, err := tab.ProbDNF(DNF{MustParseCondition("w1"), MustParseCondition("w1 zz")})
	if err != nil {
		t.Fatalf("absorbed unknown event should not error: %v", err)
	}
	if math.Abs(p-0.8) > 1e-12 {
		t.Errorf("ProbDNF = %v, want 0.8", p)
	}
	// Unknown event in an unsatisfiable clause is likewise dropped.
	if _, err := tab.ProbDNF(DNF{MustParseCondition("zz !zz"), MustParseCondition("w1")}); err != nil {
		t.Fatalf("unsatisfiable clause with unknown event should not error: %v", err)
	}
	// But a surviving unknown event is an error.
	if _, err := tab.ProbDNF(DNF{MustParseCondition("zz")}); err == nil {
		t.Error("surviving unknown event accepted")
	}
}

func TestProbDNFComponents(t *testing.T) {
	// Three pairwise-disjoint clauses: the decomposition must give
	// 1 - ∏(1 - pᵢ·qᵢ) exactly.
	tab := NewTable()
	probs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	for i, p := range probs {
		tab.MustSet(ID(fmt.Sprintf("e%d", i)), p)
	}
	d := DNF{
		MustParseCondition("e0 e1"),
		MustParseCondition("e2 e3"),
		MustParseCondition("e4 !e5"),
	}
	want := 1 - (1-0.1*0.2)*(1-0.3*0.4)*(1-0.5*0.4)
	ResetEngineCounters()
	got, err := tab.ProbDNF(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ProbDNF = %v, want %v", got, want)
	}
	if c := ReadEngineCounters(); c.Components < 3 {
		t.Errorf("components counter = %d, want >= 3", c.Components)
	}
	brute, err := tab.ProbDNFBrute(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-brute) > 1e-12 {
		t.Errorf("ProbDNF = %v, brute = %v", got, brute)
	}
}

// TestProbDNFLargeUniverse exercises the >64-event slow path (no
// bitsets) against a closed form: 80 disjoint two-literal clauses.
func TestProbDNFLargeUniverse(t *testing.T) {
	tab := NewTable()
	var d DNF
	want := 1.0
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 80; i++ {
		a := ID(fmt.Sprintf("a%d", i))
		b := ID(fmt.Sprintf("b%d", i))
		pa, pb := r.Float64(), r.Float64()
		tab.MustSet(a, pa)
		tab.MustSet(b, pb)
		d = append(d, Cond(Pos(a), Neg(b)))
		want *= 1 - pa*(1-pb)
	}
	want = 1 - want
	c, err := tab.CompileDNF(d)
	if err != nil {
		t.Fatal(err)
	}
	if c.Small() {
		t.Fatal("160-event DNF must not claim the bitset fast path")
	}
	if got := c.Prob(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Prob = %v, want %v", got, want)
	}
	// The sampling path over the same compiled form converges too.
	if est := c.Estimate(20000, rand.New(rand.NewSource(1))); math.Abs(est-want) > 0.02 {
		t.Errorf("Estimate = %v, want ≈ %v", est, want)
	}
}

func TestEngineCountersAdvance(t *testing.T) {
	tab := NewTable()
	tab.MustSet("w1", 0.8).MustSet("w2", 0.7).MustSet("w3", 0.6)
	ResetEngineCounters()
	d := DNF{
		MustParseCondition("w1 w2"),
		MustParseCondition("w2 w3"),
		MustParseCondition("!w1 w3"),
	}
	if _, err := tab.ProbDNF(d); err != nil {
		t.Fatal(err)
	}
	c := ReadEngineCounters()
	if c.Compiles != 1 || c.BitsetCompiles != 1 {
		t.Errorf("compiles = %d/%d, want 1/1", c.Compiles, c.BitsetCompiles)
	}
	if c.MemoMisses == 0 {
		t.Errorf("memo misses = 0, want > 0")
	}
	if c.HashCollisions != 0 {
		t.Errorf("hash collisions = %d on a tiny DNF", c.HashCollisions)
	}
}

func TestCompiledEstimateRejectsNonPositiveSamples(t *testing.T) {
	tab := NewTable()
	tab.MustSet("w1", 0.8)
	for _, d := range []DNF{nil, {nil}, {MustParseCondition("w1")}} {
		c, err := tab.CompileDNF(d)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Estimate(0, rand.New(rand.NewSource(1))); !math.IsNaN(got) {
			t.Errorf("Estimate(%v, 0 samples) = %v, want NaN", d, got)
		}
	}
}

func TestCompiledEstimateMatchesProb(t *testing.T) {
	tab := NewTable()
	r := rand.New(rand.NewSource(3))
	tab.MustSet("w1", 0.8).MustSet("w2", 0.7).MustSet("w3", 0.4)
	d := DNF{MustParseCondition("w1 !w2"), MustParseCondition("w2 w3"), MustParseCondition("!w1 !w3")}
	c, err := tab.CompileDNF(d)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Prob()
	got := c.Estimate(200000, r)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Estimate = %v, Prob = %v", got, want)
	}
}

// TestProbDNFAdversarialShapes stresses the incremental cofactoring and
// absorption against the brute-force oracle on dense overlapping DNFs,
// where the old string-keyed engine spent most of its time.
func TestProbDNFAdversarialShapes(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		tab := randomEventTable(r, 2+r.Intn(9)) // up to 10 events
		d := randomDNF(r, tab, 8, 5)
		exact, err := tab.ProbDNF(d)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := tab.ProbDNFBrute(d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-brute) > 1e-12 {
			t.Errorf("seed %d: ProbDNF = %v, brute = %v (dnf %v)", seed, exact, brute, d)
		}
	}
}

// TestTableCloneCompactsInterner guards against unbounded interner
// growth: Delete leaves a tombstone (indexes must stay stable for
// concurrent compiles), but Clone must reclaim it — warehouse clones a
// table per update, and updates mint fresh events that simplification
// later deletes.
func TestTableCloneCompactsInterner(t *testing.T) {
	tab := NewTable()
	tab.MustSet("keep", 0.5)
	for i := 0; i < 100; i++ {
		id, _ := tab.Fresh("tmp", 0.5)
		tab.Delete(id)
	}
	if len(tab.rev) != 101 {
		t.Fatalf("original interner has %d entries, want 101 (with tombstones)", len(tab.rev))
	}
	c := tab.Clone()
	if len(c.rev) != 1 || len(c.idx) != 1 {
		t.Errorf("cloned interner has %d/%d entries, want 1/1", len(c.rev), len(c.idx))
	}
	p, err := c.ProbDNF(DNF{MustParseCondition("keep")})
	if err != nil || p != 0.5 {
		t.Errorf("clone ProbDNF = %v, %v; want 0.5", p, err)
	}
	// Fresh on the clone must not collide with the surviving event.
	if id, err := c.Fresh("tmp", 0.3); err != nil || !c.Has(id) {
		t.Errorf("Fresh on compacted clone: %v, %v", id, err)
	}
}

func TestTableCloneKeepsInterner(t *testing.T) {
	tab := NewTable()
	tab.MustSet("w1", 0.8).MustSet("w2", 0.7)
	c := tab.Clone()
	c.MustSet("w3", 0.5)
	if tab.Has("w3") {
		t.Error("clone mutation leaked into original")
	}
	// Both tables still answer the same probabilities.
	d := DNF{MustParseCondition("w1 w2")}
	p1, err1 := tab.ProbDNF(d)
	p2, err2 := c.ProbDNF(d)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if p1 != p2 {
		t.Errorf("clone ProbDNF = %v, original = %v", p2, p1)
	}
}
