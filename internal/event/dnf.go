package event

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// DNF is a disjunction of conjunctive conditions. Query answers on fuzzy
// trees are events of this form: an answer tree appears if any of the
// valuations producing it has its condition satisfied.
//
// The empty DNF is false; a DNF containing an empty (always-true) clause
// is true.
type DNF []Condition

// Or appends a clause and returns the extended DNF.
func (d DNF) Or(c Condition) DNF { return append(d, c) }

// Clone returns a deep copy of d.
func (d DNF) Clone() DNF {
	if d == nil {
		return nil
	}
	out := make(DNF, len(d))
	for i, c := range d {
		out[i] = c.Clone()
	}
	return out
}

// Normalize returns the canonical form of d: clauses normalized,
// unsatisfiable clauses dropped, duplicate clauses removed, clauses
// sorted. Absorption (dropping clauses entailed by another clause) is
// also applied, since it preserves the disjunction.
func (d DNF) Normalize() DNF {
	var clauses []Condition
	for _, c := range d {
		n := c.Normalize()
		if !n.Satisfiable() {
			continue
		}
		clauses = append(clauses, n)
	}
	// Absorption: a clause that contains all literals of another clause
	// is redundant. Sort by length so shorter (weaker) clauses come
	// first, then filter.
	sort.Slice(clauses, func(i, j int) bool {
		if len(clauses[i]) != len(clauses[j]) {
			return len(clauses[i]) < len(clauses[j])
		}
		return clauses[i].String() < clauses[j].String()
	})
	var kept []Condition
	for _, c := range clauses {
		absorbed := false
		for _, k := range kept {
			if c.Entails(k) { // c ⊨ k means c ∨ k ≡ k
				absorbed = true
				break
			}
		}
		if !absorbed {
			kept = append(kept, c)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].String() < kept[j].String() })
	if len(kept) == 0 {
		return nil
	}
	return DNF(kept)
}

// IsTrue reports whether the normalized DNF is the constant true (has an
// always-true clause).
func (d DNF) IsTrue() bool {
	for _, c := range d {
		if len(c.Normalize()) == 0 && c.Satisfiable() {
			return true
		}
	}
	return false
}

// Eval returns the truth value of the disjunction under the assignment.
func (d DNF) Eval(a Assignment) bool {
	for _, c := range d {
		if c.Eval(a) {
			return true
		}
	}
	return false
}

// Events returns the sorted distinct events mentioned by d.
func (d DNF) Events() []ID {
	set := make(map[ID]struct{})
	for _, c := range d {
		for _, l := range c {
			set[l.Event] = struct{}{}
		}
	}
	out := make([]ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the DNF as clauses joined by " | "; the false DNF renders
// as "false" and a true clause renders as "true".
func (d DNF) String() string {
	if len(d) == 0 {
		return "false"
	}
	parts := make([]string, len(d))
	for i, c := range d {
		if len(c) == 0 {
			parts[i] = "true"
		} else {
			parts[i] = c.String()
		}
	}
	return strings.Join(parts, " | ")
}

// key returns a canonical memoization key. d must already be normalized.
func (d DNF) key() string {
	parts := make([]string, len(d))
	for i, c := range d {
		parts[i] = c.String()
	}
	return strings.Join(parts, "|")
}

// ProbDNF computes the exact probability P(c₁ ∨ … ∨ c_k) under the
// independence assumptions of the table, by memoized Shannon expansion:
// the DNF is conditioned on its most frequent event and the two cofactors
// are solved recursively. Worst-case exponential in the number of events
// (the problem is #P-hard), but fast on the overlapping condition sets
// produced by query evaluation.
func (t *Table) ProbDNF(d DNF) (float64, error) {
	n := d.Normalize()
	for _, e := range n.Events() {
		if !t.Has(e) {
			return 0, fmt.Errorf("event: unknown event %q in DNF %q", e, d)
		}
	}
	memo := make(map[string]float64)
	return t.probDNF(n, memo), nil
}

func (t *Table) probDNF(d DNF, memo map[string]float64) float64 {
	if len(d) == 0 {
		return 0
	}
	for _, c := range d {
		if len(c) == 0 {
			return 1
		}
	}
	key := d.key()
	if p, ok := memo[key]; ok {
		return p
	}
	e := mostFrequentEvent(d)
	pe := t.probs[e]
	pTrue := t.probDNF(cofactor(d, e, true), memo)
	pFalse := t.probDNF(cofactor(d, e, false), memo)
	p := pe*pTrue + (1-pe)*pFalse
	memo[key] = p
	return p
}

// mostFrequentEvent returns the event occurring in the largest number of
// clauses, breaking ties by name for determinism.
func mostFrequentEvent(d DNF) ID {
	count := make(map[ID]int)
	for _, c := range d {
		for _, l := range c {
			count[l.Event]++
		}
	}
	var best ID
	bestN := -1
	for id, n := range count {
		if n > bestN || (n == bestN && id < best) {
			best, bestN = id, n
		}
	}
	return best
}

// cofactor substitutes the truth value v for event e in d and returns the
// normalized residual DNF. Clauses contradicted by the substitution are
// dropped; satisfied literals are removed; a clause that becomes empty
// makes the whole cofactor true, represented by the single empty clause.
func cofactor(d DNF, e ID, v bool) DNF {
	var out DNF
	for _, c := range d {
		var residual Condition
		contradicted := false
		for _, l := range c {
			if l.Event != e {
				residual = append(residual, l)
				continue
			}
			if l.Neg == v { // literal is false under substitution
				contradicted = true
				break
			}
		}
		if contradicted {
			continue
		}
		if len(residual) == 0 {
			return DNF{Condition{}} // true
		}
		out = append(out, residual)
	}
	return out.Normalize()
}

// ProbDNFBrute computes P(d) by enumerating all assignments over the
// events of d. Exponential; used as a testing oracle for ProbDNF.
func (t *Table) ProbDNFBrute(d DNF) (float64, error) {
	total := 0.0
	err := t.ForEachAssignment(d.Events(), func(a Assignment, p float64) bool {
		if d.Eval(a) {
			total += p
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// EstimateDNF estimates P(d) by Monte Carlo sampling of assignments. It
// is the scalable alternative when exact Shannon expansion becomes
// expensive; the standard error decreases as 1/sqrt(samples).
func (t *Table) EstimateDNF(d DNF, samples int, r *rand.Rand) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("event: non-positive sample count %d", samples)
	}
	events := d.Events()
	for _, e := range events {
		if !t.Has(e) {
			return 0, fmt.Errorf("event: unknown event %q in DNF %q", e, d)
		}
	}
	hits := 0
	for i := 0; i < samples; i++ {
		if d.Eval(t.SampleAssignment(events, r)) {
			hits++
		}
	}
	return float64(hits) / float64(samples), nil
}
