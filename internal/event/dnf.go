package event

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// DNF is a disjunction of conjunctive conditions. Query answers on fuzzy
// trees are events of this form: an answer tree appears if any of the
// valuations producing it has its condition satisfied.
//
// The empty DNF is false; a DNF containing an empty (always-true) clause
// is true.
type DNF []Condition

// Or returns the DNF extended by one clause. The receiver is never
// modified and the result never shares a backing array with it, so two
// DNFs branched from the same prefix cannot overwrite each other (the
// aliasing hazard of a bare append).
func (d DNF) Or(c Condition) DNF {
	out := make(DNF, len(d), len(d)+1)
	copy(out, d)
	return append(out, c)
}

// Clone returns a deep copy of d.
func (d DNF) Clone() DNF {
	if d == nil {
		return nil
	}
	out := make(DNF, len(d))
	for i, c := range d {
		out[i] = c.Clone()
	}
	return out
}

// Normalize returns the canonical form of d: clauses normalized,
// unsatisfiable clauses dropped, duplicate clauses removed, clauses
// sorted. Absorption (dropping clauses entailed by another clause) is
// also applied, since it preserves the disjunction.
func (d DNF) Normalize() DNF {
	var clauses []Condition
	for _, c := range d {
		n := c.Normalize()
		if !n.Satisfiable() {
			continue
		}
		clauses = append(clauses, n)
	}
	// Absorption: a clause that contains all literals of another clause
	// is redundant. Sort by length so shorter (weaker) clauses come
	// first, then filter.
	sort.Slice(clauses, func(i, j int) bool {
		if len(clauses[i]) != len(clauses[j]) {
			return len(clauses[i]) < len(clauses[j])
		}
		return clauses[i].String() < clauses[j].String()
	})
	var kept []Condition
	for _, c := range clauses {
		absorbed := false
		for _, k := range kept {
			if c.Entails(k) { // c ⊨ k means c ∨ k ≡ k
				absorbed = true
				break
			}
		}
		if !absorbed {
			kept = append(kept, c)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].String() < kept[j].String() })
	if len(kept) == 0 {
		return nil
	}
	return DNF(kept)
}

// IsTrue reports whether the normalized DNF is the constant true (has an
// always-true clause).
func (d DNF) IsTrue() bool {
	for _, c := range d {
		if len(c.Normalize()) == 0 && c.Satisfiable() {
			return true
		}
	}
	return false
}

// Eval returns the truth value of the disjunction under the assignment.
func (d DNF) Eval(a Assignment) bool {
	for _, c := range d {
		if c.Eval(a) {
			return true
		}
	}
	return false
}

// Events returns the sorted distinct events mentioned by d.
func (d DNF) Events() []ID {
	set := make(map[ID]struct{})
	for _, c := range d {
		for _, l := range c {
			set[l.Event] = struct{}{}
		}
	}
	out := make([]ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the DNF as clauses joined by " | "; the false DNF renders
// as "false" and a true clause renders as "true".
func (d DNF) String() string {
	if len(d) == 0 {
		return "false"
	}
	parts := make([]string, len(d))
	for i, c := range d {
		if len(c) == 0 {
			parts[i] = "true"
		} else {
			parts[i] = c.String()
		}
	}
	return strings.Join(parts, " | ")
}

// ProbDNF computes the exact probability P(c₁ ∨ … ∨ c_k) under the
// independence assumptions of the table. The DNF is compiled to an
// interned integer-literal form (CompileDNF) and evaluated by memoized
// Shannon expansion with independent-component decomposition: clauses
// sharing no event are split into components whose probabilities
// combine as 1-∏(1-pᵢ), and each component is conditioned on its most
// frequent event with both cofactors solved recursively. Worst-case
// exponential in the number of events (the problem is #P-hard), but
// fast on the overlapping condition sets produced by query evaluation.
func (t *Table) ProbDNF(d DNF) (float64, error) {
	c, err := t.CompileDNF(d)
	if err != nil {
		return 0, err
	}
	return c.Prob(), nil
}

// ProbDNFCtx is ProbDNF honoring context cancellation: the Shannon
// expansion checks ctx periodically and aborts with the context's error
// (compilation itself is linear and runs to completion). When the
// context carries an obs cost accumulator, compile and expansion work
// is charged to it.
func (t *Table) ProbDNFCtx(ctx context.Context, d DNF) (float64, error) {
	c, err := t.CompileDNFCtx(ctx, d)
	if err != nil {
		return 0, err
	}
	return c.ProbCtx(ctx)
}

// ProbDNFBrute computes P(d) by enumerating all assignments over the
// events of d. Exponential; used as a testing oracle for ProbDNF.
func (t *Table) ProbDNFBrute(d DNF) (float64, error) {
	return t.ProbDNFBruteCtx(context.Background(), d)
}

// ProbDNFBruteCtx is ProbDNFBrute honoring context cancellation: the
// assignment enumeration polls ctx every cancelCheckInterval
// assignments — the same cadence as the compiled engine — so the
// brute-force differential path can be stopped mid-flight too.
func (t *Table) ProbDNFBruteCtx(ctx context.Context, d DNF) (float64, error) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	total := 0.0
	var steps int
	var cerr error
	err := t.ForEachAssignment(d.Events(), func(a Assignment, p float64) bool {
		if ctx != nil {
			if steps++; steps&(cancelCheckInterval-1) == 0 {
				if cerr = ctx.Err(); cerr != nil {
					return false
				}
			}
		}
		if d.Eval(a) {
			total += p
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if cerr != nil {
		engineCancellations.Inc()
		return math.NaN(), cerr
	}
	return total, nil
}

// EstimateDNF estimates P(d) by Monte Carlo sampling. It is the
// scalable alternative when exact Shannon expansion becomes expensive;
// the standard error decreases as 1/sqrt(samples). Sampling runs on the
// same compiled form as the exact engine: on the ≤64-event fast path a
// sampled world is one uint64 and each clause check is two word
// operations.
func (t *Table) EstimateDNF(d DNF, samples int, r *rand.Rand) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("event: non-positive sample count %d", samples)
	}
	for _, e := range d.Events() {
		if !t.Has(e) {
			return 0, fmt.Errorf("event: unknown event %q in DNF %q", e, d)
		}
	}
	c, err := t.CompileDNF(d)
	if err != nil {
		return 0, err
	}
	return c.Estimate(samples, r), nil
}

// EstimateDNFCtx is EstimateDNF honoring context cancellation between
// sample batches.
func (t *Table) EstimateDNFCtx(ctx context.Context, d DNF, samples int, r *rand.Rand) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("event: non-positive sample count %d", samples)
	}
	for _, e := range d.Events() {
		if !t.Has(e) {
			return 0, fmt.Errorf("event: unknown event %q in DNF %q", e, d)
		}
	}
	c, err := t.CompileDNFCtx(ctx, d)
	if err != nil {
		return 0, err
	}
	return c.EstimateCtx(ctx, samples, r)
}
