package event

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// hardDNF builds a chained 3-DNF over n events: every clause shares
// events with its neighbors, so the whole formula is one connected
// component, and the literal signs vary so no clause absorbs another.
// For n around 64 the exact Shannon expansion does not finish in any
// reasonable time — which is the point: a cancelled evaluation is
// provably stopped mid-flight, not caught at the finish line.
func hardDNF(t testing.TB, n int) (*Table, DNF) {
	t.Helper()
	tab := NewTable()
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = ID(fmt.Sprintf("w%02d", i))
		if err := tab.Set(ids[i], 0.3+0.05*float64(i%8)); err != nil {
			t.Fatal(err)
		}
	}
	lit := func(id ID, neg bool) Literal {
		if neg {
			return Neg(id)
		}
		return Pos(id)
	}
	var d DNF
	for i := 0; i < 2*n; i++ {
		d = d.Or(Cond(
			lit(ids[i%n], i%3 == 0),
			lit(ids[(i+7)%n], i%5 == 0),
			lit(ids[(i+13)%n], i%2 == 0),
		))
	}
	return tab, d
}

// cancelMidFlight runs eval in a goroutine, cancels it once it is
// demonstrably still running, and returns how long it took to stop
// after the cancel.
func cancelMidFlight(t *testing.T, eval func(ctx context.Context) error) time.Duration {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eval(ctx) }()
	select {
	case err := <-done:
		t.Fatalf("evaluation finished before it could be cancelled (err=%v); make the input harder", err)
	case <-time.After(50 * time.Millisecond):
	}
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled evaluation returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evaluation did not return after cancel")
	}
	return time.Since(start)
}

// TestProbDNFCtxCancelsMidFlight: cancelling a pathological exact
// evaluation aborts the Shannon expansion within the ~100ms budget of
// ISSUE satellite (c) and bumps the engine cancellation counter.
func TestProbDNFCtxCancelsMidFlight(t *testing.T) {
	tab, d := hardDNF(t, 64)
	before := ReadEngineCounters().Cancellations
	lag := cancelMidFlight(t, func(ctx context.Context) error {
		p, err := tab.ProbDNFCtx(ctx, d)
		if err != nil && !math.IsNaN(p) {
			t.Errorf("aborted evaluation returned p=%v, want NaN", p)
		}
		return err
	})
	if lag > 100*time.Millisecond {
		t.Errorf("exact evaluation took %v to stop after cancel, want <100ms", lag)
	}
	if got := ReadEngineCounters().Cancellations; got <= before {
		t.Errorf("engine cancellations = %d, want > %d", got, before)
	}
}

// TestEstimateDNFCtxCancelsMidFlight: same contract for the
// Monte-Carlo sampler, which checks the context between sample
// batches.
func TestEstimateDNFCtxCancelsMidFlight(t *testing.T) {
	tab, d := hardDNF(t, 64)
	before := ReadEngineCounters().Cancellations
	lag := cancelMidFlight(t, func(ctx context.Context) error {
		p, err := tab.EstimateDNFCtx(ctx, d, 500_000_000, rand.New(rand.NewSource(1)))
		if err != nil && !math.IsNaN(p) {
			t.Errorf("aborted estimation returned p=%v, want NaN", p)
		}
		return err
	})
	if lag > 100*time.Millisecond {
		t.Errorf("MC estimation took %v to stop after cancel, want <100ms", lag)
	}
	if got := ReadEngineCounters().Cancellations; got <= before {
		t.Errorf("engine cancellations = %d, want > %d", got, before)
	}
}

// TestProbFormulaCtxCancelsMidFlight covers the general-formula
// entry point (used by views and keyword search) through the same
// panic/recover abort path.
func TestProbFormulaCtxCancelsMidFlight(t *testing.T) {
	tab, d := hardDNF(t, 64)
	f := FFalse
	for _, c := range d {
		clause := FTrue
		for _, l := range c {
			clause = FAnd(clause, FLit(l))
		}
		f = FOr(f, clause)
	}
	lag := cancelMidFlight(t, func(ctx context.Context) error {
		_, err := tab.ProbFormulaCtx(ctx, f)
		return err
	})
	// The formula engine memoizes on f.String(), so each of the 1024
	// steps between context polls is far costlier than a DNF expansion
	// node (more so under -race); allow a looser stop budget here.
	if lag > time.Second {
		t.Errorf("formula evaluation took %v to stop after cancel, want <1s", lag)
	}
}

// TestCtxPathsMatchPlainResults pins the fast path: a context that can
// never fire (Background) must take the check-free route and produce
// bit-identical results to the context-free API.
func TestCtxPathsMatchPlainResults(t *testing.T) {
	tab := NewTable()
	for i := 0; i < 6; i++ {
		if err := tab.Set(ID(fmt.Sprintf("e%d", i)), 0.1*float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	d := DNF{
		Cond(Pos("e0"), Neg("e1")),
		Cond(Pos("e1"), Pos("e2"), Neg("e3")),
		Cond(Neg("e4"), Pos("e5")),
	}
	want, err := tab.ProbDNF(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tab.ProbDNFCtx(context.Background(), d)
	if err != nil || got != want {
		t.Errorf("ProbDNFCtx(Background) = %v, %v; want %v, nil", got, err, want)
	}
	wantMC, err := tab.EstimateDNF(d, 10_000, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	gotMC, err := tab.EstimateDNFCtx(context.Background(), d, 10_000, rand.New(rand.NewSource(7)))
	if err != nil || gotMC != wantMC {
		t.Errorf("EstimateDNFCtx(Background) = %v, %v; want %v, nil", gotMC, err, wantMC)
	}

	// An already-cancelled context aborts before any work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tab.ProbDNFCtx(ctx, d); !errors.Is(err, context.Canceled) {
		t.Errorf("ProbDNFCtx(cancelled) = %v, want context.Canceled", err)
	}
	if _, err := tab.EstimateDNFCtx(ctx, d, 10_000, rand.New(rand.NewSource(7))); !errors.Is(err, context.Canceled) {
		t.Errorf("EstimateDNFCtx(cancelled) = %v, want context.Canceled", err)
	}
}
