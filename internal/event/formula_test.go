package event

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFormulaConstants(t *testing.T) {
	if !FTrue.Eval(Assignment{}) || FFalse.Eval(Assignment{}) {
		t.Error("constant evaluation wrong")
	}
	if FNot(FTrue) != FFalse || FNot(FFalse) != FTrue {
		t.Error("constant negation wrong")
	}
	if FAnd() != FTrue || FOr() != FFalse {
		t.Error("empty connectives wrong")
	}
	if FAnd(FTrue, FFalse) != FFalse || FOr(FFalse, FTrue) != FTrue {
		t.Error("constant folding wrong")
	}
}

func TestFormulaSimplification(t *testing.T) {
	l := FLit(Pos("w"))
	if FAnd(l) != l || FOr(l) != l {
		t.Error("single-operand connectives should collapse")
	}
	if FNot(FNot(l)) != l {
		t.Error("double negation should collapse")
	}
	if FAnd(FTrue, l, FTrue) != l {
		t.Error("true operands should vanish from conjunctions")
	}
	if FOr(FFalse, l) != l {
		t.Error("false operands should vanish from disjunctions")
	}
}

func TestFormulaEval(t *testing.T) {
	// (w1 ∧ ¬w2) ∨ ¬w1
	f := FOr(FAnd(FLit(Pos("w1")), FLit(Neg("w2"))), FLit(Neg("w1")))
	cases := []struct {
		a    Assignment
		want bool
	}{
		{Assignment{"w1": true, "w2": false}, true},
		{Assignment{"w1": true, "w2": true}, false},
		{Assignment{"w1": false, "w2": true}, true},
	}
	for i, tc := range cases {
		if got := f.Eval(tc.a); got != tc.want {
			t.Errorf("case %d: Eval = %v", i, got)
		}
	}
}

func TestFormulaRestrict(t *testing.T) {
	f := FAnd(FLit(Pos("w1")), FLit(Neg("w2")))
	if got := f.Restrict("w1", true); got.String() != "!w2" {
		t.Errorf("Restrict(w1,true) = %s", got)
	}
	if got := f.Restrict("w1", false); got != FFalse {
		t.Errorf("Restrict(w1,false) = %s", got)
	}
	g := FNot(FLit(Pos("w1")))
	if got := g.Restrict("w1", true); got != FFalse {
		t.Errorf("¬w1 restricted w1=true: %s", got)
	}
}

func TestFormulaEvents(t *testing.T) {
	f := FOr(FAnd(FLit(Pos("b")), FLit(Neg("a"))), FNot(FLit(Pos("c"))))
	ev := f.Events()
	if len(ev) != 3 || ev[0] != "a" || ev[1] != "b" || ev[2] != "c" {
		t.Errorf("Events = %v", ev)
	}
}

func TestFCondFDNF(t *testing.T) {
	c := MustParseCondition("w1 !w2")
	f := FCond(c)
	if !f.Eval(Assignment{"w1": true}) {
		t.Error("FCond eval wrong")
	}
	d := DNF{MustParseCondition("w1"), MustParseCondition("w2")}
	g := FDNF(d)
	if !g.Eval(Assignment{"w2": true}) || g.Eval(Assignment{}) {
		t.Error("FDNF eval wrong")
	}
	if FCond(nil) != FTrue {
		t.Error("empty condition should lift to true")
	}
	if FDNF(nil) != FFalse {
		t.Error("empty DNF should lift to false")
	}
}

func TestProbFormulaGolden(t *testing.T) {
	tab := slideTable() // w1=0.8 w2=0.7
	cases := []struct {
		f    Formula
		want float64
	}{
		{FTrue, 1},
		{FFalse, 0},
		{FLit(Pos("w1")), 0.8},
		{FNot(FLit(Pos("w1"))), 0.2},
		{FAnd(FLit(Pos("w1")), FLit(Pos("w2"))), 0.56},
		{FOr(FLit(Pos("w1")), FLit(Pos("w2"))), 0.94},
		// P(w1 ∧ ¬w2-clause-holds): beyond DNF shapes:
		{FAnd(FLit(Pos("w1")), FNot(FAnd(FLit(Pos("w2")), FLit(Pos("w1"))))), 0.8 * 0.3},
	}
	for i, tc := range cases {
		got, err := tab.ProbFormula(tc.f)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("case %d: ProbFormula(%s) = %v, want %v", i, tc.f, got, tc.want)
		}
	}
}

func TestProbFormulaUnknownEvent(t *testing.T) {
	tab := slideTable()
	if _, err := tab.ProbFormula(FLit(Pos("zz"))); err == nil {
		t.Error("unknown event accepted")
	}
}

// randomFormula builds a random formula over the table's events.
func randomFormula(r *rand.Rand, ids []ID, depth int) Formula {
	if depth <= 0 || r.Intn(3) == 0 {
		return FLit(Literal{Event: ids[r.Intn(len(ids))], Neg: r.Intn(2) == 0})
	}
	switch r.Intn(3) {
	case 0:
		return FAnd(randomFormula(r, ids, depth-1), randomFormula(r, ids, depth-1))
	case 1:
		return FOr(randomFormula(r, ids, depth-1), randomFormula(r, ids, depth-1))
	default:
		return FNot(randomFormula(r, ids, depth-1))
	}
}

func TestProbFormulaMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := randomEventTable(r, 2+r.Intn(4))
		ids := tab.Events()
		formula := randomFormula(r, ids, 4)
		exact, err := tab.ProbFormula(formula)
		if err != nil {
			t.Log(err)
			return false
		}
		brute, err := tab.ProbFormulaBrute(formula)
		if err != nil {
			t.Log(err)
			return false
		}
		if math.Abs(exact-brute) > 1e-9 {
			t.Logf("seed %d: formula %s: shannon=%v brute=%v", seed, formula, exact, brute)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProbFormulaAgreesWithProbDNF(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := randomEventTable(r, 2+r.Intn(4))
		d := randomDNF(r, tab, 4, 3)
		p1, err1 := tab.ProbDNF(d)
		p2, err2 := tab.ProbFormula(FDNF(d))
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(p1-p2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFormulaString(t *testing.T) {
	f := FAnd(FLit(Pos("w1")), FNot(FLit(Neg("w2"))))
	s := f.String()
	if s == "" {
		t.Error("empty string form")
	}
	// Strings are memo keys: distinct formulas must render distinctly.
	g := FAnd(FLit(Pos("w1")), FLit(Neg("w2")))
	if f.String() == g.String() {
		t.Error("distinct formulas share a string form")
	}
}
