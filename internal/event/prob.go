package event

import (
	"context"
	"math"
	"math/rand"
	"slices"

	"repro/internal/obs"
)

// cancelCheckInterval is how many Shannon-expansion nodes (or
// Monte-Carlo samples) are processed between context checks: a power
// of two so the check is a mask test, frequent enough that abandoning
// a pathological DNF takes microseconds, rare enough that the check is
// unmeasurable on ordinary evaluations (see the fault/overhead bench
// probe).
const cancelCheckInterval = 1024

// evalCanceled carries a context error out of the recursion by panic:
// threading an error return through the hot prob recursion would tax
// every call for the rare cancelled one. It never escapes the package
// — ProbCtx recovers it.
type evalCanceled struct{ err error }

// This file is the evaluation back end of the exact probability engine:
// memoized Shannon expansion over the compiled clause form, with
// independent-component decomposition and arena-based scratch memory so
// the hot recursion allocates almost nothing.

// memoEntry stores the probability of one expanded sub-DNF together
// with its flattened canonical key: the structural uint64 hash indexes
// the memo, the key guards against (astronomically rare) collisions —
// on mismatch the engine simply recomputes.
type memoEntry struct {
	key []int32
	p   float64
}

// engine carries the per-call state of one exact evaluation. Scratch
// buffers are sized by the compiled DNF's local universe and reused
// across the whole recursion; counter deltas are flushed to the global
// atomics once per Prob call.
type engine struct {
	c    *Compiled
	memo map[uint64]memoEntry

	// ctx, when non-nil, is polled every cancelCheckInterval expansion
	// nodes; a cancellation aborts the recursion via evalCanceled. nil
	// (context-free Prob, or a context that can never be cancelled)
	// costs nothing on the hot path beyond one pointer test.
	ctx context.Context

	// cost, when non-nil, receives the per-request charges flushed
	// alongside the global counters (see probCtx's defer).
	cost *obs.Cost

	cnt   []int32 // per-slot literal counts (most-frequent-event scratch)
	owner []int32 // per-slot first-clause index (component scratch)

	intArena []int32   // backing store for shrunk clauses and memo keys
	clArena  []cclause // backing store for cofactor clause lists

	// nodes counts expansion nodes visited; it doubles as the
	// cancellation-poll tick.
	nodes                                int64
	hits, misses, components, collisions int64
}

// Prob computes the exact probability of the compiled DNF.
func (c *Compiled) Prob() float64 {
	p, _ := c.probCtx(nil, nil)
	return p
}

// ProbCtx is Prob with cooperative cancellation: the Shannon expansion
// polls ctx every cancelCheckInterval nodes and aborts with ctx's
// error when it fires, so a request deadline or a disconnected client
// stops a pathological DNF mid-flight instead of pinning a core.
func (c *Compiled) ProbCtx(ctx context.Context) (float64, error) {
	// The cost accumulator must come off the context before the
	// fast-path nil-ing below: an uncancellable context (Done() == nil)
	// skips the per-node polls, but its request still pays for — and is
	// charged for — every expansion node.
	cost := obs.CostFromContext(ctx)
	if ctx == nil || ctx.Done() == nil {
		// The context can never fire (Background and friends): evaluate
		// on the check-free path.
		ctx = nil
	}
	return c.probCtx(ctx, cost)
}

func (c *Compiled) probCtx(ctx context.Context, cost *obs.Cost) (p float64, err error) {
	if ctx != nil {
		// Evaluations shorter than cancelCheckInterval never reach a
		// periodic poll, so an already-expired context must abort here.
		if err := ctx.Err(); err != nil {
			engineCancellations.Inc()
			return math.NaN(), err
		}
	}
	if c.isTrue {
		return 1, nil
	}
	if len(c.clauses) == 0 {
		return 0, nil
	}
	e := &engine{
		c:     c,
		ctx:   ctx,
		cost:  cost,
		memo:  make(map[uint64]memoEntry),
		cnt:   make([]int32, len(c.probs)),
		owner: make([]int32, len(c.probs)),
	}
	defer func() {
		// Counter deltas flush even on abort, so /stats stays truthful
		// about work done by cancelled evaluations. Charge feeds the
		// global counter and the request's cost accumulator from the
		// same delta (collisions stay process-global only: a hash
		// accident is not a property of the request's plan).
		obs.Charge(e.cost, obs.CostEngineMemoHits, engineMemoHits, e.hits)
		obs.Charge(e.cost, obs.CostEngineMemoMisses, engineMemoMisses, e.misses)
		obs.Charge(e.cost, obs.CostEngineComponents, engineComponents, e.components)
		obs.Charge(e.cost, obs.CostEngineExpansionNodes, engineExpansionNodes, e.nodes)
		engineHashCollisions.Add(e.collisions)
		if r := recover(); r != nil {
			ec, ok := r.(evalCanceled)
			if !ok {
				panic(r)
			}
			engineCancellations.Inc()
			p, err = math.NaN(), ec.err
		}
	}()
	return e.prob(c.clauses), nil
}

// allocInts hands out n int32s of arena memory. Blocks are never
// reused, so previously returned slices stay valid when a new block is
// started.
func (e *engine) allocInts(n int) []int32 {
	if n == 0 {
		return nil
	}
	if cap(e.intArena)-len(e.intArena) < n {
		e.intArena = make([]int32, 0, max(512, n))
	}
	s := e.intArena[len(e.intArena) : len(e.intArena)+n]
	e.intArena = e.intArena[:len(e.intArena)+n]
	return s
}

// allocClauses hands out capacity for n clauses (returned empty).
func (e *engine) allocClauses(n int) []cclause {
	if cap(e.clArena)-len(e.clArena) < n {
		e.clArena = make([]cclause, 0, max(64, n))
	}
	s := e.clArena[len(e.clArena) : len(e.clArena) : len(e.clArena)+n]
	e.clArena = e.clArena[:len(e.clArena)+n]
	return s
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	clauseSep = 0x9e3779b9 // golden-ratio separator mixed between clauses
)

// hashClauses computes the structural FNV-1a hash of a canonical clause
// list.
func hashClauses(cls []cclause) uint64 {
	h := uint64(fnvOffset)
	for _, c := range cls {
		for _, l := range c.lits {
			h ^= uint64(uint32(l))
			h *= fnvPrime
		}
		h ^= clauseSep
		h *= fnvPrime
	}
	return h
}

// flatten serializes a clause list into arena memory as a memo key:
// literals with a -1 separator after each clause.
func (e *engine) flatten(cls []cclause) []int32 {
	n := 0
	for _, c := range cls {
		n += len(c.lits) + 1
	}
	key := e.allocInts(n)
	i := 0
	for _, c := range cls {
		i += copy(key[i:], c.lits)
		key[i] = -1
		i++
	}
	return key
}

// keyMatches reports whether the flattened key equals the clause list.
func keyMatches(key []int32, cls []cclause) bool {
	i := 0
	for _, c := range cls {
		for _, l := range c.lits {
			if i >= len(key) || key[i] != l {
				return false
			}
			i++
		}
		if i >= len(key) || key[i] != -1 {
			return false
		}
		i++
	}
	return i == len(key)
}

// clauseProb returns the probability of a single conjunctive clause:
// the product of its literal probabilities (1 for the empty clause).
func (e *engine) clauseProb(c cclause) float64 {
	p := 1.0
	for _, l := range c.lits {
		pe := e.c.probs[l>>1]
		if l&1 == 1 {
			p *= 1 - pe
		} else {
			p *= pe
		}
	}
	return p
}

// prob computes P(∨ cls) for a canonical clause list by memoized
// Shannon expansion with component decomposition.
func (e *engine) prob(cls []cclause) float64 {
	e.nodes++
	if e.ctx != nil && e.nodes&(cancelCheckInterval-1) == 0 {
		if err := e.ctx.Err(); err != nil {
			panic(evalCanceled{err})
		}
	}
	switch len(cls) {
	case 0:
		return 0
	case 1:
		return e.clauseProb(cls[0])
	}
	h := hashClauses(cls)
	if m, ok := e.memo[h]; ok {
		if keyMatches(m.key, cls) {
			e.hits++
			return m.p
		}
		e.collisions++
	}
	var p float64
	if comps := e.split(cls); comps != nil {
		// Independent components: clauses in different components share
		// no event, so the disjunctions are independent and
		// P(∨) = 1 - ∏(1 - P(component)).
		e.components += int64(len(comps))
		q := 1.0
		for _, g := range comps {
			q *= 1 - e.prob(g)
		}
		p = 1 - q
	} else {
		slot := e.mostFrequent(cls)
		pe := e.c.probs[slot]
		var pT, pF float64
		if cof, isTrue := e.cofactor(cls, slot, true); isTrue {
			pT = 1
		} else {
			pT = e.prob(cof)
		}
		if cof, isTrue := e.cofactor(cls, slot, false); isTrue {
			pF = 1
		} else {
			pF = e.prob(cof)
		}
		p = pe*pT + (1-pe)*pF
	}
	e.memo[h] = memoEntry{key: e.flatten(cls), p: p}
	e.misses++
	return p
}

// split partitions the clauses into connected components (clauses
// linked by shared events). It returns nil when there is a single
// component. Component order follows first-clause order, keeping the
// evaluation deterministic.
func (e *engine) split(cls []cclause) [][]cclause {
	owner := e.owner
	for i := range owner {
		owner[i] = -1
	}
	// Union-find over clause indices, allocated from the int arena.
	parent := e.allocInts(len(cls))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	roots := len(cls)
	for i, c := range cls {
		for _, l := range c.lits {
			s := l >> 1
			if owner[s] < 0 {
				owner[s] = int32(i)
				continue
			}
			a, b := find(int32(i)), find(owner[s])
			if a != b {
				parent[a] = b
				roots--
			}
		}
	}
	if roots <= 1 {
		return nil
	}
	// Group clauses by root, preserving clause order within and across
	// groups (group id = order of first appearance).
	groupOf := e.allocInts(len(cls))
	sizes := e.allocInts(roots)
	for i := range sizes {
		sizes[i] = 0
	}
	rootG := e.allocInts(len(cls))
	for i := range rootG {
		rootG[i] = -1
	}
	next := int32(0)
	for i := range cls {
		r := find(int32(i))
		if rootG[r] < 0 {
			rootG[r] = next
			next++
		}
		groupOf[i] = rootG[r]
		sizes[rootG[r]]++
	}
	block := e.allocClauses(len(cls))[:len(cls)]
	groups := make([][]cclause, roots)
	off := 0
	for g := 0; g < roots; g++ {
		groups[g] = block[off : off : off+int(sizes[g])]
		off += int(sizes[g])
	}
	for i, c := range cls {
		g := groupOf[i]
		groups[g] = append(groups[g], c)
	}
	return groups
}

// mostFrequent returns the local slot occurring in the largest number
// of clauses, breaking ties toward the smallest slot (the event
// interned first) for determinism.
func (e *engine) mostFrequent(cls []cclause) int32 {
	cnt := e.cnt
	for _, c := range cls {
		for _, l := range c.lits {
			cnt[l>>1]++
		}
	}
	best, bestN := int32(0), int32(-1)
	for s, n := range cnt {
		if n > bestN {
			best, bestN = int32(s), n
		}
	}
	for _, c := range cls {
		for _, l := range c.lits {
			cnt[l>>1] = 0
		}
	}
	return best
}

// cofactor substitutes truth value v for the event at slot and returns
// the residual clause list in canonical form, maintained incrementally:
// untouched clauses keep their order; shrunk clauses trigger one sort
// plus a bitset-subset absorption pass instead of a full Normalize. The
// second result is true when some clause became empty (the cofactor is
// constantly true).
func (e *engine) cofactor(cls []cclause, slot int32, v bool) ([]cclause, bool) {
	out := e.allocClauses(len(cls))
	posLit := slot << 1
	changed := false
	for _, c := range cls {
		i, found := slices.BinarySearch(c.lits, posLit)
		if !found {
			if i < len(c.lits) && c.lits[i] == posLit|1 {
				found = true
			}
		}
		if !found {
			out = append(out, c)
			continue
		}
		l := c.lits[i]
		if (l&1 == 0) != v {
			continue // literal false under the substitution: clause dropped
		}
		// Literal true: remove it from the clause.
		if len(c.lits) == 1 {
			return nil, true
		}
		nl := e.allocInts(len(c.lits) - 1)
		copy(nl, c.lits[:i])
		copy(nl[i:], c.lits[i+1:])
		nc := cclause{lits: nl}
		if e.c.small {
			bit := uint64(1) << uint(slot)
			nc.pos, nc.neg = c.pos&^bit, c.neg&^bit
		}
		out = append(out, nc)
		changed = true
	}
	if changed {
		slices.SortFunc(out, cmpClause)
		out = absorb(out, e.c.small)
	}
	return out, false
}

// Estimate estimates the probability of the compiled DNF by Monte-Carlo
// sampling. On the ≤64-event fast path each sampled world is a single
// uint64 and clause evaluation is two word operations. A non-positive
// sample count returns NaN (EstimateDNF reports it as an error).
func (c *Compiled) Estimate(samples int, r *rand.Rand) float64 {
	p, _ := c.estimateCtx(nil, nil, samples, r)
	return p
}

// EstimateCtx is Estimate with cooperative cancellation: the sampling
// loop polls ctx every cancelCheckInterval samples and returns its
// error (with a NaN estimate) when it fires.
func (c *Compiled) EstimateCtx(ctx context.Context, samples int, r *rand.Rand) (float64, error) {
	cost := obs.CostFromContext(ctx) // before the fast-path nil-ing, like ProbCtx
	if ctx == nil || ctx.Done() == nil {
		ctx = nil
	}
	return c.estimateCtx(ctx, cost, samples, r)
}

func (c *Compiled) estimateCtx(ctx context.Context, cost *obs.Cost, samples int, r *rand.Rand) (float64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			engineCancellations.Inc()
			return math.NaN(), err
		}
	}
	if samples <= 0 {
		return math.NaN(), nil
	}
	if c.isTrue {
		return 1, nil
	}
	if len(c.clauses) == 0 {
		return 0, nil
	}
	// done counts samples actually drawn, charged even when the loop is
	// cancelled mid-flight, so the accounting reflects work performed.
	done := 0
	defer func() { obs.Charge(cost, obs.CostEngineMCSamples, engineMCSamples, int64(done)) }()
	hits := 0
	if c.small {
		for i := 0; i < samples; i++ {
			if ctx != nil && i&(cancelCheckInterval-1) == cancelCheckInterval-1 {
				if err := ctx.Err(); err != nil {
					engineCancellations.Inc()
					return math.NaN(), err
				}
			}
			var w uint64
			for s, p := range c.probs {
				if r.Float64() < p {
					w |= 1 << uint(s)
				}
			}
			done++
			for _, cl := range c.clauses {
				if w&cl.pos == cl.pos && w&cl.neg == 0 {
					hits++
					break
				}
			}
		}
	} else {
		world := make([]bool, len(c.probs))
		for i := 0; i < samples; i++ {
			if ctx != nil && i&(cancelCheckInterval-1) == cancelCheckInterval-1 {
				if err := ctx.Err(); err != nil {
					engineCancellations.Inc()
					return math.NaN(), err
				}
			}
			for s, p := range c.probs {
				world[s] = r.Float64() < p
			}
			done++
			for _, cl := range c.clauses {
				sat := true
				for _, l := range cl.lits {
					if world[l>>1] == (l&1 == 1) {
						sat = false
						break
					}
				}
				if sat {
					hits++
					break
				}
			}
		}
	}
	return float64(hits) / float64(samples), nil
}
