package obs

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("px_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("px_test_total", "a counter"); again != c {
		t.Fatal("re-registration did not return the same handle")
	}
	g := r.Gauge("px_test_gauge", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax = %d, want 9", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("px_x_total", "")
	g := r.Gauge("px_x", "")
	h := r.Histogram("px_x_seconds", "")
	r.GaugeFunc("px_x_f", "", func() float64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.SetMax(2)
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil handles recorded values")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile nonzero")
	}
	var b strings.Builder
	if err := WriteText(&b, r); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry exposed metrics: %q", b.String())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 observations at 2ms: every quantile lands in the (1ms, 2.5ms]
	// bucket, interpolated within it.
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.AvgMS-2.0) > 1e-9 {
		t.Fatalf("avg = %v ms, want 2", s.AvgMS)
	}
	for _, q := range []float64{s.P50MS, s.P95MS, s.P99MS} {
		if q <= 1.0 || q > 2.5 {
			t.Fatalf("quantile %v ms outside owning bucket (1, 2.5]", q)
		}
	}
	// A bimodal load: p50 in the low mode, p99 in the high one.
	h2 := NewHistogram()
	for i := 0; i < 98; i++ {
		h2.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 2; i++ {
		h2.Observe(time.Second)
	}
	if p50 := h2.Quantile(0.50); p50 > 1e-3 {
		t.Fatalf("p50 = %v s, want microsecond-scale", p50)
	}
	if p99 := h2.Quantile(0.99); p99 < 0.5 {
		t.Fatalf("p99 = %v s, want second-scale", p99)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Hour) // beyond the last bound
	cum, _, total := h.bucketCumulative()
	if total != 1 {
		t.Fatalf("total = %d", total)
	}
	if cum[len(cum)-2] != 0 {
		t.Fatal("overflow observation counted in a finite bucket")
	}
	if got := h.Max(); got != time.Hour {
		t.Fatalf("max = %v, want 1h", got)
	}
	// A rank in the +Inf bucket interpolates between the last finite
	// bound and the observed max — not clamped at the bound, so tails
	// beyond the ladder are visible in p99.
	last := DefaultBuckets[len(DefaultBuckets)-1]
	maxS := time.Hour.Seconds()
	if q := h.Quantile(0.99); q <= last || q > maxS {
		t.Fatalf("overflow quantile = %v, want in (%v, %v]", q, last, maxS)
	}
	if q := h.Quantile(1.0); q != maxS {
		t.Fatalf("q=1 in overflow bucket = %v, want the observed max %v", q, maxS)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("px_req_total", "requests", L("route", `GET /docs/{name}`)).Add(3)
	r.Counter("px_req_total", "requests", L("route", `quote " and \ back`)).Add(1)
	r.Gauge("px_entries", "entries").Set(4)
	r.GaugeFunc("px_uptime_seconds", "uptime", func() float64 { return 1.5 })
	r.Histogram("px_lat_seconds", "latency", L("route", "q")).Observe(3 * time.Millisecond)

	var b strings.Builder
	if err := WriteText(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP px_req_total requests\n# TYPE px_req_total counter\n",
		`px_req_total{route="GET /docs/{name}"} 3`,
		`px_req_total{route="quote \" and \\ back"} 1`,
		"# TYPE px_entries gauge",
		"px_entries 4",
		"px_uptime_seconds 1.5",
		"# TYPE px_lat_seconds histogram",
		`px_lat_seconds_bucket{route="q",le="0.005"} 1`,
		`px_lat_seconds_bucket{route="q",le="+Inf"} 1`,
		`px_lat_seconds_sum{route="q"} 0.003`,
		`px_lat_seconds_count{route="q"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Bucket counts must be cumulative (monotone in le).
	if !strings.Contains(out, `px_lat_seconds_bucket{route="q",le="0.01"} 1`) {
		t.Errorf("cumulative bucket after the owning one should still read 1\n%s", out)
	}
}

func TestWriteTextMergesRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("px_a_total", "ha").Add(1)
	b.Counter("px_b_total", "hb").Add(2)
	b.Counter("px_a_total", "ignored help", L("src", "b")).Add(3)
	var out strings.Builder
	if err := WriteText(&out, a, b); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Count(s, "# TYPE px_a_total counter") != 1 {
		t.Fatalf("family px_a_total not merged:\n%s", s)
	}
	for _, want := range []string{"px_a_total 1", `px_a_total{src="b"} 3`, "px_b_total 2"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in\n%s", want, s)
		}
	}
}

// TestWriteTextSumsCollidingSamples: the same family with an identical
// label set in two merged registries must sum, not silently drop the
// later registry's sample.
func TestWriteTextSumsCollidingSamples(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("px_dup_total", "h", L("src", "x")).Add(2)
	b.Counter("px_dup_total", "h", L("src", "x")).Add(5)
	a.Histogram("px_dup_seconds", "h").Observe(2 * time.Millisecond)
	b.Histogram("px_dup_seconds", "h").Observe(3 * time.Millisecond)
	var out strings.Builder
	if err := WriteText(&out, a, b); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, `px_dup_total{src="x"} 7`) {
		t.Errorf("colliding counter not summed:\n%s", s)
	}
	if strings.Count(s, `px_dup_total{src="x"}`) != 1 {
		t.Errorf("colliding counter emitted more than once:\n%s", s)
	}
	for _, want := range []string{
		"px_dup_seconds_count 2",
		"px_dup_seconds_sum 0.005",
		`px_dup_seconds_bucket{le="+Inf"} 2`,
		`px_dup_seconds_bucket{le="0.0025"} 1`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("colliding histogram not summed, missing %q:\n%s", want, s)
		}
	}
}

// TestConcurrentRegistration registers new series (the lazy per-stage
// pattern the server uses) while WriteText scrapes the registry —
// under -race this pins that snapshots deep-copy the family tables
// instead of aliasing maps and slices the registry keeps mutating, and
// that handles are initialized under the registry lock.
func TestConcurrentRegistration(t *testing.T) {
	var wg sync.WaitGroup
	r := NewRegistry()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				name := fmt.Sprintf("s%d_%d", g, i)
				r.Counter("px_lazy_total", "", L("stage", name)).Inc()
				if i%100 == 0 {
					r.Histogram("px_lazy_seconds", "", L("stage", name)).Observe(time.Microsecond)
					r.GaugeFunc("px_lazy_gauge", "", func() float64 { return 1 }, L("stage", name))
				}
			}
		}(g)
	}
	// Give the writers a head start so the registry holds enough
	// series that each exposition pass takes long enough for fresh
	// registrations to land mid-scrape.
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < 20; i++ {
		var b strings.Builder
		if err := WriteText(&b, r); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

func TestTraceSpans(t *testing.T) {
	var ended []string
	tr, root := NewTrace("GET /x", func(name string, d time.Duration) {
		ended = append(ended, name)
		if d < 0 {
			t.Errorf("span %s negative duration", name)
		}
	})
	ctx := ContextWithSpan(context.Background(), root)
	ctx2, outer := StartSpan(ctx, "outer")
	_, inner := StartSpan(ctx2, "inner")
	inner.End()
	inner.End() // idempotent
	outer.End()
	root.End()

	snap := tr.Snapshot()
	if snap.Name != "GET /x" {
		t.Fatalf("root name %q", snap.Name)
	}
	o := snap.Find("outer")
	if o == nil {
		t.Fatal("outer span missing")
	}
	if o.Find("inner") == nil {
		t.Fatal("inner span not nested under outer")
	}
	if len(ended) != 2 || ended[0] != "inner" || ended[1] != "outer" {
		t.Fatalf("onEnd calls = %v, want [inner outer] (root excluded)", ended)
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "anything")
	if s != nil {
		t.Fatal("expected nil span on an untraced context")
	}
	if ctx2 != ctx {
		t.Fatal("untraced StartSpan should return the context unchanged")
	}
	s.End() // must not panic
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(TraceRecord{Status: i})
	}
	got := r.List()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []int{5, 4, 3} {
		if got[i].Status != want {
			t.Fatalf("ring order %v, want newest-first [5 4 3]", got)
		}
	}
}

// TestConcurrentRecording hammers one counter, one histogram and one
// trace from many goroutines while snapshotting — the -race guarantee
// the request path relies on.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("px_c_total", "")
	h := r.Histogram("px_h_seconds", "")
	tr, root := NewTrace("root", func(string, time.Duration) {})
	ctx := ContextWithSpan(context.Background(), root)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				h.Observe(time.Microsecond)
				_, s := StartSpan(ctx, "work")
				s.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = tr.Snapshot()
			var b strings.Builder
			_ = WriteText(&b, r)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8*500 {
		t.Fatalf("counter = %d, want %d", c.Value(), 8*500)
	}
	if got := h.Snapshot().Count; got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}
