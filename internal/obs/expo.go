package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format
// (version 0.0.4): `# HELP` / `# TYPE` headers followed by
// `name{label="value"} value` samples, histograms expanded into
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.

// sample is one fully evaluated sample: handle values read (and gauge
// callbacks called) once, right after the registry snapshot, so the
// cross-registry merge below works on plain data and can sum
// collisions instead of juggling live handles.
type sample struct {
	labels []Label
	count  int64   // counter value
	gauge  float64 // gauge value
	// histogram data (bucketCumulative form)
	cum    []int64
	bounds []float64
	sum    float64
	total  int64
}

// sampleFamily is all samples sharing one name across the merged
// registries.
type sampleFamily struct {
	name, help string
	kind       Kind
	order      []string
	samples    map[string]*sample
}

// WriteText writes all metrics of the given registries in Prometheus
// text exposition format. Families with the same name across
// registries are merged under one header (first registration's help
// text and kind win); within a family, samples appear in registration
// order, and samples with an identical label set across registries are
// summed — counters and histograms add, so a name+label collision
// between the server, warehouse and default registries underreports
// nothing.
func WriteText(w io.Writer, regs ...*Registry) error {
	merged := make(map[string]*sampleFamily)
	var names []string
	for _, r := range regs {
		for _, f := range r.snapshotFamilies() {
			mf, ok := merged[f.name]
			if !ok {
				mf = &sampleFamily{name: f.name, help: f.help, kind: f.kind,
					samples: make(map[string]*sample)}
				merged[f.name] = mf
				names = append(names, f.name)
			}
			for _, key := range f.order {
				sv := evaluate(mf.kind, f.metrics[key])
				if sv == nil {
					continue // kind mismatch across registries; slot panics within one
				}
				if prev, dup := mf.samples[key]; dup {
					prev.merge(sv)
				} else {
					mf.samples[key] = sv
					mf.order = append(mf.order, key)
				}
			}
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writeFamily(w, merged[name]); err != nil {
			return err
		}
	}
	return nil
}

// evaluate reads a metric's current value into a sample. Returns nil
// when the slot has no handle of the requested kind (a family-name
// collision across registries with different kinds).
func evaluate(kind Kind, m *metric) *sample {
	s := &sample{labels: m.labels}
	switch kind {
	case KindHistogram:
		switch {
		case m.hf != nil:
			d := m.hf()
			s.cum, s.bounds, s.sum, s.total = d.Cum, d.Bounds, d.Sum, d.Total
		case m.h != nil:
			s.cum, s.sum, s.total = m.h.bucketCumulative()
			s.bounds = m.h.bounds
		default:
			return nil
		}
	case KindGauge:
		switch {
		case m.gf != nil:
			s.gauge = m.gf()
		case m.g != nil:
			s.gauge = float64(m.g.Value())
		default:
			return nil
		}
	default:
		if m.c == nil {
			return nil
		}
		s.count = m.c.Value()
	}
	return s
}

// merge sums another sample of the same family and label set into s —
// the cross-registry collision case. Counters and gauges add;
// histograms add bucket-wise when the ladders match (they always do
// today: every obs histogram uses DefaultBuckets) and keep the first
// sample's data otherwise.
func (s *sample) merge(o *sample) {
	s.count += o.count
	s.gauge += o.gauge
	if len(s.cum) == len(o.cum) && len(s.bounds) == len(o.bounds) {
		for i := range s.cum {
			s.cum[i] += o.cum[i]
		}
		s.sum += o.sum
		s.total += o.total
	}
}

func writeFamily(w io.Writer, f *sampleFamily) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	for _, key := range f.order {
		s := f.samples[key]
		var err error
		switch f.kind {
		case KindHistogram:
			err = writeHistogram(w, f.name, s)
		case KindGauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(s.labels, "", ""), formatFloat(s.gauge))
		default:
			_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels, "", ""), s.count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s *sample) error {
	for i, bound := range s.bounds {
		le := formatFloat(bound)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, formatLabels(s.labels, "le", le), s.cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		name, formatLabels(s.labels, "le", "+Inf"), s.total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		name, formatLabels(s.labels, "", ""), formatFloat(s.sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		name, formatLabels(s.labels, "", ""), s.total)
	return err
}

// formatLabels renders {a="x",b="y"}, appending the extra label (le
// for histogram buckets) when its name is non-empty. Returns "" when
// there are no labels at all.
func formatLabels(labels []Label, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeValue(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeValue escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a help string: backslash and newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
