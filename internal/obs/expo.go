package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format
// (version 0.0.4): `# HELP` / `# TYPE` headers followed by
// `name{label="value"} value` samples, histograms expanded into
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.

// WriteText writes all metrics of the given registries in Prometheus
// text exposition format. Families with the same name across
// registries are merged under one header (first registration's help
// text wins); within a family, samples appear in registration order.
func WriteText(w io.Writer, regs ...*Registry) error {
	// Merge families by name, preserving first-seen help/kind.
	merged := make(map[string]*family)
	var names []string
	for _, r := range regs {
		for _, f := range r.snapshotFamilies() {
			m, ok := merged[f.name]
			if !ok {
				cp := &family{name: f.name, help: f.help, kind: f.kind,
					metrics: make(map[string]*metric)}
				merged[f.name] = cp
				names = append(names, f.name)
				m = cp
			}
			for _, key := range f.order {
				if _, dup := m.metrics[key]; !dup {
					m.metrics[key] = f.metrics[key]
					m.order = append(m.order, key)
				}
			}
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writeFamily(w, merged[name]); err != nil {
			return err
		}
	}
	return nil
}

func writeFamily(w io.Writer, f *family) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	for _, key := range f.order {
		m := f.metrics[key]
		var err error
		switch f.kind {
		case KindHistogram:
			err = writeHistogram(w, f.name, m)
		case KindGauge:
			v := float64(m.g.Value())
			if m.gf != nil {
				v = m.gf()
			}
			_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(m.labels, "", ""), formatFloat(v))
		default:
			_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(m.labels, "", ""), m.c.Value())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, m *metric) error {
	cum, sum, total := m.h.bucketCumulative()
	for i, bound := range m.h.bounds {
		le := formatFloat(bound)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, formatLabels(m.labels, "le", le), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		name, formatLabels(m.labels, "le", "+Inf"), cum[len(cum)-1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		name, formatLabels(m.labels, "", ""), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		name, formatLabels(m.labels, "", ""), total)
	return err
}

// formatLabels renders {a="x",b="y"}, appending the extra label (le
// for histogram buckets) when its name is non-empty. Returns "" when
// there are no labels at all.
func formatLabels(labels []Label, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeValue(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeValue escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a help string: backslash and newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
