package obs

import (
	"context"
	"sync"
	"time"
)

// This file implements request-scoped tracing: a timed span tree
// carried via context.Context. The server's request middleware opens a
// Trace per request; instrumented stages (warehouse snapshot fetch,
// symbolic match, DNF compile, probability evaluation, keyword search,
// view maintenance, journal appends) call StartSpan/End around their
// work. On a context with no trace attached, StartSpan returns a nil
// span whose End is a no-op — one context lookup, no allocation — so
// instrumentation costs nothing off the request path (measured by the
// obs/overhead bench probe).

// Trace is one request's span tree. All spans of a trace share its
// mutex; spans within a request are created and ended from the
// request's goroutine in the common case, but the lock keeps Snapshot
// (taken by /debug/traces scrapers) safe against in-flight recording.
type Trace struct {
	mu    sync.Mutex
	root  *Span
	start time.Time

	// onEnd, when set, receives every finished non-root span — the
	// hook the server uses to feed per-stage latency histograms.
	onEnd func(name string, d time.Duration)
}

// Span is one timed node of a trace.
type Span struct {
	t        *Trace
	parent   *Span
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	children []*Span
}

// NewTrace starts a trace whose root span has the given name
// (conventionally the route pattern). onEnd, if non-nil, is called
// once per finished non-root span with its name and duration — outside
// the trace lock, so it may touch registries freely.
func NewTrace(name string, onEnd func(name string, d time.Duration)) (*Trace, *Span) {
	t := &Trace{start: time.Now(), onEnd: onEnd}
	t.root = &Span{t: t, name: name, start: t.start}
	return t, t.root
}

type ctxKey struct{}

// ContextWithSpan returns a context carrying the span (and through it
// the trace), to be threaded through the layers below.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the current span, or nil when the context
// carries no trace.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan opens a child span under the context's current span and
// returns a context carrying it. When the context has no trace (a
// background call, a test, the uninstrumented benchmark side), it
// returns ctx unchanged and a nil span — End on a nil span is a no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := &Span{t: parent.t, parent: parent, name: name, start: time.Now()}
	t := parent.t
	t.mu.Lock()
	parent.children = append(parent.children, child)
	t.mu.Unlock()
	return context.WithValue(ctx, ctxKey{}, child), child
}

// End finishes the span, recording its duration. Safe on a nil span
// and idempotent (the first End wins).
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	t := s.t
	t.mu.Lock()
	if s.ended {
		t.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = d
	onEnd := t.onEnd
	t.mu.Unlock()
	if onEnd != nil && s.parent != nil {
		onEnd(s.name, d)
	}
}

// TraceSnapshot returns the span tree of the whole trace this span
// belongs to, as of now (spans still running report their duration so
// far). Nil-safe — a span from an untraced context yields a zero
// snapshot. This is how the server's ?trace=1 echo reads the tree from
// inside a handler, before the root span ends.
func (s *Span) TraceSnapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	return s.t.Snapshot()
}

// SpanSnapshot is the JSON form of one span: its name, start offset
// from the trace start and duration (both microseconds), and children.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	OffsetUS float64        `json:"offset_us"`
	DurUS    float64        `json:"dur_us"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot returns the trace's span tree as of now. Spans not yet
// ended report their duration so far.
func (t *Trace) Snapshot() SpanSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked(t.root)
}

func (t *Trace) snapshotLocked(s *Span) SpanSnapshot {
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	out := SpanSnapshot{
		Name:     s.name,
		OffsetUS: float64(s.start.Sub(t.start)) / 1e3,
		DurUS:    float64(dur) / 1e3,
	}
	for _, c := range s.children {
		out.Children = append(out.Children, t.snapshotLocked(c))
	}
	return out
}

// Find returns the first span snapshot with the given name in a
// pre-order walk, or nil. A test helper for pinning span presence.
func (s *SpanSnapshot) Find(name string) *SpanSnapshot {
	if s.Name == name {
		return s
	}
	for i := range s.Children {
		if found := s.Children[i].Find(name); found != nil {
			return found
		}
	}
	return nil
}

// TraceRecord is one completed request in the trace ring buffer.
type TraceRecord struct {
	Time   time.Time    `json:"time"`
	Route  string       `json:"route"`
	Path   string       `json:"path"`
	Status int          `json:"status"`
	DurMS  float64      `json:"dur_ms"`
	Spans  SpanSnapshot `json:"spans"`
	// Cost is the request's cost-accounting profile (engine work,
	// matcher work, cache behavior — see CostSnapshot), when the server
	// attached one.
	Cost     *CostSnapshot `json:"cost,omitempty"`
	SlowOver bool          `json:"slow,omitempty"` // crossed the slow-query threshold
}

// TraceRing is a bounded ring buffer of recent request traces, read by
// GET /debug/traces. Adds are a short critical section per request
// (pointer bookkeeping only — the snapshot is taken by the caller).
type TraceRing struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next int
	full bool
}

// NewTraceRing returns a ring keeping the last n traces (n forced to
// at least 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]TraceRecord, n)}
}

// Add records a completed request.
func (r *TraceRing) Add(rec TraceRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// List returns the retained traces, newest first.
func (r *TraceRing) List() []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]TraceRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
