package obs

import (
	"math"
	rtm "runtime/metrics"
	"sync"
	"time"
)

// Runtime metric names read from runtime/metrics. Each is resolved
// against metrics.All() at construction, so a name the running
// toolchain does not export is simply skipped (its gauge reads 0 and
// its histogram stays empty) instead of panicking.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmLiveBytes  = "/gc/heap/live:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/sched/pauses/total/gc:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// runtimeRefreshTTL bounds how often the collector re-reads
// runtime/metrics: one scrape evaluates several gauge and histogram
// funcs, and they should all see one coherent metrics.Read.
const runtimeRefreshTTL = 100 * time.Millisecond

// maxRuntimeBuckets caps the exposed bucket count of the runtime
// histograms. The Go runtime's ladders run to hundreds of buckets;
// adjacent buckets are merged down to this many so /metrics stays
// readable and cheap to scrape.
const maxRuntimeBuckets = 32

// RuntimeCollector samples the Go runtime via runtime/metrics and
// exposes the result as obs gauge/histogram families plus a JSON
// snapshot for /stats. All methods are safe for concurrent use; reads
// within runtimeRefreshTTL of each other share one metrics.Read.
type RuntimeCollector struct {
	mu      sync.Mutex
	samples []rtm.Sample
	index   map[string]int
	last    time.Time
}

// NewRuntimeCollector resolves the metric names supported by the
// running toolchain and returns a collector.
func NewRuntimeCollector() *RuntimeCollector {
	supported := make(map[string]bool)
	for _, d := range rtm.All() {
		supported[d.Name] = true
	}
	c := &RuntimeCollector{index: make(map[string]int)}
	for _, name := range []string{rmGoroutines, rmHeapBytes, rmLiveBytes, rmGCCycles, rmGCPauses, rmSchedLat} {
		if supported[name] {
			c.index[name] = len(c.samples)
			c.samples = append(c.samples, rtm.Sample{Name: name})
		}
	}
	return c
}

// refresh re-reads runtime/metrics when the cached samples are older
// than the TTL. Caller must hold c.mu.
func (c *RuntimeCollector) refresh() {
	if now := time.Now(); now.Sub(c.last) >= runtimeRefreshTTL {
		rtm.Read(c.samples)
		c.last = now
	}
}

// uint64Value returns the named sample as a float64 (0 when the name is
// unsupported or carries a non-scalar value).
func (c *RuntimeCollector) uint64Value(name string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.index[name]
	if !ok {
		return 0
	}
	c.refresh()
	if c.samples[i].Value.Kind() != rtm.KindUint64 {
		return 0
	}
	return float64(c.samples[i].Value.Uint64())
}

// histValue returns a copy of the named histogram, converted to the
// exposition form (nil when unsupported).
func (c *RuntimeCollector) histValue(name string) HistData {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.index[name]
	if !ok {
		return HistData{}
	}
	c.refresh()
	if c.samples[i].Value.Kind() != rtm.KindFloat64Histogram {
		return HistData{}
	}
	return convertHistogram(c.samples[i].Value.Float64Histogram())
}

// convertHistogram turns a runtime Float64Histogram (bucket i spans
// [Buckets[i], Buckets[i+1]), possibly with infinite edge boundaries)
// into cumulative exposition form, merging adjacent buckets down to
// maxRuntimeBuckets. The sum is approximated from bucket midpoints
// (infinite edges clamped to the adjacent finite bound) — runtime
// histograms carry no exact sum.
func convertHistogram(h *rtm.Float64Histogram) HistData {
	if h == nil || len(h.Counts) == 0 {
		return HistData{}
	}
	type bucket struct {
		upper float64 // upper bound; +Inf for the overflow bucket
		lower float64
		count uint64
	}
	buckets := make([]bucket, 0, len(h.Counts))
	for i, n := range h.Counts {
		buckets = append(buckets, bucket{lower: h.Buckets[i], upper: h.Buckets[i+1], count: n})
	}
	// Merge adjacent buckets until at most maxRuntimeBuckets remain.
	// Merging neighbors preserves cumulative correctness at the
	// boundaries that survive.
	for len(buckets) > maxRuntimeBuckets {
		merged := make([]bucket, 0, (len(buckets)+1)/2)
		for i := 0; i < len(buckets); i += 2 {
			if i+1 < len(buckets) {
				merged = append(merged, bucket{
					lower: buckets[i].lower,
					upper: buckets[i+1].upper,
					count: buckets[i].count + buckets[i+1].count,
				})
			} else {
				merged = append(merged, buckets[i])
			}
		}
		buckets = merged
	}
	var d HistData
	var cum int64
	for _, b := range buckets {
		cum += int64(b.count)
		if b.count > 0 {
			lo, hi := b.lower, b.upper
			if math.IsInf(lo, -1) {
				lo = min(hi, 0)
			}
			if math.IsInf(hi, 1) {
				hi = max(lo, 0)
			}
			d.Sum += (lo + hi) / 2 * float64(b.count)
		}
		if math.IsInf(b.upper, 1) {
			break // overflow bucket: folded into Total, no finite bound
		}
		d.Bounds = append(d.Bounds, b.upper)
		d.Cum = append(d.Cum, cum)
	}
	d.Total = cum
	return d
}

// histQuantile interpolates the q-quantile (0..1) of a HistData.
func histQuantile(d HistData, q float64) float64 {
	if d.Total == 0 {
		return 0
	}
	rank := q * float64(d.Total)
	var prevCum int64
	lower := 0.0
	for i, b := range d.Bounds {
		if float64(d.Cum[i]) >= rank {
			n := d.Cum[i] - prevCum
			if n == 0 {
				return b
			}
			frac := (rank - float64(prevCum)) / float64(n)
			return lower + frac*(b-lower)
		}
		prevCum = d.Cum[i]
		lower = b
	}
	if len(d.Bounds) > 0 {
		return d.Bounds[len(d.Bounds)-1]
	}
	return 0
}

// Register exposes the collector on a registry: goroutine / heap /
// live-bytes / GC-cycle gauges, plus the GC-pause and scheduler-latency
// histograms on the runtime's (compacted) bucket ladders.
func (c *RuntimeCollector) Register(reg *Registry) {
	reg.GaugeFunc("px_runtime_goroutines", "live goroutines",
		func() float64 { return c.uint64Value(rmGoroutines) })
	reg.GaugeFunc("px_runtime_heap_bytes", "bytes of allocated heap objects",
		func() float64 { return c.uint64Value(rmHeapBytes) })
	reg.GaugeFunc("px_runtime_live_bytes", "heap bytes live after the last GC",
		func() float64 { return c.uint64Value(rmLiveBytes) })
	reg.GaugeFunc("px_runtime_gc_cycles", "completed GC cycles",
		func() float64 { return c.uint64Value(rmGCCycles) })
	reg.HistogramFunc("px_runtime_gc_pause_seconds", "stop-the-world GC pause latency",
		func() HistData { return c.histValue(rmGCPauses) })
	reg.HistogramFunc("px_runtime_sched_latency_seconds", "goroutine scheduling latency",
		func() HistData { return c.histValue(rmSchedLat) })
}

// RuntimeStats is the /stats "runtime" section.
type RuntimeStats struct {
	Goroutines int64 `json:"goroutines"`
	HeapBytes  int64 `json:"heap_bytes"`
	LiveBytes  int64 `json:"live_bytes"`
	GCCycles   int64 `json:"gc_cycles"`
	// GCPause / SchedLatency summarize the runtime histograms:
	// observation counts and interpolated quantiles in milliseconds.
	GCPause      RuntimeHistStats `json:"gc_pause"`
	SchedLatency RuntimeHistStats `json:"sched_latency"`
}

// RuntimeHistStats summarizes one runtime latency distribution.
type RuntimeHistStats struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

func runtimeHistStats(d HistData) RuntimeHistStats {
	return RuntimeHistStats{
		Count: d.Total,
		P50MS: histQuantile(d, 0.50) * 1e3,
		P95MS: histQuantile(d, 0.95) * 1e3,
		P99MS: histQuantile(d, 0.99) * 1e3,
	}
}

// Stats snapshots the collector for GET /stats.
func (c *RuntimeCollector) Stats() RuntimeStats {
	return RuntimeStats{
		Goroutines:   int64(c.uint64Value(rmGoroutines)),
		HeapBytes:    int64(c.uint64Value(rmHeapBytes)),
		LiveBytes:    int64(c.uint64Value(rmLiveBytes)),
		GCCycles:     int64(c.uint64Value(rmGCCycles)),
		GCPause:      runtimeHistStats(c.histValue(rmGCPauses)),
		SchedLatency: runtimeHistStats(c.histValue(rmSchedLat)),
	}
}
