package obs

// DefaultBuckets is the fixed latency bucket ladder every histogram in
// the system shares: upper bounds in seconds on a 1-2.5-5 progression
// from 1µs to 10s, with the +Inf bucket implicit. Queries on cached
// snapshots land in the microsecond decades; cold loads, Monte-Carlo
// runs and journal fsyncs in the millisecond ones.
//
// The ladder is deliberately a single exported constant rather than a
// per-histogram option: the server's px_http_request_seconds and
// px_stage_seconds families and pxsim's client-side per-route
// histograms must use identical bounds, or their p50/p95/p99 estimates
// would not be comparable (each quantile is interpolated inside its
// owning bucket, so different ladders bias differently).
// TestDefaultBucketLadderPinned pins the values; internal/sim pins its
// client ladder against this one.
//
// Treat the ladder as append-only at the ends: inserting or moving
// interior bounds silently re-buckets every dashboard and every
// committed BENCH_*.json percentile that predates the change.
var DefaultBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// Bounds returns the histogram's bucket upper bounds in seconds (the
// +Inf bucket is implicit). The returned slice is shared — callers
// must not modify it.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}
