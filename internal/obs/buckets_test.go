package obs

import (
	"testing"
	"time"
)

// TestDefaultBucketLadderPinned pins the shared latency bucket ladder
// value by value. The ladder is load-bearing beyond this package:
// pxsim's client-side per-route histograms must use bounds identical
// to the server's px_stage_seconds / px_http_request_seconds families
// for client and server percentiles to be comparable, and committed
// BENCH_*.json percentiles assume stable interior bounds. Changing a
// value here must be a deliberate, documented decision.
func TestDefaultBucketLadderPinned(t *testing.T) {
	want := []float64{
		1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		1e-1, 2.5e-1, 5e-1,
		1, 2.5, 5, 10,
	}
	if len(DefaultBuckets) != len(want) {
		t.Fatalf("DefaultBuckets has %d bounds, want %d", len(DefaultBuckets), len(want))
	}
	for i, b := range want {
		if DefaultBuckets[i] != b {
			t.Errorf("DefaultBuckets[%d] = %g, want %g", i, DefaultBuckets[i], b)
		}
	}
	for i := 1; i < len(DefaultBuckets); i++ {
		if DefaultBuckets[i] <= DefaultBuckets[i-1] {
			t.Errorf("ladder not ascending at %d: %g <= %g", i, DefaultBuckets[i], DefaultBuckets[i-1])
		}
	}
}

// TestHistogramsShareTheLadder pins that every construction path — the
// bare constructor and registry-created series like px_stage_seconds —
// yields the same bounds as DefaultBuckets, so any two histograms in
// the process are bucket-compatible.
func TestHistogramsShareTheLadder(t *testing.T) {
	reg := NewRegistry()
	hists := map[string]*Histogram{
		"NewHistogram":     NewHistogram(),
		"px_stage_seconds": reg.Histogram("px_stage_seconds", "stage latency", L("stage", "x")),
		"px_http":          reg.Histogram("px_http_request_seconds", "route latency", L("route", "GET /docs")),
	}
	for name, h := range hists {
		got := h.Bounds()
		if len(got) != len(DefaultBuckets) {
			t.Fatalf("%s: %d bounds, want %d", name, len(got), len(DefaultBuckets))
		}
		for i := range got {
			if got[i] != DefaultBuckets[i] {
				t.Errorf("%s: bound[%d] = %g, want %g", name, i, got[i], DefaultBuckets[i])
			}
		}
	}
	var nilH *Histogram
	if nilH.Bounds() != nil {
		t.Error("nil histogram Bounds() != nil")
	}
	// Bounds must describe the buckets Observe actually fills.
	h := NewHistogram()
	h.Observe(3 * time.Microsecond)
	if h.Snapshot().Count != 1 {
		t.Error("observation lost")
	}
}
