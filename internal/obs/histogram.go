package obs

import (
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram over DefaultBuckets
// (see buckets.go for why the ladder is shared and pinned). Observe is lock-free:
// one atomic add into the bucket, one into the sum, one into the
// count. Quantiles (p50/p95/p99) are derived at snapshot time by
// linear interpolation within the owning bucket — the usual Prometheus
// histogram_quantile estimate, computed server-side.
//
// A nil *Histogram discards observations.
type Histogram struct {
	bounds []float64 // upper bounds in seconds, ascending
	counts []atomic.Int64
	sum    atomic.Int64 // nanoseconds
	count  atomic.Int64
	max    atomic.Int64 // nanoseconds, largest single observation
}

// NewHistogram returns a histogram over DefaultBuckets.
func NewHistogram() *Histogram {
	return &Histogram{
		bounds: DefaultBuckets,
		counts: make([]atomic.Int64, len(DefaultBuckets)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	// Linear scan: the ladder is short and the common case (µs–ms)
	// exits within the first dozen compares; a branch-predicted scan
	// beats binary search at this size.
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
	// Raise the observed max (CAS loop; in the common case one load
	// shows the current max is already larger and no write happens).
	// The max bounds quantile interpolation in the +Inf bucket and
	// feeds the per-route max_ms /stats reports.
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Max returns the largest single observation so far.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// HistogramSnapshot is a point-in-time view of a histogram, with
// derived quantiles in milliseconds (the unit /stats reports latencies
// in).
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	AvgMS float64 `json:"avg_ms"`
	MaxMS float64 `json:"max_ms"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// Snapshot returns the current counts and derived quantiles. Counts
// are read without a lock, so a snapshot concurrent with observations
// may be off by in-flight increments — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	s.Count = h.count.Load()
	if s.Count == 0 {
		return s
	}
	s.AvgMS = float64(h.sum.Load()) / float64(s.Count) / 1e6
	s.MaxMS = float64(h.max.Load()) / 1e6
	s.P50MS = h.Quantile(0.50) * 1e3
	s.P95MS = h.Quantile(0.95) * 1e3
	s.P99MS = h.Quantile(0.99) * 1e3
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in seconds by linear
// interpolation within the bucket holding the target rank. A rank
// landing in the +Inf bucket interpolates between the largest finite
// bound and the observed maximum, so tail latencies beyond the ladder
// still move p99 instead of being silently clamped at the last bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := int64(0)
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := float64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := float64(0)
			if i == len(h.bounds) {
				hi = float64(h.max.Load()) / 1e9
				if hi <= lo {
					// Racy read, or max not yet published: fall back
					// to the old clamp.
					return lo
				}
			} else {
				hi = h.bounds[i]
			}
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// bucketCumulative returns the cumulative bucket counts (Prometheus
// `le` semantics: counts[i] = observations ≤ bounds[i], final entry is
// the total) plus the sum in seconds. Used by the exposition writer.
func (h *Histogram) bucketCumulative() (cum []int64, sumSeconds float64, total int64) {
	cum = make([]int64, len(h.counts))
	running := int64(0)
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, float64(h.sum.Load()) / 1e9, running
}
