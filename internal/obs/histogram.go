package obs

import (
	"sync/atomic"
	"time"
)

// DefaultBuckets are the latency bucket upper bounds in seconds: a
// 1-2.5-5 ladder from 1µs to 10s. Queries on cached snapshots land in
// the microsecond decades; cold loads, Monte-Carlo runs and journal
// fsyncs in the millisecond ones. The +Inf bucket is implicit.
var DefaultBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Observe is lock-free:
// one atomic add into the bucket, one into the sum, one into the
// count. Quantiles (p50/p95/p99) are derived at snapshot time by
// linear interpolation within the owning bucket — the usual Prometheus
// histogram_quantile estimate, computed server-side.
//
// A nil *Histogram discards observations.
type Histogram struct {
	bounds []float64 // upper bounds in seconds, ascending
	counts []atomic.Int64
	sum    atomic.Int64 // nanoseconds
	count  atomic.Int64
}

// NewHistogram returns a histogram over DefaultBuckets.
func NewHistogram() *Histogram {
	return &Histogram{
		bounds: DefaultBuckets,
		counts: make([]atomic.Int64, len(DefaultBuckets)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	// Linear scan: the ladder is short and the common case (µs–ms)
	// exits within the first dozen compares; a branch-predicted scan
	// beats binary search at this size.
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time view of a histogram, with
// derived quantiles in milliseconds (the unit /stats reports latencies
// in).
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	AvgMS float64 `json:"avg_ms"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// Snapshot returns the current counts and derived quantiles. Counts
// are read without a lock, so a snapshot concurrent with observations
// may be off by in-flight increments — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	s.Count = h.count.Load()
	if s.Count == 0 {
		return s
	}
	s.AvgMS = float64(h.sum.Load()) / float64(s.Count) / 1e6
	s.P50MS = h.Quantile(0.50) * 1e3
	s.P95MS = h.Quantile(0.95) * 1e3
	s.P99MS = h.Quantile(0.99) * 1e3
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in seconds by linear
// interpolation within the bucket holding the target rank. Values in
// the +Inf bucket are reported as the largest finite bound — an
// underestimate, as with any bounded-bucket histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := int64(0)
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := float64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// bucketCumulative returns the cumulative bucket counts (Prometheus
// `le` semantics: counts[i] = observations ≤ bounds[i], final entry is
// the total) plus the sum in seconds. Used by the exposition writer.
func (h *Histogram) bucketCumulative() (cum []int64, sumSeconds float64, total int64) {
	cum = make([]int64, len(h.counts))
	running := int64(0)
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, float64(h.sum.Load()) / 1e9, running
}
