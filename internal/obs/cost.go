package obs

import (
	"context"
	"sync/atomic"
)

// CostKind enumerates the per-request cost categories. Each kind mirrors
// exactly one process-wide metric family (or one label of one), and the
// only code path that charges either is Charge — so the per-request
// breakdown and the global counters are two sums over the same stream of
// increments and can never drift. See docs/OBSERVABILITY.md for the
// category ↔ family catalog.
type CostKind int

const (
	// CostEngineCompiles counts event-engine DNF compiles.
	CostEngineCompiles CostKind = iota
	// CostEngineBitsetCompiles counts compiles served by the bitset
	// fast path (a subset of CostEngineCompiles).
	CostEngineBitsetCompiles
	// CostEngineMemoHits / CostEngineMemoMisses count Shannon-expansion
	// memo table hits and misses.
	CostEngineMemoHits
	CostEngineMemoMisses
	// CostEngineComponents counts independent-component decompositions.
	CostEngineComponents
	// CostEngineExpansionNodes counts Shannon-expansion nodes visited
	// (DNF engine recursion steps plus formula-evaluator steps).
	CostEngineExpansionNodes
	// CostEngineMCSamples counts Monte-Carlo world samples drawn.
	CostEngineMCSamples
	// CostTpwjNodesVisited counts document nodes visited by the TPWJ
	// matcher; CostTpwjMatchesTried counts candidate matches emitted to
	// the join/filter stage.
	CostTpwjNodesVisited
	CostTpwjMatchesTried
	// CostKeywordPostingsScanned counts inverted-index postings scanned
	// while merging keyword candidate lists.
	CostKeywordPostingsScanned
	// CostKeywordCandidatesPruned counts candidates eliminated by the
	// MinProb upper bound before exact evaluation.
	CostKeywordCandidatesPruned
	// CostViewMaintSkipped / Incremental / Recomputed count view
	// maintenance passes by chosen tier.
	CostViewMaintSkipped
	CostViewMaintIncremental
	CostViewMaintRecomputed
	// CostViewAnswersReused / Recomputed count answer probabilities kept
	// versus re-derived by incremental maintenance.
	CostViewAnswersReused
	CostViewAnswersRecomputed
	// CostCacheHits / CostCacheMisses count server result-cache lookups
	// (query and search caches combined).
	CostCacheHits
	CostCacheMisses
	// CostJournalBytes counts bytes appended to the write-ahead journal.
	CostJournalBytes

	costKinds // number of kinds; keep last
)

// Cost is a per-request cost accumulator, carried in a context like a
// trace span. All methods are nil-safe: code charges unconditionally
// and a request without cost accounting pays one predictable-branch nil
// check, mirroring the span-tracing design.
type Cost struct {
	v [costKinds]atomic.Int64
}

// NewCost returns an empty accumulator.
func NewCost() *Cost { return &Cost{} }

// Add charges n units of kind k. No-op on a nil receiver.
func (c *Cost) Add(k CostKind, n int64) {
	if c == nil || n == 0 {
		return
	}
	c.v[k].Add(n)
}

// Value returns the accumulated charge of kind k (0 on nil).
func (c *Cost) Value(k CostKind) int64 {
	if c == nil {
		return 0
	}
	return c.v[k].Load()
}

// Charge is the single code path that both the process-wide counter and
// the request's Cost accumulator go through: ctr (when non-nil) always
// receives the increment, cost only when the request carries one. Every
// instrumented site charges via Charge, which is what keeps the global
// px_* counters exact sums of per-request charges.
func Charge(c *Cost, k CostKind, ctr *Counter, n int64) {
	if n == 0 {
		return
	}
	if ctr != nil {
		ctr.Add(n)
	}
	c.Add(k, n)
}

// CostSnapshot is the JSON form of a Cost, attached to trace records,
// the slow-query log, and ?explain=1 responses. Field names match the
// metric families they mirror (see CostKind).
type CostSnapshot struct {
	EngineCompiles          int64 `json:"engine_compiles"`
	EngineBitsetCompiles    int64 `json:"engine_bitset_compiles"`
	EngineMemoHits          int64 `json:"engine_memo_hits"`
	EngineMemoMisses        int64 `json:"engine_memo_misses"`
	EngineComponents        int64 `json:"engine_components"`
	EngineExpansionNodes    int64 `json:"engine_expansion_nodes"`
	EngineMCSamples         int64 `json:"engine_mc_samples"`
	TpwjNodesVisited        int64 `json:"tpwj_nodes_visited"`
	TpwjMatchesTried        int64 `json:"tpwj_matches_tried"`
	KeywordPostingsScanned  int64 `json:"keyword_postings_scanned"`
	KeywordCandidatesPruned int64 `json:"keyword_candidates_pruned"`
	ViewMaintSkipped        int64 `json:"view_maint_skipped"`
	ViewMaintIncremental    int64 `json:"view_maint_incremental"`
	ViewMaintRecomputed     int64 `json:"view_maint_recomputed"`
	ViewAnswersReused       int64 `json:"view_answers_reused"`
	ViewAnswersRecomputed   int64 `json:"view_answers_recomputed"`
	CacheHits               int64 `json:"cache_hits"`
	CacheMisses             int64 `json:"cache_misses"`
	JournalBytes            int64 `json:"journal_bytes"`
}

// Snapshot copies the accumulator into its JSON form. Nil-safe.
func (c *Cost) Snapshot() CostSnapshot {
	if c == nil {
		return CostSnapshot{}
	}
	return CostSnapshot{
		EngineCompiles:          c.Value(CostEngineCompiles),
		EngineBitsetCompiles:    c.Value(CostEngineBitsetCompiles),
		EngineMemoHits:          c.Value(CostEngineMemoHits),
		EngineMemoMisses:        c.Value(CostEngineMemoMisses),
		EngineComponents:        c.Value(CostEngineComponents),
		EngineExpansionNodes:    c.Value(CostEngineExpansionNodes),
		EngineMCSamples:         c.Value(CostEngineMCSamples),
		TpwjNodesVisited:        c.Value(CostTpwjNodesVisited),
		TpwjMatchesTried:        c.Value(CostTpwjMatchesTried),
		KeywordPostingsScanned:  c.Value(CostKeywordPostingsScanned),
		KeywordCandidatesPruned: c.Value(CostKeywordCandidatesPruned),
		ViewMaintSkipped:        c.Value(CostViewMaintSkipped),
		ViewMaintIncremental:    c.Value(CostViewMaintIncremental),
		ViewMaintRecomputed:     c.Value(CostViewMaintRecomputed),
		ViewAnswersReused:       c.Value(CostViewAnswersReused),
		ViewAnswersRecomputed:   c.Value(CostViewAnswersRecomputed),
		CacheHits:               c.Value(CostCacheHits),
		CacheMisses:             c.Value(CostCacheMisses),
		JournalBytes:            c.Value(CostJournalBytes),
	}
}

// costKey is the context key for the request's Cost (same pattern as
// the span key in trace.go).
type costKey struct{}

// ContextWithCost returns a context carrying the accumulator.
func ContextWithCost(ctx context.Context, c *Cost) context.Context {
	return context.WithValue(ctx, costKey{}, c)
}

// CostFromContext extracts the accumulator, or nil when the context
// carries none (or is nil itself) — callers charge the result without
// checking, since Cost methods are nil-safe.
func CostFromContext(ctx context.Context) *Cost {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(costKey{}).(*Cost)
	return c
}
