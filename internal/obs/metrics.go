// Package obs is the observability substrate of the repository: a
// process-wide metrics registry (lock-free atomic counters, gauges and
// fixed-bucket latency histograms), Prometheus text exposition, and
// request-scoped tracing (a lightweight span API carried via
// context.Context). Every layer — the HTTP server, the warehouse, the
// TPWJ/XPath engine, the probability engine, keyword search and view
// maintenance — records into it, and the server's /stats and /metrics
// routes read from it, so there is one source of truth for counters.
//
// Design constraints, in order:
//
//  1. The recording hot path is mutex-free. Counter.Add, Gauge.Set and
//     Histogram.Observe are single atomic operations on handles the
//     caller obtained once at registration time; request recording
//     never takes a lock and never allocates.
//  2. A nil *Registry is the no-op registry: it hands out nil handles,
//     and every handle method is nil-safe. Instrumented code needs no
//     "is observability on?" branches, and the obs/overhead benchmark
//     probe compares exactly this nil path against the live one.
//  3. No dependencies outside the standard library, so every internal
//     package may record into obs without import cycles.
//
// Registries are cheap; the process typically has several (the
// server's, the warehouse's, and the package-global Default() used by
// the event and keyword engines' process-wide counters), merged at
// exposition time by WriteText.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition type of a metric family.
type Kind int

// Metric family kinds, matching the Prometheus exposition TYPE names.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name="value" pair attached to a metric.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing counter. The zero value is
// usable; a nil *Counter (from the nil no-op registry) discards
// increments.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (n must not be negative: counters are
// monotone by contract, and the exposition test enforces it).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter. For tests and benchmarks only — scrapers
// assume counters are monotone within a process lifetime.
func (c *Counter) Reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// Gauge is an instantaneous int64 value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// SetMax raises the gauge to n if n exceeds the current value
// (lock-free CAS loop). Used for per-route maximum latencies.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metric is one labeled sample slot inside a family.
type metric struct {
	labels []Label
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
	hf     func() HistData
}

// family is all metrics sharing one name (and therefore help and kind).
type family struct {
	name    string
	help    string
	kind    Kind
	order   []string // label keys in registration order
	metrics map[string]*metric
}

// Registry holds metric families. The nil *Registry is the no-op
// registry: every lookup returns a nil handle whose methods do
// nothing. Lookups (Counter, Gauge, Histogram, GaugeFunc) take the
// registry mutex and are meant for registration time; the returned
// handles are the lock-free hot path.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry, home of package-global
// counters (the probability engine's, keyword search's). Per-instance
// state (a server's routes, a warehouse's journal) belongs in its own
// registry, merged with this one at exposition time.
func Default() *Registry { return defaultRegistry }

// labelKey serializes label values into a map key. Label names are
// fixed per family, so values alone disambiguate.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// slot returns (creating if needed) the metric slot for name+labels,
// enforcing one kind per family. The slot's handle (counter, gauge or
// histogram) is created here, under the registry mutex, so a slot is
// never observed half-initialized by a concurrent snapshot.
func (r *Registry) slot(name, help string, kind Kind, labels []Label) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, metrics: make(map[string]*metric)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	key := labelKey(labels)
	m, ok := f.metrics[key]
	if !ok {
		m = &metric{labels: append([]Label(nil), labels...)}
		switch kind {
		case KindCounter:
			m.c = &Counter{}
		case KindGauge:
			m.g = &Gauge{}
		case KindHistogram:
			m.h = NewHistogram()
		}
		f.metrics[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// Counter returns (creating on first use) the counter name{labels}.
// Repeated calls with the same name and labels return the same handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.slot(name, help, KindCounter, labels).c
}

// Gauge returns (creating on first use) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.slot(name, help, KindGauge, labels).g
}

// GaugeFunc registers a gauge whose value is computed by f at
// exposition time — for values that already live elsewhere (cache
// sizes, registered-view counts, uptime).
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	if r == nil {
		return
	}
	m := r.slot(name, help, KindGauge, labels)
	r.mu.Lock()
	m.gf = f
	r.mu.Unlock()
}

// Histogram returns (creating on first use) the latency histogram
// name{labels} with the default duration buckets.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.slot(name, help, KindHistogram, labels).h
}

// HistData is a histogram distribution computed outside obs, exposed
// through HistogramFunc: Bounds are the finite upper bounds, Cum the
// cumulative counts at those bounds (len(Cum) == len(Bounds)), Total
// the all-samples count (the +Inf bucket), Sum the (possibly
// approximated) sum of observations.
type HistData struct {
	Bounds []float64
	Cum    []int64
	Sum    float64
	Total  int64
}

// HistogramFunc registers a histogram whose distribution is computed by
// f at exposition time — for distributions maintained elsewhere, such
// as the runtime/metrics GC-pause and scheduler-latency histograms,
// whose bucket ladders the Go runtime owns.
func (r *Registry) HistogramFunc(name, help string, f func() HistData, labels ...Label) {
	if r == nil {
		return
	}
	m := r.slot(name, help, KindHistogram, labels)
	r.mu.Lock()
	m.hf = f
	r.mu.Unlock()
}

// snapshotFamilies returns a deep copy of the registry's families
// sorted by name, each with its metrics in registration order. The
// order slices, metric maps and metric structs are all copied under
// the registry mutex, because slot keeps mutating the originals as
// new series register lazily (per-stage histograms appear the first
// time a span finishes); only the handle pointers are shared, and
// those are read with atomics. Used by WriteText.
func (r *Registry) snapshotFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		cp := &family{
			name:    f.name,
			help:    f.help,
			kind:    f.kind,
			order:   append([]string(nil), f.order...),
			metrics: make(map[string]*metric, len(f.metrics)),
		}
		for key, m := range f.metrics {
			mc := *m
			cp.metrics[key] = &mc
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
