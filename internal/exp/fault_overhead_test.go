package exp

import (
	"context"
	"sort"
	"testing"
	"time"
)

// TestFaultOverhead is the CI smoke for the cancellation cost contract:
// evaluating through the context-aware entry point with a live
// (cancellable, never-fired) context must stay within 3% of the
// context-free path, whose engine skips every check. Paired samples
// with per-side medians, like TestObsOverhead: each iteration times
// both sides back to back so machine drift cancels out, and a failing
// attempt is retried because CI machines misbehave — a real regression
// fails every attempt.
func TestFaultOverhead(t *testing.T) {
	tab, d := AblationDNF(14)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	evalOff := func() {
		if _, err := tab.ProbDNF(d); err != nil {
			t.Fatal(err)
		}
	}
	evalOn := func() {
		if _, err := tab.ProbDNFCtx(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		evalOff()
		evalOn()
	}

	const pairs = 120
	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}

	const limit = 0.03
	var overhead float64
	for attempt := 0; attempt < 3; attempt++ {
		offs := make([]time.Duration, pairs)
		ons := make([]time.Duration, pairs)
		for i := 0; i < pairs; i++ {
			s := time.Now()
			evalOff()
			m := time.Now()
			evalOn()
			offs[i] = m.Sub(s)
			ons[i] = time.Since(m)
		}
		medOff, medOn := median(offs), median(ons)
		overhead = float64(medOn-medOff) / float64(medOff)
		t.Logf("attempt %d: off=%v on=%v overhead=%.2f%%", attempt, medOff, medOn, overhead*100)
		if overhead < limit {
			return
		}
	}
	t.Fatalf("cancellation-check overhead %.2f%% exceeds %.0f%%", overhead*100, limit*100)
}

// TestFaultOverheadProbesExist pins the probe names the benchmark
// report tracks, so a rename in Probes() cannot silently drop the
// fault/overhead pair from BENCH_<date>.json.
func TestFaultOverheadProbesExist(t *testing.T) {
	want := map[string]bool{
		"fault/overhead/off/events=14": false,
		"fault/overhead/on/events=14":  false,
	}
	for _, p := range Probes() {
		if _, ok := want[p.Name]; ok {
			want[p.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("probe %q missing from Probes()", name)
		}
	}
}
