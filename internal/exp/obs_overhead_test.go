package exp

import (
	"context"
	"sort"
	"testing"
	"time"

	"repro/internal/tpwj"
)

// TestObsOverhead is the CI smoke for the observability cost contract:
// the fully instrumented query path (trace + spans + stage histograms)
// must stay within 5% of the identical eval on an untraced context —
// the no-op instrumentation path. Each sample times one uninstrumented
// and one instrumented eval back to back, so slow drift (thermal,
// noisy neighbors) hits both sides equally, and the comparison uses
// per-side medians, so one-off stalls (GC, scheduler) drop out. A
// failing attempt is retried because CI machines misbehave; a real
// regression fails every attempt.
func TestObsOverhead(t *testing.T) {
	ft := SectionDoc(12)
	q := tpwj.MustParseQuery("A(//L $x)")
	record := obsStageRecorder()

	evalOff := func() {
		if _, err := tpwj.EvalFuzzyContext(context.Background(), q, ft); err != nil {
			t.Fatal(err)
		}
	}
	evalOn := func() {
		if err := obsTracedEval(q, ft, record); err != nil {
			t.Fatal(err)
		}
	}
	// Warm both paths: the first evaluations pay allocator and memo
	// warmup that has nothing to do with instrumentation.
	for i := 0; i < 5; i++ {
		evalOff()
		evalOn()
	}

	const pairs = 120
	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}

	const limit = 0.05
	var overhead float64
	for attempt := 0; attempt < 3; attempt++ {
		offs := make([]time.Duration, pairs)
		ons := make([]time.Duration, pairs)
		for i := 0; i < pairs; i++ {
			s := time.Now()
			evalOff()
			m := time.Now()
			evalOn()
			offs[i] = m.Sub(s)
			ons[i] = time.Since(m)
		}
		medOff, medOn := median(offs), median(ons)
		overhead = float64(medOn-medOff) / float64(medOff)
		t.Logf("attempt %d: off=%v on=%v overhead=%.2f%%", attempt, medOff, medOn, overhead*100)
		if overhead < limit {
			return
		}
	}
	t.Fatalf("instrumentation overhead %.2f%% exceeds %.0f%%", overhead*100, limit*100)
}
