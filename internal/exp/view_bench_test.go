package exp

import (
	"math"
	"testing"

	"repro/internal/tree"
	"repro/internal/view"
)

// TestViewMaintenanceInstance pins the mechanics behind the pxbench
// view probes: the touching update takes the incremental tier and
// affects exactly one of the 32 answers, the unrelated update is
// skipped outright, and both end states equal recompute-from-scratch.
func TestViewMaintenanceInstance(t *testing.T) {
	v, next, d := viewMaintenanceInstance(32, true)
	nv, res, err := v.Maintain(next, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != view.Incremental {
		t.Fatalf("touching update: outcome %v, want Incremental", res.Outcome)
	}
	if res.Recomputed != 1 || res.Reused != 32 {
		t.Errorf("touching update: recomputed=%d reused=%d, want 1/32", res.Recomputed, res.Reused)
	}
	fresh, err := view.Materialize(v.Def(), v.Query(), next)
	if err != nil {
		t.Fatal(err)
	}
	got, want := nv.Answers(), fresh.Answers()
	if len(got) != len(want) {
		t.Fatalf("maintained %d answers, recompute %d", len(got), len(want))
	}
	for i := range want {
		if tree.Canonical(got[i].Tree) != tree.Canonical(want[i].Tree) ||
			math.Abs(got[i].P-want[i].P) > 1e-9 {
			t.Fatalf("answer %d differs: %v vs %v", i, got[i], want[i])
		}
	}

	v, next, d = viewMaintenanceInstance(32, false)
	if _, res, err = v.Maintain(next, d); err != nil {
		t.Fatal(err)
	}
	if res.Outcome != view.Skipped {
		t.Fatalf("unrelated update: outcome %v, want Skipped", res.Outcome)
	}
}

// TestViewMaintainBeatsRecompute pins the acceptance property behind
// the benchmark: on an update affecting one answer in 32, incremental
// maintenance must beat recomputing every answer probability from
// scratch.
func TestViewMaintainBeatsRecompute(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short mode")
	}
	v, next, d := viewMaintenanceInstance(32, true)
	timeIt := func(f func()) int64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f()
			}
		})
		return r.NsPerOp()
	}
	incr := timeIt(func() { v.Maintain(next, d) })                        //nolint:errcheck
	full := timeIt(func() { view.Materialize(v.Def(), v.Query(), next) }) //nolint:errcheck
	if incr >= full {
		t.Errorf("incremental maintenance (%d ns/op) not faster than recompute (%d ns/op)", incr, full)
	}
}
