package exp

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/gen"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
	"repro/internal/worlds"
)

// Slide9Doc returns the fuzzy document whose expansion is the
// possible-worlds set of slide 9.
func Slide9Doc() *fuzzy.Tree {
	return fuzzy.MustParseTree("A(B[w1], C(D[w2]))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
}

// Slide12Doc returns the fuzzy document of slide 12.
func Slide12Doc() *fuzzy.Tree {
	return fuzzy.MustParseTree("A(B[w1 !w2], C(D[w2]))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
}

// Slide15Doc returns the pre-update document of slide 15.
func Slide15Doc() *fuzzy.Tree {
	return fuzzy.MustParseTree("A(B[w1], C[w2])",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
}

// Slide15Tx returns the conditional replacement of slide 15: replace C
// by D if B is present, with confidence 0.9 (event w3).
func Slide15Tx() *update.Transaction {
	tx := update.New(
		tpwj.MustParseQuery("A $a(B $b, C $c)"),
		0.9,
		update.Insert("a", tree.MustParse("D")),
		update.Delete("c"),
	)
	tx.ConfEvent = "w3"
	return tx
}

// RunE1 reproduces the possible-worlds set of slide 9.
func RunE1() *Table {
	t := &Table{
		ID:     "E1",
		Title:  "possible-worlds semantics of A(B[w1], C(D[w2]))",
		Ref:    "slide 9",
		Header: []string{"world", "P paper", "P measured"},
		OK:     true,
	}
	expected := []struct {
		text string
		p    float64
	}{
		{"A(C)", 0.06},
		{"A(C(D))", 0.14},
		{"A(B, C)", 0.24},
		{"A(B, C(D))", 0.56},
	}
	pw, err := Slide9Doc().Expand()
	if err != nil {
		t.OK = false
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	for _, e := range expected {
		got := pw.ProbOf(tree.MustParse(e.text))
		t.AddRow(e.text, fmt.Sprintf("%.2f", e.p), fmt.Sprintf("%.2f", got))
		if math.Abs(got-e.p) > 1e-9 {
			t.OK = false
		}
	}
	if pw.Len() != len(expected) {
		t.OK = false
		t.Notes = append(t.Notes, fmt.Sprintf("unexpected world count %d", pw.Len()))
	}
	return t
}

// RunE2 reproduces the slide-12 semantics, checks the expressiveness
// round trip, and measures how the exact expansion blows up with the
// number of events (the reason the fuzzy representation exists).
func RunE2() *Table {
	t := &Table{
		ID:     "E2",
		Title:  "fuzzy-tree semantics, expressiveness, expansion blow-up",
		Ref:    "slide 12",
		Header: []string{"events", "tree nodes", "distinct worlds", "expand"},
		OK:     true,
	}

	// Golden slide-12 check.
	pw, err := Slide12Doc().Expand()
	if err != nil {
		t.OK = false
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	for _, e := range []struct {
		text string
		p    float64
	}{{"A(C)", 0.06}, {"A(C(D))", 0.70}, {"A(B, C)", 0.24}} {
		if math.Abs(pw.ProbOf(tree.MustParse(e.text))-e.p) > 1e-9 {
			t.OK = false
			t.Notes = append(t.Notes, fmt.Sprintf("slide-12 mismatch on %s", e.text))
		}
	}
	t.Notes = append(t.Notes, "slide-12 golden worlds: P = 0.06 / 0.70 / 0.24 verified")

	// Expressiveness round trip on the slide-9 set.
	enc, err := fuzzy.FromWorlds(pw, "e")
	if err != nil {
		t.OK = false
		t.Notes = append(t.Notes, err.Error())
	} else if back, err := enc.Expand(); err != nil || !back.Equal(pw, 1e-9) {
		t.OK = false
		t.Notes = append(t.Notes, "expressiveness round trip failed")
	} else {
		t.Notes = append(t.Notes, "possible-worlds -> fuzzy -> possible-worlds round trip verified")
	}

	// Expansion blow-up series on the deterministic sections document:
	// m independent events yield exactly 2^m distinct worlds.
	for _, m := range []int{2, 4, 6, 8, 10, 12, 14} {
		ft := SectionDoc(m)
		var distinct int
		d := timeIt(5*time.Millisecond, func() {
			pw, err := ft.Expand()
			if err != nil {
				panic(err)
			}
			distinct = pw.Len()
		})
		t.AddRow(fmt.Sprint(m), fmt.Sprint(ft.Size()), fmt.Sprint(distinct), us(d)+" µs")
	}
	t.Notes = append(t.Notes, "expansion enumerates 2^events assignments: exponential, as the paper's model predicts")
	return t
}

// SectionDoc builds the deterministic scaling document used by E2–E4:
//
//	A( S[e1](L:v1, M:u1), …, S[em](L:vm, M:um) )
//
// Each of the m sections is guarded by its own event (probability
// 0.5 + i/(4m)), so the document has exactly 2^m distinct possible
// worlds.
func SectionDoc(m int) *fuzzy.Tree {
	root := fuzzy.NewNode("A")
	tab := event.NewTable()
	for i := 1; i <= m; i++ {
		id := event.ID(fmt.Sprintf("e%d", i))
		tab.MustSet(id, 0.5+float64(i)/float64(4*m))
		root.Add(fuzzy.NewNode("S",
			fuzzy.NewLeaf("L", fmt.Sprintf("v%d", i)),
			fuzzy.NewLeaf("M", fmt.Sprintf("u%d", i)),
		).WithCond(event.Cond(event.Pos(id))))
	}
	return &fuzzy.Tree{Root: root, Table: tab}
}

// e3Instance builds the (document, query) pair with m events for the
// query experiments: the sections document and a query retrieving every
// L leaf (one answer per section, probability P(eᵢ)).
func e3Instance(m int) (*fuzzy.Tree, *tpwj.Query) {
	return SectionDoc(m), tpwj.MustParseQuery("A(//L $x)")
}

// RunE3 measures the commutation theorem's payoff: querying the fuzzy
// tree directly (polynomial) versus expanding to possible worlds and
// querying every world (exponential in events), plus the Monte-Carlo
// estimator. Correctness (identical answers and probabilities) is
// verified at every point.
func RunE3() *Table {
	t := &Table{
		ID:     "E3",
		Title:  "query evaluation: fuzzy direct vs possible-worlds baseline",
		Ref:    "slide 13",
		Header: []string{"events", "worlds", "fuzzy", "worlds baseline", "MC(10k)", "speedup"},
		OK:     true,
	}
	for _, m := range []int{2, 4, 6, 8, 10, 12} {
		ft, q := e3Instance(m)

		var fuzzyAnswers []tpwj.ProbAnswer
		dFuzzy := timeIt(5*time.Millisecond, func() {
			var err error
			fuzzyAnswers, err = tpwj.EvalFuzzy(q, ft)
			if err != nil {
				panic(err)
			}
		})

		var pwCount int
		var worldAnswers *worlds.Set
		dWorlds := timeIt(5*time.Millisecond, func() {
			pw, err := ft.Expand()
			if err != nil {
				panic(err)
			}
			pwCount = pw.Len()
			worldAnswers, err = tpwj.EvalWorlds(q, pw, tpwj.MinimalSubtree)
			if err != nil {
				panic(err)
			}
		})

		rmc := rand.New(rand.NewSource(1))
		dMC := timeIt(5*time.Millisecond, func() {
			if _, err := tpwj.EvalFuzzyMonteCarlo(q, ft, 10000, rmc); err != nil {
				panic(err)
			}
		})

		// Commutation check.
		if len(fuzzyAnswers) != worldAnswers.Len() {
			t.OK = false
			t.Notes = append(t.Notes, fmt.Sprintf("m=%d: answer count mismatch", m))
		}
		for _, a := range fuzzyAnswers {
			if math.Abs(a.P-worldAnswers.ProbOf(a.Tree)) > 1e-9 {
				t.OK = false
				t.Notes = append(t.Notes, fmt.Sprintf("m=%d: probability mismatch", m))
				break
			}
		}
		t.AddRow(fmt.Sprint(m), fmt.Sprint(pwCount),
			us(dFuzzy)+" µs", us(dWorlds)+" µs", us(dMC)+" µs", ratio(dFuzzy, dWorlds))
	}
	t.Notes = append(t.Notes,
		"fuzzy == worlds on every instance (commutation theorem, slide 13)",
		"the worlds baseline scales with 2^events; direct fuzzy evaluation does not")
	return t
}

// RunE4 is E3 for updates: applying a transaction to the fuzzy tree
// versus applying it world by world.
func RunE4() *Table {
	t := &Table{
		ID:     "E4",
		Title:  "update application: fuzzy direct vs possible-worlds baseline",
		Ref:    "slide 14",
		Header: []string{"events", "conf", "fuzzy", "worlds baseline", "speedup"},
		OK:     true,
	}
	for _, m := range []int{2, 4, 6, 8, 10, 12} {
		ft, _ := e3Instance(m)
		// Insert a note under every section (one valuation per section).
		tx := update.New(tpwj.MustParseQuery("A(S $x)"), 0.9,
			update.Insert("x", tree.MustParse("N:new")))

		var viaFuzzy *worlds.Set
		dFuzzy := timeIt(5*time.Millisecond, func() {
			if _, _, err := tx.ApplyFuzzy(ft); err != nil {
				panic(err)
			}
		})
		// One more application for the correctness check.
		updated, _, err := tx.ApplyFuzzy(ft)
		if err == nil {
			viaFuzzy, err = updated.Expand()
		}
		if err != nil {
			t.OK = false
			t.Notes = append(t.Notes, err.Error())
			continue
		}

		var viaWorlds *worlds.Set
		dWorlds := timeIt(5*time.Millisecond, func() {
			pw, err := ft.Expand()
			if err != nil {
				panic(err)
			}
			viaWorlds, err = tx.ApplyWorlds(pw)
			if err != nil {
				panic(err)
			}
		})

		if !viaFuzzy.Equal(viaWorlds, 1e-9) {
			t.OK = false
			t.Notes = append(t.Notes, fmt.Sprintf("m=%d: commutation mismatch", m))
		}
		t.AddRow(fmt.Sprint(m), "0.9", us(dFuzzy)+" µs", us(dWorlds)+" µs", ratio(dFuzzy, dWorlds))
	}
	t.Notes = append(t.Notes, "fuzzy == worlds on every instance (commutation theorem, slide 14)")
	return t
}

// RunE5 measures the deletion blow-up the paper warns about: k
// deletions whose conditions depend on other nodes multiply conditioned
// copies (exponential), while self-contained deletions leave the size
// unchanged.
func RunE5() *Table {
	t := &Table{
		ID:     "E5",
		Title:  "deletion-induced growth: dependent vs independent deletions",
		Ref:    "slide 14",
		Header: []string{"k deletions", "dependent: nodes", "copies", "independent: nodes", "copies"},
		OK:     true,
	}
	prevGrowth := 0
	accelerating := true
	for _, k := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		dep := gen.DependentDeletions(k)
		depFinal, depStats, err := dep.Apply()
		if err != nil {
			t.OK = false
			t.Notes = append(t.Notes, err.Error())
			return t
		}
		depCopies := 0
		for _, s := range depStats {
			depCopies += s.Copies
		}

		ind := gen.IndependentDeletions(k)
		indFinal, indStats, err := ind.Apply()
		if err != nil {
			t.OK = false
			t.Notes = append(t.Notes, err.Error())
			return t
		}
		indCopies := 0
		for _, s := range indStats {
			indCopies += s.Copies
		}

		t.AddRow(fmt.Sprint(k),
			fmt.Sprintf("%d (from %d)", depFinal.Size(), dep.Doc.Size()), fmt.Sprint(depCopies),
			fmt.Sprintf("%d (from %d)", indFinal.Size(), ind.Doc.Size()), fmt.Sprint(indCopies))

		if k >= 2 {
			growth := depFinal.Size() - dep.Doc.Size()
			if growth <= prevGrowth {
				accelerating = false
			}
			prevGrowth = growth
		} else {
			prevGrowth = depFinal.Size() - dep.Doc.Size()
		}
		if indFinal.Size() != ind.Doc.Size() {
			t.OK = false
			t.Notes = append(t.Notes, "independent deletions changed the size")
		}
	}
	if !accelerating {
		t.OK = false
		t.Notes = append(t.Notes, "dependent growth did not accelerate")
	}
	t.Notes = append(t.Notes,
		"dependent deletions multiply conditioned copies (exponential growth, slide 14)",
		"independent deletions only rewrite conditions in place")
	return t
}

// RunE6 reproduces slide 15 literally and checks the exact output
// conditions.
func RunE6() *Table {
	t := &Table{
		ID:     "E6",
		Title:  "conditional replacement of C by D if B present, conf 0.9",
		Ref:    "slide 15",
		Header: []string{"", "paper", "measured"},
		OK:     true,
	}
	got, _, err := Slide15Tx().ApplyFuzzy(Slide15Doc())
	if err != nil {
		t.OK = false
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	want := fuzzy.MustParse("A(B[w1], C[!w1 w2], C[w1 w2 !w3], D[w1 w2 w3])")
	t.AddRow("result tree", fuzzy.Format(want), fuzzy.Format(got.Root))
	if !fuzzy.Equal(got.Root, want) {
		t.OK = false
	}
	p3, ok := got.Table.Prob("w3")
	t.AddRow("P(w3)", "0.9", fmt.Sprintf("%v (known=%v)", p3, ok))
	if !ok || p3 != 0.9 {
		t.OK = false
	}
	// Semantics: via fuzzy == via worlds.
	viaFuzzy, err1 := got.Expand()
	pw, err2 := Slide15Doc().Expand()
	if err1 != nil || err2 != nil {
		t.OK = false
		return t
	}
	viaWorlds, err := Slide15Tx().ApplyWorlds(pw)
	if err != nil || !viaFuzzy.Equal(viaWorlds, 1e-9) {
		t.OK = false
		t.Notes = append(t.Notes, "slide-15 commutation failed")
	} else {
		t.Notes = append(t.Notes, "commutation with possible-worlds semantics verified")
	}
	return t
}
