package exp

import (
	"context"
	"sort"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tpwj"
)

// TestExplainOverhead is the CI smoke for the cost-accounting contract:
// evaluating a query on a context carrying a per-request Cost
// accumulator must stay within 5% of the identical eval without one.
// The instrumented layers batch their charges (one deferred flush per
// evaluation, not one atomic per node), so the accumulator should be
// close to free. Methodology mirrors TestObsOverhead: back-to-back
// pairs so drift cancels, per-side medians so stalls drop out, retries
// because CI machines misbehave. Both sides use a cancellable context
// so the cancellation-polling cost is identical and only the cost
// accumulator differs.
func TestExplainOverhead(t *testing.T) {
	ft := SectionDoc(12)
	q := tpwj.MustParseQuery("A(//L $x)")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	evalOff := func() {
		if _, err := tpwj.EvalFuzzyContext(ctx, q, ft); err != nil {
			t.Fatal(err)
		}
	}
	evalOn := func() {
		if _, err := tpwj.EvalFuzzyContext(obs.ContextWithCost(ctx, obs.NewCost()), q, ft); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		evalOff()
		evalOn()
	}

	const pairs = 120
	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}

	const limit = 0.05
	var overhead float64
	for attempt := 0; attempt < 3; attempt++ {
		offs := make([]time.Duration, pairs)
		ons := make([]time.Duration, pairs)
		for i := 0; i < pairs; i++ {
			s := time.Now()
			evalOff()
			m := time.Now()
			evalOn()
			offs[i] = m.Sub(s)
			ons[i] = time.Since(m)
		}
		medOff, medOn := median(offs), median(ons)
		overhead = float64(medOn-medOff) / float64(medOff)
		t.Logf("attempt %d: off=%v on=%v overhead=%.2f%%", attempt, medOff, medOn, overhead*100)
		if overhead < limit {
			return
		}
	}
	t.Fatalf("cost-accounting overhead %.2f%% exceeds %.0f%%", overhead*100, limit*100)
}
