package exp

import (
	"strings"
	"testing"
)

// The fast experiments run as tests so that `go test ./...` exercises the
// harness end to end; the heavy sweeps (E2–E5, E8–E10) are covered by
// their building blocks' own tests and run via cmd/pxbench.

func TestRunE1Passes(t *testing.T) {
	tab := RunE1()
	if !tab.OK {
		t.Fatalf("E1 failed: %+v", tab)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestRunE6Passes(t *testing.T) {
	tab := RunE6()
	if !tab.OK {
		t.Fatalf("E6 failed: %+v", tab)
	}
}

func TestRunE7Passes(t *testing.T) {
	tab := RunE7()
	if !tab.OK {
		t.Fatalf("E7 failed: %+v", tab)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "EX",
		Title:  "demo",
		Ref:    "slide 0",
		Header: []string{"a", "b"},
		OK:     true,
		Notes:  []string{"a note"},
	}
	tab.AddRow("1", "22")
	tab.AddRow("333", "4")
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	for _, want := range []string{"EX", "demo", "PASS", "a note", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	tab.OK = false
	b.Reset()
	tab.Render(&b)
	if !strings.Contains(b.String(), "FAIL") {
		t.Error("failed table should render FAIL")
	}
}

func TestAllAndGet(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("experiments = %d, want 10", len(all))
	}
	ids := map[string]bool{}
	for _, e := range all {
		if e.Run == nil || e.ID == "" {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		ids[e.ID] = true
	}
	if Get("E5") == nil || Get("E5").ID != "E5" {
		t.Error("Get(E5) failed")
	}
	if Get("nope") != nil {
		t.Error("Get of unknown id should be nil")
	}
}

func TestSectionDoc(t *testing.T) {
	ft := SectionDoc(3)
	if err := ft.Validate(); err != nil {
		t.Fatal(err)
	}
	if ft.WorldCount() != 8 {
		t.Errorf("WorldCount = %d, want 8", ft.WorldCount())
	}
	if ft.Size() != 1+3*3 {
		t.Errorf("Size = %d", ft.Size())
	}
}

func TestSlideFixtures(t *testing.T) {
	for name, ft := range map[string]interface{ Validate() error }{
		"slide9":  Slide9Doc(),
		"slide12": Slide12Doc(),
		"slide15": Slide15Doc(),
	} {
		if err := ft.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if err := Slide15Tx().Validate(); err != nil {
		t.Errorf("slide15 tx: %v", err)
	}
}
