package exp

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestProbesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Probes() {
		if p.Name == "" || p.Run == nil {
			t.Fatalf("malformed probe %+v", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate probe name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestAblationDNFDeterministic(t *testing.T) {
	_, d1 := AblationDNF(10)
	_, d2 := AblationDNF(10)
	if d1.String() != d2.String() {
		t.Errorf("AblationDNF not deterministic:\n%s\n%s", d1, d2)
	}
}

func TestBenchReportJSONRoundTrip(t *testing.T) {
	rep := BenchReport{
		Date:      "2026-07-27",
		GoVersion: "go1.24",
		Benchmarks: []BenchResult{
			{Name: "probdnf/exact/events=14", Iterations: 1000, NsPerOp: 7432.5, AllocsPerOp: 22, BytesPerOp: 10264},
		},
		Experiments: []ExperimentResult{{ID: "E3", OK: true}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v\n%s", err, buf.String())
	}
	if len(back.Benchmarks) != 1 || back.Benchmarks[0].Name != "probdnf/exact/events=14" ||
		back.Benchmarks[0].AllocsPerOp != 22 {
		t.Errorf("round-trip lost data: %+v", back)
	}
	if len(back.Experiments) != 1 || !back.Experiments[0].OK {
		t.Errorf("round-trip lost experiments: %+v", back)
	}
}
