package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/keyword"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/store/filestore"
	"repro/internal/store/kv"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
	"repro/internal/vfs"
	"repro/internal/view"
)

// This file backs pxbench's machine-readable output (-json): a fixed
// set of named probes measured with testing.Benchmark, serialized as
// BENCH_<date>.json so the performance trajectory of the hot paths can
// be tracked across PRs. The probe shapes deliberately mirror the
// repository-root testing.B benchmarks (bench_test.go) so the two
// views stay comparable.

// Probe is one named micro-benchmark.
type Probe struct {
	Name string
	Run  func(b *testing.B)
}

// AblationDNF builds the ablation workload of BenchmarkAblationProbDNF:
// m events and m random two-literal clauses over them.
func AblationDNF(m int) (*event.Table, event.DNF) {
	tab := event.NewTable()
	r := rand.New(rand.NewSource(int64(m)))
	ids := make([]event.ID, 0, m)
	for i := 0; i < m; i++ {
		id, _ := tab.Fresh("e", 0.1+0.8*r.Float64())
		ids = append(ids, id)
	}
	var d event.DNF
	for i := 0; i < m; i++ {
		c := event.Cond(
			event.Literal{Event: ids[r.Intn(m)], Neg: r.Intn(2) == 0},
			event.Literal{Event: ids[r.Intn(m)], Neg: r.Intn(2) == 0},
		)
		d = append(d, c.Normalize())
	}
	return tab, d
}

// Probes returns the probe set: the exact probability engine against
// its brute-force oracle, Monte-Carlo estimation, the keyword-search
// engine (warm and cold index, both semantics), and the end-to-end
// fuzzy query and update paths that sit on top of them.
func Probes() []Probe {
	return []Probe{
		{"probdnf/exact/events=14", func(b *testing.B) {
			tab, d := AblationDNF(14)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tab.ProbDNF(d); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"probdnf/brute/events=14", func(b *testing.B) {
			tab, d := AblationDNF(14)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tab.ProbDNFBrute(d); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"probdnf/estimate/events=14/samples=10000", func(b *testing.B) {
			tab, d := AblationDNF(14)
			r := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tab.EstimateDNF(d, 10000, r); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"search/slca/warm/events=12", func(b *testing.B) {
			ft := SectionDoc(12)
			ix := keyword.NewIndex(ft)
			req := keyword.Request{Keywords: []string{"l", "m"}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := keyword.Search(ix, req); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"search/slca/cold/events=12", func(b *testing.B) {
			ft := SectionDoc(12)
			req := keyword.Request{Keywords: []string{"l", "m"}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := keyword.Search(keyword.NewIndex(ft), req); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"search/elca/warm/events=12", func(b *testing.B) {
			ft := SectionDoc(12)
			ix := keyword.NewIndex(ft)
			req := keyword.Request{Keywords: []string{"l", "m"}, Mode: keyword.ELCA}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := keyword.Search(ix, req); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"view/maintain/skip/sections=32", func(b *testing.B) {
			v, next, d := viewMaintenanceInstance(32, false)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := v.Maintain(next, d); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"view/maintain/incremental/sections=32", func(b *testing.B) {
			v, next, d := viewMaintenanceInstance(32, true)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := v.Maintain(next, d); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"view/maintain/recompute/sections=32", func(b *testing.B) {
			v, next, _ := viewMaintenanceInstance(32, true)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := view.Materialize(v.Def(), v.Query(), next); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"query/fuzzy/events=12", func(b *testing.B) {
			ft := SectionDoc(12)
			q := tpwj.MustParseQuery("A(//L $x)")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tpwj.EvalFuzzy(q, ft); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"obs/overhead/off/events=12", func(b *testing.B) {
			ft := SectionDoc(12)
			q := tpwj.MustParseQuery("A(//L $x)")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tpwj.EvalFuzzyContext(context.Background(), q, ft); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"obs/overhead/on/events=12", func(b *testing.B) {
			ft := SectionDoc(12)
			q := tpwj.MustParseQuery("A(//L $x)")
			record := obsStageRecorder()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := obsTracedEval(q, ft, record); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"obs/explain/off/events=12", func(b *testing.B) {
			ft := SectionDoc(12)
			q := tpwj.MustParseQuery("A(//L $x)")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tpwj.EvalFuzzyContext(ctx, q, ft); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"obs/explain/on/events=12", func(b *testing.B) {
			ft := SectionDoc(12)
			q := tpwj.MustParseQuery("A(//L $x)")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tpwj.EvalFuzzyContext(obs.ContextWithCost(ctx, obs.NewCost()), q, ft); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"fault/overhead/off/events=14", func(b *testing.B) {
			tab, d := AblationDNF(14)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tab.ProbDNF(d); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"fault/overhead/on/events=14", func(b *testing.B) {
			tab, d := AblationDNF(14)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tab.ProbDNFCtx(ctx, d); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"expand/worlds/events=12", func(b *testing.B) {
			ft := SectionDoc(12)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ft.Expand(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"store/filestore/append", func(b *testing.B) { benchStoreAppend(b, "filestore") }},
		{"store/kv/append", func(b *testing.B) { benchStoreAppend(b, "kv") }},
		{"store/filestore/recover", func(b *testing.B) { benchStoreRecover(b, "filestore") }},
		{"store/kv/recover", func(b *testing.B) { benchStoreRecover(b, "kv") }},
	}
}

// benchStoreNew builds one storage backend on the real filesystem —
// the store probes measure each backend's own framing, buffering and
// fsync behaviour, so a fake filesystem would defeat the point.
func benchStoreNew(backend, dir string) store.Store {
	if backend == "kv" {
		return kv.New(dir, vfs.OS)
	}
	return filestore.New(dir, vfs.OS)
}

// benchStoreDirSeq makes every probe invocation set up in a fresh
// directory: testing.Benchmark reruns the probe body with growing b.N
// against the same per-B temp dir, and reusing a directory would let
// one invocation's journal leak into the next invocation's setup.
var benchStoreDirSeq atomic.Int64

func benchStoreDir(b *testing.B) string {
	return filepath.Join(b.TempDir(), fmt.Sprintf("wh%d", benchStoreDirSeq.Add(1)))
}

// benchStoreAppend measures a backend's journal append path:
// Append+Flush per record with an fsync every 16 records, matching the
// warehouse's group-commit cadence (many writers share one Sync).
func benchStoreAppend(b *testing.B, backend string) {
	st := benchStoreNew(backend, benchStoreDir(b))
	_, lg, err := st.Open(json.Valid)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close() //nolint:errcheck // benchmark teardown
	defer lg.Close() //nolint:errcheck // benchmark teardown
	payload := []byte(`{"seq":1,"op":"update","doc":"bench","tx":"<insert/>","content":"<doc><a>payload</a></doc>"}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lg.Append(payload); err != nil {
			b.Fatal(err)
		}
		if err := lg.Flush(); err != nil {
			b.Fatal(err)
		}
		if (i+1)%16 == 0 {
			if err := lg.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchStoreRecover measures a backend's full recovery scan: Open on a
// directory holding 512 journal records and 8 documents. json.Valid
// stands in for the warehouse's record validator — the scanners only
// use it to tell a torn tail from a clean end.
func benchStoreRecover(b *testing.B, backend string) {
	st := benchStoreNew(backend, benchStoreDir(b))
	_, lg, err := st.Open(json.Valid)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close() //nolint:errcheck // benchmark teardown
	const records = 512
	for i := 0; i < records; i++ {
		p := fmt.Sprintf(`{"seq":%d,"op":"update","doc":"d%d","content":"<doc><a>%d</a></doc>"}`, i+1, i%8, i)
		if err := lg.Append([]byte(p)); err != nil {
			b.Fatal(err)
		}
	}
	if err := lg.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := st.WriteDoc(fmt.Sprintf("d%d", i), []byte("<doc><a>seed</a></doc>"), true); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payloads, relg, err := st.Open(json.Valid)
		if err != nil {
			b.Fatal(err)
		}
		if len(payloads) != records {
			b.Fatalf("recovered %d records, want %d", len(payloads), records)
		}
		if err := relg.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// obsStageRecorder models the server's trace onEnd hook: finished
// spans feed per-stage histograms on a live registry, with the handle
// cached after the first lookup (the benchmarks are single-goroutine,
// so a plain map stands in for the server's sync.Map).
func obsStageRecorder() func(name string, d time.Duration) {
	reg := obs.NewRegistry()
	hists := make(map[string]*obs.Histogram)
	return func(name string, d time.Duration) {
		h, ok := hists[name]
		if !ok {
			h = reg.Histogram("px_stage_seconds", "pipeline stage latency", obs.L("stage", name))
			hists[name] = h
		}
		h.Observe(d)
	}
}

// obsTracedEval runs one fully instrumented query evaluation: a fresh
// trace per call (as the server's middleware does per request), the
// eval recording its pipeline spans into it, each finished span
// feeding a histogram. The obs/overhead probe pair compares this
// against the identical eval on a context without a trace — the no-op
// instrumentation path.
func obsTracedEval(q *tpwj.Query, ft *fuzzy.Tree, record func(string, time.Duration)) error {
	_, root := obs.NewTrace("bench", record)
	ctx := obs.ContextWithSpan(context.Background(), root)
	_, err := tpwj.EvalFuzzyContext(ctx, q, ft)
	root.End()
	return err
}

// viewBenchDoc builds the view-maintenance workload document: m
// sections, each holding one distinct L value witnessed under k
// differently-conditioned G nodes (lits literals each, over a
// per-section pool of ev events). The view "A(S(G(L $x)))" then has m
// answers whose condition DNFs have k lits-literal clauses over up to
// ev events — condition structure heavy enough that exact probability
// computation dominates matching, i.e. the workload where materialized
// views earn their keep.
func viewBenchDoc(m, k, lits, ev int) *fuzzy.Tree {
	root := fuzzy.NewNode("A")
	tab := event.NewTable()
	r := rand.New(rand.NewSource(42))
	for i := 1; i <= m; i++ {
		ids := make([]event.ID, ev)
		for j := range ids {
			id, err := tab.Fresh("e", 0.2+0.6*r.Float64())
			if err != nil {
				panic(err)
			}
			ids[j] = id
		}
		sec := fuzzy.NewNode("S")
		for w := 0; w < k; w++ {
			var c event.Condition
			for l := 0; l < lits; l++ {
				c = append(c, event.Literal{Event: ids[r.Intn(ev)], Neg: r.Intn(2) == 0})
			}
			sec.Add(fuzzy.NewNode("G",
				fuzzy.NewLeaf("L", fmt.Sprintf("v%d", i)),
			).WithCond(c))
		}
		root.Add(sec)
	}
	return &fuzzy.Tree{Root: root, Table: tab}
}

// viewMaintenanceInstance builds the view-maintenance workload: a view
// over viewBenchDoc(m, 14, 6, 60), materialized, plus the post-state
// of one update and its footprint. With touching, the update inserts a
// fresh G(L) witness under one section — affecting one of the m
// answers, the shape where incremental maintenance should beat
// recomputing all m answer probabilities. Without, it inserts an
// unrelated label, which the overlap analysis proves harmless (the
// skip tier).
func viewMaintenanceInstance(m int, touching bool) (*view.View, *fuzzy.Tree, *view.Delta) {
	ft := viewBenchDoc(m, 14, 6, 60)
	def := view.Definition{Name: "bench", Query: "A(S(G(L $x)))"}
	q, err := def.Compile()
	if err != nil {
		panic(err)
	}
	v, err := view.Materialize(def, q, ft)
	if err != nil {
		panic(err)
	}
	var tx *update.Transaction
	if touching {
		tx = update.New(tpwj.MustParseQuery("A(S $s(G(L=v1)))"), 0.9,
			update.Insert("s", tree.MustParse("G(L:extra)")))
	} else {
		tx = update.New(tpwj.MustParseQuery("A $a"), 0.9,
			update.Insert("a", tree.MustParse("Z:zed")))
	}
	next, stats, err := tx.ApplyFuzzy(ft)
	if err != nil {
		panic(err)
	}
	return v, next, &view.Delta{
		InsertedLabels:    stats.InsertedLabels,
		DeleteTargetPaths: stats.DeleteTargetPaths,
	}
}

// BenchResult is one probe's measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// ExperimentResult is one experiment's pass/fail status.
type ExperimentResult struct {
	ID string `json:"id"`
	OK bool   `json:"ok"`
}

// BenchReport is the BENCH_<date>.json document (see README, section
// "Benchmark tracking").
type BenchReport struct {
	Date        string               `json:"date"`
	GoVersion   string               `json:"go_version"`
	Engine      event.EngineCounters `json:"engine_counters"`
	Benchmarks  []BenchResult        `json:"benchmarks"`
	Experiments []ExperimentResult   `json:"experiments,omitempty"`
	// Sim is a pxsim run result (workload throughput, per-route
	// latency percentiles on the shared obs bucket ladder, and the
	// self-verification audit), present when the report came from
	// pxsim rather than pxbench.
	Sim *sim.Report `json:"sim,omitempty"`
}

// SimBenchReport wraps a simulator run in the BENCH_<date>.json
// envelope without running the micro-benchmark probes: pxsim measures
// a live server, so the in-process probe timings would only add
// minutes of noise next to it. The engine counters come from the run's
// audit snapshot of the server's /stats — the engine work happened in
// the server process, so reading this process's counters (as RunProbes
// does) would report zeros.
func SimBenchReport(date string, sr *sim.Report) BenchReport {
	return BenchReport{Date: date, GoVersion: runtime.Version(), Engine: sr.Engine, Sim: sr}
}

// RunProbes measures every probe with testing.Benchmark and returns the
// report skeleton (Date and Experiments are filled by the caller). The
// engine counters accumulated while probing are included, giving a
// coarse view of memo and component behavior alongside the timings.
func RunProbes(date string) BenchReport {
	event.ResetEngineCounters()
	rep := BenchReport{Date: date, GoVersion: runtime.Version()}
	for _, p := range Probes() {
		res := testing.Benchmark(p.Run)
		rep.Benchmarks = append(rep.Benchmarks, BenchResult{
			Name:        p.Name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	rep.Engine = event.ReadEngineCounters()
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("exp: encoding bench report: %w", err)
	}
	return nil
}
