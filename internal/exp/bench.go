package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/event"
	"repro/internal/keyword"
	"repro/internal/tpwj"
)

// This file backs pxbench's machine-readable output (-json): a fixed
// set of named probes measured with testing.Benchmark, serialized as
// BENCH_<date>.json so the performance trajectory of the hot paths can
// be tracked across PRs. The probe shapes deliberately mirror the
// repository-root testing.B benchmarks (bench_test.go) so the two
// views stay comparable.

// Probe is one named micro-benchmark.
type Probe struct {
	Name string
	Run  func(b *testing.B)
}

// AblationDNF builds the ablation workload of BenchmarkAblationProbDNF:
// m events and m random two-literal clauses over them.
func AblationDNF(m int) (*event.Table, event.DNF) {
	tab := event.NewTable()
	r := rand.New(rand.NewSource(int64(m)))
	ids := make([]event.ID, 0, m)
	for i := 0; i < m; i++ {
		id, _ := tab.Fresh("e", 0.1+0.8*r.Float64())
		ids = append(ids, id)
	}
	var d event.DNF
	for i := 0; i < m; i++ {
		c := event.Cond(
			event.Literal{Event: ids[r.Intn(m)], Neg: r.Intn(2) == 0},
			event.Literal{Event: ids[r.Intn(m)], Neg: r.Intn(2) == 0},
		)
		d = append(d, c.Normalize())
	}
	return tab, d
}

// Probes returns the probe set: the exact probability engine against
// its brute-force oracle, Monte-Carlo estimation, the keyword-search
// engine (warm and cold index, both semantics), and the end-to-end
// fuzzy query and update paths that sit on top of them.
func Probes() []Probe {
	return []Probe{
		{"probdnf/exact/events=14", func(b *testing.B) {
			tab, d := AblationDNF(14)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tab.ProbDNF(d); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"probdnf/brute/events=14", func(b *testing.B) {
			tab, d := AblationDNF(14)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tab.ProbDNFBrute(d); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"probdnf/estimate/events=14/samples=10000", func(b *testing.B) {
			tab, d := AblationDNF(14)
			r := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tab.EstimateDNF(d, 10000, r); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"search/slca/warm/events=12", func(b *testing.B) {
			ft := SectionDoc(12)
			ix := keyword.NewIndex(ft)
			req := keyword.Request{Keywords: []string{"l", "m"}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := keyword.Search(ix, req); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"search/slca/cold/events=12", func(b *testing.B) {
			ft := SectionDoc(12)
			req := keyword.Request{Keywords: []string{"l", "m"}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := keyword.Search(keyword.NewIndex(ft), req); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"search/elca/warm/events=12", func(b *testing.B) {
			ft := SectionDoc(12)
			ix := keyword.NewIndex(ft)
			req := keyword.Request{Keywords: []string{"l", "m"}, Mode: keyword.ELCA}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := keyword.Search(ix, req); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"query/fuzzy/events=12", func(b *testing.B) {
			ft := SectionDoc(12)
			q := tpwj.MustParseQuery("A(//L $x)")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tpwj.EvalFuzzy(q, ft); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"expand/worlds/events=12", func(b *testing.B) {
			ft := SectionDoc(12)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ft.Expand(); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// BenchResult is one probe's measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// ExperimentResult is one experiment's pass/fail status.
type ExperimentResult struct {
	ID string `json:"id"`
	OK bool   `json:"ok"`
}

// BenchReport is the BENCH_<date>.json document (see README, section
// "Benchmark tracking").
type BenchReport struct {
	Date        string               `json:"date"`
	GoVersion   string               `json:"go_version"`
	Engine      event.EngineCounters `json:"engine_counters"`
	Benchmarks  []BenchResult        `json:"benchmarks"`
	Experiments []ExperimentResult   `json:"experiments,omitempty"`
}

// RunProbes measures every probe with testing.Benchmark and returns the
// report skeleton (Date and Experiments are filled by the caller). The
// engine counters accumulated while probing are included, giving a
// coarse view of memo and component behavior alongside the timings.
func RunProbes(date string) BenchReport {
	event.ResetEngineCounters()
	rep := BenchReport{Date: date, GoVersion: runtime.Version()}
	for _, p := range Probes() {
		res := testing.Benchmark(p.Run)
		rep.Benchmarks = append(rep.Benchmarks, BenchResult{
			Name:        p.Name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	rep.Engine = event.ReadEngineCounters()
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("exp: encoding bench report: %w", err)
	}
	return nil
}
