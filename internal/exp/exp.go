// Package exp is the experiment harness: every quantitative claim,
// worked example and theorem of the paper maps to one experiment
// (E1–E10, indexed in DESIGN.md), and each Run function regenerates the
// corresponding table. The cmd/pxbench binary renders them; the
// repository-root benchmarks measure the same code paths under
// testing.B.
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is one experiment's result in paper-table form.
type Table struct {
	ID     string
	Title  string
	Ref    string // paper locus (slide)
	Header []string
	Rows   [][]string
	Notes  []string
	// OK reports whether the experiment's correctness checks passed
	// (golden values, commutation, preservation properties).
	OK bool
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	status := "PASS"
	if !t.OK {
		status = "FAIL"
	}
	fmt.Fprintf(w, "%s — %s  [%s]  (%s)\n", t.ID, t.Title, status, t.Ref)

	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment pairs an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Table
}

// All returns the experiments in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "golden possible-worlds example (slide 9)", RunE1},
		{"E2", "fuzzy-tree semantics and expressiveness (slide 12)", RunE2},
		{"E3", "query commutation and complexity shape (slide 13)", RunE3},
		{"E4", "update commutation and cost (slide 14)", RunE4},
		{"E5", "deletion blow-up: dependent vs independent (slide 14)", RunE5},
		{"E6", "golden conditional replacement (slide 15)", RunE6},
		{"E7", "fuzzy data simplification (slide 19)", RunE7},
		{"E8", "warehouse throughput and durability (slides 3, 16)", RunE8},
		{"E9", "Monte-Carlo estimation accuracy (scalable fallback)", RunE9},
		{"E10", "query evaluation scaling (slides 6, 19)", RunE10},
	}
}

// Get returns the experiment with the given id, or nil.
func Get(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			ecopy := e
			return &ecopy
		}
	}
	return nil
}

// timeIt runs fn repeatedly until ~minDuration has elapsed and returns
// the mean duration per call.
func timeIt(minDuration time.Duration, fn func()) time.Duration {
	// One warm-up call (also captures one-shot costs).
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	if elapsed >= minDuration {
		return elapsed
	}
	n := 1
	total := elapsed
	for total < minDuration && n < 1<<20 {
		batch := n
		start = time.Now()
		for i := 0; i < batch; i++ {
			fn()
		}
		total += time.Since(start)
		n += batch
	}
	return total / time.Duration(n)
}

// us formats a duration as microseconds.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3)
}

// ratio formats a/b.
func ratio(a, b time.Duration) string {
	if a == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(b)/float64(a))
}
