package exp

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/gen"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
	"repro/internal/warehouse"
)

// RunE7 measures fuzzy-data simplification (the perspectives slide):
// sizes before and after, and semantic preservation.
func RunE7() *Table {
	t := &Table{
		ID:     "E7",
		Title:  "fuzzy data simplification",
		Ref:    "slide 19",
		Header: []string{"document", "nodes before", "nodes after", "changes", "time", "semantics"},
		OK:     true,
	}

	docs := []struct {
		name string
		ft   *fuzzy.Tree
	}{
		{"slide-15 output, w3 certain", slide15CertainOutput()},
		{"cleaning feed (n=6)", mustApply(gen.CleaningFeed(rand.New(rand.NewSource(3)), 6))},
		{"dependent deletions (k=5)", mustApply(gen.DependentDeletions(5))},
		{"random with redundancy", redundantFuzzy(rand.New(rand.NewSource(4)))},
	}
	for _, d := range docs {
		before, err := d.ft.Expand()
		if err != nil {
			t.OK = false
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		work := d.ft.Clone()
		sizeBefore := work.Size()
		var stats fuzzy.SimplifyStats
		dur := timeIt(2*time.Millisecond, func() {
			w2 := d.ft.Clone()
			stats = w2.Simplify()
			work = w2
		})
		after, err := work.Expand()
		preserved := err == nil && before.Equal(after, 1e-9)
		if !preserved {
			t.OK = false
		}
		t.AddRow(d.name, fmt.Sprint(sizeBefore), fmt.Sprint(work.Size()),
			fmt.Sprintf("%d", stats.Total()), us(dur)+" µs", fmt.Sprintf("preserved=%v", preserved))
	}
	t.Notes = append(t.Notes, "simplification never changes the possible-worlds semantics (tested)")
	return t
}

// slide15CertainOutput is the slide-15 result with the confidence event
// pinned to 1, which simplification can fold away.
func slide15CertainOutput() *fuzzy.Tree {
	return fuzzy.MustParseTree("A(B[w1], C[!w1 w2], C[w1 w2 !w3], D[w1 w2 w3])",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7, "w3": 1})
}

func mustApply(w *gen.Workload) *fuzzy.Tree {
	ft, _, err := w.Apply()
	if err != nil {
		panic(err)
	}
	return ft
}

// redundantFuzzy builds a random fuzzy tree and injects redundancy:
// every node's condition is duplicated onto its children.
func redundantFuzzy(r *rand.Rand) *fuzzy.Tree {
	ft := gen.Fuzzy(r, gen.FuzzyConfig{Events: 4, Tree: gen.TreeConfig{Depth: 4, MaxFanout: 3}})
	var push func(n *fuzzy.Node)
	push = func(n *fuzzy.Node) {
		for _, c := range n.Children {
			c.Cond = c.Cond.And(n.Cond)
			push(c)
		}
	}
	push(ft.Root)
	return ft
}

// RunE8 exercises the warehouse: bulk insertion throughput, query
// latency against document size, and recovery.
func RunE8() *Table {
	t := &Table{
		ID:     "E8",
		Title:  "warehouse: update throughput, query latency, durability",
		Ref:    "slides 3, 16",
		Header: []string{"doc nodes", "create", "update (tx)", "query", "reopen+recover"},
		OK:     true,
	}
	for _, n := range []int{100, 1000, 5000} {
		r := rand.New(rand.NewSource(int64(n)))
		data := gen.TreeOfSize(r, n, gen.TreeConfig{})
		ft := &fuzzy.Tree{Root: fuzzy.FromData(data), Table: event.NewTable()}

		dir, err := os.MkdirTemp("", "pxbench-wh-*")
		if err != nil {
			t.OK = false
			t.Notes = append(t.Notes, err.Error())
			return t
		}
		func() {
			defer os.RemoveAll(dir)
			w, err := warehouse.Open(dir)
			if err != nil {
				t.OK = false
				t.Notes = append(t.Notes, err.Error())
				return
			}

			start := time.Now()
			if err := w.Create("doc", ft); err != nil {
				t.OK = false
				t.Notes = append(t.Notes, err.Error())
				return
			}
			dCreate := time.Since(start)

			tx := update.New(tpwj.MustParseQuery("A $a"), 0.9,
				update.Insert("a", tree.MustParse("N:new")))
			start = time.Now()
			if _, err := w.Update("doc", tx); err != nil {
				t.OK = false
				t.Notes = append(t.Notes, err.Error())
				return
			}
			dUpdate := time.Since(start)

			q := tpwj.MustParseQuery("A(N $x)")
			var answers []tpwj.ProbAnswer
			dQuery := timeIt(2*time.Millisecond, func() {
				answers, err = w.Query("doc", q)
				if err != nil {
					panic(err)
				}
			})
			if len(answers) == 0 {
				t.OK = false
				t.Notes = append(t.Notes, "inserted node not found by query")
			}
			w.Close()

			start = time.Now()
			w2, err := warehouse.Open(dir)
			if err != nil {
				t.OK = false
				t.Notes = append(t.Notes, err.Error())
				return
			}
			if _, err := w2.Get("doc"); err != nil {
				t.OK = false
				t.Notes = append(t.Notes, "document lost after reopen")
			}
			dReopen := time.Since(start)
			w2.Close()

			t.AddRow(fmt.Sprint(n), us(dCreate)+" µs", us(dUpdate)+" µs",
				us(dQuery)+" µs", us(dReopen)+" µs")
		}()
	}
	t.Notes = append(t.Notes,
		"every update is journaled with its full post-state and applied with atomic file replacement")
	return t
}

// RunE9 measures Monte-Carlo probability estimation accuracy against the
// exact Shannon expansion, over random DNFs.
func RunE9() *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Monte-Carlo answer-probability estimation vs exact",
		Ref:    "slide 13 + perspectives",
		Header: []string{"samples", "mean |error|", "max |error|", "time per DNF"},
		OK:     true,
	}
	// A pool of random DNFs over 8 events.
	r := rand.New(rand.NewSource(9))
	tab := event.NewTable()
	var ids []event.ID
	for i := 0; i < 8; i++ {
		id, _ := tab.Fresh("e", 0.1+0.8*r.Float64())
		ids = append(ids, id)
	}
	randDNF := func() event.DNF {
		var d event.DNF
		k := 2 + r.Intn(6)
		for i := 0; i < k; i++ {
			var c event.Condition
			m := 1 + r.Intn(3)
			for j := 0; j < m; j++ {
				c = append(c, event.Literal{Event: ids[r.Intn(len(ids))], Neg: r.Intn(2) == 0})
			}
			d = append(d, c.Normalize())
		}
		return d
	}
	const pool = 20
	dnfs := make([]event.DNF, pool)
	exact := make([]float64, pool)
	for i := range dnfs {
		dnfs[i] = randDNF()
		p, err := tab.ProbDNF(dnfs[i])
		if err != nil {
			panic(err)
		}
		exact[i] = p
	}

	for _, samples := range []int{100, 1000, 10000, 100000} {
		var meanErr, maxErr float64
		rmc := rand.New(rand.NewSource(int64(samples)))
		start := time.Now()
		for i, d := range dnfs {
			est, err := tab.EstimateDNF(d, samples, rmc)
			if err != nil {
				panic(err)
			}
			e := math.Abs(est - exact[i])
			meanErr += e
			if e > maxErr {
				maxErr = e
			}
		}
		elapsed := time.Since(start) / pool
		meanErr /= pool
		t.AddRow(fmt.Sprint(samples), fmt.Sprintf("%.5f", meanErr),
			fmt.Sprintf("%.5f", maxErr), us(elapsed)+" µs")
		// 1/sqrt(n) convergence: at 100k samples the mean error should
		// be well below 1%.
		if samples == 100000 && meanErr > 0.01 {
			t.OK = false
			t.Notes = append(t.Notes, "Monte-Carlo did not converge")
		}
	}
	t.Notes = append(t.Notes, "error shrinks as 1/sqrt(samples); exact Shannon expansion is the reference")
	return t
}

// RunE10 measures query-evaluation scaling in document size, pattern
// size, and joins (complexity analysis, perspectives slide).
func RunE10() *Table {
	t := &Table{
		ID:     "E10",
		Title:  "query evaluation scaling (plain evaluation)",
		Ref:    "slides 6, 19",
		Header: []string{"doc nodes", "pattern", "joins", "matches", "time"},
		OK:     true,
	}
	patterns := []struct {
		name  string
		query string
	}{
		{"//leaf", "//C $x"},
		{"chain-3", "A(//C $x(//E $y))"},
		{"star-2", "A(//B $x, //C $y)"},
		{"join", "A(//B $x, //C $y) where $x = $y"},
	}
	for _, n := range []int{100, 1000, 10000} {
		r := rand.New(rand.NewSource(int64(n)))
		doc := gen.TreeOfSize(r, n, gen.TreeConfig{})
		ix := tree.NewIndex(doc)
		for _, p := range patterns {
			q := tpwj.MustParseQuery(p.query)
			var matches int
			d := timeIt(3*time.Millisecond, func() {
				m, err := tpwj.CountMatches(q, ix)
				if err != nil {
					panic(err)
				}
				matches = m
			})
			t.AddRow(fmt.Sprint(n), p.name, fmt.Sprint(len(q.Joins)),
				fmt.Sprint(matches), us(d)+" µs")
		}
	}
	t.Notes = append(t.Notes,
		"evaluation is polynomial in document size for fixed patterns; join selectivity dominates the star/join shapes")
	return t
}
