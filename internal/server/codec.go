package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/keyword"
	"repro/internal/obs"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
	"repro/internal/warehouse"
	"repro/internal/xupdate"
)

// QueryRequest is the POST /docs/{name}/query body.
type QueryRequest struct {
	// Query is the query text, in the TPWJ syntax by default:
	// "A(B $x, C(//D=val $y)) where $x = $y".
	Query string `json:"query"`
	// Syntax selects the query language: "tpwj" (default) or "xpath".
	Syntax string `json:"syntax,omitempty"`
	// Mode selects probability computation: "exact" (default) or "mc"
	// for Monte-Carlo estimation.
	Mode string `json:"mode,omitempty"`
	// Samples is the Monte-Carlo sample count (mode "mc" only);
	// defaults to 1000.
	Samples int `json:"samples,omitempty"`
	// Seed makes Monte-Carlo estimation reproducible (mode "mc" only);
	// defaults to 1 so identical requests are cacheable.
	Seed int64 `json:"seed,omitempty"`
}

// Answer is one query answer: its probability, the answer tree in the
// compact text format, and the condition under which it appears.
type Answer struct {
	P         float64 `json:"p"`
	Tree      string  `json:"tree"`
	Condition string  `json:"condition,omitempty"`
}

// QueryResponse is the POST /docs/{name}/query response body.
type QueryResponse struct {
	Answers []Answer `json:"answers"`
	Count   int      `json:"count"`
	// Cached reports whether the answers came from the result cache.
	Cached bool `json:"cached"`
	// Trace is the request's span tree, present only when the request
	// asked for it with ?trace=1.
	Trace *obs.SpanSnapshot `json:"trace,omitempty"`
	// Explain is the cost breakdown and plan summary, present only when
	// the request asked for it with ?explain=1.
	Explain *ExplainInfo `json:"explain,omitempty"`
}

// ExplainInfo is the ?explain=1 payload: the request's cost-accounting
// breakdown (the same categories /metrics accumulates process-wide —
// see docs/OBSERVABILITY.md for the catalog) and a plan summary. On a
// cache hit the plan is omitted: no evaluation ran, and the cost shows
// cache_hits=1 and nothing else.
type ExplainInfo struct {
	Cost obs.CostSnapshot `json:"cost"`
	Plan *ExplainPlan     `json:"plan,omitempty"`
}

// ExplainPlan summarizes how the request was evaluated.
type ExplainPlan struct {
	// Mode is "exact" (Shannon expansion) or "mc" (Monte-Carlo
	// estimation); Reason states why that mode ran.
	Mode   string `json:"mode"`
	Reason string `json:"reason"`
	// Samples is the Monte-Carlo sample count (mode "mc" only).
	Samples int `json:"samples,omitempty"`
	// Answers summarizes each answer's condition (queries and views).
	Answers []AnswerPlan `json:"answers,omitempty"`
	// Candidates / Pruned report the keyword evaluator's working set and
	// how much of it the MinProb bound eliminated (searches only).
	Candidates int `json:"candidates,omitempty"`
	Pruned     int `json:"pruned,omitempty"`
	// Stale marks a view read served from the previous maintained state
	// (view reads only).
	Stale bool `json:"stale,omitempty"`
}

// AnswerPlan summarizes one answer's condition: how many clauses its
// DNF holds, the widest clause, the distinct events involved, and
// whether negation forced a general Boolean formula instead of a DNF.
type AnswerPlan struct {
	DNFClauses int  `json:"dnf_clauses"`
	DNFWidth   int  `json:"dnf_width"`
	Events     int  `json:"events"`
	Formula    bool `json:"formula,omitempty"`
}

// answerPlans summarizes raw evaluator answers for an explain payload.
func answerPlans(answers []tpwj.ProbAnswer) []AnswerPlan {
	out := make([]AnswerPlan, len(answers))
	for i, a := range answers {
		p := AnswerPlan{}
		if a.Cond != nil {
			p.DNFClauses = len(a.Cond)
			for _, c := range a.Cond {
				if len(c) > p.DNFWidth {
					p.DNFWidth = len(c)
				}
			}
			p.Events = len(a.Cond.Events())
		} else if a.Formula != nil {
			p.Formula = true
			p.Events = len(a.Formula.Events())
		}
		out[i] = p
	}
	return out
}

// SearchRequest is the POST /docs/{name}/search body.
type SearchRequest struct {
	// Keywords are the required search terms; each is tokenized
	// (lowercase alphanumeric runs) and all resulting tokens are
	// required.
	Keywords []string `json:"keywords"`
	// Mode selects the answer semantics: "slca" (default) or "elca".
	Mode string `json:"mode,omitempty"`
	// Prob selects probability computation: "exact" (default) or "mc".
	Prob string `json:"prob,omitempty"`
	// Samples is the Monte-Carlo world count (prob "mc" only);
	// defaults to 1000.
	Samples int `json:"samples,omitempty"`
	// Seed makes Monte-Carlo estimation reproducible (prob "mc" only);
	// defaults to 1 so identical requests are cacheable.
	Seed int64 `json:"seed,omitempty"`
	// MinProb drops answers below the threshold and lets the evaluator
	// prune candidates early using its monotone upper bound.
	MinProb float64 `json:"min_prob,omitempty"`
	// TopK keeps only the K most probable answers when positive.
	TopK int `json:"top_k,omitempty"`
}

// SearchAnswer is one keyword-search answer on the wire.
type SearchAnswer struct {
	P         float64 `json:"p"`
	Pre       int     `json:"pre"`
	Path      string  `json:"path"`
	Label     string  `json:"label"`
	Value     string  `json:"value,omitempty"`
	Witnesses int     `json:"witnesses"`
}

// SearchResponse is the POST /docs/{name}/search response body.
type SearchResponse struct {
	Answers    []SearchAnswer `json:"answers"`
	Count      int            `json:"count"`
	Candidates int            `json:"candidates"`
	Pruned     int            `json:"pruned"`
	// Cached reports whether the answers came from the result cache.
	Cached bool `json:"cached"`
	// Trace is the request's span tree, present only when the request
	// asked for it with ?trace=1.
	Trace *obs.SpanSnapshot `json:"trace,omitempty"`
	// Explain is the cost breakdown and plan summary, present only when
	// the request asked for it with ?explain=1.
	Explain *ExplainInfo `json:"explain,omitempty"`
}

// TracesResponse is the GET /debug/traces response body: the most
// recent request traces, newest first.
type TracesResponse struct {
	Traces []obs.TraceRecord `json:"traces"`
	Count  int               `json:"count"`
}

// ViewRequest is the PUT /docs/{name}/views/{view} body.
type ViewRequest struct {
	// Query is the view's query text.
	Query string `json:"query"`
	// Syntax selects the query language: "tpwj" (default) or "xpath".
	Syntax string `json:"syntax,omitempty"`
}

// ViewInfo is one registered view in a GET /docs/{name}/views listing.
type ViewInfo struct {
	Name   string `json:"name"`
	Query  string `json:"query"`
	Syntax string `json:"syntax,omitempty"`
}

// ViewListResponse is the GET /docs/{name}/views response body.
type ViewListResponse struct {
	Views []ViewInfo `json:"views"`
}

// ViewResponse is the GET (and PUT) /docs/{name}/views/{view} response
// body: the definition and the incrementally maintained answers.
type ViewResponse struct {
	Name    string   `json:"name"`
	Query   string   `json:"query"`
	Syntax  string   `json:"syntax,omitempty"`
	Answers []Answer `json:"answers"`
	Count   int      `json:"count"`
	// Stale reports that a maintenance pass was in flight when the
	// answers were read: they are the complete result against the
	// document as of the last finished pass, not the mutation being
	// applied. Reads never block on writers.
	Stale bool `json:"stale"`
	// Trace is the request's span tree, present only when the request
	// asked for it with ?trace=1.
	Trace *obs.SpanSnapshot `json:"trace,omitempty"`
	// Explain is the cost breakdown and plan summary, present only when
	// the request asked for it with ?explain=1.
	Explain *ExplainInfo `json:"explain,omitempty"`
}

// encodeView converts a warehouse view read to its wire form.
func encodeView(res *warehouse.ViewResult) ViewResponse {
	return ViewResponse{
		Name:    res.Name,
		Query:   res.Query,
		Syntax:  res.Syntax,
		Answers: encodeAnswers(res.Answers),
		Count:   len(res.Answers),
		Stale:   res.Stale,
	}
}

// UpdateOp is one elementary operation of a textual update request.
type UpdateOp struct {
	// Op is "insert" or "delete".
	Op string `json:"op"`
	// Var names the query variable the operation targets ("x" or "$x").
	Var string `json:"var"`
	// Tree is the inserted subtree in the compact text format
	// ("B(C:foo)"); insert only.
	Tree string `json:"tree,omitempty"`
}

// UpdateRequest is the POST /docs/{name}/update body. Exactly one of
// the two forms must be used: TxXML carrying an XUpdate-style
// <transaction> document, or the textual form (Query, Confidence, Ops).
type UpdateRequest struct {
	TxXML      string     `json:"tx_xml,omitempty"`
	Query      string     `json:"query,omitempty"`
	Confidence float64    `json:"confidence,omitempty"`
	Ops        []UpdateOp `json:"ops,omitempty"`
}

// UpdateResponse reports what applying the transaction did.
type UpdateResponse struct {
	Valuations      int    `json:"valuations"`
	Inserted        int    `json:"inserted"`
	DeletedOutright int    `json:"deleted_outright"`
	Copies          int    `json:"copies"`
	Event           string `json:"event,omitempty"`
}

// SimplifyResponse reports what simplification removed.
type SimplifyResponse struct {
	NodesRemoved    int `json:"nodes_removed"`
	LiteralsRemoved int `json:"literals_removed"`
	SiblingsMerged  int `json:"siblings_merged"`
	EventsRemoved   int `json:"events_removed"`
}

// DocInfo is the GET /docs/{name}/stat response body and the PUT
// response body.
type DocInfo struct {
	Name   string `json:"name"`
	Nodes  int    `json:"nodes"`
	Events int    `json:"events"`
	Worlds int64  `json:"worlds"`
}

// ListResponse is the GET /docs response body.
type ListResponse struct {
	Documents []string `json:"documents"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// toTransaction builds the update transaction from either request form.
func (req *UpdateRequest) toTransaction() (*update.Transaction, error) {
	hasXML := req.TxXML != ""
	hasText := req.Query != "" || len(req.Ops) > 0
	switch {
	case hasXML && hasText:
		return nil, errors.New("use either tx_xml or query/confidence/ops, not both")
	case hasXML:
		return xupdate.ParseTransaction([]byte(req.TxXML))
	case hasText:
		q, err := tpwj.ParseQuery(req.Query)
		if err != nil {
			return nil, err
		}
		ops := make([]update.Op, len(req.Ops))
		for i, op := range req.Ops {
			varName := strings.TrimPrefix(op.Var, "$")
			switch op.Op {
			case "insert":
				sub, err := tree.Parse(op.Tree)
				if err != nil {
					return nil, fmt.Errorf("op %d: %w", i, err)
				}
				ops[i] = update.Insert(varName, sub)
			case "delete":
				ops[i] = update.Delete(varName)
			default:
				return nil, fmt.Errorf("op %d: unknown op %q (want insert or delete)", i, op.Op)
			}
		}
		tx := update.New(q, req.Confidence, ops...)
		if err := tx.Validate(); err != nil {
			return nil, err
		}
		return tx, nil
	default:
		return nil, errors.New("empty update: provide tx_xml or query/confidence/ops")
	}
}

// encodeAnswers converts evaluator answers to their wire form.
func encodeAnswers(answers []tpwj.ProbAnswer) []Answer {
	out := make([]Answer, len(answers))
	for i, a := range answers {
		out[i] = Answer{P: a.P, Tree: tree.Format(a.Tree)}
		switch {
		case a.Cond != nil:
			out[i].Condition = a.Cond.String()
		case a.Formula != nil:
			out[i].Condition = a.Formula.String()
		}
	}
	return out
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone anyway
}

// readJSON decodes the request body into v. Unknown fields are
// rejected, so a typo'd parameter ("minprob" for "min_prob") fails with
// 400 instead of silently running with the default; so is trailing
// content after the JSON value, which would otherwise be ignored.
func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return errors.New("invalid JSON body: trailing content after the request object")
	}
	return nil
}

// encodeSearchAnswers converts evaluator answers to their wire form.
func encodeSearchAnswers(answers []keyword.Answer) []SearchAnswer {
	out := make([]SearchAnswer, len(answers))
	for i, a := range answers {
		out[i] = SearchAnswer{
			P:         a.P,
			Pre:       a.Pre,
			Path:      a.Path,
			Label:     a.Label,
			Value:     a.Value,
			Witnesses: a.Witnesses,
		}
	}
	return out
}
