package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/vfs"
	"repro/internal/warehouse"
	"repro/internal/xmlio"
)

// metricValue fetches /metrics and returns the value of one exposition
// line by exact name (including any {label="..."} set), or 0 when the
// line is absent.
func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	status, body := do(t, "GET", ts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /metrics = %d", status)
	}
	for _, line := range strings.Split(string(body), "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("parse metric line %q: %v", line, err)
		}
		return v
	}
	return 0
}

// slowDocXML builds a document whose queries are expensive: n sibling
// B leaves, each conditioned on its own event, so a match set carries n
// independent answers and Monte-Carlo estimation burns through
// samples × answers worlds.
func slowDocXML(t *testing.T, n int) []byte {
	t.Helper()
	var sb strings.Builder
	probs := make(map[event.ID]float64, n)
	sb.WriteString("A(")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		id := event.ID(fmt.Sprintf("w%03d", i))
		fmt.Fprintf(&sb, "B[%s]:v%d", id, i)
		probs[id] = 0.5
	}
	sb.WriteString(")")
	ft := fuzzy.MustParseTree(sb.String(), probs)
	data, err := xmlio.DocXML(ft)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// slowQuery is an MC query over the slow document that runs for
// hundreds of milliseconds: 200 answers × 1e6 samples.
func slowQuery() QueryRequest {
	return QueryRequest{Query: "A(B $b)", Mode: "mc", Samples: 1_000_000}
}

// TestDegradedEndToEnd is the acceptance scenario of the degradation
// tentpole over HTTP: an injected fsync failure degrades the warehouse;
// writes answer 503 with Retry-After while reads keep serving; the
// readiness probe flips to 503 while liveness stays 200; clearing the
// fault and POST /admin/reopen restores full service.
func TestDegradedEndToEnd(t *testing.T) {
	inj := vfs.NewInjector()
	wh, err := warehouse.OpenFS(t.TempDir(), vfs.NewFaultFS(vfs.OS, inj))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wh.Close() })
	ts := httptest.NewServer(New(wh, Options{}))
	t.Cleanup(ts.Close)

	if status, body := do(t, "PUT", ts.URL+"/docs/ex", sampleDocXML(t)); status != http.StatusCreated {
		t.Fatalf("PUT = %d, body %s", status, body)
	}
	update := UpdateRequest{
		Query:      "A $a",
		Confidence: 1,
		Ops:        []UpdateOp{{Op: "insert", Var: "a", Tree: "N"}},
	}

	// The op that hits the injected fsync failure reports the raw
	// storage error (500: the write may be torn, nothing friendlier to
	// say); every write after it gets the typed degraded rejection.
	inj.Set("journal.sync", vfs.Fault{Count: 1})
	if status := doJSON(t, "POST", ts.URL+"/docs/ex/update", update, nil); status != http.StatusInternalServerError {
		t.Fatalf("update during fsync fault = %d, want 500", status)
	}
	if deg, reason := wh.Degraded(); !deg || !strings.Contains(reason, "journal") {
		t.Fatalf("Degraded() = %v, %q; want degraded with a journal reason", deg, reason)
	}

	req, err := http.NewRequest("POST", ts.URL+"/docs/ex/update", bytes.NewReader(mustJSON(t, update)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("update while degraded = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Errorf("degraded Retry-After = %q, want \"30\"", got)
	}

	// Reads keep serving from the in-memory state.
	if status, _ := do(t, "GET", ts.URL+"/docs/ex", nil); status != http.StatusOK {
		t.Errorf("GET doc while degraded = %d, want 200", status)
	}
	if status, _ := query(t, ts, "ex", QueryRequest{Query: "A(B $b)"}); status != http.StatusOK {
		t.Errorf("query while degraded = %d, want 200", status)
	}

	// Probes: not-ready but alive; /stats and /metrics report it.
	if status, _ := do(t, "GET", ts.URL+"/readyz", nil); status != http.StatusServiceUnavailable {
		t.Errorf("GET /readyz while degraded = %d, want 503", status)
	}
	if status, _ := do(t, "GET", ts.URL+"/healthz", nil); status != http.StatusOK {
		t.Errorf("GET /healthz while degraded = %d, want 200", status)
	}
	if snap := serverStats(t, ts); !snap.Degraded {
		t.Errorf("/stats Degraded = false while degraded")
	}
	if v := metricValue(t, ts, "px_degraded"); v != 1 {
		t.Errorf("px_degraded = %v while degraded, want 1", v)
	}
	if v := metricValue(t, ts, "px_degraded_rejections_total"); v < 1 {
		t.Errorf("px_degraded_rejections_total = %v, want >= 1", v)
	}

	// Recovery: the fault healed itself (Count: 1); reopen replays the
	// journal and clears degraded mode.
	if status, body := do(t, "POST", ts.URL+"/admin/reopen", nil); status != http.StatusOK {
		t.Fatalf("POST /admin/reopen = %d, body %s", status, body)
	}
	if status, _ := do(t, "GET", ts.URL+"/readyz", nil); status != http.StatusOK {
		t.Errorf("GET /readyz after reopen = %d, want 200", status)
	}
	if v := metricValue(t, ts, "px_degraded"); v != 0 {
		t.Errorf("px_degraded = %v after reopen, want 0", v)
	}
	if status := doJSON(t, "POST", ts.URL+"/docs/ex/update", update, nil); status != http.StatusOK {
		t.Errorf("update after reopen = %d, want 200", status)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestClientDisconnectCancelsEvaluation: closing the client connection
// mid-evaluation must stop the engine (asserted via the disconnect
// cancellation counter — the 499 itself goes nowhere).
func TestClientDisconnectCancelsEvaluation(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	if status, body := do(t, "PUT", ts.URL+"/docs/slow", slowDocXML(t, 200)); status != http.StatusCreated {
		t.Fatalf("PUT = %d, body %s", status, body)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST",
		ts.URL+"/docs/slow/query", bytes.NewReader(mustJSON(t, slowQuery())))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			// The evaluation finished before the cancel landed; the
			// counter check below will report it.
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	<-done

	deadline := time.Now().Add(5 * time.Second)
	for {
		if metricValue(t, ts, `px_cancellations_total{reason="disconnect"}`) >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("disconnect cancellation counter never incremented")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRequestTimeout: with RequestTimeout set, a long evaluation is
// aborted and reported as a typed 503, counted separately from client
// disconnects.
func TestRequestTimeout(t *testing.T) {
	ts, _ := newTestServer(t, Options{RequestTimeout: 50 * time.Millisecond})
	if status, body := do(t, "PUT", ts.URL+"/docs/slow", slowDocXML(t, 200)); status != http.StatusCreated {
		t.Fatalf("PUT = %d, body %s", status, body)
	}
	status, body := do(t, "POST", ts.URL+"/docs/slow/query", mustJSON(t, slowQuery()))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("slow query with 50ms timeout = %d, body %s; want 503", status, body)
	}
	if !strings.Contains(string(body), "timed out") {
		t.Errorf("timeout body %q does not mention the timeout", body)
	}
	if v := metricValue(t, ts, `px_cancellations_total{reason="timeout"}`); v < 1 {
		t.Errorf("timeout cancellation counter = %v, want >= 1", v)
	}
}

// TestExemptRoutesServeWhileSaturated pins the satellite (f) bugfix:
// with every worker slot occupied, the observability routes must keep
// answering — they are exactly what an operator needs during overload.
// Saturation is deterministic: PUT requests with pipe bodies hold their
// in-flight slots inside io.ReadAll until the pipes close.
func TestExemptRoutesServeWhileSaturated(t *testing.T) {
	ts, _ := newTestServer(t, Options{MaxInFlight: 2})

	var pipes []*io.PipeWriter
	var dones []chan struct{}
	for i := 0; i < 2; i++ {
		pr, pw := io.Pipe()
		pipes = append(pipes, pw)
		done := make(chan struct{})
		dones = append(dones, done)
		url := fmt.Sprintf("%s/docs/held%d", ts.URL, i)
		go func() {
			defer close(done)
			req, err := http.NewRequest("PUT", url, pr)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}()
	}
	t.Cleanup(func() {
		for _, pw := range pipes {
			pw.Close()
		}
		for _, done := range dones {
			<-done
		}
	})

	// Wait until both slots are provably held: a plain read sheds 429.
	var sawRetryAfter string
	deadline := time.Now().Add(5 * time.Second)
	for {
		req, err := http.NewRequest("GET", ts.URL+"/docs", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			sawRetryAfter = resp.Header.Get("Retry-After")
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never saturated: GET /docs kept answering")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sawRetryAfter != "1" {
		t.Errorf("429 Retry-After = %q, want \"1\"", sawRetryAfter)
	}

	// The exempt routes still answer while the cap is exhausted.
	for _, path := range []string{"/stats", "/metrics", "/healthz", "/readyz"} {
		if status, body := do(t, "GET", ts.URL+path, nil); status != http.StatusOK {
			t.Errorf("GET %s while saturated = %d, body %s; want 200", path, status, body)
		}
	}
	if v := metricValue(t, ts, "px_load_shed_total"); v < 1 {
		t.Errorf("px_load_shed_total = %v, want >= 1", v)
	}

	// Release the held slots; normal service resumes.
	for _, pw := range pipes {
		pw.Close()
	}
	for _, done := range dones {
		<-done
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		if status, _ := do(t, "GET", ts.URL+"/docs", nil); status == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("GET /docs never recovered after releasing the slots")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
