// Package server exposes a warehouse.Warehouse over an HTTP/JSON API:
// the multi-client front end of the paper's probabilistic XML warehouse
// architecture.
//
// Routes:
//
//	GET    /docs                  list document names
//	PUT    /docs/{name}           create a document from a <pxml> body
//	GET    /docs/{name}           fetch the document as <pxml> XML
//	DELETE /docs/{name}           drop the document
//	GET    /docs/{name}/stat      node/event/world counts
//	POST   /docs/{name}/query     evaluate a TPWJ or XPath query
//	POST   /docs/{name}/search    probabilistic keyword search (SLCA/ELCA)
//	POST   /docs/{name}/update    apply a probabilistic transaction
//	POST   /docs/{name}/simplify  run simplification passes
//	GET    /docs/{name}/views             list materialized views
//	PUT    /docs/{name}/views/{view}      register a materialized view
//	GET    /docs/{name}/views/{view}      read a view's maintained answers
//	DELETE /docs/{name}/views/{view}      drop a view
//	POST   /admin/compact         truncate the journal
//	POST   /admin/reopen          re-run recovery, clearing degraded mode
//	GET    /stats                 request, cache, engine, journal, search and view counters
//	GET    /metrics               Prometheus text exposition of the same counters
//	GET    /debug/traces          ring buffer of recent request traces (opt-in, see Options.ExposeDebugTraces)
//	GET    /healthz               liveness probe
//	GET    /readyz                readiness probe (503 while degraded)
//
// Query and search results are served from an LRU cache keyed by
// (document, canonical query or keyword set, mode); any mutation of a
// document drops its entries. Materialized views are not cached here:
// the warehouse keeps them incrementally maintained, and view reads
// never block on an in-flight update — they return the previous answer
// set with "stale": true instead.
// Errors are reported as {"error": "..."} with conventional status
// codes (400 bad input, 404 missing document, 409 name conflict).
//
// Every request runs under an obs trace: the middleware opens a span
// tree, the pipeline below (warehouse snapshot fetch, symbolic match,
// DNF compile, probability evaluation, keyword search, journal writes,
// view maintenance) records timed spans into it, and the finished tree
// lands in the /debug/traces ring. Appending ?trace=1 to a query or
// search request echoes the tree in the response; requests slower than
// Options.SlowQueryThreshold are logged with their span breakdown. See
// docs/OBSERVABILITY.md.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"repro/internal/keyword"
	"repro/internal/obs"
	"repro/internal/tpwj"
	"repro/internal/warehouse"
	"repro/internal/xmlio"
	"repro/internal/xpath"
)

// DefaultCacheSize is the query-result cache capacity used when
// Options.CacheSize is zero.
const DefaultCacheSize = 256

// DefaultMaxBodyBytes bounds request bodies (documents, queries,
// updates) when Options.MaxBodyBytes is zero.
const DefaultMaxBodyBytes = 64 << 20

// MaxSamples bounds the Monte-Carlo sample count a single query
// request may demand, so one client cannot monopolize the server's CPU
// with an absurd samples value.
const MaxSamples = 1_000_000

// DefaultTraceRingSize is the number of recent request traces retained
// for GET /debug/traces when Options.TraceRingSize is zero.
const DefaultTraceRingSize = 64

// Options configures a Server.
type Options struct {
	// CacheSize is the query-result cache capacity in entries. Zero
	// selects DefaultCacheSize; a negative value disables the cache.
	CacheSize int
	// MaxBodyBytes bounds request bodies. Zero selects
	// DefaultMaxBodyBytes. Oversized requests get 413.
	MaxBodyBytes int64
	// Logf, when set, receives one line per request.
	Logf func(format string, args ...any)
	// SlowQueryThreshold, when positive, makes the server log every
	// request that takes at least this long, with its span breakdown.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives the slow-request records; nil selects
	// slog.Default().
	SlowQueryLog *slog.Logger
	// TraceRingSize is the number of recent request traces retained
	// for GET /debug/traces. Zero selects DefaultTraceRingSize; a
	// negative value disables the ring.
	TraceRingSize int
	// ExposeDebugTraces registers GET /debug/traces on the main mux.
	// Off by default: recent request paths and timings are operator
	// data, so like pprof they belong on a private debug listener —
	// mount TracesHandler there instead (pxserve serves it on the
	// -pprof address).
	ExposeDebugTraces bool
	// RequestTimeout, when positive, bounds each request's evaluation:
	// the request context is cancelled after this long, the evaluation
	// pipeline aborts at its next cancellation check, and the client
	// gets 503 with a typed timeout error (distinct from a client
	// disconnect, which is counted separately and never produces a
	// visible response). Observability routes (/stats, /metrics,
	// /healthz, /readyz, /debug/traces) are exempt.
	RequestTimeout time.Duration
	// MaxInFlight, when positive, caps the number of requests evaluating
	// concurrently; excess requests are shed immediately with 429
	// instead of queueing unboundedly. Observability routes are exempt,
	// so scrapes and probes keep answering while the workers are
	// saturated.
	MaxInFlight int
}

// Route patterns, exported so out-of-process clients key per-route
// metrics with the exact strings the server's /stats and /metrics
// report them under. pxsim's workload driver and end-of-run audit
// (internal/sim) depend on these matching the registered mux patterns;
// TestRouteConstantsRegistered pins that.
const (
	RouteList       = "GET /docs"
	RouteCreate     = "PUT /docs/{name}"
	RouteGet        = "GET /docs/{name}"
	RouteDrop       = "DELETE /docs/{name}"
	RouteStat       = "GET /docs/{name}/stat"
	RouteQuery      = "POST /docs/{name}/query"
	RouteSearch     = "POST /docs/{name}/search"
	RouteUpdate     = "POST /docs/{name}/update"
	RouteSimplify   = "POST /docs/{name}/simplify"
	RouteViewList   = "GET /docs/{name}/views"
	RouteViewPut    = "PUT /docs/{name}/views/{view}"
	RouteViewGet    = "GET /docs/{name}/views/{view}"
	RouteViewDelete = "DELETE /docs/{name}/views/{view}"
	RouteCompact    = "POST /admin/compact"
	RouteReopen     = "POST /admin/reopen"
	RouteStats      = "GET /stats"
	RouteMetrics    = "GET /metrics"
	RouteTraces     = "GET /debug/traces"
	RouteHealthz    = "GET /healthz"
	RouteReadyz     = "GET /readyz"
)

// exemptRoutes never get a request timeout or count against the
// in-flight cap: they are the routes an operator uses to observe an
// overloaded or degraded server, and they do cheap in-memory reads
// only — letting the workload starve them would blind exactly the
// tooling that diagnoses the overload.
var exemptRoutes = map[string]bool{
	RouteStats:   true,
	RouteMetrics: true,
	RouteHealthz: true,
	RouteReadyz:  true,
	RouteTraces:  true,
}

// Server is an http.Handler serving a warehouse. Create one with New.
type Server struct {
	wh      *warehouse.Warehouse
	cache   *lruCache
	stats   *stats
	reg     *obs.Registry
	runtime *obs.RuntimeCollector
	traces  *obs.TraceRing
	mux     *http.ServeMux
	maxBody int64
	logf    func(format string, args ...any)

	slowThreshold time.Duration
	slowLog       *slog.Logger

	timeout  time.Duration
	inflight chan struct{} // nil: no cap; else buffered semaphore

	cancelTimeout    *obs.Counter
	cancelDisconnect *obs.Counter
	loadShed         *obs.Counter
	degradedRejects  *obs.Counter
}

// New builds a Server over an open warehouse. The caller remains
// responsible for closing the warehouse.
func New(wh *warehouse.Warehouse, opts Options) *Server {
	size := opts.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	maxBody := opts.MaxBodyBytes
	if maxBody == 0 {
		maxBody = DefaultMaxBodyBytes
	}
	ringSize := opts.TraceRingSize
	if ringSize == 0 {
		ringSize = DefaultTraceRingSize
	}
	slowLog := opts.SlowQueryLog
	if slowLog == nil {
		slowLog = slog.Default()
	}
	reg := obs.NewRegistry()
	s := &Server{
		wh:      wh,
		cache:   newLRU(size),
		stats:   newStats(reg),
		reg:     reg,
		mux:     http.NewServeMux(),
		maxBody: maxBody,
		logf:    opts.Logf,

		slowThreshold: opts.SlowQueryThreshold,
		slowLog:       slowLog,

		timeout: opts.RequestTimeout,
	}
	if opts.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInFlight)
	}
	s.cancelTimeout = reg.Counter("px_cancellations_total",
		"request evaluations cancelled mid-flight, by reason", obs.L("reason", "timeout"))
	s.cancelDisconnect = reg.Counter("px_cancellations_total",
		"request evaluations cancelled mid-flight, by reason", obs.L("reason", "disconnect"))
	s.loadShed = reg.Counter("px_load_shed_total",
		"requests shed with 429 because the in-flight cap was reached")
	s.degradedRejects = reg.Counter("px_degraded_rejections_total",
		"writes rejected with 503 while the warehouse was degraded")
	if ringSize > 0 {
		s.traces = obs.NewTraceRing(ringSize)
	}
	s.runtime = obs.NewRuntimeCollector()
	s.runtime.Register(reg)
	reg.GaugeFunc("px_build_info",
		"always 1, labeled with the build version (see -ldflags in docs/OBSERVABILITY.md)",
		func() float64 { return 1 }, obs.L("version", Version))
	reg.GaugeFunc("px_uptime_seconds",
		"seconds since the server was constructed",
		func() float64 { return time.Since(s.stats.start).Seconds() })
	reg.GaugeFunc("px_cache_entries",
		"entries currently in the query/search result cache",
		func() float64 { return float64(s.cache.len()) })
	s.route(RouteList, s.handleList)
	s.route(RouteCreate, s.handleCreate)
	s.route(RouteGet, s.handleGet)
	s.route(RouteDrop, s.handleDrop)
	s.route(RouteStat, s.handleStat)
	s.route(RouteQuery, s.handleQuery)
	s.route(RouteSearch, s.handleSearch)
	s.route(RouteUpdate, s.handleUpdate)
	s.route(RouteSimplify, s.handleSimplify)
	s.route(RouteViewList, s.handleViewList)
	s.route(RouteViewPut, s.handleViewRegister)
	s.route(RouteViewGet, s.handleViewRead)
	s.route(RouteViewDelete, s.handleViewDrop)
	s.route(RouteCompact, s.handleCompact)
	s.route(RouteStats, s.handleStats)
	s.route(RouteMetrics, s.handleMetrics)
	s.route(RouteReopen, s.handleReopen)
	if opts.ExposeDebugTraces {
		s.route(RouteTraces, s.handleTraces)
	}
	s.route(RouteHealthz, s.handleHealthz)
	s.route(RouteReadyz, s.handleReadyz)
	return s
}

// TracesHandler serves the recent-traces ring (the GET /debug/traces
// payload) regardless of ExposeDebugTraces, for mounting on a private
// debug listener alongside pprof.
func (s *Server) TracesHandler() http.Handler {
	return http.HandlerFunc(s.handleTraces)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	s.mux.ServeHTTP(w, r)
}

// route registers a handler wrapped with the observability middleware,
// labeled by the route pattern: each request runs under a fresh trace
// whose root span carries the pattern, finished stage spans feed the
// px_stage_seconds histograms, the completed tree lands in the
// /debug/traces ring, and requests over the slow-query threshold are
// logged with their span breakdown. Metric handles are resolved here,
// once, so the per-request recording is lock-free.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.stats.register(pattern)
	exempt := exemptRoutes[pattern]
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if !exempt && s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				// Shed instead of queueing: a saturated server answering
				// 429 immediately is retryable; one queueing unboundedly
				// is not answering at all.
				s.loadShed.Inc()
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests,
					errors.New("server at capacity, retry later"))
				s.stats.record(pattern, http.StatusTooManyRequests, time.Since(start))
				return
			}
		}
		if !exempt && s.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		trace, root := obs.NewTrace(pattern, s.stats.observeStage)
		cost := obs.NewCost()
		ctx := obs.ContextWithSpan(r.Context(), root)
		r = r.WithContext(obs.ContextWithCost(ctx, cost))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		root.End()
		d := time.Since(start)
		s.stats.record(pattern, rec.status, d)
		slow := s.slowThreshold > 0 && d >= s.slowThreshold
		if s.traces != nil || slow {
			spans := trace.Snapshot()
			costSnap := cost.Snapshot()
			if s.traces != nil {
				s.traces.Add(obs.TraceRecord{
					Time:     start,
					Route:    pattern,
					Path:     r.URL.Path,
					Status:   rec.status,
					DurMS:    float64(d) / float64(time.Millisecond),
					Spans:    spans,
					Cost:     &costSnap,
					SlowOver: slow,
				})
			}
			if slow {
				s.slowLog.LogAttrs(r.Context(), slog.LevelWarn, "slow query",
					slog.String("route", pattern),
					slog.String("path", r.URL.Path),
					slog.Int("status", rec.status),
					slog.Duration("duration", d),
					slog.Any("spans", spans),
					slog.Any("cost", costSnap),
				)
			}
		}
		if s.logf != nil {
			s.logf("%s %s -> %d (%s)", r.Method, r.URL.Path, rec.status, d)
		}
	})
}

// statusRecorder captures the response status for the stats layer.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) recorded when a client disconnects mid-evaluation. The
// response itself is never seen; the status exists to keep the metrics
// and logs honest about why the evaluation stopped.
const StatusClientClosedRequest = 499

// errStatus maps warehouse and parse failures to HTTP status codes.
func errStatus(err error) int {
	switch {
	case errors.Is(err, warehouse.ErrNotFound), errors.Is(err, warehouse.ErrViewNotFound):
		return http.StatusNotFound
	case errors.Is(err, warehouse.ErrExists), errors.Is(err, warehouse.ErrViewExists):
		return http.StatusConflict
	case errors.Is(err, warehouse.ErrInvalidName), errors.Is(err, warehouse.ErrInvalidView):
		return http.StatusBadRequest
	case errors.Is(err, warehouse.ErrClosed), errors.Is(err, warehouse.ErrDegraded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// writeErr reports an evaluation failure, distinguishing the
// fault-tolerance outcomes: a degraded warehouse answers 503 with
// Retry-After (the operator runbook in docs/FAULTS.md clears it), a
// request timeout answers 503 with a typed message and counts as a
// timeout cancellation, and a client disconnect is recorded as 499
// (the response goes nowhere). Everything else falls through to the
// conventional errStatus mapping.
func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, warehouse.ErrDegraded):
		s.degradedRejects.Inc()
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.cancelTimeout.Inc()
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("request timed out after %v: %w", s.timeout, err))
	case errors.Is(err, context.Canceled):
		s.cancelDisconnect.Inc()
		writeError(w, StatusClientClosedRequest, err)
	default:
		writeError(w, errStatus(err), err)
	}
}

// bodyStatus distinguishes an oversized body (the MaxBytesReader
// tripped — 413, back off) from malformed input (400, fix the payload).
func bodyStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// --- document CRUD ---------------------------------------------------------

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	names, err := s.wh.List()
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if names == nil {
		names = []string{}
	}
	writeJSON(w, http.StatusOK, ListResponse{Documents: names})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := warehouse.ValidateName(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, bodyStatus(err), fmt.Errorf("read body: %w", err))
		return
	}
	doc, err := xmlio.ParseDoc(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.wh.CreateCtx(r.Context(), name, doc); err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, DocInfo{
		Name:   name,
		Nodes:  doc.Size(),
		Events: doc.Table.Len(),
		Worlds: doc.WorldCount(),
	})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	data, err := s.wh.GetXMLCtx(r.Context(), r.PathValue("name"))
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Write(data) //nolint:errcheck
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.wh.Drop(name); err != nil {
		s.writeErr(w, r, err)
		return
	}
	s.cache.invalidateDoc(name)
	writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request) {
	info, err := s.wh.Stat(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, DocInfo{
		Name:   info.Name,
		Nodes:  info.Nodes,
		Events: info.Events,
		Worlds: info.Worlds,
	})
}

// --- querying --------------------------------------------------------------

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := warehouse.ValidateName(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req QueryRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}

	var (
		q   *tpwj.Query
		err error
	)
	switch req.Syntax {
	case "", "tpwj":
		q, err = tpwj.ParseQuery(req.Query)
	case "xpath":
		q, err = xpath.Compile(req.Query)
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown syntax %q (want tpwj or xpath)", req.Syntax))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	samples := req.Samples
	if samples <= 0 {
		samples = 1000
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	var mode string
	switch req.Mode {
	case "", "exact":
		mode = "exact"
	case "mc":
		if samples > MaxSamples {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("samples %d exceeds the limit %d", samples, MaxSamples))
			return
		}
		mode = fmt.Sprintf("mc:%d:%d", samples, seed)
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown mode %q (want exact or mc)", req.Mode))
		return
	}

	// The canonical form makes syntactic variants ("A( B )", XPath
	// compilations) share cache entries. The generation is read before
	// evaluating so a result computed against a snapshot that a
	// concurrent mutation replaced is never installed.
	key := queryKey{doc: name, query: tpwj.FormatQuery(q), mode: mode}
	gen := s.cache.docGen(name)
	cost := obs.CostFromContext(r.Context())
	if cached, ok := s.cache.get(key); ok {
		answers := cached.([]Answer)
		s.stats.hit(cost)
		resp := QueryResponse{Answers: answers, Count: len(answers), Cached: true}
		attachTrace(r, &resp.Trace)
		attachExplain(r, &resp.Explain, nil)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.stats.miss(cost)

	var raw []tpwj.ProbAnswer
	if mode == "exact" {
		raw, err = s.wh.QueryCtx(r.Context(), name, q)
	} else {
		raw, err = s.wh.QueryMCCtx(r.Context(), name, q, samples, rand.New(rand.NewSource(seed)))
	}
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	answers := encodeAnswers(raw)
	s.cache.put(key, answers, gen)
	resp := QueryResponse{Answers: answers, Count: len(answers), Cached: false}
	attachTrace(r, &resp.Trace)
	plan := &ExplainPlan{Mode: "exact", Reason: "exact Shannon expansion (request default)", Answers: answerPlans(raw)}
	if mode != "exact" {
		plan.Mode, plan.Samples = "mc", samples
		plan.Reason = "Monte-Carlo estimation selected by the request's mode"
	}
	attachExplain(r, &resp.Explain, plan)
	writeJSON(w, http.StatusOK, resp)
}

// attachExplain fills *dst with the request's cost breakdown (and the
// caller's plan summary, nil on cache hits) when the client asked for
// it with ?explain=1. Like attachTrace, it runs just before the
// response is written so the breakdown covers the handler's work; the
// final charges (the response encoding is not instrumented) match what
// lands in the trace ring because both read the same accumulator.
func attachExplain(r *http.Request, dst **ExplainInfo, plan *ExplainPlan) {
	if r.URL.Query().Get("explain") != "1" {
		return
	}
	cost := obs.CostFromContext(r.Context())
	*dst = &ExplainInfo{Cost: cost.Snapshot(), Plan: plan}
}

// attachTrace fills *dst with the request's span tree when the client
// asked for it with ?trace=1. Called just before the response is
// written, so the tree covers all the work the handler did (the root
// span itself is still open and reports its duration so far).
func attachTrace(r *http.Request, dst **obs.SpanSnapshot) {
	if r.URL.Query().Get("trace") != "1" {
		return
	}
	if sp := obs.SpanFromContext(r.Context()); sp != nil {
		snap := sp.TraceSnapshot()
		*dst = &snap
	}
}

// handleSearch evaluates a probabilistic keyword search. Results are
// cached like query results, keyed by the canonical token set and the
// full evaluation mode (semantics, exact/mc, threshold, cut), and
// invalidated by any mutation of the document.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := warehouse.ValidateName(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req SearchRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}
	mode, err := keyword.ParseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tokens, err := keyword.RequiredTokens(req.Keywords)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.MinProb < 0 || req.MinProb > 1 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("min_prob %v outside [0,1]", req.MinProb))
		return
	}
	if req.TopK < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("negative top_k %d", req.TopK))
		return
	}
	kreq := keyword.Request{
		Keywords: req.Keywords,
		Mode:     mode,
		MinProb:  req.MinProb,
		TopK:     req.TopK,
	}
	probMode := "exact"
	switch req.Prob {
	case "", "exact":
	case "mc":
		samples := req.Samples
		if samples <= 0 {
			samples = 1000
		}
		if samples > MaxSamples {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("samples %d exceeds the limit %d", samples, MaxSamples))
			return
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		kreq.MC, kreq.Samples, kreq.Seed = true, samples, seed
		probMode = fmt.Sprintf("mc:%d:%d", samples, seed)
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown prob %q (want exact or mc)", req.Prob))
		return
	}

	key := queryKey{
		doc:   name,
		query: "kw:" + strings.Join(tokens, " "),
		mode:  fmt.Sprintf("search:%s:%s:minp=%g:k=%d", mode, probMode, req.MinProb, req.TopK),
	}
	gen := s.cache.docGen(name)
	cost := obs.CostFromContext(r.Context())
	if cached, ok := s.cache.get(key); ok {
		s.stats.searchHit(cost)
		resp := cached.(SearchResponse)
		resp.Cached = true
		attachTrace(r, &resp.Trace)
		attachExplain(r, &resp.Explain, nil)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.stats.searchMiss(cost)

	res, err := s.wh.SearchCtx(r.Context(), name, kreq)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	resp := SearchResponse{
		Answers:    encodeSearchAnswers(res.Answers),
		Count:      len(res.Answers),
		Candidates: res.Candidates,
		Pruned:     res.Pruned,
	}
	s.cache.put(key, resp, gen)
	attachTrace(r, &resp.Trace)
	plan := &ExplainPlan{
		Mode:       "exact",
		Reason:     "exact SLCA/ELCA formulas over witness conditions (request default)",
		Candidates: res.Candidates,
		Pruned:     res.Pruned,
	}
	if kreq.MC {
		plan.Mode, plan.Samples = "mc", kreq.Samples
		plan.Reason = "Monte-Carlo world sampling selected by the request's prob mode"
	}
	attachExplain(r, &resp.Explain, plan)
	writeJSON(w, http.StatusOK, resp)
}

// --- updating --------------------------------------------------------------

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := warehouse.ValidateName(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req UpdateRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}
	tx, err := req.toTransaction()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	stats, err := s.wh.UpdateCtx(r.Context(), name, tx)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	s.cache.invalidateDoc(name)
	writeJSON(w, http.StatusOK, UpdateResponse{
		Valuations:      stats.Valuations,
		Inserted:        stats.Inserted,
		DeletedOutright: stats.DeletedOutright,
		Copies:          stats.Copies,
		Event:           string(stats.Event),
	})
}

func (s *Server) handleSimplify(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	stats, err := s.wh.SimplifyCtx(r.Context(), name)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	s.cache.invalidateDoc(name)
	writeJSON(w, http.StatusOK, SimplifyResponse{
		NodesRemoved:    stats.NodesRemoved,
		LiteralsRemoved: stats.LiteralsRemoved,
		SiblingsMerged:  stats.SiblingsMerged,
		EventsRemoved:   stats.EventsRemoved,
	})
}

// --- materialized views ----------------------------------------------------

// handleViewRegister registers (and eagerly materializes) a named view
// of a TPWJ or XPath query. The registration is journaled and survives
// recovery; the initial answers come back in the response.
func (s *Server) handleViewRegister(w http.ResponseWriter, r *http.Request) {
	doc, name := r.PathValue("name"), r.PathValue("view")
	if err := warehouse.ValidateName(doc); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := warehouse.ValidateName(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req ViewRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}
	res, err := s.wh.RegisterViewCtx(r.Context(), doc, name, req.Query, req.Syntax)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, encodeView(res))
}

// handleViewRead serves the view's maintained answers. During an
// in-flight maintenance pass it does not wait for the writer: the
// previous (complete and internally consistent) answer set is returned
// with "stale": true.
func (s *Server) handleViewRead(w http.ResponseWriter, r *http.Request) {
	res, err := s.wh.ReadViewCtx(r.Context(), r.PathValue("name"), r.PathValue("view"))
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	resp := encodeView(res)
	attachTrace(r, &resp.Trace)
	reason := "materialized answers served from the maintained state"
	if res.Stale {
		reason = "materialized answers served stale (maintenance pass in flight)"
	}
	attachExplain(r, &resp.Explain, &ExplainPlan{
		Mode:    "exact",
		Reason:  reason,
		Answers: answerPlans(res.Answers),
		Stale:   res.Stale,
	})
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleViewDrop(w http.ResponseWriter, r *http.Request) {
	doc, name := r.PathValue("name"), r.PathValue("view")
	if err := s.wh.DropView(doc, name); err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
}

func (s *Server) handleViewList(w http.ResponseWriter, r *http.Request) {
	defs, err := s.wh.ListViews(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	resp := ViewListResponse{Views: make([]ViewInfo, len(defs))}
	for i, d := range defs {
		resp.Views[i] = ViewInfo{Name: d.Name, Query: d.Query, Syntax: d.Syntax}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- admin -----------------------------------------------------------------

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if err := s.wh.Compact(); err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"compacted": true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// Snapshot returns the GET /stats payload: every counter the server,
// warehouse and engine registries hold, in JSON form. pxserve logs it
// as the final summary on graceful shutdown.
func (s *Server) Snapshot() StatsSnapshot {
	capacity := s.cache.cap
	if capacity < 0 {
		capacity = 0
	}
	snap := s.stats.snapshot(s.cache.len(), capacity, s.wh.JournalStats(), s.wh.SearchStats(), s.wh.ViewStats())
	snap.Degraded, snap.DegradedReason = s.wh.Degraded()
	if st, err := s.wh.StorageStats(); err == nil {
		snap.Storage = st
	}
	snap.Runtime = s.runtime.Stats()
	return snap
}

// handleMetrics serves the Prometheus text exposition, merging the
// server's registry (routes, caches, stages), the warehouse's (journal,
// recovery, search, views) and the process-global one (probability and
// keyword engines) — the same handles /stats reads.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteText(w, s.reg, s.wh.Registry(), obs.Default()) //nolint:errcheck
}

// handleTraces serves the retained request traces, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	list := []obs.TraceRecord{}
	if s.traces != nil {
		list = s.traces.List()
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: list, Count: len(list)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 while the warehouse accepts
// writes, 503 with the degradation cause while it is read-only (see
// docs/FAULTS.md). Liveness (/healthz) stays green in either state —
// a degraded server is alive and serving reads; restarting it without
// recovery would not help.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if degraded, reason := s.wh.Degraded(); degraded {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "degraded", "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReopen re-runs recovery on the warehouse directory and clears
// degraded mode on success — the in-process equivalent of restarting
// the server after `pxwarehouse recover`. Waits for in-flight
// operations like Compact does.
func (s *Server) handleReopen(w http.ResponseWriter, r *http.Request) {
	if err := s.wh.Reopen(); err != nil {
		s.writeErr(w, r, err)
		return
	}
	// Every cache entry refers to pre-reopen snapshots; drop them all.
	s.cache.invalidateAll()
	writeJSON(w, http.StatusOK, map[string]bool{"reopened": true})
}
