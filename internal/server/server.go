// Package server exposes a warehouse.Warehouse over an HTTP/JSON API:
// the multi-client front end of the paper's probabilistic XML warehouse
// architecture.
//
// Routes:
//
//	GET    /docs                  list document names
//	PUT    /docs/{name}           create a document from a <pxml> body
//	GET    /docs/{name}           fetch the document as <pxml> XML
//	DELETE /docs/{name}           drop the document
//	GET    /docs/{name}/stat      node/event/world counts
//	POST   /docs/{name}/query     evaluate a TPWJ or XPath query
//	POST   /docs/{name}/search    probabilistic keyword search (SLCA/ELCA)
//	POST   /docs/{name}/update    apply a probabilistic transaction
//	POST   /docs/{name}/simplify  run simplification passes
//	GET    /docs/{name}/views             list materialized views
//	PUT    /docs/{name}/views/{view}      register a materialized view
//	GET    /docs/{name}/views/{view}      read a view's maintained answers
//	DELETE /docs/{name}/views/{view}      drop a view
//	POST   /admin/compact         truncate the journal
//	GET    /stats                 request, cache, engine, journal, search and view counters
//	GET    /healthz               liveness probe
//
// Query and search results are served from an LRU cache keyed by
// (document, canonical query or keyword set, mode); any mutation of a
// document drops its entries. Materialized views are not cached here:
// the warehouse keeps them incrementally maintained, and view reads
// never block on an in-flight update — they return the previous answer
// set with "stale": true instead.
// Errors are reported as {"error": "..."} with conventional status
// codes (400 bad input, 404 missing document, 409 name conflict).
package server

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"repro/internal/keyword"
	"repro/internal/tpwj"
	"repro/internal/warehouse"
	"repro/internal/xmlio"
	"repro/internal/xpath"
)

// DefaultCacheSize is the query-result cache capacity used when
// Options.CacheSize is zero.
const DefaultCacheSize = 256

// DefaultMaxBodyBytes bounds request bodies (documents, queries,
// updates) when Options.MaxBodyBytes is zero.
const DefaultMaxBodyBytes = 64 << 20

// MaxSamples bounds the Monte-Carlo sample count a single query
// request may demand, so one client cannot monopolize the server's CPU
// with an absurd samples value.
const MaxSamples = 1_000_000

// Options configures a Server.
type Options struct {
	// CacheSize is the query-result cache capacity in entries. Zero
	// selects DefaultCacheSize; a negative value disables the cache.
	CacheSize int
	// MaxBodyBytes bounds request bodies. Zero selects
	// DefaultMaxBodyBytes. Oversized requests get 413.
	MaxBodyBytes int64
	// Logf, when set, receives one line per request.
	Logf func(format string, args ...any)
}

// Server is an http.Handler serving a warehouse. Create one with New.
type Server struct {
	wh      *warehouse.Warehouse
	cache   *lruCache
	stats   *stats
	mux     *http.ServeMux
	maxBody int64
	logf    func(format string, args ...any)
}

// New builds a Server over an open warehouse. The caller remains
// responsible for closing the warehouse.
func New(wh *warehouse.Warehouse, opts Options) *Server {
	size := opts.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	maxBody := opts.MaxBodyBytes
	if maxBody == 0 {
		maxBody = DefaultMaxBodyBytes
	}
	s := &Server{
		wh:      wh,
		cache:   newLRU(size),
		stats:   newStats(),
		mux:     http.NewServeMux(),
		maxBody: maxBody,
		logf:    opts.Logf,
	}
	s.route("GET /docs", s.handleList)
	s.route("PUT /docs/{name}", s.handleCreate)
	s.route("GET /docs/{name}", s.handleGet)
	s.route("DELETE /docs/{name}", s.handleDrop)
	s.route("GET /docs/{name}/stat", s.handleStat)
	s.route("POST /docs/{name}/query", s.handleQuery)
	s.route("POST /docs/{name}/search", s.handleSearch)
	s.route("POST /docs/{name}/update", s.handleUpdate)
	s.route("POST /docs/{name}/simplify", s.handleSimplify)
	s.route("GET /docs/{name}/views", s.handleViewList)
	s.route("PUT /docs/{name}/views/{view}", s.handleViewRegister)
	s.route("GET /docs/{name}/views/{view}", s.handleViewRead)
	s.route("DELETE /docs/{name}/views/{view}", s.handleViewDrop)
	s.route("POST /admin/compact", s.handleCompact)
	s.route("GET /stats", s.handleStats)
	s.route("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	s.mux.ServeHTTP(w, r)
}

// route registers a handler wrapped with stats recording and logging,
// labeled by the route pattern.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		d := time.Since(start)
		s.stats.record(pattern, rec.status, d)
		if s.logf != nil {
			s.logf("%s %s -> %d (%s)", r.Method, r.URL.Path, rec.status, d)
		}
	})
}

// statusRecorder captures the response status for the stats layer.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// errStatus maps warehouse and parse failures to HTTP status codes.
func errStatus(err error) int {
	switch {
	case errors.Is(err, warehouse.ErrNotFound), errors.Is(err, warehouse.ErrViewNotFound):
		return http.StatusNotFound
	case errors.Is(err, warehouse.ErrExists), errors.Is(err, warehouse.ErrViewExists):
		return http.StatusConflict
	case errors.Is(err, warehouse.ErrInvalidName), errors.Is(err, warehouse.ErrInvalidView):
		return http.StatusBadRequest
	case errors.Is(err, warehouse.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// bodyStatus distinguishes an oversized body (the MaxBytesReader
// tripped — 413, back off) from malformed input (400, fix the payload).
func bodyStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// --- document CRUD ---------------------------------------------------------

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	names, err := s.wh.List()
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	if names == nil {
		names = []string{}
	}
	writeJSON(w, http.StatusOK, ListResponse{Documents: names})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := warehouse.ValidateName(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, bodyStatus(err), fmt.Errorf("read body: %w", err))
		return
	}
	doc, err := xmlio.ParseDoc(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.wh.Create(name, doc); err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, DocInfo{
		Name:   name,
		Nodes:  doc.Size(),
		Events: doc.Table.Len(),
		Worlds: doc.WorldCount(),
	})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	data, err := s.wh.GetXML(r.PathValue("name"))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Write(data) //nolint:errcheck
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.wh.Drop(name); err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	s.cache.invalidateDoc(name)
	writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request) {
	info, err := s.wh.Stat(r.PathValue("name"))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, DocInfo{
		Name:   info.Name,
		Nodes:  info.Nodes,
		Events: info.Events,
		Worlds: info.Worlds,
	})
}

// --- querying --------------------------------------------------------------

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := warehouse.ValidateName(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req QueryRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}

	var (
		q   *tpwj.Query
		err error
	)
	switch req.Syntax {
	case "", "tpwj":
		q, err = tpwj.ParseQuery(req.Query)
	case "xpath":
		q, err = xpath.Compile(req.Query)
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown syntax %q (want tpwj or xpath)", req.Syntax))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	samples := req.Samples
	if samples <= 0 {
		samples = 1000
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	var mode string
	switch req.Mode {
	case "", "exact":
		mode = "exact"
	case "mc":
		if samples > MaxSamples {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("samples %d exceeds the limit %d", samples, MaxSamples))
			return
		}
		mode = fmt.Sprintf("mc:%d:%d", samples, seed)
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown mode %q (want exact or mc)", req.Mode))
		return
	}

	// The canonical form makes syntactic variants ("A( B )", XPath
	// compilations) share cache entries. The generation is read before
	// evaluating so a result computed against a snapshot that a
	// concurrent mutation replaced is never installed.
	key := queryKey{doc: name, query: tpwj.FormatQuery(q), mode: mode}
	gen := s.cache.docGen(name)
	if cached, ok := s.cache.get(key); ok {
		answers := cached.([]Answer)
		s.stats.hit()
		writeJSON(w, http.StatusOK, QueryResponse{
			Answers: answers, Count: len(answers), Cached: true,
		})
		return
	}
	s.stats.miss()

	var raw []tpwj.ProbAnswer
	if mode == "exact" {
		raw, err = s.wh.Query(name, q)
	} else {
		raw, err = s.wh.QueryMC(name, q, samples, rand.New(rand.NewSource(seed)))
	}
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	answers := encodeAnswers(raw)
	s.cache.put(key, answers, gen)
	writeJSON(w, http.StatusOK, QueryResponse{
		Answers: answers, Count: len(answers), Cached: false,
	})
}

// handleSearch evaluates a probabilistic keyword search. Results are
// cached like query results, keyed by the canonical token set and the
// full evaluation mode (semantics, exact/mc, threshold, cut), and
// invalidated by any mutation of the document.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := warehouse.ValidateName(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req SearchRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}
	mode, err := keyword.ParseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tokens, err := keyword.RequiredTokens(req.Keywords)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.MinProb < 0 || req.MinProb > 1 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("min_prob %v outside [0,1]", req.MinProb))
		return
	}
	if req.TopK < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("negative top_k %d", req.TopK))
		return
	}
	kreq := keyword.Request{
		Keywords: req.Keywords,
		Mode:     mode,
		MinProb:  req.MinProb,
		TopK:     req.TopK,
	}
	probMode := "exact"
	switch req.Prob {
	case "", "exact":
	case "mc":
		samples := req.Samples
		if samples <= 0 {
			samples = 1000
		}
		if samples > MaxSamples {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("samples %d exceeds the limit %d", samples, MaxSamples))
			return
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		kreq.MC, kreq.Samples, kreq.Seed = true, samples, seed
		probMode = fmt.Sprintf("mc:%d:%d", samples, seed)
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown prob %q (want exact or mc)", req.Prob))
		return
	}

	key := queryKey{
		doc:   name,
		query: "kw:" + strings.Join(tokens, " "),
		mode:  fmt.Sprintf("search:%s:%s:minp=%g:k=%d", mode, probMode, req.MinProb, req.TopK),
	}
	gen := s.cache.docGen(name)
	if cached, ok := s.cache.get(key); ok {
		s.stats.searchHit()
		resp := cached.(SearchResponse)
		resp.Cached = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.stats.searchMiss()

	res, err := s.wh.Search(name, kreq)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	resp := SearchResponse{
		Answers:    encodeSearchAnswers(res.Answers),
		Count:      len(res.Answers),
		Candidates: res.Candidates,
		Pruned:     res.Pruned,
	}
	s.cache.put(key, resp, gen)
	writeJSON(w, http.StatusOK, resp)
}

// --- updating --------------------------------------------------------------

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := warehouse.ValidateName(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req UpdateRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}
	tx, err := req.toTransaction()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	stats, err := s.wh.Update(name, tx)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	s.cache.invalidateDoc(name)
	writeJSON(w, http.StatusOK, UpdateResponse{
		Valuations:      stats.Valuations,
		Inserted:        stats.Inserted,
		DeletedOutright: stats.DeletedOutright,
		Copies:          stats.Copies,
		Event:           string(stats.Event),
	})
}

func (s *Server) handleSimplify(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	stats, err := s.wh.Simplify(name)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	s.cache.invalidateDoc(name)
	writeJSON(w, http.StatusOK, SimplifyResponse{
		NodesRemoved:    stats.NodesRemoved,
		LiteralsRemoved: stats.LiteralsRemoved,
		SiblingsMerged:  stats.SiblingsMerged,
		EventsRemoved:   stats.EventsRemoved,
	})
}

// --- materialized views ----------------------------------------------------

// handleViewRegister registers (and eagerly materializes) a named view
// of a TPWJ or XPath query. The registration is journaled and survives
// recovery; the initial answers come back in the response.
func (s *Server) handleViewRegister(w http.ResponseWriter, r *http.Request) {
	doc, name := r.PathValue("name"), r.PathValue("view")
	if err := warehouse.ValidateName(doc); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := warehouse.ValidateName(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req ViewRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}
	res, err := s.wh.RegisterView(doc, name, req.Query, req.Syntax)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, encodeView(res))
}

// handleViewRead serves the view's maintained answers. During an
// in-flight maintenance pass it does not wait for the writer: the
// previous (complete and internally consistent) answer set is returned
// with "stale": true.
func (s *Server) handleViewRead(w http.ResponseWriter, r *http.Request) {
	res, err := s.wh.ReadView(r.PathValue("name"), r.PathValue("view"))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, encodeView(res))
}

func (s *Server) handleViewDrop(w http.ResponseWriter, r *http.Request) {
	doc, name := r.PathValue("name"), r.PathValue("view")
	if err := s.wh.DropView(doc, name); err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
}

func (s *Server) handleViewList(w http.ResponseWriter, r *http.Request) {
	defs, err := s.wh.ListViews(r.PathValue("name"))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	resp := ViewListResponse{Views: make([]ViewInfo, len(defs))}
	for i, d := range defs {
		resp.Views[i] = ViewInfo{Name: d.Name, Query: d.Query, Syntax: d.Syntax}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- admin -----------------------------------------------------------------

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if err := s.wh.Compact(); err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"compacted": true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	capacity := s.cache.cap
	if capacity < 0 {
		capacity = 0
	}
	writeJSON(w, http.StatusOK, s.stats.snapshot(s.cache.len(), capacity, s.wh.JournalStats(), s.wh.SearchStats(), s.wh.ViewStats()))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
