package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/warehouse"
	"repro/internal/xmlio"
)

// newTestServer starts a server over a fresh warehouse.
func newTestServer(t *testing.T, opts Options) (*httptest.Server, *warehouse.Warehouse) {
	t.Helper()
	wh, err := warehouse.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wh.Close() })
	ts := httptest.NewServer(New(wh, opts))
	t.Cleanup(ts.Close)
	return ts, wh
}

// sampleDocXML serializes the running example document "A(B[w1]:x,
// C(D[w2]))" with P(w1)=0.8, P(w2)=0.7.
func sampleDocXML(t *testing.T) []byte {
	t.Helper()
	ft := fuzzy.MustParseTree("A(B[w1]:x, C(D[w2]))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
	data, err := xmlio.DocXML(ft)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// do performs one request and returns the status and body.
func do(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// doJSON performs a request with a JSON body and decodes a JSON reply
// into out (when non-nil).
func doJSON(t *testing.T, method, url string, reqBody, out any) int {
	t.Helper()
	var body []byte
	if reqBody != nil {
		var err error
		if body, err = json.Marshal(reqBody); err != nil {
			t.Fatal(err)
		}
	}
	status, data := do(t, method, url, body)
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, data, err)
		}
	}
	return status
}

func query(t *testing.T, ts *httptest.Server, doc string, req QueryRequest) (int, QueryResponse) {
	t.Helper()
	var resp QueryResponse
	status := doJSON(t, "POST", ts.URL+"/docs/"+doc+"/query", req, &resp)
	return status, resp
}

func serverStats(t *testing.T, ts *httptest.Server) StatsSnapshot {
	t.Helper()
	var snap StatsSnapshot
	if status := doJSON(t, "GET", ts.URL+"/stats", nil, &snap); status != 200 {
		t.Fatalf("GET /stats = %d", status)
	}
	return snap
}

// TestLifecycle drives the full document lifecycle over HTTP — create,
// query, cached re-query, update (which must invalidate the cache),
// re-query, simplify, drop — checking the cache hit counter via /stats
// along the way. This is the acceptance scenario of the server PR.
func TestLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, Options{})

	// Create.
	status, body := do(t, "PUT", ts.URL+"/docs/ex", sampleDocXML(t))
	if status != http.StatusCreated {
		t.Fatalf("PUT = %d, body %s", status, body)
	}
	var created DocInfo
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.Nodes != 4 || created.Events != 2 || created.Worlds != 4 {
		t.Errorf("created info = %+v, want 4 nodes, 2 events, 4 worlds", created)
	}

	// List.
	var list ListResponse
	if status := doJSON(t, "GET", ts.URL+"/docs", nil, &list); status != 200 {
		t.Fatalf("GET /docs = %d", status)
	}
	if len(list.Documents) != 1 || list.Documents[0] != "ex" {
		t.Errorf("list = %v, want [ex]", list.Documents)
	}

	// Fetch round-trips through the pxml codec.
	status, body = do(t, "GET", ts.URL+"/docs/ex", nil)
	if status != 200 {
		t.Fatalf("GET /docs/ex = %d", status)
	}
	if _, err := xmlio.ParseDoc(body); err != nil {
		t.Fatalf("returned document does not parse: %v", err)
	}

	// Query: first evaluation is a cache miss.
	status, qr := query(t, ts, "ex", QueryRequest{Query: "A(B)"})
	if status != 200 {
		t.Fatalf("query = %d", status)
	}
	if qr.Cached || qr.Count != 1 || qr.Answers[0].P != 0.8 {
		t.Errorf("first query = %+v, want uncached single answer P=0.8", qr)
	}

	// Identical query (even with different whitespace) hits the cache.
	status, qr = query(t, ts, "ex", QueryRequest{Query: "A( B )"})
	if status != 200 || !qr.Cached {
		t.Fatalf("repeat query = %d cached=%v, want 200 cached", status, qr.Cached)
	}
	if qr.Answers[0].P != 0.8 {
		t.Errorf("cached answer P = %v, want 0.8", qr.Answers[0].P)
	}
	snap := serverStats(t, ts)
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Errorf("cache counters = %d hits/%d misses, want 1/1", snap.Cache.Hits, snap.Cache.Misses)
	}

	// Update through the textual form; it must invalidate the cache.
	var ur UpdateResponse
	status = doJSON(t, "POST", ts.URL+"/docs/ex/update", UpdateRequest{
		Query:      "A $a",
		Confidence: 0.5,
		Ops:        []UpdateOp{{Op: "insert", Var: "$a", Tree: "B:fresh"}},
	}, &ur)
	if status != 200 {
		t.Fatalf("update = %d", status)
	}
	if ur.Valuations != 1 || ur.Inserted != 1 || ur.Event == "" {
		t.Errorf("update stats = %+v, want 1 valuation, 1 insert, fresh event", ur)
	}

	status, qr = query(t, ts, "ex", QueryRequest{Query: "A(B)"})
	if status != 200 || qr.Cached {
		t.Fatalf("post-update query = %d cached=%v, want 200 uncached", status, qr.Cached)
	}
	if qr.Count != 2 {
		t.Errorf("post-update answers = %d, want 2 (old B and inserted B)", qr.Count)
	}

	// Simplify also invalidates.
	status, qr = query(t, ts, "ex", QueryRequest{Query: "A(B)"})
	if !qr.Cached {
		t.Fatalf("expected cached before simplify, got %+v (status %d)", qr, status)
	}
	var sr SimplifyResponse
	if status := doJSON(t, "POST", ts.URL+"/docs/ex/simplify", nil, &sr); status != 200 {
		t.Fatalf("simplify = %d", status)
	}
	if _, qr = query(t, ts, "ex", QueryRequest{Query: "A(B)"}); qr.Cached {
		t.Error("query cached after simplify, want invalidated")
	}

	// Stat reflects the mutations.
	var info DocInfo
	if status := doJSON(t, "GET", ts.URL+"/docs/ex/stat", nil, &info); status != 200 {
		t.Fatalf("stat = %d", status)
	}
	if info.Name != "ex" || info.Nodes < 4 {
		t.Errorf("stat = %+v", info)
	}

	// Drop, then every read fails with 404.
	if status, _ := do(t, "DELETE", ts.URL+"/docs/ex", nil); status != 200 {
		t.Fatalf("DELETE = %d", status)
	}
	if status, _ := do(t, "GET", ts.URL+"/docs/ex", nil); status != http.StatusNotFound {
		t.Errorf("GET after drop = %d, want 404", status)
	}
	if status, _ = query(t, ts, "ex", QueryRequest{Query: "A(B)"}); status != http.StatusNotFound {
		t.Errorf("query after drop = %d, want 404", status)
	}
}

func TestQueryModesAndSyntaxes(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	if status, body := do(t, "PUT", ts.URL+"/docs/ex", sampleDocXML(t)); status != 201 {
		t.Fatalf("PUT = %d, %s", status, body)
	}

	// XPath compiles to the same canonical query, sharing cache entries
	// across syntaxes is not required — but it must return the same
	// probability.
	status, qr := query(t, ts, "ex", QueryRequest{Query: "/A/B", Syntax: "xpath"})
	if status != 200 || qr.Count != 1 {
		t.Fatalf("xpath query = %d %+v", status, qr)
	}
	if qr.Answers[0].P != 0.8 {
		t.Errorf("xpath answer P = %v, want 0.8", qr.Answers[0].P)
	}

	// Monte-Carlo mode estimates the same probability and is cached
	// under its own key.
	status, qr = query(t, ts, "ex", QueryRequest{Query: "A(B)", Mode: "mc", Samples: 4000, Seed: 7})
	if status != 200 || qr.Count != 1 || qr.Cached {
		t.Fatalf("mc query = %d %+v", status, qr)
	}
	if p := qr.Answers[0].P; p < 0.7 || p > 0.9 {
		t.Errorf("mc estimate P = %v, want ~0.8", p)
	}
	_, qr2 := query(t, ts, "ex", QueryRequest{Query: "A(B)", Mode: "mc", Samples: 4000, Seed: 7})
	if !qr2.Cached || qr2.Answers[0].P != qr.Answers[0].P {
		t.Errorf("repeated mc query: cached=%v P=%v, want cached identical", qr2.Cached, qr2.Answers[0].P)
	}
	// Different sample count = different key.
	if _, qr3 := query(t, ts, "ex", QueryRequest{Query: "A(B)", Mode: "mc", Samples: 2000, Seed: 7}); qr3.Cached {
		t.Error("mc query with different samples hit the cache")
	}

	// The samples limit only applies to mc mode: exact mode ignores
	// the field entirely.
	if status, _ := query(t, ts, "ex", QueryRequest{Query: "A(B)", Samples: 2 * MaxSamples}); status != 200 {
		t.Errorf("exact query with large unused samples = %d, want 200", status)
	}
}

func TestErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	if status, _ := do(t, "PUT", ts.URL+"/docs/ex", sampleDocXML(t)); status != 201 {
		t.Fatal("setup create failed")
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"create bad xml", "PUT", "/docs/bad", "<pxml", http.StatusBadRequest},
		{"create duplicate", "PUT", "/docs/ex", string(sampleDocXML(t)), http.StatusConflict},
		{"create invalid name", "PUT", "/docs/bad%20name", string(sampleDocXML(t)), http.StatusBadRequest},
		{"get missing", "GET", "/docs/nope", "", http.StatusNotFound},
		{"drop missing", "DELETE", "/docs/nope", "", http.StatusNotFound},
		{"stat missing", "GET", "/docs/nope/stat", "", http.StatusNotFound},
		{"simplify missing", "POST", "/docs/nope/simplify", "", http.StatusNotFound},
		{"query missing doc", "POST", "/docs/nope/query", `{"query":"A(B)"}`, http.StatusNotFound},
		{"query bad syntax", "POST", "/docs/ex/query", `{"query":"A(("}`, http.StatusBadRequest},
		{"query bad json", "POST", "/docs/ex/query", `{"query":`, http.StatusBadRequest},
		{"query unknown field", "POST", "/docs/ex/query", `{"query":"A(B)","nope":1}`, http.StatusBadRequest},
		{"query unknown syntax", "POST", "/docs/ex/query", `{"query":"A(B)","syntax":"sql"}`, http.StatusBadRequest},
		{"query unknown mode", "POST", "/docs/ex/query", `{"query":"A(B)","mode":"psychic"}`, http.StatusBadRequest},
		{"query samples too large", "POST", "/docs/ex/query", `{"query":"A(B)","mode":"mc","samples":2000000000}`, http.StatusBadRequest},
		{"query bad xpath", "POST", "/docs/ex/query", `{"query":"///","syntax":"xpath"}`, http.StatusBadRequest},
		{"update empty", "POST", "/docs/ex/update", `{}`, http.StatusBadRequest},
		{"update both forms", "POST", "/docs/ex/update", `{"tx_xml":"<transaction/>","query":"A $a"}`, http.StatusBadRequest},
		{"update bad tx xml", "POST", "/docs/ex/update", `{"tx_xml":"<transaction"}`, http.StatusBadRequest},
		{"update bad op", "POST", "/docs/ex/update", `{"query":"A $a","confidence":0.5,"ops":[{"op":"upsert","var":"a"}]}`, http.StatusBadRequest},
		{"update unbound var", "POST", "/docs/ex/update", `{"query":"A $a","confidence":0.5,"ops":[{"op":"delete","var":"z"}]}`, http.StatusBadRequest},
		{"update bad confidence", "POST", "/docs/ex/update", `{"query":"A $a","confidence":1.5,"ops":[{"op":"delete","var":"a"}]}`, http.StatusBadRequest},
		{"update missing doc", "POST", "/docs/nope/update", `{"query":"A $a","confidence":0.5,"ops":[{"op":"delete","var":"a"}]}`, http.StatusNotFound},
		{"method not allowed", "POST", "/docs/ex", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(t, tc.method, ts.URL+tc.path, []byte(tc.body))
			if status != tc.want {
				t.Fatalf("%s %s = %d, want %d (body %s)", tc.method, tc.path, status, tc.want, body)
			}
			if tc.want != http.StatusMethodNotAllowed {
				var er ErrorResponse
				if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
					t.Errorf("error body = %q, want {\"error\": ...}", body)
				}
			}
		})
	}
}

func TestUpdateViaXUpdateXML(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	if status, _ := do(t, "PUT", ts.URL+"/docs/ex", sampleDocXML(t)); status != 201 {
		t.Fatal("setup create failed")
	}
	txXML := `<transaction confidence="0.5">
  <where>A(C $c)</where>
  <delete select="$c"/>
</transaction>`
	var ur UpdateResponse
	status := doJSON(t, "POST", ts.URL+"/docs/ex/update", UpdateRequest{TxXML: txXML}, &ur)
	if status != 200 {
		t.Fatalf("xupdate = %d", status)
	}
	if ur.Valuations != 1 {
		t.Errorf("valuations = %d, want 1", ur.Valuations)
	}
}

func TestAdminRoutes(t *testing.T) {
	ts, wh := newTestServer(t, Options{})
	if status, _ := do(t, "PUT", ts.URL+"/docs/ex", sampleDocXML(t)); status != 201 {
		t.Fatal("setup create failed")
	}
	var out map[string]bool
	if status := doJSON(t, "POST", ts.URL+"/admin/compact", nil, &out); status != 200 || !out["compacted"] {
		t.Fatalf("compact = %d %v", status, out)
	}
	recs, err := wh.Journal()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("journal after compact has %d records, want 0", len(recs))
	}
	var health map[string]string
	if status := doJSON(t, "GET", ts.URL+"/healthz", nil, &health); status != 200 || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", status, health)
	}
}

func TestStatsTracksRoutes(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	do(t, "PUT", ts.URL+"/docs/ex", sampleDocXML(t))
	do(t, "GET", ts.URL+"/docs/nope", nil)
	snap := serverStats(t, ts)
	if rs := snap.Requests["PUT /docs/{name}"]; rs.Count != 1 || rs.Errors != 0 {
		t.Errorf("PUT route stats = %+v, want count 1, errors 0", rs)
	}
	if rs := snap.Requests["GET /docs/{name}"]; rs.Count != 1 || rs.Errors != 1 {
		t.Errorf("GET route stats = %+v, want count 1, errors 1", rs)
	}
	if snap.Cache.Capacity != DefaultCacheSize {
		t.Errorf("cache capacity = %d, want %d", snap.Cache.Capacity, DefaultCacheSize)
	}
}

// TestStatsSurfacesEngineCounters checks that /stats reports the
// probability-engine counters and that running an exact query advances
// them (the counters are process-global, so only growth is asserted).
func TestStatsSurfacesEngineCounters(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	if status, _ := do(t, "PUT", ts.URL+"/docs/ex", sampleDocXML(t)); status != 201 {
		t.Fatal("setup create failed")
	}
	before := serverStats(t, ts).Engine
	if status, _ := query(t, ts, "ex", QueryRequest{Query: "A(B $b)"}); status != 200 {
		t.Fatal("query failed")
	}
	after := serverStats(t, ts).Engine
	if after.Compiles <= before.Compiles {
		t.Errorf("engine compiles did not advance: %d -> %d", before.Compiles, after.Compiles)
	}
	if after.BitsetCompiles <= before.BitsetCompiles {
		t.Errorf("bitset compiles did not advance: %d -> %d", before.BitsetCompiles, after.BitsetCompiles)
	}
}

// TestStatsSurfacesJournalCounters checks that /stats reports the
// warehouse journal counters and that a mutation advances the durable
// append count.
func TestStatsSurfacesJournalCounters(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	before := serverStats(t, ts).Journal
	if status, _ := do(t, "PUT", ts.URL+"/docs/jc", sampleDocXML(t)); status != 201 {
		t.Fatal("setup create failed")
	}
	after := serverStats(t, ts).Journal
	// A create appends a mutation record and its commit marker.
	if after.Appends != before.Appends+2 {
		t.Errorf("journal appends = %d -> %d, want +2", before.Appends, after.Appends)
	}
	if after.SyncBatches <= before.SyncBatches || after.SyncBatches > after.Appends {
		t.Errorf("sync batches = %d, want in (%d, %d]", after.SyncBatches, before.SyncBatches, after.Appends)
	}
}

// TestStatsSurfacesStorageSection checks that /stats reports the
// storage backend and its footprint, and that a create grows it.
func TestStatsSurfacesStorageSection(t *testing.T) {
	ts, wh := newTestServer(t, Options{})
	before := serverStats(t, ts).Storage
	if before.Backend != wh.Backend() || before.Backend == "" {
		t.Errorf("storage backend = %q, want warehouse's %q", before.Backend, wh.Backend())
	}
	if status, _ := do(t, "PUT", ts.URL+"/docs/st", sampleDocXML(t)); status != 201 {
		t.Fatal("setup create failed")
	}
	after := serverStats(t, ts).Storage
	if after.Docs != before.Docs+1 {
		t.Errorf("storage docs = %d -> %d, want +1", before.Docs, after.Docs)
	}
	if after.Bytes <= before.Bytes || after.LiveBytes <= 0 {
		t.Errorf("storage footprint did not grow: %+v -> %+v", before, after)
	}
}

func TestCacheDisabled(t *testing.T) {
	ts, _ := newTestServer(t, Options{CacheSize: -1})
	if status, _ := do(t, "PUT", ts.URL+"/docs/ex", sampleDocXML(t)); status != 201 {
		t.Fatal("setup create failed")
	}
	for i := 0; i < 2; i++ {
		if _, qr := query(t, ts, "ex", QueryRequest{Query: "A(B)"}); qr.Cached {
			t.Fatal("cache-disabled server returned a cached result")
		}
	}
	if snap := serverStats(t, ts); snap.Cache.Hits != 0 || snap.Cache.Entries != 0 {
		t.Errorf("disabled cache counters = %+v", snap.Cache)
	}
}

// TestOversizedBodyGets413 pins the body-limit status: too large is
// 413, not 400, so clients can tell "back off" from "fix the payload".
func TestOversizedBodyGets413(t *testing.T) {
	ts, _ := newTestServer(t, Options{MaxBodyBytes: 512})
	big := bytes.Repeat([]byte("x"), 2048)
	if status, _ := do(t, "PUT", ts.URL+"/docs/big", big); status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized PUT = %d, want 413", status)
	}
	body := append([]byte(`{"query":"`), big...)
	body = append(body, []byte(`"}`)...)
	if status, _ := do(t, "POST", ts.URL+"/docs/big/query", body); status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized query = %d, want 413", status)
	}
}

// TestConcurrentClients hammers one server with parallel queries and
// updates across two documents; run under -race.
func TestConcurrentClients(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	for _, name := range []string{"a", "b"} {
		if status, _ := do(t, "PUT", ts.URL+"/docs/"+name, sampleDocXML(t)); status != 201 {
			t.Fatal("setup create failed")
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, 128)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			doc := []string{"a", "b"}[i%2]
			for j := 0; j < 10; j++ {
				if i%4 == 3 && j%5 == 0 {
					var ur UpdateResponse
					status := doJSON(t, "POST", ts.URL+"/docs/"+doc+"/update", UpdateRequest{
						Query:      "A $a",
						Confidence: 0.5,
						Ops:        []UpdateOp{{Op: "insert", Var: "a", Tree: fmt.Sprintf("N%d_%d", i, j)}},
					}, &ur)
					if status != 200 {
						errs <- fmt.Sprintf("update %s = %d", doc, status)
					}
					continue
				}
				status, qr := query(t, ts, doc, QueryRequest{Query: "A(B)"})
				if status != 200 || qr.Count < 1 {
					errs <- fmt.Sprintf("query %s = %d count=%d", doc, status, qr.Count)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	snap := serverStats(t, ts)
	if snap.Cache.Misses == 0 {
		t.Error("expected at least one cache miss in concurrent run")
	}
	if strings.Contains(fmt.Sprint(snap.Requests), "error") {
		t.Errorf("unexpected route errors: %+v", snap.Requests)
	}
}
