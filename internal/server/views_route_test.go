package server

import (
	"net/http"
	"strings"
	"testing"
)

// registerSample creates the sample document and registers a view of
// its B leaves.
func registerSample(t *testing.T, ts string) {
	t.Helper()
	status, body := do(t, "PUT", ts+"/docs/doc1", sampleDocXML(t))
	if status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, body)
	}
	var resp ViewResponse
	if s := doJSON(t, "PUT", ts+"/docs/doc1/views/bview", ViewRequest{Query: "A(B $x)"}, &resp); s != http.StatusCreated {
		t.Fatalf("register view: %d", s)
	}
	if resp.Count != 1 || resp.Name != "bview" || resp.Stale {
		t.Fatalf("register response: %+v", resp)
	}
}

func TestViewRoutes(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	registerSample(t, ts.URL)

	// Read: one answer with P(w1) = 0.8.
	var got ViewResponse
	if s := doJSON(t, "GET", ts.URL+"/docs/doc1/views/bview", nil, &got); s != http.StatusOK {
		t.Fatalf("read view: %d", s)
	}
	if got.Count != 1 || got.Answers[0].P != 0.8 || got.Stale {
		t.Fatalf("view read: %+v", got)
	}

	// List.
	var list ViewListResponse
	if s := doJSON(t, "GET", ts.URL+"/docs/doc1/views", nil, &list); s != http.StatusOK {
		t.Fatalf("list views: %d", s)
	}
	if len(list.Views) != 1 || list.Views[0].Name != "bview" || list.Views[0].Query != "A(B $x)" {
		t.Fatalf("view list: %+v", list)
	}

	// An update that deletes B must flow into the maintained answers.
	var upd UpdateResponse
	if s := doJSON(t, "POST", ts.URL+"/docs/doc1/update", UpdateRequest{
		Query: "A(B $b)", Confidence: 0.5, Ops: []UpdateOp{{Op: "delete", Var: "b"}},
	}, &upd); s != http.StatusOK {
		t.Fatalf("update: %d", s)
	}
	if s := doJSON(t, "GET", ts.URL+"/docs/doc1/views/bview", nil, &got); s != http.StatusOK {
		t.Fatalf("read view after update: %d", s)
	}
	if got.Count != 1 || got.Answers[0].P != 0.4 {
		t.Fatalf("view after update: %+v", got)
	}

	// Conflicts and misses map to conventional status codes.
	if s := doJSON(t, "PUT", ts.URL+"/docs/doc1/views/bview", ViewRequest{Query: "A $x"}, nil); s != http.StatusConflict {
		t.Fatalf("duplicate register: %d, want 409", s)
	}
	if s := doJSON(t, "GET", ts.URL+"/docs/doc1/views/nope", nil, nil); s != http.StatusNotFound {
		t.Fatalf("missing view read: %d, want 404", s)
	}
	if s := doJSON(t, "PUT", ts.URL+"/docs/nodoc/views/v", ViewRequest{Query: "A $x"}, nil); s != http.StatusNotFound {
		t.Fatalf("register on missing doc: %d, want 404", s)
	}
	if s := doJSON(t, "PUT", ts.URL+"/docs/doc1/views/bad", ViewRequest{Query: "A((("}, nil); s != http.StatusBadRequest {
		t.Fatalf("register of bad query: %d, want 400", s)
	}
	if s := doJSON(t, "PUT", ts.URL+"/docs/doc1/views/bad", ViewRequest{Query: "A $x", Syntax: "sql"}, nil); s != http.StatusBadRequest {
		t.Fatalf("register of bad syntax: %d, want 400", s)
	}

	// Drop, then 404.
	if s := doJSON(t, "DELETE", ts.URL+"/docs/doc1/views/bview", nil, nil); s != http.StatusOK {
		t.Fatalf("drop view: %d", s)
	}
	if s := doJSON(t, "DELETE", ts.URL+"/docs/doc1/views/bview", nil, nil); s != http.StatusNotFound {
		t.Fatalf("double drop: %d, want 404", s)
	}
}

func TestViewXPathSyntaxAndStats(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	status, body := do(t, "PUT", ts.URL+"/docs/doc1", sampleDocXML(t))
	if status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, body)
	}
	var resp ViewResponse
	if s := doJSON(t, "PUT", ts.URL+"/docs/doc1/views/xp", ViewRequest{Query: "/A/C/D", Syntax: "xpath"}, &resp); s != http.StatusCreated {
		t.Fatalf("register xpath view: %d", s)
	}
	if resp.Count != 1 {
		t.Fatalf("xpath view: %+v", resp)
	}

	// An unrelated insert is provably skippable; the stats section must
	// show the skip and the registration's full recompute.
	if s := doJSON(t, "POST", ts.URL+"/docs/doc1/update", UpdateRequest{
		Query: "A $a", Confidence: 1, Ops: []UpdateOp{{Op: "insert", Var: "a", Tree: "Z:zed"}},
	}, nil); s != http.StatusOK {
		t.Fatalf("update: %d", s)
	}
	var stats StatsSnapshot
	if s := doJSON(t, "GET", ts.URL+"/stats", nil, &stats); s != http.StatusOK {
		t.Fatalf("stats: %d", s)
	}
	if stats.Views.Registered != 1 {
		t.Errorf("views.registered = %d, want 1", stats.Views.Registered)
	}
	if stats.Views.FullRecomputes == 0 {
		t.Errorf("views.full_recomputes = 0, want > 0")
	}
	if stats.Views.Skipped == 0 {
		t.Errorf("views.maintenance_skipped = 0, want > 0 (unrelated insert)")
	}

	// A touching update must drive the incremental tier.
	if s := doJSON(t, "POST", ts.URL+"/docs/doc1/update", UpdateRequest{
		Query: "A(C $c)", Confidence: 0.9, Ops: []UpdateOp{{Op: "insert", Var: "c", Tree: "D:more"}},
	}, nil); s != http.StatusOK {
		t.Fatalf("touching update: %d", s)
	}
	if s := doJSON(t, "GET", ts.URL+"/stats", nil, &stats); s != http.StatusOK {
		t.Fatalf("stats: %d", s)
	}
	if stats.Views.Incremental == 0 {
		t.Errorf("views.maintenance_incremental = 0, want > 0 (touching insert)")
	}

	// Unknown body fields are rejected like everywhere else.
	status, body = do(t, "PUT", ts.URL+"/docs/doc1/views/typo", []byte(`{"qerry":"A $x"}`))
	if status != http.StatusBadRequest || !strings.Contains(string(body), "unknown field") {
		t.Fatalf("typo'd field: %d %s", status, body)
	}
}
