package server

import (
	"net/http"
	"strings"
	"testing"
)

// TestRouteConstantsRegistered pins that every exported Route*
// constant names a pattern the server actually registers: a request
// shaped to the pattern must resolve to it on the mux. pxsim keys its
// client-side metrics and audit expectations by these strings, so a
// constant drifting from the registration would silently break the
// simulator's reconciliation against /stats and /metrics.
func TestRouteConstantsRegistered(t *testing.T) {
	ts, _ := newTestServer(t, Options{ExposeDebugTraces: true})
	defer ts.Close()
	srv := ts.Config.Handler.(*Server)

	all := []string{
		RouteList, RouteCreate, RouteGet, RouteDrop, RouteStat,
		RouteQuery, RouteSearch, RouteUpdate, RouteSimplify,
		RouteViewList, RouteViewPut, RouteViewGet, RouteViewDelete,
		RouteCompact, RouteReopen, RouteStats, RouteMetrics,
		RouteTraces, RouteHealthz, RouteReadyz,
	}
	seen := make(map[string]bool)
	for _, pattern := range all {
		if seen[pattern] {
			t.Errorf("duplicate route constant %q", pattern)
		}
		seen[pattern] = true
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			t.Fatalf("constant %q is not \"METHOD /path\"", pattern)
		}
		// Substitute wildcards with concrete segments so the request
		// parses; the mux reports which pattern it resolved to.
		path = strings.NewReplacer("{name}", "d", "{view}", "v").Replace(path)
		r, err := http.NewRequest(method, "http://example"+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, got := srv.mux.Handler(r)
		if got != pattern {
			t.Errorf("request %s %s resolves to pattern %q, want %q", method, path, got, pattern)
		}
	}
	// Exemption set must stay inside the declared constants, or a
	// renamed route would silently lose its timeout/cap exemption.
	for pattern := range exemptRoutes {
		if !seen[pattern] {
			t.Errorf("exempt route %q is not a declared Route* constant", pattern)
		}
	}
}
