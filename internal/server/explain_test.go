package server

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"repro/internal/obs"
)

// costFamilies is the category ↔ metric-family catalog the conservation
// test asserts over: every CostSnapshot field against the process-wide
// family (or single label series) it mirrors. Families with extra
// labels (the caches) sum across them, matching the cost category's
// definition.
var costFamilies = []struct {
	name   string
	labels map[string]string
	get    func(c obs.CostSnapshot) int64
}{
	{"px_engine_compiles_total", nil, func(c obs.CostSnapshot) int64 { return c.EngineCompiles }},
	{"px_engine_bitset_compiles_total", nil, func(c obs.CostSnapshot) int64 { return c.EngineBitsetCompiles }},
	{"px_engine_memo_hits_total", nil, func(c obs.CostSnapshot) int64 { return c.EngineMemoHits }},
	{"px_engine_memo_misses_total", nil, func(c obs.CostSnapshot) int64 { return c.EngineMemoMisses }},
	{"px_engine_components_total", nil, func(c obs.CostSnapshot) int64 { return c.EngineComponents }},
	{"px_engine_expansion_nodes_total", nil, func(c obs.CostSnapshot) int64 { return c.EngineExpansionNodes }},
	{"px_engine_mc_samples_total", nil, func(c obs.CostSnapshot) int64 { return c.EngineMCSamples }},
	{"px_tpwj_nodes_visited_total", nil, func(c obs.CostSnapshot) int64 { return c.TpwjNodesVisited }},
	{"px_tpwj_matches_total", nil, func(c obs.CostSnapshot) int64 { return c.TpwjMatchesTried }},
	{"px_keyword_postings_scanned_total", nil, func(c obs.CostSnapshot) int64 { return c.KeywordPostingsScanned }},
	{"px_keyword_threshold_prunes_total", nil, func(c obs.CostSnapshot) int64 { return c.KeywordCandidatesPruned }},
	{"px_view_maintenance_total", map[string]string{"tier": "skip"}, func(c obs.CostSnapshot) int64 { return c.ViewMaintSkipped }},
	{"px_view_maintenance_total", map[string]string{"tier": "incremental"}, func(c obs.CostSnapshot) int64 { return c.ViewMaintIncremental }},
	{"px_view_maintenance_total", map[string]string{"tier": "recompute"}, func(c obs.CostSnapshot) int64 { return c.ViewMaintRecomputed }},
	{"px_view_answers_total", map[string]string{"outcome": "reused"}, func(c obs.CostSnapshot) int64 { return c.ViewAnswersReused }},
	{"px_view_answers_total", map[string]string{"outcome": "recomputed"}, func(c obs.CostSnapshot) int64 { return c.ViewAnswersRecomputed }},
	{"px_cache_hits_total", nil, func(c obs.CostSnapshot) int64 { return c.CacheHits }},
	{"px_cache_misses_total", nil, func(c obs.CostSnapshot) int64 { return c.CacheMisses }},
	{"px_journal_bytes_total", nil, func(c obs.CostSnapshot) int64 { return c.JournalBytes }},
}

// scrapeFamilies reads /metrics and sums every conservation family over
// its matching samples (summing across labels the category folds, e.g.
// the query/search cache split).
func scrapeFamilies(t *testing.T, ts *httptest.Server) []int64 {
	t.Helper()
	status, body := do(t, "GET", ts.URL+"/metrics", nil)
	if status != 200 {
		t.Fatalf("GET /metrics = %d", status)
	}
	samples, _ := parseExposition(t, string(body))
	out := make([]int64, len(costFamilies))
	for i, f := range costFamilies {
		var sum float64
		for _, s := range samples {
			if s.name != f.name {
				continue
			}
			match := true
			for k, v := range f.labels {
				if s.labels[k] != v {
					match = false
					break
				}
			}
			if match {
				sum += s.value
			}
		}
		out[i] = int64(sum)
	}
	return out
}

// checkConservation asserts the acceptance criterion of the cost
// accounting: for a single isolated request, the ?explain=1 breakdown
// equals the delta of the process-wide counters across the request —
// exactly, category by category. Any drift means some code path charges
// a counter without going through obs.Charge (or vice versa).
func checkConservation(t *testing.T, what string, wantCharged bool, before, after []int64, cost obs.CostSnapshot) {
	t.Helper()
	charged := false
	for i, f := range costFamilies {
		delta := after[i] - before[i]
		got := f.get(cost)
		if got != delta {
			t.Errorf("%s: %s%v: explain cost %d != counter delta %d", what, f.name, f.labels, got, delta)
		}
		if got != 0 {
			charged = true
		}
	}
	if wantCharged && !charged {
		t.Errorf("%s: explain cost breakdown is all zeros — nothing was charged", what)
	}
}

// TestCostConservation drives one request per instrumented read path
// with ?explain=1 and checks the returned per-request cost breakdown
// against the /metrics counter deltas. The server is otherwise idle, so
// the deltas are exactly the request's charges.
func TestCostConservation(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	createSampleDoc(t, ts)

	// Query (cache miss: full match + compile + prob pipeline).
	before := scrapeFamilies(t, ts)
	var qresp QueryResponse
	if status := doJSON(t, "POST", ts.URL+"/docs/ex/query?explain=1",
		QueryRequest{Query: "A(B $x)"}, &qresp); status != 200 {
		t.Fatalf("query = %d", status)
	}
	if qresp.Explain == nil {
		t.Fatal("?explain=1 query response has no explain")
	}
	checkConservation(t, "query", true, before, scrapeFamilies(t, ts), qresp.Explain.Cost)

	// The cache-hit repeat still conserves: one cache hit, nothing
	// else, and no plan (the cached copy must stay clean).
	before = scrapeFamilies(t, ts)
	var cresp QueryResponse
	if status := doJSON(t, "POST", ts.URL+"/docs/ex/query?explain=1",
		QueryRequest{Query: "A(B $x)"}, &cresp); status != 200 {
		t.Fatalf("cached query = %d", status)
	}
	if cresp.Explain == nil {
		t.Fatal("cached ?explain=1 response has no explain")
	}
	if !cresp.Cached {
		t.Fatal("repeat query was not served from cache")
	}
	if cresp.Explain.Plan != nil {
		t.Errorf("cached response has a plan: %+v", cresp.Explain.Plan)
	}
	if cresp.Explain.Cost.CacheHits != 1 {
		t.Errorf("cached query cost = %+v, want exactly one cache hit", cresp.Explain.Cost)
	}
	checkConservation(t, "cached-query", true, before, scrapeFamilies(t, ts), cresp.Explain.Cost)

	// Search (postings scan + per-candidate probability).
	before = scrapeFamilies(t, ts)
	var sresp SearchResponse
	if status := doJSON(t, "POST", ts.URL+"/docs/ex/search?explain=1",
		SearchRequest{Keywords: []string{"x"}}, &sresp); status != 200 {
		t.Fatalf("search = %d", status)
	}
	if sresp.Explain == nil {
		t.Fatal("?explain=1 search response has no explain")
	}
	checkConservation(t, "search", true, before, scrapeFamilies(t, ts), sresp.Explain.Cost)

	// View read. Registration (which materializes, charging view and
	// journal categories) happens before the scraped window; the read
	// itself serves materialized answers.
	if status := doJSON(t, "PUT", ts.URL+"/docs/ex/views/v",
		ViewRequest{Query: "A(B $x)"}, nil); status != http.StatusCreated {
		t.Fatalf("view put = %d", status)
	}
	before = scrapeFamilies(t, ts)
	var vresp ViewResponse
	if status := doJSON(t, "GET", ts.URL+"/docs/ex/views/v?explain=1", nil, &vresp); status != 200 {
		t.Fatalf("view get = %d", status)
	}
	if vresp.Explain == nil {
		t.Fatal("?explain=1 view response has no explain")
	}
	// An eagerly-materialized view serves its answers without touching
	// any counter — zero cost is the honest breakdown, and conservation
	// must still hold at zero.
	checkConservation(t, "view-read", false, before, scrapeFamilies(t, ts), vresp.Explain.Cost)
}

// TestExplainEcho pins the ?explain=1 plan summary and the opt-in
// contract (no explain without the parameter; independent of ?trace=1).
func TestExplainEcho(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	createSampleDoc(t, ts)

	var resp QueryResponse
	if status := doJSON(t, "POST", ts.URL+"/docs/ex/query?explain=1&trace=1",
		QueryRequest{Query: "A(B $x)"}, &resp); status != 200 {
		t.Fatalf("query = %d", status)
	}
	if resp.Explain == nil || resp.Trace == nil {
		t.Fatalf("explain=%v trace=%v, want both", resp.Explain != nil, resp.Trace != nil)
	}
	plan := resp.Explain.Plan
	if plan == nil {
		t.Fatal("fresh evaluation has no plan")
	}
	if plan.Mode != "exact" || plan.Reason == "" {
		t.Errorf("plan mode %q reason %q, want exact with a reason", plan.Mode, plan.Reason)
	}
	if len(plan.Answers) != resp.Count {
		t.Errorf("plan has %d answer summaries, response has %d answers", len(plan.Answers), resp.Count)
	}
	for i, a := range plan.Answers {
		if a.Events < 0 || a.DNFClauses < 0 || (a.DNFClauses > 0 && a.DNFWidth == 0) {
			t.Errorf("answer plan %d malformed: %+v", i, a)
		}
	}

	// MC mode is reflected in the plan.
	if status := doJSON(t, "POST", ts.URL+"/docs/ex/query?explain=1",
		QueryRequest{Query: "A(B $x)", Mode: "mc", Samples: 500}, &resp); status != 200 {
		t.Fatalf("mc query = %d", status)
	}
	if p := resp.Explain.Plan; p == nil || p.Mode != "mc" || p.Samples != 500 {
		t.Errorf("mc plan = %+v, want mode=mc samples=500", resp.Explain.Plan)
	}
	if resp.Explain.Cost.EngineMCSamples == 0 {
		t.Error("mc evaluation charged no MC samples")
	}

	// Search explain carries candidate/prune counts.
	var sresp SearchResponse
	if status := doJSON(t, "POST", ts.URL+"/docs/ex/search?explain=1",
		SearchRequest{Keywords: []string{"x"}}, &sresp); status != 200 {
		t.Fatalf("search = %d", status)
	}
	if sresp.Explain == nil || sresp.Explain.Plan == nil {
		t.Fatal("search explain/plan missing")
	}
	if sresp.Explain.Cost.KeywordPostingsScanned == 0 {
		t.Error("search charged no postings")
	}

	// Without the parameter, no explain — and the cached copy a prior
	// ?explain=1 request populated must not leak one either.
	if _, r := query(t, ts, "ex", QueryRequest{Query: "A(B $x)"}); r.Explain != nil {
		t.Error("response without ?explain=1 carries explain")
	}
}

// TestStatsRuntime covers the /stats "runtime" section: live values
// from runtime/metrics, quantiles in sane relation.
func TestStatsRuntime(t *testing.T) {
	runtime.GC() // ensure at least one cycle so pause stats exist
	ts, _ := newTestServer(t, Options{})
	snap := serverStats(t, ts)
	rt := snap.Runtime
	if rt.Goroutines <= 0 {
		t.Errorf("runtime.goroutines = %d, want > 0", rt.Goroutines)
	}
	if rt.HeapBytes <= 0 || rt.LiveBytes <= 0 {
		t.Errorf("runtime heap_bytes = %d, live_bytes = %d, want > 0", rt.HeapBytes, rt.LiveBytes)
	}
	if rt.GCCycles <= 0 {
		t.Errorf("runtime.gc_cycles = %d, want > 0 after runtime.GC()", rt.GCCycles)
	}
	if rt.GCPause.Count <= 0 {
		t.Errorf("runtime.gc_pause.count = %d, want > 0 after runtime.GC()", rt.GCPause.Count)
	}
	for _, h := range []obs.RuntimeHistStats{rt.GCPause, rt.SchedLatency} {
		if h.P50MS < 0 || h.P95MS < h.P50MS || h.P99MS < h.P95MS {
			t.Errorf("runtime quantiles out of order: %+v", h)
		}
	}
}

// TestRuntimeMetricsExposition checks the px_runtime_* families on
// /metrics: gauges present with live values, histograms declared and
// internally consistent (cumulative buckets non-decreasing, +Inf equals
// the count — the general invariants TestMetricsExposition asserts for
// every histogram, pinned here explicitly for the runtime families).
func TestRuntimeMetricsExposition(t *testing.T) {
	runtime.GC()
	ts, _ := newTestServer(t, Options{})
	status, body := do(t, "GET", ts.URL+"/metrics", nil)
	if status != 200 {
		t.Fatalf("GET /metrics = %d", status)
	}
	samples, types := parseExposition(t, string(body))

	for _, name := range []string{
		"px_runtime_goroutines",
		"px_runtime_heap_bytes",
		"px_runtime_live_bytes",
		"px_runtime_gc_cycles",
	} {
		s := findSample(samples, name, nil)
		if s == nil {
			t.Errorf("/metrics missing %s", name)
			continue
		}
		if types[name] != "gauge" {
			t.Errorf("%s declared %q, want gauge", name, types[name])
		}
		if s.value <= 0 {
			t.Errorf("%s = %g, want > 0", name, s.value)
		}
	}

	for _, name := range []string{"px_runtime_gc_pause_seconds", "px_runtime_sched_latency_seconds"} {
		if types[name] != "histogram" {
			t.Errorf("%s declared %q, want histogram", name, types[name])
		}
		var count, inf float64
		var last float64
		var buckets int
		sawInf := false
		for _, s := range samples {
			switch s.name {
			case name + "_count":
				count = s.value
			case name + "_bucket":
				buckets++
				if s.value < last {
					t.Errorf("%s: bucket le=%s decreases (%g < %g)", name, s.labels["le"], s.value, last)
				}
				last = s.value
				if s.labels["le"] == "+Inf" {
					sawInf = true
					inf = s.value
				}
			}
		}
		if buckets == 0 {
			t.Errorf("%s has no buckets", name)
			continue
		}
		if !sawInf {
			t.Errorf("%s has no +Inf bucket", name)
		}
		if inf != count {
			t.Errorf("%s: +Inf bucket %g != count %g", name, inf, count)
		}
		if strings.HasSuffix(name, "gc_pause_seconds") && count <= 0 {
			t.Errorf("%s count = %g, want > 0 after runtime.GC()", name, count)
		}
	}
}
