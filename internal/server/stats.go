package server

import (
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/warehouse"
)

// stats accumulates per-route request counters and cache counters.
type stats struct {
	mu           sync.Mutex
	routes       map[string]*routeStats
	hits         int64
	misses       int64
	searchHits   int64
	searchMisses int64
}

type routeStats struct {
	count  int64
	errors int64 // responses with status >= 400
	total  time.Duration
	max    time.Duration
}

func newStats() *stats {
	return &stats{routes: make(map[string]*routeStats)}
}

func (s *stats) record(route string, status int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.routes[route]
	if !ok {
		rs = &routeStats{}
		s.routes[route] = rs
	}
	rs.count++
	if status >= 400 {
		rs.errors++
	}
	rs.total += d
	if d > rs.max {
		rs.max = d
	}
}

func (s *stats) hit() {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
}

func (s *stats) miss() {
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
}

func (s *stats) searchHit() {
	s.mu.Lock()
	s.searchHits++
	s.mu.Unlock()
}

func (s *stats) searchMiss() {
	s.mu.Lock()
	s.searchMisses++
	s.mu.Unlock()
}

// RouteSnapshot reports the request counters of one route.
type RouteSnapshot struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	AvgMS  float64 `json:"avg_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// CacheSnapshot reports the query-result cache counters.
type CacheSnapshot struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	Entries  int     `json:"entries"`
	Capacity int     `json:"capacity"`
}

// SearchSnapshot reports the keyword-search counters: the warehouse's
// index lifecycle (builds, cache hits, invalidations) and engine
// totals (postings, threshold prunes), plus the server's search-result
// cache hits and misses.
type SearchSnapshot struct {
	warehouse.SearchStats
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

// StatsSnapshot is the GET /stats response body. Engine reports the
// probability-engine counters (DNF compiles, bitset fast-path share,
// Shannon memo hits/misses, component decompositions) accumulated over
// the whole process; Journal reports the warehouse's write-ahead
// journal counters (durable appends, group-commit fsync batches, and
// the recovery outcomes of the last Open); Search reports the keyword
// search subsystem (see SearchSnapshot).
type StatsSnapshot struct {
	Requests map[string]RouteSnapshot `json:"requests"`
	Cache    CacheSnapshot            `json:"cache"`
	Engine   event.EngineCounters     `json:"engine"`
	Journal  warehouse.JournalStats   `json:"journal"`
	Search   SearchSnapshot           `json:"search"`
	// Views reports the materialized-view subsystem: registered views
	// and the maintenance-tier counters (skipped / incremental / full
	// recomputes, reused vs recomputed answer probabilities, stale
	// reads served during in-flight maintenance).
	Views warehouse.ViewStats `json:"views"`
}

func (s *stats) snapshot(entries, capacity int, journal warehouse.JournalStats, search warehouse.SearchStats, views warehouse.ViewStats) StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := StatsSnapshot{
		Requests: make(map[string]RouteSnapshot, len(s.routes)),
		Cache: CacheSnapshot{
			Hits:     s.hits,
			Misses:   s.misses,
			Entries:  entries,
			Capacity: capacity,
		},
		Engine:  event.ReadEngineCounters(),
		Journal: journal,
		Search: SearchSnapshot{
			SearchStats: search,
			CacheHits:   s.searchHits,
			CacheMisses: s.searchMisses,
		},
		Views: views,
	}
	if total := s.hits + s.misses; total > 0 {
		out.Cache.HitRate = float64(s.hits) / float64(total)
	}
	for route, rs := range s.routes {
		snap := RouteSnapshot{
			Count:  rs.count,
			Errors: rs.errors,
			MaxMS:  float64(rs.max) / float64(time.Millisecond),
		}
		if rs.count > 0 {
			snap.AvgMS = float64(rs.total) / float64(rs.count) / float64(time.Millisecond)
		}
		out.Requests[route] = snap
	}
	return out
}
