package server

import (
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/warehouse"
)

// Version identifies the build serving /stats and /metrics. "dev" by
// default; release builds override it with
//
//	go build -ldflags "-X repro/internal/server.Version=$(git rev-parse --short HEAD)"
var Version = "dev"

// stats records per-request metrics into the server's obs registry.
//
// The recording hot path is mutex-free: every route's handles (request
// counter, error counter, latency histogram) are created up front when
// the route is registered, so record is a handful of atomic operations
// on pre-resolved pointers. This replaces the
// previous design, where every request took one global sync.Mutex to
// bump counters in a map — under concurrent load all requests
// serialized on that lock at the exact moment they were trying to
// finish.
type stats struct {
	reg   *obs.Registry
	start time.Time

	// routes is written only during construction (stats.register runs
	// from Server.route before the mux serves anything) and read-only
	// afterwards, so record reads it without a lock.
	routes map[string]*routeMetrics

	hits, misses             *obs.Counter // query-result cache
	searchHits, searchMisses *obs.Counter // search-result cache

	// stages maps span names to their px_stage_seconds histogram,
	// populated lazily by the trace onEnd hook (stage names are only
	// known when a span first finishes). sync.Map fits the workload:
	// each key is written once and read forever after.
	stages sync.Map // string -> *obs.Histogram
}

// routeMetrics are one route's pre-registered handles. The maximum
// latency /stats reports comes from the histogram, which tracks its
// largest observation (and uses it to bound overflow-bucket quantile
// interpolation).
type routeMetrics struct {
	count  *obs.Counter
	errors *obs.Counter
	lat    *obs.Histogram
}

func newStats(reg *obs.Registry) *stats {
	return &stats{
		reg:    reg,
		start:  time.Now(),
		routes: make(map[string]*routeMetrics),
		hits: reg.Counter("px_cache_hits_total",
			"result-cache hits by cache (query or search)", obs.L("cache", "query")),
		misses: reg.Counter("px_cache_misses_total",
			"result-cache misses by cache (query or search)", obs.L("cache", "query")),
		searchHits: reg.Counter("px_cache_hits_total",
			"result-cache hits by cache (query or search)", obs.L("cache", "search")),
		searchMisses: reg.Counter("px_cache_misses_total",
			"result-cache misses by cache (query or search)", obs.L("cache", "search")),
	}
}

// register creates the metric handles for a route. Called once per
// route from Server.route, before the server is shared.
func (s *stats) register(route string) {
	s.routes[route] = &routeMetrics{
		count: s.reg.Counter("px_http_requests_total",
			"HTTP requests by route", obs.L("route", route)),
		errors: s.reg.Counter("px_http_request_errors_total",
			"HTTP responses with status >= 400 by route", obs.L("route", route)),
		lat: s.reg.Histogram("px_http_request_seconds",
			"HTTP request latency by route", obs.L("route", route)),
	}
}

// record is the per-request hot path: lock-free, allocation-free.
func (s *stats) record(route string, status int, d time.Duration) {
	rm := s.routes[route]
	if rm == nil {
		return
	}
	rm.count.Inc()
	if status >= 400 {
		rm.errors.Inc()
	}
	rm.lat.Observe(d)
}

// The cache outcome recorders charge the request's cost accumulator
// alongside the labeled global counters; the cost categories fold the
// query and search caches together (the per-cache split stays visible
// on /metrics via the cache label).
func (s *stats) hit(cost *obs.Cost)        { obs.Charge(cost, obs.CostCacheHits, s.hits, 1) }
func (s *stats) miss(cost *obs.Cost)       { obs.Charge(cost, obs.CostCacheMisses, s.misses, 1) }
func (s *stats) searchHit(cost *obs.Cost)  { obs.Charge(cost, obs.CostCacheHits, s.searchHits, 1) }
func (s *stats) searchMiss(cost *obs.Cost) { obs.Charge(cost, obs.CostCacheMisses, s.searchMisses, 1) }

// observeStage feeds one finished span into the per-stage histogram
// family — the Trace onEnd hook. Registry handles are stable per
// (name, labels), so a racing first observation of a stage costs one
// redundant lookup, never a duplicate series.
func (s *stats) observeStage(name string, d time.Duration) {
	h, ok := s.stages.Load(name)
	if !ok {
		h, _ = s.stages.LoadOrStore(name, s.reg.Histogram("px_stage_seconds",
			"pipeline stage latency by span name", obs.L("stage", name)))
	}
	h.(*obs.Histogram).Observe(d)
}

// RouteSnapshot reports the request counters of one route, with
// latency quantiles derived from its histogram.
type RouteSnapshot struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	AvgMS  float64 `json:"avg_ms"`
	MaxMS  float64 `json:"max_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// CacheSnapshot reports the query-result cache counters.
type CacheSnapshot struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	Entries  int     `json:"entries"`
	Capacity int     `json:"capacity"`
}

// SearchSnapshot reports the keyword-search counters: the warehouse's
// index lifecycle (builds, cache hits, invalidations) and engine
// totals (postings, threshold prunes), plus the server's search-result
// cache hits and misses.
type SearchSnapshot struct {
	warehouse.SearchStats
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

// StatsSnapshot is the GET /stats response body. Engine reports the
// probability-engine counters (DNF compiles, bitset fast-path share,
// Shannon memo hits/misses, component decompositions) accumulated over
// the whole process; Journal reports the warehouse's write-ahead
// journal counters (durable appends, group-commit fsync batches, and
// the recovery outcomes of the last Open); Search reports the keyword
// search subsystem (see SearchSnapshot). Every number is read from the
// same obs registries that GET /metrics exposes.
type StatsSnapshot struct {
	// Version is the build identifier (see Version).
	Version string `json:"version"`
	// Degraded reports whether the warehouse is in degraded read-only
	// mode (writes rejected after an unrecoverable storage error);
	// DegradedReason carries the failing operation and error. See
	// docs/FAULTS.md for the recovery runbook.
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Requests      map[string]RouteSnapshot `json:"requests"`
	// Stages reports per-stage latency distributions (span names like
	// "warehouse.query" or "event.prob"), fed by request traces.
	Stages  map[string]obs.HistogramSnapshot `json:"stages,omitempty"`
	Cache   CacheSnapshot                    `json:"cache"`
	Engine  event.EngineCounters             `json:"engine"`
	Journal warehouse.JournalStats           `json:"journal"`
	Search  SearchSnapshot                   `json:"search"`
	// Views reports the materialized-view subsystem: registered views
	// and the maintenance-tier counters (skipped / incremental / full
	// recomputes, reused vs recomputed answer probabilities, stale
	// reads served during in-flight maintenance).
	Views warehouse.ViewStats `json:"views"`
	// Storage reports the active storage backend ("filestore" or "kv")
	// and its on-disk footprint: document count, total bytes, and live
	// bytes (for the kv page store, the subset not reclaimable by
	// compaction; equal to total for the filestore). See
	// docs/STORAGE.md.
	Storage store.Stats `json:"storage"`
	// Runtime reports Go runtime health (goroutines, heap, GC pauses,
	// scheduler latency), read from runtime/metrics. Filled by the
	// Server, which owns the collector.
	Runtime obs.RuntimeStats `json:"runtime"`
}

func (s *stats) snapshot(entries, capacity int, journal warehouse.JournalStats, search warehouse.SearchStats, views warehouse.ViewStats) StatsSnapshot {
	out := StatsSnapshot{
		Version:       Version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      make(map[string]RouteSnapshot, len(s.routes)),
		Cache: CacheSnapshot{
			Hits:     s.hits.Value(),
			Misses:   s.misses.Value(),
			Entries:  entries,
			Capacity: capacity,
		},
		Engine:  event.ReadEngineCounters(),
		Journal: journal,
		Search: SearchSnapshot{
			SearchStats: search,
			CacheHits:   s.searchHits.Value(),
			CacheMisses: s.searchMisses.Value(),
		},
		Views: views,
	}
	if total := out.Cache.Hits + out.Cache.Misses; total > 0 {
		out.Cache.HitRate = float64(out.Cache.Hits) / float64(total)
	}
	for route, rm := range s.routes {
		count := rm.count.Value()
		if count == 0 {
			continue // keep /stats to routes that have actually served
		}
		hs := rm.lat.Snapshot()
		out.Requests[route] = RouteSnapshot{
			Count:  count,
			Errors: rm.errors.Value(),
			AvgMS:  hs.AvgMS,
			MaxMS:  hs.MaxMS,
			P50MS:  hs.P50MS,
			P95MS:  hs.P95MS,
			P99MS:  hs.P99MS,
		}
	}
	s.stages.Range(func(k, v any) bool {
		if out.Stages == nil {
			out.Stages = make(map[string]obs.HistogramSnapshot)
		}
		out.Stages[k.(string)] = v.(*obs.Histogram).Snapshot()
		return true
	})
	return out
}
