package server

import (
	"fmt"
	"testing"
)

func k(doc, q string) queryKey { return queryKey{doc: doc, query: q, mode: "exact"} }

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.put(k("d", "q1"), []Answer{{P: 1}}, c.docGen("d"))
	c.put(k("d", "q2"), []Answer{{P: 2}}, c.docGen("d"))
	if _, ok := c.get(k("d", "q1")); !ok {
		t.Fatal("q1 evicted early")
	}
	// q1 is now most recent; inserting q3 evicts q2.
	c.put(k("d", "q3"), []Answer{{P: 3}}, c.docGen("d"))
	if _, ok := c.get(k("d", "q2")); ok {
		t.Error("q2 not evicted")
	}
	if _, ok := c.get(k("d", "q1")); !ok {
		t.Error("q1 evicted despite being recent")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestLRUPutRefreshes(t *testing.T) {
	c := newLRU(4)
	c.put(k("d", "q"), []Answer{{P: 1}}, c.docGen("d"))
	c.put(k("d", "q"), []Answer{{P: 2}}, c.docGen("d"))
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	got, ok := c.get(k("d", "q"))
	if !ok || got.([]Answer)[0].P != 2 {
		t.Errorf("get = %v %v, want refreshed P=2", got, ok)
	}
}

func TestLRUInvalidateDoc(t *testing.T) {
	c := newLRU(16)
	for i := 0; i < 3; i++ {
		c.put(k("a", fmt.Sprintf("q%d", i)), nil, c.docGen("a"))
		c.put(k("b", fmt.Sprintf("q%d", i)), nil, c.docGen("b"))
	}
	c.invalidateDoc("a")
	if c.len() != 3 {
		t.Errorf("len after invalidate = %d, want 3", c.len())
	}
	if _, ok := c.get(k("a", "q0")); ok {
		t.Error("entry of invalidated doc survived")
	}
	if _, ok := c.get(k("b", "q0")); !ok {
		t.Error("entry of other doc dropped")
	}
}

func TestLRUDisabled(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		c := newLRU(capacity)
		c.put(k("d", "q"), []Answer{{P: 1}}, c.docGen("d"))
		if _, ok := c.get(k("d", "q")); ok {
			t.Errorf("cap=%d: disabled cache returned a hit", capacity)
		}
		if c.len() != 0 {
			t.Errorf("cap=%d: len = %d, want 0", capacity, c.len())
		}
	}
}

func TestLRUModeKeysDistinct(t *testing.T) {
	c := newLRU(8)
	c.put(queryKey{doc: "d", query: "q", mode: "exact"}, []Answer{{P: 1}}, c.docGen("d"))
	if _, ok := c.get(queryKey{doc: "d", query: "q", mode: "mc:1000:1"}); ok {
		t.Error("mc key hit the exact entry")
	}
}

// TestLRUStaleGenerationRejected pins the fix for the fill/invalidate
// race: a result computed before an invalidation must not enter the
// cache afterwards.
func TestLRUStaleGenerationRejected(t *testing.T) {
	c := newLRU(8)
	gen := c.docGen("d")
	// The document is mutated while the filler evaluates.
	c.invalidateDoc("d")
	c.put(k("d", "q"), []Answer{{P: 1}}, gen)
	if _, ok := c.get(k("d", "q")); ok {
		t.Fatal("stale result entered the cache after invalidation")
	}
	// A fill with the fresh generation is accepted.
	c.put(k("d", "q"), []Answer{{P: 2}}, c.docGen("d"))
	if got, ok := c.get(k("d", "q")); !ok || got.([]Answer)[0].P != 2 {
		t.Errorf("fresh fill = %v %v, want P=2 hit", got, ok)
	}
}

// TestLRUGenMapBounded pins the epoch scheme: churning through many
// document names resets the generation map instead of growing it
// forever, and the reset voids outstanding tokens rather than ever
// readmitting a stale fill.
func TestLRUGenMapBounded(t *testing.T) {
	c := newLRU(8)
	gen := c.docGen("keep")
	for i := 0; i < maxGenEntries+10; i++ {
		c.invalidateDoc(fmt.Sprintf("doc%d", i))
	}
	if n := len(c.gens); n > maxGenEntries {
		t.Errorf("gens map has %d entries, want <= %d", n, maxGenEntries)
	}
	c.put(k("keep", "q"), []Answer{{P: 1}}, gen)
	if _, ok := c.get(k("keep", "q")); ok {
		t.Error("token from before the epoch reset was accepted")
	}
	c.put(k("keep", "q"), []Answer{{P: 1}}, c.docGen("keep"))
	if _, ok := c.get(k("keep", "q")); !ok {
		t.Error("fresh token refused after epoch reset")
	}
}
