package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/warehouse"
)

// createSampleDoc uploads the running example document as "ex".
func createSampleDoc(t *testing.T, ts *httptest.Server) {
	t.Helper()
	if status, body := do(t, "PUT", ts.URL+"/docs/ex", sampleDocXML(t)); status != http.StatusCreated {
		t.Fatalf("PUT /docs/ex = %d: %s", status, body)
	}
}

// expoSample is one parsed sample line of the exposition text.
type expoSample struct {
	name   string
	labels map[string]string
	value  float64
}

var expoSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)

// parseExposition parses Prometheus text format 0.0.4, failing the
// test on any malformed line, and returns the samples plus the
// declared TYPE per family.
func parseExposition(t *testing.T, text string) ([]expoSample, map[string]string) {
	t.Helper()
	var samples []expoSample
	types := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") {
				t.Fatalf("unexpected comment line %q", line)
			}
			continue
		}
		m := expoSampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil && m[3] != "+Inf" {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		s := expoSample{name: m[1], labels: make(map[string]string), value: v}
		if m[2] != "" {
			for _, pair := range splitLabelPairs(t, m[2]) {
				eq := strings.Index(pair, "=")
				if eq < 0 {
					t.Fatalf("sample %q: bad label %q", line, pair)
				}
				val, err := strconv.Unquote(pair[eq+1:])
				if err != nil {
					t.Fatalf("sample %q: label value %q not a quoted string: %v", line, pair, err)
				}
				s.labels[pair[:eq]] = val
			}
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes.
func splitLabelPairs(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func findSample(samples []expoSample, name string, labels map[string]string) *expoSample {
	for i := range samples {
		if samples[i].name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if samples[i].labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return &samples[i]
		}
	}
	return nil
}

// TestMetricsExposition scrapes /metrics after real traffic and checks
// that the text parses, that every family is typed, that histograms
// are internally consistent, and that the route counters agree with
// what /stats reports — both must read the same registry.
func TestMetricsExposition(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	createSampleDoc(t, ts)
	if status, resp := query(t, ts, "ex", QueryRequest{Query: "A(B $x)"}); status != 200 || resp.Count == 0 {
		t.Fatalf("query = %d, %+v", status, resp)
	}
	var sresp SearchResponse
	if status := doJSON(t, "POST", ts.URL+"/docs/ex/search",
		SearchRequest{Keywords: []string{"x"}}, &sresp); status != 200 {
		t.Fatalf("search = %d", status)
	}

	status, body := do(t, "GET", ts.URL+"/metrics", nil)
	if status != 200 {
		t.Fatalf("GET /metrics = %d", status)
	}
	samples, types := parseExposition(t, string(body))
	if len(samples) == 0 {
		t.Fatal("no samples in /metrics output")
	}

	// Every sample's family is declared with a TYPE (histogram series
	// reduce to their base family name).
	for _, s := range samples {
		base := s.name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if bn := strings.TrimSuffix(base, suffix); bn != base && types[bn] == "histogram" {
				base = bn
				break
			}
		}
		if types[base] == "" {
			t.Errorf("sample %s has no TYPE declaration", s.name)
		}
	}

	// The pipeline counters of every layer are present.
	for _, name := range []string{
		"px_http_requests_total",
		"px_http_request_seconds_count",
		"px_stage_seconds_count",
		"px_cache_misses_total",
		"px_engine_compiles_total",
		"px_journal_appends_total",
		"px_searches_total",
		"px_build_info",
		"px_uptime_seconds",
	} {
		if findSample(samples, name, nil) == nil {
			t.Errorf("/metrics is missing %s", name)
		}
	}
	for _, stage := range []string{"warehouse.query", "tpwj.match", "event.compile", "event.prob", "keyword.search"} {
		if findSample(samples, "px_stage_seconds_count", map[string]string{"stage": stage}) == nil {
			t.Errorf("/metrics has no px_stage_seconds series for stage %q", stage)
		}
	}

	// Histogram consistency: cumulative buckets are non-decreasing and
	// the +Inf bucket equals the series count.
	counts := make(map[string]float64)
	for _, s := range samples {
		if strings.HasSuffix(s.name, "_count") {
			counts[strings.TrimSuffix(s.name, "_count")+labelSig(s.labels)] = s.value
		}
	}
	last := make(map[string]float64)
	for _, s := range samples {
		if !strings.HasSuffix(s.name, "_bucket") {
			continue
		}
		base := strings.TrimSuffix(s.name, "_bucket")
		sig := base + labelSigExcept(s.labels, "le")
		if s.value < last[sig] {
			t.Errorf("histogram %s: bucket le=%s decreases (%g < %g)", sig, s.labels["le"], s.value, last[sig])
		}
		last[sig] = s.value
		if s.labels["le"] == "+Inf" && s.value != counts[sig] {
			t.Errorf("histogram %s: +Inf bucket %g != count %g", sig, s.value, counts[sig])
		}
	}

	// /metrics and /stats read the same registry: the query route's
	// request counter must match exactly.
	snap := serverStats(t, ts)
	route := "POST /docs/{name}/query"
	s := findSample(samples, "px_http_requests_total", map[string]string{"route": route})
	if s == nil {
		t.Fatalf("no px_http_requests_total sample for route %q", route)
	}
	// The /stats scrape itself may have raced ahead of the /metrics
	// one, but the query route was quiet in between.
	if got := snap.Requests[route].Count; float64(got) != s.value {
		t.Errorf("route %q: /metrics says %g requests, /stats says %d", route, s.value, got)
	}
}

func labelSig(labels map[string]string) string { return labelSigExcept(labels, "") }

func labelSigExcept(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	// Deterministic order without importing sort for two keys.
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, labels[k])
	}
	return b.String()
}

// TestQueryTraceEcho pins the ?trace=1 span tree: the response must
// carry the full request trace with the pipeline stages nested under
// the route root in the documented order.
func TestQueryTraceEcho(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	createSampleDoc(t, ts)

	var resp QueryResponse
	status := doJSON(t, "POST", ts.URL+"/docs/ex/query?trace=1",
		QueryRequest{Query: "A(B $x)"}, &resp)
	if status != 200 {
		t.Fatalf("query = %d", status)
	}
	if resp.Trace == nil {
		t.Fatal("?trace=1 response has no trace")
	}
	root := resp.Trace
	if root.Name != "POST /docs/{name}/query" {
		t.Fatalf("trace root = %q, want the route pattern", root.Name)
	}
	wq := root.Find("warehouse.query")
	if wq == nil {
		t.Fatalf("trace has no warehouse.query span: %+v", root)
	}
	// The pipeline stages are children of the warehouse.query span —
	// presence anywhere is not enough, the nesting must hold.
	for _, stage := range []string{"warehouse.snapshot", "tpwj.match", "event.compile", "event.prob"} {
		if wq.Find(stage) == nil {
			t.Errorf("warehouse.query span has no nested %q span", stage)
		}
	}
	if root.DurUS < wq.DurUS {
		t.Errorf("root span (%v µs) shorter than its child warehouse.query (%v µs)", root.DurUS, wq.DurUS)
	}

	// Without ?trace=1 the response must not carry a trace.
	if _, resp := query(t, ts, "ex", QueryRequest{Query: "A(B $x)"}); resp.Trace != nil {
		t.Error("response without ?trace=1 carries a trace")
	}
}

// TestSearchTraceEcho checks the search pipeline's spans.
func TestSearchTraceEcho(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	createSampleDoc(t, ts)

	var resp SearchResponse
	status := doJSON(t, "POST", ts.URL+"/docs/ex/search?trace=1",
		SearchRequest{Keywords: []string{"x"}}, &resp)
	if status != 200 {
		t.Fatalf("search = %d", status)
	}
	if resp.Trace == nil {
		t.Fatal("?trace=1 search response has no trace")
	}
	for _, stage := range []string{"warehouse.snapshot", "keyword.index", "keyword.search"} {
		if resp.Trace.Find(stage) == nil {
			t.Errorf("search trace has no %q span", stage)
		}
	}
}

// TestDebugTraces exercises the trace ring: after traffic it holds the
// most recent requests, newest first, with their span trees.
func TestDebugTraces(t *testing.T) {
	ts, _ := newTestServer(t, Options{TraceRingSize: 4, ExposeDebugTraces: true})
	createSampleDoc(t, ts)
	for i := 0; i < 6; i++ {
		query(t, ts, "ex", QueryRequest{Query: "A(B $x)"})
	}

	var resp TracesResponse
	if status := doJSON(t, "GET", ts.URL+"/debug/traces", nil, &resp); status != 200 {
		t.Fatalf("GET /debug/traces = %d", status)
	}
	if resp.Count != 4 || len(resp.Traces) != 4 {
		t.Fatalf("ring of 4 after 7 requests holds %d traces", len(resp.Traces))
	}
	if got := resp.Traces[0].Route; got != "POST /docs/{name}/query" {
		t.Errorf("newest trace route = %q", got)
	}
	for i, tr := range resp.Traces {
		if tr.Status != 200 || tr.Spans.Name == "" {
			t.Errorf("trace %d incomplete: %+v", i, tr)
		}
		if tr.Cost == nil {
			t.Errorf("trace %d has no cost profile", i)
		}
		if i > 0 && tr.Time.After(resp.Traces[i-1].Time) {
			t.Errorf("traces not newest-first at %d", i)
		}
	}

	// A disabled ring serves an empty list, not an error.
	ts2, _ := newTestServer(t, Options{TraceRingSize: -1, ExposeDebugTraces: true})
	if status := doJSON(t, "GET", ts2.URL+"/debug/traces", nil, &resp); status != 200 || resp.Count != 0 {
		t.Fatalf("disabled ring: status %d, count %d", status, resp.Count)
	}
}

// TestDebugTracesOffByDefault pins the exposure contract: the public
// mux serves /debug/traces only when ExposeDebugTraces is set —
// operators mount TracesHandler on a private debug listener instead.
func TestDebugTracesOffByDefault(t *testing.T) {
	wh, err := warehouse.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wh.Close() })
	srv := New(wh, Options{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	createSampleDoc(t, ts)
	if status, _ := do(t, "GET", ts.URL+"/debug/traces", nil); status != http.StatusNotFound {
		t.Fatalf("GET /debug/traces on default options = %d, want 404", status)
	}
	// The ring still fills; TracesHandler serves it for a debug mux.
	rec := httptest.NewRecorder()
	srv.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("TracesHandler = %d", rec.Code)
	}
	var resp TracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count == 0 {
		t.Fatal("trace ring empty after traffic: the ring must fill even when the public route is off")
	}
}

// TestSlowQueryLog drives a request over a zero-ish threshold and
// checks the structured record lands in the configured logger.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	ts, _ := newTestServer(t, Options{
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog:       logger,
	})
	createSampleDoc(t, ts)
	query(t, ts, "ex", QueryRequest{Query: "A(B $x)"})

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query record in log: %q", out)
	}
	if !strings.Contains(out, "POST /docs/{name}/query") {
		t.Errorf("slow-query record does not name the route: %q", out)
	}
	if !strings.Contains(out, "warehouse.query") {
		t.Errorf("slow-query record has no span breakdown: %q", out)
	}
	if !strings.Contains(out, `"cost"`) || !strings.Contains(out, "tpwj_nodes_visited") {
		t.Errorf("slow-query record has no cost profile: %q", out)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestStatsUptimeVersion covers the new /stats fields.
func TestStatsUptimeVersion(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	snap := serverStats(t, ts)
	if snap.Version != Version {
		t.Errorf("stats version = %q, want %q", snap.Version, Version)
	}
	if snap.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", snap.UptimeSeconds)
	}
}

// TestObsConcurrency hammers queries, searches and updates while
// other goroutines scrape /metrics, /stats and /debug/traces. Run
// under -race it proves the mutex-free recording and the scrape paths
// are safe against each other.
func TestObsConcurrency(t *testing.T) {
	ts, _ := newTestServer(t, Options{ExposeDebugTraces: true})
	createSampleDoc(t, ts)

	const workers, iters = 4, 15
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 4 {
				case 0:
					if status, _ := query(t, ts, "ex", QueryRequest{Query: "A(B $x)"}); status != 200 {
						t.Errorf("query = %d", status)
					}
				case 1:
					var resp SearchResponse
					if status := doJSON(t, "POST", ts.URL+"/docs/ex/search",
						SearchRequest{Keywords: []string{"x"}}, &resp); status != 200 {
						t.Errorf("search = %d", status)
					}
				case 2:
					var ur UpdateResponse
					status := doJSON(t, "POST", ts.URL+"/docs/ex/update", UpdateRequest{
						Query:      "A $a",
						Confidence: 0.5,
						Ops:        []UpdateOp{{Op: "insert", Var: "$a", Tree: fmt.Sprintf("N%d_%d", g, i)}},
					}, &ur)
					if status != 200 {
						t.Errorf("update = %d", status)
					}
				case 3:
					if status, _ := do(t, "GET", ts.URL+"/docs/ex", nil); status != 200 {
						t.Errorf("GET doc = %d", status)
					}
				}
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			paths := []string{"/metrics", "/stats", "/debug/traces"}
			for i := 0; i < iters; i++ {
				if status, _ := do(t, "GET", ts.URL+paths[(g+i)%len(paths)], nil); status != 200 {
					t.Errorf("scrape %s = %d", paths[(g+i)%len(paths)], status)
				}
			}
		}(g)
	}
	wg.Wait()

	// After the dust settles the registry is coherent: requests were
	// counted and the exposition still parses.
	status, body := do(t, "GET", ts.URL+"/metrics", nil)
	if status != 200 {
		t.Fatalf("final /metrics = %d", status)
	}
	samples, _ := parseExposition(t, string(body))
	s := findSample(samples, "px_http_requests_total", map[string]string{"route": "POST /docs/{name}/query"})
	if s == nil || s.value == 0 {
		t.Fatalf("query route recorded no requests: %+v", s)
	}
}
