package server

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/xmlio"
)

// searchDocXML serializes the library example: two conditioned books,
// one with an author.
func searchDocXML(t *testing.T) []byte {
	t.Helper()
	ft := fuzzy.MustParseTree(
		"lib(book[w1](title:kafka, author:max), shelf(book[w2](title:kafka)))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.5})
	data, err := xmlio.DocXML(ft)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func search(t *testing.T, ts *httptest.Server, doc string, req SearchRequest) (int, SearchResponse) {
	t.Helper()
	var resp SearchResponse
	status := doJSON(t, "POST", ts.URL+"/docs/"+doc+"/search", req, &resp)
	return status, resp
}

func TestSearchRoute(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	if status, _ := do(t, "PUT", ts.URL+"/docs/lib", searchDocXML(t)); status != 201 {
		t.Fatalf("create: %d", status)
	}

	status, resp := search(t, ts, "lib", SearchRequest{Keywords: []string{"kafka"}})
	if status != 200 || resp.Count != 2 || resp.Cached {
		t.Fatalf("search: %d %+v", status, resp)
	}
	if a := resp.Answers[0]; a.Path != "/lib/book/title" || math.Abs(a.P-0.8) > 1e-12 {
		t.Errorf("first answer = %+v", a)
	}

	// The same request again is served from the cache; keyword order
	// and punctuation variants share the entry via the canonical token
	// set.
	status, resp = search(t, ts, "lib", SearchRequest{Keywords: []string{"KAFKA!"}})
	if status != 200 || !resp.Cached || resp.Count != 2 {
		t.Fatalf("cached search: %d %+v", status, resp)
	}

	// ELCA mode and thresholds are distinct cache entries.
	status, resp = search(t, ts, "lib", SearchRequest{Keywords: []string{"kafka"}, Mode: "elca", MinProb: 0.6, TopK: 1})
	if status != 200 || resp.Cached || resp.Count != 1 {
		t.Fatalf("elca search: %d %+v", status, resp)
	}
	if math.Abs(resp.Answers[0].P-0.8) > 1e-12 {
		t.Errorf("elca answer = %+v", resp.Answers[0])
	}
	if resp.Pruned == 0 {
		t.Errorf("expected threshold pruning at min_prob 0.6: %+v", resp)
	}

	// Monte-Carlo estimation.
	status, resp = search(t, ts, "lib", SearchRequest{Keywords: []string{"kafka"}, Prob: "mc", Samples: 20000})
	if status != 200 || resp.Count != 2 {
		t.Fatalf("mc search: %d %+v", status, resp)
	}
	if math.Abs(resp.Answers[0].P-0.8) > 0.02 {
		t.Errorf("mc estimate = %+v", resp.Answers[0])
	}
}

// TestSearchInvalidatedByUpdate is the acceptance check that mutating a
// document invalidates both the cached search results and the inverted
// index, end to end through the HTTP API.
func TestSearchInvalidatedByUpdate(t *testing.T) {
	ts, wh := newTestServer(t, Options{})
	if status, _ := do(t, "PUT", ts.URL+"/docs/lib", searchDocXML(t)); status != 201 {
		t.Fatal("create failed")
	}

	req := SearchRequest{Keywords: []string{"kafka"}}
	if _, resp := search(t, ts, "lib", req); resp.Count != 2 {
		t.Fatalf("initial search: %+v", resp)
	}
	if _, resp := search(t, ts, "lib", req); !resp.Cached {
		t.Fatal("second search not cached")
	}
	invalBefore := wh.SearchStats().IndexInvalidations

	// Insert a third node carrying the keyword.
	status := doJSON(t, "POST", ts.URL+"/docs/lib/update", UpdateRequest{
		Query:      "lib $l",
		Confidence: 1,
		Ops:        []UpdateOp{{Op: "insert", Var: "l", Tree: "note:kafka"}},
	}, nil)
	if status != 200 {
		t.Fatalf("update: %d", status)
	}

	_, resp := search(t, ts, "lib", req)
	if resp.Cached {
		t.Error("post-update search served a stale cached result")
	}
	if resp.Count != 3 {
		t.Errorf("post-update search = %+v, want the inserted note too", resp)
	}
	if got := wh.SearchStats().IndexInvalidations; got != invalBefore+1 {
		t.Errorf("index invalidations = %d, want %d", got, invalBefore+1)
	}
}

func TestSearchBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	if status, _ := do(t, "PUT", ts.URL+"/docs/lib", searchDocXML(t)); status != 201 {
		t.Fatal("create failed")
	}
	cases := []struct {
		name string
		body string
	}{
		{"unknown field", `{"keywords":["kafka"],"minprob":0.5}`},
		{"trailing content", `{"keywords":["kafka"]} {"extra":true}`},
		{"no keywords", `{"keywords":[]}`},
		{"no tokens", `{"keywords":["!!!"]}`},
		{"bad mode", `{"keywords":["kafka"],"mode":"fancy"}`},
		{"bad prob", `{"keywords":["kafka"],"prob":"guess"}`},
		{"min_prob out of range", `{"keywords":["kafka"],"min_prob":1.5}`},
		{"negative top_k", `{"keywords":["kafka"],"top_k":-1}`},
		{"excessive samples", `{"keywords":["kafka"],"prob":"mc","samples":99000000}`},
	}
	for _, tc := range cases {
		status, body := do(t, "POST", ts.URL+"/docs/lib/search", []byte(tc.body))
		if status != 400 {
			t.Errorf("%s: status %d (%s), want 400", tc.name, status, body)
		}
	}
	if status, _ := do(t, "POST", ts.URL+"/docs/nope/search", []byte(`{"keywords":["kafka"]}`)); status != 404 {
		t.Errorf("missing document: %d, want 404", status)
	}
}

// TestUnknownFieldsRejectedEverywhere covers the query and update
// bodies too: a typo'd parameter must fail loudly, not run with
// defaults.
func TestUnknownFieldsRejectedEverywhere(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	if status, _ := do(t, "PUT", ts.URL+"/docs/lib", searchDocXML(t)); status != 201 {
		t.Fatal("create failed")
	}
	for route, body := range map[string]string{
		"query":  `{"query":"lib(book)","samlpes":10}`,
		"update": `{"query":"lib $l","confidnece":0.5}`,
	} {
		status, respBody := do(t, "POST", ts.URL+"/docs/lib/"+route, []byte(body))
		if status != 400 || !strings.Contains(string(respBody), "unknown field") {
			t.Errorf("%s: status %d body %s, want 400 unknown field", route, status, respBody)
		}
	}
}

func TestStatsSearchSection(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	if status, _ := do(t, "PUT", ts.URL+"/docs/lib", searchDocXML(t)); status != 201 {
		t.Fatal("create failed")
	}
	req := SearchRequest{Keywords: []string{"kafka"}, MinProb: 0.9}
	if status, _ := search(t, ts, "lib", req); status != 200 {
		t.Fatal("search failed")
	}
	if status, _ := search(t, ts, "lib", req); status != 200 {
		t.Fatal("search failed")
	}

	var stats StatsSnapshot
	if status := doJSON(t, "GET", ts.URL+"/stats", nil, &stats); status != 200 {
		t.Fatalf("stats: %d", status)
	}
	s := stats.Search
	if s.Searches < 1 || s.IndexBuilds < 1 {
		t.Errorf("search stats missing builds/searches: %+v", s)
	}
	if s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Errorf("search cache counters = hits %d misses %d, want 1/1", s.CacheHits, s.CacheMisses)
	}
	if s.Postings == 0 {
		t.Errorf("no postings counted: %+v", s)
	}
	if s.ThresholdPrunes == 0 {
		t.Errorf("no threshold prunes counted at min_prob 0.9: %+v", s)
	}
}
