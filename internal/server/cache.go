package server

import (
	"container/list"
	"sync"
)

// queryKey identifies one cached result: the document, the canonical
// textual form of the query (so syntactic variants of the same pattern
// share an entry) or keyword set, and the evaluation mode.
type queryKey struct {
	doc   string
	query string
	mode  string // "exact", "mc:<samples>:<seed>" or "search:..."
}

// lruCache is a fixed-capacity LRU map from queryKey to an encoded
// response payload (query answers, search answers). Entries for a
// document are dropped when the document is mutated. A capacity < 1
// disables the cache entirely.
//
// Each document also carries a generation counter, bumped by
// invalidateDoc. A filler reads docGen before evaluating and passes it
// back to put, which rejects the entry when the generation moved — so
// a slow query racing a mutation can never install a stale result.
// The generation map is bounded: past maxGenEntries documents it is
// reset and the epoch (folded into every docGen token) advances, which
// voids all outstanding tokens instead of ever readmitting a stale one.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[queryKey]*list.Element
	gens  map[string]uint64
	epoch uint64
}

// maxGenEntries caps the per-document generation map so churn through
// many uniquely named documents cannot grow it forever.
const maxGenEntries = 4096

type lruEntry struct {
	key   queryKey
	value any
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[queryKey]*list.Element),
		gens:  make(map[string]uint64),
	}
}

func (c *lruCache) enabled() bool { return c.cap > 0 }

// get returns the cached payload and refreshes the entry's recency.
func (c *lruCache) get(k queryKey) (any, bool) {
	if !c.enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// docGen returns the document's current invalidation token (epoch and
// generation), to be passed back to put by a filler that evaluated
// outside the lock.
func (c *lruCache) docGen(doc string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch<<32 | c.gens[doc]
}

// put inserts (or refreshes) an entry, evicting the least recently used
// one beyond capacity. gen is the docGen value read before the payload
// was computed; if the document was invalidated in between, the stale
// entry is discarded.
func (c *lruCache) put(k queryKey, value any, gen uint64) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch<<32|c.gens[k.doc] != gen {
		return
	}
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).value = value
		return
	}
	c.items[k] = c.ll.PushFront(&lruEntry{key: k, value: value})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// invalidateDoc drops every entry of the named document and bumps its
// generation. Called on update, simplify and drop. The scan is bounded
// by the cache capacity, which is small next to the cost of the
// mutation that triggers it.
func (c *lruCache) invalidateDoc(doc string) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.gens) >= maxGenEntries {
		c.gens = make(map[string]uint64)
		c.epoch++
	}
	c.gens[doc]++
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*lruEntry); e.key.doc == doc {
			c.ll.Remove(el)
			delete(c.items, e.key)
		}
		el = next
	}
}

// invalidateAll empties the cache and starts a new epoch, so fills
// computed against pre-reopen snapshots can never land. Called after a
// warehouse Reopen replaces every document snapshot.
func (c *lruCache) invalidateAll() {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens = make(map[string]uint64)
	c.epoch++
	c.ll.Init()
	c.items = make(map[queryKey]*list.Element)
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
