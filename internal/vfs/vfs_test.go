package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "a.txt")
	f, err := OS.OpenFile("doc", name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile("doc", name)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if _, err := OS.Stat("doc", name); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir("doc", dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := OS.Rename("doc", name, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if err := OS.Truncate("doc", filepath.Join(dir, "b.txt"), 2); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove("doc", filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Stat("doc", name); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Stat after remove: %v", err)
	}
}

func TestInjectorFailOnNth(t *testing.T) {
	inj := NewInjector()
	inj.Set("journal.sync", Fault{AfterN: 2})
	for i := 0; i < 2; i++ {
		if err := inj.fire("journal.sync"); err != nil {
			t.Fatalf("call %d tripped early: %v", i, err)
		}
	}
	if err := inj.fire("journal.sync"); !errors.Is(err, ErrInjected) {
		t.Fatalf("third call = %v, want ErrInjected", err)
	}
	if inj.Trips("journal.sync") != 1 || inj.Calls("journal.sync") != 3 {
		t.Fatalf("trips=%d calls=%d", inj.Trips("journal.sync"), inj.Calls("journal.sync"))
	}
}

func TestInjectorFailOnceThenHeal(t *testing.T) {
	inj := NewInjector()
	inj.Set("doc.rename", Fault{Count: 1, Err: syscall.ENOSPC})
	if err := inj.fire("doc.rename"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("first = %v", err)
	}
	if err := inj.fire("doc.rename"); err != nil {
		t.Fatalf("healed call = %v", err)
	}
}

func TestInjectorLatencyOnly(t *testing.T) {
	inj := NewInjector()
	inj.Set("doc.write", Fault{Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := inj.fire("doc.write"); err != nil {
		t.Fatalf("latency fault errored: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("no delay injected (took %v)", d)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector()
	ffs := NewFaultFS(OS, inj)
	inj.Set("journal.write", Fault{Short: true, Count: 1})

	name := filepath.Join(dir, "journal")
	f, err := ffs.OpenFile("journal", name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	if n != 5 {
		t.Fatalf("torn write landed %d bytes, want 5", n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(name)
	if err != nil || string(data) != "01234" {
		t.Fatalf("on disk %q, %v", data, err)
	}

	// Healed: the next write goes through whole.
	f, err = ffs.OpenFile("journal", name, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("56789")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSSyncAndObserved(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector()
	ffs := NewFaultFS(OS, inj)
	inj.Set("views.sync", Fault{})

	f, err := ffs.OpenFile("views", filepath.Join(dir, "views.json"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got := inj.Observed()
	want := map[string]bool{"views.open": true, "views.sync": true, "views.close": true}
	if len(got) != len(want) {
		t.Fatalf("Observed = %v", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("unexpected point %q in %v", p, got)
		}
	}
}

func TestFaultFSCloseReleasesDescriptor(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector()
	ffs := NewFaultFS(OS, inj)
	inj.Set("doc.close", Fault{Count: 1})

	name := filepath.Join(dir, "d.pxml")
	f, err := ffs.OpenFile("doc", name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("close = %v", err)
	}
	// The descriptor was released despite the injected error: removing
	// and recreating the file must work and not hit EMFILE even when
	// repeated many times.
	for i := 0; i < 64; i++ {
		g, err := ffs.OpenFile("doc", name, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
