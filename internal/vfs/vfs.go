// Package vfs is the filesystem seam of the warehouse: a small
// interface covering exactly the operations the storage layer performs
// (open/read/readdir/stat/rename/remove/truncate/mkdir plus per-file
// write/sync/close), a default implementation backed by package os, and
// a programmable fault injector for tests.
//
// Every call names an area — "journal", "doc", "views", "layout" for
// the filestore backend, "kv" plus "layout" for the kv backend — and
// the operation is implied by the method, giving each call site a named
// fault point of the form "<area>.<op>" ("journal.sync", "doc.rename",
// "views.write", ...). The injector matches faults by point, so a test
// can fail the third journal fsync, tear a snapshot write, or add
// latency to every doc rename without the storage code knowing it is
// under test. docs/FAULTS.md catalogs the points the warehouse emits.
//
// The OS implementation ignores the area tags and forwards to package
// os unchanged, so callers keep receiving the raw os errors they
// already classify (fs.ErrNotExist and friends). Both store backends
// (internal/store/filestore, internal/store/kv) are built on this
// interface, so faults inject identically whichever backend a
// warehouse runs on.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the warehouse's view of an open file: sequential reads or
// writes — plus positioned reads for page-structured backends —
// followed by an explicit Sync and Close. (*os.File satisfies it
// directly.)
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem interface all warehouse I/O goes through. The
// area argument tags the subsystem making the call ("journal", "doc",
// "views", "layout") and, combined with the operation name, forms the
// fault point an injector matches on.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics. Point: <area>.open.
	// The returned File's Read/ReadAt/Write/Sync/Close hit <area>.read,
	// .readat, .write, .sync and .close.
	OpenFile(area, name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads the whole file. Point: <area>.readfile.
	ReadFile(area, name string) ([]byte, error)
	// ReadDir lists a directory. Point: <area>.readdir.
	ReadDir(area, name string) ([]fs.DirEntry, error)
	// Stat stats a path. Point: <area>.stat.
	Stat(area, name string) (fs.FileInfo, error)
	// Rename atomically replaces newpath with oldpath. Point: <area>.rename.
	Rename(area, oldpath, newpath string) error
	// Remove deletes a file. Point: <area>.remove.
	Remove(area, name string) error
	// Truncate truncates a file to size. Point: <area>.truncate.
	Truncate(area, name string, size int64) error
	// MkdirAll creates a directory tree. Point: <area>.mkdir.
	MkdirAll(area, name string, perm os.FileMode) error
}

// OS is the default FS: package os, area tags ignored, errors passed
// through untouched.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(_, name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadFile(_, name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(_, name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Stat(_, name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) Rename(_, oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(_, name string) error { return os.Remove(name) }

func (osFS) Truncate(_, name string, size int64) error { return os.Truncate(name, size) }

func (osFS) MkdirAll(_, name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }
