package vfs

import (
	"errors"
	"io/fs"
	"os"
	"sort"
	"sync"
	"time"
)

// ErrInjected is the error a Fault returns when it does not specify
// one of its own. Tests assert on it with errors.Is.
var ErrInjected = errors.New("vfs: injected fault")

// Fault describes one programmable failure at a fault point.
//
// The zero value trips immediately, every time, with ErrInjected. The
// fields carve out the standard shapes:
//
//   - fail-on-Nth-call: AfterN = n-1 (skip the first n-1 matching calls)
//   - fail-once-then-heal: Count = 1
//   - ENOSPC: Err = syscall.ENOSPC
//   - short/torn write: Short = true on a .write point — half the
//     buffer reaches the file, then the error is returned
//   - injected latency: Delay > 0 with Err == nil sleeps without failing
type Fault struct {
	// Err is the error to inject; nil means ErrInjected (unless the
	// fault is latency-only, Delay > 0).
	Err error
	// AfterN skips the first AfterN matching calls before tripping.
	AfterN int
	// Count limits how many times the fault trips; 0 means every
	// matching call after AfterN.
	Count int
	// Short makes a .write point write the first half of the buffer
	// before failing, simulating a torn write.
	Short bool
	// Delay is slept before the operation runs or fails.
	Delay time.Duration
	// latencyOnly is derived at Set time: Delay > 0 and no error shape.
	latencyOnly bool
}

// outcome is the injector's verdict for one call.
type outcome struct {
	delay time.Duration
	err   error
	short bool
}

// Injector decides, per named fault point, whether a call fails. It
// also counts every call it sees, so a test can discover the set of
// fault points a workload exercises (Observed) and how often each
// armed fault actually fired (Trips). All methods are safe for
// concurrent use; the zero Injector is not valid — use NewInjector.
type Injector struct {
	mu     sync.Mutex
	faults map[string]*faultState
	calls  map[string]int
	trips  map[string]int
}

type faultState struct {
	f    Fault
	seen int // matching calls observed since Set
	hits int // times tripped
}

// NewInjector returns an injector with no faults armed: every call
// passes through (but is still counted).
func NewInjector() *Injector {
	return &Injector{
		faults: make(map[string]*faultState),
		calls:  make(map[string]int),
		trips:  make(map[string]int),
	}
}

// Set arms fault f at point (replacing any previous fault there and
// resetting its call window).
func (in *Injector) Set(point string, f Fault) {
	f.latencyOnly = f.Delay > 0 && f.Err == nil && !f.Short
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults[point] = &faultState{f: f}
}

// Clear disarms the fault at point.
func (in *Injector) Clear(point string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.faults, point)
}

// Reset disarms all faults and zeroes all counters.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = make(map[string]*faultState)
	in.calls = make(map[string]int)
	in.trips = make(map[string]int)
}

// Calls reports how many operations have hit point since the last
// Reset, tripped or not.
func (in *Injector) Calls(point string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[point]
}

// Trips reports how many times the fault at point has fired.
func (in *Injector) Trips(point string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.trips[point]
}

// TotalTrips reports the number of fault firings across all points.
func (in *Injector) TotalTrips() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, v := range in.trips {
		n += v
	}
	return n
}

// Observed returns the sorted list of fault points seen since the last
// Reset. Running a workload against a passthrough injector and reading
// Observed is how the sweep test discovers the catalog, so new I/O
// call sites are covered automatically.
func (in *Injector) Observed() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.calls))
	for p := range in.calls {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// check records the call and returns the verdict.
func (in *Injector) check(point string) outcome {
	in.mu.Lock()
	in.calls[point]++
	st := in.faults[point]
	if st == nil {
		in.mu.Unlock()
		return outcome{}
	}
	st.seen++
	if st.seen <= st.f.AfterN || (st.f.Count > 0 && st.hits >= st.f.Count) {
		in.mu.Unlock()
		return outcome{}
	}
	st.hits++
	in.trips[point]++
	o := outcome{delay: st.f.Delay, err: st.f.Err, short: st.f.Short}
	in.mu.Unlock()
	if o.err == nil && !st.f.latencyOnly {
		o.err = ErrInjected
	}
	if st.f.latencyOnly {
		o.err = nil
	}
	return o
}

// fire runs the verdict's side effects (latency) and returns its error.
func (in *Injector) fire(point string) error {
	o := in.check(point)
	if o.delay > 0 {
		time.Sleep(o.delay)
	}
	return o.err
}

// FaultFS wraps an FS, consulting an Injector before every operation.
// It is the test double for OS: same errors pass through, plus
// whatever the injector decides to add.
type FaultFS struct {
	inner FS
	inj   *Injector
}

// NewFaultFS returns an FS that forwards to inner unless inj injects a
// fault for the call's point.
func NewFaultFS(inner FS, inj *Injector) *FaultFS {
	return &FaultFS{inner: inner, inj: inj}
}

func (f *FaultFS) OpenFile(area, name string, flag int, perm os.FileMode) (File, error) {
	if err := f.inj.fire(area + ".open"); err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.inner.OpenFile(area, name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, inj: f.inj, area: area}, nil
}

func (f *FaultFS) ReadFile(area, name string) ([]byte, error) {
	if err := f.inj.fire(area + ".readfile"); err != nil {
		return nil, &fs.PathError{Op: "read", Path: name, Err: err}
	}
	return f.inner.ReadFile(area, name)
}

func (f *FaultFS) ReadDir(area, name string) ([]fs.DirEntry, error) {
	if err := f.inj.fire(area + ".readdir"); err != nil {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: err}
	}
	return f.inner.ReadDir(area, name)
}

func (f *FaultFS) Stat(area, name string) (fs.FileInfo, error) {
	if err := f.inj.fire(area + ".stat"); err != nil {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: err}
	}
	return f.inner.Stat(area, name)
}

func (f *FaultFS) Rename(area, oldpath, newpath string) error {
	if err := f.inj.fire(area + ".rename"); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return f.inner.Rename(area, oldpath, newpath)
}

func (f *FaultFS) Remove(area, name string) error {
	if err := f.inj.fire(area + ".remove"); err != nil {
		return &fs.PathError{Op: "remove", Path: name, Err: err}
	}
	return f.inner.Remove(area, name)
}

func (f *FaultFS) Truncate(area, name string, size int64) error {
	if err := f.inj.fire(area + ".truncate"); err != nil {
		return &fs.PathError{Op: "truncate", Path: name, Err: err}
	}
	return f.inner.Truncate(area, name, size)
}

func (f *FaultFS) MkdirAll(area, name string, perm os.FileMode) error {
	if err := f.inj.fire(area + ".mkdir"); err != nil {
		return &fs.PathError{Op: "mkdir", Path: name, Err: err}
	}
	return f.inner.MkdirAll(area, name, perm)
}

// faultFile routes a File's operations through the injector under the
// opening call's area.
type faultFile struct {
	File
	inj  *Injector
	area string
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err := ff.inj.fire(ff.area + ".read"); err != nil {
		return 0, err
	}
	return ff.File.Read(p)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := ff.inj.fire(ff.area + ".readat"); err != nil {
		return 0, err
	}
	return ff.File.ReadAt(p, off)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	o := ff.inj.check(ff.area + ".write")
	if o.delay > 0 {
		time.Sleep(o.delay)
	}
	if o.err != nil {
		if o.short && len(p) > 0 {
			// Torn write: half the buffer lands before the failure.
			n, werr := ff.File.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, o.err
		}
		return 0, o.err
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	if err := ff.inj.fire(ff.area + ".sync"); err != nil {
		return err
	}
	return ff.File.Sync()
}

func (ff *faultFile) Close() error {
	if err := ff.inj.fire(ff.area + ".close"); err != nil {
		// The underlying descriptor must still be released, or the
		// sweep's reopen would run against leaked handles. The close
		// error the caller sees is the injected one.
		ff.File.Close() //nolint:errcheck // best-effort release behind an injected failure
		return err
	}
	return ff.File.Close()
}
