package fuzzy

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/tree"
)

// slide12 builds the fuzzy tree of slide 12 of the paper:
//
//	A( B[w1 !w2], C( D[w2] ) )   with w1=0.8, w2=0.7
func slide12() *Tree {
	return MustParseTree("A(B[w1 !w2], C(D[w2]))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
}

// slide9doc builds the fuzzy tree whose expansion is the possible-worlds
// set of slide 9: independent B and D.
//
//	A( B[w1], C( D[w2] ) )   with w1=0.8, w2=0.7
func slide9doc() *Tree {
	return MustParseTree("A(B[w1], C(D[w2]))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
}

func TestBuildFluent(t *testing.T) {
	n := NewNode("A",
		NewLeaf("B", "foo").WithCond(event.MustParseCondition("w1 !w2")),
		NewNode("C", NewLeaf("D", "").WithCond(event.MustParseCondition("w2"))),
	)
	if n.Size() != 4 {
		t.Errorf("Size = %d", n.Size())
	}
	if n.Children[0].Cond.String() != "w1 !w2" {
		t.Errorf("cond = %q", n.Children[0].Cond.String())
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := slide12()
	c := orig.Clone()
	c.Root.Children[0].Cond = nil
	c.Root.Children[0].Label = "Z"
	c.Table.MustSet("w9", 0.5)
	if orig.Root.Children[0].Label == "Z" || orig.Root.Children[0].Cond == nil {
		t.Error("clone shares nodes")
	}
	if orig.Table.Has("w9") {
		t.Error("clone shares table")
	}
}

func TestEventsSorted(t *testing.T) {
	ft := slide12()
	ev := ft.Events()
	if len(ev) != 2 || ev[0] != "w1" || ev[1] != "w2" {
		t.Errorf("Events = %v", ev)
	}
}

func TestValidate(t *testing.T) {
	if err := slide12().Validate(); err != nil {
		t.Errorf("slide-12 tree invalid: %v", err)
	}

	// Root with condition is rejected.
	bad := New(MustParse("A[w1]"))
	bad.Table.MustSet("w1", 0.5)
	if err := bad.Validate(); err == nil {
		t.Error("conditioned root accepted")
	}

	// Unknown event is rejected.
	unk := New(MustParse("A(B[zz])"))
	if err := unk.Validate(); err == nil {
		t.Error("unknown event accepted")
	}

	// Mixed content is rejected.
	mixed := New(&Node{Label: "A", Children: []*Node{{Label: "B", Value: "v", Children: []*Node{{Label: "C"}}}}})
	if err := mixed.Validate(); err == nil {
		t.Error("mixed content accepted")
	}

	// Nil pieces are rejected.
	if err := (&Tree{}).Validate(); err == nil {
		t.Error("nil root accepted")
	}
	if err := (&Tree{Root: &Node{Label: "A"}}).Validate(); err == nil {
		t.Error("nil table accepted")
	}
	var nilTree *Tree
	if err := nilTree.Validate(); err == nil {
		t.Error("nil tree accepted")
	}
}

func TestUnderlyingStripsConditions(t *testing.T) {
	u := slide12().Underlying()
	want := tree.MustParse("A(B, C(D))")
	if !tree.Equal(u, want) {
		t.Errorf("Underlying = %s", tree.Format(u))
	}
}

func TestFromDataRoundTrip(t *testing.T) {
	d := tree.MustParse("A(B:foo, C(D:bar))")
	f := FromData(d)
	back := (&Tree{Root: f, Table: event.NewTable()}).Underlying()
	if !tree.Equal(d, back) {
		t.Errorf("round trip failed: %s", tree.Format(back))
	}
}

func TestCanonicalIgnoresSiblingOrder(t *testing.T) {
	a := MustParse("A(B[w1], C[w2])")
	b := MustParse("A(C[w2], B[w1])")
	if Canonical(a) != Canonical(b) {
		t.Error("sibling order should not matter")
	}
	if !Equal(a, b) {
		t.Error("Equal should ignore sibling order")
	}
}

func TestCanonicalSeesConditions(t *testing.T) {
	a := MustParse("A(B[w1])")
	b := MustParse("A(B[!w1])")
	if Equal(a, b) {
		t.Error("different conditions should not be Equal")
	}
	c := MustParse("A(B)")
	if Equal(a, c) {
		t.Error("conditioned and unconditioned nodes should differ")
	}
}

func TestCanonicalNormalizesConditions(t *testing.T) {
	a := &Node{Label: "A", Cond: nil, Children: []*Node{
		{Label: "B", Cond: event.Cond(event.Neg("w2"), event.Pos("w1"), event.Pos("w1"))},
	}}
	b := MustParse("A(B[w1 !w2])")
	if !Equal(a, b) {
		t.Error("canonical form should normalize conditions")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	inputs := []string{
		"A",
		"A(B[w1 !w2]:foo, C(D[w2]))",
		`A("we ird"[w1]:"va lue")`,
		"A(B, B, B[w1])",
	}
	for _, in := range inputs {
		n := MustParse(in)
		back, err := Parse(Format(n))
		if err != nil {
			t.Errorf("re-parse of %q (from %q): %v", Format(n), in, err)
			continue
		}
		if !Equal(n, back) {
			t.Errorf("round trip %q -> %q changed the tree", in, Format(n))
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"A(",
		"A[w1",
		"A[!]",
		"A(B,)",
		"A B",
		"A()",
	}
	for _, s := range cases {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseTreeValidates(t *testing.T) {
	if _, err := ParseTree("A(B[w1])", nil); err == nil {
		t.Error("missing event accepted")
	}
	if _, err := ParseTree("A(B[w1])", map[event.ID]float64{"w1": 1.5}); err == nil {
		t.Error("bad probability accepted")
	}
	ft, err := ParseTree("A(B[w1])", map[event.ID]float64{"w1": 0.5, "unused": 0.1})
	if err != nil {
		t.Fatalf("extra table events should be fine: %v", err)
	}
	if !ft.Table.Has("unused") {
		t.Error("extra event dropped")
	}
}

func TestWalkPathEffectiveConditions(t *testing.T) {
	ft := MustParseTree("A(B[w1](C[w2 w1]))", map[event.ID]float64{"w1": 0.5, "w2": 0.5})
	var got []string
	ft.Root.WalkPath(func(n *Node, path event.Condition) bool {
		got = append(got, n.Label+"="+path.String())
		return true
	})
	want := []string{"A=", "B=w1", "C=w1 w2"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("WalkPath = %v, want %v", got, want)
	}
}

func TestReplaceRemoveChild(t *testing.T) {
	n := MustParse("A(B, C)")
	b, c := n.Children[0], n.Children[1]
	if !n.ReplaceChild(b, MustParse("X"), MustParse("Y")) {
		t.Fatal("ReplaceChild failed")
	}
	if len(n.Children) != 3 || n.Children[0].Label != "X" {
		t.Errorf("children after replace: %v", Format(n))
	}
	if !n.RemoveChild(c) {
		t.Fatal("RemoveChild failed")
	}
	if len(n.Children) != 2 {
		t.Errorf("children after remove: %v", Format(n))
	}
	if n.RemoveChild(c) {
		t.Error("double remove succeeded")
	}
}

func TestTreeString(t *testing.T) {
	s := slide12().String()
	if !strings.Contains(s, "w1=0.8") || !strings.Contains(s, "B[w1 !w2]") {
		t.Errorf("String = %q", s)
	}
}
