package fuzzy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/tree"
	"repro/internal/worlds"
)

// TestGoldenSlide9 reproduces the possible-worlds set of slide 9 (E1):
// expanding A(B[w1], C(D[w2])) with w1=0.8, w2=0.7 yields exactly
//
//	A(C)       P=0.06
//	A(C(D))    P=0.14
//	A(B, C)    P=0.24
//	A(B, C(D)) P=0.56
func TestGoldenSlide9(t *testing.T) {
	got, err := slide9doc().Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := &worlds.Set{}
	want.Add(tree.MustParse("A(C)"), 0.06)
	want.Add(tree.MustParse("A(C(D))"), 0.14)
	want.Add(tree.MustParse("A(B, C)"), 0.24)
	want.Add(tree.MustParse("A(B, C(D))"), 0.56)
	if !got.Equal(want, worlds.Eps) {
		t.Errorf("slide-9 expansion mismatch:\n%s", got)
	}
	if got.Len() != 4 {
		t.Errorf("want 4 distinct worlds, got %d", got.Len())
	}
}

// TestGoldenSlide12 reproduces the semantics example of slide 12 (E2):
// expanding A(B[w1 !w2], C(D[w2])) with w1=0.8, w2=0.7 yields exactly
//
//	A(C)      P=0.06
//	A(C(D))   P=0.70
//	A(B, C)   P=0.24
func TestGoldenSlide12(t *testing.T) {
	got, err := slide12().Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := &worlds.Set{}
	want.Add(tree.MustParse("A(C)"), 0.06)
	want.Add(tree.MustParse("A(C(D))"), 0.70)
	want.Add(tree.MustParse("A(B, C)"), 0.24)
	if !got.Equal(want, worlds.Eps) {
		t.Errorf("slide-12 expansion mismatch:\n%s", got)
	}
	if got.Len() != 3 {
		t.Errorf("want 3 distinct worlds, got %d", got.Len())
	}
}

// TestSlide12Unmerged checks the intermediate, per-assignment view: four
// assignments, two of which produce the same tree A(C(D)).
func TestSlide12Unmerged(t *testing.T) {
	got, err := slide12().ExpandUnmerged()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("want 4 assignment worlds, got %d", got.Len())
	}
	if math.Abs(got.Total()-1) > worlds.Eps {
		t.Errorf("unmerged total = %v", got.Total())
	}
	// Merging the unmerged set equals the merged expansion.
	merged, _ := slide12().Expand()
	if !got.Equal(merged, worlds.Eps) {
		t.Error("unmerged set should normalize to the merged expansion")
	}
}

func TestExpandDistributionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ft := randomFuzzyTree(r, 3, 3)
		s, err := ft.Expand()
		if err != nil {
			t.Log(err)
			return false
		}
		return s.IsDistribution(worlds.Eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randomFuzzyTree builds a small random fuzzy tree over up to nEvents
// events with probabilities in (0,1).
func randomFuzzyTree(r *rand.Rand, depth, nEvents int) *Tree {
	tab := event.NewTable()
	var ids []event.ID
	for i := 0; i < nEvents; i++ {
		id := event.ID(string(rune('a' + i)))
		tab.MustSet(id, 0.1+0.8*r.Float64())
		ids = append(ids, id)
	}
	randCond := func() event.Condition {
		var c event.Condition
		for _, id := range ids {
			switch r.Intn(4) {
			case 0:
				c = append(c, event.Pos(id))
			case 1:
				c = append(c, event.Neg(id))
			}
		}
		return c.Normalize()
	}
	labels := []string{"A", "B", "C", "D"}
	values := []string{"", "v1", "v2"}
	var build func(d int) *Node
	build = func(d int) *Node {
		n := &Node{Label: labels[r.Intn(len(labels))], Cond: randCond()}
		if d <= 0 || r.Intn(3) == 0 {
			n.Value = values[r.Intn(len(values))]
			return n
		}
		k := r.Intn(3)
		for i := 0; i < k; i++ {
			n.Children = append(n.Children, build(d-1))
		}
		if len(n.Children) == 0 {
			n.Value = values[r.Intn(len(values))]
		}
		return n
	}
	root := build(depth)
	root.Cond = nil // root must be unconditioned
	return &Tree{Root: root, Table: tab}
}

func TestExpandRefusesTooManyEvents(t *testing.T) {
	tab := event.NewTable()
	root := &Node{Label: "A"}
	for i := 0; i < MaxExactEvents+1; i++ {
		id, err := tab.Fresh("e", 0.5)
		if err != nil {
			t.Fatal(err)
		}
		root.Add(&Node{Label: "B", Cond: event.Cond(event.Pos(id))})
	}
	ft := &Tree{Root: root, Table: tab}
	if _, err := ft.Expand(); err == nil {
		t.Error("Expand should refuse > MaxExactEvents events")
	}
}

func TestWorldCount(t *testing.T) {
	if got := slide12().WorldCount(); got != 4 {
		t.Errorf("WorldCount = %d, want 4", got)
	}
	plain := New(MustParse("A(B)"))
	if got := plain.WorldCount(); got != 1 {
		t.Errorf("WorldCount(no events) = %d, want 1", got)
	}
}

func TestInstantiate(t *testing.T) {
	ft := slide12()
	got := ft.Instantiate(event.Assignment{"w1": true, "w2": false})
	if !tree.Equal(got, tree.MustParse("A(B, C)")) {
		t.Errorf("Instantiate = %s", tree.Format(got))
	}
	got = ft.Instantiate(event.Assignment{"w1": true, "w2": true})
	if !tree.Equal(got, tree.MustParse("A(C(D))")) {
		t.Errorf("Instantiate = %s", tree.Format(got))
	}
}

func TestInstantiatePrunesSubtrees(t *testing.T) {
	ft := MustParseTree("A(B[w1](C))", map[event.ID]float64{"w1": 0.5})
	got := ft.Instantiate(event.Assignment{"w1": false})
	if !tree.Equal(got, tree.MustParse("A")) {
		t.Errorf("subtree under failed condition should vanish, got %s", tree.Format(got))
	}
}

func TestSampleSetConvergesToExpand(t *testing.T) {
	ft := slide12()
	exact, err := ft.Expand()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	approx, err := ft.SampleSet(100000, r)
	if err != nil {
		t.Fatal(err)
	}
	if !approx.IsDistribution(worlds.Eps) {
		t.Error("sampled set should be a distribution")
	}
	for _, w := range exact.Worlds {
		got := approx.ProbOf(w.Tree)
		if math.Abs(got-w.P) > 0.01 {
			t.Errorf("sampled P(%s) = %v, exact %v", tree.Format(w.Tree), got, w.P)
		}
	}
}

func TestSampleSetValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := slide12().SampleSet(0, r); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestProbNode(t *testing.T) {
	ft := slide12()
	d := ft.Root.Children[1].Children[0] // D[w2]
	p, err := ft.ProbNode(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.7) > 1e-12 {
		t.Errorf("P(D) = %v, want 0.7", p)
	}
	b := ft.Root.Children[0] // B[w1 !w2]
	p, err = ft.ProbNode(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.24) > 1e-12 {
		t.Errorf("P(B) = %v, want 0.24", p)
	}
	if _, err := ft.ProbNode(&Node{Label: "X"}); err == nil {
		t.Error("foreign node accepted")
	}
}

func TestExpandValidatesFirst(t *testing.T) {
	bad := New(MustParse("A(B[nope])"))
	if _, err := bad.Expand(); err == nil {
		t.Error("expand of invalid tree should fail")
	}
}
