package fuzzy

import (
	"repro/internal/event"
)

// SimplifyStats reports what a simplification pass changed.
type SimplifyStats struct {
	NodesRemoved    int // unsatisfiable or certainly-absent nodes pruned
	LiteralsRemoved int // redundant literals dropped from conditions
	SiblingsMerged  int // complementary sibling pairs merged
	EventsRemoved   int // events dropped from the table
}

// Add accumulates other into s.
func (s *SimplifyStats) Add(other SimplifyStats) {
	s.NodesRemoved += other.NodesRemoved
	s.LiteralsRemoved += other.LiteralsRemoved
	s.SiblingsMerged += other.SiblingsMerged
	s.EventsRemoved += other.EventsRemoved
}

// Total returns the total number of changes.
func (s SimplifyStats) Total() int {
	return s.NodesRemoved + s.LiteralsRemoved + s.SiblingsMerged + s.EventsRemoved
}

// Simplify applies all semantics-preserving simplification passes to the
// tree, in place, until a fixpoint is reached ("fuzzy data
// simplification", slide 19). The possible-worlds semantics of the tree
// is unchanged (tested property). It returns the cumulative statistics.
//
// Passes, in order per round:
//  1. PruneUnsat — drop nodes whose effective path condition is
//     unsatisfiable.
//  2. AbsorbAncestorLiterals — drop literals already guaranteed by
//     ancestors.
//  3. FoldCertainEvents — resolve events with probability 0 or 1.
//  4. MergeComplementarySiblings — merge sibling copies that differ in
//     the sign of exactly one literal (undoing deletion expansion where
//     possible).
//  5. DropUnusedEvents — shrink the table to the events still used.
func (t *Tree) Simplify() SimplifyStats {
	var total SimplifyStats
	for round := 0; round < 100; round++ {
		var s SimplifyStats
		s.Add(t.PruneUnsat())
		s.Add(t.AbsorbAncestorLiterals())
		s.Add(t.FoldCertainEvents())
		s.Add(t.MergeComplementarySiblings())
		if s.Total() == 0 {
			break
		}
		total.Add(s)
	}
	total.Add(t.DropUnusedEvents())
	return total
}

// PruneUnsat removes, in place, every node whose effective path condition
// (its condition conjoined with all ancestors') is unsatisfiable. Such
// nodes exist in no possible world.
func (t *Tree) PruneUnsat() SimplifyStats {
	var stats SimplifyStats
	var rec func(n *Node, path event.Condition)
	rec = func(n *Node, path event.Condition) {
		for i := 0; i < len(n.Children); {
			c := n.Children[i]
			eff := path.And(c.Cond)
			if !eff.Satisfiable() {
				stats.NodesRemoved += c.Size()
				n.Children = append(n.Children[:i], n.Children[i+1:]...)
				continue
			}
			rec(c, eff)
			i++
		}
	}
	rec(t.Root, t.Root.Cond.Normalize())
	return stats
}

// AbsorbAncestorLiterals removes, in place, every condition literal that
// already appears in the node's ancestors' conditions: when the node's
// parent chain exists, those literals necessarily hold, so repeating them
// is redundant.
func (t *Tree) AbsorbAncestorLiterals() SimplifyStats {
	var stats SimplifyStats
	var rec func(n *Node, path event.Condition)
	rec = func(n *Node, path event.Condition) {
		for _, c := range n.Children {
			norm := c.Cond.Normalize()
			reduced := norm.Minus(path)
			if len(reduced) < len(norm) {
				stats.LiteralsRemoved += len(norm) - len(reduced)
				c.Cond = reduced
			}
			rec(c, path.And(c.Cond))
		}
	}
	rec(t.Root, t.Root.Cond.Normalize())
	return stats
}

// FoldCertainEvents resolves, in place, events whose probability is
// exactly 0 or 1: literals that certainly hold are dropped from
// conditions, and nodes with a literal that certainly fails are removed.
func (t *Tree) FoldCertainEvents() SimplifyStats {
	var stats SimplifyStats
	certain := make(map[event.ID]bool) // event -> certain truth value
	for _, e := range t.Table.Events() {
		if p, _ := t.Table.Prob(e); p == 0 {
			certain[e] = false
		} else if p == 1 {
			certain[e] = true
		}
	}
	if len(certain) == 0 {
		return stats
	}
	var rec func(n *Node)
	rec = func(n *Node) {
		for i := 0; i < len(n.Children); {
			c := n.Children[i]
			var kept event.Condition
			dead := false
			for _, l := range c.Cond.Normalize() {
				v, ok := certain[l.Event]
				if !ok {
					kept = append(kept, l)
					continue
				}
				if v == l.Neg { // literal certainly false
					dead = true
					break
				}
				stats.LiteralsRemoved++ // literal certainly true
			}
			if dead {
				stats.NodesRemoved += c.Size()
				n.Children = append(n.Children[:i], n.Children[i+1:]...)
				continue
			}
			c.Cond = kept
			rec(c)
			i++
		}
	}
	rec(t.Root)
	return stats
}

// MergeComplementarySiblings merges, in place, pairs of sibling subtrees
// that are identical except that their root conditions differ in the sign
// of exactly one literal: the pair {δ∧w, δ∧¬w} is equivalent to the
// single condition δ. This partially undoes the copy expansion performed
// by conditioned deletions (slide 15).
func (t *Tree) MergeComplementarySiblings() SimplifyStats {
	var stats SimplifyStats
	var rec func(n *Node)
	rec = func(n *Node) {
	restart:
		for i := 0; i < len(n.Children); i++ {
			for j := i + 1; j < len(n.Children); j++ {
				merged, ok := mergeComplementary(n.Children[i], n.Children[j])
				if !ok {
					continue
				}
				n.Children[i] = merged
				n.Children = append(n.Children[:j], n.Children[j+1:]...)
				stats.SiblingsMerged++
				goto restart
			}
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
	return stats
}

// mergeComplementary reports whether a and b are identical fuzzy subtrees
// up to root conditions δ∧l and δ∧¬l, returning the merged node with
// condition δ.
func mergeComplementary(a, b *Node) (*Node, bool) {
	if a.Label != b.Label || a.Value != b.Value {
		return nil, false
	}
	ca, cb := a.Cond.Normalize(), b.Cond.Normalize()
	if len(ca) != len(cb) || len(ca) == 0 {
		return nil, false
	}
	// Find exactly one literal of ca whose negation is in cb, with all
	// other literals shared.
	var pivot *event.Literal
	for _, l := range ca {
		if cb.Contains(l) {
			continue
		}
		if cb.Contains(l.Negate()) {
			if pivot != nil {
				return nil, false // two differing literals
			}
			lcopy := l
			pivot = &lcopy
			continue
		}
		return nil, false // literal absent from cb entirely
	}
	if pivot == nil {
		return nil, false // identical conditions: duplicates are kept (bag semantics)
	}
	// Subtrees below must be identical, including conditions.
	if childrenCanonical(a) != childrenCanonical(b) {
		return nil, false
	}
	merged := a.Clone()
	merged.Cond = ca.Minus(event.Cond(*pivot))
	return merged, true
}

func childrenCanonical(n *Node) string {
	tmp := &Node{Label: "x", Children: n.Children}
	return Canonical(tmp)
}

// DropUnusedEvents removes from the table, in place, every event that no
// condition in the tree mentions.
func (t *Tree) DropUnusedEvents() SimplifyStats {
	var stats SimplifyStats
	used := make(map[event.ID]bool)
	for _, e := range t.Events() {
		used[e] = true
	}
	for _, e := range t.Table.Events() {
		if !used[e] {
			t.Table.Delete(e)
			stats.EventsRemoved++
		}
	}
	return stats
}
