// Package fuzzy implements the fuzzy tree model, the central contribution
// of Abiteboul and Senellart (EDBT 2006): a single data tree whose nodes
// carry conditions — conjunctions of probabilistic event literals — plus
// an event probability table. The possible-worlds semantics of a fuzzy
// tree is obtained by enumerating truth assignments of the events: a node
// exists in a world iff its condition and all of its ancestors'
// conditions hold under the assignment.
//
// The model is as expressive as the possible-worlds model (slide 12);
// FromWorlds implements the encoding direction of the theorem and Expand
// the semantics direction.
package fuzzy

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/event"
	"repro/internal/tree"
)

// Node is a fuzzy-tree node: a data-tree node with an attached condition.
// The condition guards the existence of the node (and hence of its whole
// subtree) in a possible world. A nil condition means the node always
// exists when its parent does.
type Node struct {
	Label    string
	Value    string
	Cond     event.Condition
	Children []*Node
}

// NewNode returns an internal fuzzy node with the given label and children.
func NewNode(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// NewLeaf returns a fuzzy leaf with the given label and textual value.
func NewLeaf(label, value string) *Node {
	return &Node{Label: label, Value: value}
}

// WithCond sets the node's condition (normalized) and returns the node,
// enabling fluent construction.
func (n *Node) WithCond(c event.Condition) *Node {
	n.Cond = c.Normalize()
	return n
}

// Add appends children and returns the node.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// IsLeaf reports whether n has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Label: n.Label, Value: n.Value, Cond: n.Cond.Clone()}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Walk visits the subtree rooted at n in preorder; fn returning false
// stops the walk.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	stack := []*Node{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(cur) {
			return
		}
		for i := len(cur.Children) - 1; i >= 0; i-- {
			stack = append(stack, cur.Children[i])
		}
	}
}

// WalkPath visits the subtree in preorder, passing each node's effective
// path condition: the normalized conjunction of the conditions of the
// node and all its ancestors. fn returning false prunes the walk below
// that node (siblings are still visited).
func (n *Node) WalkPath(fn func(n *Node, path event.Condition) bool) {
	if n == nil {
		return
	}
	var rec func(m *Node, acc event.Condition)
	rec = func(m *Node, acc event.Condition) {
		eff := acc.And(m.Cond)
		if !fn(m, eff) {
			return
		}
		for _, c := range m.Children {
			rec(c, eff)
		}
	}
	rec(n, nil)
}

// RemoveChild removes the first occurrence of child (pointer identity).
func (n *Node) RemoveChild(child *Node) bool {
	for i, c := range n.Children {
		if c == child {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			return true
		}
	}
	return false
}

// ReplaceChild replaces the first occurrence of old (pointer identity)
// with the given replacements.
func (n *Node) ReplaceChild(old *Node, repl ...*Node) bool {
	for i, c := range n.Children {
		if c == old {
			rest := append([]*Node{}, n.Children[i+1:]...)
			n.Children = append(n.Children[:i], repl...)
			n.Children = append(n.Children, rest...)
			return true
		}
	}
	return false
}

// Tree is a fuzzy tree: a conditioned data tree plus the probability
// table of its events. The root must be unconditioned, so every possible
// world contains at least the root (as in the paper, where the document
// root always exists).
type Tree struct {
	Root  *Node
	Table *event.Table
}

// New returns a fuzzy tree with the given root and an empty event table.
func New(root *Node) *Tree {
	return &Tree{Root: root, Table: event.NewTable()}
}

// Clone returns a deep copy of the fuzzy tree, including its table.
func (t *Tree) Clone() *Tree {
	return &Tree{Root: t.Root.Clone(), Table: t.Table.Clone()}
}

// Size returns the number of nodes.
func (t *Tree) Size() int { return t.Root.Size() }

// Events returns the sorted distinct events used in the tree's conditions.
func (t *Tree) Events() []event.ID {
	set := make(map[event.ID]struct{})
	t.Root.Walk(func(n *Node) bool {
		for _, l := range n.Cond {
			set[l.Event] = struct{}{}
		}
		return true
	})
	out := make([]event.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks the invariants of the model: structurally valid
// underlying tree, unconditioned root, and every event used in a
// condition present in the table.
func (t *Tree) Validate() error {
	if t == nil || t.Root == nil {
		return errors.New("fuzzy: nil tree or root")
	}
	if t.Table == nil {
		return errors.New("fuzzy: nil event table")
	}
	if len(t.Root.Cond) > 0 {
		return fmt.Errorf("fuzzy: root must be unconditioned, has %q", t.Root.Cond)
	}
	var err error
	t.Root.Walk(func(n *Node) bool {
		if n.Label == "" {
			err = errors.New("fuzzy: node with empty label")
			return false
		}
		if n.Value != "" && len(n.Children) > 0 {
			err = fmt.Errorf("fuzzy: mixed content at %q", n.Label)
			return false
		}
		for _, ev := range n.Cond.Events() {
			if !t.Table.Has(ev) {
				err = fmt.Errorf("fuzzy: condition of %q uses unknown event %q", n.Label, ev)
				return false
			}
		}
		return true
	})
	return err
}

// Underlying returns the data tree obtained by stripping all conditions.
func (t *Tree) Underlying() *tree.Node {
	var conv func(n *Node) *tree.Node
	conv = func(n *Node) *tree.Node {
		m := &tree.Node{Label: n.Label, Value: n.Value}
		for _, c := range n.Children {
			m.Children = append(m.Children, conv(c))
		}
		return m
	}
	return conv(t.Root)
}

// FromData lifts a plain data tree into an (unconditioned) fuzzy node
// hierarchy.
func FromData(n *tree.Node) *Node {
	m := &Node{Label: n.Label, Value: n.Value}
	for _, c := range n.Children {
		m.Children = append(m.Children, FromData(c))
	}
	return m
}

// Canonical returns a canonical serialization of the fuzzy subtree rooted
// at n, including conditions: isomorphic fuzzy trees (up to sibling
// order, with bag semantics) share the canonical string.
func Canonical(n *Node) string {
	if n == nil {
		return ""
	}
	var b strings.Builder
	writeCanonical(&b, n)
	return b.String()
}

func writeCanonical(b *strings.Builder, n *Node) {
	b.WriteString(strconv.Quote(n.Label))
	if n.Value != "" {
		b.WriteByte(':')
		b.WriteString(strconv.Quote(n.Value))
	}
	if c := n.Cond.Normalize(); len(c) > 0 {
		b.WriteByte('[')
		b.WriteString(c.String())
		b.WriteByte(']')
	}
	if len(n.Children) == 0 {
		return
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = Canonical(c)
	}
	sort.Strings(parts)
	b.WriteByte('(')
	b.WriteString(strings.Join(parts, ","))
	b.WriteByte(')')
}

// Equal reports whether two fuzzy subtrees are syntactically isomorphic
// (same labels, values, normalized conditions, and child bags). Semantic
// equivalence of fuzzy trees is compared through Expand.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	return Canonical(a) == Canonical(b)
}

// Format renders the fuzzy subtree in a textual form extending the tree
// package's format with bracketed conditions:
//
//	A(B[w1 !w2]:foo, C(D[w2]))
func Format(n *Node) string {
	if n == nil {
		return ""
	}
	var b strings.Builder
	writeText(&b, n)
	return b.String()
}

func writeText(b *strings.Builder, n *Node) {
	b.WriteString(quoteIfNeeded(n.Label))
	if c := n.Cond.Normalize(); len(c) > 0 {
		b.WriteByte('[')
		b.WriteString(c.String())
		b.WriteByte(']')
	}
	if n.Value != "" {
		b.WriteByte(':')
		b.WriteString(quoteIfNeeded(n.Value))
	}
	if len(n.Children) > 0 {
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			writeText(b, c)
		}
		b.WriteByte(')')
	}
}

func quoteIfNeeded(s string) string {
	for _, r := range s {
		ok := r == '_' || r == '-' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return strconv.Quote(s)
		}
	}
	if s == "" {
		return strconv.Quote(s)
	}
	return s
}

// String implements fmt.Stringer for fuzzy trees, rendering the tree and
// its table.
func (t *Tree) String() string {
	return fmt.Sprintf("%s with %s", Format(t.Root), t.Table)
}
