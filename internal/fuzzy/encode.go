package fuzzy

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/worlds"
)

// FromWorlds encodes a possible-worlds distribution as a fuzzy tree,
// implementing the constructive direction of the expressiveness theorem
// (slide 12: "the fuzzy tree model is as expressive as the possible
// worlds model").
//
// All worlds must share the same root label and root value (always the
// case for sets arising from a fuzzy tree, whose root is unconditioned).
// Worlds are first normalized; for the resulting worlds t₁…t_n with
// probabilities p₁…p_n, the children forest of world i is attached under
// the shared root guarded by the mutually exclusive condition chain
//
//	γᵢ = ¬e₁ … ¬e_{i−1} eᵢ   (γ_n = ¬e₁ … ¬e_{n−1})
//
// with P(eᵢ) = pᵢ / (1 − p₁ − … − p_{i−1}), so that P(γᵢ) = pᵢ.
// Events are named prefix1, prefix2, …; prefix defaults to "e".
func FromWorlds(s *worlds.Set, prefix string) (*Tree, error) {
	if prefix == "" {
		prefix = "e"
	}
	n := s.Normalize()
	if n.Len() == 0 {
		return nil, fmt.Errorf("fuzzy: cannot encode an empty possible-worlds set")
	}
	if !n.IsDistribution(worlds.Eps) {
		return nil, fmt.Errorf("fuzzy: worlds sum to %v, not a distribution", n.Total())
	}
	first := n.Worlds[0].Tree
	for _, w := range n.Worlds[1:] {
		if w.Tree.Label != first.Label || w.Tree.Value != first.Value {
			return nil, fmt.Errorf("fuzzy: worlds do not share a common root: %s:%s vs %s:%s",
				first.Label, first.Value, w.Tree.Label, w.Tree.Value)
		}
	}

	root := &Node{Label: first.Label, Value: first.Value}
	tab := event.NewTable()
	if n.Len() == 1 {
		for _, c := range n.Worlds[0].Tree.Children {
			root.Add(FromData(c))
		}
		return &Tree{Root: root, Table: tab}, nil
	}

	// Condition chain: prior accumulates ¬e₁…¬e_{i−1}; remaining is the
	// unallocated probability mass.
	var prior event.Condition
	remaining := 1.0
	for i, w := range n.Worlds {
		var gamma event.Condition
		if i == n.Len()-1 {
			gamma = prior.Clone()
		} else {
			pe := w.P / remaining
			if pe > 1 {
				pe = 1 // guard against floating-point drift
			}
			e := event.ID(fmt.Sprintf("%s%d", prefix, i+1))
			if err := tab.Set(e, pe); err != nil {
				return nil, err
			}
			gamma = prior.And(event.Cond(event.Pos(e)))
			prior = prior.And(event.Cond(event.Neg(e)))
			remaining -= w.P
		}
		for _, c := range w.Tree.Children {
			fc := FromData(c)
			fc.Cond = gamma.And(fc.Cond)
			root.Add(fc)
		}
	}
	return &Tree{Root: root, Table: tab}, nil
}
