package fuzzy

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/event"
	"repro/internal/tree"
	"repro/internal/worlds"
)

// MaxExactEvents bounds the number of distinct events Expand will
// enumerate exactly (2^n assignments). Beyond this, use Sample/SampleSet.
const MaxExactEvents = 20

// WorldCount returns the number of assignments Expand would enumerate
// (2^#events), saturating at math.MaxInt64.
func (t *Tree) WorldCount() int64 {
	n := len(t.Events())
	if n >= 63 {
		return math.MaxInt64
	}
	return int64(1) << uint(n)
}

// Expand computes the possible-worlds semantics of the fuzzy tree: it
// enumerates all assignments of the events used in the tree, instantiates
// the surviving data tree for each, and returns the normalized
// possible-worlds set (isomorphic worlds merged). The result is a
// distribution (probabilities sum to 1).
//
// Expand is exponential in the number of distinct events and refuses to
// run beyond MaxExactEvents; this exactness cliff is precisely why the
// paper queries and updates fuzzy trees directly instead of their
// expansions (experiments E2/E3).
func (t *Tree) Expand() (*worlds.Set, error) {
	return t.expand(true)
}

// ExpandUnmerged is Expand without the final normalization: one world per
// assignment, in deterministic order (as on slide 9, where the four
// assignment worlds are shown before merging). Zero-probability worlds
// are kept.
func (t *Tree) ExpandUnmerged() (*worlds.Set, error) {
	return t.expand(false)
}

func (t *Tree) expand(merge bool) (*worlds.Set, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	events := t.Events()
	if len(events) > MaxExactEvents {
		return nil, fmt.Errorf("fuzzy: %d events exceed MaxExactEvents=%d (2^%d worlds); use SampleSet",
			len(events), MaxExactEvents, len(events))
	}
	s := &worlds.Set{}
	err := t.Table.ForEachAssignment(events, func(a event.Assignment, p float64) bool {
		s.Add(t.Instantiate(a), p)
		return true
	})
	if err != nil {
		return nil, err
	}
	if merge {
		return s.Normalize(), nil
	}
	return s, nil
}

// Instantiate returns the data tree of the possible world described by
// the assignment: nodes whose condition fails (or whose ancestor was
// pruned) are removed; conditions are stripped. The root always survives
// (it is unconditioned by Validate; an instantiation of an unvalidated
// tree keeps the root regardless of its condition).
func (t *Tree) Instantiate(a event.Assignment) *tree.Node {
	var conv func(n *Node) *tree.Node
	conv = func(n *Node) *tree.Node {
		m := &tree.Node{Label: n.Label, Value: n.Value}
		for _, c := range n.Children {
			if c.Cond.Eval(a) {
				m.Children = append(m.Children, conv(c))
			}
		}
		return m
	}
	return conv(t.Root)
}

// Sample draws one possible world at random according to the event
// probabilities. It runs in time linear in the tree size and the number
// of events, independently of the 2^n world count.
func (t *Tree) Sample(r *rand.Rand) *tree.Node {
	a := t.Table.SampleAssignment(t.Events(), r)
	return t.Instantiate(a)
}

// SampleSet estimates the possible-worlds distribution by drawing n
// worlds and normalizing their frequencies. It is the scalable
// alternative to Expand for trees with many events.
func (t *Tree) SampleSet(n int, r *rand.Rand) (*worlds.Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fuzzy: non-positive sample count %d", n)
	}
	s := &worlds.Set{}
	p := 1 / float64(n)
	for i := 0; i < n; i++ {
		s.Add(t.Sample(r), p)
	}
	return s.Normalize(), nil
}

// ProbNode returns the marginal probability that the given node (a node
// of t, identified by pointer) exists: the probability of its effective
// path condition.
func (t *Tree) ProbNode(target *Node) (float64, error) {
	var found event.Condition
	ok := false
	t.Root.WalkPath(func(n *Node, path event.Condition) bool {
		if n == target {
			found, ok = path, true
			return false
		}
		return true
	})
	if !ok {
		return 0, fmt.Errorf("fuzzy: node not in tree")
	}
	return t.Table.ProbCond(found)
}
