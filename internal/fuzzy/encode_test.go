package fuzzy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tree"
	"repro/internal/worlds"
)

// TestExpressivenessSlide9 checks the expressiveness theorem (slide 12)
// on the slide-9 set: encoding it as a fuzzy tree and expanding gives the
// original set back.
func TestExpressivenessSlide9(t *testing.T) {
	orig := &worlds.Set{}
	orig.Add(tree.MustParse("A(C)"), 0.06)
	orig.Add(tree.MustParse("A(C(D))"), 0.14)
	orig.Add(tree.MustParse("A(B, C)"), 0.24)
	orig.Add(tree.MustParse("A(B, C(D))"), 0.56)

	ft, err := FromWorlds(orig, "e")
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.Validate(); err != nil {
		t.Fatalf("encoded tree invalid: %v", err)
	}
	back, err := ft.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(orig, 1e-9) {
		t.Errorf("round trip mismatch:\norig:\n%s\nback:\n%s", orig, back)
	}
}

func TestFromWorldsSingleWorld(t *testing.T) {
	s := &worlds.Set{}
	s.Add(tree.MustParse("A(B:foo)"), 1)
	ft, err := FromWorlds(s, "")
	if err != nil {
		t.Fatal(err)
	}
	if ft.Table.Len() != 0 {
		t.Errorf("single world should need no events, table has %d", ft.Table.Len())
	}
	back, _ := ft.Expand()
	if !back.Equal(s, 1e-9) {
		t.Error("single-world round trip failed")
	}
}

func TestFromWorldsLeafWorlds(t *testing.T) {
	s := &worlds.Set{}
	s.Add(tree.MustParse("A:val"), 1)
	ft, err := FromWorlds(s, "e")
	if err != nil {
		t.Fatal(err)
	}
	back, _ := ft.Expand()
	if !back.Equal(s, 1e-9) {
		t.Error("leaf world round trip failed")
	}
}

func TestFromWorldsErrors(t *testing.T) {
	if _, err := FromWorlds(&worlds.Set{}, "e"); err == nil {
		t.Error("empty set accepted")
	}

	notDist := &worlds.Set{}
	notDist.Add(tree.MustParse("A"), 0.4)
	if _, err := FromWorlds(notDist, "e"); err == nil {
		t.Error("non-distribution accepted")
	}

	diffRoots := &worlds.Set{}
	diffRoots.Add(tree.MustParse("A"), 0.5)
	diffRoots.Add(tree.MustParse("B"), 0.5)
	if _, err := FromWorlds(diffRoots, "e"); err == nil {
		t.Error("differing roots accepted")
	}

	diffValues := &worlds.Set{}
	diffValues.Add(tree.MustParse("A:x"), 0.5)
	diffValues.Add(tree.MustParse("A:y"), 0.5)
	if _, err := FromWorlds(diffValues, "e"); err == nil {
		t.Error("differing root values accepted")
	}
}

// TestExpressivenessRandom is the property form of the theorem: any
// random distribution over trees with a shared root encodes and expands
// back to itself.
func TestExpressivenessRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		s := &worlds.Set{}
		remaining := 1.0
		for i := 0; i < n; i++ {
			p := remaining
			if i < n-1 {
				p = remaining * (0.2 + 0.6*r.Float64())
			}
			remaining -= p
			// Random children forest under shared root "R".
			root := tree.New("R")
			k := r.Intn(3)
			for j := 0; j < k; j++ {
				root.Add(randomDataTree(r, 2))
			}
			s.Add(root, p)
		}
		ft, err := FromWorlds(s, "e")
		if err != nil {
			t.Log(err)
			return false
		}
		back, err := ft.Expand()
		if err != nil {
			t.Log(err)
			return false
		}
		return back.Equal(s, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randomDataTree(r *rand.Rand, depth int) *tree.Node {
	labels := []string{"A", "B", "C"}
	n := tree.New(labels[r.Intn(len(labels))])
	if depth <= 0 || r.Intn(2) == 0 {
		n.Value = []string{"", "x", "y"}[r.Intn(3)]
		return n
	}
	k := 1 + r.Intn(2)
	for i := 0; i < k; i++ {
		n.Add(randomDataTree(r, depth-1))
	}
	return n
}

// TestFromWorldsConditionsMutuallyExclusive verifies the structure of the
// encoding: the chain conditions of distinct worlds can never hold
// simultaneously.
func TestFromWorldsConditionsMutuallyExclusive(t *testing.T) {
	s := &worlds.Set{}
	s.Add(tree.MustParse("R(X)"), 0.3)
	s.Add(tree.MustParse("R(Y)"), 0.3)
	s.Add(tree.MustParse("R(Z)"), 0.4)
	ft, err := FromWorlds(s, "e")
	if err != nil {
		t.Fatal(err)
	}
	conds := make([]string, 0, 3)
	for _, c := range ft.Root.Children {
		conds = append(conds, c.Cond.String())
	}
	// Pairwise conjunctions must be unsatisfiable.
	for i := 0; i < len(ft.Root.Children); i++ {
		for j := i + 1; j < len(ft.Root.Children); j++ {
			and := ft.Root.Children[i].Cond.And(ft.Root.Children[j].Cond)
			if and.Satisfiable() {
				t.Errorf("conditions %q and %q not mutually exclusive", conds[i], conds[j])
			}
		}
	}
}
