package fuzzy

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/event"
)

// Parse parses the fuzzy textual format produced by Format:
//
//	node  := label ["[" condition "]"] [":" value] ["(" node ("," node)* ")"]
//
// where condition uses the event-literal syntax of event.ParseCondition
// ("w1 !w2"). Labels and values are barewords or quoted Go strings, as in
// the tree package. Parse returns only the node hierarchy; the caller
// supplies the event table (see ParseTree).
func Parse(s string) (*Node, error) {
	p := &parser{input: s}
	p.skipSpace()
	n, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, p.errf("trailing input")
	}
	return n, nil
}

// MustParse is like Parse but panics on error; for constant inputs.
func MustParse(s string) *Node {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

// ParseTree parses a fuzzy node hierarchy and pairs it with the given
// event probabilities, validating the result. The probs map may mention
// events not used by the tree; all used events must be present.
func ParseTree(s string, probs map[event.ID]float64) (*Tree, error) {
	root, err := Parse(s)
	if err != nil {
		return nil, err
	}
	tab := event.NewTable()
	for id, p := range probs {
		if err := tab.Set(id, p); err != nil {
			return nil, err
		}
	}
	t := &Tree{Root: root, Table: tab}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustParseTree is like ParseTree but panics on error; for constant
// inputs in tests and examples.
func MustParseTree(s string, probs map[event.ID]float64) *Tree {
	t, err := ParseTree(s, probs)
	if err != nil {
		panic(err)
	}
	return t
}

type parser struct {
	input string
	pos   int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("fuzzy: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) {
		switch p.input[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.input) {
		return p.input[p.pos]
	}
	return 0
}

func (p *parser) parseAtom() (string, error) {
	if p.peek() == '"' {
		i := p.pos + 1
		for i < len(p.input) {
			switch p.input[i] {
			case '\\':
				i += 2
				continue
			case '"':
				lit := p.input[p.pos : i+1]
				s, err := strconv.Unquote(lit)
				if err != nil {
					return "", p.errf("bad quoted string %s: %v", lit, err)
				}
				p.pos = i + 1
				return s, nil
			}
			i++
		}
		return "", p.errf("unterminated quoted string")
	}
	start := p.pos
	for p.pos < len(p.input) {
		r := rune(p.input[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected label or value")
	}
	return p.input[start:p.pos], nil
}

func (p *parser) parseNode() (*Node, error) {
	label, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	n := &Node{Label: label}
	p.skipSpace()
	if p.peek() == '[' {
		end := strings.IndexByte(p.input[p.pos:], ']')
		if end < 0 {
			return nil, p.errf("unterminated condition")
		}
		condStr := p.input[p.pos+1 : p.pos+end]
		cond, err := event.ParseCondition(condStr)
		if err != nil {
			return nil, p.errf("bad condition %q: %v", condStr, err)
		}
		n.Cond = cond
		p.pos += end + 1
		p.skipSpace()
	}
	if p.peek() == ':' {
		p.pos++
		p.skipSpace()
		v, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		n.Value = v
		p.skipSpace()
	}
	if p.peek() == '(' {
		p.pos++
		for {
			p.skipSpace()
			c, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
			p.skipSpace()
			switch p.peek() {
			case ',':
				p.pos++
			case ')':
				p.pos++
				return n, nil
			default:
				return nil, p.errf("expected ',' or ')'")
			}
		}
	}
	return n, nil
}
