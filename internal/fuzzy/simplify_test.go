package fuzzy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/worlds"
)

func TestPruneUnsat(t *testing.T) {
	ft := MustParseTree("A(B[w1 !w1], C[w1])", map[event.ID]float64{"w1": 0.5})
	stats := ft.PruneUnsat()
	if stats.NodesRemoved != 1 {
		t.Errorf("NodesRemoved = %d, want 1", stats.NodesRemoved)
	}
	if !Equal(ft.Root, MustParse("A(C[w1])")) {
		t.Errorf("after prune: %s", Format(ft.Root))
	}
}

func TestPruneUnsatAcrossPath(t *testing.T) {
	// C requires !w1 but its ancestor B requires w1: effective condition
	// is unsatisfiable even though each condition alone is fine.
	ft := MustParseTree("A(B[w1](C[!w1](D)))", map[event.ID]float64{"w1": 0.5})
	stats := ft.PruneUnsat()
	if stats.NodesRemoved != 2 { // C and D
		t.Errorf("NodesRemoved = %d, want 2", stats.NodesRemoved)
	}
	if !Equal(ft.Root, MustParse("A(B[w1])")) {
		t.Errorf("after prune: %s", Format(ft.Root))
	}
}

func TestAbsorbAncestorLiterals(t *testing.T) {
	ft := MustParseTree("A(B[w1](C[w1 w2]))", map[event.ID]float64{"w1": 0.5, "w2": 0.5})
	stats := ft.AbsorbAncestorLiterals()
	if stats.LiteralsRemoved != 1 {
		t.Errorf("LiteralsRemoved = %d, want 1", stats.LiteralsRemoved)
	}
	if !Equal(ft.Root, MustParse("A(B[w1](C[w2]))")) {
		t.Errorf("after absorb: %s", Format(ft.Root))
	}
}

func TestFoldCertainEvents(t *testing.T) {
	ft := MustParseTree("A(B[sure], C[!sure], D[never], E[!never w1])",
		map[event.ID]float64{"sure": 1, "never": 0, "w1": 0.5})
	stats := ft.FoldCertainEvents()
	if stats.NodesRemoved != 2 { // C and D vanish
		t.Errorf("NodesRemoved = %d, want 2", stats.NodesRemoved)
	}
	if stats.LiteralsRemoved != 2 { // "sure" on B, "!never" on E
		t.Errorf("LiteralsRemoved = %d, want 2", stats.LiteralsRemoved)
	}
	if !Equal(ft.Root, MustParse("A(B, E[w1])")) {
		t.Errorf("after fold: %s", Format(ft.Root))
	}
}

func TestMergeComplementarySiblings(t *testing.T) {
	// The pair {C[w2 !w1], C[w2 w1]} merges to C[w2].
	ft := MustParseTree("A(C[w2 !w1], C[w2 w1])", map[event.ID]float64{"w1": 0.5, "w2": 0.5})
	stats := ft.MergeComplementarySiblings()
	if stats.SiblingsMerged != 1 {
		t.Errorf("SiblingsMerged = %d, want 1", stats.SiblingsMerged)
	}
	if !Equal(ft.Root, MustParse("A(C[w2])")) {
		t.Errorf("after merge: %s", Format(ft.Root))
	}
}

func TestMergeComplementaryRequiresSingleDifference(t *testing.T) {
	// Differ in two literals: no merge.
	ft := MustParseTree("A(C[w1 w2], C[!w1 !w2])", map[event.ID]float64{"w1": 0.5, "w2": 0.5})
	if stats := ft.MergeComplementarySiblings(); stats.SiblingsMerged != 0 {
		t.Errorf("merged incompatible pair")
	}
	// Identical conditions: duplicates kept (bag semantics).
	ft2 := MustParseTree("A(C[w1], C[w1])", map[event.ID]float64{"w1": 0.5})
	if stats := ft2.MergeComplementarySiblings(); stats.SiblingsMerged != 0 {
		t.Errorf("merged identical duplicates (bag semantics violated)")
	}
	// Different subtrees: no merge.
	ft3 := MustParseTree("A(C[w1](X), C[!w1](Y))", map[event.ID]float64{"w1": 0.5})
	if stats := ft3.MergeComplementarySiblings(); stats.SiblingsMerged != 0 {
		t.Errorf("merged pair with different subtrees")
	}
}

func TestDropUnusedEvents(t *testing.T) {
	ft := MustParseTree("A(B[w1])", map[event.ID]float64{"w1": 0.5, "w2": 0.5, "w3": 0.1})
	stats := ft.DropUnusedEvents()
	if stats.EventsRemoved != 2 {
		t.Errorf("EventsRemoved = %d, want 2", stats.EventsRemoved)
	}
	if !ft.Table.Has("w1") || ft.Table.Has("w2") || ft.Table.Has("w3") {
		t.Errorf("table after drop: %s", ft.Table)
	}
}

func TestSimplifyFixpointChain(t *testing.T) {
	// After folding "sure", the two C siblings become complementary and
	// merge, and then w2 absorbs into nothing further; finally unused
	// events leave the table. Exercises multi-round fixpoint.
	ft := MustParseTree("A(C[sure w2 w1], C[w2 !w1])",
		map[event.ID]float64{"sure": 1, "w1": 0.5, "w2": 0.5})
	before, err := ft.Expand()
	if err != nil {
		t.Fatal(err)
	}
	stats := ft.Simplify()
	if stats.Total() == 0 {
		t.Error("expected simplifications")
	}
	if !Equal(ft.Root, MustParse("A(C[w2])")) {
		t.Errorf("after simplify: %s", Format(ft.Root))
	}
	if ft.Table.Has("sure") || ft.Table.Has("w1") {
		t.Errorf("stale events in table: %s", ft.Table)
	}
	after, err := ft.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !before.Equal(after, worlds.Eps) {
		t.Error("simplification changed semantics")
	}
}

// TestSimplifyPreservesSemantics is the central property (E7): for random
// fuzzy trees, Simplify never changes the possible-worlds semantics.
func TestSimplifyPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ft := randomFuzzyTree(r, 3, 3)
		before, err := ft.Expand()
		if err != nil {
			t.Log(err)
			return false
		}
		ft.Simplify()
		if err := ft.Validate(); err != nil {
			t.Logf("simplified tree invalid: %v", err)
			return false
		}
		after, err := ft.Expand()
		if err != nil {
			t.Log(err)
			return false
		}
		if !before.Equal(after, 1e-9) {
			t.Logf("seed %d: semantics changed:\nbefore:\n%s\nafter:\n%s", seed, before, after)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSimplifyUndoesDeletionExpansion checks that the slide-15 expansion
// pattern shrinks back when the confidence event is certain.
func TestSimplifyUndoesDeletionExpansion(t *testing.T) {
	// Slide-15 output with w3 forced to 1 (deletion certainly applied):
	// C[!w1 w2] stays, C[w1 w2 !w3] dies, D[w1 w2 w3] loses w3.
	ft := MustParseTree("A(B[w1], C[!w1 w2], C[w1 w2 !w3], D[w1 w2 w3])",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7, "w3": 1})
	ft.Simplify()
	if !Equal(ft.Root, MustParse("A(B[w1], C[!w1 w2], D[w1 w2])")) {
		t.Errorf("after simplify: %s", Format(ft.Root))
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ft := randomFuzzyTree(r, 3, 3)
		ft.Simplify()
		second := ft.Simplify()
		return second.Total() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
