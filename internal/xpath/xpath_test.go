package xpath

import (
	"testing"

	"repro/internal/tpwj"
	"repro/internal/tree"
)

// compileAndFormat compiles and renders in the TPWJ syntax for easy
// comparison.
func compileAndFormat(t *testing.T, s string) string {
	t.Helper()
	q, err := Compile(s)
	if err != nil {
		t.Fatalf("Compile(%q): %v", s, err)
	}
	return tpwj.FormatQuery(q)
}

func TestCompileShapes(t *testing.T) {
	cases := []struct{ xpath, tpwj string }{
		{"/A", "A $result"},
		{"/A/B", "A(B $result)"},
		{"//B", "//B $result"},
		{"/A//C", "A(//C $result)"},
		{"/*/B", "*(B $result)"},
		{"//person[name='Alice']", "//person $result(name=Alice)"},
		{`//B[.="foo"]`, "//B=foo $result"},
		{"/A//C[D][not(E)]", "A(//C $result(D, !E))"},
		{"/A[B/C]", "A $result(B(C))"},
		{"/A[//D]", "A $result(//D)"},
		{"/A[not(//D='x')]", "A $result(!//D=x)"},
		{"/A/B[C]/D", "A(B(C, D $result))"},
	}
	for _, tc := range cases {
		if got := compileAndFormat(t, tc.xpath); got != tc.tpwj {
			t.Errorf("Compile(%q) = %q, want %q", tc.xpath, got, tc.tpwj)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		"",
		"A",       // missing leading axis
		"/",       // missing step
		"/A[",     // unterminated predicate
		"/A[B",    // missing ]
		"/A[.]",   // dot without comparison
		"/A[.=x]", // unquoted literal
		"/A[.='x]",
		"/A[not(B]",
		"/A[/B]", // absolute path in predicate
		"/A/",
		"/A extra",
		"/A[not(not(B))]", // nested negation (rejected by validation)
	}
	for _, s := range cases {
		if _, err := Compile(s); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", s)
		}
	}
}

func TestCompiledQueriesEvaluate(t *testing.T) {
	doc := tree.MustParse("library(book(title:TheTrial, author:Kafka), book(title:Ulysses, author:Joyce), journal(title:TODS))")
	ix := tree.NewIndex(doc)
	cases := []struct {
		xpath string
		want  int
	}{
		{"/library/book", 2},
		{"//title", 3},
		{"/library/book[author='Kafka']", 1},
		{"/library/book[author='Kafka']/title", 1},
		{"//book[not(author='Kafka')]", 1},
		{"/library/*[title]", 3},
		{"//*[.='Joyce']", 1},
		{"/library/book[title][author]", 2},
	}
	for _, tc := range cases {
		q, err := Compile(tc.xpath)
		if err != nil {
			t.Errorf("Compile(%q): %v", tc.xpath, err)
			continue
		}
		n, err := tpwj.CountMatches(q, ix)
		if err != nil {
			t.Errorf("eval %q: %v", tc.xpath, err)
			continue
		}
		if n != tc.want {
			t.Errorf("%q matched %d, want %d", tc.xpath, n, tc.want)
		}
	}
}

func TestResultVariableBinding(t *testing.T) {
	q := MustCompile("/library/book/title")
	doc := tree.MustParse("library(book(title:Ulysses))")
	ms, err := tpwj.FindMatches(q, tree.NewIndex(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("matches = %d", len(ms))
	}
	n := ms[0].Binding(q, ResultVar)
	if n == nil || n.Value != "Ulysses" {
		t.Errorf("result binding = %v", n)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile of bad input did not panic")
		}
	}()
	MustCompile("not a path")
}
