// Package xpath compiles a standard XPath subset into TPWJ queries. The
// paper describes its query language as "a standard subset of XQuery"
// and its implementation as a compilation onto an XQuery engine; this
// package provides the same front end in reverse: familiar path syntax
// in, pattern queries out.
//
// Supported grammar:
//
//	xpath     := ("/" | "//") step (("/" | "//") step)*
//	step      := nametest predicate*
//	nametest  := NAME | "*"
//	predicate := "[" pred "]"
//	pred      := relpath
//	           | relpath "=" literal
//	           | "." "=" literal
//	           | "not(" pred ")"
//	relpath   := ["//"] step (("/" | "//") step)*
//	literal   := 'text' | "text"
//
// "/A/B" anchors at the document root; "//B" starts anywhere.
// Predicates test existence of a relative path, optionally with a value
// comparison on its final step; "not(...)" compiles to a forbidden
// (negated) sub-pattern. The node selected by the final step of the main
// path is bound to the variable "result".
//
// Examples:
//
//	/A/B                      ≡  A(B $result)
//	//person[name='Alice']    ≡  //person $result(name=Alice)
//	/A//C[D][not(E)]          ≡  A(//C $result(D, !E))
//	//B[.='foo']              ≡  //B=foo $result
package xpath

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/tpwj"
)

// ResultVar is the variable bound to the main path's final step.
const ResultVar = "result"

// Compile parses the XPath subset and returns the equivalent TPWJ query.
func Compile(s string) (*tpwj.Query, error) {
	p := &parser{input: s}
	p.skipSpace()
	first, err := p.eatAxis()
	if err != nil {
		return nil, err
	}
	root, last, err := p.parsePath(first)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, p.errf("trailing input")
	}
	last.Var = ResultVar
	q := tpwj.NewQuery(root)
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustCompile is Compile panicking on error; for constant inputs.
func MustCompile(s string) *tpwj.Query {
	q, err := Compile(s)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	input string
	pos   int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("xpath: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.input) {
		return p.input[p.pos]
	}
	return 0
}

// eatAxis consumes a mandatory "/" or "//" and reports whether the
// descendant axis was chosen.
func (p *parser) eatAxis() (bool, error) {
	if p.peek() != '/' {
		return false, p.errf("expected '/' or '//'")
	}
	p.pos++
	if p.peek() == '/' {
		p.pos++
		return true, nil
	}
	return false, nil
}

// parsePath parses step ("/" step)* and returns the chain's root and
// final node. firstDesc is the axis of the first step.
func (p *parser) parsePath(firstDesc bool) (root, last *tpwj.PNode, err error) {
	desc := firstDesc
	for {
		step, err := p.parseStep(desc)
		if err != nil {
			return nil, nil, err
		}
		if root == nil {
			root = step
		} else {
			last.Add(step)
		}
		last = step
		p.skipSpace()
		if p.peek() != '/' {
			return root, last, nil
		}
		desc, err = p.eatAxis()
		if err != nil {
			return nil, nil, err
		}
	}
}

func (p *parser) parseStep(desc bool) (*tpwj.PNode, error) {
	p.skipSpace()
	var label string
	if p.peek() == '*' {
		p.pos++
		label = tpwj.Wildcard
	} else {
		var err error
		label, err = p.parseName()
		if err != nil {
			return nil, err
		}
	}
	n := &tpwj.PNode{Label: label, Desc: desc}
	for {
		p.skipSpace()
		if p.peek() != '[' {
			return n, nil
		}
		p.pos++
		if err := p.parsePredicate(n); err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ']' {
			return nil, p.errf("expected ']'")
		}
		p.pos++
	}
}

// parsePredicate attaches one predicate to n.
func (p *parser) parsePredicate(n *tpwj.PNode) error {
	p.skipSpace()
	if strings.HasPrefix(p.input[p.pos:], "not(") {
		p.pos += len("not(")
		branch, err := p.parsePredicateBranch()
		if err != nil {
			return err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return p.errf("expected ')' after not(...)")
		}
		p.pos++
		branch.Forbidden = true
		n.Add(branch)
		return nil
	}
	if p.peek() == '.' {
		// Value test on the current node: . = 'literal'.
		p.pos++
		p.skipSpace()
		if p.peek() != '=' {
			return p.errf("expected '=' after '.'")
		}
		p.pos++
		v, err := p.parseLiteral()
		if err != nil {
			return err
		}
		n.Value, n.HasValue = v, true
		return nil
	}
	branch, err := p.parsePredicateBranch()
	if err != nil {
		return err
	}
	n.Add(branch)
	return nil
}

// parsePredicateBranch parses a relative path, optionally followed by a
// value comparison on its final step, returning the branch's root.
func (p *parser) parsePredicateBranch() (*tpwj.PNode, error) {
	p.skipSpace()
	desc := false
	if p.peek() == '/' {
		var err error
		desc, err = p.eatAxis()
		if err != nil {
			return nil, err
		}
		if !desc {
			return nil, p.errf("absolute paths are not allowed in predicates; use '//' or a bare name")
		}
	}
	root, last, err := p.parsePath(desc)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() == '=' {
		p.pos++
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		last.Value, last.HasValue = v, true
	}
	return root, nil
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	for p.pos < len(p.input) {
		r := rune(p.input[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' {
			// '.' only allowed after the first character to keep the
			// "." value test unambiguous.
			if r == '.' && p.pos == start {
				break
			}
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected name")
	}
	return p.input[start:p.pos], nil
}

func (p *parser) parseLiteral() (string, error) {
	p.skipSpace()
	quote := p.peek()
	if quote != '\'' && quote != '"' {
		return "", p.errf("expected quoted literal")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] != quote {
		p.pos++
	}
	if p.pos == len(p.input) {
		return "", p.errf("unterminated literal")
	}
	v := p.input[start:p.pos]
	p.pos++
	return v, nil
}
