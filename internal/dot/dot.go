// Package dot renders data trees, fuzzy trees and query patterns as
// Graphviz DOT documents, mirroring the node-and-condition drawings of
// the paper's figures (slides 5, 6, 12, 15). The output is deterministic
// so it can be golden-tested and diffed.
package dot

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/tree"
)

// WriteTree renders a data tree.
func WriteTree(w io.Writer, n *tree.Node) error {
	p := &printer{w: w}
	p.line("digraph dataTree {")
	p.line("  node [shape=ellipse, fontname=\"Helvetica\"];")
	var rec func(n *tree.Node) int
	rec = func(n *tree.Node) int {
		id := p.next()
		label := escape(n.Label)
		if n.Value != "" {
			label += "\\n" + escape(n.Value)
		}
		p.line(fmt.Sprintf("  n%d [label=\"%s\"];", id, label))
		for _, c := range n.Children {
			cid := rec(c)
			p.line(fmt.Sprintf("  n%d -> n%d;", id, cid))
		}
		return id
	}
	rec(n)
	p.line("}")
	return p.err
}

// WriteFuzzy renders a fuzzy tree; conditions appear as a second label
// line in brackets, like the slide drawings.
func WriteFuzzy(w io.Writer, ft *fuzzy.Tree) error {
	p := &printer{w: w}
	p.line("digraph fuzzyTree {")
	p.line("  node [shape=ellipse, fontname=\"Helvetica\"];")
	var rec func(n *fuzzy.Node) int
	rec = func(n *fuzzy.Node) int {
		id := p.next()
		label := escape(n.Label)
		if c := n.Cond.Normalize(); len(c) > 0 {
			label += "\\n[" + escape(c.String()) + "]"
		}
		if n.Value != "" {
			label += "\\n" + escape(n.Value)
		}
		style := ""
		if len(n.Cond) > 0 {
			style = ", style=dashed"
		}
		p.line(fmt.Sprintf("  n%d [label=\"%s\"%s];", id, label, style))
		for _, c := range n.Children {
			cid := rec(c)
			p.line(fmt.Sprintf("  n%d -> n%d;", id, cid))
		}
		return id
	}
	rec(ft.Root)
	// The event table as a record node.
	if ft.Table.Len() > 0 {
		var rows []string
		for _, e := range ft.Table.Events() {
			pr, _ := ft.Table.Prob(e)
			rows = append(rows, fmt.Sprintf("%s = %g", e, pr))
		}
		p.line(fmt.Sprintf("  events [shape=note, label=\"%s\"];", escape(strings.Join(rows, "\\n"))))
	}
	p.line("}")
	return p.err
}

// WriteQuery renders a TPWJ pattern: descendant edges are dashed,
// forbidden subtrees are red, joins are dotted undirected edges.
func WriteQuery(w io.Writer, q *tpwj.Query) error {
	p := &printer{w: w}
	p.line("digraph query {")
	p.line("  node [shape=box, fontname=\"Helvetica\"];")
	byVar := make(map[string]int)
	var rec func(n *tpwj.PNode) int
	rec = func(n *tpwj.PNode) int {
		id := p.next()
		label := escape(n.Label)
		if n.HasValue {
			label += " = " + escape(n.Value)
		}
		if n.Var != "" {
			label += "\\n$" + n.Var
			byVar[n.Var] = id
		}
		attrs := ""
		if n.Forbidden {
			attrs = ", color=red"
		}
		p.line(fmt.Sprintf("  n%d [label=\"%s\"%s];", id, label, attrs))
		for _, c := range n.Children {
			cid := rec(c)
			style := ""
			if c.Desc {
				style = " [style=dashed]"
			}
			p.line(fmt.Sprintf("  n%d -> n%d%s;", id, cid, style))
		}
		return id
	}
	rec(q.Root)
	for _, j := range q.Joins {
		a, aok := byVar[j.Left]
		b, bok := byVar[j.Right]
		if aok && bok {
			p.line(fmt.Sprintf("  n%d -> n%d [style=dotted, dir=none, label=\"=\"];", a, b))
		}
	}
	p.line("}")
	return p.err
}

type printer struct {
	w   io.Writer
	n   int
	err error
}

func (p *printer) next() int {
	p.n++
	return p.n
}

func (p *printer) line(s string) {
	if p.err != nil {
		return
	}
	_, p.err = io.WriteString(p.w, s+"\n")
}

func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
