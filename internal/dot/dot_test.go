package dot

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/tree"
)

func TestWriteTree(t *testing.T) {
	var b strings.Builder
	if err := WriteTree(&b, tree.MustParse(`A(B:foo, C("va\"l"))`)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph dataTree", "B\\nfoo", "n1 -> n2", `va\"l`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTreeDeterministic(t *testing.T) {
	n := tree.MustParse("A(B, C(D))")
	var b1, b2 strings.Builder
	if err := WriteTree(&b1, n); err != nil {
		t.Fatal(err)
	}
	if err := WriteTree(&b2, n); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("rendering not deterministic")
	}
}

func TestWriteFuzzy(t *testing.T) {
	ft := fuzzy.MustParseTree("A(B[w1 !w2]:foo, C(D[w2]))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
	var b strings.Builder
	if err := WriteFuzzy(&b, ft); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph fuzzyTree",
		"[w1 !w2]",
		"style=dashed",
		"w1 = 0.8",
		"shape=note",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFuzzyNoEvents(t *testing.T) {
	ft := fuzzy.New(fuzzy.MustParse("A(B)"))
	var b strings.Builder
	if err := WriteFuzzy(&b, ft); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "shape=note") {
		t.Error("empty table should render no note node")
	}
}

func TestWriteQuery(t *testing.T) {
	q := tpwj.MustParseQuery("A(B $x, C(//D=val $y), !E) where $x = $y")
	var b strings.Builder
	if err := WriteQuery(&b, q); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph query",
		"$x",
		"D = val",
		"style=dashed", // descendant edge
		"color=red",    // forbidden node
		"style=dotted", // join edge
		`label="="`,    // join label
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
