package xmlio

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tree"
)

func TestReadTreeBasic(t *testing.T) {
	n, err := ParseTree([]byte(`<A><B>foo</B><B>foo</B><E><C>bar</C></E><D><F>nee</F></D></A>`))
	if err != nil {
		t.Fatal(err)
	}
	want := tree.MustParse("A(B:foo, B:foo, E(C:bar), D(F:nee))")
	if !tree.Equal(n, want) {
		t.Errorf("parsed %s", tree.Format(n))
	}
}

func TestReadTreeWhitespace(t *testing.T) {
	n, err := ParseTree([]byte("<A>\n  <B>foo</B>\n</A>\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(n, tree.MustParse("A(B:foo)")) {
		t.Errorf("parsed %s", tree.Format(n))
	}
}

func TestReadTreeAttributesBecomeChildren(t *testing.T) {
	n, err := ParseTree([]byte(`<person name="Alice" age="30"><city>Paris</city></person>`))
	if err != nil {
		t.Fatal(err)
	}
	want := tree.MustParse("person(name:Alice, age:30, city:Paris)")
	if !tree.Equal(n, want) {
		t.Errorf("parsed %s", tree.Format(n))
	}
}

func TestReadTreeErrors(t *testing.T) {
	cases := []string{
		``,
		`<A>`,
		`<A>text<B/></A>`, // mixed content
		`<A cond="w1"/>`,  // cond in plain tree
		`text<A/>`,        // stray text
		`<A></B>`,         // mismatched tags
	}
	for _, s := range cases {
		if _, err := ParseTree([]byte(s)); err == nil {
			t.Errorf("ParseTree(%q) succeeded, want error", s)
		}
	}
}

func TestWriteTreeRoundTrip(t *testing.T) {
	orig := tree.MustParse("A(B:foo, B:foo, E(C:bar), D(F:nee))")
	data, err := TreeXML(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTree(data)
	if err != nil {
		t.Fatalf("re-parse of %s: %v", data, err)
	}
	if !tree.Equal(orig, back) {
		t.Errorf("round trip changed tree:\n%s\n%s", tree.Format(orig), tree.Format(back))
	}
}

func TestWriteTreeEscaping(t *testing.T) {
	orig := tree.New("A", tree.NewLeaf("B", `<value> & "quotes"`))
	data, err := TreeXML(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTree(data)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(orig, back) {
		t.Error("escaping round trip failed")
	}
}

func TestWriteTreeRejectsBadLabels(t *testing.T) {
	bad := tree.New("has space")
	if _, err := TreeXML(bad); err == nil {
		t.Error("label with space accepted")
	}
	bad2 := tree.New("1leading")
	if _, err := TreeXML(bad2); err == nil {
		t.Error("leading digit accepted")
	}
}

func TestReadDocSlide12(t *testing.T) {
	docXML := `<pxml>
  <events>
    <event name="w1" prob="0.8"/>
    <event name="w2" prob="0.7"/>
  </events>
  <root>
    <A>
      <B cond="w1 !w2">foo</B>
      <C><D cond="w2"/></C>
    </A>
  </root>
</pxml>`
	ft, err := ParseDoc([]byte(docXML))
	if err != nil {
		t.Fatal(err)
	}
	want := fuzzy.MustParse("A(B[w1 !w2]:foo, C(D[w2]))")
	if !fuzzy.Equal(ft.Root, want) {
		t.Errorf("parsed %s", fuzzy.Format(ft.Root))
	}
	if p, _ := ft.Table.Prob("w1"); p != 0.8 {
		t.Errorf("w1 prob = %v", p)
	}
	if p, _ := ft.Table.Prob("w2"); p != 0.7 {
		t.Errorf("w2 prob = %v", p)
	}
}

func TestReadDocErrors(t *testing.T) {
	cases := []struct {
		name, xml string
	}{
		{"wrong root", `<notpxml/>`},
		{"no root element", `<pxml><events/></pxml>`},
		{"bad prob", `<pxml><events><event name="w" prob="abc"/></events><root><A/></root></pxml>`},
		{"prob out of range", `<pxml><events><event name="w" prob="1.5"/></events><root><A/></root></pxml>`},
		{"unknown event used", `<pxml><events/><root><A><B cond="zz"/></A></root></pxml>`},
		{"conditioned root", `<pxml><events><event name="w" prob="0.5"/></events><root><A cond="w"/></root></pxml>`},
		{"stray element", `<pxml><bogus/></pxml>`},
		{"bad condition", `<pxml><events/><root><A><B cond="!"/></A></root></pxml>`},
		{"stray text", `<pxml>hello<root><A/></root></pxml>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseDoc([]byte(tc.xml)); err == nil {
				t.Errorf("accepted %q", tc.xml)
			}
		})
	}
}

func TestWriteDocRoundTrip(t *testing.T) {
	orig := fuzzy.MustParseTree("A(B[w1 !w2]:foo, C(D[w2]))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
	data, err := DocXML(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDoc(data)
	if err != nil {
		t.Fatalf("re-parse of %s: %v", data, err)
	}
	if !fuzzy.Equal(orig.Root, back.Root) {
		t.Errorf("round trip changed tree:\n%s\n%s", fuzzy.Format(orig.Root), fuzzy.Format(back.Root))
	}
	if orig.Table.String() != back.Table.String() {
		t.Errorf("round trip changed table: %s vs %s", orig.Table, back.Table)
	}
}

func TestWriteDocDeterministic(t *testing.T) {
	ft := fuzzy.MustParseTree("A(B[w1], C[w2])",
		map[event.ID]float64{"w2": 0.7, "w1": 0.8})
	d1, err := DocXML(ft)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DocXML(ft)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Error("serialization not deterministic")
	}
	if !strings.Contains(string(d1), `name="w1"`) {
		t.Error("events missing from output")
	}
}

func TestDocRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ft := randomXMLSafeFuzzyTree(r)
		data, err := DocXML(ft)
		if err != nil {
			t.Log(err)
			return false
		}
		back, err := ParseDoc(data)
		if err != nil {
			t.Logf("re-parse: %v\n%s", err, data)
			return false
		}
		return fuzzy.Equal(ft.Root, back.Root) && ft.Table.String() == back.Table.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randomXMLSafeFuzzyTree generates fuzzy trees whose labels are valid XML
// names (values are arbitrary).
func randomXMLSafeFuzzyTree(r *rand.Rand) *fuzzy.Tree {
	tab := event.NewTable()
	ids := []event.ID{"e1", "e2", "e3"}
	for _, id := range ids {
		tab.MustSet(id, r.Float64())
	}
	randCond := func() event.Condition {
		var c event.Condition
		for _, id := range ids {
			switch r.Intn(4) {
			case 0:
				c = append(c, event.Pos(id))
			case 1:
				c = append(c, event.Neg(id))
			}
		}
		return c.Normalize()
	}
	labels := []string{"alpha", "beta", "gamma_x", "d-e.f"}
	values := []string{"", "v", "weird <&> value", "espaço"}
	var build func(d int) *fuzzy.Node
	build = func(d int) *fuzzy.Node {
		n := &fuzzy.Node{Label: labels[r.Intn(len(labels))], Cond: randCond()}
		if d <= 0 || r.Intn(3) == 0 {
			n.Value = values[r.Intn(len(values))]
			return n
		}
		for i := 0; i < r.Intn(3); i++ {
			n.Children = append(n.Children, build(d-1))
		}
		if len(n.Children) == 0 {
			n.Value = values[r.Intn(len(values))]
		}
		return n
	}
	root := build(3)
	root.Cond = nil
	return &fuzzy.Tree{Root: root, Table: tab}
}
