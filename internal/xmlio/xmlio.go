// Package xmlio serializes the data model to and from XML, mirroring the
// storage layer of the paper's implementation (slide 16: file-system
// storage of probabilistic XML documents).
//
// Plain data trees map to ordinary XML elements; leaf values map to text
// content. Following the paper's model ("no distinction between attribute
// and element nodes"), XML attributes are parsed as child leaf nodes.
// Mixed content is rejected.
//
// Fuzzy documents use a small wrapper format:
//
//	<pxml>
//	  <events>
//	    <event name="w1" prob="0.8"/>
//	  </events>
//	  <root>
//	    <A>
//	      <B cond="w1 !w2">foo</B>
//	      <C><D cond="w2"/></C>
//	    </A>
//	  </root>
//	</pxml>
//
// where the reserved attribute cond carries the node's condition in the
// textual literal syntax ("w1 !w2").
package xmlio

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tree"
)

// CondAttr is the reserved attribute carrying fuzzy conditions.
const CondAttr = "cond"

// ReadTree parses a plain data tree from XML.
func ReadTree(r io.Reader) (*tree.Node, error) {
	n, err := readElement(xml.NewDecoder(r), false)
	if err != nil {
		return nil, err
	}
	dn := toData(n)
	if err := dn.Validate(); err != nil {
		return nil, err
	}
	return dn, nil
}

// ParseTree parses a plain data tree from an XML byte slice.
func ParseTree(data []byte) (*tree.Node, error) {
	return ReadTree(bytes.NewReader(data))
}

// ReadSubtree parses the next element (with its whole subtree) from an
// already-open decoder as a plain data tree, leaving the decoder
// positioned just after the element. The xupdate package uses it to read
// inline insertion content.
func ReadSubtree(dec *xml.Decoder) (*tree.Node, error) {
	n, err := readElement(dec, false)
	if err != nil {
		return nil, err
	}
	dn := toData(n)
	if err := dn.Validate(); err != nil {
		return nil, err
	}
	return dn, nil
}

// WriteTree serializes a plain data tree as indented XML.
func WriteTree(w io.Writer, n *tree.Node) error {
	if err := n.Validate(); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := encodeData(enc, n); err != nil {
		return err
	}
	return enc.Flush()
}

// TreeXML returns the XML serialization of a plain data tree.
func TreeXML(n *tree.Node) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteTree(&buf, n); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadDoc parses a fuzzy document (<pxml> wrapper) and validates it.
func ReadDoc(r io.Reader) (*fuzzy.Tree, error) {
	dec := xml.NewDecoder(r)
	// Find the opening pxml element.
	start, err := nextStart(dec)
	if err != nil {
		return nil, err
	}
	if start.Name.Local != "pxml" {
		return nil, fmt.Errorf("xmlio: expected <pxml> root, found <%s>", start.Name.Local)
	}
	tab := event.NewTable()
	var root *fuzzy.Node
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlio: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "events":
				if err := readEvents(dec, tab); err != nil {
					return nil, err
				}
			case "root":
				inner, err := nextStart(dec)
				if err != nil {
					return nil, err
				}
				root, err = readFuzzyElement(dec, inner)
				if err != nil {
					return nil, err
				}
				if err := skipToEnd(dec); err != nil { // </root>
					return nil, err
				}
			default:
				return nil, fmt.Errorf("xmlio: unexpected element <%s> in <pxml>", t.Name.Local)
			}
		case xml.EndElement:
			if root == nil {
				return nil, errors.New("xmlio: <pxml> without <root>")
			}
			ft := &fuzzy.Tree{Root: root, Table: tab}
			if err := ft.Validate(); err != nil {
				return nil, err
			}
			return ft, nil
		case xml.CharData:
			if len(bytes.TrimSpace(t)) > 0 {
				return nil, errors.New("xmlio: stray text in <pxml>")
			}
		}
	}
}

// ParseDoc parses a fuzzy document from an XML byte slice.
func ParseDoc(data []byte) (*fuzzy.Tree, error) {
	return ReadDoc(bytes.NewReader(data))
}

// WriteDoc serializes a fuzzy document as indented XML, with events
// sorted by name for determinism.
func WriteDoc(w io.Writer, ft *fuzzy.Tree) error {
	if err := ft.Validate(); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	pxml := xml.StartElement{Name: xml.Name{Local: "pxml"}}
	if err := enc.EncodeToken(pxml); err != nil {
		return err
	}
	events := xml.StartElement{Name: xml.Name{Local: "events"}}
	if err := enc.EncodeToken(events); err != nil {
		return err
	}
	for _, id := range ft.Table.Events() {
		p, _ := ft.Table.Prob(id)
		ev := xml.StartElement{
			Name: xml.Name{Local: "event"},
			Attr: []xml.Attr{
				{Name: xml.Name{Local: "name"}, Value: string(id)},
				{Name: xml.Name{Local: "prob"}, Value: strconv.FormatFloat(p, 'g', -1, 64)},
			},
		}
		if err := enc.EncodeToken(ev); err != nil {
			return err
		}
		if err := enc.EncodeToken(ev.End()); err != nil {
			return err
		}
	}
	if err := enc.EncodeToken(events.End()); err != nil {
		return err
	}
	rootEl := xml.StartElement{Name: xml.Name{Local: "root"}}
	if err := enc.EncodeToken(rootEl); err != nil {
		return err
	}
	if err := encodeFuzzy(enc, ft.Root); err != nil {
		return err
	}
	if err := enc.EncodeToken(rootEl.End()); err != nil {
		return err
	}
	if err := enc.EncodeToken(pxml.End()); err != nil {
		return err
	}
	return enc.Flush()
}

// DocXML returns the XML serialization of a fuzzy document.
func DocXML(ft *fuzzy.Tree) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteDoc(&buf, ft); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// --- internal: generic element reading -----------------------------------

// xnode is the neutral parsed form shared by plain and fuzzy readers.
type xnode struct {
	label    string
	value    string
	cond     event.Condition
	children []*xnode
}

func toData(n *xnode) *tree.Node {
	d := &tree.Node{Label: n.label, Value: n.value}
	for _, c := range n.children {
		d.Children = append(d.Children, toData(c))
	}
	return d
}

func toFuzzy(n *xnode) *fuzzy.Node {
	f := &fuzzy.Node{Label: n.label, Value: n.value, Cond: n.cond}
	for _, c := range n.children {
		f.Children = append(f.Children, toFuzzy(c))
	}
	return f
}

// readElement reads the next element (and its subtree) from the decoder.
// When allowCond is false, cond attributes are rejected.
func readElement(dec *xml.Decoder, allowCond bool) (*xnode, error) {
	start, err := nextStart(dec)
	if err != nil {
		return nil, err
	}
	n, err := readElementFrom(dec, start, allowCond)
	if err != nil {
		return nil, err
	}
	return n, nil
}

func readElementFrom(dec *xml.Decoder, start xml.StartElement, allowCond bool) (*xnode, error) {
	n := &xnode{label: start.Name.Local}
	for _, a := range start.Attr {
		if a.Name.Local == CondAttr {
			if !allowCond {
				return nil, fmt.Errorf("xmlio: cond attribute on <%s> in a plain tree", n.label)
			}
			c, err := event.ParseCondition(a.Value)
			if err != nil {
				return nil, fmt.Errorf("xmlio: <%s>: %w", n.label, err)
			}
			n.cond = c
			continue
		}
		// Attributes become child leaf nodes (the paper's model draws no
		// attribute/element distinction).
		n.children = append(n.children, &xnode{label: a.Name.Local, value: a.Value})
	}
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlio: inside <%s>: %w", n.label, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			child, err := readElementFrom(dec, t, allowCond)
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, child)
		case xml.EndElement:
			n.value = strings.TrimSpace(text.String())
			if n.value != "" && len(n.children) > 0 {
				return nil, fmt.Errorf("xmlio: mixed content in <%s>", n.label)
			}
			return n, nil
		case xml.CharData:
			text.Write(t)
		}
	}
}

func readFuzzyElement(dec *xml.Decoder, start xml.StartElement) (*fuzzy.Node, error) {
	n, err := readElementFrom(dec, start, true)
	if err != nil {
		return nil, err
	}
	return toFuzzy(n), nil
}

func readEvents(dec *xml.Decoder, tab *event.Table) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("xmlio: in <events>: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "event" {
				return fmt.Errorf("xmlio: unexpected <%s> in <events>", t.Name.Local)
			}
			var name, prob string
			for _, a := range t.Attr {
				switch a.Name.Local {
				case "name":
					name = a.Value
				case "prob":
					prob = a.Value
				}
			}
			p, err := strconv.ParseFloat(prob, 64)
			if err != nil {
				return fmt.Errorf("xmlio: event %q: bad probability %q", name, prob)
			}
			if err := tab.Set(event.ID(name), p); err != nil {
				return err
			}
			if err := skipToEnd(dec); err != nil {
				return err
			}
		case xml.EndElement:
			return nil
		case xml.CharData:
			if len(bytes.TrimSpace(t)) > 0 {
				return errors.New("xmlio: stray text in <events>")
			}
		}
	}
}

// nextStart advances to the next StartElement, skipping whitespace,
// comments and processing instructions.
func nextStart(dec *xml.Decoder) (xml.StartElement, error) {
	for {
		tok, err := dec.Token()
		if err != nil {
			return xml.StartElement{}, fmt.Errorf("xmlio: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			return t, nil
		case xml.CharData:
			if len(bytes.TrimSpace(t)) > 0 {
				return xml.StartElement{}, errors.New("xmlio: unexpected text before element")
			}
		case xml.EndElement:
			return xml.StartElement{}, errors.New("xmlio: unexpected end element")
		}
	}
}

// skipToEnd consumes tokens until the end of the current element.
func skipToEnd(dec *xml.Decoder) error {
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("xmlio: %w", err)
		}
		switch tok.(type) {
		case xml.StartElement:
			depth++
		case xml.EndElement:
			if depth == 0 {
				return nil
			}
			depth--
		}
	}
}

// --- internal: encoding ---------------------------------------------------

// checkName rejects labels that cannot be XML element names.
func checkName(label string) error {
	if label == "" {
		return errors.New("xmlio: empty label")
	}
	for i, r := range label {
		ok := r == '_' || r == '-' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0) || r > 127
		if !ok || (i == 0 && (r == '-' || r == '.')) {
			return fmt.Errorf("xmlio: label %q is not a valid XML element name", label)
		}
	}
	return nil
}

func encodeData(enc *xml.Encoder, n *tree.Node) error {
	if err := checkName(n.Label); err != nil {
		return err
	}
	start := xml.StartElement{Name: xml.Name{Local: n.Label}}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	if n.Value != "" {
		if err := enc.EncodeToken(xml.CharData(n.Value)); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := encodeData(enc, c); err != nil {
			return err
		}
	}
	return enc.EncodeToken(start.End())
}

func encodeFuzzy(enc *xml.Encoder, n *fuzzy.Node) error {
	if err := checkName(n.Label); err != nil {
		return err
	}
	start := xml.StartElement{Name: xml.Name{Local: n.Label}}
	if c := n.Cond.Normalize(); len(c) > 0 {
		start.Attr = append(start.Attr, xml.Attr{
			Name:  xml.Name{Local: CondAttr},
			Value: c.String(),
		})
	}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	if n.Value != "" {
		if err := enc.EncodeToken(xml.CharData(n.Value)); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := encodeFuzzy(enc, c); err != nil {
			return err
		}
	}
	return enc.EncodeToken(start.End())
}
