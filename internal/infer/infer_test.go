package infer

import (
	"math"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/worlds"
)

func slide12() *fuzzy.Tree {
	return fuzzy.MustParseTree("A(B[w1 !w2], C(D[w2]))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
}

func TestProbSelected(t *testing.T) {
	ft := slide12()
	cases := []struct {
		q    string
		want float64
	}{
		{"A(B)", 0.24},
		{"A(//D)", 0.70},
		{"A(C)", 1.0},
		{"A(Z)", 0.0},
		{"A(B, //D)", 0.0}, // B needs !w2, D needs w2
	}
	for _, tc := range cases {
		got, err := ProbSelected(tpwj.MustParseQuery(tc.q), ft)
		if err != nil {
			t.Errorf("%s: %v", tc.q, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("ProbSelected(%s) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestPosteriorSlide12(t *testing.T) {
	ft := slide12()
	// Observing B pins w1 true and w2 false.
	post, err := Posterior(tpwj.MustParseQuery("A(B)"), ft)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post["w1"]-1) > 1e-12 {
		t.Errorf("P(w1 | B) = %v, want 1", post["w1"])
	}
	if math.Abs(post["w2"]-0) > 1e-12 {
		t.Errorf("P(w2 | B) = %v, want 0", post["w2"])
	}
	// Observing D pins w2 true; w1 unaffected (independent).
	post, err = Posterior(tpwj.MustParseQuery("A(//D)"), ft)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post["w2"]-1) > 1e-12 {
		t.Errorf("P(w2 | D) = %v, want 1", post["w2"])
	}
	if math.Abs(post["w1"]-0.8) > 1e-12 {
		t.Errorf("P(w1 | D) = %v, want 0.8", post["w1"])
	}
}

// TestPosteriorAgainstWorlds checks Bayes' rule against brute-force
// enumeration over the expansion.
func TestPosteriorAgainstWorlds(t *testing.T) {
	ft := fuzzy.MustParseTree("A(B[w1 w2], C[w2])",
		map[event.ID]float64{"w1": 0.6, "w2": 0.5})
	q := tpwj.MustParseQuery("A(B)")
	post, err := Posterior(q, ft)
	if err != nil {
		t.Fatal(err)
	}
	// Manually: B exists iff w1∧w2 (P=0.3). Given that, w1 and w2 are
	// certainly true.
	if math.Abs(post["w1"]-1) > 1e-12 || math.Abs(post["w2"]-1) > 1e-12 {
		t.Errorf("posterior = %v", post)
	}
}

func TestPosteriorZeroEvidence(t *testing.T) {
	ft := slide12()
	if _, err := Posterior(tpwj.MustParseQuery("A(Z)"), ft); err == nil {
		t.Error("zero-probability evidence accepted")
	}
}

func TestCorrelation(t *testing.T) {
	ft := slide12()
	// B and D are mutually exclusive (w2 vs !w2): lift 0.
	both, p1, p2, lift, err := Correlation(
		tpwj.MustParseQuery("A(B)"), tpwj.MustParseQuery("A(//D)"), ft)
	if err != nil {
		t.Fatal(err)
	}
	if both != 0 || lift != 0 {
		t.Errorf("exclusive queries: both=%v lift=%v", both, lift)
	}
	if math.Abs(p1-0.24) > 1e-12 || math.Abs(p2-0.7) > 1e-12 {
		t.Errorf("marginals: %v %v", p1, p2)
	}

	// A query with itself: lift = 1/P.
	both, p1, _, lift, err = Correlation(
		tpwj.MustParseQuery("A(B)"), tpwj.MustParseQuery("A(B)"), ft)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(both-p1) > 1e-12 {
		t.Errorf("self-correlation: both=%v p=%v", both, p1)
	}
	if math.Abs(lift-1/p1) > 1e-9 {
		t.Errorf("self-lift = %v, want %v", lift, 1/p1)
	}
}

func TestCorrelationIndependent(t *testing.T) {
	ft := fuzzy.MustParseTree("A(B[w1], C[w2])",
		map[event.ID]float64{"w1": 0.5, "w2": 0.5})
	_, _, _, lift, err := Correlation(
		tpwj.MustParseQuery("A(B)"), tpwj.MustParseQuery("A(C)"), ft)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lift-1) > 1e-9 {
		t.Errorf("independent queries should have lift 1, got %v", lift)
	}
}

func TestEntropy(t *testing.T) {
	// Uniform over 4 worlds: 2 bits.
	s := &worlds.Set{}
	s.Add(tree.MustParse("A(W)"), 0.25)
	s.Add(tree.MustParse("A(X)"), 0.25)
	s.Add(tree.MustParse("A(Y)"), 0.25)
	s.Add(tree.MustParse("A(Z)"), 0.25)
	if got := Entropy(s); math.Abs(got-2) > 1e-12 {
		t.Errorf("Entropy = %v, want 2", got)
	}
	// Deterministic: 0 bits.
	d := &worlds.Set{}
	d.Add(tree.MustParse("A"), 1)
	if got := Entropy(d); got != 0 {
		t.Errorf("Entropy = %v, want 0", got)
	}
}

func TestDocumentEntropy(t *testing.T) {
	h, err := DocumentEntropy(slide12())
	if err != nil {
		t.Fatal(err)
	}
	// Three worlds: 0.06, 0.70, 0.24.
	want := -(0.06*math.Log2(0.06) + 0.7*math.Log2(0.7) + 0.24*math.Log2(0.24))
	if math.Abs(h-want) > 1e-12 {
		t.Errorf("DocumentEntropy = %v, want %v", h, want)
	}
}

func TestCountDistribution(t *testing.T) {
	// Two independent sections, each present with its own probability.
	ft := fuzzy.MustParseTree("A(S[w1](L:a), S[w2](L:b))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.5})
	dist, err := CountDistribution(tpwj.MustParseQuery("A(S(L $x))"), ft)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{
		0: 0.2 * 0.5,
		1: 0.8*0.5 + 0.2*0.5,
		2: 0.8 * 0.5,
	}
	total := 0.0
	for k, p := range want {
		if math.Abs(dist[k]-p) > 1e-12 {
			t.Errorf("P(#answers=%d) = %v, want %v", k, dist[k], p)
		}
		total += dist[k]
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("distribution sums to %v", total)
	}
}

func TestCountDistributionNoAnswers(t *testing.T) {
	dist, err := CountDistribution(tpwj.MustParseQuery("A(Z)"), slide12())
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 1 || len(dist) != 1 {
		t.Errorf("dist = %v", dist)
	}
}

func TestExpectedAnswerCount(t *testing.T) {
	ft := fuzzy.MustParseTree("A(S[w1](L:a), S[w2](L:b))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.5})
	got, err := ExpectedAnswerCount(tpwj.MustParseQuery("A(S(L $x))"), ft)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.3) > 1e-12 {
		t.Errorf("expected count = %v, want 1.3", got)
	}
	// Consistency with the distribution.
	dist, err := CountDistribution(tpwj.MustParseQuery("A(S(L $x))"), ft)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for k, p := range dist {
		mean += float64(k) * p
	}
	if math.Abs(mean-got) > 1e-12 {
		t.Errorf("distribution mean %v != expectation %v", mean, got)
	}
}

func TestEvidenceFormulaUnselectable(t *testing.T) {
	f, err := EvidenceFormula(tpwj.MustParseQuery("A(Z)"), slide12())
	if err != nil {
		t.Fatal(err)
	}
	if f != event.FFalse {
		t.Errorf("evidence for impossible query = %v, want false", f)
	}
}
