// Package infer provides probabilistic inference utilities on top of the
// fuzzy tree model: posterior event probabilities given query evidence,
// answer correlation, and distribution diagnostics. These are natural
// companions of the paper's model — the warehouse accumulates uncertain
// facts, and downstream modules want to condition on what a query
// observed.
package infer

import (
	"fmt"
	"math"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/worlds"
)

// EvidenceFormula returns the Boolean formula over the document's events
// that holds exactly in the worlds where the query has at least one
// answer ("the document is selected by Q").
func EvidenceFormula(q *tpwj.Query, ft *fuzzy.Tree) (event.Formula, error) {
	answers, err := tpwj.EvalFuzzy(q, ft)
	if err != nil {
		return nil, err
	}
	fs := make([]event.Formula, len(answers))
	for i, a := range answers {
		fs[i] = a.Formula
	}
	return event.FOr(fs...), nil
}

// ProbSelected returns the probability that the query has at least one
// answer on the document.
func ProbSelected(q *tpwj.Query, ft *fuzzy.Tree) (float64, error) {
	f, err := EvidenceFormula(q, ft)
	if err != nil {
		return 0, err
	}
	return ft.Table.ProbFormula(f)
}

// Posterior computes, for every event of the document, its posterior
// probability given that the query matched: P(e | Q selected) =
// P(e ∧ selected) / P(selected). It returns an error if the evidence has
// probability zero.
//
// The posterior marginals are correct individually, but the events are
// in general no longer independent after conditioning, so they must not
// be written back into an event.Table to form a new document.
func Posterior(q *tpwj.Query, ft *fuzzy.Tree) (map[event.ID]float64, error) {
	evid, err := EvidenceFormula(q, ft)
	if err != nil {
		return nil, err
	}
	pEvid, err := ft.Table.ProbFormula(evid)
	if err != nil {
		return nil, err
	}
	if pEvid == 0 {
		return nil, fmt.Errorf("infer: conditioning on zero-probability evidence %q", tpwj.FormatQuery(q))
	}
	out := make(map[event.ID]float64)
	for _, e := range ft.Events() {
		joint, err := ft.Table.ProbFormula(event.FAnd(event.FLit(event.Pos(e)), evid))
		if err != nil {
			return nil, err
		}
		out[e] = joint / pEvid
	}
	return out, nil
}

// Correlation quantifies the dependence of two queries on the document:
// it returns P(both selected), P(q1), P(q2) and the lift
// P(both)/(P(q1)·P(q2)) (1 means independent; 0 means mutually
// exclusive). Lift is NaN if either marginal is zero.
func Correlation(q1, q2 *tpwj.Query, ft *fuzzy.Tree) (both, p1, p2, lift float64, err error) {
	f1, err := EvidenceFormula(q1, ft)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	f2, err := EvidenceFormula(q2, ft)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if p1, err = ft.Table.ProbFormula(f1); err != nil {
		return 0, 0, 0, 0, err
	}
	if p2, err = ft.Table.ProbFormula(f2); err != nil {
		return 0, 0, 0, 0, err
	}
	if both, err = ft.Table.ProbFormula(event.FAnd(f1, f2)); err != nil {
		return 0, 0, 0, 0, err
	}
	lift = both / (p1 * p2)
	return both, p1, p2, lift, nil
}

// CountDistribution returns the exact distribution of the number of
// distinct answers the query has across possible worlds:
// result[k] = P(the query has exactly k answers). It expands the
// document's relevant events, so it shares the exactness limit of
// fuzzy.Tree.Expand; probabilities sum to 1.
func CountDistribution(q *tpwj.Query, ft *fuzzy.Tree) (map[int]float64, error) {
	answers, err := tpwj.EvalFuzzy(q, ft)
	if err != nil {
		return nil, err
	}
	if len(answers) == 0 {
		return map[int]float64{0: 1}, nil
	}
	// Enumerate assignments over the events the answers mention; per
	// assignment, count which answer conditions hold.
	formulas := make([]event.Formula, len(answers))
	eventSet := make(map[event.ID]struct{})
	for i, a := range answers {
		formulas[i] = a.Formula
		for _, e := range a.Formula.Events() {
			eventSet[e] = struct{}{}
		}
	}
	events := make([]event.ID, 0, len(eventSet))
	for e := range eventSet {
		events = append(events, e)
	}
	if len(events) > fuzzy.MaxExactEvents {
		return nil, fmt.Errorf("infer: %d events exceed MaxExactEvents=%d", len(events), fuzzy.MaxExactEvents)
	}
	out := make(map[int]float64)
	err = ft.Table.ForEachAssignment(events, func(a event.Assignment, p float64) bool {
		k := 0
		for _, f := range formulas {
			if f.Eval(a) {
				k++
			}
		}
		out[k] += p
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ExpectedAnswerCount returns the expectation of the number of distinct
// answers: the sum of the answer probabilities (by linearity, no
// expansion needed).
func ExpectedAnswerCount(q *tpwj.Query, ft *fuzzy.Tree) (float64, error) {
	answers, err := tpwj.EvalFuzzy(q, ft)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, a := range answers {
		sum += a.P
	}
	return sum, nil
}

// Entropy returns the Shannon entropy (in bits) of a possible-worlds
// distribution — a measure of how uncertain the document is. The set is
// normalized first.
func Entropy(s *worlds.Set) float64 {
	h := 0.0
	for _, w := range s.Normalize().Worlds {
		if w.P > 0 {
			h -= w.P * math.Log2(w.P)
		}
	}
	return h
}

// DocumentEntropy is Entropy of the document's expansion; it shares the
// exactness limit of fuzzy.Tree.Expand.
func DocumentEntropy(ft *fuzzy.Tree) (float64, error) {
	pw, err := ft.Expand()
	if err != nil {
		return 0, err
	}
	return Entropy(pw), nil
}
