package gen

import (
	"math/rand"
	"testing"

	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/worlds"
)

func TestTreeValidAndDeterministic(t *testing.T) {
	a := Tree(rand.New(rand.NewSource(1)), TreeConfig{})
	b := Tree(rand.New(rand.NewSource(1)), TreeConfig{})
	if !tree.Equal(a, b) {
		t.Error("same seed must give the same tree")
	}
	c := Tree(rand.New(rand.NewSource(2)), TreeConfig{})
	if tree.Equal(a, c) {
		t.Error("different seeds should give different trees (very likely)")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("generated tree invalid: %v", err)
	}
}

func TestTreeRespectsDepth(t *testing.T) {
	n := Tree(rand.New(rand.NewSource(3)), TreeConfig{Depth: 2, MaxFanout: 3})
	if n.Depth() > 3 {
		t.Errorf("depth = %d, want <= 3", n.Depth())
	}
}

func TestTreeOfSize(t *testing.T) {
	for _, want := range []int{1, 2, 10, 500} {
		n := TreeOfSize(rand.New(rand.NewSource(4)), want, TreeConfig{})
		if got := n.Size(); got != want {
			t.Errorf("TreeOfSize(%d) has %d nodes", want, got)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("TreeOfSize(%d) invalid: %v", want, err)
		}
	}
}

func TestFuzzyValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		ft := Fuzzy(rand.New(rand.NewSource(seed)), FuzzyConfig{Events: 3})
		if err := ft.Validate(); err != nil {
			t.Fatalf("seed %d: invalid fuzzy tree: %v", seed, err)
		}
		if len(ft.Root.Cond) != 0 {
			t.Fatalf("seed %d: root has condition", seed)
		}
	}
}

func TestFuzzyExpandsToDistribution(t *testing.T) {
	ft := Fuzzy(rand.New(rand.NewSource(7)), FuzzyConfig{Events: 3, Tree: TreeConfig{Depth: 3, MaxFanout: 2}})
	s, err := ft.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsDistribution(worlds.Eps) {
		t.Error("expansion not a distribution")
	}
}

func TestMatchingQueryAlwaysMatches(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		doc := Tree(r, TreeConfig{})
		q := MatchingQuery(r, doc, seed%2 == 0)
		n, err := tpwj.CountMatches(q, tree.NewIndex(doc))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n == 0 {
			t.Errorf("seed %d: generated query does not match its document:\nq=%s\ndoc=%s",
				seed, tpwj.FormatQuery(q), tree.Format(doc))
		}
	}
}

func TestExtractionFeed(t *testing.T) {
	w := ExtractionFeed(rand.New(rand.NewSource(1)), 5)
	if len(w.Transactions) != 5 {
		t.Fatalf("transactions = %d", len(w.Transactions))
	}
	final, stats, err := w.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 5 {
		t.Fatalf("stats = %d", len(stats))
	}
	// Five person records under the root, each conditioned on its own
	// confidence event.
	if got := len(final.Root.Children); got != 5 {
		t.Errorf("records = %d, want 5", got)
	}
	for _, c := range final.Root.Children {
		if len(c.Cond) != 1 {
			t.Errorf("record condition = %q, want one confidence literal", c.Cond)
		}
	}
	if final.Table.Len() != 5 {
		t.Errorf("events = %d, want 5", final.Table.Len())
	}
}

func TestCleaningFeed(t *testing.T) {
	w := CleaningFeed(rand.New(rand.NewSource(2)), 3)
	final, _, err := w.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if err := final.Validate(); err != nil {
		t.Fatalf("final tree invalid: %v", err)
	}
	// Each record now carries both the old city (conditioned on the
	// cleaning having missed) and the new one.
	size := final.Size()
	if size <= w.Doc.Size() {
		t.Errorf("cleaning should have grown the tree: %d -> %d", w.Doc.Size(), size)
	}
}

func TestDependentDeletionsGrow(t *testing.T) {
	small, _, err := DependentDeletions(2).Apply()
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := DependentDeletions(4).Apply()
	if err != nil {
		t.Fatal(err)
	}
	// Growth must accelerate with k: compare growth over initial size.
	growSmall := small.Size() - DependentDeletions(2).Doc.Size()
	growBig := big.Size() - DependentDeletions(4).Doc.Size()
	if growBig <= 2*growSmall {
		t.Errorf("expected super-linear growth: k=2 -> +%d, k=4 -> +%d", growSmall, growBig)
	}
}

func TestIndependentDeletionsDoNotGrow(t *testing.T) {
	w := IndependentDeletions(5)
	final, _, err := w.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if final.Size() != w.Doc.Size() {
		t.Errorf("independent deletions grew the tree: %d -> %d", w.Doc.Size(), final.Size())
	}
}

func TestWorkloadApplyReportsErrors(t *testing.T) {
	w := ExtractionFeed(rand.New(rand.NewSource(1)), 1)
	w.Transactions[0].Conf = 5 // invalid
	if _, _, err := w.Apply(); err == nil {
		t.Error("invalid transaction accepted")
	}
}
