package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
)

// Workload is a reproducible scenario: an initial document and a stream
// of probabilistic transactions to apply in order.
type Workload struct {
	// Name describes the scenario.
	Name string
	// Doc is the initial document.
	Doc *fuzzy.Tree
	// Transactions are applied in order.
	Transactions []*update.Transaction
}

// ExtractionFeed models the paper's motivating scenario (slide 2–3):
// information-extraction modules push n uncertain records into a
// warehouse document, each as an insertion with a confidence. Records
// are person entries with a name and a random city.
func ExtractionFeed(r *rand.Rand, n int) *Workload {
	doc := fuzzy.New(fuzzy.NewNode("warehouse"))
	cities := []string{"Paris", "Orsay", "Saclay", "Lyon", "Lille"}
	w := &Workload{Name: "extraction-feed", Doc: doc}
	for i := 0; i < n; i++ {
		record := tree.New("person",
			tree.NewLeaf("name", fmt.Sprintf("person%03d", i)),
			tree.NewLeaf("city", cities[r.Intn(len(cities))]),
		)
		conf := 0.5 + 0.5*r.Float64()
		tx := update.New(
			tpwj.MustParseQuery("warehouse $w"),
			conf,
			update.Insert("w", record),
		)
		w.Transactions = append(w.Transactions, tx)
	}
	return w
}

// CleaningFeed models a data-cleaning pass (slide 15 generalized): the
// document holds n records with possibly stale city fields; each
// transaction conditionally replaces one record's city value with a
// corrected one, with a confidence.
func CleaningFeed(r *rand.Rand, n int) *Workload {
	root := fuzzy.NewNode("warehouse")
	tab := event.NewTable()
	for i := 0; i < n; i++ {
		e, _ := tab.Fresh("w", 0.3+0.6*r.Float64())
		rec := fuzzy.NewNode("person",
			fuzzy.NewLeaf("name", fmt.Sprintf("person%03d", i)),
			fuzzy.NewLeaf("city", "OldCity"),
		).WithCond(event.Cond(event.Pos(e)))
		root.Add(rec)
	}
	doc := &fuzzy.Tree{Root: root, Table: tab}

	w := &Workload{Name: "cleaning-feed", Doc: doc}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("person%03d", i)
		q := tpwj.MustParseQuery(
			fmt.Sprintf(`warehouse(person $p(name="%s" $n, city $c))`, name))
		conf := 0.5 + 0.5*r.Float64()
		tx := update.New(q, conf,
			update.Insert("p", tree.NewLeaf("city", "NewCity")),
			update.Delete("c"),
		)
		w.Transactions = append(w.Transactions, tx)
	}
	return w
}

// DependentDeletions builds the blow-up workload of experiment E5
// (slide 14): one victim node and k guard nodes carrying distinct
// events; the i-th transaction deletes the victim when guard i is
// present, so every deletion's condition is independent of the victim
// and the conditioned copies multiply.
func DependentDeletions(k int) *Workload {
	root := fuzzy.NewNode("A")
	tab := event.NewTable()
	ev, _ := tab.Fresh("v", 0.5)
	root.Add(fuzzy.NewNode("V").WithCond(event.Cond(event.Pos(ev))))
	for i := 1; i <= k; i++ {
		g, _ := tab.Fresh("g", 0.5)
		root.Add(fuzzy.NewNode(fmt.Sprintf("G%d", i)).WithCond(event.Cond(event.Pos(g))))
	}
	doc := &fuzzy.Tree{Root: root, Table: tab}

	w := &Workload{Name: "dependent-deletions", Doc: doc}
	for i := 1; i <= k; i++ {
		q := tpwj.MustParseQuery(fmt.Sprintf("A(G%d $g, V $x)", i))
		w.Transactions = append(w.Transactions, update.New(q, 0.9, update.Delete("x")))
	}
	return w
}

// IndependentDeletions is the contrast workload of E5: k victims, each
// deleted by a transaction whose match condition is implied by the
// victim itself, so no copying occurs.
func IndependentDeletions(k int) *Workload {
	root := fuzzy.NewNode("A")
	tab := event.NewTable()
	for i := 1; i <= k; i++ {
		e, _ := tab.Fresh("v", 0.5)
		root.Add(fuzzy.NewNode(fmt.Sprintf("V%d", i)).WithCond(event.Cond(event.Pos(e))))
	}
	doc := &fuzzy.Tree{Root: root, Table: tab}

	w := &Workload{Name: "independent-deletions", Doc: doc}
	for i := 1; i <= k; i++ {
		q := tpwj.MustParseQuery(fmt.Sprintf("A(V%d $x)", i))
		w.Transactions = append(w.Transactions, update.New(q, 0.9, update.Delete("x")))
	}
	return w
}

// Apply runs the workload's transactions in order on the fuzzy document,
// returning the final tree and the accumulated statistics.
func (w *Workload) Apply() (*fuzzy.Tree, []*update.FuzzyStats, error) {
	cur := w.Doc
	var stats []*update.FuzzyStats
	for i, tx := range w.Transactions {
		next, s, err := tx.ApplyFuzzy(cur)
		if err != nil {
			return nil, nil, fmt.Errorf("gen: workload %s step %d: %w", w.Name, i, err)
		}
		cur = next
		stats = append(stats, s)
	}
	return cur, stats, nil
}
