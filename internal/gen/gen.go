// Package gen builds deterministic synthetic workloads for the
// experiments: random data trees, fuzzy trees, queries guaranteed to
// match, and update streams with controllable dependency structure. The
// paper's demo used hand-curated web data that is no longer available;
// these generators produce documents with the same tunable
// characteristics (size, fan-out, number of events, condition
// complexity) that drive the paper's complexity claims.
//
// All generators are pure functions of their *rand.Rand source, so every
// experiment is reproducible from a seed.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/tree"
)

// TreeConfig controls random data-tree generation.
type TreeConfig struct {
	// Depth is the maximum tree height below the root.
	Depth int
	// MaxFanout is the maximum number of children per internal node
	// (at least 1 child is generated while depth remains).
	MaxFanout int
	// Labels is the label alphabet; defaults to A…F.
	Labels []string
	// Values is the leaf-value alphabet; defaults to a small word list.
	// The empty string is allowed and yields a valueless leaf.
	Values []string
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if c.MaxFanout <= 0 {
		c.MaxFanout = 4
	}
	if len(c.Labels) == 0 {
		c.Labels = []string{"A", "B", "C", "D", "E", "F"}
	}
	if len(c.Values) == 0 {
		c.Values = []string{"", "foo", "bar", "nee", "v1", "v2"}
	}
	return c
}

// Tree generates a random data tree.
func Tree(r *rand.Rand, cfg TreeConfig) *tree.Node {
	cfg = cfg.withDefaults()
	var build func(depth int) *tree.Node
	build = func(depth int) *tree.Node {
		n := &tree.Node{Label: cfg.Labels[r.Intn(len(cfg.Labels))]}
		if depth <= 0 || r.Intn(4) == 0 {
			n.Value = cfg.Values[r.Intn(len(cfg.Values))]
			return n
		}
		k := 1 + r.Intn(cfg.MaxFanout)
		for i := 0; i < k; i++ {
			n.Children = append(n.Children, build(depth-1))
		}
		return n
	}
	root := build(cfg.Depth)
	if root.IsLeaf() {
		root.Value = ""
		root.Children = []*tree.Node{{Label: cfg.Labels[0], Value: cfg.Values[r.Intn(len(cfg.Values))]}}
	}
	return root
}

// TreeOfSize generates a random data tree with exactly n nodes (n ≥ 1):
// nodes are attached one by one under uniformly chosen existing parents,
// so the shape is a random recursive tree.
func TreeOfSize(r *rand.Rand, n int, cfg TreeConfig) *tree.Node {
	cfg = cfg.withDefaults()
	root := &tree.Node{Label: cfg.Labels[0]}
	nodes := []*tree.Node{root}
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		parent.Value = "" // parents must not carry values
		child := &tree.Node{
			Label: cfg.Labels[r.Intn(len(cfg.Labels))],
			Value: cfg.Values[r.Intn(len(cfg.Values))],
		}
		parent.Children = append(parent.Children, child)
		nodes = append(nodes, child)
	}
	return root
}

// FuzzyConfig controls random fuzzy-tree generation.
type FuzzyConfig struct {
	Tree TreeConfig
	// Events is the number of distinct probabilistic events.
	Events int
	// CondProb is the probability that a non-root node carries a
	// condition at all.
	CondProb float64
	// MaxLits is the maximum number of literals per condition.
	MaxLits int
	// EventPrefix names the events (default "w": w1, w2, …).
	EventPrefix string
}

func (c FuzzyConfig) withDefaults() FuzzyConfig {
	c.Tree = c.Tree.withDefaults()
	if c.Events <= 0 {
		c.Events = 4
	}
	if c.CondProb == 0 {
		c.CondProb = 0.5
	}
	if c.MaxLits <= 0 {
		c.MaxLits = 2
	}
	if c.EventPrefix == "" {
		c.EventPrefix = "w"
	}
	return c
}

// Fuzzy generates a random fuzzy tree: a random data tree whose non-root
// nodes carry random conditions over a fresh event table with
// probabilities in (0.05, 0.95).
func Fuzzy(r *rand.Rand, cfg FuzzyConfig) *fuzzy.Tree {
	cfg = cfg.withDefaults()
	tab := event.NewTable()
	ids := make([]event.ID, cfg.Events)
	for i := range ids {
		ids[i] = event.ID(fmt.Sprintf("%s%d", cfg.EventPrefix, i+1))
		tab.MustSet(ids[i], 0.05+0.9*r.Float64())
	}
	data := Tree(r, cfg.Tree)
	root := fuzzy.FromData(data)
	first := true
	root.Walk(func(n *fuzzy.Node) bool {
		if first {
			first = false // root stays unconditioned
			return true
		}
		if r.Float64() >= cfg.CondProb {
			return true
		}
		k := 1 + r.Intn(cfg.MaxLits)
		var c event.Condition
		for i := 0; i < k; i++ {
			l := event.Literal{Event: ids[r.Intn(len(ids))], Neg: r.Intn(2) == 0}
			c = append(c, l)
		}
		n.Cond = c.Normalize()
		return true
	})
	return &fuzzy.Tree{Root: root, Table: tab}
}

// MatchingQuery builds a query guaranteed to have at least one valuation
// in doc: it samples a random node and returns the label path from the
// root to it as a chain pattern, binding the final node to variable
// "x". With useDesc, inner steps are randomly replaced by descendant
// edges (which preserves matching).
func MatchingQuery(r *rand.Rand, doc *tree.Node, useDesc bool) *tpwj.Query {
	ix := tree.NewIndex(doc)
	nodes := ix.Nodes()
	target := nodes[r.Intn(len(nodes))]
	path := ix.PathToRoot(target) // target … root

	// Build the chain from the root down.
	var rootP, cur *tpwj.PNode
	for i := len(path) - 1; i >= 0; i-- {
		p := tpwj.NewPNode(path[i].Label)
		if useDesc && cur != nil && r.Intn(3) == 0 {
			p.Descendant()
		}
		if cur == nil {
			rootP = p
		} else {
			cur.Add(p)
		}
		cur = p
	}
	cur.WithVar("x")
	return tpwj.NewQuery(rootP)
}
