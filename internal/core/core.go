// Package core groups the paper's primary contribution under one import:
// the fuzzy tree model (internal/fuzzy), TPWJ query evaluation over fuzzy
// trees (internal/tpwj) and probabilistic update transactions
// (internal/update). It exists to give the repository the conventional
// internal/core layout; the substance lives in the aliased packages, and
// the public facade is the root package fuzzyxml.
package core

import (
	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/update"
)

type (
	// FuzzyTree is the probabilistic document representation (slide 12).
	FuzzyTree = fuzzy.Tree
	// FuzzyNode is a conditioned tree node.
	FuzzyNode = fuzzy.Node
	// Query is a tree-pattern-with-join query (slide 6).
	Query = tpwj.Query
	// ProbAnswer is a probabilistic query answer (slide 13).
	ProbAnswer = tpwj.ProbAnswer
	// Transaction is a probabilistic update transaction (slides 7, 14).
	Transaction = update.Transaction
)

// EvalQuery evaluates a query directly on a fuzzy tree (slide 13).
func EvalQuery(q *Query, doc *FuzzyTree) ([]ProbAnswer, error) {
	return tpwj.EvalFuzzy(q, doc)
}

// ApplyUpdate applies a transaction directly to a fuzzy tree (slide 14).
func ApplyUpdate(tx *Transaction, doc *FuzzyTree) (*FuzzyTree, *update.FuzzyStats, error) {
	return tx.ApplyFuzzy(doc)
}
