// Package kv is the embedded key-value storage backend: one
// append-only page file (kv.store) holding every durable byte of a
// warehouse as Seq-tagged, CRC-framed records — journal payloads as an
// append region, documents and the view-registry snapshot as keyed
// pages. It is the bitcask-style counterpart to the file-per-document
// filestore backend; both implement store.Store and must be
// indistinguishable through it (the cross-backend differential suite
// in internal/warehouse enforces that).
//
// # File format
//
// The file is a sequence of frames:
//
//	kind(1) keyLen(2, BE) valLen(4, BE) seq(8, BE) key val crc32(4, BE)
//
// kind is journal (1), doc page (2), doc tombstone (3) or views page
// (4); seq increases monotonically across all frames; the CRC (IEEE)
// covers header, key and value. Opening scans the file once, building
// an in-memory index of the newest page per key and collecting the
// journal payloads; a frame that is incomplete, fails its CRC, or
// carries an invalid journal payload is a torn tail from a crash
// mid-append — everything from its start is truncated away, exactly
// the torn-line rule of the filestore journal. Reads serve pages with
// positioned reads (ReadAt); writes append through one shared buffered
// appender, so the file order of journal records, pages and markers is
// the order the warehouse wrote them, which is what makes the
// write-ahead contract hold within a single file.
//
// Compaction (ResetJournal) rewrites the live pages — documents and
// the views snapshot, not journal frames — into a fresh file, fsyncs
// it, and renames it into place.
//
// A failed append-path operation (write, flush, fsync) latches the
// store: the buffer may hold a partial frame that later appends would
// glue onto, so every later write returns the first error until Open
// re-reads the disk. This is stricter than the filestore, whose
// document writes fail independently of its journal; the warehouse
// surfaces the difference as degraded mode either way. All I/O goes
// through vfs.FS under area "kv" (plus "layout" for the directory),
// giving the fault sweep points kv.open, kv.read, kv.readat, kv.write,
// kv.sync, kv.close, kv.rename and kv.truncate.
package kv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/store"
	"repro/internal/vfs"
)

// FileName is the page file's name inside the warehouse directory. Its
// presence is how backend auto-detection recognizes a kv warehouse.
const FileName = "kv.store"

const (
	kindJournal = 1 // journal record payload
	kindDoc     = 2 // document page (key = name, val = content)
	kindDocTomb = 3 // document tombstone (key = name)
	kindViews   = 4 // view-registry snapshot page
)

const (
	headerLen  = 15 // kind + keyLen + valLen + seq
	trailerLen = 4  // crc32
)

// span locates one value inside the page file.
type span struct {
	off int64
	n   int
}

// Store is the kv backend rooted at dir.
type Store struct {
	dir string
	fs  vfs.FS

	// mu guards everything below. Appends hold it for the in-memory
	// buffering and the write-through flush; positioned reads copy the
	// span and handle out and read outside it.
	mu       sync.Mutex
	rf       vfs.File // read handle (ReadAt)
	wf       vfs.File // write handle (O_APPEND)
	w        *bufio.Writer
	size     int64 // logical end offset, buffered bytes included
	seq      uint64
	docs     map[string]span
	views    span
	hasViews bool
	failed   error
}

// New returns a kv backend rooted at dir, routing all I/O through fsys.
func New(dir string, fsys vfs.FS) *Store {
	return &Store{dir: dir, fs: fsys}
}

var _ store.Store = (*Store)(nil)

// Backend implements store.Store.
func (s *Store) Backend() string { return "kv" }

func (s *Store) path() string { return filepath.Join(s.dir, FileName) }

func syncDir(fsys vfs.FS, area, path string) error {
	d, err := fsys.OpenFile(area, path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// encodeFrame renders one frame. The caller bounds len(key) (document
// names) and len(val) (store.MaxRecordBytes).
func encodeFrame(kind byte, seq uint64, key string, val []byte) []byte {
	buf := make([]byte, 0, headerLen+len(key)+len(val)+trailerLen)
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(key)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(val)))
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = append(buf, key...)
	buf = append(buf, val...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// scanResult is one pass over the file: the journal payloads in append
// order, the newest page per key, the clean byte prefix, and the
// highest frame seq.
type scanResult struct {
	payloads [][]byte
	docs     map[string]span
	views    span
	hasViews bool
	clean    int64
	seq      uint64
	torn     bool
}

// scanFrames reads frames until the end of the file or the first frame
// that cannot have been written whole — short, CRC-mismatched, of
// unknown kind, oversized, or holding a journal payload valid rejects.
// Everything from that frame's start is a torn tail.
func scanFrames(br *bufio.Reader, valid func([]byte) bool) (scanResult, error) {
	res := scanResult{docs: make(map[string]span)}
	var off int64
	hdr := make([]byte, headerLen)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				res.clean = off
				return res, nil
			}
			if err == io.ErrUnexpectedEOF {
				res.torn, res.clean = true, off
				return res, nil
			}
			return res, fmt.Errorf("kv: scan: %w", err)
		}
		kind := hdr[0]
		keyLen := int(binary.BigEndian.Uint16(hdr[1:3]))
		valLen := int64(binary.BigEndian.Uint32(hdr[3:7]))
		seq := binary.BigEndian.Uint64(hdr[7:15])
		if kind < kindJournal || kind > kindViews || valLen >= store.MaxRecordBytes {
			res.torn, res.clean = true, off
			return res, nil
		}
		body := make([]byte, keyLen+int(valLen)+trailerLen)
		if _, err := io.ReadFull(br, body); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				res.torn, res.clean = true, off
				return res, nil
			}
			return res, fmt.Errorf("kv: scan: %w", err)
		}
		crc := crc32.Update(crc32.ChecksumIEEE(hdr), crc32.IEEETable, body[:len(body)-trailerLen])
		if crc != binary.BigEndian.Uint32(body[len(body)-trailerLen:]) {
			res.torn, res.clean = true, off
			return res, nil
		}
		key := string(body[:keyLen])
		val := body[keyLen : len(body)-trailerLen]
		if kind == kindJournal && valid != nil && !valid(val) {
			res.torn, res.clean = true, off
			return res, nil
		}
		valOff := off + headerLen + int64(keyLen)
		switch kind {
		case kindJournal:
			res.payloads = append(res.payloads, val)
		case kindDoc:
			res.docs[key] = span{off: valOff, n: int(valLen)}
		case kindDocTomb:
			delete(res.docs, key)
		case kindViews:
			res.views, res.hasViews = span{off: valOff, n: int(valLen)}, true
		}
		if seq > res.seq {
			res.seq = seq
		}
		off += int64(headerLen + len(body))
	}
}

// Open implements store.Store: create the directory, scan the page
// file (truncating a torn tail so appends land on a clean boundary),
// open the read and append handles, and fsync the directory so the
// page file's entry is durable. Calling Open on an already-open store
// discards all in-memory state and re-reads the disk — the recovery
// path after a latched failure.
func (s *Store) Open(valid func([]byte) bool) ([][]byte, store.Log, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeLocked()
	if err := s.fs.MkdirAll("layout", s.dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("kv: create layout: %w", err)
	}
	path := s.path()
	rf, err := s.fs.OpenFile("kv", path, os.O_RDONLY, 0)
	missing := errors.Is(err, fs.ErrNotExist)
	if err != nil && !missing {
		return nil, nil, fmt.Errorf("kv: open page file: %w", err)
	}
	res := scanResult{docs: make(map[string]span)}
	if !missing {
		res, err = scanFrames(bufio.NewReaderSize(rf, 1<<20), valid)
		if err != nil {
			rf.Close() //nolint:errcheck // already failing; the scan error wins
			return nil, nil, err
		}
		if res.torn {
			if err := s.fs.Truncate("kv", path, res.clean); err != nil {
				rf.Close() //nolint:errcheck
				return nil, nil, fmt.Errorf("kv: truncate torn tail: %w", err)
			}
		}
	}
	wf, err := s.fs.OpenFile("kv", path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		if !missing {
			rf.Close() //nolint:errcheck
		}
		return nil, nil, fmt.Errorf("kv: open page file: %w", err)
	}
	if missing {
		if rf, err = s.fs.OpenFile("kv", path, os.O_RDONLY, 0); err != nil {
			wf.Close() //nolint:errcheck
			return nil, nil, fmt.Errorf("kv: open page file: %w", err)
		}
	}
	if err := syncDir(s.fs, "layout", s.dir); err != nil {
		rf.Close() //nolint:errcheck
		wf.Close() //nolint:errcheck
		return nil, nil, fmt.Errorf("kv: sync layout: %w", err)
	}
	s.rf, s.wf = rf, wf
	s.w = bufio.NewWriterSize(wf, 1<<16)
	s.size, s.seq = res.clean, res.seq
	s.docs, s.views, s.hasViews = res.docs, res.views, res.hasViews
	s.failed = nil
	return res.payloads, &kvLog{s: s}, nil
}

// OpenJournal implements store.Store. The appender is the store's
// shared one, so this is handle bookkeeping only.
func (s *Store) OpenJournal() (store.Log, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wf == nil {
		return nil, errors.New("kv: store not open")
	}
	return &kvLog{s: s}, nil
}

// ScanJournal implements store.Store: an independent read-only pass
// over the page file. Buffered (unflushed) appends are invisible to
// it, and a record caught mid-flush reads as a torn tail — the
// semantics a crash would leave.
func (s *Store) ScanJournal(valid func([]byte) bool) ([][]byte, bool, error) {
	f, err := s.fs.OpenFile("kv", s.path(), os.O_RDONLY, 0)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("kv: open page file: %w", err)
	}
	defer f.Close() //nolint:errcheck // read-only descriptor
	res, err := scanFrames(bufio.NewReaderSize(f, 1<<20), valid)
	if err != nil {
		return nil, false, err
	}
	return res.payloads, res.torn, nil
}

// failLocked latches the first append-path error; see the package
// comment for why the store cannot keep writing after one.
func (s *Store) failLocked(err error) {
	if s.failed == nil {
		s.failed = err
	}
}

// appendLocked frames and buffers one record, returning the offset its
// value will occupy once flushed.
func (s *Store) appendLocked(kind byte, key string, val []byte) (int64, error) {
	if s.failed != nil {
		return 0, s.failed
	}
	if s.wf == nil {
		return 0, errors.New("kv: store not open")
	}
	if len(key) > math.MaxUint16 {
		return 0, fmt.Errorf("kv: key of %d bytes exceeds the frame limit", len(key))
	}
	s.seq++
	frame := encodeFrame(kind, s.seq, key, val)
	if _, err := s.w.Write(frame); err != nil {
		s.failLocked(err)
		return 0, err
	}
	valOff := s.size + headerLen + int64(len(key))
	s.size += int64(len(frame))
	return valOff, nil
}

func (s *Store) flushLocked() error {
	if s.failed != nil {
		return s.failed
	}
	if err := s.w.Flush(); err != nil {
		s.failLocked(err)
		return err
	}
	return nil
}

func (s *Store) syncLocked() error {
	if s.failed != nil {
		return s.failed
	}
	if err := s.wf.Sync(); err != nil {
		s.failLocked(err)
		return err
	}
	return nil
}

// ReadDoc implements store.Store: a positioned read of the newest
// page. Pages are flushed on write, so the read never misses buffered
// content.
func (s *Store) ReadDoc(name string) ([]byte, error) {
	s.mu.Lock()
	sp, ok := s.docs[name]
	rf := s.rf
	s.mu.Unlock()
	if !ok || rf == nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	buf := make([]byte, sp.n)
	if _, err := rf.ReadAt(buf, sp.off); err != nil {
		return nil, fmt.Errorf("kv: read doc %q: %w", name, err)
	}
	return buf, nil
}

// WriteDoc implements store.Store: append a page frame and flush it
// through to the operating system — write-through keeps ReadDoc's
// positioned reads coherent without any fsync — then fsync when the
// caller needs durability now rather than via the journal.
func (s *Store) WriteDoc(name string, data []byte, sync bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	valOff, err := s.appendLocked(kindDoc, name, data)
	if err != nil {
		return fmt.Errorf("kv: write doc %q: %w", name, err)
	}
	if err := s.flushLocked(); err != nil {
		return fmt.Errorf("kv: write doc %q: %w", name, err)
	}
	s.docs[name] = span{off: valOff, n: len(data)}
	if sync {
		if err := s.syncLocked(); err != nil {
			return fmt.Errorf("kv: sync doc %q: %w", name, err)
		}
	}
	return nil
}

// RemoveDoc implements store.Store: append a tombstone. Like a
// filestore unlink it is not individually fsynced — the journal's
// committed drop record is the durable authority, and SyncDocs
// (Compact) hardens the rest.
func (s *Store) RemoveDoc(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	if _, err := s.appendLocked(kindDocTomb, name, nil); err != nil {
		return fmt.Errorf("kv: remove doc %q: %w", name, err)
	}
	if err := s.flushLocked(); err != nil {
		return fmt.Errorf("kv: remove doc %q: %w", name, err)
	}
	delete(s.docs, name)
	return nil
}

// DocExists implements store.Store from the in-memory index.
func (s *Store) DocExists(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.docs[name]
	return ok, nil
}

// ListDocs implements store.Store.
func (s *Store) ListDocs() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.docs))
	for n := range s.docs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// SyncDocs implements store.Store: one flush+fsync hardens every page,
// the single-file counterpart of the filestore's per-file fsync walk.
func (s *Store) SyncDocs() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.syncLocked()
}

// ReadViews implements store.Store.
func (s *Store) ReadViews() ([]byte, bool, error) {
	s.mu.Lock()
	sp, ok := s.views, s.hasViews
	rf := s.rf
	s.mu.Unlock()
	if !ok || rf == nil {
		return nil, false, nil
	}
	buf := make([]byte, sp.n)
	if _, err := rf.ReadAt(buf, sp.off); err != nil {
		return nil, false, fmt.Errorf("kv: read views: %w", err)
	}
	return buf, true, nil
}

// WriteViews implements store.Store: an fsynced views page, matching
// the filestore's fsynced views.json swap.
func (s *Store) WriteViews(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	valOff, err := s.appendLocked(kindViews, "", data)
	if err != nil {
		return fmt.Errorf("kv: write views: %w", err)
	}
	if err := s.flushLocked(); err != nil {
		return fmt.Errorf("kv: write views: %w", err)
	}
	if err := s.syncLocked(); err != nil {
		return fmt.Errorf("kv: write views: %w", err)
	}
	s.views, s.hasViews = span{off: valOff, n: len(data)}, true
	return nil
}

// ResetJournal implements store.Store: rewrite the live pages into a
// fresh file, fsync it, rename it over the old one, and reopen the
// handles — the kv equivalent of truncating journal.log, which also
// reclaims superseded pages. The caller (Compact) has already made
// every page durable, so a crash anywhere here leaves either the old
// complete file or the new one.
func (s *Store) ResetJournal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if s.wf == nil {
		return errors.New("kv: store not open")
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	names := make([]string, 0, len(s.docs))
	for n := range s.docs {
		names = append(names, n)
	}
	sort.Strings(names)
	path, tmp := s.path(), s.path()+".tmp"
	tf, err := s.fs.OpenFile("kv", tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("kv: compact: %w", err)
	}
	bw := bufio.NewWriterSize(tf, 1<<16)
	var off int64
	newDocs := make(map[string]span, len(s.docs))
	var newViews span
	writePage := func(kind byte, key string, sp span) (span, error) {
		val := make([]byte, sp.n)
		if _, err := s.rf.ReadAt(val, sp.off); err != nil {
			return span{}, err
		}
		s.seq++
		frame := encodeFrame(kind, s.seq, key, val)
		if _, err := bw.Write(frame); err != nil {
			return span{}, err
		}
		out := span{off: off + headerLen + int64(len(key)), n: sp.n}
		off += int64(len(frame))
		return out, nil
	}
	for _, name := range names {
		if newDocs[name], err = writePage(kindDoc, name, s.docs[name]); err != nil {
			break
		}
	}
	if err == nil && s.hasViews {
		newViews, err = writePage(kindViews, "", s.views)
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		s.fs.Remove("kv", tmp) //nolint:errcheck // best-effort; the rewrite error wins
		return fmt.Errorf("kv: compact: %w", err)
	}
	if err := s.fs.Rename("kv", tmp, path); err != nil {
		return fmt.Errorf("kv: compact: %w", err)
	}
	if err := syncDir(s.fs, "layout", s.dir); err != nil {
		return fmt.Errorf("kv: compact: %w", err)
	}
	// The rename landed: the new file is the store. A failure from here
	// on leaves the handles unusable, so it latches the store (Reopen
	// re-runs Open, which re-reads the — consistent — new file).
	s.rf.Close() //nolint:errcheck // superseded handle
	s.wf.Close() //nolint:errcheck
	s.rf, s.wf, s.w = nil, nil, nil
	rf, err := s.fs.OpenFile("kv", path, os.O_RDONLY, 0)
	if err != nil {
		s.failLocked(err)
		return fmt.Errorf("kv: compact reopen: %w", err)
	}
	wf, err := s.fs.OpenFile("kv", path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		rf.Close() //nolint:errcheck
		s.failLocked(err)
		return fmt.Errorf("kv: compact reopen: %w", err)
	}
	s.rf, s.wf = rf, wf
	s.w = bufio.NewWriterSize(wf, 1<<16)
	s.size = off
	s.docs, s.views = newDocs, newViews
	return nil
}

// Stats implements store.Store.
func (s *Store) Stats() (store.Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := store.Stats{Backend: s.Backend(), Docs: len(s.docs), Bytes: s.size}
	for name, sp := range s.docs {
		st.LiveBytes += int64(headerLen + len(name) + sp.n + trailerLen)
	}
	if s.hasViews {
		st.LiveBytes += int64(headerLen + s.views.n + trailerLen)
	}
	return st, nil
}

// Close implements store.Store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.w != nil && s.failed == nil {
		err = s.w.Flush()
	}
	s.closeLocked()
	return err
}

// closeLocked releases the handles, best-effort. The caller holds mu.
func (s *Store) closeLocked() {
	if s.rf != nil {
		s.rf.Close() //nolint:errcheck
	}
	if s.wf != nil {
		s.wf.Close() //nolint:errcheck
	}
	s.rf, s.wf, s.w = nil, nil, nil
}

// kvLog adapts the store's shared appender to store.Log.
type kvLog struct {
	s *Store
}

func (l *kvLog) Append(p []byte) error {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	_, err := l.s.appendLocked(kindJournal, "", p)
	return err
}

func (l *kvLog) Flush() error {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	return l.s.flushLocked()
}

func (l *kvLog) Sync() error {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	return l.s.syncLocked()
}

// Close flushes the appender; the handles stay with the Store (the
// journal region has no file of its own to release).
func (l *kvLog) Close() error {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	if l.s.w == nil {
		return nil
	}
	return l.s.flushLocked()
}
