// Package store defines the persistence surface of the warehouse: the
// Store interface covers everything the warehouse writes or reads on
// disk — the write-ahead journal (append/flush/fsync/scan/reset), the
// document pages, the view-registry snapshot, and layout
// initialization — so the on-disk format becomes a backend choice.
//
// Two backends implement it: filestore (file per document, JSON-lines
// journal, views.json snapshot — the original layout) and kv (a single
// append-only page file holding Seq-tagged records). Both route every
// byte through vfs.FS, so the fault-injection sweep covers them with
// the same machinery, and the cross-backend differential suite in
// internal/warehouse asserts they recover to identical states from
// identical op streams. docs/STORAGE.md specifies the contract in
// prose, including what a third backend must provide.
package store

// MaxRecordBytes bounds one journal record payload. Enforced by the
// warehouse at append time so an oversized mutation fails cleanly
// instead of writing a record the scan would reject as corrupt — which
// would truncate every record after it on the next open. Backends use
// it to bound allocation while scanning. The cap leaves generous
// headroom over the server's 64MB body limit after JSON escaping.
const MaxRecordBytes = 512 << 20

// Log is an open journal appender. Append buffers one record payload
// (the backend adds its own framing); Flush pushes the buffer to the
// operating system; Sync makes everything flushed durable. The
// warehouse's group-commit layer sits on top: it serializes Append
// calls and batches Flush+Sync across concurrent mutations, and it —
// not the backend — latches the instance dead after a flush or sync
// failure.
type Log interface {
	// Append buffers one record payload. The payload must not contain
	// backend framing; it is returned verbatim by Open and ScanJournal.
	Append(p []byte) error
	// Flush writes the buffer through to the operating system.
	Flush() error
	// Sync makes all flushed records durable (fsync).
	Sync() error
	// Close flushes and releases the appender. The Store stays open.
	Close() error
}

// Stats describes a backend's on-disk footprint, served under the
// /stats "storage" section.
type Stats struct {
	// Backend is the backend name ("filestore" or "kv").
	Backend string `json:"backend"`
	// Docs is the number of stored documents.
	Docs int `json:"docs"`
	// Bytes is the total on-disk size: journal plus documents plus the
	// view snapshot (filestore), or the page file (kv).
	Bytes int64 `json:"bytes"`
	// LiveBytes is the size of the live data within Bytes. For
	// filestore the two are equal; for kv the gap is garbage a Compact
	// would reclaim (superseded pages and journal frames).
	LiveBytes int64 `json:"live_bytes"`
}

// Store is one warehouse persistence backend rooted at a directory.
// Implementations need not be safe for arbitrary concurrent use: the
// warehouse serializes journal traffic through its group-commit layer
// and document writes through per-document locks, but read methods
// (ReadDoc, ListDocs, Stats, ScanJournal) may be called concurrently
// with each other and with writes.
//
// Missing documents are reported with errors satisfying
// errors.Is(err, fs.ErrNotExist), the convention the warehouse maps to
// its ErrNotFound.
type Store interface {
	// Backend returns the backend name ("filestore", "kv").
	Backend() string

	// Open initializes the on-disk layout (creating it if necessary),
	// scans the journal — truncating any torn tail so later appends
	// land on a clean boundary — and returns the surviving record
	// payloads in append order plus a fresh Log positioned after them.
	// valid reports whether a payload parses as a journal record;
	// backends use it to tell a torn tail from a clean end. Open is
	// also the recovery entry point after a failure: calling it on an
	// already-open store discards all in-memory state and re-reads the
	// disk.
	Open(valid func(payload []byte) bool) ([][]byte, Log, error)

	// ScanJournal re-reads the journal payloads without truncating or
	// otherwise writing, reporting whether a torn tail follows them.
	// It must work without Open having been called (read-only audit of
	// a crashed directory) and concurrently with appends (a record
	// caught mid-flush reads as a torn tail, like a crash would leave).
	ScanJournal(valid func(payload []byte) bool) ([][]byte, bool, error)

	// ResetJournal drops all journal records, compacting the backend's
	// storage. The caller must have closed the current Log and made
	// every document and the view snapshot durable first; OpenJournal
	// provides the successor Log.
	ResetJournal() error

	// OpenJournal opens a fresh Log after ResetJournal.
	OpenJournal() (Log, error)

	// ReadDoc returns the named document's content.
	ReadDoc(name string) ([]byte, error)
	// WriteDoc atomically replaces the document's content. With sync
	// the content is durable on return; without it the caller relies
	// on the journal holding a committed copy (see the warehouse's
	// deferred-fsync contract).
	WriteDoc(name string, data []byte, sync bool) error
	// RemoveDoc deletes the document.
	RemoveDoc(name string) error
	// DocExists reports whether the document exists. It must be cheap:
	// the warehouse calls it on every read to bound lock-table growth.
	DocExists(name string) (bool, error)
	// ListDocs returns the sorted names of all stored documents.
	ListDocs() ([]string, error)
	// SyncDocs makes every document durable (Compact's barrier before
	// the journal — until then the durable copy — is dropped).
	SyncDocs() error

	// ReadViews returns the view-registry snapshot, with ok=false (and
	// a nil error) when none has been written.
	ReadViews() (data []byte, ok bool, err error)
	// WriteViews durably replaces the view-registry snapshot.
	WriteViews(data []byte) error

	// Stats reports the backend's on-disk footprint.
	Stats() (Stats, error)

	// Close releases all handles. Open may be called again afterwards.
	Close() error
}
