// Package filestore is the file-per-document storage backend: the
// warehouse's original on-disk layout, extracted behind the
// store.Store interface. One directory holds docs/<name>.pxml files
// (atomically replaced via write-temp-then-rename), journal.log (an
// append-only JSON-lines file, one record payload per line), and
// views.json (the compaction snapshot of the view registry).
//
// All I/O goes through vfs.FS under the same area tags the warehouse
// historically used — "journal", "doc", "views", "layout" — so the
// fault-point catalog (docs/FAULTS.md) is unchanged by the extraction.
package filestore

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/store"
	"repro/internal/vfs"
)

const (
	docsDir     = "docs"
	docExt      = ".pxml"
	journalFile = "journal.log"
	viewsFile   = "views.json"
)

// Store is the file-per-document backend rooted at dir.
type Store struct {
	dir string
	fs  vfs.FS
}

var _ store.Store = (*Store)(nil)

// New returns a filestore backend rooted at dir, routing all I/O
// through fsys (vfs.OS in production, a vfs.FaultFS in tests).
func New(dir string, fsys vfs.FS) *Store {
	return &Store{dir: dir, fs: fsys}
}

// Backend implements store.Store.
func (s *Store) Backend() string { return "filestore" }

func (s *Store) docPath(name string) string {
	return filepath.Join(s.dir, docsDir, name+docExt)
}

func (s *Store) journalPath() string { return filepath.Join(s.dir, journalFile) }

// syncDir fsyncs a directory, making the entries it holds durable.
func syncDir(fsys vfs.FS, area, path string) error {
	d, err := fsys.OpenFile(area, path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Open implements store.Store: create the layout, scan the journal,
// physically truncate any torn tail (a fresh record appended after a
// partial line would glue onto it, turning the torn write into
// mid-file corruption that costs every later record on the next open),
// open the appender, and make the layout's directory entries durable —
// fsync of journal.log alone does not persist its entry in a freshly
// created warehouse directory, and the journal is the sole durable
// copy of acknowledged mutations until the next compaction.
func (s *Store) Open(valid func([]byte) bool) ([][]byte, store.Log, error) {
	if err := s.fs.MkdirAll("layout", filepath.Join(s.dir, docsDir), 0o755); err != nil {
		return nil, nil, fmt.Errorf("filestore: create layout: %w", err)
	}
	payloads, clean, torn, err := s.scan(valid)
	if err != nil {
		return nil, nil, err
	}
	if torn {
		if err := s.fs.Truncate("journal", s.journalPath(), clean); err != nil {
			return nil, nil, fmt.Errorf("filestore: truncate torn journal tail: %w", err)
		}
	}
	log, err := s.OpenJournal()
	if err != nil {
		return nil, nil, err
	}
	if err := syncDir(s.fs, "layout", filepath.Join(s.dir, docsDir)); err == nil {
		err = syncDir(s.fs, "layout", s.dir)
	}
	if err != nil {
		log.Close() //nolint:errcheck // already failing; the open error wins
		return nil, nil, fmt.Errorf("filestore: sync layout: %w", err)
	}
	return payloads, log, nil
}

// OpenJournal implements store.Store.
func (s *Store) OpenJournal() (store.Log, error) {
	f, err := s.fs.OpenFile("journal", s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("filestore: open journal: %w", err)
	}
	return &fileLog{f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

// ScanJournal implements store.Store.
func (s *Store) ScanJournal(valid func([]byte) bool) ([][]byte, bool, error) {
	payloads, _, torn, err := s.scan(valid)
	return payloads, torn, err
}

// scan loads all well-formed record payloads and reports the byte
// length of the clean prefix holding them. A trailing fragment — a
// line missing its terminating newline, rejected by valid, or
// impossibly large — is a torn write from a crash mid-append: every
// acknowledged append was fsynced in full, newline included, so a
// malformed tail can only belong to a mutation nobody was told
// succeeded. It is reported (and not counted in clean) rather than
// treated as an error.
func (s *Store) scan(valid func([]byte) bool) (payloads [][]byte, clean int64, torn bool, err error) {
	f, err := s.fs.OpenFile("journal", s.journalPath(), os.O_RDONLY, 0)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("filestore: read journal: %w", err)
	}
	defer f.Close() //nolint:errcheck // read-only descriptor; nothing buffered to lose
	br := bufio.NewReaderSize(f, 1<<20)
	var line []byte
	for {
		frag, err := br.ReadSlice('\n')
		line = append(line, frag...)
		if err == bufio.ErrBufferFull {
			// Accumulate long lines fragment by fragment, bailing once
			// past the record cap so a newline-free corrupt region can
			// never be slurped into memory whole.
			if len(line) >= store.MaxRecordBytes {
				return payloads, clean, true, nil
			}
			continue
		}
		if err == io.EOF {
			if len(line) > 0 {
				torn = true
			}
			return payloads, clean, torn, nil
		}
		if err != nil {
			return nil, 0, false, fmt.Errorf("filestore: scan journal: %w", err)
		}
		body := bytes.TrimSuffix(line, []byte{'\n'})
		if len(body) == 0 {
			clean += int64(len(line))
			line = line[:0]
			continue
		}
		if len(body) >= store.MaxRecordBytes || !valid(body) {
			return payloads, clean, true, nil
		}
		payloads = append(payloads, append([]byte(nil), body...))
		clean += int64(len(line))
		line = line[:0]
	}
}

// ResetJournal implements store.Store: truncate journal.log in place.
func (s *Store) ResetJournal() error {
	return s.fs.Truncate("journal", s.journalPath(), 0)
}

// ReadDoc implements store.Store.
func (s *Store) ReadDoc(name string) ([]byte, error) {
	return s.fs.ReadFile("doc", s.docPath(name))
}

// WriteDoc implements store.Store: write a temporary file next to the
// target and rename it into place. With sync, the data is fsynced
// before the rename, so a crash can expose the old or the new content
// but never a torn file.
func (s *Store) WriteDoc(name string, data []byte, sync bool) error {
	path := s.docPath(name)
	tmp := path + ".tmp"
	f, err := s.fs.OpenFile("doc", tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		// Cleanup of a tmp file the rename will never see is
		// best-effort: a leftover .tmp is overwritten by the next swap
		// and invisible to readers, while the write error is what the
		// caller must hear.
		f.Close()               //nolint:errcheck // failing path; the write error wins
		s.fs.Remove("doc", tmp) //nolint:errcheck
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()               //nolint:errcheck // failing path; the sync error wins
			s.fs.Remove("doc", tmp) //nolint:errcheck
			return err
		}
	}
	if err := f.Close(); err != nil {
		s.fs.Remove("doc", tmp) //nolint:errcheck
		return err
	}
	return s.fs.Rename("doc", tmp, path)
}

// RemoveDoc implements store.Store.
func (s *Store) RemoveDoc(name string) error {
	return s.fs.Remove("doc", s.docPath(name))
}

// DocExists implements store.Store.
func (s *Store) DocExists(name string) (bool, error) {
	if _, err := s.fs.Stat("doc", s.docPath(name)); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// ListDocs implements store.Store.
func (s *Store) ListDocs() ([]string, error) {
	entries, err := s.fs.ReadDir("doc", filepath.Join(s.dir, docsDir))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), docExt); ok && !e.IsDir() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDocs implements store.Store: fsync every document file and then
// the docs directory (making renames and removals durable).
func (s *Store) SyncDocs() error {
	dir := filepath.Join(s.dir, docsDir)
	entries, err := s.fs.ReadDir("doc", dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), docExt) || e.IsDir() {
			continue
		}
		f, err := s.fs.OpenFile("doc", filepath.Join(dir, e.Name()), os.O_RDONLY, 0)
		if err != nil {
			return err
		}
		err = f.Sync()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return syncDir(s.fs, "doc", dir)
}

// ReadViews implements store.Store.
func (s *Store) ReadViews() ([]byte, bool, error) {
	data, err := s.fs.ReadFile("views", filepath.Join(s.dir, viewsFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// WriteViews implements store.Store: fsynced write-temp-then-rename,
// then an fsync of the root directory so the rename itself is durable.
func (s *Store) WriteViews(data []byte) error {
	path := filepath.Join(s.dir, viewsFile)
	tmp := path + ".tmp"
	f, err := s.fs.OpenFile("views", tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// Plain assignment, not :=, so a write or sync failure survives into
	// the error accounting below — a shadowed err here once let a torn
	// snapshot get renamed over views.json.
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// Best-effort cleanup: the tmp file is invisible to loads and
		// overwritten by the next snapshot; the write/sync/close error
		// is what the caller must hear.
		s.fs.Remove("views", tmp) //nolint:errcheck
		return err
	}
	if err := s.fs.Rename("views", tmp, path); err != nil {
		return err
	}
	return syncDir(s.fs, "views", s.dir)
}

// Stats implements store.Store.
func (s *Store) Stats() (store.Stats, error) {
	st := store.Stats{Backend: s.Backend()}
	names, err := s.ListDocs()
	if err != nil {
		return st, err
	}
	st.Docs = len(names)
	for _, n := range names {
		fi, err := s.fs.Stat("doc", s.docPath(n))
		if err != nil {
			return st, err
		}
		st.Bytes += fi.Size()
	}
	for _, p := range []struct{ area, path string }{
		{"journal", s.journalPath()},
		{"views", filepath.Join(s.dir, viewsFile)},
	} {
		fi, err := s.fs.Stat(p.area, p.path)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return st, err
		}
		st.Bytes += fi.Size()
	}
	// Every on-disk byte is live: superseded content is gone the moment
	// its file is renamed over.
	st.LiveBytes = st.Bytes
	return st, nil
}

// Close implements store.Store. The filestore holds no long-lived
// handles of its own (the journal appender is owned by its Log).
func (s *Store) Close() error { return nil }

// fileLog is the journal appender: a buffered writer over the
// O_APPEND journal.log handle. Framing is one payload per line.
type fileLog struct {
	f vfs.File
	w *bufio.Writer
}

func (l *fileLog) Append(p []byte) error {
	if _, err := l.w.Write(p); err != nil {
		return err
	}
	return l.w.WriteByte('\n')
}

func (l *fileLog) Flush() error { return l.w.Flush() }

func (l *fileLog) Sync() error { return l.f.Sync() }

func (l *fileLog) Close() error {
	err := l.w.Flush()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
