// Package worlds implements the possible-worlds model of Abiteboul and
// Senellart (EDBT 2006): the semantic foundation for probabilistic XML.
// A possible-worlds set is a finite set of (tree, probability) pairs, one
// per possible world. Query and update semantics over possible-worlds
// sets are defined in the tpwj and update packages; this package provides
// the container, normalization (merging isomorphic worlds) and
// comparisons.
package worlds

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/tree"
)

// Eps is the default numeric tolerance for probability comparisons.
const Eps = 1e-9

// World is one possible world: a data tree together with its probability.
type World struct {
	Tree *tree.Node
	P    float64
}

// Set is a finite set of possible worlds. The zero value is an empty set
// ready to use.
//
// A Set used as the semantics of a probabilistic document is a
// distribution (probabilities sum to 1). A Set used as a query result is
// in general not a distribution: each entry records the probability that
// the given tree is an answer.
type Set struct {
	Worlds []World
}

// Add appends a world to the set.
func (s *Set) Add(t *tree.Node, p float64) {
	s.Worlds = append(s.Worlds, World{Tree: t, P: p})
}

// Len returns the number of worlds.
func (s *Set) Len() int { return len(s.Worlds) }

// Total returns the sum of the probabilities.
func (s *Set) Total() float64 {
	total := 0.0
	for _, w := range s.Worlds {
		total += w.P
	}
	return total
}

// Clone returns a deep copy of the set (trees are cloned).
func (s *Set) Clone() *Set {
	c := &Set{Worlds: make([]World, len(s.Worlds))}
	for i, w := range s.Worlds {
		c.Worlds[i] = World{Tree: w.Tree.Clone(), P: w.P}
	}
	return c
}

// Normalize merges isomorphic worlds, summing their probabilities, drops
// zero-probability worlds, and orders the result deterministically
// (descending probability, then canonical form). This is the
// normalization operator of the paper's query and update semantics. The
// receiver is unchanged; a new set is returned. Trees are shared with the
// receiver, not cloned.
func (s *Set) Normalize() *Set {
	type bucket struct {
		tree  *tree.Node
		canon string
		p     float64
	}
	byCanon := make(map[string]*bucket)
	order := make([]string, 0, len(s.Worlds))
	for _, w := range s.Worlds {
		c := tree.Canonical(w.Tree)
		b, ok := byCanon[c]
		if !ok {
			b = &bucket{tree: w.Tree, canon: c}
			byCanon[c] = b
			order = append(order, c)
		}
		b.p += w.P
	}
	out := &Set{}
	for _, c := range order {
		b := byCanon[c]
		if b.p <= 0 {
			continue
		}
		out.Add(b.tree, b.p)
	}
	sort.SliceStable(out.Worlds, func(i, j int) bool {
		if math.Abs(out.Worlds[i].P-out.Worlds[j].P) > Eps {
			return out.Worlds[i].P > out.Worlds[j].P
		}
		return tree.Canonical(out.Worlds[i].Tree) < tree.Canonical(out.Worlds[j].Tree)
	})
	return out
}

// IsDistribution reports whether the probabilities are non-negative and
// sum to 1 within eps (use Eps for the default tolerance).
func (s *Set) IsDistribution(eps float64) bool {
	for _, w := range s.Worlds {
		if w.P < -eps {
			return false
		}
	}
	return math.Abs(s.Total()-1) <= eps
}

// ProbOf returns the total probability of worlds isomorphic to t.
func (s *Set) ProbOf(t *tree.Node) float64 {
	c := tree.Canonical(t)
	p := 0.0
	for _, w := range s.Worlds {
		if tree.Canonical(w.Tree) == c {
			p += w.P
		}
	}
	return p
}

// Equal reports whether s and o denote the same possible-worlds set: after
// normalization, the same trees with the same probabilities within eps.
func (s *Set) Equal(o *Set, eps float64) bool {
	a, b := s.Normalize(), o.Normalize()
	if len(a.Worlds) != len(b.Worlds) {
		return false
	}
	bm := make(map[string]float64, len(b.Worlds))
	for _, w := range b.Worlds {
		bm[tree.Canonical(w.Tree)] += w.P
	}
	for _, w := range a.Worlds {
		q, ok := bm[tree.Canonical(w.Tree)]
		if !ok || math.Abs(w.P-q) > eps {
			return false
		}
	}
	return true
}

// Scale multiplies every probability by f and returns a new set sharing
// the trees.
func (s *Set) Scale(f float64) *Set {
	out := &Set{Worlds: make([]World, len(s.Worlds))}
	for i, w := range s.Worlds {
		out.Worlds[i] = World{Tree: w.Tree, P: w.P * f}
	}
	return out
}

// Union returns the concatenation of s and o (no normalization).
func (s *Set) Union(o *Set) *Set {
	out := &Set{Worlds: make([]World, 0, len(s.Worlds)+len(o.Worlds))}
	out.Worlds = append(out.Worlds, s.Worlds...)
	out.Worlds = append(out.Worlds, o.Worlds...)
	return out
}

// Validate checks that every world holds a structurally valid tree and a
// probability in [0, 1].
func (s *Set) Validate() error {
	for i, w := range s.Worlds {
		if err := w.Tree.Validate(); err != nil {
			return fmt.Errorf("worlds: world %d: %w", i, err)
		}
		if w.P < 0 || w.P > 1 || math.IsNaN(w.P) {
			return fmt.Errorf("worlds: world %d: probability %v outside [0,1]", i, w.P)
		}
	}
	return nil
}

// String renders the normalized set, one world per line:
//
//	P=0.56  A(B:foo)
func (s *Set) String() string {
	n := s.Normalize()
	var b strings.Builder
	for _, w := range n.Worlds {
		fmt.Fprintf(&b, "P=%.6g  %s\n", w.P, tree.Format(w.Tree))
	}
	return b.String()
}
