package worlds

import (
	"math"
	"strings"
	"testing"

	"repro/internal/tree"
)

// slide9 builds the possible-worlds set shown on slide 9 of the paper:
// four worlds over root A with optional children B and C(D).
//
//	A(C)       P=0.06
//	A(C(D))    P=0.14
//	A(B, C)    P=0.24
//	A(B, C(D)) P=0.56
func slide9() *Set {
	s := &Set{}
	s.Add(tree.MustParse("A(C)"), 0.06)
	s.Add(tree.MustParse("A(C(D))"), 0.14)
	s.Add(tree.MustParse("A(B, C)"), 0.24)
	s.Add(tree.MustParse("A(B, C(D))"), 0.56)
	return s
}

func TestSlide9IsDistribution(t *testing.T) {
	s := slide9()
	if !s.IsDistribution(Eps) {
		t.Errorf("slide-9 set should be a distribution, total=%v", s.Total())
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestNormalizeMergesIsomorphic(t *testing.T) {
	s := &Set{}
	s.Add(tree.MustParse("A(B, C)"), 0.3)
	s.Add(tree.MustParse("A(C, B)"), 0.2) // isomorphic, different order
	s.Add(tree.MustParse("A(B)"), 0.5)
	n := s.Normalize()
	if n.Len() != 2 {
		t.Fatalf("Normalize left %d worlds, want 2", n.Len())
	}
	if p := n.ProbOf(tree.MustParse("A(C, B)")); math.Abs(p-0.5) > Eps {
		t.Errorf("merged probability = %v, want 0.5", p)
	}
}

func TestNormalizeDropsZero(t *testing.T) {
	s := &Set{}
	s.Add(tree.MustParse("A"), 0)
	s.Add(tree.MustParse("A(B)"), 1)
	n := s.Normalize()
	if n.Len() != 1 {
		t.Errorf("zero-probability world kept: %v", n)
	}
}

func TestNormalizeDeterministicOrder(t *testing.T) {
	s := &Set{}
	s.Add(tree.MustParse("A(X)"), 0.25)
	s.Add(tree.MustParse("A(Y)"), 0.25)
	s.Add(tree.MustParse("A(Z)"), 0.5)
	n := s.Normalize()
	if n.Worlds[0].P != 0.5 {
		t.Error("highest probability should come first")
	}
	// Equal probabilities tie-break on canonical form.
	if tree.Format(n.Worlds[1].Tree) != "A(X)" || tree.Format(n.Worlds[2].Tree) != "A(Y)" {
		t.Errorf("tie-break order wrong: %s / %s",
			tree.Format(n.Worlds[1].Tree), tree.Format(n.Worlds[2].Tree))
	}
}

func TestEqual(t *testing.T) {
	a := slide9()
	b := &Set{}
	// Same set, different insertion order and split probabilities.
	b.Add(tree.MustParse("A(B, C(D))"), 0.26)
	b.Add(tree.MustParse("A(C(D), B)"), 0.30)
	b.Add(tree.MustParse("A(C)"), 0.06)
	b.Add(tree.MustParse("A(C(D))"), 0.14)
	b.Add(tree.MustParse("A(B, C)"), 0.24)
	if !a.Equal(b, Eps) {
		t.Error("sets should be equal after normalization")
	}
	c := slide9()
	c.Worlds[0].P = 0.07
	if a.Equal(c, Eps) {
		t.Error("different probabilities should not compare equal")
	}
	d := &Set{}
	d.Add(tree.MustParse("A"), 1)
	if a.Equal(d, Eps) {
		t.Error("different supports should not compare equal")
	}
}

func TestEqualDifferentSupportSameLen(t *testing.T) {
	a := &Set{}
	a.Add(tree.MustParse("A(X)"), 1)
	b := &Set{}
	b.Add(tree.MustParse("A(Y)"), 1)
	if a.Equal(b, Eps) {
		t.Error("different trees should not compare equal")
	}
}

func TestProbOf(t *testing.T) {
	s := slide9()
	if p := s.ProbOf(tree.MustParse("A(C, B)")); math.Abs(p-0.24) > Eps {
		t.Errorf("ProbOf(A(B,C)) = %v, want 0.24", p)
	}
	if p := s.ProbOf(tree.MustParse("Z")); p != 0 {
		t.Errorf("ProbOf(absent) = %v, want 0", p)
	}
}

func TestScaleUnion(t *testing.T) {
	s := slide9()
	half := s.Scale(0.5)
	if math.Abs(half.Total()-0.5) > Eps {
		t.Errorf("scaled total = %v", half.Total())
	}
	u := half.Union(half)
	if math.Abs(u.Total()-1) > Eps {
		t.Errorf("union total = %v", u.Total())
	}
	if u.Len() != 8 {
		t.Errorf("union len = %d", u.Len())
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := slide9()
	c := s.Clone()
	c.Worlds[0].Tree.Label = "ZZZ"
	if s.Worlds[0].Tree.Label == "ZZZ" {
		t.Error("clone shares trees with original")
	}
}

func TestValidate(t *testing.T) {
	s := slide9()
	if err := s.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	bad := &Set{}
	bad.Add(tree.MustParse("A"), 1.5)
	if err := bad.Validate(); err == nil {
		t.Error("probability > 1 accepted")
	}
	mixed := &Set{}
	mixed.Add(&tree.Node{Label: "A", Value: "v", Children: []*tree.Node{tree.New("B")}}, 1)
	if err := mixed.Validate(); err == nil {
		t.Error("mixed content accepted")
	}
}

func TestString(t *testing.T) {
	s := &Set{}
	s.Add(tree.MustParse("A(B:foo)"), 1)
	got := s.String()
	if !strings.Contains(got, "P=1") || !strings.Contains(got, "A(B:foo)") {
		t.Errorf("String = %q", got)
	}
}

func TestEmptySet(t *testing.T) {
	s := &Set{}
	if s.Len() != 0 || s.Total() != 0 {
		t.Error("empty set should have zero length and total")
	}
	if s.Normalize().Len() != 0 {
		t.Error("normalizing empty set should stay empty")
	}
	if s.IsDistribution(Eps) {
		t.Error("empty set is not a distribution")
	}
}
