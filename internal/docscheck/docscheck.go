// Package docscheck keeps the documentation honest: it cross-checks
// README.md and docs/*.md against the code they describe. Run as part
// of `go test ./...` (and as the CI "docs references" step), it fails
// when
//
//   - README links a docs/*.md file that does not exist,
//   - a docs/*.md file is not linked from README (orphaned docs rot),
//   - a fenced sh/go code block in README or docs invokes a px*
//     binary with no directory under cmd/, or
//   - such a block exercises a server URL whose path matches no route
//     registered in internal/server.
//
// The checks are deliberately textual — no doc generation, no special
// markers in the prose — so writing documentation stays cheap and
// drifting documentation stays expensive.
package docscheck

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var (
	docLinkRE = regexp.MustCompile(`docs/[A-Za-z0-9._-]+\.md`)
	// fenceRE matches a code-fence line (indentation allowed, so
	// fences inside markdown lists are still scanned) and captures its
	// info string.
	fenceRE = regexp.MustCompile("^[ \t]*```([A-Za-z0-9]*)")
	// binaryRE matches px* tool invocations; the leading context group
	// rejects file suffixes (.pxml) and XML tags (<pxml>).
	binaryRE = regexp.MustCompile(`(^|[^.<A-Za-z0-9_])(px[a-z]+)\b`)
	// urlRE matches example-server URLs and captures the path.
	urlRE = regexp.MustCompile(`localhost(?::[0-9]+)?(/[A-Za-z0-9_{}./-]*)`)
	// routeRE extracts the route patterns the server declares. The
	// patterns live in server.go's exported Route* constant block
	// ("GET /docs", "POST /docs/{name}/query", ...); the registrations
	// themselves use the constants, so this scans for any
	// method-plus-path string literal.
	routeRE = regexp.MustCompile(`"(GET|PUT|POST|DELETE) (/[^"]*)"`)
	// muxRouteRE extracts the plain-path registrations of pxserve's
	// auxiliary pprof mux, so docs may reference /debug/pprof URLs.
	muxRouteRE = regexp.MustCompile(`mux\.HandleFunc\("(/[^"]+)"`)
)

// Check cross-checks the documentation of the repository rooted at
// root and returns one message per problem found (empty means clean).
func Check(root string) ([]string, error) {
	var problems []string

	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		return nil, err
	}

	// README → docs: every linked file exists.
	linked := make(map[string]bool)
	for _, ref := range docLinkRE.FindAllString(string(readme), -1) {
		if linked[ref] {
			continue
		}
		linked[ref] = true
		if _, err := os.Stat(filepath.Join(root, ref)); err != nil {
			problems = append(problems, fmt.Sprintf("README.md references missing %s", ref))
		}
	}

	// docs → README: every docs file is linked.
	docFiles, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	sort.Strings(docFiles)
	for _, f := range docFiles {
		rel := "docs/" + filepath.Base(f)
		if !linked[rel] {
			problems = append(problems, fmt.Sprintf("%s is not linked from README.md", rel))
		}
	}

	binaries, err := cmdBinaries(root)
	if err != nil {
		return nil, err
	}
	routes, err := serverRoutes(root)
	if err != nil {
		return nil, err
	}

	// Fenced sh/go blocks: binaries and routes must exist.
	files := append([]string{filepath.Join(root, "README.md")}, docFiles...)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		rel, _ := filepath.Rel(root, f)
		problems = append(problems, checkBlocks(rel, string(data), binaries, routes)...)
	}
	return problems, nil
}

// cmdBinaries returns the set of tool names under cmd/.
func cmdBinaries(root string) (map[string]bool, error) {
	entries, err := os.ReadDir(filepath.Join(root, "cmd"))
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			out[e.Name()] = true
		}
	}
	return out, nil
}

// serverRoutes returns the path patterns registered in
// internal/server/server.go ("/docs/{name}/query", ...) plus the
// pprof paths pxserve registers on its auxiliary mux. A pattern ending
// in "/" is a subtree root and matches any path under it.
func serverRoutes(root string) ([]string, error) {
	data, err := os.ReadFile(filepath.Join(root, "internal", "server", "server.go"))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, m := range routeRE.FindAllStringSubmatch(string(data), -1) {
		out = append(out, m[2])
	}
	data, err = os.ReadFile(filepath.Join(root, "cmd", "pxserve", "main.go"))
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	for _, m := range muxRouteRE.FindAllStringSubmatch(string(data), -1) {
		out = append(out, m[1])
	}
	return out, nil
}

// checkBlocks scans the fenced sh/go blocks of one markdown document.
func checkBlocks(file, content string, binaries map[string]bool, routes []string) []string {
	var problems []string
	inBlock := false
	lang := ""
	for i, line := range strings.Split(content, "\n") {
		if m := fenceRE.FindStringSubmatch(line); m != nil {
			if inBlock {
				inBlock = false
			} else {
				inBlock, lang = true, m[1]
			}
			continue
		}
		if !inBlock || (lang != "sh" && lang != "bash" && lang != "go") {
			continue
		}
		for _, m := range binaryRE.FindAllStringSubmatch(line, -1) {
			if name := m[2]; name != "pxml" && !binaries[name] {
				problems = append(problems,
					fmt.Sprintf("%s:%d: references binary %q with no cmd/%s", file, i+1, name, name))
			}
		}
		for _, m := range urlRE.FindAllStringSubmatch(line, -1) {
			path := strings.TrimRight(strings.SplitN(m[1], "?", 2)[0], "/")
			if path == "" {
				continue
			}
			if !matchesRoute(path, routes) {
				problems = append(problems,
					fmt.Sprintf("%s:%d: references route %q matching no registered server route", file, i+1, path))
			}
		}
	}
	return problems
}

// matchesRoute reports whether the concrete path matches any
// registered pattern, with {wildcard} segments matching any one
// segment and a trailing-slash pattern matching its whole subtree.
func matchesRoute(path string, routes []string) bool {
	segs := strings.Split(path, "/")
	for _, pattern := range routes {
		if strings.HasSuffix(pattern, "/") &&
			(path+"/" == pattern || strings.HasPrefix(path, pattern)) {
			return true
		}
		psegs := strings.Split(pattern, "/")
		if len(psegs) != len(segs) {
			continue
		}
		ok := true
		for i := range psegs {
			if strings.HasPrefix(psegs[i], "{") && strings.HasSuffix(psegs[i], "}") {
				if segs[i] == "" {
					ok = false
					break
				}
				continue
			}
			if psegs[i] != segs[i] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
