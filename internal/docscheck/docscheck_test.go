package docscheck

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepositoryDocs runs the cross-check against this repository:
// documentation drift fails the ordinary test suite, not just CI.
func TestRepositoryDocs(t *testing.T) {
	problems, err := Check(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// write populates a file under dir, creating parents.
func write(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// scaffold builds a minimal fake repository for negative tests.
func scaffold(t *testing.T) string {
	dir := t.TempDir()
	write(t, dir, "README.md", "See [docs/GOOD.md](docs/GOOD.md).\n\n```sh\npxgood -h\ncurl localhost:8080/docs/mydoc/query\n```\n")
	write(t, dir, "docs/GOOD.md", "All fine.\n")
	write(t, dir, "cmd/pxgood/main.go", "package main\n")
	write(t, dir, "internal/server/server.go",
		"package server\nfunc f() {\n\ts.route(\"GET /docs\", nil)\n\ts.route(\"POST /docs/{name}/query\", nil)\n}\n")
	return dir
}

func TestCleanScaffold(t *testing.T) {
	problems, err := Check(scaffold(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean scaffold reported: %v", problems)
	}
}

func TestDetectsMissingLinkedDoc(t *testing.T) {
	dir := scaffold(t)
	write(t, dir, "README.md", "See [docs/GONE.md](docs/GONE.md) and [docs/GOOD.md](docs/GOOD.md).\n")
	problems, _ := Check(dir)
	if len(problems) != 1 || problems[0] != "README.md references missing docs/GONE.md" {
		t.Fatalf("problems = %v", problems)
	}
}

func TestDetectsOrphanedDoc(t *testing.T) {
	dir := scaffold(t)
	write(t, dir, "docs/ORPHAN.md", "nobody links me\n")
	problems, _ := Check(dir)
	if len(problems) != 1 || problems[0] != "docs/ORPHAN.md is not linked from README.md" {
		t.Fatalf("problems = %v", problems)
	}
}

func TestDetectsStaleBinaryAndRoute(t *testing.T) {
	dir := scaffold(t)
	write(t, dir, "docs/GOOD.md",
		"```sh\npxgone -h\ndoc.pxml stays fine\ncurl -X POST localhost:8080/docs/mydoc/nosuch\n```\n\n```\npxignored in a plain block\n```\n")
	problems, _ := Check(dir)
	if len(problems) != 2 {
		t.Fatalf("problems = %v", problems)
	}
	if problems[0] != `docs/GOOD.md:2: references binary "pxgone" with no cmd/pxgone` {
		t.Errorf("binary problem = %q", problems[0])
	}
	if problems[1] != `docs/GOOD.md:4: references route "/docs/mydoc/nosuch" matching no registered server route` {
		t.Errorf("route problem = %q", problems[1])
	}
}

// TestPprofMuxRoutes covers the auxiliary-mux scan: paths registered
// with mux.HandleFunc in cmd/pxserve (the pprof endpoints) are valid
// route references, a trailing-slash registration covers its whole
// subtree, and unregistered /debug paths still fail.
func TestPprofMuxRoutes(t *testing.T) {
	dir := scaffold(t)
	write(t, dir, "cmd/pxserve/main.go",
		"package main\nfunc f() {\n\tmux.HandleFunc(\"/debug/pprof/\", nil)\n\tmux.HandleFunc(\"/debug/pprof/profile\", nil)\n}\n")
	write(t, dir, "docs/GOOD.md",
		"```sh\ncurl localhost:6060/debug/pprof/heap\ncurl localhost:6060/debug/pprof/profile\ncurl localhost:6060/debug/nosuch\n```\n")
	problems, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || problems[0] != `docs/GOOD.md:4: references route "/debug/nosuch" matching no registered server route` {
		t.Fatalf("problems = %v", problems)
	}
}

func TestScansIndentedFences(t *testing.T) {
	dir := scaffold(t)
	write(t, dir, "docs/GOOD.md",
		"- a list item with an indented fence:\n\n  ```sh\n  pxgone -h\n  ```\n")
	problems, _ := Check(dir)
	if len(problems) != 1 || problems[0] != `docs/GOOD.md:4: references binary "pxgone" with no cmd/pxgone` {
		t.Fatalf("problems = %v", problems)
	}
}
