package warehouse

import (
	"math"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/keyword"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
)

func searchDoc() *fuzzy.Tree {
	return fuzzy.MustParseTree(
		"lib(book[w1](title:kafka, author:max), shelf(book[w2](title:kafka)))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.5})
}

func TestWarehouseSearch(t *testing.T) {
	w, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Create("lib", searchDoc()); err != nil {
		t.Fatal(err)
	}

	res, err := w.Search("lib", keyword.Request{Keywords: []string{"kafka"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 || math.Abs(res.Answers[0].P-0.8) > 1e-12 {
		t.Fatalf("answers = %+v", res.Answers)
	}

	if _, err := w.Search("nope", keyword.Request{Keywords: []string{"kafka"}}); err == nil {
		t.Error("no error searching a missing document")
	}
}

// TestSearchIndexLifecycle checks that the per-document index is built
// once, reused across searches, and invalidated (rebuilt) when the
// document is mutated.
func TestSearchIndexLifecycle(t *testing.T) {
	w, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Create("lib", searchDoc()); err != nil {
		t.Fatal(err)
	}

	req := keyword.Request{Keywords: []string{"kafka"}}
	if _, err := w.Search("lib", req); err != nil {
		t.Fatal(err)
	}
	s0 := w.SearchStats()
	if s0.Searches != 1 || s0.IndexHits != 0 {
		t.Fatalf("after first search: %+v", s0)
	}
	if _, err := w.Search("lib", req); err != nil {
		t.Fatal(err)
	}
	s1 := w.SearchStats()
	if s1.IndexHits != s0.IndexHits+1 {
		t.Fatalf("second search did not reuse the index: %+v", s1)
	}

	// A mutation installs a fresh snapshot; the next search must
	// discard the cached index and see the new content.
	tx := update.New(tpwj.MustParseQuery("lib $l"), 1, update.Insert("l", tree.MustParse("note:kafka")))
	if _, err := w.Update("lib", tx); err != nil {
		t.Fatal(err)
	}
	res, err := w.Search("lib", req)
	if err != nil {
		t.Fatal(err)
	}
	s2 := w.SearchStats()
	if s2.IndexInvalidations != s1.IndexInvalidations+1 {
		t.Fatalf("update did not invalidate the index: %+v", s2)
	}
	if len(res.Answers) != 3 {
		t.Fatalf("post-update answers = %+v, want the inserted note too", res.Answers)
	}

	// Drop releases the cached index entry.
	if err := w.Drop("lib"); err != nil {
		t.Fatal(err)
	}
	w.search.mu.Lock()
	_, still := w.search.idx["lib"]
	w.search.mu.Unlock()
	if still {
		t.Error("dropped document still holds a cached search index")
	}
}

// TestSearchConcurrent exercises concurrent searches against concurrent
// updates of the same document (run with -race).
func TestSearchConcurrent(t *testing.T) {
	w, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Create("lib", searchDoc()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := w.Search("lib", keyword.Request{Keywords: []string{"kafka"}}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			tx := update.New(tpwj.MustParseQuery("lib $l"), 0.5, update.Insert("l", tree.MustParse("note:extra")))
			if _, err := w.Update("lib", tx); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
