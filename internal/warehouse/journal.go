package warehouse

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// Record is one entry of the write-ahead journal. Mutations are logged
// with the full post-state content before the document file is replaced,
// then marked committed; recovery rolls the last mutation forward if the
// commit marker is missing.
type Record struct {
	Seq int64  `json:"seq"`
	Op  string `json:"op"`            // "create", "update", "drop", "commit"
	Doc string `json:"doc,omitempty"` // document name (mutations only)
	// Tx is the XUpdate serialization of the applied transaction
	// (op "update" only), kept for auditability.
	Tx string `json:"tx,omitempty"`
	// Content is the full post-state document serialization
	// (ops "create" and "update").
	Content string `json:"content,omitempty"`
}

// journal is an append-only JSON-lines file.
type journal struct {
	f   *os.File
	seq int64
}

func openJournal(path string) (*journal, []Record, error) {
	records, err := readJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("warehouse: open journal: %w", err)
	}
	var seq int64
	if len(records) > 0 {
		seq = records[len(records)-1].Seq
	}
	return &journal{f: f, seq: seq}, records, nil
}

// readJournal loads all well-formed records; a trailing partial line
// (torn write) is ignored, matching the recovery semantics.
func readJournal(path string) ([]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("warehouse: read journal: %w", err)
	}
	defer f.Close()
	var records []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			// Torn tail from a crash mid-append: ignore it and stop.
			break
		}
		records = append(records, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("warehouse: scan journal: %w", err)
	}
	return records, nil
}

// append durably writes a record and returns its sequence number.
func (j *journal) append(r Record) (int64, error) {
	j.seq++
	r.Seq = j.seq
	data, err := json.Marshal(r)
	if err != nil {
		return 0, fmt.Errorf("warehouse: marshal journal record: %w", err)
	}
	data = append(data, '\n')
	if _, err := j.f.Write(data); err != nil {
		return 0, fmt.Errorf("warehouse: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return 0, fmt.Errorf("warehouse: sync journal: %w", err)
	}
	return j.seq, nil
}

func (j *journal) close() error {
	return j.f.Close()
}
