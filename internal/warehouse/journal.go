package warehouse

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/store"
)

// Op enumerates the journal record kinds: three document mutations and
// the two markers that resolve them.
type Op string

const (
	// OpCreate stores a new document; Content is the full post-state.
	OpCreate Op = "create"
	// OpUpdate replaces a document; Content is the full post-state and
	// Tx the XUpdate serialization of the applied transaction.
	OpUpdate Op = "update"
	// OpDrop removes a document.
	OpDrop Op = "drop"
	// OpViewRegister registers a materialized view on a document; View
	// names it and Query/Syntax carry its definition.
	OpViewRegister Op = "view-register"
	// OpViewDrop removes a materialized view.
	OpViewDrop Op = "view-drop"
	// OpCommit marks the mutation its RefSeq names as taken effect.
	OpCommit Op = "commit"
	// OpAbort marks the mutation its RefSeq names as without effect.
	OpAbort Op = "abort"
)

// Mutation reports whether op is a document mutation (as opposed to a
// view operation or a commit/abort marker). Only mutations carry
// document content, so only they make the journal the durable copy of
// a document (see Warehouse.journaled).
func (op Op) Mutation() bool { return op == OpCreate || op == OpUpdate || op == OpDrop }

// ViewOp reports whether op changes the view registry. View operations
// follow the same two-record Seq/RefSeq protocol as mutations but
// carry no document content.
func (op Op) ViewOp() bool { return op == OpViewRegister || op == OpViewDrop }

// Marker reports whether op resolves a prior mutation record.
func (op Op) Marker() bool { return op == OpCommit || op == OpAbort }

// Record is one entry of the write-ahead journal. Every mutation is a
// two-record protocol: first a mutation record (create/update/drop)
// carrying its own Seq and the full post-state content, made durable
// before the document file is touched; then a commit marker whose
// RefSeq echoes that Seq ("abort" marks a mutation whose apply
// failed). Markers of concurrent mutations on different documents may
// interleave freely with other records — recovery pairs records by
// Seq/RefSeq, not by adjacency — and a mutation whose marker never
// made it to disk is rolled back on recovery.
type Record struct {
	Seq int64 `json:"seq"`
	Op  Op    `json:"op"`
	// RefSeq, on commit/abort markers, names the Seq of the mutation
	// record the marker resolves. Zero on mutation records (and on
	// markers written by the pre-RefSeq journal format, which recovery
	// resolves to the nearest preceding mutation).
	RefSeq int64  `json:"ref,omitempty"`
	Doc    string `json:"doc,omitempty"` // document name (mutations only)
	// Tx is the XUpdate serialization of the applied transaction
	// (op "update" only), kept for auditability.
	Tx string `json:"tx,omitempty"`
	// Content is the full post-state document serialization
	// (ops "create" and "update").
	Content string `json:"content,omitempty"`
	// View names the materialized view a view-register/view-drop record
	// concerns; Query and Syntax carry the registered definition
	// (op "view-register" only). The answer set itself is derived state
	// and is never journaled — recovery re-materializes it.
	View   string `json:"view,omitempty"`
	Query  string `json:"query,omitempty"`
	Syntax string `json:"syntax,omitempty"`
}

// maxRecordBytes bounds one journal record, enforced at append time so
// an oversized mutation fails cleanly instead of writing a payload the
// backend scan would reject as corrupt — which would truncate every
// record after it on the next open. The authoritative constant lives
// with the storage contract.
const maxRecordBytes = store.MaxRecordBytes

// validRecord reports whether a journal payload parses as a Record
// within the size cap. The storage backends call it while scanning to
// tell a torn tail from a clean record boundary.
func validRecord(payload []byte) bool {
	var r Record
	return len(payload) < maxRecordBytes && json.Unmarshal(payload, &r) == nil
}

// parseRecords decodes the payloads a backend scan returned. The
// backend only keeps payloads validRecord accepted, so a failure here
// means the backend broke its contract.
func parseRecords(payloads [][]byte) ([]Record, error) {
	if len(payloads) == 0 {
		return nil, nil
	}
	records := make([]Record, len(payloads))
	for i, p := range payloads {
		if err := json.Unmarshal(p, &records[i]); err != nil {
			return nil, fmt.Errorf("warehouse: journal record %d corrupt: %w", i, err)
		}
	}
	return records, nil
}

// journalCounters accumulates journal activity across the journal
// instances a warehouse goes through (Compact replaces the instance
// but keeps the counters, so /stats stays monotonic). The handles live
// on the warehouse's obs registry (see Open), so /metrics reads the
// same values.
type journalCounters struct {
	appends *obs.Counter // records durably appended
	batches *obs.Counter // fsync calls (group commit: batches ≤ appends)
	bytes   *obs.Counter // payload bytes durably appended (backend framing excluded)
}

// journal is the warehouse's group-commit layer over a backend's
// store.Log appender. Appends from concurrent per-document mutations
// interleave freely; each append returns only once its record is
// durable, but the fsyncs of concurrent appends are group-committed:
// whichever appender reaches the disk first syncs the whole buffered
// batch, and the others observe their record already covered and
// return without their own fsync.
//
// A failed append, flush or fsync is fatal to the instance: the first
// such error is latched in failed, every later append returns it
// without touching the backend again (a failed fsync may have dropped
// the dirty pages — retrying it could "succeed" without the data being
// durable), and the degrade callback tells the warehouse to go
// read-only.
type journal struct {
	// mu guards the appender, the sequence counter, and the count of
	// buffered records. It is held only for the in-memory
	// marshal-and-buffer step, never across an fsync.
	mu      sync.Mutex
	log     store.Log
	seq     int64
	written int64 // records buffered so far

	// syncMu serializes fsyncs. synced (guarded by syncMu) is the
	// count of records durably on disk; an appender whose record index
	// is ≤ synced was covered by another appender's batch.
	syncMu sync.Mutex
	synced int64

	// failMu is a leaf lock guarding failed, the latched first
	// write-path error. It has its own mutex because append reaches it
	// under mu and syncTo under syncMu.
	failMu sync.Mutex
	failed error

	counters *journalCounters
	// degrade is the warehouse's notification hook for write-path
	// failures. It only flips flags — it must not call back into the
	// journal (it runs with journal locks held).
	degrade func(op string, err error)
}

// newJournal wraps a backend's open appender. lastSeq is the highest
// sequence number among the records the backend's scan returned (zero
// for a fresh or just-compacted journal); appends continue above it.
func newJournal(log store.Log, lastSeq int64, counters *journalCounters, degrade func(op string, err error)) *journal {
	return &journal{log: log, seq: lastSeq, counters: counters, degrade: degrade}
}

// maxSeq returns the highest sequence number among records.
func maxSeq(records []Record) int64 {
	var seq int64
	for _, r := range records {
		if r.Seq > seq {
			seq = r.Seq
		}
	}
	return seq
}

// fail latches err as the journal's terminal state and notifies the
// warehouse; the first error wins. failMu is a leaf lock, so fail may
// be called with mu or syncMu held.
func (j *journal) fail(op string, err error) {
	j.failMu.Lock()
	first := j.failed == nil
	if first {
		j.failed = err
	}
	j.failMu.Unlock()
	if first && j.degrade != nil {
		j.degrade(op, err)
	}
}

// failure returns the latched write-path error, if any.
func (j *journal) failure() error {
	j.failMu.Lock()
	defer j.failMu.Unlock()
	return j.failed
}

// append durably writes a record and returns its sequence number. The
// record is buffered under the journal mutex and then made durable by
// syncTo, so concurrent appends batch their fsyncs. Marshal and
// oversize errors reject the record without touching the file — they
// are the caller's problem, not a durability failure.
func (j *journal) append(r Record) (int64, error) {
	return j.appendCost(nil, r)
}

// appendCost is append charging the appended byte count to cost (the
// mutation's request cost, nil on recovery paths) alongside the global
// journal byte counter.
func (j *journal) appendCost(cost *obs.Cost, r Record) (int64, error) {
	if err := j.failure(); err != nil {
		return 0, fmt.Errorf("warehouse: journal failed: %w", err)
	}
	j.mu.Lock()
	seq := j.seq + 1
	r.Seq = seq
	data, err := json.Marshal(r)
	if err != nil {
		j.mu.Unlock()
		return 0, fmt.Errorf("warehouse: marshal journal record: %w", err)
	}
	if len(data) >= maxRecordBytes {
		j.mu.Unlock()
		return 0, fmt.Errorf("warehouse: journal record of %d bytes exceeds the %d limit", len(data), maxRecordBytes)
	}
	if err := j.log.Append(data); err != nil {
		// The appender may now hold a partial record it would glue onto
		// any later append; no further writes may touch the backend.
		j.fail("journal.append", err)
		j.mu.Unlock()
		return 0, fmt.Errorf("warehouse: append journal: %w", err)
	}
	j.seq = seq
	j.written++
	idx := j.written
	j.mu.Unlock()
	if err := j.syncTo(idx); err != nil {
		return 0, err
	}
	j.counters.appends.Add(1)
	obs.Charge(cost, obs.CostJournalBytes, j.counters.bytes, int64(len(data)))
	return seq, nil
}

// syncTo blocks until the idx-th buffered record is durable. The first
// appender through syncMu flushes and fsyncs everything buffered so
// far — one batch — and appenders queued behind it find their record
// already covered. After a flush or fsync failure the journal is dead:
// the kernel may have discarded the dirty pages, so retrying the fsync
// could report success for data that never reached the disk. The
// latched error is returned to every later caller instead.
func (j *journal) syncTo(idx int64) error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	if err := j.failure(); err != nil {
		return fmt.Errorf("warehouse: journal failed: %w", err)
	}
	if j.synced >= idx {
		return nil
	}
	j.mu.Lock()
	target := j.written
	err := j.log.Flush()
	j.mu.Unlock()
	if err != nil {
		j.fail("journal.flush", err)
		return fmt.Errorf("warehouse: flush journal: %w", err)
	}
	if err := j.log.Sync(); err != nil {
		j.fail("journal.sync", err)
		return fmt.Errorf("warehouse: sync journal: %w", err)
	}
	j.synced = target
	j.counters.batches.Add(1)
	return nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Close()
}
