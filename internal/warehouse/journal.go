package warehouse

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Record is one entry of the write-ahead journal. Mutations are logged
// with the full post-state content before the document file is replaced,
// then marked committed ("abort" marks a mutation whose apply failed);
// recovery rolls the last mutation forward if neither marker follows it.
type Record struct {
	Seq int64  `json:"seq"`
	Op  string `json:"op"`            // "create", "update", "drop", "commit", "abort"
	Doc string `json:"doc,omitempty"` // document name (mutations only)
	// Tx is the XUpdate serialization of the applied transaction
	// (op "update" only), kept for auditability.
	Tx string `json:"tx,omitempty"`
	// Content is the full post-state document serialization
	// (ops "create" and "update").
	Content string `json:"content,omitempty"`
}

// maxRecordBytes bounds one journal record, enforced at append time so
// an oversized mutation fails cleanly instead of writing a line the
// scanner in readJournal could never re-read — which would make the
// warehouse permanently unopenable. The cap leaves generous headroom
// over the server's 64MB body limit after JSON string escaping.
const maxRecordBytes = 512 << 20

// journal is an append-only JSON-lines file. Appends from concurrent
// per-document mutations are serialized by its own mutex.
type journal struct {
	mu  sync.Mutex
	f   *os.File
	seq int64
}

func openJournal(path string) (*journal, []Record, error) {
	records, err := readJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("warehouse: open journal: %w", err)
	}
	var seq int64
	if len(records) > 0 {
		seq = records[len(records)-1].Seq
	}
	return &journal{f: f, seq: seq}, records, nil
}

// readJournal loads all well-formed records; a trailing partial line
// (torn write) is ignored, matching the recovery semantics.
func readJournal(path string) ([]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("warehouse: read journal: %w", err)
	}
	defer f.Close()
	var records []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), maxRecordBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			// Torn tail from a crash mid-append: ignore it and stop.
			break
		}
		records = append(records, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("warehouse: scan journal: %w", err)
	}
	return records, nil
}

// append durably writes a record and returns its sequence number.
func (j *journal) append(r Record) (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	r.Seq = j.seq
	data, err := json.Marshal(r)
	if err != nil {
		return 0, fmt.Errorf("warehouse: marshal journal record: %w", err)
	}
	if len(data) >= maxRecordBytes {
		return 0, fmt.Errorf("warehouse: journal record of %d bytes exceeds the %d limit", len(data), maxRecordBytes)
	}
	data = append(data, '\n')
	if _, err := j.f.Write(data); err != nil {
		return 0, fmt.Errorf("warehouse: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return 0, fmt.Errorf("warehouse: sync journal: %w", err)
	}
	return j.seq, nil
}

func (j *journal) close() error {
	return j.f.Close()
}
