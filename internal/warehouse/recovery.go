package warehouse

import (
	"errors"
	"fmt"
	"io/fs"

	"repro/internal/vfs"
	"repro/internal/view"
)

// JournalStats reports journal activity counters: durable appends,
// group-commit fsync batches (batches ≤ appends; the gap is fsyncs
// saved by batching), and the outcomes of the last recovery scan.
// Served by pxserve under /stats as "journal".
type JournalStats struct {
	// Appends counts records durably appended, cumulative across
	// Compact calls.
	Appends int64 `json:"appends"`
	// SyncBatches counts fsync calls; concurrent appends share
	// batches, so appends/sync_batches is the group-commit factor.
	SyncBatches int64 `json:"sync_batches"`
	// RecoveryReplays counts documents whose on-disk file recovery
	// rewrote (or removed) to match the journal's last committed
	// mutation at Open.
	RecoveryReplays int64 `json:"recovery_replays"`
	// RecoveryRollbacks counts in-flight (unmarked) mutations recovery
	// resolved with an abort marker.
	RecoveryRollbacks int64 `json:"recovery_rollbacks"`
	// RecoveryRollforwards counts in-flight mutations recovery
	// resolved with a commit marker because the on-disk evidence shows
	// the apply completed and the pre-state predates the journal.
	RecoveryRollforwards int64 `json:"recovery_rollforwards"`
}

// JournalStats returns the warehouse's journal counters.
func (w *Warehouse) JournalStats() JournalStats {
	return JournalStats{
		Appends:              w.jc.appends.Value(),
		SyncBatches:          w.jc.batches.Value(),
		RecoveryReplays:      w.recoveryReplays.Value(),
		RecoveryRollbacks:    w.recoveryRollbacks.Value(),
		RecoveryRollforwards: w.recoveryRollforwards.Value(),
	}
}

// recover applies scan-based journal recovery at Open. The whole
// journal is scanned, pairing every mutation record with its marker by
// Seq/RefSeq; then, per document:
//
//   - The last committed mutation's state is re-applied to the
//     document file (idempotently: the file is rewritten only if it
//     differs). This both repairs a crash between a commit marker's
//     buffering and its fsync and undoes the file effect of any
//     in-flight mutation that swapped the file before crashing.
//
//   - Every unmarked (in-flight) mutation is rolled back with an abort
//     marker: its caller was never acknowledged, so it never happened.
//     The one exception is a document whose only journal trace is the
//     in-flight mutation itself (its committed state predates the
//     journal, truncated away by Compact): there the pre-state content
//     is unrecoverable, so recovery decides by on-disk evidence — if
//     the file already holds the journaled post-state the apply
//     completed and the mutation is rolled forward with a commit
//     marker; otherwise the untouched file is the pre-state and the
//     mutation is rolled back. Either outcome is legal for an
//     unacknowledged call.
//
// Recovery is idempotent: markers are appended only after the file
// work, so a crash during recovery re-derives the same plan.
func (w *Warehouse) recover(records []Record) error {
	if len(records) == 0 {
		return nil
	}

	// Pass 1: resolve markers. Legacy markers (pre-RefSeq format)
	// carry no RefSeq and mark the nearest preceding mutation.
	marked := make(map[int64]Op)
	var lastMut int64
	for i := range records {
		r := &records[i]
		switch {
		case r.Op.Mutation():
			lastMut = r.Seq
		case r.Op.ViewOp():
			// View records follow the two-record protocol with explicit
			// RefSeq markers; they never participate in the legacy
			// adjacency resolution below.
		case r.Op.Marker():
			ref := r.RefSeq
			if ref == 0 {
				ref = lastMut
			}
			if ref != 0 {
				if _, dup := marked[ref]; !dup {
					marked[ref] = r.Op
				}
			}
		default:
			return fmt.Errorf("warehouse: unknown journal op %q", r.Op)
		}
	}

	// Pass 2: fold per-document state — the highest-Seq committed
	// mutation and the in-flight (unmarked) ones.
	type docState struct {
		committed *Record
		pending   []*Record
	}
	states := make(map[string]*docState)
	var order []string
	for i := range records {
		r := &records[i]
		if !r.Op.Mutation() {
			continue
		}
		ds := states[r.Doc]
		if ds == nil {
			ds = &docState{}
			states[r.Doc] = ds
			order = append(order, r.Doc)
		}
		switch marked[r.Seq] {
		case OpCommit:
			if ds.committed == nil || r.Seq >= ds.committed.Seq {
				ds.committed = r
			}
		case OpAbort:
			// Took no effect; nothing to restore.
		default:
			ds.pending = append(ds.pending, r)
		}
	}

	// Pass 3: act.
	for _, name := range order {
		ds := states[name]
		if ds.committed != nil {
			// The journal holds this document's committed content, so
			// its next file swaps may defer their fsync to it.
			w.markJournaled(name)
			changed, err := w.replayCommitted(ds.committed)
			if err != nil {
				return err
			}
			if changed {
				w.recoveryReplays.Inc()
			}
			for _, p := range ds.pending {
				if _, err := w.journal.append(Record{Op: OpAbort, RefSeq: p.Seq}); err != nil {
					return err
				}
				w.recoveryRollbacks.Inc()
			}
			continue
		}
		// No committed record for this document: its committed state
		// predates the journal. At most the last in-flight mutation
		// can have touched the file; earlier ones (impossible in a
		// well-formed journal, tolerated defensively) are aborted
		// without file work.
		for i, p := range ds.pending {
			if i < len(ds.pending)-1 {
				if _, err := w.journal.append(Record{Op: OpAbort, RefSeq: p.Seq}); err != nil {
					return err
				}
				w.recoveryRollbacks.Inc()
				continue
			}
			resolve := OpAbort
			switch p.Op {
			case OpCreate:
				// The pre-state is "absent" (Create verifies that
				// under the writers lock), so rollback is always
				// possible: remove whatever the in-flight create may
				// have installed.
				if err := w.st.RemoveDoc(p.Doc); err != nil && !errors.Is(err, fs.ErrNotExist) {
					return fmt.Errorf("warehouse: recovery rollback of create %q: %w", p.Doc, err)
				}
				w.recoveryRollbacks.Inc()
			case OpUpdate:
				cur, err := w.st.ReadDoc(p.Doc)
				if err != nil && !errors.Is(err, fs.ErrNotExist) {
					return fmt.Errorf("warehouse: recovery of %q: %w", p.Doc, err)
				}
				if err == nil && string(cur) == p.Content {
					resolve = OpCommit
					w.recoveryRollforwards.Inc()
				} else {
					w.recoveryRollbacks.Inc()
				}
			case OpDrop:
				if exists, err := w.st.DocExists(p.Doc); err != nil {
					return fmt.Errorf("warehouse: recovery of %q: %w", p.Doc, err)
				} else if !exists {
					resolve = OpCommit
					w.recoveryRollforwards.Inc()
				} else {
					w.recoveryRollbacks.Inc()
				}
			}
			if _, err := w.journal.append(Record{Op: resolve, RefSeq: p.Seq}); err != nil {
				return err
			}
			if resolve == OpCommit {
				// Rolled forward: the journal now pairs this record
				// with a commit, making it the document's authority.
				w.markJournaled(p.Doc)
			}
		}
	}

	// Pass 4: replay the committed view operations over the registry
	// (seeded from views.json by Open) in journal order — a committed
	// document drop takes the document's views with it — and roll back
	// in-flight view operations, whose callers were never acknowledged.
	for i := range records {
		r := &records[i]
		switch {
		case r.Op == OpViewRegister && marked[r.Seq] == OpCommit:
			w.views.set(r.Doc, &viewHandle{def: view.Definition{
				Name: r.View, Query: r.Query, Syntax: r.Syntax,
			}})
		case r.Op == OpViewDrop && marked[r.Seq] == OpCommit:
			w.views.del(r.Doc, r.View)
		case r.Op == OpDrop && marked[r.Seq] == OpCommit:
			w.views.delDoc(r.Doc)
		case r.Op.ViewOp() && !marked[r.Seq].Marker():
			if _, err := w.journal.append(Record{Op: OpAbort, RefSeq: r.Seq}); err != nil {
				return err
			}
			w.recoveryRollbacks.Inc()
		}
	}
	return nil
}

// replayCommitted re-applies one committed mutation's state to the
// stored document, reporting whether it actually changed. Writes are
// skipped when the stored content already matches, so reopening a
// quiescent warehouse does no write work.
func (w *Warehouse) replayCommitted(rec *Record) (changed bool, err error) {
	switch rec.Op {
	case OpCreate, OpUpdate:
		cur, err := w.st.ReadDoc(rec.Doc)
		if err == nil && string(cur) == rec.Content {
			return false, nil
		}
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return false, fmt.Errorf("warehouse: recovery of %q: %w", rec.Doc, err)
		}
		// No fsync: the journal keeps the committed record, so a crash
		// that tears this write is repaired by the next recovery.
		if err := w.writeDoc(rec.Doc, []byte(rec.Content), false); err != nil {
			return false, fmt.Errorf("warehouse: recovery of %q: %w", rec.Doc, err)
		}
		return true, nil
	case OpDrop:
		err := w.st.RemoveDoc(rec.Doc)
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil
		}
		if err != nil {
			return false, fmt.Errorf("warehouse: recovery drop of %q: %w", rec.Doc, err)
		}
		return true, nil
	}
	return false, fmt.Errorf("warehouse: unknown journal op %q", rec.Op)
}

// PendingMutation identifies a journaled mutation or view operation
// with no commit/abort marker — in-flight at crash time. Opening the
// warehouse resolves it.
type PendingMutation struct {
	Seq int64  `json:"seq"`
	Op  Op     `json:"op"`
	Doc string `json:"doc"`
	// View names the view concerned (view operations only).
	View string `json:"view,omitempty"`
}

// JournalSummary describes a journal file as found on disk, without
// recovering it. Produced by InspectJournal (the pxwarehouse
// verify-journal subcommand).
type JournalSummary struct {
	Records   int   `json:"records"`
	Mutations int   `json:"mutations"`
	ViewOps   int   `json:"view_ops"`
	Committed int   `json:"committed"`
	Aborted   int   `json:"aborted"`
	LastSeq   int64 `json:"last_seq"`
	// TornTail reports a trailing fragment from a crash mid-append
	// (dropped, then truncated away, by the next open).
	TornTail bool `json:"torn_tail"`
	// Pending lists mutations with no marker, oldest first.
	Pending []PendingMutation `json:"pending,omitempty"`
	// Problems lists structural violations no crash can produce —
	// non-increasing sequence numbers, markers naming no prior
	// mutation, duplicate markers, unknown ops. A journal with
	// problems was corrupted or hand-edited.
	Problems []string `json:"problems,omitempty"`
}

// InspectJournal reads the journal of the warehouse directory dir and
// summarizes it without applying recovery or taking any lock. It is
// safe on a warehouse that was not cleanly closed — that is its point:
// it shows what recovery will find before anything opens the
// warehouse. The directory's backend is auto-detected; use
// InspectJournalBackend to name it explicitly.
func InspectJournal(dir string) (JournalSummary, error) {
	return InspectJournalBackend(dir, BackendAuto)
}

// InspectJournalBackend is InspectJournal with an explicit storage
// backend name (BackendFile, BackendKV, BackendAuto).
func InspectJournalBackend(dir, backend string) (JournalSummary, error) {
	st, err := newBackendStore(dir, backend, vfs.OS)
	if err != nil {
		return JournalSummary{}, err
	}
	payloads, torn, err := st.ScanJournal(validRecord)
	if err != nil {
		return JournalSummary{}, err
	}
	records, err := parseRecords(payloads)
	if err != nil {
		return JournalSummary{}, err
	}
	sum := JournalSummary{Records: len(records), TornTail: torn}
	marked := make(map[int64]Op)
	mutations := make(map[int64]*Record)
	var mutationOrder []int64
	var lastSeq, lastMut int64
	for i := range records {
		r := &records[i]
		if r.Seq <= lastSeq {
			sum.Problems = append(sum.Problems,
				fmt.Sprintf("record %d: seq %d not greater than previous %d", i, r.Seq, lastSeq))
		}
		lastSeq = r.Seq
		switch {
		case r.Op.Mutation():
			sum.Mutations++
			mutations[r.Seq] = r
			mutationOrder = append(mutationOrder, r.Seq)
			lastMut = r.Seq
		case r.Op.ViewOp():
			sum.ViewOps++
			mutations[r.Seq] = r
			mutationOrder = append(mutationOrder, r.Seq)
		case r.Op.Marker():
			ref := r.RefSeq
			if ref == 0 {
				ref = lastMut // legacy pre-RefSeq marker
			}
			if _, ok := mutations[ref]; !ok {
				sum.Problems = append(sum.Problems,
					fmt.Sprintf("record %d: %s marker ref %d matches no prior mutation", i, r.Op, r.RefSeq))
				continue
			}
			if prev, dup := marked[ref]; dup {
				sum.Problems = append(sum.Problems,
					fmt.Sprintf("record %d: duplicate marker for seq %d (already %s)", i, ref, prev))
				continue
			}
			marked[ref] = r.Op
		default:
			sum.Problems = append(sum.Problems,
				fmt.Sprintf("record %d: unknown op %q", i, r.Op))
		}
	}
	sum.LastSeq = lastSeq
	for _, seq := range mutationOrder {
		switch marked[seq] {
		case OpCommit:
			sum.Committed++
		case OpAbort:
			sum.Aborted++
		default:
			m := mutations[seq]
			sum.Pending = append(sum.Pending, PendingMutation{Seq: m.Seq, Op: m.Op, Doc: m.Doc, View: m.View})
		}
	}
	return sum, nil
}
