package warehouse

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
)

// BenchmarkWarehouseParallelUpdates measures mutation throughput when
// goroutines update distinct documents. The transaction matches nothing
// (the document never grows, so every iteration costs the same) but
// still runs the full durable path: journal append, file swap, commit
// marker. With per-mutation Seq/RefSeq pairing the durable phases of
// different documents interleave freely and fsyncs group-commit, so
// throughput should scale with goroutines instead of serializing.
func BenchmarkWarehouseParallelUpdates(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", workers), func(b *testing.B) {
			w, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			names := make([]string, workers)
			for i := range names {
				names[i] = fmt.Sprintf("doc%d", i)
				if err := w.Create(names[i], stressDoc()); err != nil {
					b.Fatal(err)
				}
			}
			tx := update.New(tpwj.MustParseQuery("Z $a"), 0.5,
				update.Insert("a", tree.MustParse("N")))
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(name string, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := w.Update(name, tx); err != nil {
							b.Error(err)
							return
						}
					}
				}(names[g], b.N/workers+1)
			}
			wg.Wait()
		})
	}
}
