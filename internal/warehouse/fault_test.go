package warehouse

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
	"repro/internal/vfs"
)

// faultModel is the oracle of the fault sweep: the state acknowledged
// to the workload. Only operations that returned nil update it, so
// after a fault plus recovery the warehouse must match it exactly — a
// failed mutation may not leave any visible trace, and a successful
// one may not lose its effect. It is the operation-level counterpart
// of expectState (recovery_test.go), which predicts the same state
// from the journal bytes.
type faultModel struct {
	docs  map[string]string   // name -> serialized content; absent = must not exist
	views map[string][]string // doc -> registered view names
}

func newFaultModel() *faultModel {
	return &faultModel{docs: make(map[string]string), views: make(map[string][]string)}
}

// capture records a document's acknowledged post-state. Reads come
// from the in-memory snapshot, so they work even if the warehouse
// degraded right after acknowledging the mutation.
func (m *faultModel) capture(w *Warehouse, name string) {
	if data, err := w.GetXML(name); err == nil {
		m.docs[name] = string(data)
	}
}

func (m *faultModel) dropView(doc, name string) {
	kept := m.views[doc][:0]
	for _, v := range m.views[doc] {
		if v != name {
			kept = append(kept, v)
		}
	}
	m.views[doc] = kept
}

// faultWorkloadDocs are the documents the sweep workload touches.
var faultWorkloadDocs = []string{"alpha", "beta", "gamma"}

// runFaultWorkload drives a fixed single-threaded mix of creates,
// updates, view operations, reads, a drop and a compaction. Individual
// operations are allowed to fail — a fault is armed — but every
// success is folded into the model. The sequence is deterministic, so
// a fail-once fault always trips at the same call across runs.
func runFaultWorkload(t *testing.T, w *Warehouse, m *faultModel) {
	t.Helper()
	tx := update.New(tpwj.MustParseQuery("A(B $b)"), 1,
		update.Insert("b", tree.MustParse("N")))
	create := func(name, text string, probs map[event.ID]float64) {
		if err := w.Create(name, fuzzy.MustParseTree(text, probs)); err == nil {
			m.capture(w, name)
		}
	}
	mutate := func(name string, op func() error) {
		if err := op(); err == nil {
			m.capture(w, name)
		}
	}
	register := func(doc, view, query string) {
		if _, err := w.RegisterView(doc, view, query, ""); err == nil {
			m.views[doc] = append(m.views[doc], view)
		}
	}

	create("alpha", "A(B[w1 !w2], C(D[w2]))", map[event.ID]float64{"w1": 0.8, "w2": 0.7})
	create("beta", "A(B[w1])", map[event.ID]float64{"w1": 0.5})
	register("alpha", "v1", "A(B $b)")
	register("alpha", "v2", "A $a")
	mutate("alpha", func() error { _, err := w.Update("alpha", tx); return err })

	// Read paths keep serving whatever happens to the write paths; their
	// errors (injected or cascading from failed creates) carry no state.
	w.Get("alpha")                                   //nolint:errcheck
	w.Query("alpha", tpwj.MustParseQuery("A(B $b)")) //nolint:errcheck
	w.ReadView("alpha", "v1")                        //nolint:errcheck
	w.List()                                         //nolint:errcheck
	w.Journal()                                      //nolint:errcheck

	mutate("beta", func() error { _, err := w.Update("beta", tx); return err })
	if err := w.Drop("beta"); err == nil {
		delete(m.docs, "beta")
		delete(m.views, "beta")
	}
	if err := w.DropView("alpha", "v2"); err == nil {
		m.dropView("alpha", "v2")
	}
	w.Compact() //nolint:errcheck // fault-path outcome checked via the model
	create("gamma", "A(B[w3])", map[event.ID]float64{"w3": 0.25})
	register("gamma", "g1", "A(B $b)")
	mutate("alpha", func() error { _, err := w.Update("alpha", tx); return err })
}

// verifyFaultModel asserts the (recovered) warehouse matches the
// acknowledged state exactly, documents and views both.
func verifyFaultModel(t *testing.T, w *Warehouse, m *faultModel) {
	t.Helper()
	for _, doc := range faultWorkloadDocs {
		wantDoc(t, w, doc, m.docs[doc])
	}
	for _, doc := range faultWorkloadDocs {
		if _, ok := m.docs[doc]; !ok {
			continue
		}
		defs, err := w.ListViews(doc)
		if err != nil {
			t.Errorf("ListViews(%q): %v", doc, err)
			continue
		}
		var got []string
		for _, d := range defs {
			got = append(got, d.Name)
		}
		sort.Strings(got)
		want := append([]string(nil), m.views[doc]...)
		sort.Strings(want)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("views of %q = %v, want %v", doc, got, want)
		}
		for _, v := range m.views[doc] {
			if _, err := w.ReadView(doc, v); err != nil {
				t.Errorf("ReadView(%q, %q): %v", doc, v, err)
			}
		}
	}
}

// requiredFaultPoints lists, per backend, the critical plumbing the
// discovery pass must observe. An interface change that silently
// renames a point would otherwise shrink the sweep. The filestore
// exercises journal.truncate via Compact (ResetJournal truncates in
// place); the kv backend compacts by rewrite-and-rename, so its
// truncate point only fires on torn-tail repair and is exercised by
// the torn-tail tests instead.
var requiredFaultPoints = map[string][]string{
	BackendFile: {
		"journal.open", "journal.read", "journal.write", "journal.sync", "journal.close",
		"journal.truncate", "doc.open", "doc.write", "doc.rename", "doc.remove",
		"layout.mkdir", "views.open", "views.rename", "views.readfile",
	},
	BackendKV: {
		"layout.mkdir", "kv.open", "kv.read", "kv.readat", "kv.write",
		"kv.sync", "kv.close", "kv.rename",
	},
}

// TestFaultPointSweep discovers, per storage backend, every fault
// point the open + workload sequence exercises (so new I/O call sites
// join the sweep automatically), then for each point injects a
// fail-once fault and asserts the contract of ISSUE satellite (b):
// every operation either completes, aborts cleanly, or degrades the
// warehouse — and after the fault heals, recovery with the real
// filesystem reconstructs exactly the acknowledged state. Write points
// additionally get a torn-write variant (half the buffer lands before
// the error).
func TestFaultPointSweep(t *testing.T) {
	for _, backend := range storeBackends {
		t.Run(backend, func(t *testing.T) {
			// Discovery pass: passthrough injector, plus a sanity check that the
			// model logic itself matches a fault-free run.
			inj := vfs.NewInjector()
			dir := t.TempDir()
			w, err := OpenBackend(dir, backend, vfs.NewFaultFS(vfs.OS, inj))
			if err != nil {
				t.Fatal(err)
			}
			m := newFaultModel()
			runFaultWorkload(t, w, m)
			if deg, reason := w.Degraded(); deg {
				t.Fatalf("degraded without any fault: %s", reason)
			}
			w.Close()
			if len(m.docs) != 2 {
				t.Fatalf("fault-free workload acknowledged %d docs, want 2 (alpha, gamma)", len(m.docs))
			}
			w0 := openB(t, dir, backend)
			verifyFaultModel(t, w0, m)
			w0.Close()

			points := inj.Observed()
			seen := make(map[string]bool, len(points))
			for _, p := range points {
				seen[p] = true
			}
			for _, must := range requiredFaultPoints[backend] {
				if !seen[must] {
					t.Errorf("fault point %s not observed by the workload (catalog: %v)", must, points)
				}
			}

			for _, point := range points {
				point := point
				t.Run(point, func(t *testing.T) {
					t.Parallel()
					sweepPoint(t, backend, point, vfs.Fault{Count: 1})
				})
				if strings.HasSuffix(point, ".write") {
					t.Run(point+"/short", func(t *testing.T) {
						t.Parallel()
						sweepPoint(t, backend, point, vfs.Fault{Count: 1, Short: true})
					})
				}
			}
		})
	}
}

// sweepPoint runs the workload with a fail-once fault armed at point,
// then verifies recovery against the model and the journal against the
// structural oracle.
func sweepPoint(t *testing.T, backend, point string, f vfs.Fault) {
	dir := t.TempDir()
	inj := vfs.NewInjector()
	inj.Set(point, f)
	m := newFaultModel()
	w, err := OpenBackend(dir, backend, vfs.NewFaultFS(vfs.OS, inj))
	if err == nil {
		runFaultWorkload(t, w, m)
		if deg, reason := w.Degraded(); deg && reason == "" {
			t.Error("degraded with an empty reason")
		}
		w.Close()
	}
	if inj.Trips(point) == 0 {
		t.Fatalf("fault at %s never fired — the workload no longer reaches it", point)
	}

	// The fault healed (Count: 1); recovery on the real filesystem must
	// land exactly on the acknowledged state.
	w2, err := OpenBackend(dir, backend, vfs.OS)
	if err != nil {
		t.Fatalf("recovery open after %s fault: %v", point, err)
	}
	verifyFaultModel(t, w2, m)
	w2.Close()

	// Structural oracle: the journal recovery leaves behind parses
	// cleanly end to end, with no torn tail and no dangling markers.
	sum, err := InspectJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TornTail || len(sum.Problems) > 0 {
		t.Errorf("journal after recovery: torn=%v problems=%v", sum.TornTail, sum.Problems)
	}

	// Convergence: a second open finds nothing left to repair.
	w3, err := OpenBackend(dir, backend, vfs.OS)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if s := w3.JournalStats(); s.RecoveryRollbacks != 0 || s.RecoveryReplays != 0 || s.RecoveryRollforwards != 0 {
		t.Errorf("recovery did not converge after one open: %+v", s)
	}
	verifyFaultModel(t, w3, m)
}

// TestJournalSyncFailureDegrades pins the tentpole degrade policy at
// the warehouse layer: a failed journal fsync is terminal (the page
// cache may have dropped the dirty data, so a retry could lie) — the
// failing mutation errors, every later write is rejected with
// ErrDegraded, reads keep answering, and Reopen recovers in place.
func TestJournalSyncFailureDegrades(t *testing.T) {
	// The injection point of the journal fsync is backend-specific; the
	// degrade reason ("journal.sync") is the warehouse layer's label and
	// identical for both.
	for backend, point := range map[string]string{
		BackendFile: "journal.sync",
		BackendKV:   "kv.sync",
	} {
		t.Run(backend, func(t *testing.T) {
			testJournalSyncFailureDegrades(t, backend, point)
		})
	}
}

func testJournalSyncFailureDegrades(t *testing.T, backend, point string) {
	dir := t.TempDir()
	inj := vfs.NewInjector()
	w, err := OpenBackend(dir, backend, vfs.NewFaultFS(vfs.OS, inj))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	preFault, err := w.GetXML("doc")
	if err != nil {
		t.Fatal(err)
	}

	inj.Set(point, vfs.Fault{Count: 1})
	tx := update.New(tpwj.MustParseQuery("A $a"), 1,
		update.Insert("a", tree.MustParse("N")))
	if _, err := w.Update("doc", tx); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("Update during fsync fault = %v, want injected error", err)
	}
	if deg, reason := w.Degraded(); !deg || !strings.Contains(reason, "journal") {
		t.Fatalf("Degraded() = %v, %q, want degraded by a journal failure", deg, reason)
	}

	// Writes fail fast and typed; reads keep serving.
	if err := w.Create("other", slide12()); !errors.Is(err, ErrDegraded) {
		t.Errorf("Create while degraded = %v, want ErrDegraded", err)
	}
	if err := w.Compact(); !errors.Is(err, ErrDegraded) {
		t.Errorf("Compact while degraded = %v, want ErrDegraded", err)
	}
	if _, err := w.Get("doc"); err != nil {
		t.Errorf("Get while degraded: %v", err)
	}
	if _, err := w.Query("doc", tpwj.MustParseQuery("A $a")); err != nil {
		t.Errorf("Query while degraded: %v", err)
	}

	// The fault healed; Reopen re-runs recovery and clears the flag. The
	// failed update was never durable, so it must have rolled back.
	if err := w.Reopen(); err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if deg, _ := w.Degraded(); deg {
		t.Fatal("still degraded after Reopen")
	}
	wantDoc(t, w, "doc", string(preFault))
	if _, err := w.Update("doc", tx); err != nil {
		t.Errorf("Update after Reopen: %v", err)
	}
}

// TestViewSnapshotCloseFailureReported pins satellite (a) of the
// write-path error audit: a failing Close on the views.json snapshot
// write surfaces as a Compact error — the snapshot may be incomplete,
// and acknowledging the compaction would truncate the only durable
// copy of the registrations. The journal is untouched at that point,
// so the warehouse stays writable (no degrade) and the registration
// survives recovery.
func TestViewSnapshotCloseFailureReported(t *testing.T) {
	dir := t.TempDir()
	inj := vfs.NewInjector()
	w, err := OpenFS(dir, vfs.NewFaultFS(vfs.OS, inj))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RegisterView("doc", "v", "A $a", ""); err != nil {
		t.Fatal(err)
	}

	inj.Set("views.close", vfs.Fault{Count: 1})
	if err := w.Compact(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("Compact with failing snapshot close = %v, want the injected error", err)
	}
	if deg, reason := w.Degraded(); deg {
		t.Fatalf("snapshot failure degraded the warehouse (%s); the journal is still intact", reason)
	}

	// The fault healed: the next Compact succeeds and the registration
	// survives a fresh open from the snapshot.
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, err := w2.ReadView("doc", "v"); err != nil {
		t.Errorf("view lost after snapshot-close fault + retry: %v", err)
	}
}
