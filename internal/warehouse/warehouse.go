// Package warehouse implements the probabilistic XML warehouse of the
// paper (slides 3 and 16): named fuzzy documents stored on the file
// system, updated by probabilistic transactions and queried with TPWJ
// queries. The implementation adds the durability a production system
// needs: atomic document replacement (write-temp-then-rename), a
// write-ahead journal carrying the full post-state, and roll-forward
// recovery on open.
package warehouse

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/update"
	"repro/internal/xmlio"
	"repro/internal/xupdate"
)

const (
	docsDir     = "docs"
	docExt      = ".pxml"
	journalFile = "journal.log"
)

// Warehouse is a collection of named fuzzy documents persisted under one
// directory. All methods are safe for concurrent use.
type Warehouse struct {
	dir string

	mu      sync.RWMutex
	journal *journal
	cache   map[string]*fuzzy.Tree
	closed  bool
}

// Open opens (creating if necessary) a warehouse rooted at dir and
// performs crash recovery: if the journal's last mutation lacks its
// commit marker, the mutation is rolled forward from the journaled
// post-state.
func Open(dir string) (*Warehouse, error) {
	if err := os.MkdirAll(filepath.Join(dir, docsDir), 0o755); err != nil {
		return nil, fmt.Errorf("warehouse: create layout: %w", err)
	}
	j, records, err := openJournal(filepath.Join(dir, journalFile))
	if err != nil {
		return nil, err
	}
	w := &Warehouse{dir: dir, journal: j, cache: make(map[string]*fuzzy.Tree)}
	if err := w.recover(records); err != nil {
		j.close()
		return nil, err
	}
	return w, nil
}

// recover rolls the last journaled mutation forward when its commit
// marker is missing.
func (w *Warehouse) recover(records []Record) error {
	if len(records) == 0 {
		return nil
	}
	last := records[len(records)-1]
	if last.Op == "commit" {
		return nil
	}
	switch last.Op {
	case "create", "update":
		if err := w.writeDocFile(last.Doc, []byte(last.Content)); err != nil {
			return fmt.Errorf("warehouse: recovery of %q: %w", last.Doc, err)
		}
	case "drop":
		if err := os.Remove(w.docPath(last.Doc)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("warehouse: recovery drop of %q: %w", last.Doc, err)
		}
	default:
		return fmt.Errorf("warehouse: unknown journal op %q", last.Op)
	}
	_, err := w.journal.append(Record{Op: "commit"})
	return err
}

// Close releases the journal. The warehouse must not be used afterwards.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.journal.close()
}

// Dir returns the warehouse root directory.
func (w *Warehouse) Dir() string { return w.dir }

func (w *Warehouse) docPath(name string) string {
	return filepath.Join(w.dir, docsDir, name+docExt)
}

// validName restricts document names to a safe alphabet.
func validName(name string) error {
	if name == "" {
		return errors.New("warehouse: empty document name")
	}
	for _, r := range name {
		ok := r == '_' || r == '-' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("warehouse: invalid document name %q", name)
		}
	}
	return nil
}

// writeDocFile atomically replaces the document file.
func (w *Warehouse) writeDocFile(name string, data []byte) error {
	path := w.docPath(name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// mutate journals and applies one mutation under the write lock.
func (w *Warehouse) mutate(rec Record, apply func() error) error {
	if w.closed {
		return errors.New("warehouse: closed")
	}
	if _, err := w.journal.append(rec); err != nil {
		return err
	}
	if err := apply(); err != nil {
		return err
	}
	_, err := w.journal.append(Record{Op: "commit"})
	return err
}

// Create stores a new document under the given name.
func (w *Warehouse) Create(name string, ft *fuzzy.Tree) error {
	if err := validName(name); err != nil {
		return err
	}
	if err := ft.Validate(); err != nil {
		return err
	}
	data, err := xmlio.DocXML(ft)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := os.Stat(w.docPath(name)); err == nil {
		return fmt.Errorf("warehouse: document %q already exists", name)
	}
	return w.mutate(
		Record{Op: "create", Doc: name, Content: string(data)},
		func() error {
			if err := w.writeDocFile(name, data); err != nil {
				return err
			}
			w.cache[name] = ft.Clone()
			return nil
		})
}

// load returns the cached document, reading it from disk on first use.
// Callers must hold at least the read lock.
func (w *Warehouse) load(name string) (*fuzzy.Tree, error) {
	if ft, ok := w.cache[name]; ok {
		return ft, nil
	}
	data, err := os.ReadFile(w.docPath(name))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("warehouse: no document %q", name)
	}
	if err != nil {
		return nil, err
	}
	ft, err := xmlio.ParseDoc(data)
	if err != nil {
		return nil, fmt.Errorf("warehouse: document %q corrupt: %w", name, err)
	}
	return ft, nil
}

// loadCaching is load plus cache population; callers must hold the write
// lock.
func (w *Warehouse) loadCaching(name string) (*fuzzy.Tree, error) {
	ft, err := w.load(name)
	if err != nil {
		return nil, err
	}
	w.cache[name] = ft
	return ft, nil
}

// Get returns a deep copy of the named document.
func (w *Warehouse) Get(name string) (*fuzzy.Tree, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ft, err := w.loadCaching(name)
	if err != nil {
		return nil, err
	}
	return ft.Clone(), nil
}

// List returns the sorted names of all stored documents.
func (w *Warehouse) List() ([]string, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	entries, err := os.ReadDir(filepath.Join(w.dir, docsDir))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), docExt); ok && !e.IsDir() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Drop removes the named document.
func (w *Warehouse) Drop(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := os.Stat(w.docPath(name)); err != nil {
		return fmt.Errorf("warehouse: no document %q", name)
	}
	return w.mutate(
		Record{Op: "drop", Doc: name},
		func() error {
			delete(w.cache, name)
			return os.Remove(w.docPath(name))
		})
}

// Query evaluates a TPWJ query on the named document, returning answers
// with exact probabilities. Cached documents are treated as immutable
// (updates install fresh trees), so evaluation runs without holding the
// lock.
func (w *Warehouse) Query(name string, q *tpwj.Query) ([]tpwj.ProbAnswer, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	w.mu.Lock()
	ft, err := w.loadCaching(name)
	w.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return tpwj.EvalFuzzy(q, ft)
}

// QueryMC is Query with Monte-Carlo probability estimation, for
// documents whose condition structure makes exact computation too
// expensive.
func (w *Warehouse) QueryMC(name string, q *tpwj.Query, samples int, r *rand.Rand) ([]tpwj.ProbAnswer, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	w.mu.Lock()
	ft, err := w.loadCaching(name)
	w.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return tpwj.EvalFuzzyMonteCarlo(q, ft, samples, r)
}

// Update applies a probabilistic transaction to the named document,
// journaling and persisting the result durably.
func (w *Warehouse) Update(name string, tx *update.Transaction) (*update.FuzzyStats, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	txXML, err := xupdate.TransactionXML(tx)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ft, err := w.loadCaching(name)
	if err != nil {
		return nil, err
	}
	next, stats, err := tx.ApplyFuzzy(ft)
	if err != nil {
		return nil, err
	}
	data, err := xmlio.DocXML(next)
	if err != nil {
		return nil, err
	}
	err = w.mutate(
		Record{Op: "update", Doc: name, Tx: string(txXML), Content: string(data)},
		func() error {
			if err := w.writeDocFile(name, data); err != nil {
				return err
			}
			w.cache[name] = next
			return nil
		})
	if err != nil {
		return nil, err
	}
	return stats, nil
}

// Simplify runs fuzzy-tree simplification on the named document and
// persists the result.
func (w *Warehouse) Simplify(name string) (fuzzy.SimplifyStats, error) {
	if err := validName(name); err != nil {
		return fuzzy.SimplifyStats{}, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ft, err := w.loadCaching(name)
	if err != nil {
		return fuzzy.SimplifyStats{}, err
	}
	next := ft.Clone()
	stats := next.Simplify()
	data, err := xmlio.DocXML(next)
	if err != nil {
		return fuzzy.SimplifyStats{}, err
	}
	err = w.mutate(
		Record{Op: "update", Doc: name, Tx: "<simplify/>", Content: string(data)},
		func() error {
			if err := w.writeDocFile(name, data); err != nil {
				return err
			}
			w.cache[name] = next
			return nil
		})
	if err != nil {
		return fuzzy.SimplifyStats{}, err
	}
	return stats, nil
}

// Info summarizes a stored document.
type Info struct {
	Name   string
	Nodes  int
	Events int
	Worlds int64
}

// Stat returns summary information about the named document.
func (w *Warehouse) Stat(name string) (Info, error) {
	if err := validName(name); err != nil {
		return Info{}, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ft, err := w.loadCaching(name)
	if err != nil {
		return Info{}, err
	}
	return Info{
		Name:   name,
		Nodes:  ft.Size(),
		Events: ft.Table.Len(),
		Worlds: ft.WorldCount(),
	}, nil
}

// Journal returns all journal records (for audit and tests).
func (w *Warehouse) Journal() ([]Record, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return readJournal(filepath.Join(w.dir, journalFile))
}

// Compact truncates the journal. Safe whenever the warehouse is in a
// committed state, which holds under the write lock: every document file
// already contains its latest post-state, so the journal's only value is
// the audit trail, which Compact trades for space.
func (w *Warehouse) Compact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("warehouse: closed")
	}
	if err := w.journal.close(); err != nil {
		return err
	}
	path := filepath.Join(w.dir, journalFile)
	if err := os.Truncate(path, 0); err != nil {
		return err
	}
	j, _, err := openJournal(path)
	if err != nil {
		return err
	}
	w.journal = j
	return nil
}
