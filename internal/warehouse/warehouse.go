// Package warehouse implements the probabilistic XML warehouse of the
// paper (slides 3 and 16): named fuzzy documents stored on the file
// system, updated by probabilistic transactions and queried with TPWJ
// queries. The implementation adds the durability a production system
// needs: atomic document replacement (write-temp-then-rename), a
// write-ahead journal carrying the full post-state, and roll-forward
// recovery on open.
//
// Concurrency is per document: each document has its own lock pair
// (see docLock), handed out by a striped lock table, so reads on
// different documents never contend and queries on the same document
// run in parallel with each other — and with the expensive phase of an
// update, which computes its result before briefly taking the
// document's state lock to install it. Cached snapshots are immutable,
// so the hot read path is lock-free. Mutations on different documents
// overlap through their durable phase too: every journaled mutation
// carries its own Seq and its commit/abort marker echoes it (RefSeq),
// so recovery pairs records by sequence number instead of adjacency
// and the only global section left is the journal's in-memory append,
// with concurrent fsyncs group-committed (see journal).
//
// # Durability and recovery
//
// A mutation (Create, Update, Simplify, Drop) is durable when the call
// returns nil: the journal then holds both the mutation record — the
// full post-state, fsynced before the document file is touched — and
// its fsynced commit marker. A mutation whose call returned an error,
// or that was in flight at a crash (journal record present but no
// marker), never happened: recovery at Open rolls it back by restoring
// the document's last committed state from the journal and appending
// an abort marker. An abort marker therefore always means "the caller
// was told this mutation failed, and the document is unchanged". One
// narrow exception: when the error was in journaling the outcome
// marker itself (the disk failing mid-commit), the applied result may
// remain visible to the live process, and the next Open resolves it —
// rolled back if the marker never reached the disk, kept if it did.
//
// Two deliberate asymmetries of the contract: a concurrent reader on
// the same document may observe a mutation's result between its
// install and the commit fsync — visibility is immediate, durability
// is what the returned nil acknowledges; and after Compact truncates
// the journal, a mutation interrupted before its first fsync leaves no
// trace, so recovery resolves such orphans by on-disk evidence instead
// (see Warehouse.recover).
//
// # Fault tolerance
//
// All I/O goes through an injectable filesystem (vfs.FS; OpenFS
// accepts any implementation, Open uses vfs.OS), so every storage
// failure is testable: the fault sweep in fault_test.go arms a
// fail-once fault at every named I/O point — including torn writes —
// and asserts that acknowledged operations survive recovery and
// failed ones vanish. Failures the warehouse can cleanly abort
// (staging-file writes, view-snapshot writes) just return errors;
// failures that break the durability promise itself (the journal
// cannot be appended to or fsynced, compaction failed past its point
// of no return) switch the warehouse into degraded read-only mode:
// every mutation returns ErrDegraded, reads keep serving the
// committed in-memory state, and the mode is sticky until Reopen
// re-runs recovery successfully. Degraded makes the px_degraded gauge
// 1 and is reported by Warehouse.Degraded with a reason. See
// docs/FAULTS.md for the fault-point catalog and the operator
// runbook.
package warehouse

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/fuzzy"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/store/filestore"
	"repro/internal/store/kv"
	"repro/internal/tpwj"
	"repro/internal/update"
	"repro/internal/vfs"
	"repro/internal/view"
	"repro/internal/xmlio"
	"repro/internal/xupdate"
)

// The filestore backend's on-disk layout, named here because tests and
// tools poke it directly (seeding raw files, truncating the journal).
const (
	docsDir     = "docs"
	docExt      = ".pxml"
	journalFile = "journal.log"
)

// Storage backend names, accepted by OpenBackend and the -store flags
// of pxserve and pxwarehouse.
const (
	// BackendFile is the file-per-document layout: docs/<name>.pxml
	// files, a JSON-lines journal.log, a views.json snapshot.
	BackendFile = "filestore"
	// BackendKV is the single-file page store: every durable byte in
	// one kv.store file of Seq-tagged CRC-framed records.
	BackendKV = "kv"
	// BackendAuto selects by inspecting the directory: kv if a kv.store
	// page file exists, filestore otherwise (also for fresh dirs).
	BackendAuto = "auto"
)

// Sentinel errors, for callers (such as the HTTP server) that map
// failures to categories. Returned errors wrap these; test with
// errors.Is.
var (
	// ErrNotFound reports an operation on a missing document.
	ErrNotFound = errors.New("no such document")
	// ErrExists reports a Create of a name already in use.
	ErrExists = errors.New("document already exists")
	// ErrInvalidName reports a document name outside the safe alphabet
	// [A-Za-z0-9_-].
	ErrInvalidName = errors.New("invalid document name")
	// ErrClosed reports use of a closed warehouse.
	ErrClosed = errors.New("warehouse: closed")
	// ErrDegraded reports a write rejected because the warehouse is in
	// degraded read-only mode after an unrecoverable storage error
	// (typically a journal fsync failure). Reads keep serving from
	// in-memory snapshots; Reopen re-runs recovery and clears the
	// state. See docs/FAULTS.md.
	ErrDegraded = errors.New("warehouse: degraded (read-only)")
)

// Warehouse is a collection of named fuzzy documents persisted under one
// directory. All methods are safe for concurrent use.
type Warehouse struct {
	dir string

	// st is the storage backend every byte of warehouse persistence
	// goes through (see store.Store). The backend in turn routes its
	// I/O through a vfs.FS — vfs.OS in production, a vfs.FaultFS in
	// fault-injection tests (see OpenFS/OpenBackend). No other code in
	// this package may call package os file functions.
	st store.Store

	// degraded latches read-only mode after an unrecoverable
	// write-path error (see setDegraded). It is an atomic so the write
	// paths can check it without a lock; degradedMu guards the reason
	// string only.
	degraded       atomic.Bool
	degradedMu     sync.Mutex
	degradedReason string

	// reg is this warehouse's metrics registry (journal, recovery,
	// search-index and view-maintenance counters live on it). It is
	// per-instance — tests open many warehouses in one process — and
	// the server merges it into /metrics alongside its own registry
	// and the process-global obs.Default().
	reg *obs.Registry

	// mu guards closed and the journal pointer. Operations hold it
	// shared for their duration; Close and Compact hold it exclusively,
	// so they wait out in-flight operations and nothing starts while
	// they run.
	mu      sync.RWMutex
	closed  bool
	journal *journal

	// locks hands out the per-document locks.
	locks lockTable

	// jc accumulates journal activity; it survives the journal
	// replacement Compact performs, so the counters stay monotonic.
	jc journalCounters

	// Recovery outcome counters, written during Open (before the
	// warehouse is shared) and read by JournalStats.
	recoveryReplays      *obs.Counter
	recoveryRollbacks    *obs.Counter
	recoveryRollforwards *obs.Counter

	// cacheMu guards the cache map itself. The trees inside are
	// immutable once installed: mutations build fresh trees and swap
	// the entry, so a snapshot handed to a reader stays valid without
	// any lock.
	cacheMu sync.Mutex
	cache   map[string]*fuzzy.Tree

	// search caches one keyword-search index per document, keyed by
	// the snapshot it was built from (see searchIndexes).
	search searchIndexes

	// views holds the registered materialized views and their
	// maintenance counters (see views.go).
	views viewRegistry

	// journaledMu guards journaled: the set of documents with a
	// committed mutation record in the current journal. For those, the
	// journal is the durable copy of the latest content — recovery
	// replays it over whatever the file holds — so their file swaps
	// skip the per-file fsync and the group-committed journal fsyncs
	// are the only ones on the mutation path. A document absent from
	// the set (first mutation after Open of a compacted warehouse) has
	// its pre-state only in its file, which must therefore never be
	// torn: its next swap syncs the file data before the rename.
	// Compact clears the set after making every document file durable.
	journaledMu sync.Mutex
	journaled   map[string]bool
}

func (w *Warehouse) isJournaled(name string) bool {
	w.journaledMu.Lock()
	defer w.journaledMu.Unlock()
	return w.journaled[name]
}

func (w *Warehouse) markJournaled(name string) {
	w.journaledMu.Lock()
	defer w.journaledMu.Unlock()
	w.journaled[name] = true
}

// Open opens (creating if necessary) a warehouse rooted at dir and
// performs scan-based crash recovery: each document is restored to its
// last committed journaled state and every in-flight (unmarked)
// mutation is rolled back. See recover in recovery.go. Open uses the
// filestore backend; OpenBackend selects another.
func Open(dir string) (*Warehouse, error) {
	return OpenFS(dir, vfs.OS)
}

// OpenFS is Open with an explicit filesystem. Production callers use
// Open (vfs.OS); fault-injection tests pass a vfs.FaultFS to fail
// chosen I/O calls by named fault point.
func OpenFS(dir string, fsys vfs.FS) (*Warehouse, error) {
	return OpenBackend(dir, BackendFile, fsys)
}

// OpenBackend is Open with an explicit storage backend (BackendFile,
// BackendKV, or BackendAuto to inspect the directory) and filesystem.
func OpenBackend(dir, backend string, fsys vfs.FS) (*Warehouse, error) {
	st, err := newBackendStore(dir, backend, fsys)
	if err != nil {
		return nil, err
	}
	return OpenStore(dir, st)
}

// newBackendStore constructs the named storage backend rooted at dir.
func newBackendStore(dir, backend string, fsys vfs.FS) (store.Store, error) {
	switch backend {
	case BackendFile, "":
		return filestore.New(dir, fsys), nil
	case BackendKV:
		return kv.New(dir, fsys), nil
	case BackendAuto:
		return newBackendStore(dir, DetectBackend(dir), fsys)
	default:
		return nil, fmt.Errorf("warehouse: unknown storage backend %q (want %q, %q or %q)",
			backend, BackendFile, BackendKV, BackendAuto)
	}
}

// DetectBackend reports which storage backend the warehouse directory
// holds: BackendKV if its page file exists, BackendFile otherwise
// (including for directories that do not exist yet).
func DetectBackend(dir string) string {
	if _, err := os.Stat(filepath.Join(dir, kv.FileName)); err == nil {
		return BackendKV
	}
	return BackendFile
}

// OpenStore opens a warehouse over an already-constructed storage
// backend. OpenBackend is the convenience wrapper every normal caller
// uses; OpenStore exists for callers that build the backend themselves.
func OpenStore(dir string, st store.Store) (*Warehouse, error) {
	reg := obs.NewRegistry()
	w := &Warehouse{
		dir:       dir,
		st:        st,
		reg:       reg,
		cache:     make(map[string]*fuzzy.Tree),
		journaled: make(map[string]bool),
	}
	w.jc = journalCounters{
		appends: reg.Counter("px_journal_appends_total", "journal records durably appended"),
		batches: reg.Counter("px_journal_sync_batches_total", "journal fsync calls (group commit: batches <= appends)"),
		bytes:   reg.Counter("px_journal_bytes_total", "journal record payload bytes durably appended (backend framing excluded)"),
	}
	w.recoveryReplays = reg.Counter("px_recovery_replays_total", "documents replayed from the journal at the last Open")
	w.recoveryRollbacks = reg.Counter("px_recovery_rollbacks_total", "in-flight mutations rolled back at the last Open")
	w.recoveryRollforwards = reg.Counter("px_recovery_rollforwards_total", "unmarked mutations kept by on-disk evidence at the last Open")
	w.search.initMetrics(reg)
	w.views.initMetrics(reg)
	reg.GaugeFunc("px_views_registered", "currently registered materialized views",
		func() float64 { return float64(w.views.count()) })
	reg.GaugeFunc("px_degraded", "1 while the warehouse is in degraded read-only mode, else 0",
		func() float64 {
			if w.degraded.Load() {
				return 1
			}
			return 0
		})
	if err := w.loadFromDisk(); err != nil {
		return nil, err
	}
	return w, nil
}

// loadFromDisk runs the open sequence against the storage backend:
// initialize the layout and scan the journal (truncating any torn
// tail), load the view snapshot, replay recovery, prune orphaned
// views. Shared by OpenStore and Reopen; the caller must hold the
// warehouse exclusively (Reopen) or privately (OpenStore, before the
// value is shared).
func (w *Warehouse) loadFromDisk() error {
	payloads, log, err := w.st.Open(validRecord)
	if err != nil {
		return fmt.Errorf("warehouse: %w", err)
	}
	records, err := parseRecords(payloads)
	if err != nil {
		log.Close() //nolint:errcheck // already failing; the parse error wins
		return err
	}
	j := newJournal(log, maxSeq(records), &w.jc, w.setDegraded)
	w.journal = j
	// Seed the view registry from the compaction snapshot (if any);
	// recovery then replays the journal's view records on top.
	if err := w.loadViewSnapshot(); err != nil {
		j.close() //nolint:errcheck // already failing; the open error wins
		return err
	}
	if err := w.recover(records); err != nil {
		j.close() //nolint:errcheck // already failing; the open error wins
		return err
	}
	// Drop view definitions whose document no longer exists (defensive:
	// a hand-edited snapshot or journal could leave orphans behind).
	w.views.pruneMissing(func(doc string) bool {
		ok, err := w.st.DocExists(doc)
		return err == nil && ok
	})
	return nil
}

// Close releases the journal and the storage backend. The warehouse
// must not be used afterwards.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.journal.close()
	if cerr := w.st.Close(); err == nil {
		err = cerr
	}
	return err
}

// setDegraded flips the warehouse into degraded read-only mode. Called
// on unrecoverable write-path errors — notably a journal flush/fsync
// failure, where the page cache may have dropped the very bytes the
// fsync claimed to persist, so retrying is not an option. It only sets
// flags (it runs from under journal locks); the first cause wins.
func (w *Warehouse) setDegraded(op string, err error) {
	w.degradedMu.Lock()
	if !w.degraded.Load() {
		w.degradedReason = fmt.Sprintf("%s: %v", op, err)
		w.degraded.Store(true)
	}
	w.degradedMu.Unlock()
}

// Degraded reports whether the warehouse is in degraded read-only mode
// and, if so, the storage failure that caused it.
func (w *Warehouse) Degraded() (bool, string) {
	if !w.degraded.Load() {
		return false, ""
	}
	w.degradedMu.Lock()
	defer w.degradedMu.Unlock()
	return true, w.degradedReason
}

// checkWritable rejects mutations while degraded, wrapping ErrDegraded
// with the original storage failure.
func (w *Warehouse) checkWritable() error {
	if !w.degraded.Load() {
		return nil
	}
	_, reason := w.Degraded()
	return fmt.Errorf("%w: %s", ErrDegraded, reason)
}

// startMutation is startOp plus the degraded-mode write rejection. All
// mutating entry points (Create, Update, Simplify, Drop, RegisterView,
// DropView, Compact) go through it; read paths use startOp and keep
// serving while degraded.
func (w *Warehouse) startMutation() (release func(), err error) {
	release, err = w.startOp()
	if err != nil {
		return nil, err
	}
	if err := w.checkWritable(); err != nil {
		release()
		return nil, err
	}
	return release, nil
}

// Reopen recovers a degraded warehouse in place: it waits out in-flight
// operations, discards all in-memory state (caches, search indexes,
// view materializations, the failed journal instance), re-runs the full
// open sequence — torn-tail truncation, journal replay, rollback of the
// aborted mutation — and clears degraded mode. The acknowledged history
// is exactly what recovery reconstructs from disk; callers resume as
// after a fresh Open. It is also safe on a healthy warehouse (an
// expensive no-op that drops caches).
func (w *Warehouse) Reopen() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	// The old journal instance is dead (or about to be replaced); its
	// close error carries no information recovery doesn't re-derive
	// from disk.
	w.journal.close() //nolint:errcheck
	w.cacheMu.Lock()
	w.cache = make(map[string]*fuzzy.Tree)
	w.cacheMu.Unlock()
	w.journaledMu.Lock()
	w.journaled = make(map[string]bool)
	w.journaledMu.Unlock()
	w.search.reset()
	w.views.reset()
	if err := w.loadFromDisk(); err != nil {
		return err
	}
	w.degradedMu.Lock()
	w.degradedReason = ""
	w.degraded.Store(false)
	w.degradedMu.Unlock()
	return nil
}

// Dir returns the warehouse root directory.
func (w *Warehouse) Dir() string { return w.dir }

// Backend returns the storage backend's name ("filestore", "kv").
func (w *Warehouse) Backend() string { return w.st.Backend() }

// StorageStats reports the storage backend's on-disk footprint. Served
// by pxserve under /stats as "storage".
func (w *Warehouse) StorageStats() (store.Stats, error) {
	release, err := w.startOp()
	if err != nil {
		return store.Stats{}, err
	}
	defer release()
	return w.st.Stats()
}

// Registry returns the warehouse's metrics registry: journal,
// recovery, keyword-index and view-maintenance counters. The HTTP
// server merges it into GET /metrics.
func (w *Warehouse) Registry() *obs.Registry { return w.reg }

// ValidateName reports whether name is usable as a document name,
// wrapping ErrInvalidName otherwise. Callers such as the HTTP server
// use it to reject requests before doing expensive work (parsing a
// large document body) on a name the warehouse would refuse anyway.
func ValidateName(name string) error { return validName(name) }

// validName restricts document names to a safe alphabet.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("warehouse: %w: empty name", ErrInvalidName)
	}
	for _, r := range name {
		ok := r == '_' || r == '-' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("warehouse: %w: %q", ErrInvalidName, name)
		}
	}
	return nil
}

// startOp pins the warehouse open for the duration of one operation.
// The returned release function must be called when the operation ends.
func (w *Warehouse) startOp() (release func(), err error) {
	w.mu.RLock()
	if w.closed {
		w.mu.RUnlock()
		return nil, ErrClosed
	}
	return w.mu.RUnlock, nil
}

func (w *Warehouse) cacheGet(name string) (*fuzzy.Tree, bool) {
	w.cacheMu.Lock()
	defer w.cacheMu.Unlock()
	ft, ok := w.cache[name]
	return ft, ok
}

func (w *Warehouse) cacheSet(name string, ft *fuzzy.Tree) {
	w.cacheMu.Lock()
	defer w.cacheMu.Unlock()
	w.cache[name] = ft
}

func (w *Warehouse) cacheDel(name string) {
	w.cacheMu.Lock()
	defer w.cacheMu.Unlock()
	delete(w.cache, name)
}

// writeDoc atomically replaces the document's stored content. With
// sync, the content is durable on return. Without sync the backend may
// expose a torn state after a crash — callers may omit the (expensive,
// unbatchable) fsync only while the journal holds a committed copy of
// the latest content, because recovery replays that copy over the
// stored state regardless of what the crash left in it (see install
// and Compact).
func (w *Warehouse) writeDoc(name string, data []byte, sync bool) error {
	return w.st.WriteDoc(name, data, sync)
}

// statGuard rejects names that exist neither in the cache nor in the
// store before any per-document lock is allocated, so clients probing
// arbitrary names (missing documents, typos, scans) can never grow the
// lock table. Callers performing mutations must re-check existence
// under the document's locks; this pre-check only bounds allocation.
func (w *Warehouse) statGuard(name string) error {
	if _, ok := w.cacheGet(name); ok {
		return nil
	}
	ok, err := w.st.DocExists(name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("warehouse: %w: %q", ErrNotFound, name)
	}
	return nil
}

// releaseIfGone drops the document's lock entry when err reports the
// document missing. The caller holds the entry's writers mutex (so it
// is the current entry and no Drop can race the deletion), having just
// discovered the document vanished — keeping the entry would leak it,
// since only a successful Drop otherwise deletes entries.
func (w *Warehouse) releaseIfGone(name string, err error) {
	if errors.Is(err, ErrNotFound) {
		w.locks.del(name)
	}
}

// lockWriter returns the document's lock with its writers mutex held.
// Drop removes lock entries, so after acquiring the mutex the entry is
// rechecked against the table and the acquisition retried if a
// concurrent Drop removed it — every writer critical section thus
// holds the mutex of the entry currently in the table. With mustExist,
// each attempt re-verifies the document first, so writers racing a
// Drop return ErrNotFound instead of re-creating table entries for
// names that no longer exist.
func (w *Warehouse) lockWriter(name string, mustExist bool) (*docLock, error) {
	for {
		if mustExist {
			if err := w.statGuard(name); err != nil {
				return nil, err
			}
		}
		dl := w.locks.get(name)
		dl.writers.Lock()
		if cur, ok := w.locks.peek(name); ok && cur == dl {
			return dl, nil
		}
		dl.writers.Unlock()
	}
}

// readDoc loads and parses the document from the store.
func (w *Warehouse) readDoc(name string) (*fuzzy.Tree, error) {
	data, err := w.st.ReadDoc(name)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("warehouse: %w: %q", ErrNotFound, name)
	}
	if err != nil {
		return nil, err
	}
	ft, err := xmlio.ParseDoc(data)
	if err != nil {
		return nil, fmt.Errorf("warehouse: document %q corrupt: %w", name, err)
	}
	return ft, nil
}

// snapshot returns the current immutable tree of the document, loading
// and caching it on first use. The returned tree must not be mutated;
// it stays valid after the locks are released because mutations install
// fresh trees instead of editing in place.
//
// Cached trees are swapped atomically and never edited, so the fast
// path needs no lock. Names that exist neither in the cache nor on
// disk are rejected before touching the lock table, so clients probing
// arbitrary names can never grow it. The cold path rechecks table
// membership after locking, like lockWriter, so a reader never
// populates the cache while a concurrent Drop/Create cycle proceeds
// under a successor entry.
func (w *Warehouse) snapshot(name string) (*fuzzy.Tree, error) {
	for {
		if ft, ok := w.cacheGet(name); ok {
			return ft, nil
		}
		if err := w.statGuard(name); err != nil {
			return nil, err
		}
		dl := w.locks.get(name)
		dl.state.Lock()
		if cur, ok := w.locks.peek(name); !ok || cur != dl {
			dl.state.Unlock()
			continue
		}
		if ft, ok := w.cacheGet(name); ok {
			dl.state.Unlock()
			return ft, nil
		}
		ft, err := w.readDoc(name)
		if err == nil {
			w.cacheSet(name, ft)
		} else if errors.Is(err, ErrNotFound) && dl.writers.TryLock() {
			// The document vanished between statGuard and the load, so
			// the locks.get above may have re-created an entry for a
			// name that no longer exists. No writer owns it (TryLock
			// succeeded — a blocked writer would recheck and retry),
			// so release it to keep the table bounded under churn.
			w.locks.del(name)
			dl.writers.Unlock()
		}
		dl.state.Unlock()
		return ft, err
	}
}

// install journals and applies one mutation under the document's state
// lock. The caller holds the document's writers lock and has done all
// expensive computation already, so the state lock — the one a
// cold-loading reader contends on — is held only for the journal
// appends and the file swap. Installs on different documents
// interleave freely; their journal appends share group-committed
// fsyncs.
//
// The write-ahead ordering is the durability contract: the mutation
// record (full post-state, own Seq) is durable before apply touches
// the document file, and the caller sees nil only after the commit
// marker echoing that Seq is durable too. A crash anywhere in between
// leaves the mutation unmarked, and recovery rolls it back.
// apply receives syncFile: whether a file swap must fsync its data
// first, true only for a document whose pre-state exists nowhere but
// in its file (no committed record in the journal yet).
func (w *Warehouse) install(ctx context.Context, dl *docLock, rec Record, apply func(syncFile bool) error) error {
	ctx, span := obs.StartSpan(ctx, "warehouse.install")
	defer span.End()
	cost := obs.CostFromContext(ctx)
	dl.state.Lock()
	defer dl.state.Unlock()
	_, jspan := obs.StartSpan(ctx, "journal.append")
	seq, err := w.journal.appendCost(cost, rec)
	jspan.End()
	if err != nil {
		return err
	}
	if err := apply(!w.isJournaled(rec.Doc)); err != nil {
		// Best-effort abort marker: it only saves recovery work. If
		// this append also fails (the disk is going away), recovery
		// finds the mutation unmarked and rolls it back — the same
		// outcome the caller is being told here.
		w.journal.appendCost(cost, Record{Op: OpAbort, RefSeq: seq}) //nolint:errcheck
		return err
	}
	_, cspan := obs.StartSpan(ctx, "journal.commit")
	defer cspan.End()
	if _, err := w.journal.appendCost(cost, Record{Op: OpCommit, RefSeq: seq}); err != nil {
		// The apply succeeded but the marker's durability is unknown
		// (a failing disk). The installed state stays visible to the
		// live process — the pre-state needed to undo it is only in
		// the journal of that same disk — and the caller's error means
		// "outcome resolved at next Open": rolled back if the marker
		// never landed, kept if it did. See the package comment.
		return err
	}
	if rec.Op.Mutation() {
		// Only content-carrying mutations make the journal the durable
		// copy of the document; a committed view record must not let
		// later file swaps skip their fsync.
		w.markJournaled(rec.Doc)
	}
	return nil
}

// Create stores a new document under the given name.
func (w *Warehouse) Create(name string, ft *fuzzy.Tree) error {
	return w.CreateCtx(context.Background(), name, ft)
}

// CreateCtx is Create with a context: the journal append and file
// install record spans when the context carries an obs trace.
func (w *Warehouse) CreateCtx(ctx context.Context, name string, ft *fuzzy.Tree) error {
	if err := validName(name); err != nil {
		return err
	}
	if err := ft.Validate(); err != nil {
		return err
	}
	data, err := xmlio.DocXML(ft)
	if err != nil {
		return err
	}
	release, err := w.startMutation()
	if err != nil {
		return err
	}
	defer release()
	dl, err := w.lockWriter(name, false)
	if err != nil {
		return err
	}
	defer dl.writers.Unlock()
	if exists, _ := w.st.DocExists(name); exists {
		return fmt.Errorf("warehouse: %w: %q", ErrExists, name)
	}
	clone := ft.Clone()
	err = w.install(ctx, dl,
		Record{Op: OpCreate, Doc: name, Content: string(data)},
		func(syncFile bool) error {
			if err := w.writeDoc(name, data, syncFile); err != nil {
				return err
			}
			w.cacheSet(name, clone)
			return nil
		})
	if err != nil {
		// The document never came to exist (journal or store-write
		// failure), so the entry allocated for it must not outlive
		// this call — nothing else would ever delete it.
		if exists, statErr := w.st.DocExists(name); statErr == nil && !exists {
			w.locks.del(name)
		}
		return err
	}
	return nil
}

// Get returns a deep copy of the named document. The copy is made
// outside every lock.
func (w *Warehouse) Get(name string) (*fuzzy.Tree, error) {
	ft, err := w.readSnapshot(context.Background(), name)
	if err != nil {
		return nil, err
	}
	return ft.Clone(), nil
}

// GetXML returns the document serialized as pxml XML. Unlike Get it
// copies nothing: the snapshot is immutable, so it is serialized in
// place — the cheap path for read-heavy servers.
func (w *Warehouse) GetXML(name string) ([]byte, error) {
	return w.GetXMLCtx(context.Background(), name)
}

// GetXMLCtx is GetXML with a context, traced like QueryCtx.
func (w *Warehouse) GetXMLCtx(ctx context.Context, name string) ([]byte, error) {
	ft, err := w.readSnapshot(ctx, name)
	if err != nil {
		return nil, err
	}
	_, span := obs.StartSpan(ctx, "xml.encode")
	defer span.End()
	return xmlio.DocXML(ft)
}

// List returns the sorted names of all stored documents.
func (w *Warehouse) List() ([]string, error) {
	release, err := w.startOp()
	if err != nil {
		return nil, err
	}
	defer release()
	return w.st.ListDocs()
}

// Drop removes the named document.
func (w *Warehouse) Drop(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	release, err := w.startMutation()
	if err != nil {
		return err
	}
	defer release()
	dl, err := w.lockWriter(name, true)
	if err != nil {
		return err
	}
	defer dl.writers.Unlock()
	// Re-verify now that the lock is held: a concurrent Drop may have
	// removed the document between statGuard and acquisition, in which
	// case the entry lockWriter re-created must be released too.
	if err := w.statGuard(name); err != nil {
		w.releaseIfGone(name, err)
		return err
	}
	err = w.install(context.Background(), dl,
		Record{Op: OpDrop, Doc: name},
		func(bool) error {
			w.cacheDel(name)
			return w.st.RemoveDoc(name)
		})
	if err != nil {
		return err
	}
	// The document is gone; release its lock entry so create/drop
	// churn of unique names cannot grow the table. Writers blocked on
	// this entry re-check and retry (see lockWriter).
	w.locks.del(name)
	w.dropSearchIndex(name)
	// Views follow their document: the committed drop record implies
	// their removal at recovery too (see recover).
	w.views.delDoc(name)
	return nil
}

// Query evaluates a TPWJ query on the named document, returning answers
// with exact probabilities. Snapshots are immutable (updates install
// fresh trees), so evaluation runs after every lock is released —
// including the warehouse pin, so a slow query never stalls a pending
// Close or Compact, and queries on the same document proceed in
// parallel with each other and with the computation phase of a
// concurrent update.
func (w *Warehouse) Query(name string, q *tpwj.Query) ([]tpwj.ProbAnswer, error) {
	return w.QueryCtx(context.Background(), name, q)
}

// QueryCtx is Query with a context: when the context carries an obs
// trace, the pipeline stages (snapshot fetch, symbolic match, DNF
// compile, probability evaluation) record spans into it.
func (w *Warehouse) QueryCtx(ctx context.Context, name string, q *tpwj.Query) ([]tpwj.ProbAnswer, error) {
	ctx, span := obs.StartSpan(ctx, "warehouse.query")
	defer span.End()
	ft, err := w.readSnapshot(ctx, name)
	if err != nil {
		return nil, err
	}
	return tpwj.EvalFuzzyContext(ctx, q, ft)
}

// QueryMC is Query with Monte-Carlo probability estimation, for
// documents whose condition structure makes exact computation too
// expensive.
func (w *Warehouse) QueryMC(name string, q *tpwj.Query, samples int, r *rand.Rand) ([]tpwj.ProbAnswer, error) {
	return w.QueryMCCtx(context.Background(), name, q, samples, r)
}

// QueryMCCtx is QueryMC with a context, traced like QueryCtx.
func (w *Warehouse) QueryMCCtx(ctx context.Context, name string, q *tpwj.Query, samples int, r *rand.Rand) ([]tpwj.ProbAnswer, error) {
	ctx, span := obs.StartSpan(ctx, "warehouse.query")
	defer span.End()
	ft, err := w.readSnapshot(ctx, name)
	if err != nil {
		return nil, err
	}
	return tpwj.EvalFuzzyMonteCarloContext(ctx, q, ft, samples, r)
}

// readSnapshot validates the name and fetches the document's immutable
// snapshot, holding the warehouse pin only for the fetch itself so the
// caller can compute on the snapshot without blocking Close or Compact.
func (w *Warehouse) readSnapshot(ctx context.Context, name string) (*fuzzy.Tree, error) {
	_, span := obs.StartSpan(ctx, "warehouse.snapshot")
	defer span.End()
	if err := validName(name); err != nil {
		return nil, err
	}
	release, err := w.startOp()
	if err != nil {
		return nil, err
	}
	defer release()
	return w.snapshot(name)
}

// mutateDoc runs the shared writer path for document-transforming
// operations: pin the warehouse open, acquire the document's writers
// lock, snapshot, run compute outside the state lock (concurrent
// queries on the same document are never blocked by it), then journal
// and install the successor tree. compute returns the successor, the
// journal's Tx annotation, and the update's structural footprint for
// view maintenance (nil when unknown, forcing affected views to
// recompute). The lock-entry lifecycle bookkeeping (releaseIfGone on
// vanished documents) lives only here.
//
// Registered views of the document are maintained after the install,
// still under the writers lock — so view state advances in lockstep
// with the document and the next writer cannot interleave — but
// outside every view's own mutex, so concurrent ReadView calls are
// never blocked: they serve the previous state marked stale until the
// maintenance pass lands (see maintainViews).
func (w *Warehouse) mutateDoc(ctx context.Context, name string, compute func(ft *fuzzy.Tree) (*fuzzy.Tree, string, *view.Delta, error)) error {
	if err := validName(name); err != nil {
		return err
	}
	release, err := w.startMutation()
	if err != nil {
		return err
	}
	defer release()
	dl, err := w.lockWriter(name, true)
	if err != nil {
		return err
	}
	defer dl.writers.Unlock()
	_, sspan := obs.StartSpan(ctx, "warehouse.snapshot")
	ft, err := w.snapshot(name)
	sspan.End()
	if err != nil {
		w.releaseIfGone(name, err)
		return err
	}
	_, cspan := obs.StartSpan(ctx, "update.compute")
	next, txNote, delta, err := compute(ft)
	cspan.End()
	if err != nil {
		return err
	}
	data, err := xmlio.DocXML(next)
	if err != nil {
		return err
	}
	err = w.install(ctx, dl,
		Record{Op: OpUpdate, Doc: name, Tx: txNote, Content: string(data)},
		func(syncFile bool) error {
			if err := w.writeDoc(name, data, syncFile); err != nil {
				return err
			}
			w.cacheSet(name, next)
			return nil
		})
	if err != nil {
		return err
	}
	// The old snapshot is superseded; release its keyword index now so
	// it cannot pin the whole pre-update tree until the next search.
	w.dropSearchIndex(name)
	_, vspan := obs.StartSpan(ctx, "view.maintain")
	w.maintainViews(ctx, name, ft, next, delta)
	vspan.End()
	return nil
}

// Update applies a probabilistic transaction to the named document,
// journaling and persisting the result durably.
func (w *Warehouse) Update(name string, tx *update.Transaction) (*update.FuzzyStats, error) {
	return w.UpdateCtx(context.Background(), name, tx)
}

// UpdateCtx is Update with a context: the compute, install and
// view-maintenance stages record spans when the context carries an obs
// trace.
func (w *Warehouse) UpdateCtx(ctx context.Context, name string, tx *update.Transaction) (*update.FuzzyStats, error) {
	txXML, err := xupdate.TransactionXML(tx)
	if err != nil {
		return nil, err
	}
	var stats *update.FuzzyStats
	err = w.mutateDoc(ctx, name, func(ft *fuzzy.Tree) (*fuzzy.Tree, string, *view.Delta, error) {
		next, s, err := tx.ApplyFuzzy(ft)
		if err != nil {
			return nil, "", nil, err
		}
		stats = s
		return next, string(txXML), &view.Delta{
			InsertedLabels:    s.InsertedLabels,
			DeleteTargetPaths: s.DeleteTargetPaths,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return stats, nil
}

// Simplify runs fuzzy-tree simplification on the named document and
// persists the result.
func (w *Warehouse) Simplify(name string) (fuzzy.SimplifyStats, error) {
	return w.SimplifyCtx(context.Background(), name)
}

// SimplifyCtx is Simplify with a context, traced like UpdateCtx.
func (w *Warehouse) SimplifyCtx(ctx context.Context, name string) (fuzzy.SimplifyStats, error) {
	var stats fuzzy.SimplifyStats
	// The nil footprint makes every view of the document recompute:
	// simplification rewrites conditions tree-wide, which the overlap
	// analysis cannot bound.
	err := w.mutateDoc(ctx, name, func(ft *fuzzy.Tree) (*fuzzy.Tree, string, *view.Delta, error) {
		next := ft.Clone()
		stats = next.Simplify()
		return next, "<simplify/>", nil, nil
	})
	if err != nil {
		return fuzzy.SimplifyStats{}, err
	}
	return stats, nil
}

// Info summarizes a stored document.
type Info struct {
	Name   string
	Nodes  int
	Events int
	Worlds int64
}

// Stat returns summary information about the named document.
func (w *Warehouse) Stat(name string) (Info, error) {
	ft, err := w.readSnapshot(context.Background(), name)
	if err != nil {
		return Info{}, err
	}
	return Info{
		Name:   name,
		Nodes:  ft.Size(),
		Events: ft.Table.Len(),
		Worlds: ft.WorldCount(),
	}, nil
}

// Journal returns all journal records (for audit and tests). It takes
// no journal lock — stalling every mutation for the duration of a
// potentially large journal read would be worse than the alternative —
// so a call concurrent with mutations may miss records still in the
// append buffer or stop short at one caught mid-flush (the torn-tail
// semantics the backend scan already has for crashes). Quiescent reads
// are exact.
func (w *Warehouse) Journal() ([]Record, error) {
	release, err := w.startOp()
	if err != nil {
		return nil, err
	}
	defer release()
	payloads, _, err := w.st.ScanJournal(validRecord)
	if err != nil {
		return nil, err
	}
	return parseRecords(payloads)
}

// Compact drops the journal records, reclaiming their space. Safe
// whenever the warehouse is in a committed state, which holds under
// the exclusive warehouse lock: it waits out all in-flight operations,
// so every stored document already holds its latest post-state and the
// journal's only value beyond the audit trail is as the durable copy
// of that post-state — so Compact first makes every document durable
// itself (SyncDocs), then trades the journal for space (ResetJournal,
// which for the kv backend also rewrites the page file down to its
// live pages). After it returns, the stored documents are the
// authority until the next mutation journals a new post-state.
func (w *Warehouse) Compact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.checkWritable(); err != nil {
		return err
	}
	// Failures up to and including the journal close leave the journal
	// records intact on disk — the warehouse stays fully consistent and
	// writable, so these paths return a plain error.
	if err := w.st.SyncDocs(); err != nil {
		return err
	}
	// The journal is also the durable copy of the view registry (its
	// view-register/view-drop records); snapshot the registry before
	// dropping it.
	if err := w.writeViewSnapshot(); err != nil {
		return err
	}
	if err := w.journal.close(); err != nil {
		// The instance is now closed; any later append fails and
		// degrades via the journal's latch. Reopen recovers.
		w.setDegraded("compact.close", err)
		return err
	}
	if err := w.st.ResetJournal(); err != nil {
		// Between close and a successful reopen there is no live
		// journal instance: no mutation can be made durable, so the
		// warehouse must stop accepting writes until Reopen.
		w.setDegraded("compact.reset", err)
		return err
	}
	log, err := w.st.OpenJournal()
	if err != nil {
		w.setDegraded("compact.reopen", err)
		return err
	}
	w.journal = newJournal(log, 0, &w.jc, w.setDegraded)
	w.journaledMu.Lock()
	w.journaled = make(map[string]bool)
	w.journaledMu.Unlock()
	return nil
}
