// Package warehouse implements the probabilistic XML warehouse of the
// paper (slides 3 and 16): named fuzzy documents stored on the file
// system, updated by probabilistic transactions and queried with TPWJ
// queries. The implementation adds the durability a production system
// needs: atomic document replacement (write-temp-then-rename), a
// write-ahead journal carrying the full post-state, and roll-forward
// recovery on open.
//
// Concurrency is per document: each document has its own lock pair
// (see docLock), handed out by a striped lock table, so reads on
// different documents never contend and queries on the same document
// run in parallel with each other — and with the expensive phase of an
// update, which computes its result before briefly taking the
// document's state lock to install it. Cached snapshots are immutable,
// so the hot read path is lock-free. Mutations on different documents
// overlap in their computation phase but serialize briefly at the
// journal (installMu), which keeps each (mutation, marker) record pair
// adjacent for recovery's last-record check.
package warehouse

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/update"
	"repro/internal/xmlio"
	"repro/internal/xupdate"
)

const (
	docsDir     = "docs"
	docExt      = ".pxml"
	journalFile = "journal.log"
)

// Sentinel errors, for callers (such as the HTTP server) that map
// failures to categories. Returned errors wrap these; test with
// errors.Is.
var (
	// ErrNotFound reports an operation on a missing document.
	ErrNotFound = errors.New("no such document")
	// ErrExists reports a Create of a name already in use.
	ErrExists = errors.New("document already exists")
	// ErrInvalidName reports a document name outside the safe alphabet
	// [A-Za-z0-9_-].
	ErrInvalidName = errors.New("invalid document name")
	// ErrClosed reports use of a closed warehouse.
	ErrClosed = errors.New("warehouse: closed")
)

// Warehouse is a collection of named fuzzy documents persisted under one
// directory. All methods are safe for concurrent use.
type Warehouse struct {
	dir string

	// mu guards closed and the journal pointer. Operations hold it
	// shared for their duration; Close and Compact hold it exclusively,
	// so they wait out in-flight operations and nothing starts while
	// they run.
	mu      sync.RWMutex
	closed  bool
	journal *journal

	// locks hands out the per-document locks.
	locks lockTable

	// installMu serializes the install phase of mutations across
	// documents, keeping each journal (mutation, commit) record pair
	// adjacent — the invariant recover's last-record check relies on.
	// Only the cheap install (two appends plus a file rename) runs
	// under it; the expensive computation preceding it does not.
	installMu sync.Mutex

	// cacheMu guards the cache map itself. The trees inside are
	// immutable once installed: mutations build fresh trees and swap
	// the entry, so a snapshot handed to a reader stays valid without
	// any lock.
	cacheMu sync.Mutex
	cache   map[string]*fuzzy.Tree
}

// Open opens (creating if necessary) a warehouse rooted at dir and
// performs crash recovery: if the journal's last mutation lacks its
// commit marker, the mutation is rolled forward from the journaled
// post-state.
func Open(dir string) (*Warehouse, error) {
	if err := os.MkdirAll(filepath.Join(dir, docsDir), 0o755); err != nil {
		return nil, fmt.Errorf("warehouse: create layout: %w", err)
	}
	j, records, err := openJournal(filepath.Join(dir, journalFile))
	if err != nil {
		return nil, err
	}
	w := &Warehouse{dir: dir, journal: j, cache: make(map[string]*fuzzy.Tree)}
	if err := w.recover(records); err != nil {
		j.close()
		return nil, err
	}
	return w, nil
}

// recover rolls the last journaled mutation forward when its commit
// marker is missing.
func (w *Warehouse) recover(records []Record) error {
	if len(records) == 0 {
		return nil
	}
	last := records[len(records)-1]
	if last.Op == "commit" || last.Op == "abort" {
		return nil
	}
	switch last.Op {
	case "create", "update":
		if err := w.writeDocFile(last.Doc, []byte(last.Content)); err != nil {
			return fmt.Errorf("warehouse: recovery of %q: %w", last.Doc, err)
		}
	case "drop":
		if err := os.Remove(w.docPath(last.Doc)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("warehouse: recovery drop of %q: %w", last.Doc, err)
		}
	default:
		return fmt.Errorf("warehouse: unknown journal op %q", last.Op)
	}
	_, err := w.journal.append(Record{Op: "commit"})
	return err
}

// Close releases the journal. The warehouse must not be used afterwards.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.journal.close()
}

// Dir returns the warehouse root directory.
func (w *Warehouse) Dir() string { return w.dir }

func (w *Warehouse) docPath(name string) string {
	return filepath.Join(w.dir, docsDir, name+docExt)
}

// ValidateName reports whether name is usable as a document name,
// wrapping ErrInvalidName otherwise. Callers such as the HTTP server
// use it to reject requests before doing expensive work (parsing a
// large document body) on a name the warehouse would refuse anyway.
func ValidateName(name string) error { return validName(name) }

// validName restricts document names to a safe alphabet.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("warehouse: %w: empty name", ErrInvalidName)
	}
	for _, r := range name {
		ok := r == '_' || r == '-' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("warehouse: %w: %q", ErrInvalidName, name)
		}
	}
	return nil
}

// startOp pins the warehouse open for the duration of one operation.
// The returned release function must be called when the operation ends.
func (w *Warehouse) startOp() (release func(), err error) {
	w.mu.RLock()
	if w.closed {
		w.mu.RUnlock()
		return nil, ErrClosed
	}
	return w.mu.RUnlock, nil
}

func (w *Warehouse) cacheGet(name string) (*fuzzy.Tree, bool) {
	w.cacheMu.Lock()
	defer w.cacheMu.Unlock()
	ft, ok := w.cache[name]
	return ft, ok
}

func (w *Warehouse) cacheSet(name string, ft *fuzzy.Tree) {
	w.cacheMu.Lock()
	defer w.cacheMu.Unlock()
	w.cache[name] = ft
}

func (w *Warehouse) cacheDel(name string) {
	w.cacheMu.Lock()
	defer w.cacheMu.Unlock()
	delete(w.cache, name)
}

// writeDocFile atomically replaces the document file.
func (w *Warehouse) writeDocFile(name string, data []byte) error {
	path := w.docPath(name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// statGuard rejects names that exist neither in the cache nor on disk
// before any per-document lock is allocated, so clients probing
// arbitrary names (missing documents, typos, scans) can never grow the
// lock table. Callers performing mutations must re-check existence
// under the document's locks; this pre-check only bounds allocation.
func (w *Warehouse) statGuard(name string) error {
	if _, ok := w.cacheGet(name); ok {
		return nil
	}
	if _, err := os.Stat(w.docPath(name)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("warehouse: %w: %q", ErrNotFound, name)
		}
		return err
	}
	return nil
}

// releaseIfGone drops the document's lock entry when err reports the
// document missing. The caller holds the entry's writers mutex (so it
// is the current entry and no Drop can race the deletion), having just
// discovered the document vanished — keeping the entry would leak it,
// since only a successful Drop otherwise deletes entries.
func (w *Warehouse) releaseIfGone(name string, err error) {
	if errors.Is(err, ErrNotFound) {
		w.locks.del(name)
	}
}

// lockWriter returns the document's lock with its writers mutex held.
// Drop removes lock entries, so after acquiring the mutex the entry is
// rechecked against the table and the acquisition retried if a
// concurrent Drop removed it — every writer critical section thus
// holds the mutex of the entry currently in the table. With mustExist,
// each attempt re-verifies the document first, so writers racing a
// Drop return ErrNotFound instead of re-creating table entries for
// names that no longer exist.
func (w *Warehouse) lockWriter(name string, mustExist bool) (*docLock, error) {
	for {
		if mustExist {
			if err := w.statGuard(name); err != nil {
				return nil, err
			}
		}
		dl := w.locks.get(name)
		dl.writers.Lock()
		if cur, ok := w.locks.peek(name); ok && cur == dl {
			return dl, nil
		}
		dl.writers.Unlock()
	}
}

// readDocFile parses the document file from disk.
func (w *Warehouse) readDocFile(name string) (*fuzzy.Tree, error) {
	data, err := os.ReadFile(w.docPath(name))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("warehouse: %w: %q", ErrNotFound, name)
	}
	if err != nil {
		return nil, err
	}
	ft, err := xmlio.ParseDoc(data)
	if err != nil {
		return nil, fmt.Errorf("warehouse: document %q corrupt: %w", name, err)
	}
	return ft, nil
}

// snapshot returns the current immutable tree of the document, loading
// and caching it on first use. The returned tree must not be mutated;
// it stays valid after the locks are released because mutations install
// fresh trees instead of editing in place.
//
// Cached trees are swapped atomically and never edited, so the fast
// path needs no lock. Names that exist neither in the cache nor on
// disk are rejected before touching the lock table, so clients probing
// arbitrary names can never grow it. The cold path rechecks table
// membership after locking, like lockWriter, so a reader never
// populates the cache while a concurrent Drop/Create cycle proceeds
// under a successor entry.
func (w *Warehouse) snapshot(name string) (*fuzzy.Tree, error) {
	for {
		if ft, ok := w.cacheGet(name); ok {
			return ft, nil
		}
		if err := w.statGuard(name); err != nil {
			return nil, err
		}
		dl := w.locks.get(name)
		dl.state.Lock()
		if cur, ok := w.locks.peek(name); !ok || cur != dl {
			dl.state.Unlock()
			continue
		}
		if ft, ok := w.cacheGet(name); ok {
			dl.state.Unlock()
			return ft, nil
		}
		ft, err := w.readDocFile(name)
		if err == nil {
			w.cacheSet(name, ft)
		} else if errors.Is(err, ErrNotFound) && dl.writers.TryLock() {
			// The document vanished between statGuard and the load, so
			// the locks.get above may have re-created an entry for a
			// name that no longer exists. No writer owns it (TryLock
			// succeeded — a blocked writer would recheck and retry),
			// so release it to keep the table bounded under churn.
			w.locks.del(name)
			dl.writers.Unlock()
		}
		dl.state.Unlock()
		return ft, err
	}
}

// install journals and applies one mutation under the document's state
// lock. The caller holds the document's writers lock and has done all
// expensive computation already, so the state lock — the one a
// cold-loading reader contends on — is held only for the journal
// appends and the file swap.
func (w *Warehouse) install(dl *docLock, rec Record, apply func() error) error {
	w.installMu.Lock()
	defer w.installMu.Unlock()
	dl.state.Lock()
	defer dl.state.Unlock()
	if _, err := w.journal.append(rec); err != nil {
		return err
	}
	if err := apply(); err != nil {
		// Best-effort abort marker: without it, recovery would roll
		// the journaled mutation forward even though the caller was
		// told it failed. If this append also fails (the disk is going
		// away), recovery re-applies the post-state — safe, if
		// surprising, since the journaled content is complete.
		w.journal.append(Record{Op: "abort"}) //nolint:errcheck
		return err
	}
	_, err := w.journal.append(Record{Op: "commit"})
	return err
}

// Create stores a new document under the given name.
func (w *Warehouse) Create(name string, ft *fuzzy.Tree) error {
	if err := validName(name); err != nil {
		return err
	}
	if err := ft.Validate(); err != nil {
		return err
	}
	data, err := xmlio.DocXML(ft)
	if err != nil {
		return err
	}
	release, err := w.startOp()
	if err != nil {
		return err
	}
	defer release()
	dl, err := w.lockWriter(name, false)
	if err != nil {
		return err
	}
	defer dl.writers.Unlock()
	if _, err := os.Stat(w.docPath(name)); err == nil {
		return fmt.Errorf("warehouse: %w: %q", ErrExists, name)
	}
	clone := ft.Clone()
	err = w.install(dl,
		Record{Op: "create", Doc: name, Content: string(data)},
		func() error {
			if err := w.writeDocFile(name, data); err != nil {
				return err
			}
			w.cacheSet(name, clone)
			return nil
		})
	if err != nil {
		// The document never came to exist (journal or file-write
		// failure), so the entry allocated for it must not outlive
		// this call — nothing else would ever delete it.
		if _, statErr := os.Stat(w.docPath(name)); os.IsNotExist(statErr) {
			w.locks.del(name)
		}
		return err
	}
	return nil
}

// Get returns a deep copy of the named document. The copy is made
// outside every lock.
func (w *Warehouse) Get(name string) (*fuzzy.Tree, error) {
	ft, err := w.readSnapshot(name)
	if err != nil {
		return nil, err
	}
	return ft.Clone(), nil
}

// GetXML returns the document serialized as pxml XML. Unlike Get it
// copies nothing: the snapshot is immutable, so it is serialized in
// place — the cheap path for read-heavy servers.
func (w *Warehouse) GetXML(name string) ([]byte, error) {
	ft, err := w.readSnapshot(name)
	if err != nil {
		return nil, err
	}
	return xmlio.DocXML(ft)
}

// List returns the sorted names of all stored documents.
func (w *Warehouse) List() ([]string, error) {
	release, err := w.startOp()
	if err != nil {
		return nil, err
	}
	defer release()
	entries, err := os.ReadDir(filepath.Join(w.dir, docsDir))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), docExt); ok && !e.IsDir() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Drop removes the named document.
func (w *Warehouse) Drop(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	release, err := w.startOp()
	if err != nil {
		return err
	}
	defer release()
	dl, err := w.lockWriter(name, true)
	if err != nil {
		return err
	}
	defer dl.writers.Unlock()
	// Re-verify now that the lock is held: a concurrent Drop may have
	// removed the document between statGuard and acquisition, in which
	// case the entry lockWriter re-created must be released too.
	if err := w.statGuard(name); err != nil {
		w.releaseIfGone(name, err)
		return err
	}
	err = w.install(dl,
		Record{Op: "drop", Doc: name},
		func() error {
			w.cacheDel(name)
			return os.Remove(w.docPath(name))
		})
	if err != nil {
		return err
	}
	// The document is gone; release its lock entry so create/drop
	// churn of unique names cannot grow the table. Writers blocked on
	// this entry re-check and retry (see lockWriter).
	w.locks.del(name)
	return nil
}

// Query evaluates a TPWJ query on the named document, returning answers
// with exact probabilities. Snapshots are immutable (updates install
// fresh trees), so evaluation runs after every lock is released —
// including the warehouse pin, so a slow query never stalls a pending
// Close or Compact, and queries on the same document proceed in
// parallel with each other and with the computation phase of a
// concurrent update.
func (w *Warehouse) Query(name string, q *tpwj.Query) ([]tpwj.ProbAnswer, error) {
	ft, err := w.readSnapshot(name)
	if err != nil {
		return nil, err
	}
	return tpwj.EvalFuzzy(q, ft)
}

// QueryMC is Query with Monte-Carlo probability estimation, for
// documents whose condition structure makes exact computation too
// expensive.
func (w *Warehouse) QueryMC(name string, q *tpwj.Query, samples int, r *rand.Rand) ([]tpwj.ProbAnswer, error) {
	ft, err := w.readSnapshot(name)
	if err != nil {
		return nil, err
	}
	return tpwj.EvalFuzzyMonteCarlo(q, ft, samples, r)
}

// readSnapshot validates the name and fetches the document's immutable
// snapshot, holding the warehouse pin only for the fetch itself so the
// caller can compute on the snapshot without blocking Close or Compact.
func (w *Warehouse) readSnapshot(name string) (*fuzzy.Tree, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	release, err := w.startOp()
	if err != nil {
		return nil, err
	}
	defer release()
	return w.snapshot(name)
}

// mutateDoc runs the shared writer path for document-transforming
// operations: pin the warehouse open, acquire the document's writers
// lock, snapshot, run compute outside the state lock (concurrent
// queries on the same document are never blocked by it), then journal
// and install the successor tree. compute returns the successor and
// the journal's Tx annotation. The lock-entry lifecycle bookkeeping
// (releaseIfGone on vanished documents) lives only here.
func (w *Warehouse) mutateDoc(name string, compute func(ft *fuzzy.Tree) (*fuzzy.Tree, string, error)) error {
	if err := validName(name); err != nil {
		return err
	}
	release, err := w.startOp()
	if err != nil {
		return err
	}
	defer release()
	dl, err := w.lockWriter(name, true)
	if err != nil {
		return err
	}
	defer dl.writers.Unlock()
	ft, err := w.snapshot(name)
	if err != nil {
		w.releaseIfGone(name, err)
		return err
	}
	next, txNote, err := compute(ft)
	if err != nil {
		return err
	}
	data, err := xmlio.DocXML(next)
	if err != nil {
		return err
	}
	return w.install(dl,
		Record{Op: "update", Doc: name, Tx: txNote, Content: string(data)},
		func() error {
			if err := w.writeDocFile(name, data); err != nil {
				return err
			}
			w.cacheSet(name, next)
			return nil
		})
}

// Update applies a probabilistic transaction to the named document,
// journaling and persisting the result durably.
func (w *Warehouse) Update(name string, tx *update.Transaction) (*update.FuzzyStats, error) {
	txXML, err := xupdate.TransactionXML(tx)
	if err != nil {
		return nil, err
	}
	var stats *update.FuzzyStats
	err = w.mutateDoc(name, func(ft *fuzzy.Tree) (*fuzzy.Tree, string, error) {
		next, s, err := tx.ApplyFuzzy(ft)
		if err != nil {
			return nil, "", err
		}
		stats = s
		return next, string(txXML), nil
	})
	if err != nil {
		return nil, err
	}
	return stats, nil
}

// Simplify runs fuzzy-tree simplification on the named document and
// persists the result.
func (w *Warehouse) Simplify(name string) (fuzzy.SimplifyStats, error) {
	var stats fuzzy.SimplifyStats
	err := w.mutateDoc(name, func(ft *fuzzy.Tree) (*fuzzy.Tree, string, error) {
		next := ft.Clone()
		stats = next.Simplify()
		return next, "<simplify/>", nil
	})
	if err != nil {
		return fuzzy.SimplifyStats{}, err
	}
	return stats, nil
}

// Info summarizes a stored document.
type Info struct {
	Name   string
	Nodes  int
	Events int
	Worlds int64
}

// Stat returns summary information about the named document.
func (w *Warehouse) Stat(name string) (Info, error) {
	ft, err := w.readSnapshot(name)
	if err != nil {
		return Info{}, err
	}
	return Info{
		Name:   name,
		Nodes:  ft.Size(),
		Events: ft.Table.Len(),
		Worlds: ft.WorldCount(),
	}, nil
}

// Journal returns all journal records (for audit and tests). It takes
// no install lock — stalling every mutation for the duration of a
// potentially large file read would be worse than the alternative —
// so a call concurrent with mutations may stop short at a record
// caught mid-append (the torn-tail semantics readJournal already has
// for crashes). Quiescent reads are exact.
func (w *Warehouse) Journal() ([]Record, error) {
	release, err := w.startOp()
	if err != nil {
		return nil, err
	}
	defer release()
	return readJournal(filepath.Join(w.dir, journalFile))
}

// Compact truncates the journal. Safe whenever the warehouse is in a
// committed state, which holds under the exclusive warehouse lock: it
// waits out all in-flight operations, so every document file already
// contains its latest post-state and the journal's only value is the
// audit trail, which Compact trades for space.
func (w *Warehouse) Compact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.journal.close(); err != nil {
		return err
	}
	path := filepath.Join(w.dir, journalFile)
	if err := os.Truncate(path, 0); err != nil {
		return err
	}
	j, _, err := openJournal(path)
	if err != nil {
		return err
	}
	w.journal = j
	return nil
}
