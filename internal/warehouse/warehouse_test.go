package warehouse

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
	"repro/internal/xmlio"
)

func openTemp(t *testing.T) *Warehouse {
	t.Helper()
	w, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func slide12() *fuzzy.Tree {
	return fuzzy.MustParseTree("A(B[w1 !w2], C(D[w2]))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
}

func TestCreateGetList(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc1", slide12()); err != nil {
		t.Fatal(err)
	}
	got, err := w.Get("doc1")
	if err != nil {
		t.Fatal(err)
	}
	if !fuzzy.Equal(got.Root, slide12().Root) {
		t.Errorf("Get = %s", fuzzy.Format(got.Root))
	}
	names, err := w.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "doc1" {
		t.Errorf("List = %v", names)
	}
}

func TestCreateValidation(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("", slide12()); err == nil {
		t.Error("empty name accepted")
	}
	if err := w.Create("../evil", slide12()); err == nil {
		t.Error("path traversal name accepted")
	}
	bad := fuzzy.New(fuzzy.MustParse("A(B[zz])"))
	if err := w.Create("bad", bad); err == nil {
		t.Error("invalid document accepted")
	}
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	if err := w.Create("doc", slide12()); err == nil {
		t.Error("duplicate create accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	a, _ := w.Get("doc")
	a.Root.Label = "MUTATED"
	b, _ := w.Get("doc")
	if b.Root.Label == "MUTATED" {
		t.Error("Get shares state between callers")
	}
}

func TestGetMissing(t *testing.T) {
	w := openTemp(t)
	if _, err := w.Get("nope"); err == nil {
		t.Error("missing document accepted")
	}
}

func TestDrop(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	if err := w.Drop("doc"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Get("doc"); err == nil {
		t.Error("dropped document still accessible")
	}
	if err := w.Drop("doc"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestQuery(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	answers, err := w.Query("doc", tpwj.MustParseQuery("A(B)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || math.Abs(answers[0].P-0.24) > 1e-12 {
		t.Errorf("answers = %v", answers)
	}
}

func TestUpdatePersists(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	tx := update.New(tpwj.MustParseQuery("A $a"), 0.9,
		update.Insert("a", tree.MustParse("N:new")))
	stats, err := w.Update("doc", tx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 1 {
		t.Errorf("stats = %+v", stats)
	}
	w.Close()

	// Reopen: the update must have been persisted.
	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, err := w2.Get("doc")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	got.Root.Walk(func(n *fuzzy.Node) bool {
		if n.Label == "N" {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Errorf("inserted node lost after reopen: %s", fuzzy.Format(got.Root))
	}
}

func TestSimplifyPersists(t *testing.T) {
	w := openTemp(t)
	ft := fuzzy.MustParseTree("A(B[w1 !w1], C[w2])",
		map[event.ID]float64{"w1": 0.5, "w2": 0.7})
	if err := w.Create("doc", ft); err != nil {
		t.Fatal(err)
	}
	stats, err := w.Simplify("doc")
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodesRemoved != 1 {
		t.Errorf("stats = %+v", stats)
	}
	got, _ := w.Get("doc")
	if !fuzzy.Equal(got.Root, fuzzy.MustParse("A(C[w2])")) {
		t.Errorf("after simplify: %s", fuzzy.Format(got.Root))
	}
}

func TestStat(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	info, err := w.Stat("doc")
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != 4 || info.Events != 2 || info.Worlds != 4 {
		t.Errorf("Info = %+v", info)
	}
}

func TestJournalAudit(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	tx := update.New(tpwj.MustParseQuery("A $a"), 1, update.Insert("a", tree.MustParse("N")))
	if _, err := w.Update("doc", tx); err != nil {
		t.Fatal(err)
	}
	recs, err := w.Journal()
	if err != nil {
		t.Fatal(err)
	}
	// create, commit, update, commit.
	if len(recs) != 4 {
		t.Fatalf("journal records = %d: %+v", len(recs), recs)
	}
	if recs[0].Op != "create" || recs[1].Op != "commit" ||
		recs[2].Op != "update" || recs[3].Op != "commit" {
		t.Errorf("ops = %s %s %s %s", recs[0].Op, recs[1].Op, recs[2].Op, recs[3].Op)
	}
	if !strings.Contains(recs[2].Tx, "insert") {
		t.Errorf("update record lacks transaction: %q", recs[2].Tx)
	}
	for _, r := range recs {
		if r.Seq == 0 {
			t.Error("record without sequence number")
		}
	}
}

// TestRecoveryRollsForward simulates a crash between the journal append
// and the document file replacement: on reopen the journaled post-state
// must win.
func TestRecoveryRollsForward(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Forge a crash: append an uncommitted update record whose content
	// differs from the file on disk.
	newDoc := fuzzy.MustParseTree("A(RECOVERED)", nil)
	j, _, err := openJournal(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	content, err := docBytes(newDoc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.append(Record{Op: "update", Doc: "doc", Tx: "<forged/>", Content: string(content)}); err != nil {
		t.Fatal(err)
	}
	j.close()

	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, err := w2.Get("doc")
	if err != nil {
		t.Fatal(err)
	}
	if !fuzzy.Equal(got.Root, newDoc.Root) {
		t.Errorf("recovery did not roll forward: %s", fuzzy.Format(got.Root))
	}
	// The journal must now end with a commit.
	recs, _ := w2.Journal()
	if recs[len(recs)-1].Op != "commit" {
		t.Error("recovery did not append commit marker")
	}
}

// TestRecoveryTornJournalTail: a partial last line (torn write) is
// ignored.
func TestRecoveryTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	w.Close()

	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":99,"op":"upd`) // torn record
	f.Close()

	w2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn journal tail broke recovery: %v", err)
	}
	defer w2.Close()
	if _, err := w2.Get("doc"); err != nil {
		t.Errorf("document lost: %v", err)
	}
}

// TestRecoveryDropRollsForward: an uncommitted drop is re-executed.
func TestRecoveryDropRollsForward(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	w.Close()

	j, _, err := openJournal(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.append(Record{Op: "drop", Doc: "doc"}); err != nil {
		t.Fatal(err)
	}
	j.close()

	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, err := w2.Get("doc"); err == nil {
		t.Error("dropped document survived recovery")
	}
}

func TestCorruptDocumentReported(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file behind the warehouse's back and drop the cache by
	// reopening.
	w.Close()
	os.WriteFile(filepath.Join(dir, docsDir, "doc"+docExt), []byte("not xml"), 0o644)
	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, err := w2.Get("doc"); err == nil {
		t.Error("corrupt document accepted")
	}
}

func TestConcurrentQueriesAndUpdates(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := w.Query("doc", tpwj.MustParseQuery("A(//D)")); err != nil {
					errs <- err
				}
			}
		}()
		go func() {
			defer wg.Done()
			tx := update.New(tpwj.MustParseQuery("A $a"), 0.5,
				update.Insert("a", tree.MustParse("N")))
			if _, err := w.Update("doc", tx); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All 8 inserts must be present.
	got, _ := w.Get("doc")
	count := 0
	got.Root.Walk(func(n *fuzzy.Node) bool {
		if n.Label == "N" {
			count++
		}
		return true
	})
	if count != 8 {
		t.Errorf("inserted nodes = %d, want 8", count)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	recs, err := w.Journal()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("journal not empty after compact: %d records", len(recs))
	}
	// The warehouse keeps working and the document survives a reopen.
	tx := update.New(tpwj.MustParseQuery("A $a"), 1, update.Insert("a", tree.MustParse("N")))
	if _, err := w.Update("doc", tx); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, err := w2.Get("doc"); err != nil {
		t.Errorf("document lost after compact+reopen: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Compact(); err == nil {
		t.Error("compact after close accepted")
	}
}

func TestClosedWarehouseRejectsMutations(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Create("doc2", slide12()); err == nil {
		t.Error("create after close accepted")
	}
}

// docBytes serializes a fuzzy tree the way the warehouse does (helper for
// the recovery test).
func docBytes(ft *fuzzy.Tree) ([]byte, error) {
	return xmlio.DocXML(ft)
}
