package warehouse

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
	"repro/internal/vfs"
	"repro/internal/xmlio"
)

func openTemp(t *testing.T) *Warehouse {
	t.Helper()
	w, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func slide12() *fuzzy.Tree {
	return fuzzy.MustParseTree("A(B[w1 !w2], C(D[w2]))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
}

func TestCreateGetList(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc1", slide12()); err != nil {
		t.Fatal(err)
	}
	got, err := w.Get("doc1")
	if err != nil {
		t.Fatal(err)
	}
	if !fuzzy.Equal(got.Root, slide12().Root) {
		t.Errorf("Get = %s", fuzzy.Format(got.Root))
	}
	names, err := w.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "doc1" {
		t.Errorf("List = %v", names)
	}
}

func TestCreateValidation(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("", slide12()); err == nil {
		t.Error("empty name accepted")
	}
	if err := w.Create("../evil", slide12()); err == nil {
		t.Error("path traversal name accepted")
	}
	bad := fuzzy.New(fuzzy.MustParse("A(B[zz])"))
	if err := w.Create("bad", bad); err == nil {
		t.Error("invalid document accepted")
	}
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	if err := w.Create("doc", slide12()); err == nil {
		t.Error("duplicate create accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	a, _ := w.Get("doc")
	a.Root.Label = "MUTATED"
	b, _ := w.Get("doc")
	if b.Root.Label == "MUTATED" {
		t.Error("Get shares state between callers")
	}
}

func TestGetMissing(t *testing.T) {
	w := openTemp(t)
	if _, err := w.Get("nope"); err == nil {
		t.Error("missing document accepted")
	}
}

func TestDrop(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	if err := w.Drop("doc"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Get("doc"); err == nil {
		t.Error("dropped document still accessible")
	}
	if err := w.Drop("doc"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestQuery(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	answers, err := w.Query("doc", tpwj.MustParseQuery("A(B)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || math.Abs(answers[0].P-0.24) > 1e-12 {
		t.Errorf("answers = %v", answers)
	}
}

func TestUpdatePersists(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	tx := update.New(tpwj.MustParseQuery("A $a"), 0.9,
		update.Insert("a", tree.MustParse("N:new")))
	stats, err := w.Update("doc", tx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 1 {
		t.Errorf("stats = %+v", stats)
	}
	w.Close()

	// Reopen: the update must have been persisted.
	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, err := w2.Get("doc")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	got.Root.Walk(func(n *fuzzy.Node) bool {
		if n.Label == "N" {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Errorf("inserted node lost after reopen: %s", fuzzy.Format(got.Root))
	}
}

func TestSimplifyPersists(t *testing.T) {
	w := openTemp(t)
	ft := fuzzy.MustParseTree("A(B[w1 !w1], C[w2])",
		map[event.ID]float64{"w1": 0.5, "w2": 0.7})
	if err := w.Create("doc", ft); err != nil {
		t.Fatal(err)
	}
	stats, err := w.Simplify("doc")
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodesRemoved != 1 {
		t.Errorf("stats = %+v", stats)
	}
	got, _ := w.Get("doc")
	if !fuzzy.Equal(got.Root, fuzzy.MustParse("A(C[w2])")) {
		t.Errorf("after simplify: %s", fuzzy.Format(got.Root))
	}
}

func TestStat(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	info, err := w.Stat("doc")
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != 4 || info.Events != 2 || info.Worlds != 4 {
		t.Errorf("Info = %+v", info)
	}
}

func TestJournalAudit(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	tx := update.New(tpwj.MustParseQuery("A $a"), 1, update.Insert("a", tree.MustParse("N")))
	if _, err := w.Update("doc", tx); err != nil {
		t.Fatal(err)
	}
	recs, err := w.Journal()
	if err != nil {
		t.Fatal(err)
	}
	// create, commit, update, commit.
	if len(recs) != 4 {
		t.Fatalf("journal records = %d: %+v", len(recs), recs)
	}
	if recs[0].Op != OpCreate || recs[1].Op != OpCommit ||
		recs[2].Op != OpUpdate || recs[3].Op != OpCommit {
		t.Errorf("ops = %s %s %s %s", recs[0].Op, recs[1].Op, recs[2].Op, recs[3].Op)
	}
	if !strings.Contains(recs[2].Tx, "insert") {
		t.Errorf("update record lacks transaction: %q", recs[2].Tx)
	}
	for _, r := range recs {
		if r.Seq == 0 {
			t.Error("record without sequence number")
		}
	}
	// Each marker names its mutation by RefSeq.
	if recs[1].RefSeq != recs[0].Seq || recs[3].RefSeq != recs[2].Seq {
		t.Errorf("marker refs = %d %d, want %d %d",
			recs[1].RefSeq, recs[3].RefSeq, recs[0].Seq, recs[2].Seq)
	}
}

// TestRecoveryRollsBackUnmarkedUpdate simulates a crash during the
// durable phase of an update: the journal holds the mutation record
// but no commit marker. The caller was never acknowledged, so on
// reopen the mutation must be rolled back to the last committed state
// and resolved with an abort marker.
func TestRecoveryRollsBackUnmarkedUpdate(t *testing.T) {
	for _, backend := range storeBackends {
		t.Run(backend, func(t *testing.T) {
			dir := t.TempDir()
			w := openB(t, dir, backend)
			if err := w.Create("doc", slide12()); err != nil {
				t.Fatal(err)
			}
			w.Close()

			// Forge the crash: an unmarked update record, with the document
			// file already swapped to the new content (the worst case — the
			// apply ran, only the commit marker is missing).
			newDoc := fuzzy.MustParseTree("A(UNCOMMITTED)", nil)
			content, err := docBytes(newDoc)
			if err != nil {
				t.Fatal(err)
			}
			seqs := forgeJournal(t, dir, backend, []Record{
				{Op: OpUpdate, Doc: "doc", Tx: "<forged/>", Content: string(content)},
			})
			seq := seqs[0]
			seedDocs(t, dir, backend, map[string]string{"doc": string(content)})

			w2 := openB(t, dir, backend)
			defer w2.Close()
			got, err := w2.Get("doc")
			if err != nil {
				t.Fatal(err)
			}
			if !fuzzy.Equal(got.Root, slide12().Root) {
				t.Errorf("recovery did not roll back: %s", fuzzy.Format(got.Root))
			}
			// The journal must now resolve the forged mutation with an abort.
			recs, _ := w2.Journal()
			last := recs[len(recs)-1]
			if last.Op != OpAbort || last.RefSeq != seq {
				t.Errorf("journal ends with %s ref %d, want abort ref %d", last.Op, last.RefSeq, seq)
			}
			if s := w2.JournalStats(); s.RecoveryRollbacks != 1 || s.RecoveryReplays != 1 {
				t.Errorf("recovery counters = %+v, want 1 rollback, 1 replay", s)
			}
		})
	}
}

// TestRecoveryTornJournalTail: a partial last line (torn write) is
// ignored.
func TestRecoveryTornJournalTail(t *testing.T) {
	for _, backend := range storeBackends {
		t.Run(backend, func(t *testing.T) {
			dir := t.TempDir()
			w := openB(t, dir, backend)
			if err := w.Create("doc", slide12()); err != nil {
				t.Fatal(err)
			}
			w.Close()

			tearJournalTail(t, dir, backend)

			w2, err := OpenBackend(dir, backend, vfs.OS)
			if err != nil {
				t.Fatalf("torn journal tail broke recovery: %v", err)
			}
			defer w2.Close()
			if _, err := w2.Get("doc"); err != nil {
				t.Errorf("document lost: %v", err)
			}
		})
	}
}

// TestRecoveryDropRollsBack: an unmarked drop never happened — the
// document is restored from its committed create even when the drop's
// file removal had already run.
func TestRecoveryDropRollsBack(t *testing.T) {
	for _, backend := range storeBackends {
		t.Run(backend, func(t *testing.T) {
			dir := t.TempDir()
			w := openB(t, dir, backend)
			if err := w.Create("doc", slide12()); err != nil {
				t.Fatal(err)
			}
			w.Close()

			forgeJournal(t, dir, backend, []Record{{Op: OpDrop, Doc: "doc"}})
			// Simulate the crash after the drop removed the file.
			seedDocs(t, dir, backend, nil)

			w2 := openB(t, dir, backend)
			defer w2.Close()
			got, err := w2.Get("doc")
			if err != nil {
				t.Fatalf("unmarked drop lost the document: %v", err)
			}
			if !fuzzy.Equal(got.Root, slide12().Root) {
				t.Errorf("restored document = %s", fuzzy.Format(got.Root))
			}
		})
	}
}

func TestCorruptDocumentReported(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	// Compact first: with the create still journaled, recovery would
	// repair the corruption from the committed post-state (see
	// TestRecoveryRepairsCorruptFile); after compaction the file is
	// authoritative and the damage must surface.
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file behind the warehouse's back and drop the cache by
	// reopening.
	w.Close()
	os.WriteFile(filepath.Join(dir, docsDir, "doc"+docExt), []byte("not xml"), 0o644)
	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, err := w2.Get("doc"); err == nil {
		t.Error("corrupt document accepted")
	}
}

// TestRecoveryRepairsCorruptFile: while the journal still holds a
// document's committed post-state, recovery rewrites a damaged file
// from it on open — the journal, not the file, is the source of truth.
func TestRecoveryRepairsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	w.Close()
	os.WriteFile(filepath.Join(dir, docsDir, "doc"+docExt), []byte("not xml"), 0o644)
	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, err := w2.Get("doc")
	if err != nil {
		t.Fatalf("journaled document not repaired: %v", err)
	}
	if !fuzzy.Equal(got.Root, slide12().Root) {
		t.Errorf("repaired document = %s", fuzzy.Format(got.Root))
	}
	if s := w2.JournalStats(); s.RecoveryReplays != 1 {
		t.Errorf("recovery replays = %d, want 1", s.RecoveryReplays)
	}
}

func TestConcurrentQueriesAndUpdates(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := w.Query("doc", tpwj.MustParseQuery("A(//D)")); err != nil {
					errs <- err
				}
			}
		}()
		go func() {
			defer wg.Done()
			tx := update.New(tpwj.MustParseQuery("A $a"), 0.5,
				update.Insert("a", tree.MustParse("N")))
			if _, err := w.Update("doc", tx); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All 8 inserts must be present.
	got, _ := w.Get("doc")
	count := 0
	got.Root.Walk(func(n *fuzzy.Node) bool {
		if n.Label == "N" {
			count++
		}
		return true
	})
	if count != 8 {
		t.Errorf("inserted nodes = %d, want 8", count)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	recs, err := w.Journal()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("journal not empty after compact: %d records", len(recs))
	}
	// The warehouse keeps working and the document survives a reopen.
	tx := update.New(tpwj.MustParseQuery("A $a"), 1, update.Insert("a", tree.MustParse("N")))
	if _, err := w.Update("doc", tx); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, err := w2.Get("doc"); err != nil {
		t.Errorf("document lost after compact+reopen: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Compact(); err == nil {
		t.Error("compact after close accepted")
	}
}

func TestClosedWarehouseRejectsMutations(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Create("doc2", slide12()); err == nil {
		t.Error("create after close accepted")
	}
}

// docBytes serializes a fuzzy tree the way the warehouse does (helper for
// the recovery test).
func docBytes(ft *fuzzy.Tree) ([]byte, error) {
	return xmlio.DocXML(ft)
}
