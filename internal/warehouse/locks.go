package warehouse

import "sync"

// nStripes sizes the lock table. Lookups hash the document name to a
// stripe, so handing out locks never becomes a global contention point.
const nStripes = 64

// docLock coordinates access to one document.
//
// writers serializes mutations (Create, Update, Simplify, Drop) on the
// document; it is held across the whole mutation so concurrent writers
// see each other's results. Expensive work — query valuation, update
// application, serialization — runs while holding only writers, never
// state, so readers proceed in parallel with it.
//
// state guards the installed snapshot (the cache entry and the document
// file): writers hold it just long enough to journal and install the
// new state, and a cold-loading reader holds it while populating the
// cache from disk. The hot read path (cache hit) takes no per-document
// lock at all — installed trees are immutable and swapped atomically.
type docLock struct {
	writers sync.Mutex
	state   sync.Mutex
}

// lockTable hands out per-document locks from a striped map of lazily
// created entries. Callers guard get behind an existence check (see
// Warehouse.statGuard), Drop deletes its entry, and operations that
// find the document vanished release any entry they re-created in the
// race window (see Warehouse.snapshot and releaseIfGone) — so the
// table is bounded by documents that currently exist or are being
// created, never by arbitrary names clients probe or create/drop
// churn.
type lockTable struct {
	stripes [nStripes]struct {
		mu    sync.Mutex
		locks map[string]*docLock
	}
}

func (t *lockTable) get(name string) *docLock {
	s := &t.stripes[fnv32(name)%nStripes]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.locks == nil {
		s.locks = make(map[string]*docLock)
	}
	dl, ok := s.locks[name]
	if !ok {
		dl = &docLock{}
		s.locks[name] = dl
	}
	return dl
}

// peek returns the entry without creating one.
func (t *lockTable) peek(name string) (*docLock, bool) {
	s := &t.stripes[fnv32(name)%nStripes]
	s.mu.Lock()
	defer s.mu.Unlock()
	dl, ok := s.locks[name]
	return dl, ok
}

// del removes the entry. Goroutines still blocked on the removed
// lock's mutexes recheck table membership after acquiring them (see
// Warehouse.lockWriter and Warehouse.snapshot) and retry on the
// successor entry.
func (t *lockTable) del(name string) {
	s := &t.stripes[fnv32(name)%nStripes]
	s.mu.Lock()
	delete(s.locks, name)
	s.mu.Unlock()
}

// size reports the number of allocated lock entries (for tests).
func (t *lockTable) size() int {
	n := 0
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		n += len(s.locks)
		s.mu.Unlock()
	}
	return n
}

// fnv32 is the 32-bit FNV-1a hash.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
