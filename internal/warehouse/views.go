package warehouse

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/fuzzy"
	"repro/internal/obs"
	"repro/internal/tpwj"
	"repro/internal/view"
)

// View sentinel errors; test with errors.Is.
var (
	// ErrViewNotFound reports an operation on a missing view.
	ErrViewNotFound = errors.New("no such view")
	// ErrViewExists reports registering a view name already in use on
	// the document.
	ErrViewExists = errors.New("view already exists")
	// ErrInvalidView reports a view definition that does not compile
	// (bad query text or unknown syntax).
	ErrInvalidView = errors.New("invalid view definition")
)

// ViewResult is one materialized view read: the definition and the
// current answer set. Stale reports that a maintenance pass was in
// flight (or the state trailed the document) when the answers were
// copied out: the answers are the complete, consistent result of the
// view's query against the document as of the last completed
// maintenance pass, not of the mutation currently being applied. See
// docs/ARCHITECTURE.md for the consistency model.
type ViewResult struct {
	Doc     string
	Name    string
	Query   string
	Syntax  string
	Answers []tpwj.ProbAnswer
	Stale   bool
}

// ViewStats reports the materialized-view counters of this warehouse.
// Served by pxserve under /stats as "views".
type ViewStats struct {
	// Registered is the number of currently registered views.
	Registered int `json:"registered"`
	// Skipped counts maintenance passes resolved by the overlap
	// analysis alone: the update provably could not affect the view.
	Skipped int64 `json:"maintenance_skipped"`
	// Incremental counts maintenance passes that re-ran the symbolic
	// evaluation and recomputed only changed answers' probabilities.
	Incremental int64 `json:"maintenance_incremental"`
	// FullRecomputes counts maintenance passes (and registrations)
	// that evaluated the view from scratch.
	FullRecomputes int64 `json:"full_recomputes"`
	// AnswersReused / AnswersRecomputed count answer probabilities
	// kept versus re-derived across incremental passes; their ratio is
	// the affected-answer ratio.
	AnswersReused     int64 `json:"answers_reused"`
	AnswersRecomputed int64 `json:"answers_recomputed"`
	// AffectedAnswerRatio is AnswersRecomputed over all answers
	// handled by incremental passes (0 when none ran).
	AffectedAnswerRatio float64 `json:"affected_answer_ratio"`
	// StaleReads counts ReadView calls served from a previous state
	// while a maintenance pass was in flight.
	StaleReads int64 `json:"stale_reads"`
}

// viewHandle is the registry's mutable slot for one view. def is
// immutable after registration; v (the materialized state, an
// immutable view.View), tree (the snapshot v was computed against) and
// maintaining are guarded by mu. Holders of mu do only pointer work —
// evaluation always runs outside it — so ReadView never blocks on a
// maintenance pass.
type viewHandle struct {
	def view.Definition

	mu          sync.Mutex
	q           *tpwj.Query // compiled lazily for recovered definitions
	v           *view.View
	tree        *fuzzy.Tree
	maintaining bool
}

// compiled returns the handle's compiled query, compiling the
// definition on first use (registrations compile eagerly; definitions
// replayed from the journal or the compaction snapshot do it here).
// The caller must hold h.mu.
func (h *viewHandle) compiled() (*tpwj.Query, error) {
	if h.q == nil {
		q, err := h.def.Compile()
		if err != nil {
			return nil, fmt.Errorf("warehouse: view %q: %w", h.def.Name, err)
		}
		h.q = q
	}
	return h.q, nil
}

// viewRegistry maps document → view name → handle, and accumulates the
// maintenance counters. The registry mutex guards only the maps;
// per-view state is guarded by each handle's own mutex.
type viewRegistry struct {
	mu    sync.Mutex
	byDoc map[string]map[string]*viewHandle

	skipped           *obs.Counter
	incremental       *obs.Counter
	full              *obs.Counter
	answersReused     *obs.Counter
	answersRecomputed *obs.Counter
	staleReads        *obs.Counter
}

// initMetrics registers the maintenance counters on the warehouse's
// registry. Called once from Open, before the warehouse is shared.
func (r *viewRegistry) initMetrics(reg *obs.Registry) {
	r.skipped = reg.Counter("px_view_maintenance_total", "view maintenance passes by tier", obs.L("tier", "skip"))
	r.incremental = reg.Counter("px_view_maintenance_total", "view maintenance passes by tier", obs.L("tier", "incremental"))
	r.full = reg.Counter("px_view_maintenance_total", "view maintenance passes by tier", obs.L("tier", "recompute"))
	r.answersReused = reg.Counter("px_view_answers_total", "answer probabilities handled by incremental passes", obs.L("outcome", "reused"))
	r.answersRecomputed = reg.Counter("px_view_answers_total", "answer probabilities handled by incremental passes", obs.L("outcome", "recomputed"))
	r.staleReads = reg.Counter("px_view_stale_reads_total", "ReadView calls served a previous state during maintenance")
}

func (r *viewRegistry) get(doc, name string) (*viewHandle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.byDoc[doc][name]
	return h, ok
}

// set installs a handle for the definition, replacing any previous one.
func (r *viewRegistry) set(doc string, h *viewHandle) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byDoc == nil {
		r.byDoc = make(map[string]map[string]*viewHandle)
	}
	m := r.byDoc[doc]
	if m == nil {
		m = make(map[string]*viewHandle)
		r.byDoc[doc] = m
	}
	m[h.def.Name] = h
}

func (r *viewRegistry) del(doc, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byDoc[doc]; m != nil {
		delete(m, name)
		if len(m) == 0 {
			delete(r.byDoc, doc)
		}
	}
}

func (r *viewRegistry) delDoc(doc string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.byDoc, doc)
}

// forDoc returns the document's handles, sorted by view name so
// maintenance runs in deterministic order.
func (r *viewRegistry) forDoc(doc string) []*viewHandle {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.byDoc[doc]
	out := make([]*viewHandle, 0, len(m))
	for _, h := range m {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].def.Name < out[j].def.Name })
	return out
}

// defs returns all definitions, keyed by document, for the compaction
// snapshot.
func (r *viewRegistry) defs() map[string][]view.Definition {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]view.Definition, len(r.byDoc))
	for doc, m := range r.byDoc {
		for _, h := range m {
			out[doc] = append(out[doc], h.def)
		}
		sort.Slice(out[doc], func(i, j int) bool { return out[doc][i].Name < out[doc][j].Name })
	}
	return out
}

// count returns the number of registered views.
func (r *viewRegistry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, m := range r.byDoc {
		n += len(m)
	}
	return n
}

// reset drops every handle but keeps the counter handles (they are
// registered once on the warehouse's registry and must stay monotonic
// across Reopen).
func (r *viewRegistry) reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byDoc = nil
}

// pruneMissing drops every document's views unless exists(doc).
func (r *viewRegistry) pruneMissing(exists func(doc string) bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for doc := range r.byDoc {
		if !exists(doc) {
			delete(r.byDoc, doc)
		}
	}
}

// record folds one maintenance result into the counters and the
// requesting mutation's cost accumulator (nil outside a request).
func (r *viewRegistry) record(cost *obs.Cost, res view.Result) {
	switch res.Outcome {
	case view.Skipped:
		obs.Charge(cost, obs.CostViewMaintSkipped, r.skipped, 1)
	case view.Incremental:
		obs.Charge(cost, obs.CostViewMaintIncremental, r.incremental, 1)
		obs.Charge(cost, obs.CostViewAnswersReused, r.answersReused, int64(res.Reused))
		obs.Charge(cost, obs.CostViewAnswersRecomputed, r.answersRecomputed, int64(res.Recomputed))
	case view.Full:
		obs.Charge(cost, obs.CostViewMaintRecomputed, r.full, 1)
	}
}

// ViewStats returns the warehouse's materialized-view counters.
func (w *Warehouse) ViewStats() ViewStats {
	r := &w.views
	s := ViewStats{
		Registered:        r.count(),
		Skipped:           r.skipped.Value(),
		Incremental:       r.incremental.Value(),
		FullRecomputes:    r.full.Value(),
		AnswersReused:     r.answersReused.Value(),
		AnswersRecomputed: r.answersRecomputed.Value(),
		StaleReads:        r.staleReads.Value(),
	}
	if total := s.AnswersReused + s.AnswersRecomputed; total > 0 {
		s.AffectedAnswerRatio = float64(s.AnswersRecomputed) / float64(total)
	}
	return s
}

// RegisterView registers (and eagerly materializes) a named view of a
// TPWJ or XPath query over the document. The registration is journaled
// with the same two-record protocol as document mutations, so it
// survives crash recovery; the answer set is derived state and is
// re-materialized on demand after recovery. The initial answers are
// returned.
func (w *Warehouse) RegisterView(doc, name, query, syntax string) (*ViewResult, error) {
	return w.RegisterViewCtx(context.Background(), doc, name, query, syntax)
}

// RegisterViewCtx is RegisterView with a context: the materialization
// and journal install record spans when the context carries an obs
// trace.
func (w *Warehouse) RegisterViewCtx(ctx context.Context, doc, name, query, syntax string) (*ViewResult, error) {
	if err := validName(doc); err != nil {
		return nil, err
	}
	if err := validName(name); err != nil {
		return nil, err
	}
	def := view.Definition{Name: name, Query: query, Syntax: syntax}
	q, err := def.Compile()
	if err != nil {
		return nil, fmt.Errorf("warehouse: %w: %v", ErrInvalidView, err)
	}
	release, err := w.startMutation()
	if err != nil {
		return nil, err
	}
	defer release()
	dl, err := w.lockWriter(doc, true)
	if err != nil {
		return nil, err
	}
	defer dl.writers.Unlock()
	if _, ok := w.views.get(doc, name); ok {
		return nil, fmt.Errorf("warehouse: %w: %q on %q", ErrViewExists, name, doc)
	}
	ft, err := w.snapshot(doc)
	if err != nil {
		w.releaseIfGone(doc, err)
		return nil, err
	}
	// Materialize outside the state lock: the writers lock already
	// serializes this against mutations of the document, and readers
	// must not wait on query evaluation.
	_, mspan := obs.StartSpan(ctx, "view.materialize")
	v, err := view.MaterializeCtx(ctx, def, q, ft)
	mspan.End()
	if err != nil {
		return nil, err
	}
	h := &viewHandle{def: def, q: q, v: v, tree: ft}
	err = w.install(ctx, dl,
		Record{Op: OpViewRegister, Doc: doc, View: name, Query: query, Syntax: syntax},
		func(bool) error {
			w.views.set(doc, h)
			return nil
		})
	if err != nil {
		return nil, err
	}
	obs.Charge(obs.CostFromContext(ctx), obs.CostViewMaintRecomputed, w.views.full, 1)
	return &ViewResult{Doc: doc, Name: name, Query: query, Syntax: syntax, Answers: v.Answers()}, nil
}

// DropView removes a registered view, journaled like a registration.
func (w *Warehouse) DropView(doc, name string) error {
	if err := validName(doc); err != nil {
		return err
	}
	if err := validName(name); err != nil {
		return err
	}
	release, err := w.startMutation()
	if err != nil {
		return err
	}
	defer release()
	dl, err := w.lockWriter(doc, true)
	if err != nil {
		return err
	}
	defer dl.writers.Unlock()
	if _, ok := w.views.get(doc, name); !ok {
		return fmt.Errorf("warehouse: %w: %q on %q", ErrViewNotFound, name, doc)
	}
	return w.install(context.Background(), dl,
		Record{Op: OpViewDrop, Doc: doc, View: name},
		func(bool) error {
			w.views.del(doc, name)
			return nil
		})
}

// ListViews returns the document's view definitions, sorted by name.
func (w *Warehouse) ListViews(doc string) ([]view.Definition, error) {
	if err := validName(doc); err != nil {
		return nil, err
	}
	release, err := w.startOp()
	if err != nil {
		return nil, err
	}
	defer release()
	if err := w.statGuard(doc); err != nil {
		return nil, err
	}
	handles := w.views.forDoc(doc)
	out := make([]view.Definition, len(handles))
	for i, h := range handles {
		out[i] = h.def
	}
	return out, nil
}

// ReadView returns the view's materialized answers. It never blocks on
// a writer: while a mutation's maintenance pass is in flight (or
// imminent — the window between a mutation's install and the pass
// reaching this view), the previous answer set is returned with Stale
// set — a complete, consistent result against the pre-mutation
// document. A view with no materialized state at all (first read after
// recovery) is materialized here, against the current snapshot.
func (w *Warehouse) ReadView(doc, name string) (*ViewResult, error) {
	return w.ReadViewCtx(context.Background(), doc, name)
}

// ReadViewCtx is ReadView with a context: serving a materialized state
// never consults it (pointer work only), but the lazy materialization
// of a never-materialized view honors cancellation.
func (w *Warehouse) ReadViewCtx(ctx context.Context, doc, name string) (*ViewResult, error) {
	if err := validName(doc); err != nil {
		return nil, err
	}
	if err := validName(name); err != nil {
		return nil, err
	}
	release, err := w.startOp()
	if err != nil {
		return nil, err
	}
	defer release()
	h, ok := w.views.get(doc, name)
	if !ok {
		return nil, fmt.Errorf("warehouse: %w: %q on %q", ErrViewNotFound, name, doc)
	}
	res := &ViewResult{Doc: doc, Name: name, Query: h.def.Query, Syntax: h.def.Syntax}
	for {
		cur, err := w.snapshot(doc)
		if err != nil {
			return nil, err
		}
		h.mu.Lock()
		if h.v != nil {
			// A state trailing the snapshot with no maintaining flag
			// set is the window between a mutation's install and its
			// maintenance pass reaching this handle (maintenance always
			// runs before the mutation returns): serve it stale like an
			// in-flight pass, rather than paying a full materialization
			// the imminent pass would duplicate.
			res.Answers = h.v.Answers()
			res.Stale = h.maintaining || h.tree != cur
			h.mu.Unlock()
			if res.Stale {
				w.views.staleReads.Add(1)
			}
			return res, nil
		}
		// Never materialized (first read after recovery, or a failed
		// maintenance pass): evaluate against the current snapshot,
		// outside the handle mutex.
		q, err := h.compiled()
		h.mu.Unlock()
		if err != nil {
			return nil, err
		}
		v, err := view.MaterializeCtx(ctx, h.def, q, cur)
		if err != nil {
			return nil, err
		}
		obs.Charge(obs.CostFromContext(ctx), obs.CostViewMaintRecomputed, w.views.full, 1)
		h.mu.Lock()
		if h.v == nil && !h.maintaining {
			h.v, h.tree = v, cur
			h.mu.Unlock()
			res.Answers = v.Answers()
			return res, nil
		}
		if h.maintaining && h.v == nil {
			// A maintenance pass is re-materializing concurrently; our
			// result is a complete answer set against the pre-pass
			// snapshot — exactly what a stale read promises.
			h.mu.Unlock()
			w.views.staleReads.Add(1)
			res.Answers = v.Answers()
			res.Stale = true
			return res, nil
		}
		// A maintenance pass installed a state while we evaluated; it
		// is at least as fresh as ours. Retry: the next iteration
		// serves it with its staleness judged against a fresh snapshot.
		h.mu.Unlock()
	}
}

// maintainViews brings every view of the document from the pre-update
// snapshot to the post-update snapshot. Called by mutateDoc after the
// install, still under the document's writers lock (so passes of
// successive updates never interleave) but outside every handle mutex
// (so concurrent ReadView calls serve the previous state marked stale
// instead of blocking). delta is the update's structural footprint;
// nil forces affected views to recompute from scratch. A cancelled
// context aborts the remaining passes: the document mutation is already
// durable at this point, so the affected views are simply left
// unmaterialized and the next ReadView rebuilds them lazily.
func (w *Warehouse) maintainViews(ctx context.Context, doc string, pre, next *fuzzy.Tree, delta *view.Delta) {
	cost := obs.CostFromContext(ctx)
	for _, h := range w.views.forDoc(doc) {
		h.mu.Lock()
		old, oldTree := h.v, h.tree
		q, err := h.compiled()
		h.maintaining = true
		h.mu.Unlock()

		var nv *view.View
		if err == nil {
			if old != nil && oldTree == pre {
				var res view.Result
				nv, res, err = old.MaintainCtx(ctx, next, delta)
				if err == nil {
					w.views.record(cost, res)
				}
			} else {
				// The state does not correspond to the pre-update
				// snapshot (first use after recovery): start over.
				nv, err = view.MaterializeCtx(ctx, h.def, q, next)
				if err == nil {
					obs.Charge(cost, obs.CostViewMaintRecomputed, w.views.full, 1)
				}
			}
		}

		h.mu.Lock()
		if err == nil {
			h.v, h.tree = nv, next
		} else {
			// Leave the view unmaterialized; the next ReadView retries
			// against the then-current snapshot.
			h.v, h.tree = nil, nil
		}
		h.maintaining = false
		h.mu.Unlock()
	}
}

// --- persistence across Compact --------------------------------------------

// viewSnapshot is the views.json document.
type viewSnapshot struct {
	// Docs maps document name to its view definitions.
	Docs map[string][]view.Definition `json:"docs"`
}

// writeViewSnapshot persists all current view definitions to the
// store's view snapshot (durably). Called by Compact under the
// exclusive warehouse lock, before the journal — until then the
// durable copy of registrations — is dropped.
func (w *Warehouse) writeViewSnapshot() error {
	data, err := json.MarshalIndent(viewSnapshot{Docs: w.views.defs()}, "", "  ")
	if err != nil {
		return fmt.Errorf("warehouse: marshal view snapshot: %w", err)
	}
	if err := w.st.WriteViews(data); err != nil {
		return fmt.Errorf("warehouse: write view snapshot: %w", err)
	}
	return nil
}

// loadViewSnapshot seeds the registry from the store's view snapshot,
// if present. Called by Open before journal recovery, whose committed
// view records (and document drops) are replayed on top in journal
// order.
func (w *Warehouse) loadViewSnapshot() error {
	data, ok, err := w.st.ReadViews()
	if err != nil {
		return fmt.Errorf("warehouse: read view snapshot: %w", err)
	}
	if !ok {
		return nil
	}
	var snap viewSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("warehouse: view snapshot corrupt: %w", err)
	}
	for doc, defs := range snap.Docs {
		for _, def := range defs {
			w.views.set(doc, &viewHandle{def: def})
		}
	}
	return nil
}
