package warehouse

import (
	"context"
	"sync"

	"repro/internal/fuzzy"
	"repro/internal/keyword"
	"repro/internal/obs"
)

// searchIndexes caches one keyword.Index per document, built lazily on
// the first search and keyed by the snapshot it was built from.
// Snapshots are immutable and every mutation installs a fresh tree, so
// the tree pointer is the document's generation token: a cached index
// whose Tree differs from the current snapshot is stale and rebuilt.
// Drop removes the entry; the map is otherwise bounded by the number of
// stored documents.
type searchIndexes struct {
	mu  sync.Mutex
	idx map[string]*keyword.Index

	hits          *obs.Counter
	invalidations *obs.Counter
	searches      *obs.Counter
}

// initMetrics registers the index-cache counters on the warehouse's
// registry. Called once from Open, before the warehouse is shared.
func (s *searchIndexes) initMetrics(reg *obs.Registry) {
	s.hits = reg.Counter("px_search_index_hits_total", "searches served by a cached up-to-date keyword index")
	s.invalidations = reg.Counter("px_search_index_invalidations_total", "cached keyword indexes discarded after mutations")
	s.searches = reg.Counter("px_searches_total", "keyword searches on this warehouse")
}

// SearchStats reports the keyword-search counters of this warehouse
// (index cache behavior) together with the keyword engine's package
// counters (builds, postings, threshold prunes). Served by pxserve
// under /stats as "search".
type SearchStats struct {
	// Searches counts Search calls on this warehouse.
	Searches int64 `json:"searches"`
	// IndexHits counts searches served by a cached up-to-date index.
	IndexHits int64 `json:"index_hits"`
	// IndexInvalidations counts cached indexes discarded because the
	// document changed underneath them.
	IndexInvalidations int64 `json:"index_invalidations"`
	// IndexBuilds counts inverted-index builds (process-wide).
	IndexBuilds int64 `json:"index_builds"`
	// Postings counts inverted-index postings built (process-wide).
	Postings int64 `json:"postings"`
	// ThresholdPrunes counts candidates eliminated by the MinProb
	// upper bound before exact evaluation (process-wide).
	ThresholdPrunes int64 `json:"threshold_prunes"`
}

// SearchStats returns the warehouse's keyword-search counters.
func (w *Warehouse) SearchStats() SearchStats {
	kc := keyword.ReadCounters()
	return SearchStats{
		Searches:           w.search.searches.Value(),
		IndexHits:          w.search.hits.Value(),
		IndexInvalidations: w.search.invalidations.Value(),
		IndexBuilds:        kc.IndexBuilds,
		Postings:           kc.Postings,
		ThresholdPrunes:    kc.ThresholdPrunes,
	}
}

// searchIndex returns an index matching the given snapshot, reusing the
// cached one when the document has not changed since it was built. The
// build itself runs outside the mutex — it is O(document) and holding
// the (warehouse-wide) lock across it would serialize searches on
// unrelated documents behind one cold build — so two racing first
// searches may both build; the double-check install keeps one.
func (w *Warehouse) searchIndex(ctx context.Context, name string, ft *fuzzy.Tree) *keyword.Index {
	s := &w.search
	s.mu.Lock()
	cached, ok := s.idx[name]
	s.mu.Unlock()
	if ok {
		if cached.Tree() == ft {
			s.hits.Add(1)
			return cached
		}
		// Stale entries are normally dropped eagerly by the mutation
		// that invalidated them (see dropSearchIndex); this lazy path
		// covers a search racing that drop.
		s.invalidations.Add(1)
	}
	_, span := obs.StartSpan(ctx, "keyword.index")
	ix := keyword.NewIndex(ft)
	span.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.idx[name]; ok && cur.Tree() == ft {
		return cur
	}
	if s.idx == nil {
		s.idx = make(map[string]*keyword.Index)
	}
	s.idx[name] = ix
	return ix
}

// reset discards every cached index (Reopen rebuilds state from disk;
// the counters stay, registered once and monotonic).
func (s *searchIndexes) reset() {
	s.mu.Lock()
	s.idx = nil
	s.mu.Unlock()
}

// dropSearchIndex discards the document's cached index, counting the
// invalidation when there was one. Called eagerly by every mutation
// install and by Drop, so a superseded index never outlives the
// mutation and pins the old snapshot tree in memory until the next
// search.
func (w *Warehouse) dropSearchIndex(name string) {
	s := &w.search
	s.mu.Lock()
	if _, ok := s.idx[name]; ok {
		s.invalidations.Add(1)
		delete(s.idx, name)
	}
	s.mu.Unlock()
}

// Search runs a keyword search (SLCA or ELCA semantics, exact or
// Monte-Carlo probabilities, optional MinProb threshold and TopK cut)
// against the named document. The inverted index is built lazily on
// first use and reused until the document is mutated; evaluation runs
// on an immutable snapshot outside every lock, like Query.
func (w *Warehouse) Search(name string, req keyword.Request) (*keyword.Result, error) {
	return w.SearchCtx(context.Background(), name, req)
}

// SearchCtx is Search with a context: the snapshot fetch, index build
// and search evaluation record spans when the context carries an obs
// trace.
func (w *Warehouse) SearchCtx(ctx context.Context, name string, req keyword.Request) (*keyword.Result, error) {
	ft, err := w.readSnapshot(ctx, name)
	if err != nil {
		return nil, err
	}
	w.search.searches.Add(1)
	ix := w.searchIndex(ctx, name, ft)
	_, span := obs.StartSpan(ctx, "keyword.search")
	defer span.End()
	return keyword.SearchContext(ctx, ix, req)
}
