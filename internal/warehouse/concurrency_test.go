package warehouse

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
)

// stressDoc builds a small fuzzy document with a couple of events.
func stressDoc() *fuzzy.Tree {
	return fuzzy.MustParseTree("A(B[w1]:x, C(D[w2]))",
		map[event.ID]float64{"w1": 0.8, "w2": 0.7})
}

// TestStressParallelMixed hammers a warehouse with parallel Query,
// QueryMC, Update, Get, Stat, Create and Drop calls across overlapping
// documents. It asserts no data races (run under -race), no unexpected
// errors, and that every document left standing is readable.
func TestStressParallelMixed(t *testing.T) {
	w := openTemp(t)

	const (
		docs    = 6
		workers = 8
		rounds  = 20
	)
	names := make([]string, docs)
	for i := range names {
		names[i] = fmt.Sprintf("doc%d", i)
		if err := w.Create(names[i], stressDoc()); err != nil {
			t.Fatal(err)
		}
	}

	q := tpwj.MustParseQuery("A(//D)")
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	// benign reports errors that are expected under churn: readers and
	// writers racing Drop/Create legitimately see "no such document" or
	// "already exists".
	benign := func(err error) bool {
		return errors.Is(err, ErrNotFound) || errors.Is(err, ErrExists)
	}

	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				name := names[r.Intn(docs)]
				switch r.Intn(7) {
				case 0:
					if _, err := w.Query(name, q); err != nil && !benign(err) {
						errs <- err
					}
				case 1:
					if _, err := w.QueryMC(name, q, 50, r); err != nil && !benign(err) {
						errs <- err
					}
				case 2:
					tx := update.New(tpwj.MustParseQuery("A $a"), 0.5,
						update.Insert("a", tree.MustParse("N")))
					if _, err := w.Update(name, tx); err != nil && !benign(err) {
						errs <- err
					}
				case 3:
					if _, err := w.Get(name); err != nil && !benign(err) {
						errs <- err
					}
				case 4:
					if _, err := w.Stat(name); err != nil && !benign(err) {
						errs <- err
					}
				case 5:
					// Churn: drop and immediately recreate.
					if err := w.Drop(name); err != nil {
						if !benign(err) {
							errs <- err
						}
						continue
					}
					if err := w.Create(name, stressDoc()); err != nil && !benign(err) {
						errs <- err
					}
				case 6:
					if _, err := w.List(); err != nil {
						errs <- err
					}
				}
			}
		}(int64(wkr))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Concurrent installs may interleave mutation records and markers
	// freely, but every mutation must be resolved by exactly one
	// marker whose RefSeq names it — the invariant scan-based crash
	// recovery relies on. (The warehouse is quiescent here, so the
	// journal read is exact.)
	recs, err := w.Journal()
	if err != nil {
		t.Fatal(err)
	}
	resolved := make(map[int64]Op)
	for i, rec := range recs {
		if rec.Op.Marker() {
			if _, dup := resolved[rec.RefSeq]; dup {
				t.Fatalf("journal record %d: duplicate marker for seq %d", i, rec.RefSeq)
			}
			resolved[rec.RefSeq] = rec.Op
		}
	}
	for i, rec := range recs {
		if rec.Op.Mutation() {
			if _, ok := resolved[rec.Seq]; !ok {
				t.Fatalf("journal record %d (%s %q seq %d) has no marker", i, rec.Op, rec.Doc, rec.Seq)
			}
			delete(resolved, rec.Seq)
		}
	}
	for seq, op := range resolved {
		t.Errorf("marker %s ref %d matches no mutation", op, seq)
	}

	// Whatever survives the churn must be consistently readable.
	left, err := w.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range left {
		if _, err := w.Get(name); err != nil {
			t.Errorf("Get(%q) after stress: %v", name, err)
		}
		if _, err := w.Query(name, q); err != nil {
			t.Errorf("Query(%q) after stress: %v", name, err)
		}
	}
}

// TestParallelQueriesSameDoc checks that many concurrent queries on one
// document all see the same snapshot while an update runs, and that the
// update's result becomes visible afterwards.
func TestParallelQueriesSameDoc(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc", stressDoc()); err != nil {
		t.Fatal(err)
	}
	q := tpwj.MustParseQuery("A(B)")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				answers, err := w.Query("doc", q)
				if err != nil {
					t.Error(err)
					return
				}
				if len(answers) != 1 {
					t.Errorf("answers = %d, want 1", len(answers))
				}
			}
		}()
	}
	tx := update.New(tpwj.MustParseQuery("A $a"), 1,
		update.Insert("a", tree.MustParse("E:new")))
	if _, err := w.Update("doc", tx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	got, err := w.Get("doc")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	got.Root.Walk(func(n *fuzzy.Node) bool {
		if n.Label == "E" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("updated node not visible after concurrent queries")
	}
}

// TestLockTableBounded pins that operations on nonexistent documents —
// the names clients can probe freely over HTTP — never allocate lock
// entries, so the table is bounded by real documents.
func TestLockTableBounded(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("real", stressDoc()); err != nil {
		t.Fatal(err)
	}
	base := w.locks.size()
	q := tpwj.MustParseQuery("A")
	tx := update.New(q, 0.5, update.Delete(""))
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("ghost%d", i)
		w.Query(name, q)                                    //nolint:errcheck
		w.Get(name)                                         //nolint:errcheck
		w.Stat(name)                                        //nolint:errcheck
		w.Drop(name)                                        //nolint:errcheck
		w.Update(name, tx)                                  //nolint:errcheck
		w.Simplify(name)                                    //nolint:errcheck
		w.QueryMC(name, q, 10, rand.New(rand.NewSource(1))) //nolint:errcheck
	}
	if got := w.locks.size(); got != base {
		t.Errorf("lock table grew from %d to %d on nonexistent names", base, got)
	}

	// Create/drop churn of unique names must not grow it either: Drop
	// releases the entry.
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("churn%d", i)
		if err := w.Create(name, stressDoc()); err != nil {
			t.Fatal(err)
		}
		if err := w.Drop(name); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.locks.size(); got != base {
		t.Errorf("lock table grew from %d to %d under create/drop churn", base, got)
	}
}

// TestSentinelErrors pins the error categories the HTTP layer maps to
// status codes.
func TestSentinelErrors(t *testing.T) {
	w := openTemp(t)
	if _, err := w.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
	if err := w.Drop("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Drop(missing) = %v, want ErrNotFound", err)
	}
	if err := w.Create("bad name!", stressDoc()); !errors.Is(err, ErrInvalidName) {
		t.Errorf("Create(bad name) = %v, want ErrInvalidName", err)
	}
	if err := w.Create("dup", stressDoc()); err != nil {
		t.Fatal(err)
	}
	if err := w.Create("dup", stressDoc()); !errors.Is(err, ErrExists) {
		t.Errorf("Create(dup) = %v, want ErrExists", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Get("dup"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after Close = %v, want ErrClosed", err)
	}
}
