package warehouse

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/gen"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
)

func sections(m int) *fuzzy.Tree {
	root := fuzzy.NewNode("A")
	tab := event.NewTable()
	for i := 1; i <= m; i++ {
		id := event.ID(fmt.Sprintf("e%d", i))
		tab.MustSet(id, 0.5)
		root.Add(fuzzy.NewNode("S",
			fuzzy.NewLeaf("L", fmt.Sprintf("v%d", i)),
			fuzzy.NewLeaf("M", fmt.Sprintf("u%d", i)),
		).WithCond(event.Cond(event.Pos(id))))
	}
	return &fuzzy.Tree{Root: root, Table: tab}
}

func TestViewLifecycle(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc1", sections(3)); err != nil {
		t.Fatal(err)
	}
	res, err := w.RegisterView("doc1", "lview", "A(S(L $x))", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 3 {
		t.Fatalf("register returned %d answers, want 3", len(res.Answers))
	}
	if _, err := w.RegisterView("doc1", "lview", "A(S(M $x))", ""); !errors.Is(err, ErrViewExists) {
		t.Fatalf("duplicate register: %v, want ErrViewExists", err)
	}
	if _, err := w.RegisterView("nodoc", "v", "A $x", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("register on missing doc: %v, want ErrNotFound", err)
	}
	if _, err := w.RegisterView("doc1", "bad", "A(((", ""); err == nil {
		t.Fatal("invalid query accepted")
	}
	if _, err := w.RegisterView("doc1", "badsyn", "A $x", "sparql"); err == nil {
		t.Fatal("unknown syntax accepted")
	}

	got, err := w.ReadView("doc1", "lview")
	if err != nil {
		t.Fatal(err)
	}
	if got.Stale {
		t.Error("freshly registered view read as stale")
	}
	if len(got.Answers) != 3 {
		t.Fatalf("read returned %d answers, want 3", len(got.Answers))
	}
	if _, err := w.ReadView("doc1", "ghost"); !errors.Is(err, ErrViewNotFound) {
		t.Fatalf("read of missing view: %v, want ErrViewNotFound", err)
	}

	defs, err := w.ListViews("doc1")
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 1 || defs[0].Name != "lview" {
		t.Fatalf("ListViews = %+v", defs)
	}

	if err := w.DropView("doc1", "lview"); err != nil {
		t.Fatal(err)
	}
	if err := w.DropView("doc1", "lview"); !errors.Is(err, ErrViewNotFound) {
		t.Fatalf("double drop: %v, want ErrViewNotFound", err)
	}
	if _, err := w.ReadView("doc1", "lview"); !errors.Is(err, ErrViewNotFound) {
		t.Fatalf("read after drop: %v, want ErrViewNotFound", err)
	}
}

// assertViewFresh compares a ReadView result against recomputing the
// view's query from scratch on the document's current content.
func assertViewFresh(t *testing.T, w *Warehouse, doc, name string) {
	t.Helper()
	res, err := w.ReadView(doc, name)
	if err != nil {
		t.Fatalf("ReadView(%q, %q): %v", doc, name, err)
	}
	ft, err := w.Get(doc)
	if err != nil {
		t.Fatal(err)
	}
	var q *tpwj.Query
	switch res.Syntax {
	case "", "tpwj":
		q = tpwj.MustParseQuery(res.Query)
	default:
		t.Fatalf("unexpected syntax %q", res.Syntax)
	}
	want, err := tpwj.EvalFuzzy(q, ft)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != len(want) {
		t.Fatalf("view %q on %q: %d answers, recompute has %d", name, doc, len(res.Answers), len(want))
	}
	for i := range want {
		wc, gc := tree.Canonical(want[i].Tree), tree.Canonical(res.Answers[i].Tree)
		if wc != gc {
			t.Fatalf("view %q on %q answer %d: tree %s, recompute %s", name, doc, i, gc, wc)
		}
		if math.Abs(want[i].P-res.Answers[i].P) > 1e-9 {
			t.Fatalf("view %q on %q answer %d (%s): P=%v, recompute P=%v",
				name, doc, i, gc, res.Answers[i].P, want[i].P)
		}
	}
}

func TestViewMaintainedAcrossUpdateSimplifyAndXPath(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc1", sections(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RegisterView("doc1", "ls", "A(S(L $x))", "tpwj"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RegisterView("doc1", "xp", "/A/S/M", "xpath"); err != nil {
		t.Fatal(err)
	}

	tx := update.New(tpwj.MustParseQuery("A(S $s(L=v2))"), 0.8, update.Insert("s", tree.MustParse("L:fresh")))
	if _, err := w.Update("doc1", tx); err != nil {
		t.Fatal(err)
	}
	assertViewFresh(t, w, "doc1", "ls")

	tx2 := update.New(tpwj.MustParseQuery("A(S(M=u3 $m))"), 0.6, update.Delete("m"))
	if _, err := w.Update("doc1", tx2); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Simplify("doc1"); err != nil {
		t.Fatal(err)
	}
	assertViewFresh(t, w, "doc1", "ls")

	s := w.ViewStats()
	if s.Registered != 2 {
		t.Errorf("Registered = %d, want 2", s.Registered)
	}
	if s.Skipped+s.Incremental == 0 {
		t.Errorf("no cheap maintenance tier taken: %+v", s)
	}
	if s.FullRecomputes == 0 {
		t.Errorf("simplify should force full recomputes: %+v", s)
	}
	// The xpath view compares through its own engine; check count only.
	xp, err := w.ReadView("doc1", "xp")
	if err != nil {
		t.Fatal(err)
	}
	if len(xp.Answers) == 0 {
		t.Error("xpath view lost its answers")
	}
}

func TestViewsSurviveReopenAndCompact(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Create("doc1", sections(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RegisterView("doc1", "v1", "A(S(L $x))", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RegisterView("doc1", "gone", "A(S(M $x))", ""); err != nil {
		t.Fatal(err)
	}
	if err := w.DropView("doc1", "gone"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: definitions come back from the journal; answers are
	// re-materialized lazily.
	w, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.ReadView("doc1", "gone"); !errors.Is(err, ErrViewNotFound) {
		t.Fatalf("dropped view resurrected: %v", err)
	}
	assertViewFresh(t, w, "doc1", "v1")

	// Compact moves the registry to views.json; register one more view
	// after the compact so both sources are live on the next open.
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RegisterView("doc1", "v2", "A(S $s)", ""); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	defs, err := w.ListViews("doc1")
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 2 || defs[0].Name != "v1" || defs[1].Name != "v2" {
		t.Fatalf("ListViews after compact+reopen = %+v", defs)
	}
	assertViewFresh(t, w, "doc1", "v1")
	assertViewFresh(t, w, "doc1", "v2")
}

func TestDocDropRemovesViews(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Create("doc1", sections(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RegisterView("doc1", "v1", "A(S $s)", ""); err != nil {
		t.Fatal(err)
	}
	if err := w.Drop("doc1"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.ReadView("doc1", "v1"); !errors.Is(err, ErrViewNotFound) {
		t.Fatalf("view outlived its document: %v", err)
	}
	// Re-creating the name must not resurrect the old view — including
	// after a reopen, where the journal replay must apply the drop.
	if err := w.Create("doc1", sections(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.ReadView("doc1", "v1"); !errors.Is(err, ErrViewNotFound) {
		t.Fatalf("view resurrected by re-create: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.ReadView("doc1", "v1"); !errors.Is(err, ErrViewNotFound) {
		t.Fatalf("view resurrected by reopen: %v", err)
	}
}

// copyWarehouseDir snapshots a (possibly still open) warehouse
// directory, simulating what a crash leaves on disk.
func copyWarehouseDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// randomViewTx builds a random applicable transaction for the doc.
func randomViewTx(r *rand.Rand, ft *fuzzy.Tree) *update.Transaction {
	doc := ft.Underlying()
	q := gen.MatchingQuery(r, doc, true)
	conf := 0.3 + 0.7*r.Float64()
	if r.Intn(4) == 0 {
		conf = 1
	}
	if r.Intn(2) == 0 {
		sub := gen.Tree(r, gen.TreeConfig{Depth: 2, MaxFanout: 2})
		return update.New(q, conf, update.Insert("x", sub))
	}
	return update.New(q, conf, update.Delete("x"))
}

// TestViewDifferentialRandomized is the acceptance oracle: randomized
// update sequences over multiple documents with registered views;
// after every step each view must equal recompute-from-scratch, and
// views must survive crash/recovery cycles taken mid-sequence.
func TestViewDifferentialRandomized(t *testing.T) {
	steps := 1000
	if testing.Short() {
		steps = 120
	}
	r := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { w.Close() }()

	docs := []string{"alpha", "beta", "gamma"}
	for i, name := range docs {
		ft := gen.Fuzzy(r, gen.FuzzyConfig{
			Tree:        gen.TreeConfig{Depth: 3, MaxFanout: 3},
			Events:      4,
			EventPrefix: fmt.Sprintf("w%d_", i),
		})
		if err := w.Create(name, ft); err != nil {
			t.Fatal(err)
		}
		ftq, err := w.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 2; v++ {
			q := gen.MatchingQuery(r, ftq.Underlying(), true)
			vname := fmt.Sprintf("v%d", v)
			if _, err := w.RegisterView(name, vname, tpwj.FormatQuery(q), ""); err != nil {
				t.Fatal(err)
			}
		}
	}

	var total ViewStats
	for step := 0; step < steps; step++ {
		name := docs[r.Intn(len(docs))]
		cur, err := w.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Size() > 300 {
			// Deletion blow-up: trim the document back down by
			// simplifying (views must survive that too).
			if _, err := w.Simplify(name); err != nil {
				t.Fatalf("step %d: simplify: %v", step, err)
			}
			cur, err = w.Get(name)
			if err != nil {
				t.Fatal(err)
			}
		}
		// Draw until the transaction applies (inserts under value
		// leaves and root deletions are rejected by the updater).
		for tries := 0; ; tries++ {
			tx := randomViewTx(r, cur)
			_, err = w.Update(name, tx)
			if err == nil {
				break
			}
			if tries > 100 {
				t.Fatalf("step %d: no applicable transaction: %v", step, err)
			}
		}
		assertViewFresh(t, w, name, fmt.Sprintf("v%d", r.Intn(2)))

		// Periodically simulate a crash: snapshot the live directory,
		// recover the copy, and check every view over there.
		if step%250 == 120 {
			crashDir := copyWarehouseDir(t, dir)
			cw, err := Open(crashDir)
			if err != nil {
				t.Fatalf("step %d: crash recovery: %v", step, err)
			}
			for _, doc := range docs {
				defs, err := cw.ListViews(doc)
				if err != nil {
					t.Fatalf("step %d: crash copy lost views of %q: %v", step, doc, err)
				}
				if len(defs) != 2 {
					t.Fatalf("step %d: crash copy has %d views of %q, want 2", step, len(defs), doc)
				}
				for _, def := range defs {
					assertViewFresh(t, cw, doc, def.Name)
				}
			}
			cw.Close()
		}

		// And a clean close/reopen with an occasional compact.
		// Counters are per-instance; fold them into the running total
		// before the instance goes away.
		if step%250 == 249 {
			accumulate(&total, w.ViewStats())
			if step%500 == 499 {
				if err := w.Compact(); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			w, err = Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, doc := range docs {
				assertViewFresh(t, w, doc, "v0")
				assertViewFresh(t, w, doc, "v1")
			}
		}
	}
	accumulate(&total, w.ViewStats())
	t.Logf("view stats after %d steps: %+v", steps, total)
	if total.Skipped == 0 || total.Incremental == 0 || total.FullRecomputes == 0 {
		t.Errorf("expected all three maintenance tiers to fire: %+v", total)
	}
}

// accumulate folds one warehouse instance's counters into a total.
func accumulate(total *ViewStats, s ViewStats) {
	total.Registered = s.Registered
	total.Skipped += s.Skipped
	total.Incremental += s.Incremental
	total.FullRecomputes += s.FullRecomputes
	total.AnswersReused += s.AnswersReused
	total.AnswersRecomputed += s.AnswersRecomputed
	total.StaleReads += s.StaleReads
}

// TestViewReadsDoNotBlockOnWriter exercises the stale-read contract
// under concurrency: readers must always get a complete answer set
// (pre- or post-update) and never an error, while a writer churns.
func TestViewReadsDoNotBlockOnWriter(t *testing.T) {
	w := openTemp(t)
	if err := w.Create("doc1", sections(6)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RegisterView("doc1", "ls", "A(S(L $x))", ""); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := w.ReadView("doc1", "ls")
				if err != nil {
					t.Errorf("ReadView: %v", err)
					return
				}
				if len(res.Answers) < 6 {
					t.Errorf("ReadView returned %d answers, want >= 6", len(res.Answers))
					return
				}
			}
		}()
	}
	for i := 0; i < 30; i++ {
		tx := update.New(tpwj.MustParseQuery("A(S $s(L=v1))"), 0.9,
			update.Insert("s", tree.MustParse("L:extra")))
		if _, err := w.Update("doc1", tx); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	assertViewFresh(t, w, "doc1", "ls")
}
