package warehouse

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/fuzzy"
	"repro/internal/store/kv"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
	"repro/internal/vfs"
	"repro/internal/xmlio"
)

// storeBackends are the storage backends every parameterized recovery
// and fault suite runs against. A backend that cannot pass the same
// crash sweeps as the filestore has no business shipping.
var storeBackends = []string{BackendFile, BackendKV}

// openB opens dir with the named backend over the real filesystem,
// failing the test on error.
func openB(t *testing.T, dir, backend string) *Warehouse {
	t.Helper()
	w, err := OpenBackend(dir, backend, vfs.OS)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// content serializes a one-line fuzzy tree the way the warehouse
// journals it.
func content(t *testing.T, text string) string {
	t.Helper()
	data, err := xmlio.DocXML(fuzzy.MustParseTree(text, nil))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// wantDoc asserts the named document parses to the given content, or,
// with content "", that it does not exist.
func wantDoc(t *testing.T, w *Warehouse, name, want string) {
	t.Helper()
	got, err := w.Get(name)
	if want == "" {
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%q) = %v, want ErrNotFound", name, err)
		}
		return
	}
	if err != nil {
		t.Errorf("Get(%q): %v", name, err)
		return
	}
	wantTree, err := xmlio.ParseDoc([]byte(want))
	if err != nil {
		t.Fatal(err)
	}
	if !fuzzy.Equal(got.Root, wantTree.Root) {
		t.Errorf("doc %q = %s, want %s", name, fuzzy.Format(got.Root), fuzzy.Format(wantTree.Root))
	}
}

// forgeJournal writes the records into dir's journal via the real
// append path of the named backend, continuing sequence numbers above
// whatever the journal already holds (1..n on a fresh directory), and
// returns the assigned seqs. RefSeq values in the input index into the
// records slice is NOT supported — callers pass final RefSeq values
// directly.
func forgeJournal(t *testing.T, dir, backend string, records []Record) []int64 {
	t.Helper()
	st, err := newBackendStore(dir, backend, vfs.OS)
	if err != nil {
		t.Fatal(err)
	}
	payloads, log, err := st.Open(validRecord)
	if err != nil {
		t.Fatal(err)
	}
	prior, err := parseRecords(payloads)
	if err != nil {
		t.Fatal(err)
	}
	j := newJournal(log, maxSeq(prior), &journalCounters{}, nil)
	seqs := make([]int64, len(records))
	for i, r := range records {
		seq, err := j.append(r)
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = seq
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return seqs
}

// interleavedJournal builds the reference multi-document journal used
// by the scan and record-boundary tests. Mutations on A, B and C
// interleave their durable phases the way concurrent installs do. The
// final state: A keeps its create content (its update aborted), B is
// dropped, and C rolls back to its create content (its update is
// in-flight, never marked).
func interleavedJournal(t *testing.T) []Record {
	t.Helper()
	a1, a2 := content(t, "A(one)"), content(t, "A(two)")
	b1, b2 := content(t, "B(one)"), content(t, "B(two)")
	c1, c2 := content(t, "C(one)"), content(t, "C(two)")
	return []Record{
		{Op: OpCreate, Doc: "A", Content: a1},             // seq 1
		{Op: OpCreate, Doc: "B", Content: b1},             // seq 2
		{Op: OpCommit, RefSeq: 2},                         // B's create commits first
		{Op: OpCommit, RefSeq: 1},                         // then A's
		{Op: OpUpdate, Doc: "B", Tx: "<t/>", Content: b2}, // seq 5
		{Op: OpCreate, Doc: "C", Content: c1},             // seq 6
		{Op: OpCommit, RefSeq: 5},
		{Op: OpUpdate, Doc: "A", Tx: "<t/>", Content: a2}, // seq 8
		{Op: OpCommit, RefSeq: 6},
		{Op: OpAbort, RefSeq: 8},                          // A's update failed
		{Op: OpDrop, Doc: "B"},                            // seq 11
		{Op: OpUpdate, Doc: "C", Tx: "<t/>", Content: c2}, // seq 12, never marked
		{Op: OpCommit, RefSeq: 11},
	}
}

// TestRecoveryScanInterleaved: recovery pairs interleaved markers with
// their mutations by RefSeq across documents, replays each document's
// last committed state, and rolls back the one in-flight mutation.
func TestRecoveryScanInterleaved(t *testing.T) {
	for _, backend := range storeBackends {
		t.Run(backend, func(t *testing.T) {
			dir := t.TempDir()
			forgeJournal(t, dir, backend, interleavedJournal(t))
			// Adversarial disk state: every swap ran before the crash.
			seedDocs(t, dir, backend, map[string]string{
				"A": content(t, "A(two)"), // aborted update's content (impossible in real
				// operation — apply failed means no swap — but replay must fix it anyway)
				"C": content(t, "C(two)"), // in-flight update swapped, marker lost
			}) // B: dropped, file absent

			w := openB(t, dir, backend)
			defer w.Close()
			wantDoc(t, w, "A", content(t, "A(one)"))
			wantDoc(t, w, "B", "")
			wantDoc(t, w, "C", content(t, "C(one)"))

			// The in-flight update on C must now carry an abort marker.
			recs, err := w.Journal()
			if err != nil {
				t.Fatal(err)
			}
			var resolved bool
			for _, r := range recs {
				if r.Op == OpAbort && r.RefSeq == 12 {
					resolved = true
				}
			}
			if !resolved {
				t.Error("in-flight mutation seq 12 not resolved with an abort marker")
			}
			if s := w.JournalStats(); s.RecoveryRollbacks != 1 {
				t.Errorf("rollbacks = %d, want 1", s.RecoveryRollbacks)
			}

			// A second open finds a fully marked journal and does nothing.
			w.Close()
			w2 := openB(t, dir, backend)
			defer w2.Close()
			if s := w2.JournalStats(); s.RecoveryRollbacks != 0 || s.RecoveryReplays != 0 || s.RecoveryRollforwards != 0 {
				t.Errorf("second open not a no-op: %+v", s)
			}
			wantDoc(t, w2, "A", content(t, "A(one)"))
			wantDoc(t, w2, "B", "")
			wantDoc(t, w2, "C", content(t, "C(one)"))
		})
	}
}

// seedDocs forces dir's document state to exactly files through the
// backend's own store API: every existing document is removed, then
// each entry is written with a durable sync — simulating an arbitrary
// set of completed swaps at crash time.
func seedDocs(t *testing.T, dir, backend string, files map[string]string) {
	t.Helper()
	st, err := newBackendStore(dir, backend, vfs.OS)
	if err != nil {
		t.Fatal(err)
	}
	_, log, err := st.Open(validRecord)
	if err != nil {
		t.Fatal(err)
	}
	names, err := st.ListDocs()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if err := st.RemoveDoc(name); err != nil {
			t.Fatal(err)
		}
	}
	for name, c := range files {
		if err := st.WriteDoc(name, []byte(c), true); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// tearJournalTail appends a torn record fragment to the backend's
// journal region: a partial JSON line for the filestore, a truncated
// frame header for the kv page file. Either is what a crash mid-append
// leaves behind.
func tearJournalTail(t *testing.T, dir, backend string) {
	t.Helper()
	path := filepath.Join(dir, journalFile)
	frag := []byte(`{"seq":99,"op":"upd`)
	if backend == BackendKV {
		path = filepath.Join(dir, kv.FileName)
		frag = []byte{1, 0x00, 0x03} // kindJournal frame cut inside its header
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frag); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// parsePrefix is the tests' independent journal reader: full
// newline-terminated lines that parse as records, stopping at the
// first fragment. Deliberately not readJournal, so an oracle bug there
// cannot hide a recovery bug.
func parsePrefix(data []byte) []Record {
	var records []Record
	for _, line := range strings.SplitAfter(string(data), "\n") {
		if !strings.HasSuffix(line, "\n") {
			break // torn tail (or empty final element)
		}
		body := strings.TrimSuffix(line, "\n")
		if body == "" {
			continue
		}
		var r Record
		if json.Unmarshal([]byte(body), &r) != nil {
			break
		}
		records = append(records, r)
	}
	return records
}

// kvParseJournalPrefix is the kv-backend counterpart of parsePrefix:
// an independent decoder of the page-file frame format (kind u8,
// keyLen u16, valLen u32, seq u64, key, val, crc32) that collects the
// journal payloads of every intact frame and stops at the first torn
// or corrupt one. Deliberately not the kv package's own scanner, so an
// oracle bug there cannot hide a recovery bug.
func kvParseJournalPrefix(data []byte) []Record {
	const headerLen, trailerLen = 15, 4
	var records []Record
	off := 0
	for off+headerLen <= len(data) {
		kind := data[off]
		if kind < 1 || kind > 4 {
			break
		}
		keyLen := int(binary.BigEndian.Uint16(data[off+1:]))
		valLen := int(binary.BigEndian.Uint32(data[off+3:]))
		end := off + headerLen + keyLen + valLen + trailerLen
		if end > len(data) {
			break
		}
		if crc32.ChecksumIEEE(data[off:end-trailerLen]) != binary.BigEndian.Uint32(data[end-trailerLen:]) {
			break
		}
		if kind == 1 { // journal frame
			var r Record
			if json.Unmarshal(data[off+headerLen+keyLen:end-trailerLen], &r) != nil {
				break
			}
			records = append(records, r)
		}
		off = end
	}
	return records
}

// expectState is the tests' independent model of scan-based recovery
// over a journal prefix: per document, the last committed mutation
// wins; documents whose only trace is an in-flight create end absent;
// documents with no trace keep their seeded file. The prefixes used
// here never produce an in-flight update/drop without a committed
// predecessor (the write-ahead ordering makes that impossible short of
// compaction), so the model omits the evidence rule.
func expectState(records []Record, seeded map[string]string) map[string]string {
	marked := make(map[int64]Op)
	for _, r := range records {
		if r.Op.Marker() {
			marked[r.RefSeq] = r.Op
		}
	}
	expect := make(map[string]string, len(seeded))
	for doc, c := range seeded {
		expect[doc] = c
	}
	type state struct {
		committed *Record
		pending   *Record
	}
	perDoc := make(map[string]*state)
	for i := range records {
		r := records[i]
		if !r.Op.Mutation() {
			continue
		}
		ds := perDoc[r.Doc]
		if ds == nil {
			ds = &state{}
			perDoc[r.Doc] = ds
		}
		switch marked[r.Seq] {
		case OpCommit:
			ds.committed = &records[i]
		case OpAbort:
		default:
			ds.pending = &records[i]
		}
	}
	for doc, ds := range perDoc {
		switch {
		case ds.committed != nil && ds.committed.Op == OpDrop:
			delete(expect, doc)
		case ds.committed != nil:
			expect[doc] = ds.committed.Content
		case ds.pending != nil && ds.pending.Op == OpCreate:
			delete(expect, doc)
		}
	}
	return expect
}

// TestRecoveryRecordBoundaries kills the interleaved journal at every
// record boundary — every prefix a crash between appends could leave —
// with the disk files seeded as if every surviving mutation's swap had
// run, and checks recovery lands each document exactly on the model's
// prediction. Each recovered warehouse is then reopened to verify
// recovery converged (no further rollbacks or replays).
func TestRecoveryRecordBoundaries(t *testing.T) {
	full := interleavedJournal(t)
	for _, backend := range storeBackends {
		for cut := 0; cut <= len(full); cut++ {
			t.Run(fmt.Sprintf("%s/records=%d", backend, cut), func(t *testing.T) {
				dir := t.TempDir()
				forgeJournal(t, dir, backend, full[:cut])
				// Seed: every mutation in the prefix applied its file
				// effect (the most advanced crash state possible).
				seeded := make(map[string]string)
				for _, r := range full[:cut] {
					switch r.Op {
					case OpCreate, OpUpdate:
						seeded[r.Doc] = r.Content
					case OpDrop:
						delete(seeded, r.Doc)
					}
				}
				seedDocs(t, dir, backend, seeded)

				// The oracle sees the same prefix with the seqs the forge
				// assigned (1..cut on a fresh directory).
				prefix := append([]Record(nil), full[:cut]...)
				for i := range prefix {
					prefix[i].Seq = int64(i + 1)
				}
				expect := expectState(prefix, seeded)

				w := openB(t, dir, backend)
				for _, doc := range []string{"A", "B", "C"} {
					wantDoc(t, w, doc, expect[doc])
				}
				w.Close()

				w2 := openB(t, dir, backend)
				defer w2.Close()
				if s := w2.JournalStats(); s.RecoveryRollbacks != 0 || s.RecoveryReplays != 0 || s.RecoveryRollforwards != 0 {
					t.Errorf("recovery did not converge after one open: %+v", s)
				}
				for _, doc := range []string{"A", "B", "C"} {
					wantDoc(t, w2, doc, expect[doc])
				}
			})
		}
	}
}

// TestRecoveryByteBoundaries truncates a synthetic single-document
// journal at every byte boundary of its final records and asserts
// recovery never loses a committed mutation nor resurrects an aborted
// one: whatever the cut, the document lands exactly on the model's
// prediction — the last committed state surviving the cut. For the kv
// backend the document page shares the truncated file with the
// journal frames, so the page is seeded first and only cuts at or
// past its end are crash-reachable (the page was written and synced
// before the journal frames existed).
func TestRecoveryByteBoundaries(t *testing.T) {
	v1, v2, v3 := content(t, "D(one)"), content(t, "D(two)"), content(t, "D(three)")
	scenarios := []struct {
		name  string
		final Op     // marker resolving the last update
		seed  string // doc file at crash time
	}{
		// Committed final update: the swap ran before the marker.
		{"final-commit", OpCommit, v3},
		// Aborted final update: the apply failed, file untouched.
		{"final-abort", OpAbort, v2},
	}
	journalRecords := func(final Op) []Record {
		return []Record{
			{Op: OpCreate, Doc: "D", Content: v1}, // seq 1
			{Op: OpCommit, RefSeq: 1},
			{Op: OpUpdate, Doc: "D", Tx: "<t/>", Content: v2}, // seq 3
			{Op: OpCommit, RefSeq: 3},
			{Op: OpUpdate, Doc: "D", Tx: "<t/>", Content: v3}, // seq 5
			{Op: final, RefSeq: 5},
		}
	}
	checkCut := func(t *testing.T, dir, backend string, cut int, expect map[string]string) {
		t.Helper()
		w := openB(t, dir, backend)
		got, err := w.Get("D")
		w.Close()
		want := expect["D"]
		if want == "" {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("cut=%d: Get = %v, want ErrNotFound", cut, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		wantTree, err := xmlio.ParseDoc([]byte(want))
		if err != nil {
			t.Fatal(err)
		}
		if !fuzzy.Equal(got.Root, wantTree.Root) {
			t.Fatalf("cut=%d: doc = %s, want %s", cut, fuzzy.Format(got.Root), fuzzy.Format(wantTree.Root))
		}
	}
	for _, sc := range scenarios {
		t.Run("filestore/"+sc.name, func(t *testing.T) {
			base := t.TempDir()
			forgeJournal(t, base, BackendFile, journalRecords(sc.final))
			full, err := os.ReadFile(filepath.Join(base, journalFile))
			if err != nil {
				t.Fatal(err)
			}
			for cut := 0; cut <= len(full); cut++ {
				dir := t.TempDir()
				if err := os.MkdirAll(filepath.Join(dir, docsDir), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, journalFile), full[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				seeded := map[string]string{"D": sc.seed}
				seedDocs(t, dir, BackendFile, seeded)
				expect := expectState(parsePrefix(full[:cut]), seeded)
				checkCut(t, dir, BackendFile, cut, expect)
			}
		})
		t.Run("kv/"+sc.name, func(t *testing.T) {
			base := t.TempDir()
			// Page first, journal frames after: a crash can then tear the
			// file anywhere past the synced page.
			seedDocs(t, base, BackendKV, map[string]string{"D": sc.seed})
			pageInfo, err := os.Stat(filepath.Join(base, kv.FileName))
			if err != nil {
				t.Fatal(err)
			}
			docEnd := int(pageInfo.Size())
			forgeJournal(t, base, BackendKV, journalRecords(sc.final))
			full, err := os.ReadFile(filepath.Join(base, kv.FileName))
			if err != nil {
				t.Fatal(err)
			}
			for cut := docEnd; cut <= len(full); cut++ {
				dir := t.TempDir()
				if err := os.WriteFile(filepath.Join(dir, kv.FileName), full[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				seeded := map[string]string{"D": sc.seed}
				expect := expectState(kvParseJournalPrefix(full[:cut]), seeded)
				checkCut(t, dir, BackendKV, cut, expect)
			}
		})
	}
}

// TestRecoveryOrphanEvidence covers in-flight mutations whose
// committed predecessor was compacted out of the journal: the
// pre-state content is unrecoverable, so recovery decides by on-disk
// evidence — roll forward when the apply visibly completed, roll back
// when the file is untouched.
func TestRecoveryOrphanEvidence(t *testing.T) {
	v1, v2 := content(t, "D(one)"), content(t, "D(two)")
	cases := []struct {
		name        string
		op          Op
		fileAfter   string // doc file at crash time ("" = absent)
		wantDoc     string // expected content after recovery ("" = absent)
		wantMarker  Op
		rollforward bool
	}{
		{"update-swapped", OpUpdate, v2, v2, OpCommit, true},
		{"update-untouched", OpUpdate, v1, v1, OpAbort, false},
		{"drop-removed", OpDrop, "", "", OpCommit, true},
		{"drop-untouched", OpDrop, v1, v1, OpAbort, false},
	}
	for _, backend := range storeBackends {
		for _, tc := range cases {
			t.Run(backend+"/"+tc.name, func(t *testing.T) {
				dir := t.TempDir()
				// A compacted warehouse: the document exists on disk with
				// no journal trace.
				w := openB(t, dir, backend)
				doc, err := xmlio.ParseDoc([]byte(v1))
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Create("D", doc); err != nil {
					t.Fatal(err)
				}
				if err := w.Compact(); err != nil {
					t.Fatal(err)
				}
				w.Close()

				// Forge the orphan in-flight mutation and the crash-time
				// file state.
				rec := Record{Op: tc.op, Doc: "D"}
				if tc.op == OpUpdate {
					rec.Content = v2
				}
				seqs := forgeJournal(t, dir, backend, []Record{rec})
				files := map[string]string{}
				if tc.fileAfter != "" {
					files["D"] = tc.fileAfter
				}
				seedDocs(t, dir, backend, files)

				w2 := openB(t, dir, backend)
				defer w2.Close()
				wantDoc(t, w2, "D", tc.wantDoc)
				recs, err := w2.Journal()
				if err != nil {
					t.Fatal(err)
				}
				last := recs[len(recs)-1]
				if last.Op != tc.wantMarker || last.RefSeq != seqs[0] {
					t.Errorf("resolution = %s ref %d, want %s ref %d", last.Op, last.RefSeq, tc.wantMarker, seqs[0])
				}
				s := w2.JournalStats()
				if tc.rollforward && (s.RecoveryRollforwards != 1 || s.RecoveryRollbacks != 0) {
					t.Errorf("counters = %+v, want 1 rollforward", s)
				}
				if !tc.rollforward && (s.RecoveryRollbacks != 1 || s.RecoveryRollforwards != 0) {
					t.Errorf("counters = %+v, want 1 rollback", s)
				}
			})
		}
	}
}

// TestRecoveryOrphanCreateRollsBack: an in-flight create on an empty
// journal always rolls back — its pre-state is "absent" by definition.
func TestRecoveryOrphanCreateRollsBack(t *testing.T) {
	for _, backend := range storeBackends {
		t.Run(backend, func(t *testing.T) {
			dir := t.TempDir()
			v1 := content(t, "D(one)")
			forgeJournal(t, dir, backend, []Record{{Op: OpCreate, Doc: "D", Content: v1}})
			seedDocs(t, dir, backend, map[string]string{"D": v1}) // the swap ran

			w := openB(t, dir, backend)
			defer w.Close()
			wantDoc(t, w, "D", "")
			if s := w.JournalStats(); s.RecoveryRollbacks != 1 {
				t.Errorf("rollbacks = %d, want 1", s.RecoveryRollbacks)
			}
		})
	}
}

// TestRecoveryRepairsTornDocFile pins the deferred-fsync contract:
// steady-state file swaps skip their own fsync because the journal is
// the durable copy, so a crash that tears the rename (here simulated
// by truncating the file to garbage) must be repaired by replay on the
// next open.
func TestRecoveryRepairsTornDocFile(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Create("doc", slide12()); err != nil {
		t.Fatal(err)
	}
	tx := update.New(tpwj.MustParseQuery("A $a"), 1,
		update.Insert("a", tree.MustParse("N")))
	if _, err := w.Update("doc", tx); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Tear the file: a crash mid-rename on a journaling filesystem can
	// expose an empty or partial file when the data was never fsynced.
	if err := os.Truncate(filepath.Join(dir, docsDir, "doc"+docExt), 7); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, err := w2.Get("doc")
	if err != nil {
		t.Fatalf("torn document not repaired: %v", err)
	}
	found := false
	got.Root.Walk(func(n *fuzzy.Node) bool {
		if n.Label == "N" {
			found = true
		}
		return true
	})
	if !found {
		t.Errorf("committed update lost in repair: %s", fuzzy.Format(got.Root))
	}
	if s := w2.JournalStats(); s.RecoveryReplays != 1 {
		t.Errorf("recovery replays = %d, want 1", s.RecoveryReplays)
	}
}

// TestTornTailTruncatedOnOpen pins the glue-corruption fix: a torn
// tail is physically truncated before fresh appends, so a record
// written after the crash never concatenates onto the fragment and
// every post-crash record survives the next reopen.
func TestTornTailTruncatedOnOpen(t *testing.T) {
	for _, backend := range storeBackends {
		t.Run(backend, func(t *testing.T) {
			dir := t.TempDir()
			w := openB(t, dir, backend)
			if err := w.Create("doc", slide12()); err != nil {
				t.Fatal(err)
			}
			w.Close()

			tearJournalTail(t, dir, backend)

			// Reopen and mutate: the new records must land on a clean boundary.
			w2 := openB(t, dir, backend)
			if err := w2.Create("doc2", slide12()); err != nil {
				t.Fatal(err)
			}
			w2.Close()

			w3 := openB(t, dir, backend)
			defer w3.Close()
			got, err := w3.Get("doc2")
			if err != nil {
				t.Fatalf("post-crash document lost: %v", err)
			}
			if !fuzzy.Equal(got.Root, slide12().Root) {
				t.Errorf("doc2 = %s", fuzzy.Format(got.Root))
			}
			recs, err := w3.Journal()
			if err != nil {
				t.Fatal(err)
			}
			// create+commit for each document; the torn fragment is gone.
			if len(recs) != 4 {
				t.Fatalf("journal records = %d, want 4: %+v", len(recs), recs)
			}
			for _, r := range recs {
				if !r.Op.Mutation() && !r.Op.Marker() {
					t.Errorf("corrupt record survived: %+v", r)
				}
			}
		})
	}
}

// TestInspectJournal checks the read-only summary behind the
// pxwarehouse verify-journal subcommand: counts, pending detection,
// torn tails, and structural problems.
func TestInspectJournal(t *testing.T) {
	// InspectJournal auto-detects the backend from the directory layout,
	// so both backends go through the same entry point.
	for _, backend := range storeBackends {
		t.Run(backend, func(t *testing.T) {
			dir := t.TempDir()
			forgeJournal(t, dir, backend, interleavedJournal(t))

			sum, err := InspectJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			if sum.Records != 13 || sum.Mutations != 7 || sum.Committed != 5 || sum.Aborted != 1 {
				t.Errorf("summary = %+v, want 13 records, 7 mutations, 5 committed, 1 aborted", sum)
			}
			if len(sum.Pending) != 1 || sum.Pending[0].Seq != 12 || sum.Pending[0].Doc != "C" {
				t.Errorf("pending = %+v, want seq 12 on C", sum.Pending)
			}
			if sum.TornTail || len(sum.Problems) != 0 {
				t.Errorf("clean journal reported torn=%v problems=%v", sum.TornTail, sum.Problems)
			}

			// Torn tail.
			tearJournalTail(t, dir, backend)
			sum, err = InspectJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !sum.TornTail || sum.Records != 13 {
				t.Errorf("torn tail not detected: %+v", sum)
			}
		})
	}

	// Structural problems (filestore raw file): out-of-order seq, dangling marker ref,
	// duplicate marker, unknown op.
	bad := t.TempDir()
	lines := []string{
		`{"seq":1,"op":"create","doc":"X","content":"<pxml><A/></pxml>"}`,
		`{"seq":1,"op":"commit","ref":1}`,  // seq not increasing
		`{"seq":3,"op":"commit","ref":99}`, // names no mutation
		`{"seq":4,"op":"abort","ref":1}`,   // duplicate marker for 1
		`{"seq":5,"op":"frobnicate"}`,      // unknown op
	}
	if err := os.MkdirAll(filepath.Join(bad, docsDir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, journalFile), []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sum, err := InspectJournal(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Problems) != 4 {
		t.Errorf("problems = %v, want 4", sum.Problems)
	}

	// A missing journal is an empty summary, not an error.
	sum, err = InspectJournal(t.TempDir())
	if err != nil || sum.Records != 0 {
		t.Errorf("InspectJournal(empty) = %+v, %v", sum, err)
	}
}

// TestGroupCommitBatching: concurrent mutations on distinct documents
// share fsyncs — the batch counter stays at or below the append
// counter, and the append counter is exact.
func TestGroupCommitBatching(t *testing.T) {
	for _, backend := range storeBackends {
		t.Run(backend, func(t *testing.T) {
			testGroupCommitBatching(t, backend)
		})
	}
}

func testGroupCommitBatching(t *testing.T, backend string) {
	w := openB(t, t.TempDir(), backend)
	defer w.Close()
	const docs = 8
	for i := 0; i < docs; i++ {
		if err := w.Create(fmt.Sprintf("doc%d", i), stressDoc()); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 5
	tx := update.New(tpwj.MustParseQuery("A $a"), 0.5,
		update.Insert("a", tree.MustParse("N")))
	var wg sync.WaitGroup
	for i := 0; i < docs; i++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := w.Update(name, tx); err != nil {
					t.Error(err)
					return
				}
			}
		}(fmt.Sprintf("doc%d", i))
	}
	wg.Wait()

	s := w.JournalStats()
	want := int64(2*docs + 2*docs*rounds) // (record+marker) per create and update
	if s.Appends != want {
		t.Errorf("appends = %d, want %d", s.Appends, want)
	}
	if s.SyncBatches <= 0 || s.SyncBatches > s.Appends {
		t.Errorf("sync batches = %d, want in (0, %d]", s.SyncBatches, s.Appends)
	}
}
