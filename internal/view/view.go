// Package view implements materialized views over probabilistic XML:
// a named TPWJ (or XPath) query whose answer set — answer trees,
// condition DNFs and exact probabilities — is kept materialized and
// incrementally maintained across updates, instead of being recomputed
// from scratch after every write.
//
// The cost model follows the rest of the system: finding the answers
// of a query (the symbolic pass, tree-pattern matching) is cheap, and
// computing each answer's exact probability (ProbDNF, #P-hard in
// general) is the expensive part. Maintenance therefore has three
// tiers, chosen per update by a conservative overlap analysis between
// the update's structural footprint (update.FuzzyStats) and the view's
// match witnesses:
//
//   - Skip: the update provably cannot have changed the view — no
//     inserted label is tested by the query (and the query has no
//     wildcard), and no deletion target lies on a witness path of any
//     answer. The previous state is reused as is.
//
//   - Incremental: the update may have changed the view. The symbolic
//     pass is re-run on the new tree and each answer's condition is
//     compared against the stored state; answers whose canonical
//     condition is unchanged keep their stored probability (event
//     probabilities never change once minted), and only new or changed
//     conditions go back through the probability engine.
//
//   - Full recompute: the overlap analysis is inconclusive — the query
//     uses negation or sibling order (both non-monotone under
//     structural change), or the update carries no footprint (e.g.
//     simplification rewrote the whole tree). EvalFuzzy runs from
//     scratch.
//
// The soundness of Skip for positive unordered queries rests on three
// facts: an update never changes the probability of an existing event;
// a new valuation must map at least one pattern node to an inserted
// node (so its label is tested by the query or matched by a wildcard);
// and a deletion only changes conditions, duplicates structure, or
// removes structure at or below its target — and any answer involved
// there has the target's label path among its witness paths, because
// witness sets are closed under ancestors.
//
// A View value is immutable: Maintain returns a new View and never
// mutates the receiver, so readers may hold a View while maintenance
// is in flight (the warehouse serves such reads marked stale).
package view

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/fuzzy"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/xpath"
)

// Definition is the registered (and journaled) identity of a view: its
// name and the query it materializes. The answer set itself is derived
// state and is never persisted.
type Definition struct {
	// Name identifies the view within its document.
	Name string `json:"name"`
	// Query is the query text, in the syntax named by Syntax.
	Query string `json:"query"`
	// Syntax is "tpwj" (default when empty) or "xpath".
	Syntax string `json:"syntax,omitempty"`
}

// Compile parses and validates the definition's query.
func (d Definition) Compile() (*tpwj.Query, error) {
	var (
		q   *tpwj.Query
		err error
	)
	switch d.Syntax {
	case "", "tpwj":
		q, err = tpwj.ParseQuery(d.Query)
	case "xpath":
		q, err = xpath.Compile(d.Query)
	default:
		return nil, fmt.Errorf("view: unknown syntax %q (want tpwj or xpath)", d.Syntax)
	}
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// Outcome reports which maintenance tier a Maintain call took.
type Outcome int

const (
	// Skipped: the overlap analysis proved the update cannot affect
	// the view; the previous state was reused without any evaluation.
	Skipped Outcome = iota
	// Incremental: the symbolic pass re-ran and only answers with new
	// or changed conditions went through the probability engine.
	Incremental
	// Full: the answer set was recomputed from scratch (inconclusive
	// overlap analysis, or first materialization).
	Full
)

// String returns "skipped", "incremental" or "full".
func (o Outcome) String() string {
	switch o {
	case Skipped:
		return "skipped"
	case Incremental:
		return "incremental"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result reports what one Maintain call did: the tier taken and, for
// the incremental tier, how many answer probabilities were reused
// versus recomputed — the affected-answer ratio the warehouse exposes
// on /stats.
type Result struct {
	Outcome Outcome
	// Reused counts answers whose stored probability was kept because
	// their canonical condition did not change.
	Reused int
	// Recomputed counts answers whose probability went through the
	// engine (all answers on the Full tier).
	Recomputed int
}

// Delta is the structural footprint of one update, as recorded by
// update.FuzzyStats. A nil *Delta means "unknown footprint" and forces
// a full recompute.
type Delta struct {
	// InsertedLabels are the distinct labels of inserted nodes.
	InsertedLabels []string
	// DeleteTargetPaths are the rooted label paths ("/A/B") of
	// deletion targets.
	DeleteTargetPaths []string
}

// View is one materialized state: the definition, the compiled query,
// and the answers with their probabilities, plus the witness data the
// overlap analysis needs. Views are immutable — Materialize and
// Maintain build fresh values — so a View handed to a reader stays
// valid while the next state is being computed.
type View struct {
	def Definition
	q   *tpwj.Query

	// answers is the materialized answer set, ordered like EvalFuzzy
	// output (descending probability, then canonical form).
	answers []tpwj.ProbAnswer

	// byKey indexes answers by canonical answer-tree string; condKey
	// holds each answer's canonical condition string. Together they
	// are the diff state of the incremental tier.
	byKey   map[string]int
	condKey []string

	// witnessPaths is the set of rooted label paths of every node of
	// every answer tree. Answer trees are minimal subtrees (matched
	// nodes plus all ancestors), so the set is ancestor-closed: if any
	// valuation passes through a document position, that position's
	// label path is in the set.
	witnessPaths map[string]bool

	// conclusive reports whether the overlap analysis applies: the
	// query is positive (no forbidden subtrees) and unordered. Both
	// negation and sibling order make answers non-monotone under
	// structural change, defeating the witness argument.
	conclusive bool
	// labels is the set of concrete label tests of the query;
	// wildcard reports whether any pattern node tests "*".
	labels   map[string]bool
	wildcard bool
}

// Def returns the view's definition.
func (v *View) Def() Definition { return v.def }

// Query returns the compiled query.
func (v *View) Query() *tpwj.Query { return v.q }

// Answers returns the materialized answer set, ordered by descending
// probability then canonical form. The slice and the trees inside are
// shared: callers must not mutate them.
func (v *View) Answers() []tpwj.ProbAnswer { return v.answers }

// keyed pairs an answer with its canonical strings, computed exactly
// once per answer per pass and threaded through sorting, diffing and
// assembly.
type keyed struct {
	a    tpwj.ProbAnswer
	key  string // canonical answer-tree string
	cond string // canonical condition string
}

func newKeyed(a tpwj.ProbAnswer) keyed {
	return keyed{a: a, key: tree.Canonical(a.Tree), cond: condString(&a)}
}

// Materialize evaluates the definition's query on the document from
// scratch and returns the resulting view state. q must be the compiled
// form of def (see Definition.Compile); passing it in lets callers
// compile once at registration and reuse across maintenance passes.
func Materialize(def Definition, q *tpwj.Query, ft *fuzzy.Tree) (*View, error) {
	return MaterializeCtx(context.Background(), def, q, ft)
}

// MaterializeCtx is Materialize honoring context cancellation: the
// tree-pattern match and the per-answer probability evaluations poll
// ctx and abort with its error, so a request deadline stops a full
// recompute mid-flight.
func MaterializeCtx(ctx context.Context, def Definition, q *tpwj.Query, ft *fuzzy.Tree) (*View, error) {
	answers, err := tpwj.EvalFuzzyContext(ctx, q, ft)
	if err != nil {
		return nil, err
	}
	ks := make([]keyed, len(answers))
	for i, a := range answers {
		ks[i] = newKeyed(a)
	}
	return assemble(def, q, ks), nil
}

// Maintain brings the view up to date with the post-update document
// ft, using the update's footprint d to decide the tier. It returns
// the successor state (possibly the receiver itself, on the Skip tier)
// and what it did; the receiver is never mutated.
func (v *View) Maintain(ft *fuzzy.Tree, d *Delta) (*View, Result, error) {
	return v.MaintainCtx(context.Background(), ft, d)
}

// MaintainCtx is Maintain honoring context cancellation. The Skip tier
// never consults the context (it does no evaluation); the other tiers
// abort with the context's error, leaving the receiver — still the
// current state — untouched.
func (v *View) MaintainCtx(ctx context.Context, ft *fuzzy.Tree, d *Delta) (*View, Result, error) {
	if d != nil && v.conclusive && !v.affected(d) {
		return v, Result{Outcome: Skipped}, nil
	}
	if d == nil || !v.conclusive {
		nv, err := MaterializeCtx(ctx, v.def, v.q, ft)
		if err != nil {
			return nil, Result{}, err
		}
		return nv, Result{Outcome: Full, Recomputed: len(nv.answers)}, nil
	}
	return v.maintainIncremental(ctx, ft)
}

// maintainIncremental re-runs the symbolic pass and pays for the
// probability engine only on answers whose canonical condition differs
// from the stored state. Reusing a stored probability is sound because
// event probabilities are immutable once minted: an identical
// canonical DNF over the (possibly grown) event table denotes the same
// probability.
func (v *View) maintainIncremental(ctx context.Context, ft *fuzzy.Tree) (*View, Result, error) {
	sym, err := tpwj.EvalFuzzySymbolicContext(ctx, v.q, ft)
	if err != nil {
		return nil, Result{}, err
	}
	res := Result{Outcome: Incremental}
	ks := make([]keyed, 0, len(sym))
	for i := range sym {
		k := newKeyed(sym[i])
		if j, ok := v.byKey[k.key]; ok && v.condKey[j] == k.cond {
			k.a.P = v.answers[j].P
			res.Reused++
		} else {
			p, err := answerProb(ctx, ft, &k.a)
			if err != nil {
				return nil, Result{}, err
			}
			res.Recomputed++
			if p == 0 {
				continue // appears in no world; not an answer
			}
			k.a.P = p
		}
		ks = append(ks, k)
	}
	// Order like EvalFuzzy output: descending probability, then
	// canonical form (precomputed — never re-derived in the comparator).
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].a.P != ks[j].a.P {
			return ks[i].a.P > ks[j].a.P
		}
		return ks[i].key < ks[j].key
	})
	return assemble(v.def, v.q, ks), res, nil
}

// affected reports whether the footprint can touch the view: an
// inserted label the query tests (or any insert under a wildcard
// query), or a deletion target whose label path carries a witness.
func (v *View) affected(d *Delta) bool {
	for _, l := range d.InsertedLabels {
		if v.wildcard || v.labels[l] {
			return true
		}
	}
	for _, p := range d.DeleteTargetPaths {
		if v.witnessPaths[p] {
			return true
		}
	}
	return false
}

// assemble builds the immutable view state around a computed answer
// set (already ordered like EvalFuzzy output, with canonical strings
// precomputed).
func assemble(def Definition, q *tpwj.Query, ks []keyed) *View {
	v := &View{
		def:          def,
		q:            q,
		answers:      make([]tpwj.ProbAnswer, len(ks)),
		byKey:        make(map[string]int, len(ks)),
		condKey:      make([]string, len(ks)),
		witnessPaths: make(map[string]bool),
		conclusive:   !q.HasNegation() && !q.Ordered,
		labels:       make(map[string]bool),
	}
	q.Root.Walk(func(p *tpwj.PNode) bool {
		if p.Label == tpwj.Wildcard {
			v.wildcard = true
		} else {
			v.labels[p.Label] = true
		}
		return true
	})
	for i, k := range ks {
		v.answers[i] = k.a
		v.byKey[k.key] = i
		v.condKey[i] = k.cond
		addWitnessPaths(v.witnessPaths, k.a.Tree)
	}
	return v
}

// condString returns the canonical condition string of an answer:
// the normalized DNF for positive queries, the formula rendering
// otherwise. EvalFuzzySymbolic already normalizes the DNF it returns.
func condString(a *tpwj.ProbAnswer) string {
	if a.Cond != nil {
		return a.Cond.String()
	}
	if a.Formula != nil {
		return a.Formula.String()
	}
	return ""
}

// answerProb computes one answer's exact probability.
func answerProb(ctx context.Context, ft *fuzzy.Tree, a *tpwj.ProbAnswer) (float64, error) {
	if a.Cond != nil {
		return ft.Table.ProbDNFCtx(ctx, a.Cond)
	}
	return ft.Table.ProbFormulaCtx(ctx, a.Formula)
}

// addWitnessPaths adds the rooted label path of every node of the
// answer tree to the set.
func addWitnessPaths(set map[string]bool, root *tree.Node) {
	var rec func(n *tree.Node, prefix string)
	rec = func(n *tree.Node, prefix string) {
		p := prefix + "/" + n.Label
		set[p] = true
		for _, c := range n.Children {
			rec(c, p)
		}
	}
	rec(root, "")
}
