package view

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/fuzzy"
	"repro/internal/gen"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
)

// sectionDoc builds A( S[e1](L:v1, M:u1), …, S[em](L:vm, M:um) ) with
// P(ei) = 0.5, the deterministic workload of the tier tests.
func sectionDoc(m int) *fuzzy.Tree {
	root := fuzzy.NewNode("A")
	tab := event.NewTable()
	for i := 1; i <= m; i++ {
		id := event.ID(fmt.Sprintf("e%d", i))
		tab.MustSet(id, 0.5)
		root.Add(fuzzy.NewNode("S",
			fuzzy.NewLeaf("L", fmt.Sprintf("v%d", i)),
			fuzzy.NewLeaf("M", fmt.Sprintf("u%d", i)),
		).WithCond(event.Cond(event.Pos(id))))
	}
	return &fuzzy.Tree{Root: root, Table: tab}
}

func mustMaterialize(t *testing.T, query string, ft *fuzzy.Tree) *View {
	t.Helper()
	def := Definition{Name: "v", Query: query}
	q, err := def.Compile()
	if err != nil {
		t.Fatal(err)
	}
	v, err := Materialize(def, q, ft)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// applyTx applies a transaction and converts its stats to a Delta.
func applyTx(t *testing.T, ft *fuzzy.Tree, tx *update.Transaction) (*fuzzy.Tree, *Delta) {
	t.Helper()
	next, stats, err := tx.ApplyFuzzy(ft)
	if err != nil {
		t.Fatal(err)
	}
	return next, &Delta{
		InsertedLabels:    stats.InsertedLabels,
		DeleteTargetPaths: stats.DeleteTargetPaths,
	}
}

// assertFresh checks the maintained view against recompute-from-scratch.
func assertFresh(t *testing.T, v *View, ft *fuzzy.Tree) {
	t.Helper()
	want, err := tpwj.EvalFuzzy(v.Query(), ft)
	if err != nil {
		t.Fatal(err)
	}
	got := v.Answers()
	if len(got) != len(want) {
		t.Fatalf("view has %d answers, recompute has %d", len(got), len(want))
	}
	for i := range want {
		wc, gc := tree.Canonical(want[i].Tree), tree.Canonical(got[i].Tree)
		if wc != gc {
			t.Fatalf("answer %d: view tree %s, recompute tree %s", i, gc, wc)
		}
		if math.Abs(want[i].P-got[i].P) > 1e-9 {
			t.Fatalf("answer %d (%s): view P=%v, recompute P=%v", i, gc, got[i].P, want[i].P)
		}
	}
}

func TestMaintainSkipsUnrelatedInsert(t *testing.T) {
	ft := sectionDoc(4)
	v := mustMaterialize(t, "A(S(L $x))", ft)
	if len(v.Answers()) != 4 {
		t.Fatalf("want 4 answers, got %d", len(v.Answers()))
	}

	// Insert a label the query never tests: provably no effect.
	tx := update.New(tpwj.MustParseQuery("A $a"), 0.9, update.Insert("a", tree.MustParse("Z(Q:new)")))
	next, d := applyTx(t, ft, tx)
	nv, res, err := v.Maintain(next, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Skipped {
		t.Fatalf("outcome %v, want Skipped", res.Outcome)
	}
	if nv != v {
		t.Fatal("skip must reuse the same state")
	}
	assertFresh(t, nv, next)
}

func TestMaintainIncrementalOnInsert(t *testing.T) {
	ft := sectionDoc(4)
	v := mustMaterialize(t, "A(S(L $x))", ft)

	// Insert an L leaf under one section: one new answer, old ones reused.
	tx := update.New(tpwj.MustParseQuery("A(S $s(L=v1))"), 0.8, update.Insert("s", tree.MustParse("L:extra")))
	next, d := applyTx(t, ft, tx)
	nv, res, err := v.Maintain(next, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Incremental {
		t.Fatalf("outcome %v, want Incremental", res.Outcome)
	}
	if res.Reused == 0 || res.Recomputed == 0 {
		t.Fatalf("want a mix of reused and recomputed answers, got reused=%d recomputed=%d", res.Reused, res.Recomputed)
	}
	assertFresh(t, nv, next)
}

func TestMaintainIncrementalOnDelete(t *testing.T) {
	ft := sectionDoc(4)
	v := mustMaterialize(t, "A(S(L $x))", ft)

	// Delete one section's L: the witness path /A/S/L is shared by all
	// answers (label paths ignore sibling identity), so the pass is
	// incremental and every touched answer is re-evaluated.
	tx := update.New(tpwj.MustParseQuery("A(S(L=v2 $x))"), 0.9, update.Delete("x"))
	next, d := applyTx(t, ft, tx)
	nv, res, err := v.Maintain(next, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Incremental {
		t.Fatalf("outcome %v, want Incremental", res.Outcome)
	}
	assertFresh(t, nv, next)
}

func TestMaintainSkipsDeleteOutsideWitnesses(t *testing.T) {
	ft := sectionDoc(4)
	// The view only watches M leaves; deleting an L cannot touch it.
	v := mustMaterialize(t, "A(S(M $x))", ft)
	tx := update.New(tpwj.MustParseQuery("A(S(L=v3 $x))"), 0.9, update.Delete("x"))
	next, d := applyTx(t, ft, tx)
	nv, res, err := v.Maintain(next, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Skipped {
		t.Fatalf("outcome %v, want Skipped", res.Outcome)
	}
	assertFresh(t, nv, next)
}

func TestMaintainFullOnNilDelta(t *testing.T) {
	ft := sectionDoc(3)
	v := mustMaterialize(t, "A(S(L $x))", ft)
	nv, res, err := v.Maintain(ft, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Full {
		t.Fatalf("outcome %v, want Full", res.Outcome)
	}
	assertFresh(t, nv, ft)
}

func TestMaintainFullOnNegationQuery(t *testing.T) {
	ft := sectionDoc(3)
	v := mustMaterialize(t, "A(S $s(!M))", ft)
	tx := update.New(tpwj.MustParseQuery("A $a"), 1, update.Insert("a", tree.MustParse("Z")))
	next, d := applyTx(t, ft, tx)
	nv, res, err := v.Maintain(next, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Full {
		t.Fatalf("negation views must recompute, got %v", res.Outcome)
	}
	assertFresh(t, nv, next)
}

func TestMaintainWildcardInsertAffects(t *testing.T) {
	ft := sectionDoc(3)
	v := mustMaterialize(t, "A(* $x)", ft)
	tx := update.New(tpwj.MustParseQuery("A $a"), 0.7, update.Insert("a", tree.MustParse("Z")))
	next, d := applyTx(t, ft, tx)
	nv, res, err := v.Maintain(next, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Incremental {
		t.Fatalf("wildcard views must treat every insert as affecting, got %v", res.Outcome)
	}
	assertFresh(t, nv, next)
}

// randomTx builds a random transaction against the document's current
// underlying tree: a query guaranteed to match, with one insert or one
// delete (never of the root).
func randomTx(r *rand.Rand, ft *fuzzy.Tree) *update.Transaction {
	doc := ft.Underlying()
	for tries := 0; ; tries++ {
		q := gen.MatchingQuery(r, doc, true)
		conf := 0.3 + 0.7*r.Float64()
		if r.Intn(4) == 0 {
			conf = 1
		}
		if r.Intn(2) == 0 {
			sub := gen.Tree(r, gen.TreeConfig{Depth: 2, MaxFanout: 2})
			return update.New(q, conf, update.Insert("x", sub))
		}
		// Deletions of the document root are rejected; re-draw.
		if q.Root.Var == "x" && !q.Root.Desc && tries < 50 {
			continue
		}
		return update.New(q, conf, update.Delete("x"))
	}
}

// TestDifferentialRandom drives random views through random update
// sequences and checks, after every step, that maintained state equals
// recompute-from-scratch — answers, order and probabilities.
func TestDifferentialRandom(t *testing.T) {
	steps := 60
	if testing.Short() {
		steps = 15
	}
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		ft := gen.Fuzzy(r, gen.FuzzyConfig{
			Tree:   gen.TreeConfig{Depth: 3, MaxFanout: 3},
			Events: 5,
		})

		views := make([]*View, 0, 3)
		for i := 0; i < 3; i++ {
			def := Definition{Name: fmt.Sprintf("v%d", i)}
			q := gen.MatchingQuery(r, ft.Underlying(), true)
			def.Query = tpwj.FormatQuery(q)
			v, err := Materialize(def, q, ft)
			if err != nil {
				t.Fatal(err)
			}
			views = append(views, v)
		}

		var skipped, incremental, full int
		for step := 0; step < steps; step++ {
			// Random transactions may be inapplicable (insert under a
			// value leaf, delete of the root); draw until one applies.
			var (
				next  *fuzzy.Tree
				stats *update.FuzzyStats
				err   error
			)
			for tries := 0; ; tries++ {
				tx := randomTx(r, ft)
				next, stats, err = tx.ApplyFuzzy(ft)
				if err == nil {
					break
				}
				if tries > 100 {
					t.Fatalf("seed %d step %d: no applicable transaction: %v", seed, step, err)
				}
			}
			if next.Size() > 400 {
				break // deletion blow-up; enough steps done on this doc
			}
			d := &Delta{InsertedLabels: stats.InsertedLabels, DeleteTargetPaths: stats.DeleteTargetPaths}
			ft = next
			for i, v := range views {
				nv, res, err := v.Maintain(ft, d)
				if err != nil {
					t.Fatalf("seed %d step %d view %d: %v", seed, step, i, err)
				}
				switch res.Outcome {
				case Skipped:
					skipped++
				case Incremental:
					incremental++
				case Full:
					full++
				}
				assertFresh(t, nv, ft)
				views[i] = nv
			}
		}
		t.Logf("seed %d: skipped=%d incremental=%d full=%d", seed, skipped, incremental, full)
		if skipped+incremental == 0 {
			t.Errorf("seed %d: maintenance never took a cheap tier", seed)
		}
	}
}
