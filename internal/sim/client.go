package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// tokenBucket is the rate controller: Take blocks until a token is
// available, refilling at rate tokens/second up to burst. A nil bucket
// never blocks (unthrottled).
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// take blocks until one token is available.
func (b *tokenBucket) take() {
	if b == nil {
		return
	}
	for {
		b.mu.Lock()
		now := time.Now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		b.last = now
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		if b.tokens >= 1 {
			b.tokens--
			b.mu.Unlock()
			return
		}
		wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
		b.mu.Unlock()
		time.Sleep(wait)
	}
}

// routeStats is the client-side ledger for one server route: request
// and error counts (what /stats and /metrics must agree with) and a
// latency histogram on the same bucket ladder as the server's
// px_http_request_seconds family, so client and server percentiles
// are directly comparable.
type routeStats struct {
	route string
	sent  atomic.Int64
	errs  atomic.Int64
	hist  *obs.Histogram
}

// workloadRoutes are the routes the simulator drives during the
// workload phase, keyed by the server's own route constants. The audit
// reconciles exactly these against /stats.
var workloadRoutes = []string{
	server.RouteCreate,
	server.RouteGet,
	server.RouteQuery,
	server.RouteSearch,
	server.RouteUpdate,
	server.RouteViewPut,
	server.RouteViewGet,
}

// client executes operations against a pxserve endpoint. Counted
// requests go through do(); the audit phase uses raw() so its probing
// does not disturb the ledgers it is reconciling.
type client struct {
	base   string
	hc     *http.Client
	bucket *tokenBucket
	routes map[string]*routeStats
}

func newClient(base string, hc *http.Client, bucket *tokenBucket) *client {
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	c := &client{
		base:   strings.TrimRight(base, "/"),
		hc:     hc,
		bucket: bucket,
		routes: make(map[string]*routeStats, len(workloadRoutes)),
	}
	for _, r := range workloadRoutes {
		c.routes[r] = &routeStats{route: r, hist: obs.NewHistogram()}
	}
	return c
}

// errorBody extracts the server's error message from a non-2xx
// response body ({"error": "..."}), falling back to the raw body.
func errorBody(body []byte) string {
	var er server.ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return er.Error
	}
	return strings.TrimSpace(string(body))
}

// isUpfrontRejection reports whether a failed write was refused before
// any mutation work: the warehouse's degraded read-only rejection. For
// these the shadow state is unambiguous (nothing was applied). All
// other 5xx write failures are treated as ambiguous (see
// docModel.noteWriteFailure).
func isUpfrontRejection(status int, body []byte) bool {
	return status == http.StatusServiceUnavailable &&
		strings.Contains(errorBody(body), "degraded")
}

// do executes one counted request: takes a rate token, observes
// latency into the route's histogram, and counts errors (any non-2xx
// status or transport failure). The transport error, if any, is
// returned; HTTP-level failures are returned as (status, body, nil).
func (c *client) do(route, method, path string, reqBody any) (int, []byte, error) {
	c.bucket.take()
	rs := c.routes[route]
	if rs == nil {
		return 0, nil, fmt.Errorf("sim: request on unregistered route %q", route)
	}
	var rdr io.Reader
	switch b := reqBody.(type) {
	case nil:
	case []byte:
		rdr = bytes.NewReader(b)
	default:
		data, err := json.Marshal(b)
		if err != nil {
			return 0, nil, err
		}
		rdr = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rdr)
	if err != nil {
		return 0, nil, err
	}
	if rdr != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rs.sent.Add(1)
	start := time.Now()
	resp, err := c.hc.Do(req)
	rs.hist.Observe(time.Since(start))
	if err != nil {
		rs.errs.Add(1)
		return 0, nil, err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if rerr != nil {
		rs.errs.Add(1)
		return resp.StatusCode, nil, rerr
	}
	if resp.StatusCode >= 400 {
		rs.errs.Add(1)
	}
	return resp.StatusCode, body, nil
}

// raw executes an uncounted request for the audit phase: no rate
// token, no ledger entry, no histogram sample. The audit relies on the
// server-side counters staying still while it reads them, so its own
// traffic must not flow through the counted path.
func (c *client) raw(method, path string, reqBody any) (int, []byte, error) {
	var rdr io.Reader
	if reqBody != nil {
		data, err := json.Marshal(reqBody)
		if err != nil {
			return 0, nil, err
		}
		rdr = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rdr)
	if err != nil {
		return 0, nil, err
	}
	if rdr != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if rerr != nil {
		return resp.StatusCode, nil, rerr
	}
	return resp.StatusCode, body, nil
}

// decode unmarshals a JSON response body into v.
func decode(body []byte, v any) error {
	return json.Unmarshal(body, v)
}
