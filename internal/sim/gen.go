package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// OpKind names one workload operation type. The set mirrors the
// server's client-facing routes; the mix weights (Mix) select between
// them.
type OpKind string

const (
	// OpQuery evaluates a TPWJ query (POST /docs/{name}/query).
	OpQuery OpKind = "query"
	// OpSearch runs a probabilistic keyword search (POST /docs/{name}/search).
	OpSearch OpKind = "search"
	// OpUpdate applies a probabilistic transaction (POST /docs/{name}/update).
	OpUpdate OpKind = "update"
	// OpViewRead reads a maintained view (GET /docs/{name}/views/{view}).
	OpViewRead OpKind = "view-read"
	// OpRegisterView registers a new view (PUT /docs/{name}/views/{view}).
	OpRegisterView OpKind = "register-view"
	// OpRead fetches the document XML (GET /docs/{name}).
	OpRead OpKind = "read"
)

// opKindOrder fixes the iteration order everywhere weights or counts
// are consumed, so generation and reporting are deterministic.
var opKindOrder = []OpKind{OpQuery, OpSearch, OpUpdate, OpViewRead, OpRegisterView, OpRead}

// Mix assigns relative weights to operation kinds. Weights are
// relative, not percentages: {query: 2, update: 1} is two queries per
// update.
type Mix map[OpKind]float64

// DefaultMix is a read-heavy multi-tenant blend: mostly queries and
// searches, a steady update stream, view reads with occasional
// registrations, and some raw document fetches.
func DefaultMix() Mix {
	return Mix{
		OpQuery:        40,
		OpSearch:       15,
		OpUpdate:       20,
		OpViewRead:     15,
		OpRegisterView: 2,
		OpRead:         8,
	}
}

// ParseMix parses "query=40,search=15,update=20" into a Mix. Kinds
// omitted get weight 0; at least one weight must be positive.
func ParseMix(s string) (Mix, error) {
	m := Mix{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("sim: mix entry %q is not kind=weight", part)
		}
		kind := OpKind(strings.TrimSpace(k))
		valid := false
		for _, known := range opKindOrder {
			if kind == known {
				valid = true
				break
			}
		}
		if !valid {
			return nil, fmt.Errorf("sim: unknown op kind %q (want one of %v)", kind, opKindOrder)
		}
		var w float64
		if _, err := fmt.Sscanf(strings.TrimSpace(v), "%g", &w); err != nil || w < 0 {
			return nil, fmt.Errorf("sim: bad weight %q for %q", v, kind)
		}
		m[kind] = w
	}
	total := 0.0
	for _, w := range m {
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("sim: mix %q has no positive weight", s)
	}
	return m, nil
}

// String renders the mix canonically (fixed kind order, zero weights
// dropped), the form the workload log header uses.
func (m Mix) String() string {
	var parts []string
	for _, k := range opKindOrder {
		if w := m[k]; w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, w))
		}
	}
	return strings.Join(parts, ",")
}

// UpdateSpec is one generated update: the target query, the op
// (insert when Insert != "", delete otherwise) on variable Var, and
// the transaction confidence.
type UpdateSpec struct {
	Query      string
	Var        string
	Confidence float64
	Insert     string // subtree in compact text form, "" for delete
}

// Op is one generated workload operation. Everything the executor
// needs is carried here, so execution never consults the RNG — the
// op stream is a pure function of (seed, config).
type Op struct {
	Seq  int64
	Doc  string
	Kind OpKind

	Query      string   // query / view-read / register-view query text
	Keywords   []string // search
	SearchMode string   // "slca" or "elca"
	ViewName   string   // view-read / register-view
	Update     *UpdateSpec
}

// logLine renders the op for the workload log: one line, fully
// describing the operation, with no timing or execution data — so two
// equal-seed runs produce byte-identical logs.
func (op *Op) logLine() string {
	switch op.Kind {
	case OpQuery:
		return fmt.Sprintf("%d %s query %s", op.Seq, op.Doc, op.Query)
	case OpSearch:
		return fmt.Sprintf("%d %s search %s %s", op.Seq, op.Doc, op.SearchMode, strings.Join(op.Keywords, " "))
	case OpUpdate:
		u := op.Update
		if u.Insert != "" {
			return fmt.Sprintf("%d %s update insert %s into $%s where %s conf=%g",
				op.Seq, op.Doc, u.Insert, u.Var, u.Query, u.Confidence)
		}
		return fmt.Sprintf("%d %s update delete $%s where %s conf=%g",
			op.Seq, op.Doc, u.Var, u.Query, u.Confidence)
	case OpViewRead:
		return fmt.Sprintf("%d %s view-read %s", op.Seq, op.Doc, op.ViewName)
	case OpRegisterView:
		return fmt.Sprintf("%d %s register-view %s %s", op.Seq, op.Doc, op.ViewName, op.Query)
	case OpRead:
		return fmt.Sprintf("%d %s read", op.Seq, op.Doc)
	}
	return fmt.Sprintf("%d %s %s", op.Seq, op.Doc, op.Kind)
}

// vocabulary is the word pool document text and search keywords draw
// from. Lowercase alphanumeric so every word is exactly one index
// token.
var vocabulary = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "fox", "golf", "hotel",
	"india", "juliet", "kilo", "lima", "mike", "nov", "oscar", "papa",
	"quebec", "romeo", "sierra", "tango", "uniform", "victor", "whiskey", "zulu",
}

// queryPool are the document-independent query templates. Every
// template matches the generated document shape: root A, S sections
// marked by a K leaf, initial T text leaves, inserted G(L) groups.
var queryPool = []string{
	"A(S(K $k))",
	"A(//L $x)",
	"A(S(G(L $x)))",
	"A(//T $t)",
}

// viewQueryPool are the queries views are registered over.
var viewQueryPool = []string{
	"A(S(G(L $x)))",
	"A(//T $t)",
	"A(S(K $k))",
}

// maxViewsPerDoc caps registrations per document; once reached,
// register-view ops degrade to view reads.
const maxViewsPerDoc = 3

// viewDef is a generated view registration.
type viewDef struct{ name, query string }

// genDocState is the generator's bookkeeping for one document:
// enough state to produce ops that usually hit (deletes that target
// inserted values, view reads of registered views). It is
// generation-time state — execution failures do not feed back, which
// keeps the op stream deterministic.
type genDocState struct {
	views    []viewDef
	nextView int
	inserted []string // L values inserted and not yet targeted by a delete
}

// generator produces the deterministic op stream.
type generator struct {
	rng      *rand.Rand
	zipf     *rand.Zipf
	mix      Mix
	mixTotal float64
	sections int
	docs     []string
	state    []genDocState
	seq      int64
}

func newGenerator(seed int64, docs []string, mix Mix, zipfS float64, sections int) *generator {
	rng := rand.New(rand.NewSource(seed))
	total := 0.0
	for _, w := range mix {
		total += w
	}
	g := &generator{
		rng:      rng,
		mix:      mix,
		mixTotal: total,
		sections: sections,
		docs:     docs,
		state:    make([]genDocState, len(docs)),
	}
	if len(docs) > 1 {
		g.zipf = rand.NewZipf(rng, zipfS, 1, uint64(len(docs)-1))
	}
	return g
}

// pickKind draws an op kind by mix weight, in the fixed kind order.
func (g *generator) pickKind() OpKind {
	r := g.rng.Float64() * g.mixTotal
	for _, k := range opKindOrder {
		r -= g.mix[k]
		if r < 0 {
			return k
		}
	}
	return OpQuery
}

// next produces the next op of the stream.
func (g *generator) next() Op {
	seq := g.seq
	g.seq++
	di := 0
	if g.zipf != nil {
		di = int(g.zipf.Uint64())
	}
	st := &g.state[di]
	kind := g.pickKind()
	// Fallbacks keep the stream total-function: a view read with no
	// registered view reads the document instead, a registration past
	// the cap becomes a view read.
	if kind == OpRegisterView && st.nextView >= maxViewsPerDoc {
		kind = OpViewRead
	}
	if kind == OpViewRead && len(st.views) == 0 {
		kind = OpRead
	}
	op := Op{Seq: seq, Doc: g.docs[di], Kind: kind}
	switch kind {
	case OpQuery:
		i := g.rng.Intn(len(queryPool) + 1)
		if i == len(queryPool) {
			// Whole-section subtree query: content-sensitive, so it
			// doubles as a deep oracle over inserted/deleted groups.
			op.Query = fmt.Sprintf("A(S $s(K=s%d))", g.rng.Intn(g.sections))
		} else {
			op.Query = queryPool[i]
		}
	case OpSearch:
		op.SearchMode = "slca"
		if g.rng.Float64() < 0.2 {
			op.SearchMode = "elca"
		}
		n := 1 + g.rng.Intn(2)
		for i := 0; i < n; i++ {
			if len(st.inserted) > 0 && g.rng.Float64() < 0.25 {
				op.Keywords = append(op.Keywords, st.inserted[g.rng.Intn(len(st.inserted))])
			} else {
				op.Keywords = append(op.Keywords, vocabulary[g.rng.Intn(len(vocabulary))])
			}
		}
	case OpUpdate:
		op.Update = g.pickUpdate(st, seq)
	case OpViewRead:
		v := st.views[g.rng.Intn(len(st.views))]
		op.ViewName, op.Query = v.name, v.query
	case OpRegisterView:
		v := viewDef{
			name:  fmt.Sprintf("v%d", st.nextView),
			query: viewQueryPool[g.rng.Intn(len(viewQueryPool))],
		}
		st.nextView++
		st.views = append(st.views, v)
		op.ViewName, op.Query = v.name, v.query
	case OpRead:
	}
	return op
}

// confidencePool are the transaction confidences updates draw from:
// certain updates (no fresh event) and two probabilistic tiers.
var confidencePool = []float64{1, 0.9, 0.8}

func (g *generator) pickUpdate(st *genDocState, seq int64) *UpdateSpec {
	conf := confidencePool[g.rng.Intn(len(confidencePool))]
	if len(st.inserted) > 0 && g.rng.Float64() < 0.35 {
		i := g.rng.Intn(len(st.inserted))
		w := st.inserted[i]
		st.inserted = append(st.inserted[:i], st.inserted[i+1:]...)
		return &UpdateSpec{
			Query:      fmt.Sprintf("A(S(G $g(L=%s)))", w),
			Var:        "g",
			Confidence: conf,
		}
	}
	// Fresh value per insert: deletes can later target it
	// unambiguously, and the value doubles as a searchable token.
	w := fmt.Sprintf("w%d", seq)
	st.inserted = append(st.inserted, w)
	return &UpdateSpec{
		Query:      fmt.Sprintf("A(S $s(K=s%d))", g.rng.Intn(g.sections)),
		Var:        "s",
		Confidence: conf,
		Insert:     fmt.Sprintf("G(L:%s)", w),
	}
}

// initialDocXML builds the deterministic initial <pxml> document for
// one doc: a root A with `sections` S sections, each carrying a
// certain K marker leaf (the update targeting anchor) and two T text
// leaves, one conditioned on a random event. The per-doc RNG is
// derived from (seed, doc index) so document content is independent
// of the op stream.
func initialDocXML(seed int64, docIndex, sections, events int) string {
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(docIndex)))
	var b strings.Builder
	b.WriteString("<pxml>\n  <events>\n")
	for e := 1; e <= events; e++ {
		fmt.Fprintf(&b, "    <event name=\"e%d\" prob=\"%.3f\"/>\n", e, 0.3+0.6*rng.Float64())
	}
	b.WriteString("  </events>\n  <root>\n    <A>\n")
	for s := 0; s < sections; s++ {
		fmt.Fprintf(&b, "      <S><K>s%d</K>", s)
		w1 := vocabulary[rng.Intn(len(vocabulary))]
		w2 := vocabulary[rng.Intn(len(vocabulary))]
		fmt.Fprintf(&b, "<T cond=\"e%d\">%s</T><T>%s</T></S>\n", 1+rng.Intn(events), w1, w2)
	}
	b.WriteString("    </A>\n  </root>\n</pxml>\n")
	return b.String()
}

// docNames returns the full document set for a tenant/doc grid, in
// the deterministic order the generator indexes by. Tenant t's docs
// are contiguous, so Zipf popularity concentrates on the low-index
// tenants — the realistic "a few hot accounts" shape.
func docNames(tenants, docsPerTenant int) []string {
	out := make([]string, 0, tenants*docsPerTenant)
	for t := 0; t < tenants; t++ {
		for d := 0; d < docsPerTenant; d++ {
			out = append(out, fmt.Sprintf("t%d-d%d", t, d))
		}
	}
	return out
}

// sortedKinds returns the op kinds with nonzero counts in fixed order
// followed by any unknown kinds sorted — used by fingerprinting.
func sortedKinds(counts map[OpKind]int64) []OpKind {
	var out []OpKind
	seen := make(map[OpKind]bool)
	for _, k := range opKindOrder {
		if counts[k] != 0 {
			out = append(out, k)
			seen[k] = true
		}
	}
	var rest []string
	for k := range counts {
		if !seen[k] && counts[k] != 0 {
			rest = append(rest, string(k))
		}
	}
	sort.Strings(rest)
	for _, k := range rest {
		out = append(out, OpKind(k))
	}
	return out
}
