// Package sim is the pxsim traffic generator and self-verifying
// workload harness: it drives a configurable query / search / update /
// view mix for N tenants against a pxserve endpoint, with Zipf
// document popularity, a seeded RNG for full reproducibility, and a
// token-bucket rate controller.
//
// The harness verifies as it measures. Alongside every document it
// maintains a shadow fuzzy tree (the expected state under the same
// transactions), compares update statistics on every write, and
// spot-checks query / search / view answers against local evaluation.
// After the workload drains, an audit reconciles client-side ledgers
// against /stats and /metrics, re-reads every document and view, and
// reports any lost update, stale-but-unflagged view read, or
// miscounted metric as a discrepancy — a nonzero discrepancy count
// fails the run.
//
// The audit requires the simulator to be the endpoint's only client:
// any out-of-band request lands in the server's counters (and possibly
// documents) without a client-side ledger entry and is reported as a
// discrepancy. That strictness is the point — it is what lets the same
// machinery detect real lost updates.
package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/keyword"
	"repro/internal/server"
	"repro/internal/tpwj"
	"repro/internal/tree"
	"repro/internal/update"
	"repro/internal/xmlio"
)

// Config parameterizes a run. Zero values select the documented
// defaults (see New).
type Config struct {
	// Endpoint is the pxserve base URL, e.g. "http://127.0.0.1:8080".
	Endpoint string
	// Tenants and DocsPerTenant shape the document grid; document
	// names are t<i>-d<j>.
	Tenants       int
	DocsPerTenant int
	// Seed drives every random choice. Two runs with equal Seed and
	// config produce byte-identical workload logs and equal model
	// fingerprints.
	Seed int64
	// Mix weights the operation kinds (DefaultMix when nil).
	Mix Mix
	// ZipfS is the Zipf skew (>1) of document popularity; default 1.2.
	ZipfS float64
	// Ops caps the run length in operations; Duration in wall time.
	// Whichever is hit first ends generation; if both are zero, Ops
	// defaults to 1000.
	Ops      int64
	Duration time.Duration
	// Rate is the target operations/second before Speed scales it;
	// 0 means unthrottled. Speed is the rate multiplier (default 1);
	// Burst the token bucket depth (default 2×workers).
	Rate  float64
	Speed float64
	Burst int
	// Workers is the number of executor goroutines; documents are
	// partitioned to workers (doc index mod Workers) so per-document
	// operation order is deterministic. Default 4.
	Workers int
	// Sections and Events shape each initial document. Defaults 4, 4.
	Sections int
	Events   int
	// CheckEvery spot-checks operations whose sequence number is a
	// multiple of it against local evaluation (0 disables spot checks;
	// update statistics are always checked).
	CheckEvery int64
	// LogW, when set, receives the workload log: one line per
	// generated op, written at generation time so it carries no timing
	// and is byte-identical across equal-seed runs.
	LogW io.Writer
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// HTTPClient overrides the transport (tests pass a client wired to
	// an httptest server or directly to a handler).
	HTTPClient *http.Client
}

// maxDiscrepancyMessages caps how many discrepancy details are kept;
// the count is always exact.
const maxDiscrepancyMessages = 64

// Runner executes one simulation. Create with New, then either call
// Run, or Setup / RunWorkload / Audit separately (tests use the split
// to inject faults between phases).
type Runner struct {
	cfg   Config
	cl    *client
	model *Model
	gen   *generator
	docs  []string
	docIx map[string]int

	start, end time.Time
	opsDone    atomic.Int64
	staleReads atomic.Int64

	discMu    sync.Mutex
	discList  []string
	discCount int64

	// auditSnap is the /stats snapshot Audit took after the workload
	// drained; Report reads the engine counters from it.
	auditSnap *server.StatsSnapshot

	fatalMu  sync.Mutex
	fatalErr error
}

// New validates the config, applies defaults, and builds the runner
// (no network traffic yet).
func New(cfg Config) (*Runner, error) {
	if cfg.Endpoint == "" {
		return nil, fmt.Errorf("sim: empty endpoint")
	}
	if _, err := url.Parse(cfg.Endpoint); err != nil {
		return nil, fmt.Errorf("sim: bad endpoint: %w", err)
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 4
	}
	if cfg.DocsPerTenant <= 0 {
		cfg.DocsPerTenant = 2
	}
	if cfg.Mix == nil {
		cfg.Mix = DefaultMix()
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.2
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("sim: zipf skew %g must be > 1", cfg.ZipfS)
	}
	if cfg.Ops == 0 && cfg.Duration == 0 {
		cfg.Ops = 1000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Sections <= 0 {
		cfg.Sections = 4
	}
	if cfg.Events <= 0 {
		cfg.Events = 4
	}
	if cfg.Speed == 0 {
		cfg.Speed = 1
	}
	if cfg.Speed < 0 || cfg.Rate < 0 {
		return nil, fmt.Errorf("sim: negative rate or speed")
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 2 * cfg.Workers
	}

	docs := docNames(cfg.Tenants, cfg.DocsPerTenant)
	r := &Runner{
		cfg:   cfg,
		cl:    newClient(cfg.Endpoint, cfg.HTTPClient, newTokenBucket(cfg.Rate*cfg.Speed, cfg.Burst)),
		model: newModel(),
		gen:   newGenerator(cfg.Seed, docs, cfg.Mix, cfg.ZipfS, cfg.Sections),
		docs:  docs,
		docIx: make(map[string]int, len(docs)),
	}
	for i, d := range docs {
		r.docIx[d] = i
	}
	return r, nil
}

// Model exposes the expected-state model (tests fingerprint it).
// Only valid to call when no workload is in flight.
func (r *Runner) Model() *Model { return r.model }

func (r *Runner) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// discrepancy records one verification failure. The count is exact;
// message details are capped.
func (r *Runner) discrepancy(format string, args ...any) {
	r.discMu.Lock()
	r.discCount++
	if len(r.discList) < maxDiscrepancyMessages {
		r.discList = append(r.discList, fmt.Sprintf(format, args...))
	}
	r.discMu.Unlock()
}

// fatal records a run-aborting error (transport failures: once the
// connection breaks, request/response pairing — and with it count
// reconciliation — is lost). First error wins.
func (r *Runner) fatal(err error) {
	r.fatalMu.Lock()
	if r.fatalErr == nil {
		r.fatalErr = err
	}
	r.fatalMu.Unlock()
}

func (r *Runner) fatalled() error {
	r.fatalMu.Lock()
	defer r.fatalMu.Unlock()
	return r.fatalErr
}

// Setup creates every document (counted PUTs through the workload
// ledger) and seeds the shadow model with identical parses of the
// same XML.
func (r *Runner) Setup() error {
	for i, name := range r.docs {
		xml := initialDocXML(r.cfg.Seed, i, r.cfg.Sections, r.cfg.Events)
		status, body, err := r.cl.do(server.RouteCreate, http.MethodPut, "/docs/"+name, []byte(xml))
		if err != nil {
			return fmt.Errorf("sim: create %s: %w", name, err)
		}
		if status != http.StatusCreated {
			return fmt.Errorf("sim: create %s: status %d: %s", name, status, errorBody(body))
		}
		ft, err := xmlio.ParseDoc([]byte(xml))
		if err != nil {
			return fmt.Errorf("sim: shadow parse %s: %w", name, err)
		}
		r.model.add(newDocModel(name, ft))
	}
	r.logf("created %d documents (%d tenants × %d)", len(r.docs), r.cfg.Tenants, r.cfg.DocsPerTenant)
	return nil
}

// RunWorkload generates the op stream and executes it: the generator
// emits ops in sequence order (writing the workload log as it goes)
// and dispatches each to the worker owning its document, so
// per-document order is exactly generation order.
func (r *Runner) RunWorkload(ctx context.Context) error {
	w := r.cfg.Workers
	chans := make([]chan Op, w)
	for i := range chans {
		chans[i] = make(chan Op, 128)
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		ch := chans[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := range ch {
				if r.fatalled() != nil {
					continue // drain without executing
				}
				r.execute(op)
			}
		}()
	}

	r.start = time.Now()
	var deadline time.Time
	if r.cfg.Duration > 0 {
		deadline = r.start.Add(r.cfg.Duration)
	}
	for n := int64(0); r.cfg.Ops == 0 || n < r.cfg.Ops; n++ {
		if ctx.Err() != nil || r.fatalled() != nil {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		op := r.gen.next()
		if r.cfg.LogW != nil {
			fmt.Fprintln(r.cfg.LogW, op.logLine()) //nolint:errcheck
		}
		chans[r.docIx[op.Doc]%w] <- op
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	r.end = time.Now()
	if err := r.fatalled(); err != nil {
		return err
	}
	r.logf("workload drained: %d ops in %.2fs", r.opsDone.Load(), r.end.Sub(r.start).Seconds())
	return ctx.Err()
}

// execute runs one op and its oracles. It is the only writer of the
// op's docModel (worker partitioning), so shadow state needs no lock.
func (r *Runner) execute(op Op) {
	d := r.model.docs[op.Doc]
	d.counts[op.Kind]++
	r.opsDone.Add(1)
	check := r.cfg.CheckEvery > 0 && op.Seq%r.cfg.CheckEvery == 0

	switch op.Kind {
	case OpRead:
		r.execRead(op, d)
	case OpQuery:
		r.execQuery(op, d, check)
	case OpSearch:
		r.execSearch(op, d, check)
	case OpUpdate:
		r.execUpdate(op, d)
	case OpViewRead:
		r.execViewRead(op, d, check)
	case OpRegisterView:
		r.execRegisterView(op, d)
	}
}

// execRead fetches the document XML and compares its hash against the
// shadow — the continuous lost-update detector.
func (r *Runner) execRead(op Op, d *docModel) {
	status, body, err := r.cl.do(server.RouteGet, http.MethodGet, "/docs/"+op.Doc, nil)
	if err != nil {
		r.fatal(fmt.Errorf("sim: read %s: %w", op.Doc, err))
		return
	}
	if status != http.StatusOK {
		if status < http.StatusInternalServerError {
			r.discrepancy("op %d: read %s: unexpected status %d: %s", op.Seq, op.Doc, status, errorBody(body))
		}
		return
	}
	sum := sha256.Sum256(body)
	if _, _, ok := d.resolve(hex.EncodeToString(sum[:])); !ok {
		r.discrepancy("op %d: read %s: content hash %s matches neither expected state (lost or phantom update)",
			op.Seq, op.Doc, hex.EncodeToString(sum[:])[:12])
	}
}

// execQuery posts the query; on spot-check ops the response is
// compared against local evaluation over the shadow tree.
func (r *Runner) execQuery(op Op, d *docModel, check bool) {
	status, body, err := r.cl.do(server.RouteQuery, http.MethodPost,
		"/docs/"+op.Doc+"/query", server.QueryRequest{Query: op.Query})
	if err != nil {
		r.fatal(fmt.Errorf("sim: query %s: %w", op.Doc, err))
		return
	}
	if status != http.StatusOK {
		if status < http.StatusInternalServerError {
			r.discrepancy("op %d: query %s %q: unexpected status %d: %s",
				op.Seq, op.Doc, op.Query, status, errorBody(body))
		}
		return
	}
	if !check || d.alt != nil {
		return // ambiguous shadow state: skip answer comparison
	}
	var resp server.QueryResponse
	if err := decode(body, &resp); err != nil {
		r.discrepancy("op %d: query %s: undecodable response: %v", op.Seq, op.Doc, err)
		return
	}
	q, err := tpwj.ParseQuery(op.Query)
	if err != nil {
		r.discrepancy("op %d: generated query %q does not parse: %v", op.Seq, op.Query, err)
		return
	}
	want, err := tpwj.EvalFuzzy(q, d.tree)
	if err != nil {
		r.discrepancy("op %d: local eval of %q failed: %v", op.Seq, op.Query, err)
		return
	}
	r.compareAnswers(op.Seq, op.Doc, "query "+op.Query, resp.Answers, want)
}

// compareAnswers checks count, tree shape, and probability (1e-9
// tolerance) of served answers against locally computed ones. The
// condition string is not compared: DNF literal order is
// representation, not meaning.
func (r *Runner) compareAnswers(seq int64, doc, what string, got []server.Answer, want []tpwj.ProbAnswer) {
	if len(got) != len(want) {
		r.discrepancy("op %d: %s on %s: %d answers served, %d expected", seq, what, doc, len(got), len(want))
		return
	}
	for i := range got {
		wantTree := tree.Format(want[i].Tree)
		if got[i].Tree != wantTree {
			r.discrepancy("op %d: %s on %s: answer %d tree %q, expected %q",
				seq, what, doc, i, got[i].Tree, wantTree)
			return
		}
		if math.Abs(got[i].P-want[i].P) > 1e-9 {
			r.discrepancy("op %d: %s on %s: answer %d probability %g, expected %g",
				seq, what, doc, i, got[i].P, want[i].P)
			return
		}
	}
}

// execSearch posts the keyword search; spot-check ops rebuild a local
// index over the shadow tree and compare.
func (r *Runner) execSearch(op Op, d *docModel, check bool) {
	status, body, err := r.cl.do(server.RouteSearch, http.MethodPost,
		"/docs/"+op.Doc+"/search", server.SearchRequest{Keywords: op.Keywords, Mode: op.SearchMode})
	if err != nil {
		r.fatal(fmt.Errorf("sim: search %s: %w", op.Doc, err))
		return
	}
	if status != http.StatusOK {
		if status < http.StatusInternalServerError {
			r.discrepancy("op %d: search %s %v: unexpected status %d: %s",
				op.Seq, op.Doc, op.Keywords, status, errorBody(body))
		}
		return
	}
	if !check || d.alt != nil {
		return
	}
	var resp server.SearchResponse
	if err := decode(body, &resp); err != nil {
		r.discrepancy("op %d: search %s: undecodable response: %v", op.Seq, op.Doc, err)
		return
	}
	mode, err := keyword.ParseMode(op.SearchMode)
	if err != nil {
		r.discrepancy("op %d: generated search mode %q invalid: %v", op.Seq, op.SearchMode, err)
		return
	}
	res, err := keyword.Search(keyword.NewIndex(d.tree), keyword.Request{Keywords: op.Keywords, Mode: mode})
	if err != nil {
		r.discrepancy("op %d: local search %v failed: %v", op.Seq, op.Keywords, err)
		return
	}
	if len(resp.Answers) != len(res.Answers) {
		r.discrepancy("op %d: search %v on %s: %d answers served, %d expected",
			op.Seq, op.Keywords, op.Doc, len(resp.Answers), len(res.Answers))
		return
	}
	for i, a := range res.Answers {
		g := resp.Answers[i]
		if g.Path != a.Path || g.Label != a.Label || g.Value != a.Value {
			r.discrepancy("op %d: search %v on %s: answer %d is %s (%s=%s), expected %s (%s=%s)",
				op.Seq, op.Keywords, op.Doc, i, g.Path, g.Label, g.Value, a.Path, a.Label, a.Value)
			return
		}
		if math.Abs(g.P-a.P) > 1e-9 {
			r.discrepancy("op %d: search %v on %s: answer %d probability %g, expected %g",
				op.Seq, op.Keywords, op.Doc, i, g.P, a.P)
			return
		}
	}
}

// execUpdate posts the transaction and, on success, applies the same
// transaction to the shadow and compares the server's statistics —
// every acknowledged write is verified, not just spot-checked. On
// failure the shadow records the ambiguity (see noteWriteFailure).
func (r *Runner) execUpdate(op Op, d *docModel) {
	u := op.Update
	reqOps := []server.UpdateOp{}
	if u.Insert != "" {
		reqOps = append(reqOps, server.UpdateOp{Op: "insert", Var: u.Var, Tree: u.Insert})
	} else {
		reqOps = append(reqOps, server.UpdateOp{Op: "delete", Var: u.Var})
	}
	status, body, err := r.cl.do(server.RouteUpdate, http.MethodPost,
		"/docs/"+op.Doc+"/update",
		server.UpdateRequest{Query: u.Query, Confidence: u.Confidence, Ops: reqOps})
	if err != nil {
		r.fatal(fmt.Errorf("sim: update %s: %w", op.Doc, err))
		return
	}

	tx, txErr := buildTransaction(u)
	if txErr != nil {
		r.discrepancy("op %d: generated update does not build locally: %v", op.Seq, txErr)
		return
	}

	if status != http.StatusOK {
		if status < http.StatusInternalServerError {
			// 4xx: the server refused the transaction upfront — nothing
			// applied, but a generated op should never be invalid.
			r.discrepancy("op %d: update %s: rejected with %d: %s", op.Seq, op.Doc, status, errorBody(body))
			d.noteWriteFailure(tx, op.Seq, true)
			return
		}
		d.noteWriteFailure(tx, op.Seq, isUpfrontRejection(status, body))
		return
	}

	var resp server.UpdateResponse
	if err := decode(body, &resp); err != nil {
		r.discrepancy("op %d: update %s: undecodable response: %v", op.Seq, op.Doc, err)
		return
	}
	stats, err := d.applyUpdate(tx)
	if err != nil {
		r.discrepancy("op %d: update %s: shadow apply failed: %v (server acknowledged)", op.Seq, op.Doc, err)
		return
	}
	if resp.Valuations != stats.Valuations || resp.Inserted != stats.Inserted ||
		resp.DeletedOutright != stats.DeletedOutright || resp.Copies != stats.Copies ||
		resp.Event != string(stats.Event) {
		r.discrepancy("op %d: update %s: server stats {val=%d ins=%d del=%d cp=%d ev=%q}, expected {val=%d ins=%d del=%d cp=%d ev=%q}",
			op.Seq, op.Doc,
			resp.Valuations, resp.Inserted, resp.DeletedOutright, resp.Copies, resp.Event,
			stats.Valuations, stats.Inserted, stats.DeletedOutright, stats.Copies, string(stats.Event))
	}
}

// buildTransaction constructs the local twin of the wire update.
func buildTransaction(u *UpdateSpec) (*update.Transaction, error) {
	q, err := tpwj.ParseQuery(u.Query)
	if err != nil {
		return nil, err
	}
	var op update.Op
	if u.Insert != "" {
		sub, err := tree.Parse(u.Insert)
		if err != nil {
			return nil, err
		}
		op = update.Insert(u.Var, sub)
	} else {
		op = update.Delete(u.Var)
	}
	tx := update.New(q, u.Confidence, op)
	if err := tx.Validate(); err != nil {
		return nil, err
	}
	return tx, nil
}

// execViewRead reads a registered view. A response flagged stale is
// counted but not compared (the flag is the contract); a non-stale
// response on a spot-check op must match local evaluation exactly,
// because view maintenance is synchronous with the document's updates
// and this worker is the only writer of this document.
func (r *Runner) execViewRead(op Op, d *docModel, check bool) {
	status, body, err := r.cl.do(server.RouteViewGet, http.MethodGet,
		"/docs/"+op.Doc+"/views/"+op.ViewName, nil)
	if err != nil {
		r.fatal(fmt.Errorf("sim: view read %s/%s: %w", op.Doc, op.ViewName, err))
		return
	}
	if status == http.StatusNotFound {
		if _, maybe := d.maybeViews[op.ViewName]; maybe {
			// The lost registration turned out not-applied; stop
			// expecting it to maybe exist.
			delete(d.maybeViews, op.ViewName)
			return
		}
		if _, confirmed := d.views[op.ViewName]; confirmed {
			r.discrepancy("op %d: view %s/%s acknowledged registered but reads 404",
				op.Seq, op.Doc, op.ViewName)
		}
		return
	}
	if status != http.StatusOK {
		if status < http.StatusInternalServerError {
			r.discrepancy("op %d: view read %s/%s: unexpected status %d: %s",
				op.Seq, op.Doc, op.ViewName, status, errorBody(body))
		}
		return
	}
	if _, maybe := d.maybeViews[op.ViewName]; maybe {
		// A successful read proves the lost registration was applied.
		d.views[op.ViewName] = d.maybeViews[op.ViewName]
		delete(d.maybeViews, op.ViewName)
	}
	var resp server.ViewResponse
	if err := decode(body, &resp); err != nil {
		r.discrepancy("op %d: view read %s/%s: undecodable response: %v", op.Seq, op.Doc, op.ViewName, err)
		return
	}
	if resp.Stale {
		r.staleReads.Add(1)
		return
	}
	if !check || d.alt != nil {
		return
	}
	q, err := tpwj.ParseQuery(op.Query)
	if err != nil {
		r.discrepancy("op %d: view query %q does not parse: %v", op.Seq, op.Query, err)
		return
	}
	want, err := tpwj.EvalFuzzy(q, d.tree)
	if err != nil {
		r.discrepancy("op %d: local view eval %q failed: %v", op.Seq, op.Query, err)
		return
	}
	r.compareAnswers(op.Seq, op.Doc, "view "+op.ViewName, resp.Answers, want)
}

// execRegisterView registers a view and records the outcome in the
// shadow view registry.
func (r *Runner) execRegisterView(op Op, d *docModel) {
	status, body, err := r.cl.do(server.RouteViewPut, http.MethodPut,
		"/docs/"+op.Doc+"/views/"+op.ViewName, server.ViewRequest{Query: op.Query})
	if err != nil {
		r.fatal(fmt.Errorf("sim: register view %s/%s: %w", op.Doc, op.ViewName, err))
		return
	}
	switch {
	case status == http.StatusCreated:
		d.noteRegister(op.ViewName, op.Query, true, false)
	case status < http.StatusInternalServerError:
		r.discrepancy("op %d: register view %s/%s: rejected with %d: %s",
			op.Seq, op.Doc, op.ViewName, status, errorBody(body))
		d.noteRegister(op.ViewName, op.Query, false, true)
	default:
		d.noteRegister(op.ViewName, op.Query, false, isUpfrontRejection(status, body))
	}
}

// Run executes the full sequence: Setup, RunWorkload, Audit, Report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	r, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := r.Setup(); err != nil {
		return nil, err
	}
	if err := r.RunWorkload(ctx); err != nil {
		return nil, err
	}
	audit, err := r.Audit()
	if err != nil {
		return nil, err
	}
	return r.Report(audit), nil
}
