package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fuzzy"
	"repro/internal/update"
	"repro/internal/xmlio"
)

// docModel is the expected state of one document. It is owned by the
// worker the document is partitioned to, so no locking is needed:
// every operation on the document flows through exactly one goroutine,
// which keeps the shadow tree in lockstep with the server's.
type docModel struct {
	name string

	// tree is the shadow fuzzy tree: the state the document must have
	// if every acknowledged update was applied and every failed update
	// was rolled back.
	tree *fuzzy.Tree

	// alt is the alternative tail state left by a failed write whose
	// server-side fate is ambiguous (see noteWriteFailure): the tree as
	// it would be had the failed transaction actually been applied. nil
	// when the document's state is unambiguous.
	alt *fuzzy.Tree

	// altOp describes the operation that created the ambiguity, for
	// discrepancy messages.
	altOp string

	// views maps confirmed registered view names to their query text.
	// maybeViews holds registrations whose acknowledgement was lost the
	// same way alt captures lost update acknowledgements.
	views      map[string]string
	maybeViews map[string]string

	// counts tallies executed operations by kind (attempts, including
	// failures); writes / failedWrites split the update+register
	// subset. lastWriteHash is the content hash after the last
	// acknowledged update.
	counts        map[OpKind]int64
	writes        int64
	failedWrites  int64
	lastWriteHash string
}

func newDocModel(name string, ft *fuzzy.Tree) *docModel {
	return &docModel{
		name:       name,
		tree:       ft,
		views:      make(map[string]string),
		maybeViews: make(map[string]string),
		counts:     make(map[OpKind]int64),
	}
}

// hashTree is the canonical content hash: sha256 over the document
// XML serialization, which is deterministic (see xmlio's
// TestWriteDocDeterministic) and exactly what GET /docs/{name}
// returns.
func hashTree(ft *fuzzy.Tree) string {
	data, err := xmlio.DocXML(ft)
	if err != nil {
		return "encode-error:" + err.Error()
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// applyUpdate applies the transaction to the shadow tree and returns
// the resulting stats for comparison against the server's response.
// Called only after the server acknowledged the update, so shadow and
// server advance together.
func (d *docModel) applyUpdate(tx *update.Transaction) (*update.FuzzyStats, error) {
	next, stats, err := tx.ApplyFuzzy(d.tree)
	if err != nil {
		return nil, err
	}
	d.tree = next
	d.alt = nil // an acknowledged write proves the previous tail resolved
	d.altOp = ""
	d.writes++
	d.lastWriteHash = hashTree(next)
	return stats, nil
}

// noteWriteFailure records a failed update. When the failure is an
// upfront rejection (the server refused before applying: degraded
// mode, validation), the shadow is untouched. Otherwise the server may
// have applied the mutation in memory and failed afterwards — the
// journal commit-marker path keeps the installed state visible to the
// live process even when the append errors — so both outcomes are
// acceptable until a later acknowledged write disambiguates: the
// not-applied state stays in d.tree, the applied state goes to d.alt.
func (d *docModel) noteWriteFailure(tx *update.Transaction, seq int64, upfront bool) {
	d.failedWrites++
	if upfront {
		return
	}
	if next, _, err := tx.ApplyFuzzy(d.tree); err == nil {
		d.alt = next
		d.altOp = fmt.Sprintf("op %d", seq)
	}
}

// resolve returns the tree matching the observed content hash, along
// with whether the ambiguous tail (if any) turned out applied. The
// bool ok reports whether the hash matched either acceptable state.
func (d *docModel) resolve(observedHash string) (ft *fuzzy.Tree, appliedTail, ok bool) {
	if observedHash == hashTree(d.tree) {
		return d.tree, false, true
	}
	if d.alt != nil && observedHash == hashTree(d.alt) {
		return d.alt, true, true
	}
	return nil, false, false
}

// noteRegister records a view registration outcome, mirroring
// noteWriteFailure's ambiguity rule (registration does not change
// document content, so only the view set is tracked).
func (d *docModel) noteRegister(name, query string, ok, upfront bool) {
	if ok {
		d.views[name] = query
		delete(d.maybeViews, name)
		return
	}
	d.failedWrites++
	if !upfront {
		d.maybeViews[name] = query
	}
}

// Model is the whole expected-state model: one docModel per document,
// in generation order.
type Model struct {
	docs  map[string]*docModel
	order []string
}

func newModel() *Model {
	return &Model{docs: make(map[string]*docModel)}
}

func (m *Model) add(d *docModel) {
	m.docs[d.name] = d
	m.order = append(m.order, d.name)
}

// Fingerprint digests the model into one hex string: per document (in
// creation order) the op counts, content hash, last-write hash, and
// sorted view registrations. Two equal-seed fault-free runs must
// produce equal fingerprints — the determinism test pins exactly that.
func (m *Model) Fingerprint() string {
	h := sha256.New()
	for _, name := range m.order {
		d := m.docs[name]
		fmt.Fprintf(h, "doc %s\n", name)
		for _, k := range sortedKinds(d.counts) {
			fmt.Fprintf(h, "  count %s %d\n", k, d.counts[k])
		}
		fmt.Fprintf(h, "  writes %d failed %d\n", d.writes, d.failedWrites)
		fmt.Fprintf(h, "  hash %s\n", hashTree(d.tree))
		if d.lastWriteHash != "" {
			fmt.Fprintf(h, "  last-write %s\n", d.lastWriteHash)
		}
		views := make([]string, 0, len(d.views))
		for v, q := range d.views {
			views = append(views, v+"="+q)
		}
		sort.Strings(views)
		fmt.Fprintf(h, "  views %s\n", strings.Join(views, ","))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Dump renders the model in the same shape Fingerprint digests, for
// debugging determinism failures.
func (m *Model) Dump() string {
	var b strings.Builder
	for _, name := range m.order {
		d := m.docs[name]
		fmt.Fprintf(&b, "doc %s hash=%s writes=%d failed=%d\n",
			name, hashTree(d.tree)[:12], d.writes, d.failedWrites)
		for _, k := range sortedKinds(d.counts) {
			fmt.Fprintf(&b, "  %s=%d", k, d.counts[k])
		}
		if len(d.counts) > 0 {
			b.WriteString("\n")
		}
	}
	return b.String()
}
