package sim

import "repro/internal/update"

// Stream is the exported handle over the deterministic workload
// generator, for harnesses that drive warehouses directly instead of
// going through the HTTP runner (e.g. the cross-backend storage
// differential test). The op stream is a pure function of the
// constructor arguments: two Streams built with equal arguments yield
// identical Op sequences, which is exactly the property differential
// testing needs.
type Stream struct {
	g *generator
}

// NewStream builds a deterministic op stream over the named documents.
// zipfS is the document-popularity skew (values > 1 concentrate ops on
// low-index docs; with a single doc it is unused) and sections the
// per-document section count used by generated queries and updates.
func NewStream(seed int64, docs []string, mix Mix, zipfS float64, sections int) *Stream {
	return &Stream{g: newGenerator(seed, docs, mix, zipfS, sections)}
}

// Next produces the next op of the stream.
func (s *Stream) Next() Op { return s.g.next() }

// InitialDocXML builds the deterministic initial <pxml> document for
// doc index docIndex, as seeded by the runner's Setup.
func InitialDocXML(seed int64, docIndex, sections, events int) string {
	return initialDocXML(seed, docIndex, sections, events)
}

// DocNames returns the deterministic document grid the generator
// indexes by.
func DocNames(tenants, docsPerTenant int) []string {
	return docNames(tenants, docsPerTenant)
}

// BuildTransaction constructs the executable transaction of a
// generated update spec.
func BuildTransaction(u *UpdateSpec) (*update.Transaction, error) {
	return buildTransaction(u)
}
