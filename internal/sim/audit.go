package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/event"
	"repro/internal/server"
	"repro/internal/tpwj"
	"repro/internal/tree"
)

// AuditResult is the outcome of the end-of-run audit. A run is
// healthy iff DiscrepancyCount is zero; everything else is
// informational (degraded mode, ambiguity resolution, stale counts).
type AuditResult struct {
	// Checks counts individual verifications performed (counter
	// comparisons, content hashes, view reads, metric cross-checks).
	Checks int64 `json:"checks"`
	// DiscrepancyCount is exact; Discrepancies carries the first
	// messages (capped).
	DiscrepancyCount int64    `json:"discrepancy_count"`
	Discrepancies    []string `json:"discrepancies,omitempty"`
	// Degraded mirrors the server's end-of-run degraded state.
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// StaleViewReads counts workload view reads served with the stale
	// flag set (tolerated by contract; only unflagged staleness is a
	// discrepancy).
	StaleViewReads int64 `json:"stale_view_reads"`
	// AmbiguousApplied / AmbiguousAborted count documents whose failed
	// tail write the audit resolved as actually-applied respectively
	// cleanly-aborted.
	AmbiguousApplied int64 `json:"ambiguous_applied"`
	AmbiguousAborted int64 `json:"ambiguous_aborted"`
	// FailedWrites counts write operations (updates, registrations)
	// the server did not acknowledge.
	FailedWrites int64 `json:"failed_writes"`
}

// Audit reconciles the expected-state model against the live server.
// Must be called after RunWorkload returned (no counted traffic in
// flight); its own requests are uncounted so the ledgers hold still.
//
// Order matters: counters first (while nothing moves them), then
// /metrics (whose workload-route families must equal the /stats view),
// then content and views (whose reads would otherwise not even matter
// — they are uncounted — but are kept last for log readability).
func (r *Runner) Audit() (*AuditResult, error) {
	a := &AuditResult{StaleViewReads: r.staleReads.Load()}

	stats, err := r.auditStats(a)
	if err != nil {
		return nil, err
	}
	r.auditSnap = stats
	a.Degraded = stats.Degraded
	a.DegradedReason = stats.DegradedReason
	if err := r.auditMetrics(a, stats); err != nil {
		return nil, err
	}
	if err := r.auditContent(a); err != nil {
		return nil, err
	}

	// Fold in discrepancies recorded during the workload (failed
	// oracle spot checks, unexpected statuses).
	r.discMu.Lock()
	a.DiscrepancyCount += r.discCount
	a.Discrepancies = append(a.Discrepancies, r.discList...)
	r.discMu.Unlock()
	if len(a.Discrepancies) > maxDiscrepancyMessages {
		a.Discrepancies = a.Discrepancies[:maxDiscrepancyMessages]
	}
	for _, d := range r.model.docs {
		a.FailedWrites += d.failedWrites
	}
	r.logf("audit: %d checks, %d discrepancies, degraded=%v, stale=%d, ambiguous applied=%d aborted=%d",
		a.Checks, a.DiscrepancyCount, a.Degraded, a.StaleViewReads, a.AmbiguousApplied, a.AmbiguousAborted)
	return a, nil
}

func (a *AuditResult) fail(format string, args ...any) {
	a.DiscrepancyCount++
	if len(a.Discrepancies) < maxDiscrepancyMessages {
		a.Discrepancies = append(a.Discrepancies, fmt.Sprintf(format, args...))
	}
}

// expectedRoute returns the client-side ledger for one route.
func (r *Runner) expectedRoute(route string) (sent, errs int64) {
	rs := r.cl.routes[route]
	return rs.sent.Load(), rs.errs.Load()
}

// auditStats fetches /stats and reconciles every workload route's
// request and error count against the client ledger. The server
// records a request's counters after its handler finishes writing the
// response, so a just-drained client can observe the last few requests
// not yet recorded — the reconciliation polls briefly before calling a
// mismatch real.
func (r *Runner) auditStats(a *AuditResult) (*server.StatsSnapshot, error) {
	var stats server.StatsSnapshot
	deadline := time.Now().Add(2 * time.Second)
	for {
		status, body, err := r.cl.raw(http.MethodGet, "/stats", nil)
		if err != nil {
			return nil, fmt.Errorf("sim: audit /stats: %w", err)
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("sim: audit /stats: status %d", status)
		}
		if err := decode(body, &stats); err != nil {
			return nil, fmt.Errorf("sim: audit /stats: %w", err)
		}
		settled := true
		for _, route := range workloadRoutes {
			sent, errs := r.expectedRoute(route)
			got := stats.Requests[route]
			if got.Count != sent || got.Errors != errs {
				settled = false
			}
		}
		if settled || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, route := range workloadRoutes {
		sent, errs := r.expectedRoute(route)
		got := stats.Requests[route]
		a.Checks += 2
		if got.Count != sent {
			a.fail("stats: route %s served %d requests, client sent %d", route, got.Count, sent)
		}
		if got.Errors != errs {
			a.fail("stats: route %s reports %d errors, client observed %d", route, got.Errors, errs)
		}
	}
	return &stats, nil
}

// auditMetrics scrapes /metrics and cross-checks the workload-route
// families against the client ledger and the /stats snapshot: the
// request and error counters, the histogram sample counts, and the
// degraded gauge. Exposition parsing is exact-key — the route label
// values are the server's own Route* constants.
func (r *Runner) auditMetrics(a *AuditResult, stats *server.StatsSnapshot) error {
	status, body, err := r.cl.raw(http.MethodGet, "/metrics", nil)
	if err != nil {
		return fmt.Errorf("sim: audit /metrics: %w", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("sim: audit /metrics: status %d", status)
	}
	samples := parseExposition(string(body))
	for _, route := range workloadRoutes {
		sent, errs := r.expectedRoute(route)
		a.Checks += 3
		if got := samples[fmt.Sprintf(`px_http_requests_total{route=%q}`, route)]; int64(got) != sent {
			a.fail("metrics: px_http_requests_total{%s} = %g, client sent %d", route, got, sent)
		}
		// Zero-valued series may legitimately be absent (the error
		// counter is registered lazily per route).
		if got := samples[fmt.Sprintf(`px_http_request_errors_total{route=%q}`, route)]; int64(got) != errs {
			a.fail("metrics: px_http_request_errors_total{%s} = %g, client observed %d errors", route, got, errs)
		}
		if got := samples[fmt.Sprintf(`px_http_request_seconds_count{route=%q}`, route)]; int64(got) != sent {
			a.fail("metrics: px_http_request_seconds_count{%s} = %g, client sent %d", route, got, sent)
		}
	}
	a.Checks++
	degraded := samples["px_degraded"] != 0
	if degraded != stats.Degraded {
		a.fail("metrics: px_degraded = %v but /stats degraded = %v", degraded, stats.Degraded)
	}
	return nil
}

// auditContent re-reads every document and view and compares against
// the shadow model: content hashes (resolving ambiguous tails), node
// and event counts via /stat, the view registry, and every confirmed
// view's answers.
func (r *Runner) auditContent(a *AuditResult) error {
	for _, name := range r.model.order {
		d := r.model.docs[name]

		status, body, err := r.cl.raw(http.MethodGet, "/docs/"+name, nil)
		if err != nil {
			return fmt.Errorf("sim: audit read %s: %w", name, err)
		}
		a.Checks++
		if status != http.StatusOK {
			a.fail("audit: read %s: status %d: %s", name, status, errorBody(body))
			continue
		}
		sum := sha256.Sum256(body)
		chosen, appliedTail, ok := d.resolve(hex.EncodeToString(sum[:]))
		if !ok {
			a.fail("audit: %s content hash %s matches neither the expected state (%s) nor the ambiguous tail — lost or phantom update",
				name, hex.EncodeToString(sum[:])[:12], hashTree(d.tree)[:12])
			chosen = d.tree
		} else if d.alt != nil {
			if appliedTail {
				a.AmbiguousApplied++
			} else {
				a.AmbiguousAborted++
			}
		}

		// /stat must agree with the resolved tree's shape.
		status, body, err = r.cl.raw(http.MethodGet, "/docs/"+name+"/stat", nil)
		if err != nil {
			return fmt.Errorf("sim: audit stat %s: %w", name, err)
		}
		a.Checks++
		if status != http.StatusOK {
			a.fail("audit: stat %s: status %d", name, status)
		} else {
			var info server.DocInfo
			if err := decode(body, &info); err != nil {
				a.fail("audit: stat %s: undecodable: %v", name, err)
			} else if info.Nodes != chosen.Size() || info.Events != chosen.Table.Len() {
				a.fail("audit: stat %s reports %d nodes / %d events, shadow has %d / %d",
					name, info.Nodes, info.Events, chosen.Size(), chosen.Table.Len())
			}
		}

		// View registry: every confirmed view must be listed; listed
		// views must be confirmed or resolvable lost registrations.
		status, body, err = r.cl.raw(http.MethodGet, "/docs/"+name+"/views", nil)
		if err != nil {
			return fmt.Errorf("sim: audit views %s: %w", name, err)
		}
		a.Checks++
		if status != http.StatusOK {
			a.fail("audit: list views %s: status %d", name, status)
			continue
		}
		var vl server.ViewListResponse
		if err := decode(body, &vl); err != nil {
			a.fail("audit: list views %s: undecodable: %v", name, err)
			continue
		}
		listed := make(map[string]string, len(vl.Views))
		for _, v := range vl.Views {
			listed[v.Name] = v.Query
		}
		for v, q := range d.views {
			a.Checks++
			if lq, ok := listed[v]; !ok {
				a.fail("audit: view %s/%s acknowledged registered but not listed", name, v)
			} else if lq != q {
				a.fail("audit: view %s/%s has query %q, expected %q", name, v, lq, q)
			}
		}
		for v, q := range listed {
			if _, ok := d.views[v]; ok {
				continue
			}
			if mq, maybe := d.maybeViews[v]; maybe && mq == q {
				// The lost registration was applied after all.
				d.views[v] = q
				delete(d.maybeViews, v)
				continue
			}
			a.fail("audit: view %s/%s is registered server-side but was never acknowledged", name, v)
		}

		// Every confirmed view must now read fresh and match local
		// evaluation over the resolved tree.
		viewNames := make([]string, 0, len(d.views))
		for v := range d.views {
			viewNames = append(viewNames, v)
		}
		sort.Strings(viewNames)
		for _, v := range viewNames {
			q := d.views[v]
			status, body, err := r.cl.raw(http.MethodGet, "/docs/"+name+"/views/"+v, nil)
			if err != nil {
				return fmt.Errorf("sim: audit view %s/%s: %w", name, v, err)
			}
			a.Checks++
			if status != http.StatusOK {
				a.fail("audit: view %s/%s: status %d", name, v, status)
				continue
			}
			var vr server.ViewResponse
			if err := decode(body, &vr); err != nil {
				a.fail("audit: view %s/%s: undecodable: %v", name, v, err)
				continue
			}
			if vr.Stale {
				a.fail("audit: view %s/%s still stale after drain", name, v)
				continue
			}
			pq, err := tpwj.ParseQuery(q)
			if err != nil {
				a.fail("audit: view %s/%s query %q does not parse: %v", name, v, q, err)
				continue
			}
			want, err := tpwj.EvalFuzzy(pq, chosen)
			if err != nil {
				a.fail("audit: view %s/%s local eval failed: %v", name, v, err)
				continue
			}
			compareViewAnswers(a, name, v, vr.Answers, want)
		}
	}
	return nil
}

// compareViewAnswers is the audit-side answer comparison (same rules
// as the workload spot check: count, tree shape, probability).
func compareViewAnswers(a *AuditResult, doc, view string, got []server.Answer, want []tpwj.ProbAnswer) {
	if len(got) != len(want) {
		a.fail("audit: view %s/%s has %d answers, expected %d", doc, view, len(got), len(want))
		return
	}
	for i := range got {
		wantTree := tree.Format(want[i].Tree)
		if got[i].Tree != wantTree {
			a.fail("audit: view %s/%s answer %d tree %q, expected %q", doc, view, i, got[i].Tree, wantTree)
			return
		}
		if diff := got[i].P - want[i].P; diff > 1e-9 || diff < -1e-9 {
			a.fail("audit: view %s/%s answer %d probability %g, expected %g", doc, view, i, got[i].P, want[i].P)
			return
		}
	}
}

// parseExposition reads Prometheus text exposition into a flat map
// keyed by the full sample identity (`name{label="value"}`). Repeated
// keys sum, matching the exposition's own collision rule.
func parseExposition(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] += v
	}
	return out
}

// RouteReport is the client-side measurement for one route: request
// and error counts, throughput, and latency percentiles on the same
// bucket ladder as the server's histograms.
type RouteReport struct {
	Route        string  `json:"route"`
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	EventsPerSec float64 `json:"events_per_sec"`
	AvgMS        float64 `json:"avg_ms"`
	P50MS        float64 `json:"p50_ms"`
	P95MS        float64 `json:"p95_ms"`
	P99MS        float64 `json:"p99_ms"`
	MaxMS        float64 `json:"max_ms"`
}

// Report is the full run result, embedded into BENCH_*.json by
// internal/exp.
type Report struct {
	Endpoint        string        `json:"endpoint"`
	Seed            int64         `json:"seed"`
	Tenants         int           `json:"tenants"`
	DocsPerTenant   int           `json:"docs_per_tenant"`
	Workers         int           `json:"workers"`
	Mix             string        `json:"mix"`
	ZipfS           float64       `json:"zipf_s"`
	Rate            float64       `json:"rate,omitempty"`
	Speed           float64       `json:"speed,omitempty"`
	Ops             int64         `json:"ops"`
	Errors          int64         `json:"errors"`
	DurationSeconds float64       `json:"duration_seconds"`
	EventsPerSec    float64       `json:"events_per_sec"`
	Routes          []RouteReport `json:"routes"`
	Audit           *AuditResult  `json:"audit"`
	// Engine is the server's process-wide probability-engine counter
	// snapshot, read from /stats during the audit (after the workload
	// drained, before any report-only traffic) — so the BENCH envelope
	// records what the run actually cost the engine, not zeros.
	Engine event.EngineCounters `json:"engine_counters"`
	// Fingerprint digests the expected-state model; two equal-seed
	// fault-free runs report equal fingerprints.
	Fingerprint string `json:"fingerprint"`
}

// Report assembles the run report from the client ledgers, latency
// histograms, and the audit result.
func (r *Runner) Report(audit *AuditResult) *Report {
	dur := r.end.Sub(r.start).Seconds()
	if dur <= 0 {
		dur = 1e-9
	}
	rep := &Report{
		Endpoint:        r.cfg.Endpoint,
		Seed:            r.cfg.Seed,
		Tenants:         r.cfg.Tenants,
		DocsPerTenant:   r.cfg.DocsPerTenant,
		Workers:         r.cfg.Workers,
		Mix:             r.cfg.Mix.String(),
		ZipfS:           r.cfg.ZipfS,
		Rate:            r.cfg.Rate,
		Speed:           r.cfg.Speed,
		Ops:             r.opsDone.Load(),
		DurationSeconds: dur,
		EventsPerSec:    float64(r.opsDone.Load()) / dur,
		Audit:           audit,
		Fingerprint:     r.model.Fingerprint(),
	}
	if r.auditSnap != nil {
		rep.Engine = r.auditSnap.Engine
	}
	for _, route := range workloadRoutes {
		rs := r.cl.routes[route]
		sent := rs.sent.Load()
		if sent == 0 {
			continue
		}
		snap := rs.hist.Snapshot()
		rep.Errors += rs.errs.Load()
		rep.Routes = append(rep.Routes, RouteReport{
			Route:        route,
			Requests:     sent,
			Errors:       rs.errs.Load(),
			EventsPerSec: float64(sent) / dur,
			AvgMS:        snap.AvgMS,
			P50MS:        snap.P50MS,
			P95MS:        snap.P95MS,
			P99MS:        snap.P99MS,
			MaxMS:        snap.MaxMS,
		})
	}
	return rep
}
